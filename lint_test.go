package parsim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parsim/internal/engine"
)

// buildZeroDelayRing constructs the canonical asynchronous-simulation
// hazard: a ring of zero-delay gates that oscillates at a single
// timestamp once a definite value enters it. A pulse holds the NOR's
// controlling input high for two ticks (pinning the ring to known
// values), then releases it, leaving n0 = !n2 = n1 = !n0 with no delay
// anywhere to separate the updates in time. Without lint the engines
// variously panic ("schedule in the past"), spin until the context
// deadline, or terminate with stale X values — which is exactly why the
// analyzer reports zero-delay cycles at Error severity.
func buildZeroDelayRing(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("zero-delay-ring")
	pulse := b.Bit("pulse")
	n0, n1, n2 := b.Bit("n0"), b.Bit("n1"), b.Bit("n2")
	b.Wave("init", pulse, []Time{0, 2}, []Value{V(1, 1), V(1, 0)})
	b.Gate(Nor, "inject", 0, n0, pulse, n2)
	b.Gate(Not, "inv1", 0, n1, n0)
	b.Gate(Not, "inv2", 0, n2, n1)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

// TestLintRefusesZeroDelayRingAllEngines is the acceptance test for the
// lint integration: every registered engine, dispatched through
// SimulateContext, must refuse the zero-delay ring before running a
// single event. Zero-delay cycles are Error severity, so LintWarn is
// already enough; LintStrict must refuse too.
func TestLintRefusesZeroDelayRingAllEngines(t *testing.T) {
	algos := []Algorithm{
		Sequential, EventDriven, Compiled, Async, DistAsync, TimeWarp, ChandyMisra, Vector, JIT,
	}
	// The registry additionally carries "auto" (engine selection), which has
	// no Algorithm constant; its lint refusal is covered below via
	// Options.Engine.
	if got := len(engine.Names()); got != len(algos)+1 {
		t.Fatalf("registry has %d engines (%v), test covers %d — keep them in sync",
			got, engine.Names(), len(algos)+1)
	}
	t.Run("auto/strict", func(t *testing.T) {
		c := buildZeroDelayRing(t)
		_, err := Simulate(c, Options{
			Engine:  "auto",
			Horizon: 8,
			Workers: 2,
			Lint:    LintStrict,
		})
		if err == nil {
			t.Fatal("auto accepted a zero-delay ring under strict lint")
		}
		if !strings.Contains(err.Error(), "lint") {
			t.Errorf("error should name the lint refusal, got: %v", err)
		}
	})
	for _, algo := range algos {
		for _, mode := range []LintMode{LintWarn, LintStrict} {
			t.Run(algo.String()+"/"+mode.String(), func(t *testing.T) {
				c := buildZeroDelayRing(t)
				_, err := Simulate(c, Options{
					Algorithm: algo,
					Horizon:   8,
					Workers:   1,
					Lint:      mode,
				})
				if err == nil {
					t.Fatalf("%s accepted a zero-delay ring under lint %s", algo, mode)
				}
				if !strings.Contains(err.Error(), "lint") ||
					!strings.Contains(err.Error(), "zero-delay-cycle") {
					t.Errorf("error should name the lint mode and the diagnostic, got: %v", err)
				}
			})
		}
	}
}

// TestLintOffZeroDelayRingLivelocks is the regression that motivates the
// pre-flight check: with lint off, an optimistic engine chews on the
// same-timestamp oscillation until the context deadline kills it. The
// conservative distributed engine's refusal under lint (instead of
// running the hazard at all) is asserted above; here we prove the hazard
// is real, not hypothetical.
func TestLintOffZeroDelayRingLivelocks(t *testing.T) {
	c := buildZeroDelayRing(t)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err := SimulateContext(ctx, c, Options{
		Algorithm: TimeWarp,
		Horizon:   8,
		Workers:   2,
		Lint:      LintOff,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("time-warp with lint off should livelock into the deadline, got err=%v", err)
	}
}

// TestLintDistRejectsBeforeRunning pins down the distributed engine
// specifically: under strict lint SimulateContext returns the analyzer's
// rejection immediately — no workers are spawned, no messages are sent —
// rather than entering the livelock-prone run.
func TestLintDistRejectsBeforeRunning(t *testing.T) {
	c := buildZeroDelayRing(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	res, err := SimulateContext(ctx, c, Options{
		Algorithm: DistAsync,
		Horizon:   8,
		Workers:   4,
		Lint:      LintStrict,
	})
	if err == nil {
		t.Fatal("dist accepted a zero-delay ring under strict lint")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("dist should be refused statically, not time out: %v", err)
	}
	if res != nil {
		t.Errorf("refused run returned a Result: %+v", res)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("static refusal took %v, should be immediate", elapsed)
	}
}

// TestLintStrictAllowsCleanCircuit: lint must not reject legal designs —
// a unit-delay blinker passes strict and simulates normally.
func TestLintStrictAllowsCleanCircuit(t *testing.T) {
	c := buildBlinker(t)
	res, err := Simulate(c, Options{
		Algorithm: Sequential,
		Horizon:   40,
		Lint:      LintStrict,
	})
	if err != nil {
		t.Fatalf("strict lint rejected a clean circuit: %v", err)
	}
	if res == nil || res.Stats.Evals == 0 {
		t.Fatalf("simulation did not run: %+v", res)
	}
}

// TestAnalyzeFacade exercises the re-exported analyzer entry point.
func TestAnalyzeFacade(t *testing.T) {
	rep := Analyze(buildZeroDelayRing(t), AnalyzeOptions{Workers: 2})
	if rep.Err(false) == nil {
		t.Fatal("Analyze missed the zero-delay cycle")
	}
	found := false
	for _, d := range rep.Diags {
		if d.Code == "zero-delay-cycle" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no zero-delay-cycle diagnostic in %+v", rep.Diags)
	}
	if rep.Partition == nil || rep.Partition.Workers != 2 {
		t.Fatalf("partition report missing or wrong: %+v", rep.Partition)
	}
}
