package parsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"parsim/internal/guard"
)

// These tests drive the runtime supervision layer through the public
// facade for every registered engine, mirroring cancel_test.go: chaos
// probes inject worker panics and dropped wakeups, zero-delay rings
// provoke genuine stalls, and the assertions hold under -race (the
// `make chaos` target). The guard package's own unit tests live in
// internal/guard; here we prove the wiring end to end.

// guardHorizon is large enough that every algorithm performs well over
// PanicAtEval evaluations before finishing.
const guardHorizon = Time(5000)

// TestGuardChaosPanicContainedAllEngines injects a panic into the Nth
// evaluation of every engine and requires a structured *WorkerFault
// back — not a crashed process, not a hang.
func TestGuardChaosPanicContainedAllEngines(t *testing.T) {
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			c := BenchFeedbackChain(13)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, err := SimulateContext(ctx, c, Options{
				Algorithm: alg,
				Workers:   cancelWorkers(alg),
				Horizon:   guardHorizon,
				Chaos:     &ChaosProbe{PanicAtEval: 40},
			})
			var wf *WorkerFault
			if !errors.As(err, &wf) {
				t.Fatalf("err = %v, want *WorkerFault", err)
			}
			if wf.Engine != alg.String() {
				t.Errorf("fault engine = %q, want %q", wf.Engine, alg)
			}
			if len(wf.Stack) == 0 {
				t.Error("fault carries no goroutine stack")
			}
			if _, ok := wf.Panic.(*guard.ChaosPanic); !ok {
				t.Errorf("fault panic value = %#v, want *guard.ChaosPanic", wf.Panic)
			}
			if alg == Sequential && wf.Worker != -1 {
				t.Errorf("sequential fault worker = %d, want -1 (main goroutine)", wf.Worker)
			}
		})
	}
}

// TestGuardStalledRingAsyncFamily: the canonical zero-delay ring makes
// the asynchronous-family engines go idle with node valid-times short of
// the horizon. The silent stall-at-X of earlier versions must now be a
// typed ErrStalled naming the stuck nodes — dist self-reports after
// Safra termination, core after its completion check.
func TestGuardStalledRingAsyncFamily(t *testing.T) {
	for _, alg := range []Algorithm{Async, ChandyMisra, DistAsync} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			c := buildZeroDelayRing(t)
			_, err := SimulateContext(context.Background(), c, Options{
				Algorithm: alg,
				Workers:   2,
				Horizon:   8,
			})
			if !errors.Is(err, ErrStalled) {
				t.Fatalf("err = %v, want ErrStalled", err)
			}
			var st *StallError
			if !errors.As(err, &st) {
				t.Fatalf("err = %v, want *StallError", err)
			}
			if len(st.StuckNodes) == 0 {
				t.Error("stall report names no stuck nodes")
			}
			if st.Engine != alg.String() {
				t.Errorf("stall engine = %q, want %q", st.Engine, alg)
			}
		})
	}
}

// TestGuardWatchdogAbortsTimeWarpLivelock: the optimistic engine chews
// on the ring's same-timestamp oscillation forever (its GVT pins at 0),
// which only the progress watchdog can catch. The abort must carry the
// per-worker diagnostic dump.
func TestGuardWatchdogAbortsTimeWarpLivelock(t *testing.T) {
	c := buildZeroDelayRing(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err := SimulateContext(ctx, c, Options{
		Algorithm: TimeWarp,
		Workers:   2,
		Horizon:   8,
		Watchdog:  300 * time.Millisecond,
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if st.Dump == "" {
		t.Error("watchdog abort carries no per-worker counter dump")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("watchdog took %v to abort a 300ms stall", elapsed)
	}
}

// TestGuardEventDrivenRingPanicContained: the event-driven engine's
// natural failure on the ring is a genuine panic ("schedule in the
// past"), not an injected one. It must surface as a WorkerFault too.
func TestGuardEventDrivenRingPanicContained(t *testing.T) {
	c := buildZeroDelayRing(t)
	_, err := SimulateContext(context.Background(), c, Options{
		Algorithm: EventDriven,
		Workers:   2,
		Horizon:   8,
	})
	var wf *WorkerFault
	if !errors.As(err, &wf) {
		t.Fatalf("err = %v, want *WorkerFault", err)
	}
}

// TestGuardDroppedWakeupWatchdog: swallowing an activation in the
// asynchronous engine leaks its pending-work count, so the run spins
// without evaluating anything. No heartbeat advances, and the watchdog
// must catch the hang.
func TestGuardDroppedWakeupWatchdog(t *testing.T) {
	c := BenchFeedbackChain(13)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := SimulateContext(ctx, c, Options{
		Algorithm: Async,
		Workers:   2,
		Horizon:   guardHorizon,
		Watchdog:  300 * time.Millisecond,
		Chaos:     &ChaosProbe{DropWakeups: 2},
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestGuardDroppedWakeupSelfReport: the distributed engine drops the
// wakeup before queueing, so the ring of workers passively terminates
// (Safra declares quiescence) and the completion check must self-report
// the stall — no watchdog needed.
func TestGuardDroppedWakeupSelfReport(t *testing.T) {
	c := BenchFeedbackChain(13)
	_, err := SimulateContext(context.Background(), c, Options{
		Algorithm: DistAsync,
		Workers:   2,
		Horizon:   guardHorizon,
		Chaos:     &ChaosProbe{DropWakeups: 2},
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var st *StallError
	if !errors.As(err, &st) || len(st.StuckNodes) == 0 {
		t.Fatalf("dist self-report names no stuck nodes: %v", err)
	}
}

// TestGuardFallbackDegraded: with Options.Fallback, a chaos-panicked run
// on every parallel engine is transparently retried on the sequential
// reference. The retried result must be correct (identical finals to a
// clean sequential run), flagged Degraded, and carry the original fault.
func TestGuardFallbackDegraded(t *testing.T) {
	ref, err := Simulate(BenchInverterArray(DefaultInverterArray()), Options{
		Algorithm: Sequential,
		Workers:   1,
		Horizon:   200,
	})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for _, alg := range allAlgorithms {
		if alg == Sequential {
			continue
		}
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			c := BenchInverterArray(DefaultInverterArray())
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := SimulateContext(ctx, c, Options{
				Algorithm: alg,
				Workers:   2,
				Horizon:   200,
				Fallback:  true,
				Chaos:     &ChaosProbe{PanicAtEval: 40},
			})
			if err != nil {
				t.Fatalf("fallback did not absorb the fault: %v", err)
			}
			if !res.Degraded {
				t.Fatal("result not flagged Degraded")
			}
			var wf *WorkerFault
			if !errors.As(res.Fault, &wf) {
				t.Fatalf("Fault = %v, want the original *WorkerFault", res.Fault)
			}
			if !IsRecoverable(res.Fault) {
				t.Error("original fault not classified recoverable")
			}
			for n := range ref.Final {
				if !res.Final[n].Equal(ref.Final[n]) {
					t.Fatalf("degraded result wrong at node %d: %v != %v",
						n, res.Final[n], ref.Final[n])
				}
			}
		})
	}
}

// TestGuardFallbackSkippedForSequential: falling back from sequential to
// sequential would re-run the same fault; the policy must skip it and
// return the original error.
func TestGuardFallbackSkippedForSequential(t *testing.T) {
	c := BenchFeedbackChain(13)
	_, err := SimulateContext(context.Background(), c, Options{
		Algorithm: Sequential,
		Workers:   1,
		Horizon:   guardHorizon,
		Fallback:  true,
		Chaos:     &ChaosProbe{PanicAtEval: 40},
	})
	var wf *WorkerFault
	if !errors.As(err, &wf) {
		t.Fatalf("err = %v, want the unretried *WorkerFault", err)
	}
}

// TestGuardChaosScopedProbeSparesOtherEngines: a probe scoped to one
// engine must not fire in another — the property that keeps a fallback
// run clean of the chaos that killed the primary.
func TestGuardChaosScopedProbeSparesOtherEngines(t *testing.T) {
	c := BenchFeedbackChain(13)
	res, err := SimulateContext(context.Background(), c, Options{
		Algorithm: Async,
		Workers:   2,
		Horizon:   500,
		Chaos:     &ChaosProbe{Engine: "time-warp", PanicAtEval: 1},
	})
	if err != nil {
		t.Fatalf("scoped probe fired in the wrong engine: %v", err)
	}
	if res == nil || res.Stats.Evals == 0 {
		t.Fatal("run did not execute")
	}
}
