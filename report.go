package parsim

import (
	"encoding/json"
	"errors"
	"fmt"

	"parsim/internal/engine"
	"parsim/internal/logic"
)

// Algorithms returns the canonical names of every registered engine,
// sorted — the same table ParseAlgorithm, the CLIs and the parsimd daemon
// resolve names against.
func Algorithms() []string { return engine.Names() }

// ParseAlgorithm resolves an engine name or alias (case-insensitive,
// e.g. "async", "tw", "event-driven") to the facade Algorithm constant,
// through the same registry every other dispatch path uses.
func ParseAlgorithm(name string) (Algorithm, error) {
	e, err := engine.Get(name)
	if err != nil {
		return Sequential, err
	}
	for a := Sequential; a <= Vector; a++ {
		if a.String() == e.Name() {
			return a, nil
		}
	}
	return Sequential, fmt.Errorf("parsim: engine %q has no facade Algorithm constant", e.Name())
}

// resultJSON is the stable wire form of a Result: the run-report schema
// shared by `parsim -json` and the parsimd daemon's job results. Final
// node values serialise as Verilog-style literals ("4'b10xz"); the fault,
// if any, as its message.
type resultJSON struct {
	Stats         RunStats       `json:"stats"`
	Final         []string       `json:"final,omitempty"`
	LaneFinal     [][]string     `json:"lane_final,omitempty"`
	FaultCoverage *FaultCoverage `json:"fault_coverage,omitempty"`
	Messages      int64          `json:"messages,omitempty"`
	Rollbacks     int64          `json:"rollbacks,omitempty"`
	Cancelled     int64          `json:"cancelled,omitempty"`
	PeakLog       int64          `json:"peak_log,omitempty"`
	Rounds        int64          `json:"rounds,omitempty"`
	Degraded      bool           `json:"degraded,omitempty"`
	Resumed       bool           `json:"resumed,omitempty"`
	Fault         string         `json:"fault,omitempty"`
	Selected      *Selection     `json:"selected,omitempty"`
}

// MarshalJSON serialises the result to the stable run-report schema.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := resultJSON{
		Stats:         r.Stats,
		FaultCoverage: r.FaultCoverage,
		Messages:      r.Messages,
		Rollbacks:     r.Rollbacks,
		Cancelled:     r.Cancelled,
		PeakLog:       r.PeakLog,
		Rounds:        r.Rounds,
		Degraded:      r.Degraded,
		Resumed:       r.Resumed,
		Selected:      r.Selected,
	}
	if r.Fault != nil {
		out.Fault = r.Fault.Error()
	}
	if len(r.Final) > 0 {
		out.Final = encodeValues(r.Final)
	}
	if len(r.LaneFinal) > 0 {
		out.LaneFinal = make([][]string, len(r.LaneFinal))
		for l, vals := range r.LaneFinal {
			out.LaneFinal[l] = encodeValues(vals)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the run-report schema back into a Result, so
// clients of the parsimd daemon (and consumers of `parsim -json` output)
// can decode reports with this package's own types. The fault round-trips
// as an opaque error carrying the original message.
func (r *Result) UnmarshalJSON(b []byte) error {
	var in resultJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*r = Result{
		Stats:         in.Stats,
		FaultCoverage: in.FaultCoverage,
		Messages:      in.Messages,
		Rollbacks:     in.Rollbacks,
		Cancelled:     in.Cancelled,
		PeakLog:       in.PeakLog,
		Rounds:        in.Rounds,
		Degraded:      in.Degraded,
		Resumed:       in.Resumed,
		Selected:      in.Selected,
	}
	if in.Fault != "" {
		r.Fault = errors.New(in.Fault)
	}
	if len(in.Final) > 0 {
		vals, err := decodeValues(in.Final)
		if err != nil {
			return fmt.Errorf("parsim: final: %w", err)
		}
		r.Final = vals
	}
	if len(in.LaneFinal) > 0 {
		r.LaneFinal = make([][]Value, len(in.LaneFinal))
		for l, strs := range in.LaneFinal {
			vals, err := decodeValues(strs)
			if err != nil {
				return fmt.Errorf("parsim: lane %d final: %w", l, err)
			}
			r.LaneFinal[l] = vals
		}
	}
	return nil
}

// encodeValues serialises node values as Verilog-style literals; an unset
// slot serialises as "" and parses back to the zero Value.
func encodeValues(vals []Value) []string {
	strs := make([]string, len(vals))
	for i, v := range vals {
		if v.Width() == 0 {
			continue
		}
		strs[i] = v.String()
	}
	return strs
}

func decodeValues(strs []string) ([]Value, error) {
	vals := make([]Value, len(strs))
	for i, s := range strs {
		if s == "" {
			continue
		}
		v, err := logic.ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		vals[i] = v
	}
	return vals, nil
}
