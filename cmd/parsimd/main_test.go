package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end crash tests: build the real parsimd binary, run it with a
// state directory, and prove a simulation survives both a graceful
// SIGTERM drain and an abrupt kill -9 — the restarted daemon resumes the
// job from its last snapshot and reports the same result an
// uninterrupted run produces.

const e2eNetlist = `circuit ring
node clk 1
node a 1
node b 1
node q 1
elem clock osc delay=1 out=clk period=8
elem not n1 delay=1 out=a in=clk
elem not n2 delay=1 out=b in=a
elem not n3 delay=1 out=q in=b
`

// e2eResult is the slice of the job-result JSON the assertions need; wall
// times are deliberately excluded (they differ between runs).
type e2eResult struct {
	Stats struct {
		TimeSteps   int64 `json:"time_steps"`
		NodeUpdates int64 `json:"node_updates"`
		Evals       int64 `json:"evals"`
	} `json:"stats"`
	Final   []string `json:"final"`
	Resumed bool     `json:"resumed"`
}

type e2eJob struct {
	ID     string     `json:"id"`
	State  string     `json:"state"`
	Error  string     `json:"error"`
	Result *e2eResult `json:"result"`
}

// buildDaemon compiles parsimd once per test into the test's temp space.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "parsimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building parsimd: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves and releases a TCP port for the daemon to bind.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startDaemon launches parsimd against the state dir and waits for
// /healthz to answer.
func startDaemon(t *testing.T, bin, stateDir string, port int, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-cores", "2",
		"-state-dir", stateDir,
		"-checkpoint-every", "50",
		"-drain", "30s",
	}, extra...)
	cmd := exec.Command(bin, args...)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
	return nil
}

func submitJob(t *testing.T, port int, body map[string]any) e2eJob {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fmt.Sprintf("http://127.0.0.1:%d/v1/jobs", port),
		"application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j e2eJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s (%s)", resp.Status, j.Error)
	}
	return j
}

func getJob(t *testing.T, port int, id string) (e2eJob, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/v1/jobs/%s", port, id))
	if err != nil {
		return e2eJob{}, false
	}
	defer resp.Body.Close()
	var j e2eJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return e2eJob{}, false
	}
	return j, resp.StatusCode == http.StatusOK
}

func waitDone(t *testing.T, port int, id string, within time.Duration) e2eJob {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		j, ok := getJob(t, port, id)
		if ok && j.State != "queued" && j.State != "running" {
			if j.State != "done" {
				t.Fatalf("job %s finished %s: %s", id, j.State, j.Error)
			}
			return j
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return e2eJob{}
}

// waitForCheckpoint polls the journal until a checkpointed record for the
// job is durably on disk.
func waitForCheckpoint(t *testing.T, stateDir, id string, within time.Duration) {
	t.Helper()
	path := filepath.Join(stateDir, "journal.jsonl")
	needle := []byte(`"type":"checkpointed","job":"` + id + `"`)
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && bytes.Contains(data, needle) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no checkpoint record for %s in %s", id, path)
}

// slowJob is sized so the run takes several seconds — long enough that
// the kill lands mid-simulation, short enough to resume and finish.
func slowJob() map[string]any {
	return map[string]any{
		"netlist":     e2eNetlist,
		"engine":      "sequential",
		"horizon":     60000,
		"cost_spin":   2000,
		"deadline_ms": 300000,
	}
}

func assertSameRun(t *testing.T, got, want *e2eResult) {
	t.Helper()
	if got.Stats.TimeSteps != want.Stats.TimeSteps ||
		got.Stats.NodeUpdates != want.Stats.NodeUpdates ||
		got.Stats.Evals != want.Stats.Evals {
		t.Errorf("stitched counters diverge: steps %d/%d updates %d/%d evals %d/%d",
			got.Stats.TimeSteps, want.Stats.TimeSteps,
			got.Stats.NodeUpdates, want.Stats.NodeUpdates,
			got.Stats.Evals, want.Stats.Evals)
	}
	if strings.Join(got.Final, ",") != strings.Join(want.Final, ",") {
		t.Errorf("final values diverge:\n got %v\nwant %v", got.Final, want.Final)
	}
}

// TestE2EKill9Recovery is the headline crash test: kill -9 the daemon
// mid-job, restart it over the same state directory, and require the
// resumed job to report exactly what an uninterrupted run reports.
func TestE2EKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test in -short mode")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()

	port := freePort(t)
	daemon := startDaemon(t, bin, stateDir, port)
	job := submitJob(t, port, slowJob())
	waitForCheckpoint(t, stateDir, job.ID, 60*time.Second)

	// The job is mid-run with a durable snapshot behind it. Kill -9.
	if err := daemon.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	port2 := freePort(t)
	startDaemon(t, bin, stateDir, port2)
	resumed := waitDone(t, port2, job.ID, 120*time.Second)
	if resumed.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if !resumed.Result.Resumed {
		t.Error("recovered job did not resume from its snapshot")
	}

	// Reference: the identical job run uninterrupted on the new daemon.
	ref := submitJob(t, port2, slowJob())
	refDone := waitDone(t, port2, ref.ID, 120*time.Second)
	if refDone.Result == nil {
		t.Fatal("reference job has no result")
	}
	if refDone.Result.Resumed {
		t.Error("reference job unexpectedly reports resumed")
	}
	assertSameRun(t, resumed.Result, refDone.Result)
}

// TestE2ESIGTERMDrain checks the graceful path: SIGTERM makes the daemon
// stop accepting work, drain, and exit 0; a finished job's result
// survives into the next daemon life.
func TestE2ESIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test in -short mode")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()

	port := freePort(t)
	daemon := startDaemon(t, bin, stateDir, port)
	job := submitJob(t, port, map[string]any{
		"netlist": e2eNetlist,
		"engine":  "sequential",
		"horizon": 2000,
	})
	done := waitDone(t, port, job.ID, 60*time.Second)

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	werr := daemon.Wait()
	if werr != nil {
		t.Fatalf("daemon did not exit cleanly on SIGTERM: %v", werr)
	}

	port2 := freePort(t)
	startDaemon(t, bin, stateDir, port2)
	after, ok := getJob(t, port2, job.ID)
	if !ok {
		t.Fatalf("job %s missing after restart", job.ID)
	}
	if after.State != "done" || after.Result == nil {
		t.Fatalf("recovered job state %s (result %v)", after.State, after.Result)
	}
	assertSameRun(t, after.Result, done.Result)
}
