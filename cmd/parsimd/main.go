// Command parsimd serves simulations over HTTP: submit a netlist and an
// algorithm, poll for the run report, stream the waveform.
//
// Usage:
//
//	parsimd -addr :8080 -cores 8 -queue 256            # standalone node
//	parsimd -coordinator -addr :9000                    # fleet coordinator
//	parsimd -addr :8080 -join host:9000                 # worker in a fleet
//
// Endpoints (see internal/server for the full contract):
//
//	POST /v1/jobs          submit {"netlist": ..., "engine": ..., "horizon": ...}
//	GET  /v1/jobs/{id}     poll status; the run report appears when done
//	GET  /v1/jobs/{id}/vcd download the waveform of a finished job
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus metrics
//
// The daemon admits at most -queue jobs (429 beyond that) and never
// reserves more than -cores worker cores across concurrently running
// jobs. On SIGINT/SIGTERM it stops accepting work and drains running
// jobs for up to -drain before force-cancelling them.
//
// With -state-dir the daemon is crash-durable: every job is recorded in
// an append-only journal there, checkpoint-capable engines snapshot
// their runs periodically (-checkpoint-every steps), and a restarted
// daemon replays the journal — finished jobs keep their results,
// interrupted ones re-queue and resume from their last snapshot. A
// kill -9 loses at most the steps since the last checkpoint.
//
// Identical submissions (same canonicalized netlist + result-affecting
// options) are deduped against a bounded result cache of -dedup entries
// instead of re-simulated; -dedup 0 turns that off.
//
// Fleet mode: -coordinator serves the same /v1/jobs API but routes each
// submission to a worker by consistent hash of its content-addressed job
// key, spilling to ring successors when a node is full and answering 429
// only when the whole fleet is. Workers join with -join and heartbeat;
// a worker that stops heartbeating is evicted and its in-flight jobs are
// requeued on the survivors, resuming from its last checkpoint snapshot
// when the state dirs are shared. GET /metrics on the coordinator is the
// fleet-wide rollup.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parsim/internal/cluster"
	"parsim/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cores     = flag.Int("cores", runtime.GOMAXPROCS(0), "worker-core budget shared by all running jobs")
		queue     = flag.Int("queue", 256, "admission queue depth; submissions beyond it get 429")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes (413 beyond)")
		maxNodes  = flag.Int("max-nodes", 200000, "per-circuit node cap (413 beyond)")
		maxElems  = flag.Int("max-elems", 200000, "per-circuit element cap (413 beyond)")
		deadline  = flag.Duration("deadline", 2*time.Minute, "default per-job wall-clock deadline")
		maxDead   = flag.Duration("max-deadline", 10*time.Minute, "upper bound on requested per-job deadlines")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
		stateDir  = flag.String("state-dir", "", "crash-durability directory (job journal + checkpoints); empty disables")
		ckptEvery = flag.Int64("checkpoint-every", 0, "snapshot interval in time steps for durable jobs (0 = engine default)")
		dedup     = flag.Int("dedup", 256, "content-addressed dedup cache entries; identical submissions are served from it (0 disables)")

		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator instead of a simulation node")
		join        = flag.String("join", "", "coordinator address to join as a worker (host:port)")
		advertise   = flag.String("advertise", "", "address other fleet members reach this node at (default: -addr with a usable host)")
		heartbeat   = flag.Duration("heartbeat", 500*time.Millisecond, "coordinator: heartbeat interval workers are told to use")
		evictAfter  = flag.Duration("evict-after", 0, "coordinator: silence after which a worker is evicted (0 = 3x heartbeat)")
	)
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *heartbeat, *evictAfter, *dedup, *maxBody, *maxNodes, *maxElems, *drain)
		return
	}

	srv, err := server.New(server.Config{
		CoreBudget:      *cores,
		MaxQueue:        *queue,
		MaxBodyBytes:    *maxBody,
		MaxNodes:        *maxNodes,
		MaxElems:        *maxElems,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDead,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
		DedupCache:      *dedup,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsimd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("parsimd listening on %s (cores=%d queue=%d)", *addr, *cores, *queue)

	// Fleet membership: join the coordinator and heartbeat with live
	// scheduler gauges until shutdown, then leave gracefully.
	joinCtx, joinCancel := context.WithCancel(context.Background())
	joinDone := make(chan struct{})
	if *join != "" {
		jn := &cluster.Joiner{
			Coordinator: *join,
			Advertise:   advertiseAddr(*advertise, *addr),
			Cores:       *cores,
			MaxQueue:    *queue,
			StateDir:    *stateDir,
			Gauges: func() cluster.NodeGauges {
				return cluster.NodeGauges{
					QueueDepth: srv.QueueDepth(),
					Running:    srv.RunningJobs(),
					CoresInUse: srv.CoresInUse(),
					CoreBudget: srv.CoreBudget(),
				}
			},
			Logf: log.Printf,
		}
		go func() {
			defer close(joinDone)
			jn.Run(joinCtx)
		}()
	} else {
		close(joinDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// The listener failed before any signal (port in use, etc).
		joinCancel()
		fmt.Fprintln(os.Stderr, "parsimd:", err)
		os.Exit(1)
	case got := <-sig:
		log.Printf("parsimd: %v; draining (up to %v)", got, *drain)
	}

	joinCancel()
	<-joinDone
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Drain(ctx); err != nil {
		log.Printf("parsimd: drain expired; running jobs were cancelled (%v)", err)
		os.Exit(1)
	}
	log.Printf("parsimd: drained cleanly")
}

// runCoordinator serves the fleet front door until SIGINT/SIGTERM.
func runCoordinator(addr string, heartbeat, evictAfter time.Duration, cache int, maxBody int64, maxNodes, maxElems int, drain time.Duration) {
	coord := cluster.NewCoordinator(cluster.Config{
		HeartbeatEvery: heartbeat,
		EvictAfter:     evictAfter,
		CacheEntries:   cache,
		MaxBodyBytes:   maxBody,
		MaxNodes:       maxNodes,
		MaxElems:       maxElems,
		Logf:           log.Printf,
	})
	httpSrv := &http.Server{Addr: addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("parsimd coordinator listening on %s (heartbeat %v)", addr, heartbeat)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "parsimd:", err)
		os.Exit(1)
	case got := <-sig:
		log.Printf("parsimd: %v; shutting down coordinator", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	httpSrv.Shutdown(ctx)
	coord.Close()
	log.Printf("parsimd: coordinator stopped")
}

// advertiseAddr resolves the address a worker tells the fleet to reach it
// at: the explicit -advertise when given, otherwise -addr with a bare or
// wildcard host rewritten to localhost (the single-host fleet default).
func advertiseAddr(advertise, listen string) string {
	if advertise != "" {
		return advertise
	}
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}
