// Command parsimd serves simulations over HTTP: submit a netlist and an
// algorithm, poll for the run report, stream the waveform.
//
// Usage:
//
//	parsimd -addr :8080 -cores 8 -queue 256
//
// Endpoints (see internal/server for the full contract):
//
//	POST /v1/jobs          submit {"netlist": ..., "engine": ..., "horizon": ...}
//	GET  /v1/jobs/{id}     poll status; the run report appears when done
//	GET  /v1/jobs/{id}/vcd download the waveform of a finished job
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus metrics
//
// The daemon admits at most -queue jobs (429 beyond that) and never
// reserves more than -cores worker cores across concurrently running
// jobs. On SIGINT/SIGTERM it stops accepting work and drains running
// jobs for up to -drain before force-cancelling them.
//
// With -state-dir the daemon is crash-durable: every job is recorded in
// an append-only journal there, checkpoint-capable engines snapshot
// their runs periodically (-checkpoint-every steps), and a restarted
// daemon replays the journal — finished jobs keep their results,
// interrupted ones re-queue and resume from their last snapshot. A
// kill -9 loses at most the steps since the last checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"parsim/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cores     = flag.Int("cores", runtime.GOMAXPROCS(0), "worker-core budget shared by all running jobs")
		queue     = flag.Int("queue", 256, "admission queue depth; submissions beyond it get 429")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes (413 beyond)")
		maxNodes  = flag.Int("max-nodes", 200000, "per-circuit node cap (413 beyond)")
		maxElems  = flag.Int("max-elems", 200000, "per-circuit element cap (413 beyond)")
		deadline  = flag.Duration("deadline", 2*time.Minute, "default per-job wall-clock deadline")
		maxDead   = flag.Duration("max-deadline", 10*time.Minute, "upper bound on requested per-job deadlines")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for running jobs")
		stateDir  = flag.String("state-dir", "", "crash-durability directory (job journal + checkpoints); empty disables")
		ckptEvery = flag.Int64("checkpoint-every", 0, "snapshot interval in time steps for durable jobs (0 = engine default)")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		CoreBudget:      *cores,
		MaxQueue:        *queue,
		MaxBodyBytes:    *maxBody,
		MaxNodes:        *maxNodes,
		MaxElems:        *maxElems,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDead,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsimd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("parsimd listening on %s (cores=%d queue=%d)", *addr, *cores, *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// The listener failed before any signal (port in use, etc).
		fmt.Fprintln(os.Stderr, "parsimd:", err)
		os.Exit(1)
	case got := <-sig:
		log.Printf("parsimd: %v; draining (up to %v)", got, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Drain(ctx); err != nil {
		log.Printf("parsimd: drain expired; running jobs were cancelled (%v)", err)
		os.Exit(1)
	}
	log.Printf("parsimd: drained cleanly")
}
