// Command netlist inspects and generates circuit netlists.
//
// Usage:
//
//	netlist -stats design.net            # summarise a netlist
//	netlist -gen mult16-gate -o m.net    # write a benchmark circuit
package main

import (
	"flag"
	"fmt"
	"os"

	"parsim"
)

func main() {
	var (
		statsPath = flag.String("stats", "", "netlist file to summarise")
		genName   = flag.String("gen", "", "benchmark circuit to generate: inverter-array, mult16-gate, mult16-func, microprocessor, feedback-chain, random")
		out       = flag.String("o", "", "output file (default stdout)")
		seed      = flag.Int64("seed", 1, "seed for -gen random")
		size      = flag.Int("size", 100, "size for -gen random")
	)
	flag.Parse()

	switch {
	case *statsPath != "":
		f, err := os.Open(*statsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		c, err := parsim.ReadNetlist(f)
		if err != nil {
			fatal(err)
		}
		fmt.Print(parsim.NetlistSummary(c))
	case *genName != "":
		var c *parsim.Circuit
		switch *genName {
		case "inverter-array":
			c = parsim.BenchInverterArray(parsim.DefaultInverterArray())
		case "mult16-gate":
			c = parsim.BenchGateMultiplier(parsim.DefaultMultiplier())
		case "mult16-func":
			c = parsim.BenchFuncMultiplier(parsim.DefaultMultiplier())
		case "microprocessor":
			c = parsim.BenchCPU(parsim.DefaultCPU())
		case "feedback-chain":
			c = parsim.BenchFeedbackChain(31)
		case "random":
			c = parsim.RandomCircuit(*seed, *size)
		default:
			fatal(fmt.Errorf("unknown benchmark %q", *genName))
		}
		if *out == "" {
			if err := parsim.WriteNetlist(os.Stdout, c); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := parsim.WriteNetlist(f, c); err != nil {
			_ = f.Close()
			fatal(err)
		}
		// The netlist isn't durable until the file closes cleanly.
		if err := f.Close(); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "netlist: need -stats or -gen (see -help)")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlist:", err)
	os.Exit(1)
}
