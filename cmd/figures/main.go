// Command figures regenerates the paper's evaluation: every figure (1-5)
// and every quantitative text claim (t1-t4). See EXPERIMENTS.md for the
// experiment index.
//
// Usage:
//
//	figures                 # every experiment on the virtual 16-CPU model
//	figures -fig fig5       # one experiment
//	figures -mode real      # measure the actual parallel simulators
//	figures -json out.json  # also write machine-readable series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"parsim"
	"parsim/internal/fleetbench"
)

func main() {
	var (
		figID = flag.String("fig", "all", "experiment id: fig1..fig5, t1..t4, or all")
		mode  = flag.String("mode", "model", "model (virtual 16-CPU machine) or real (goroutines)")
		maxP  = flag.Int("maxp", 0, "highest processor count (default: 16 model, NumCPU real)")
		quick = flag.Bool("quick", false, "smaller horizons for a fast pass")
		chart = flag.Bool("chart", true, "render ASCII charts alongside the tables")
		jsonP = flag.String("json", "", "write the experiments as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()

	var m parsim.ExperimentMode
	switch *mode {
	case "model":
		m = parsim.ModelMode
	case "real":
		m = parsim.RealMode
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	cfg := parsim.DefaultExperimentConfig(m)
	cfg.Quick = *quick
	if *maxP > 0 {
		cfg.MaxP = *maxP
	}

	ids := parsim.ExperimentIDs()
	if *figID != "all" {
		ids = strings.Split(*figID, ",")
	}
	var figures []*parsim.Figure
	for _, id := range ids {
		var f *parsim.Figure
		var err error
		if strings.EqualFold(id, "d1") {
			// The fleet experiment boots real servers, which the harness
			// cannot import (cycle through the facade), so it lives in its
			// own package and is dispatched here.
			f, err = fleetbench.Run(fleetbench.Options{
				Real:  m == parsim.RealMode,
				Quick: *quick,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				},
			})
		} else {
			f, err = parsim.Experiment(id, cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		figures = append(figures, f)
		if *jsonP == "" {
			fmt.Println(f.Format())
			if *chart {
				fmt.Println(f.Chart(72, 18))
			}
		}
	}
	if *jsonP != "" {
		if err := writeJSON(*jsonP, *mode, *quick, figures); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
}

// jsonDoc is the machine-readable snapshot format: enough provenance to
// compare two runs, plus the raw series of every experiment.
type jsonDoc struct {
	Mode    string           `json:"mode"`
	Quick   bool             `json:"quick"`
	Figures []*parsim.Figure `json:"figures"`
}

func writeJSON(path, mode string, quick bool, figures []*parsim.Figure) error {
	buf, err := json.MarshalIndent(jsonDoc{Mode: mode, Quick: quick, Figures: figures}, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
