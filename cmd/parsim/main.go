// Command parsim simulates a netlist with any of the registered
// algorithms.
//
// Usage:
//
//	parsim -netlist adder.net -alg async -workers 4 -horizon 10000 \
//	       -watch sum,carry -vcd out.vcd
//
// The built-in benchmark circuits are available without a netlist file via
// -bench (inverter-array, mult16-gate, mult16-func, microprocessor,
// feedback-chain). -timeout bounds the wall-clock time of a run; on expiry
// the partial statistics accumulated so far are printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"parsim"
	"parsim/internal/engine"
)

func main() {
	var (
		netlistPath = flag.String("netlist", "", "netlist file to simulate")
		benchName   = flag.String("bench", "", "built-in benchmark circuit: inverter-array, mult16-gate, mult16-func, microprocessor, feedback-chain")
		algName     = flag.String("alg", "async", "algorithm: "+strings.Join(engine.Names(), ", ")+" (or an alias: seq, event, async, dist, tw, cm)")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		horizon     = flag.Int64("horizon", 1000, "simulation horizon in ticks")
		timeout     = flag.Duration("timeout", 0, "cancel the run after this wall-clock duration (0 = none)")
		watch       = flag.String("watch", "", "comma-separated node names to trace")
		vcdPath     = flag.String("vcd", "", "write watched-node waveforms to this VCD file")
		noSteal     = flag.Bool("no-steal", false, "event-driven: disable work stealing")
		central     = flag.Bool("central", false, "event-driven: use the contended central queue")
		spin        = flag.Int64("spin", 0, "synthetic work multiplier per evaluation")
		summary     = flag.Bool("summary", false, "print circuit statistics before simulating")
	)
	flag.Parse()

	c, err := loadCircuit(*netlistPath, *benchName)
	if err != nil {
		fatal(err)
	}
	if *summary {
		fmt.Print(parsim.NetlistSummary(c))
	}

	// Resolve the algorithm through the engine registry: the same dispatch
	// table the library facade and the figure harness use.
	eng, err := engine.Get(*algName)
	if err != nil {
		fatal(err)
	}
	cfg := engine.Config{
		Workers:      *workers,
		Horizon:      parsim.Time(*horizon),
		CostSpin:     *spin,
		NoSteal:      *noSteal,
		CentralQueue: *central,
	}
	if eng.Name() == "sequential" {
		cfg.Workers = 1
	}

	var rec *parsim.Recorder
	var watched []parsim.NodeID
	if *watch != "" {
		for _, name := range strings.Split(*watch, ",") {
			n := c.FindNode(strings.TrimSpace(name))
			if n == nil {
				fatal(fmt.Errorf("no node named %q", name))
			}
			watched = append(watched, n.ID)
		}
		rec = parsim.NewRecorderFor(watched...)
		cfg.Probe = rec
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := engine.RunEngine(ctx, eng, c, cfg)
	if err != nil {
		if rep == nil || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		fmt.Printf("run cancelled after %v: %v (partial statistics follow)\n", *timeout, err)
	}
	fmt.Println(rep.Run.String())

	for _, n := range watched {
		fmt.Printf("%s: final=%v, %d changes\n",
			c.Nodes[n].Name, rep.Final[n], len(rec.History(n)))
	}
	if *vcdPath != "" && rec != nil {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := parsim.WriteVCD(f, c, rec, cfg.Horizon, watched...); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *vcdPath)
	}
}

func loadCircuit(path, bench string) (*parsim.Circuit, error) {
	switch {
	case path != "" && bench != "":
		return nil, fmt.Errorf("give either -netlist or -bench, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parsim.ReadNetlist(f)
	case bench != "":
		switch bench {
		case "inverter-array":
			return parsim.BenchInverterArray(parsim.DefaultInverterArray()), nil
		case "mult16-gate":
			return parsim.BenchGateMultiplier(parsim.DefaultMultiplier()), nil
		case "mult16-func":
			return parsim.BenchFuncMultiplier(parsim.DefaultMultiplier()), nil
		case "microprocessor":
			return parsim.BenchCPU(parsim.DefaultCPU()), nil
		case "feedback-chain":
			return parsim.BenchFeedbackChain(31), nil
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	return nil, fmt.Errorf("need -netlist or -bench")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parsim:", strings.TrimPrefix(err.Error(), "parsim: "))
	os.Exit(1)
}
