// Command parsim simulates a netlist with any of the four algorithms.
//
// Usage:
//
//	parsim -netlist adder.net -alg async -workers 4 -horizon 10000 \
//	       -watch sum,carry -vcd out.vcd
//
// The built-in benchmark circuits are available without a netlist file via
// -bench (inverter-array, mult16-gate, mult16-func, microprocessor,
// feedback-chain).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"parsim"
)

func main() {
	var (
		netlistPath = flag.String("netlist", "", "netlist file to simulate")
		benchName   = flag.String("bench", "", "built-in benchmark circuit: inverter-array, mult16-gate, mult16-func, microprocessor, feedback-chain")
		algName     = flag.String("alg", "async", "algorithm: seq, event, compiled, async, dist, timewarp, cm")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		horizon     = flag.Int64("horizon", 1000, "simulation horizon in ticks")
		watch       = flag.String("watch", "", "comma-separated node names to trace")
		vcdPath     = flag.String("vcd", "", "write watched-node waveforms to this VCD file")
		noSteal     = flag.Bool("no-steal", false, "event-driven: disable work stealing")
		central     = flag.Bool("central", false, "event-driven: use the contended central queue")
		spin        = flag.Int64("spin", 0, "synthetic work multiplier per evaluation")
		summary     = flag.Bool("summary", false, "print circuit statistics before simulating")
	)
	flag.Parse()

	c, err := loadCircuit(*netlistPath, *benchName)
	if err != nil {
		fatal(err)
	}
	if *summary {
		fmt.Print(parsim.NetlistSummary(c))
	}

	alg, err := parseAlg(*algName)
	if err != nil {
		fatal(err)
	}
	opts := parsim.Options{
		Algorithm:    alg,
		Workers:      *workers,
		Horizon:      parsim.Time(*horizon),
		CostSpin:     *spin,
		NoSteal:      *noSteal,
		CentralQueue: *central,
	}
	if alg == parsim.Sequential {
		opts.Workers = 1
	}

	var rec *parsim.Recorder
	var watched []parsim.NodeID
	if *watch != "" {
		for _, name := range strings.Split(*watch, ",") {
			n := c.FindNode(strings.TrimSpace(name))
			if n == nil {
				fatal(fmt.Errorf("no node named %q", name))
			}
			watched = append(watched, n.ID)
		}
		rec = parsim.NewRecorderFor(watched...)
		opts.Probe = rec
	}

	res, err := parsim.Simulate(c, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println(res.Stats.String())

	for _, n := range watched {
		fmt.Printf("%s: final=%v, %d changes\n",
			c.Nodes[n].Name, res.Final[n], len(rec.History(n)))
	}
	if *vcdPath != "" && rec != nil {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := parsim.WriteVCD(f, c, rec, opts.Horizon, watched...); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *vcdPath)
	}
}

func loadCircuit(path, bench string) (*parsim.Circuit, error) {
	switch {
	case path != "" && bench != "":
		return nil, fmt.Errorf("give either -netlist or -bench, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parsim.ReadNetlist(f)
	case bench != "":
		switch bench {
		case "inverter-array":
			return parsim.BenchInverterArray(parsim.DefaultInverterArray()), nil
		case "mult16-gate":
			return parsim.BenchGateMultiplier(parsim.DefaultMultiplier()), nil
		case "mult16-func":
			return parsim.BenchFuncMultiplier(parsim.DefaultMultiplier()), nil
		case "microprocessor":
			return parsim.BenchCPU(parsim.DefaultCPU()), nil
		case "feedback-chain":
			return parsim.BenchFeedbackChain(31), nil
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	return nil, fmt.Errorf("need -netlist or -bench")
}

func parseAlg(s string) (parsim.Algorithm, error) {
	switch s {
	case "seq", "sequential":
		return parsim.Sequential, nil
	case "event", "event-driven":
		return parsim.EventDriven, nil
	case "compiled":
		return parsim.Compiled, nil
	case "async", "asynchronous":
		return parsim.Async, nil
	case "dist", "distributed":
		return parsim.DistAsync, nil
	case "timewarp", "tw", "optimistic":
		return parsim.TimeWarp, nil
	case "cm", "chandy-misra":
		return parsim.ChandyMisra, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want seq, event, compiled, async, dist, timewarp or cm)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parsim:", err)
	os.Exit(1)
}
