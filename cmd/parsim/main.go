// Command parsim simulates a netlist with any of the registered
// algorithms.
//
// Usage:
//
//	parsim -netlist adder.net -alg async -workers 4 -horizon 10000 \
//	       -watch sum,carry -vcd out.vcd
//
// The built-in benchmark circuits are available without a netlist file via
// -bench (inverter-array, mult16-gate, mult16-func, microprocessor,
// feedback-chain). -timeout bounds the wall-clock time of a run; on expiry
// the partial statistics accumulated so far are printed.
//
// -json replaces the text summary with a machine-readable run report on
// stdout — the same schema the parsimd daemon serves for finished jobs.
//
// -alg vector selects the bit-parallel batched engine: -lanes packs seed-
// shifted stimulus vectors into one run (64 per machine word, planes widen
// beyond that), -lane-stride sets the per-lane rand/gray seed offset, and
// -probe-lane picks the lane that -watch, -vcd and the final values
// observe.
//
// -alg jit selects the statically compiled engine: the levelized schedule
// is lowered at run start into per-level fused batch loops over flat
// struct-of-arrays planes — the fastest scalar engine on unit-delay
// circuits, and it takes the same -lanes/-lane-stride/-probe-lane axis as
// the vector engine.
//
// -faults turns the run into concurrent stuck-at fault simulation on the
// vector engine (auto-selected when -alg is not given): lane 0 simulates
// the good machine, every other lane injects one fault from the circuit's
// collapsed stuck-at list, and the run reports fault coverage.
// -fault-passes caps the chunked passes; -fault-statuses lists every fault
// site with its detection step in the JSON report.
//
// -checkpoint writes a crash-durable snapshot of the run into a file at a
// periodic quiescent point (atomic rewrite — a crash mid-save leaves the
// previous snapshot intact); -checkpoint-every sets the interval in time
// steps. -resume continues from such a snapshot under the same netlist and
// options, replaying bit-identically to an uninterrupted run. Sequential,
// compiled and vector runs (including fault simulation) support it.
//
// -engine selects the engine by registry name and overrides -alg; its
// headline value is `-engine auto`, which profiles the circuit statically,
// ranks every engine through the cost model, and runs the predicted winner
// (the selection is printed, and lands under "selected" in the JSON
// report). -workers then acts as a budget the winner may undershoot.
//
// -lint warn|strict runs the static analyzer before simulating and refuses
// hazardous circuits (zero-delay combinational cycles, undriven inputs).
// The analyze subcommand runs the same analyzer standalone:
//
//	parsim analyze -netlist adder.net -workers 4 -strategy blocks
//	parsim analyze -bench feedback-chain -json
//
// Exit status 1 when the report contains Error-severity diagnostics.
//
// The profile subcommand prints the static fingerprint engine=auto selects
// on — levelization, fanout, activity estimate, feedback census, partition
// cut quality — plus the ranked per-engine predictions for a worker budget:
//
//	parsim profile -bench mult16-gate -workers 8
//	parsim profile -netlist adder.net -json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"parsim"
	"parsim/internal/analyze"
	"parsim/internal/engine"
	"parsim/internal/machine"
	"parsim/internal/partition"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		runProfile(os.Args[2:])
		return
	}
	var (
		netlistPath = flag.String("netlist", "", "netlist file to simulate")
		benchName   = flag.String("bench", "", "built-in benchmark circuit: inverter-array, mult16-gate, mult16-func, microprocessor, feedback-chain")
		algName     = flag.String("alg", "async", "algorithm: "+strings.Join(engine.Names(), ", ")+" (or an alias: seq, event, async, dist, tw, cm)")
		engName     = flag.String("engine", "", "engine registry name, overrides -alg; \"auto\" profiles the circuit and runs the cost model's predicted winner")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		horizon     = flag.Int64("horizon", 1000, "simulation horizon in ticks")
		timeout     = flag.Duration("timeout", 0, "cancel the run after this wall-clock duration (0 = none)")
		watch       = flag.String("watch", "", "comma-separated node names to trace")
		vcdPath     = flag.String("vcd", "", "write watched-node waveforms to this VCD file")
		noSteal     = flag.Bool("no-steal", false, "event-driven: disable work stealing")
		central     = flag.Bool("central", false, "event-driven: use the contended central queue")
		lanes       = flag.Int("lanes", 0, fmt.Sprintf("vector: stimulus lanes, 1-%d (0 = 64, one word; wider counts use multi-word planes)", parsim.MaxLanes))
		laneStride  = flag.Int64("lane-stride", 0, "vector: per-lane rand/gray seed offset (0 = 1)")
		probeLane   = flag.Int("probe-lane", 0, "vector: lane observed by -watch/-vcd and reported as final values")
		faults      = flag.Bool("faults", false, "run concurrent stuck-at fault simulation (vector engine; auto-selected unless -alg is given)")
		faultPasses = flag.Int("fault-passes", 0, "faults: cap the number of chunked fault passes (0 = simulate the whole list)")
		faultStat   = flag.Bool("fault-statuses", false, "faults: include per-fault site/step rows in the JSON report")
		spin        = flag.Int64("spin", 0, "synthetic work multiplier per evaluation")
		summary     = flag.Bool("summary", false, "print circuit statistics before simulating")
		lintFlag    = flag.String("lint", "off", "pre-flight static analysis: off, warn (refuse errors), strict (refuse warnings too)")
		watchdog    = flag.Duration("watchdog", 0, "abort the run when progress stalls for this long (0 = off)")
		fallback    = flag.Bool("fallback", false, "retry on the sequential engine if the run panics or stalls")
		fbRetries   = flag.Int("fallback-retries", 0, "fallback: attempts on the fallback engine before giving up (0 = 1)")
		fbDelay     = flag.Duration("fallback-delay", 0, "fallback: base delay of the capped exponential backoff between attempts")
		ckptPath    = flag.String("checkpoint", "", "write a crash-durable snapshot to this file at a periodic quiescent point")
		ckptEvery   = flag.Int64("checkpoint-every", 0, "snapshot interval in time steps (0 = 256)")
		resumeFrom  = flag.String("resume", "", "resume from a snapshot file written by -checkpoint; the run must use the same netlist and options")
		jsonOut     = flag.Bool("json", false, "emit the run report as JSON (the same schema the parsimd daemon serves)")
		submitAddr  = flag.String("submit", "", "run remotely: submit the job to a parsimd node or fleet coordinator at this address and poll for the result")
	)
	flag.Parse()

	lint, err := engine.ParseLintMode(*lintFlag)
	if err != nil {
		fatal(err)
	}

	c, err := loadCircuit(*netlistPath, *benchName)
	if err != nil {
		fatal(err)
	}
	if *summary {
		fmt.Print(parsim.NetlistSummary(c))
	}

	// Resolve the algorithm through the facade, which dispatches through
	// the same engine registry the figure harness and the daemon use.
	// Fault simulation lives on the vector engine; -faults implies it
	// unless the user explicitly picked an algorithm.
	if *faults {
		algSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "alg" || f.Name == "engine" {
				algSet = true
			}
		})
		if !algSet {
			*algName = "vector"
		}
	}
	name := *algName
	if *engName != "" {
		name = *engName
	}
	eng, err := engine.Get(name)
	if err != nil {
		fatal(err)
	}

	if *submitAddr != "" {
		var watchNames []string
		if *watch != "" {
			for _, n := range strings.Split(*watch, ",") {
				watchNames = append(watchNames, strings.TrimSpace(n))
			}
		}
		runSubmit(*submitAddr, c, submitRequest{
			Engine:         eng.Name(),
			Workers:        *workers,
			Horizon:        *horizon,
			DeadlineMS:     timeout.Milliseconds(),
			WatchdogMS:     watchdog.Milliseconds(),
			Lint:           *lintFlag,
			Fallback:       *fallback,
			CostSpin:       *spin,
			Watch:          watchNames,
			Lanes:          *lanes,
			LaneStride:     *laneStride,
			ProbeLane:      *probeLane,
			FaultSim:       *faults,
			FaultMaxPasses: *faultPasses,
			FaultStatuses:  *faultStat,
		}, *jsonOut)
		return
	}

	opts := parsim.Options{
		Engine:          eng.Name(),
		Workers:         *workers,
		Horizon:         parsim.Time(*horizon),
		CostSpin:        *spin,
		NoSteal:         *noSteal,
		CentralQueue:    *central,
		Lint:            lint,
		Watchdog:        *watchdog,
		Fallback:        *fallback,
		FallbackRetries: *fbRetries,
		FallbackDelay:   *fbDelay,
		Checkpoint:      *ckptPath,
		CheckpointEvery: *ckptEvery,
		ResumeFrom:      *resumeFrom,
		Lanes:           *lanes,
		LaneStride:      *laneStride,
		ProbeLane:       *probeLane,
		FaultSim:        *faults,
		FaultMaxPasses:  *faultPasses,
		FaultStatuses:   *faultStat,
	}
	if eng.Name() == parsim.Sequential.String() {
		opts.Workers = 1
	}

	var rec *parsim.Recorder
	var watched []parsim.NodeID
	if *watch != "" {
		for _, name := range strings.Split(*watch, ",") {
			n := c.FindNode(strings.TrimSpace(name))
			if n == nil {
				fatal(fmt.Errorf("no node named %q", name))
			}
			watched = append(watched, n.ID)
		}
		rec = parsim.NewRecorderFor(watched...)
		opts.Probe = rec
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := parsim.SimulateContext(ctx, c, opts)
	if err != nil {
		switch {
		case res == nil:
			fatal(err)
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "run cancelled after %v: %v (partial statistics follow)\n", *timeout, err)
		case parsim.IsRecoverable(err):
			fmt.Fprintf(os.Stderr, "run aborted by the supervisor: %v (partial statistics follow)\n", err)
		default:
			fatal(err)
		}
	}
	if *jsonOut {
		// The run-report schema shared with the parsimd daemon
		// (Result.MarshalJSON); diagnostics above go to stderr so stdout
		// stays parseable.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		if res.Degraded {
			fmt.Printf("%s engine failed (%v); results below come from the sequential fallback\n",
				eng.Name(), res.Fault)
		}
		if sel := res.Selected; sel != nil {
			fmt.Printf("auto selected %s (workers %d", sel.Engine, sel.Workers)
			if sel.Strategy != "" {
				fmt.Printf(", strategy %s", sel.Strategy)
			}
			if sel.Lanes > 0 {
				fmt.Printf(", lanes %d", sel.Lanes)
			}
			fmt.Printf(", confidence %.2f)\n", sel.Confidence)
		}
		fmt.Println(res.Stats.String())
		if res.FaultCoverage != nil {
			fmt.Println(res.FaultCoverage.String())
		}
		for _, n := range watched {
			fmt.Printf("%s: final=%v, %d changes\n",
				c.Nodes[n].Name, res.Final[n], len(rec.History(n)))
		}
	}
	if *vcdPath != "" && rec != nil {
		if err := writeVCDFile(*vcdPath, c, rec, opts.Horizon, watched); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("wrote %s\n", *vcdPath)
		}
	}
}

// writeVCDFile renders the recorded waveforms into path, propagating the
// Close error — the write isn't durable until the file closes cleanly.
func writeVCDFile(path string, c *parsim.Circuit, rec *parsim.Recorder, horizon parsim.Time, watched []parsim.NodeID) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := parsim.WriteVCD(f, c, rec, horizon, watched...); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// runAnalyze implements the analyze subcommand: run the static analyzer
// standalone and print the report as text or JSON. Exits 1 when the
// circuit has Error-severity diagnostics (the ones LintWarn refuses).
func runAnalyze(argv []string) {
	fs := flag.NewFlagSet("parsim analyze", flag.ExitOnError)
	var (
		netlistPath = fs.String("netlist", "", "netlist file to analyze")
		benchName   = fs.String("bench", "", "built-in benchmark circuit (see parsim -help)")
		workers     = fs.Int("workers", 0, "include a partition-quality report for this many workers (0 = skip)")
		stratName   = fs.String("strategy", "round-robin", "partition strategy: round-robin, blocks, cost-lpt")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(argv); err != nil {
		fatal(err)
	}
	strategy, err := partition.ParseStrategy(*stratName)
	if err != nil {
		fatal(err)
	}
	c, err := loadCircuit(*netlistPath, *benchName)
	if err != nil {
		fatal(err)
	}
	rep := analyze.Analyze(c, analyze.Options{Workers: *workers, Strategy: strategy})
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if errs, _, _ := rep.Counts(); errs > 0 {
		os.Exit(1)
	}
}

// runProfile implements the profile subcommand: compute the static circuit
// fingerprint and the ranked per-engine predictions the auto engine selects
// from, without running a simulation.
func runProfile(argv []string) {
	fs := flag.NewFlagSet("parsim profile", flag.ExitOnError)
	var (
		netlistPath = fs.String("netlist", "", "netlist file to profile")
		benchName   = fs.String("bench", "", "built-in benchmark circuit (see parsim -help)")
		workers     = fs.Int("workers", runtime.NumCPU(), "worker budget for the engine predictions")
		lanes       = fs.Int("lanes", 0, "stimulus lanes the job would use (forces the vector engine when > 1)")
		spin        = fs.Int64("spin", 0, "synthetic work multiplier per evaluation, as -spin on a run")
		jsonOut     = fs.Bool("json", false, "emit profile and predictions as JSON instead of text")
	)
	if err := fs.Parse(argv); err != nil {
		fatal(err)
	}
	c, err := loadCircuit(*netlistPath, *benchName)
	if err != nil {
		fatal(err)
	}
	prof := parsim.Profile(c)
	preds := machine.Predict(prof, machine.PredictOptions{
		MaxWorkers: *workers,
		Lanes:      *lanes,
		CostSpin:   *spin,
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		err := enc.Encode(struct {
			Profile     *parsim.CircuitProfile `json:"profile"`
			Predictions []machine.Prediction   `json:"predictions"`
			Confidence  float64                `json:"confidence"`
		}{prof, preds, machine.Confidence(preds)})
		if err != nil {
			fatal(err)
		}
		return
	}
	if err := prof.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\nengine predictions (budget %d workers, confidence %.2f):\n",
		*workers, machine.Confidence(preds))
	for i, pr := range preds {
		line := fmt.Sprintf("  %d. %-17s span %10.1f  workers %d", i+1, pr.Engine, pr.Span, pr.Workers)
		if pr.Strategy != "" {
			line += "  strategy " + pr.Strategy
		}
		if pr.Lanes > 0 {
			line += fmt.Sprintf("  lanes %d", pr.Lanes)
		}
		if !pr.Eligible {
			line += "  [ineligible: " + pr.Reason + "]"
		}
		fmt.Println(line)
	}
}

func loadCircuit(path, bench string) (*parsim.Circuit, error) {
	switch {
	case path != "" && bench != "":
		return nil, fmt.Errorf("give either -netlist or -bench, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parsim.ReadNetlist(f)
	case bench != "":
		switch bench {
		case "inverter-array":
			return parsim.BenchInverterArray(parsim.DefaultInverterArray()), nil
		case "mult16-gate":
			return parsim.BenchGateMultiplier(parsim.DefaultMultiplier()), nil
		case "mult16-func":
			return parsim.BenchFuncMultiplier(parsim.DefaultMultiplier()), nil
		case "microprocessor":
			return parsim.BenchCPU(parsim.DefaultCPU()), nil
		case "feedback-chain":
			return parsim.BenchFeedbackChain(31), nil
		}
		return nil, fmt.Errorf("unknown benchmark %q", bench)
	}
	return nil, fmt.Errorf("need -netlist or -bench")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parsim:", strings.TrimPrefix(err.Error(), "parsim: "))
	os.Exit(1)
}
