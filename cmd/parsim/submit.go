package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"parsim"
)

// submitRequest mirrors the parsimd submission body (the daemon's
// jobRequest wire format), built from the same flags a local run uses.
type submitRequest struct {
	Netlist        string   `json:"netlist"`
	Engine         string   `json:"engine"`
	Workers        int      `json:"workers,omitempty"`
	Horizon        int64    `json:"horizon"`
	DeadlineMS     int64    `json:"deadline_ms,omitempty"`
	WatchdogMS     int64    `json:"watchdog_ms,omitempty"`
	Lint           string   `json:"lint,omitempty"`
	Fallback       bool     `json:"fallback,omitempty"`
	CostSpin       int64    `json:"cost_spin,omitempty"`
	Watch          []string `json:"watch,omitempty"`
	Lanes          int      `json:"lanes,omitempty"`
	LaneStride     int64    `json:"lane_stride,omitempty"`
	ProbeLane      int      `json:"probe_lane,omitempty"`
	FaultSim       bool     `json:"fault_sim,omitempty"`
	FaultMaxPasses int      `json:"fault_max_passes,omitempty"`
	FaultStatuses  bool     `json:"fault_statuses,omitempty"`
}

// submitBaseURL normalises -submit into a URL prefix.
func submitBaseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// runSubmit ships the run to a parsimd node or fleet coordinator instead
// of simulating locally: POST the job, poll until it reaches a terminal
// state, then print the result — the JSON view with -json, or the usual
// text summary. The submission endpoint is the same on both a standalone
// node and a coordinator, so -submit works against either.
func runSubmit(addr string, c *parsim.Circuit, req submitRequest, jsonOut bool) {
	var netText bytes.Buffer
	if err := parsim.WriteNetlist(&netText, c); err != nil {
		fatal(err)
	}
	req.Netlist = netText.String()

	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	base := submitBaseURL(addr)
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(fmt.Errorf("submit to %s: %w", addr, err))
	}
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		fatal(fmt.Errorf("submit to %s: reading response: %w", addr, err))
	}
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
		// 202: queued, poll below. 200: a coordinator dedup hit — the view
		// already carries the finished result.
	case http.StatusTooManyRequests:
		retry := resp.Header.Get("Retry-After")
		fatal(fmt.Errorf("fleet full (429, retry after %ss): %s", retry, strings.TrimSpace(string(rb))))
	default:
		fatal(fmt.Errorf("submit rejected with status %d: %s", resp.StatusCode, strings.TrimSpace(string(rb))))
	}

	var view map[string]any
	if err := json.Unmarshal(rb, &view); err != nil {
		fatal(fmt.Errorf("malformed submit response: %w", err))
	}
	id, _ := view["id"].(string)
	if id == "" {
		fatal(fmt.Errorf("submit response carries no job id: %s", strings.TrimSpace(string(rb))))
	}
	if !jsonOut {
		fmt.Printf("submitted %s to %s\n", id, addr)
	}

	for !terminalState(view) {
		time.Sleep(150 * time.Millisecond)
		view, err = fetchView(client, base, id)
		if err != nil {
			fatal(err)
		}
	}
	printView(view, jsonOut)
}

func terminalState(view map[string]any) bool {
	switch view["state"] {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

func fetchView(client *http.Client, base, id string) (map[string]any, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return nil, fmt.Errorf("polling job %s: %w", id, err)
	}
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("polling job %s: %w", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("polling job %s: status %d: %s", id, resp.StatusCode, strings.TrimSpace(string(rb)))
	}
	var view map[string]any
	if err := json.Unmarshal(rb, &view); err != nil {
		return nil, fmt.Errorf("polling job %s: %w", id, err)
	}
	return view, nil
}

// printView renders a terminal job view: the raw JSON with -json (the
// daemon's wire schema, indented), otherwise the same text summary a
// local run prints, decoded from the embedded result.
func printView(view map[string]any, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(view); err != nil {
			fatal(err)
		}
		if view["state"] != "done" {
			os.Exit(1)
		}
		return
	}
	state, _ := view["state"].(string)
	if state != "done" {
		msg, _ := view["error"].(string)
		fatal(fmt.Errorf("job %v %s: %s", view["id"], state, msg))
	}
	if node, ok := view["node"].(string); ok {
		fmt.Printf("ran on node %s", node)
		if dedup, _ := view["deduped"].(bool); dedup {
			fmt.Printf(" (served from the dedup cache)")
		}
		fmt.Println()
	}
	if runMS, ok := view["run_ms"].(float64); ok {
		fmt.Printf("run time %s\n", time.Duration(runMS)*time.Millisecond)
	}
	rawRes, err := json.Marshal(view["result"])
	if err != nil {
		fatal(err)
	}
	res := new(parsim.Result)
	if err := json.Unmarshal(rawRes, res); err != nil {
		fatal(fmt.Errorf("decoding result: %w", err))
	}
	fmt.Println(res.Stats.String())
	if res.FaultCoverage != nil {
		fmt.Println(res.FaultCoverage.String())
	}
}
