package parsim

import (
	"io"

	"parsim/internal/gen"
	"parsim/internal/netlist"
	"parsim/internal/trace"
)

// The paper's benchmark circuits, re-exported so applications and
// benchmarks can reproduce the evaluation workloads.

// InverterArrayConfig parameterises BenchInverterArray.
type InverterArrayConfig = gen.InverterArrayConfig

// MultiplierConfig parameterises the two multiplier representations.
type MultiplierConfig = gen.MultiplierConfig

// CPUConfig parameterises the microprocessor benchmark.
type CPUConfig = gen.CPUConfig

// ISS is the microprocessor's reference instruction-set simulator.
type ISS = gen.ISS

var (
	// BenchInverterArray builds the paper's 32x16 control circuit (or any
	// other geometry): independent inverter chains whose toggle rate sets
	// the number of events per time step.
	BenchInverterArray = gen.InverterArray
	// DefaultInverterArray is the paper's 32x16 configuration.
	DefaultInverterArray = gen.DefaultInverterArray
	// BenchGateMultiplier builds the 16-bit multiplier at the gate level
	// (thousands of two-input gates).
	BenchGateMultiplier = gen.GateMultiplier
	// BenchFuncMultiplier builds the same multiplier at the functional
	// level (~100 elements: 3-bit multipliers, adders and glue).
	BenchFuncMultiplier = gen.FuncMultiplier
	// DefaultMultiplier is the paper's 16-bit configuration.
	DefaultMultiplier = gen.DefaultMultiplier
	// BenchCPU builds the pipelined microprocessor from gates plus ROM/RAM.
	BenchCPU = gen.CPU
	// DefaultCPU is the demo-program configuration.
	DefaultCPU = gen.DefaultCPU
	// DefaultCPUProgram is the demo program (sum, Fibonacci, memory test).
	DefaultCPUProgram = gen.DefaultCPUProgram
	// CPUHorizon converts pipeline cycles to a simulation horizon.
	CPUHorizon = gen.CPUHorizon
	// CPURegValue reads an architectural register out of final node values.
	CPURegValue = gen.CPURegValue
	// NewISS builds the reference instruction-set simulator.
	NewISS = gen.NewISS
	// BenchFeedbackChain builds the asynchronous algorithm's worst case: a
	// loadable ring of inverters (length must be odd).
	BenchFeedbackChain = gen.FeedbackChain
	// RandomCircuit builds a pseudo-random sequential circuit for
	// differential testing.
	RandomCircuit = gen.RandomCircuit
	// RandomUnitCircuit is RandomCircuit with all delays forced to 1.
	RandomUnitCircuit = gen.RandomUnitCircuit
)

// Microprocessor instruction assemblers.
var (
	// AsmNOP assembles a no-operation.
	AsmNOP = gen.NOP
	// AsmLI assembles rd = zext(imm8).
	AsmLI = gen.LI
	// AsmADD assembles rd = rs + rt.
	AsmADD = gen.ADD
	// AsmSUB assembles rd = rs - rt.
	AsmSUB = gen.SUB
	// AsmAND assembles rd = rs & rt.
	AsmAND = gen.AND
	// AsmOR assembles rd = rs | rt.
	AsmOR = gen.OR
	// AsmXOR assembles rd = rs ^ rt.
	AsmXOR = gen.XOR
	// AsmADDI assembles rd = rs + zext(imm4).
	AsmADDI = gen.ADDI
	// AsmBNEZ assembles a conditional branch with one delay slot.
	AsmBNEZ = gen.BNEZ
	// AsmJMP assembles an absolute jump with one delay slot.
	AsmJMP = gen.JMP
	// AsmLW assembles rd = MEM[rs].
	AsmLW = gen.LW
	// AsmSW assembles MEM[rs] = rt.
	AsmSW = gen.SW
)

// ReadNetlist parses a circuit from the textual netlist format.
func ReadNetlist(r io.Reader) (*Circuit, error) { return netlist.Read(r) }

// WriteNetlist serialises a circuit to the textual netlist format.
func WriteNetlist(w io.Writer, c *Circuit) error { return netlist.Write(w, c) }

// NetlistSummary formats a human-readable report about a circuit.
func NetlistSummary(c *Circuit) string { return netlist.Summary(c) }

// WriteVCD dumps recorded waveforms as a Value Change Dump for external
// viewers. If no nodes are listed, every recorded node is written.
func WriteVCD(w io.Writer, c *Circuit, r *Recorder, horizon Time, nodes ...NodeID) error {
	return trace.WriteVCD(w, c, r, horizon, nodes...)
}
