package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// apply parses src and runs every registered analyzer over it.
func apply(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return applyAs(t, "src.go", src)
}

// applyAs parses src under the given filename — the path-scoped analyzers
// (ctxpoll, globalrand) only fire on files under internal/.
func applyAs(t *testing.T, filename, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, a.Run(fset, f)...)
	}
	return diags
}

func codes(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func TestLegacyAtomicFlagged(t *testing.T) {
	src := `package p

import "sync/atomic"

type W struct{ Evals int64 }

func bump(w *W) { atomic.AddInt64(&w.Evals, 1) }
`
	diags := apply(t, src)
	found := false
	for _, d := range diags {
		if d.Code == "legacyatomic" && strings.Contains(d.Msg, "atomic.AddInt64") {
			found = true
		}
	}
	if !found {
		t.Fatalf("legacy atomic call not flagged: %v", codes(diags))
	}
}

func TestRenamedImportStillFlagged(t *testing.T) {
	src := `package p

import a "sync/atomic"

var x int64

func bump() { a.AddInt64(&x, 1) }
`
	diags := apply(t, src)
	if len(diags) == 0 || diags[0].Code != "legacyatomic" {
		t.Fatalf("renamed sync/atomic import not tracked: %v", codes(diags))
	}
}

func TestTypedAtomicsClean(t *testing.T) {
	src := `package p

import "sync/atomic"

type W struct{ evals atomic.Int64 }

func bump(w *W) { w.evals.Add(1) }

func read(w *W) int64 { return w.evals.Load() }
`
	if diags := apply(t, src); len(diags) != 0 {
		t.Fatalf("typed atomics flagged: %+v", diags)
	}
}

func TestMixedAccessFlagged(t *testing.T) {
	src := `package p

import "sync/atomic"

type W struct{ Evals int64 }

func bump(w *W) {
	atomic.AddInt64(&w.Evals, 1)
	w.Evals++
}
`
	diags := apply(t, src)
	found := false
	for _, d := range diags {
		if d.Code == "mixedatomic" && strings.Contains(d.Msg, "w.Evals") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mixed atomic/plain access not flagged: %v", codes(diags))
	}
}

func TestMixedAccessSeparateLvaluesClean(t *testing.T) {
	src := `package p

import "sync/atomic"

type W struct{ Evals, Steals int64 }

func bump(w *W) {
	atomic.AddInt64(&w.Evals, 1)
	w.Steals++ // different field: no mix
}
`
	for _, d := range apply(t, src) {
		if d.Code == "mixedatomic" {
			t.Fatalf("distinct lvalues flagged as mixed: %+v", d)
		}
	}
}

func TestCounterCopyFlagged(t *testing.T) {
	src := `package p

type W struct{ Evals int64 }

type Run struct{ PerWorker []W }

func bump(r *Run) {
	for _, w := range r.PerWorker {
		w.Evals++
	}
}
`
	diags := apply(t, src)
	if len(diags) != 1 || diags[0].Code != "countercopy" {
		t.Fatalf("lost range-copy update not flagged: %v", codes(diags))
	}
	if !strings.Contains(diags[0].Msg, "w.Evals") {
		t.Errorf("diagnostic does not name the lvalue: %s", diags[0].Msg)
	}
}

func TestCounterCopyIndexedClean(t *testing.T) {
	src := `package p

type W struct{ Evals int64 }

type Run struct{ PerWorker []W }

func bump(r *Run) {
	for i := range r.PerWorker {
		r.PerWorker[i].Evals++
	}
	for _, w := range r.PerWorker {
		_ = w.Evals // reads of the copy are fine
	}
}
`
	for _, d := range apply(t, src) {
		if d.Code == "countercopy" {
			t.Fatalf("indexed/read-only access flagged: %+v", d)
		}
	}
}

func TestRespWriteFlagged(t *testing.T) {
	src := `package p

import (
	"fmt"
	"net/http"
)

func handler(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "hello")
	w.WriteHeader(http.StatusInternalServerError) // dropped: body already sent
}
`
	diags := apply(t, src)
	found := false
	for _, d := range diags {
		if d.Code == "respwrite" && strings.Contains(d.Msg, "w.WriteHeader") {
			found = true
		}
	}
	if !found {
		t.Fatalf("status-after-body not flagged: %v", codes(diags))
	}
}

func TestRespWriteDirectWriteFlagged(t *testing.T) {
	src := `package p

import "net/http"

func handler(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("oops"))
	w.WriteHeader(404)
}
`
	diags := apply(t, src)
	if len(diags) != 1 || diags[0].Code != "respwrite" {
		t.Fatalf("w.Write before WriteHeader not flagged: %v", codes(diags))
	}
}

func TestRespWriteCorrectOrderClean(t *testing.T) {
	src := `package p

import (
	"fmt"
	"net/http"
)

func handler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusTeapot)
	fmt.Fprintln(w, "short and stout")
}

func implicit(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "implicit 200 is fine without WriteHeader")
}

func notAHandler(n int) int { return n + 1 }
`
	for _, d := range apply(t, src) {
		if d.Code == "respwrite" {
			t.Fatalf("correct status-then-body order flagged: %+v", d)
		}
	}
}

// The cluster coordinator's handlers follow a helper-based shape: a
// writeJSON(w, status, v) helper owns the status-then-body order, and
// rejections set Retry-After on the header before delegating. Pin down
// that respwrite accepts that shape — helpers with a ResponseWriter
// parameter are analyzed too.
func TestRespWriteFleetHelperClean(t *testing.T) {
	src := `package p

import (
	"fmt"
	"net/http"
)

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func reject(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, []byte(fmt.Sprintf("{%q:%q}", "error", msg)))
}

func handleSubmit(w http.ResponseWriter, r *http.Request) {
	reject(w, http.StatusTooManyRequests, "fleet full")
}
`
	for _, d := range apply(t, src) {
		if d.Code == "respwrite" {
			t.Fatalf("helper-based status-then-body shape flagged: %+v", d)
		}
	}
}

// A proxy-style handler that relays an upstream body and only then tries
// to forward the upstream status: the io.Copy commits an implicit 200, so
// the later WriteHeader is dropped. This is the bug shape the cluster's
// poll-proxy handlers must avoid.
func TestRespWriteProxyStatusAfterCopyFlagged(t *testing.T) {
	src := `package p

import (
	"io"
	"net/http"
)

func proxy(w http.ResponseWriter, r *http.Request, resp *http.Response) {
	io.Copy(w, resp.Body)
	w.WriteHeader(resp.StatusCode) // dropped: body already relayed
}
`
	diags := apply(t, src)
	found := false
	for _, d := range diags {
		if d.Code == "respwrite" && strings.Contains(d.Msg, "w.WriteHeader") {
			found = true
		}
	}
	if !found {
		t.Fatalf("status-after-proxy-copy not flagged: %v", codes(diags))
	}
}

// A handler that spools a relayed body into a writable file must not
// discard the Close error — a delayed write failure would silently
// truncate the spooled result. Mirrors the requeue path's snapshot
// handling, where every writable close is checked.
func TestClosecheckSpoolingHandlerFlagged(t *testing.T) {
	src := `package p

import (
	"io"
	"net/http"
	"os"
)

func spool(w http.ResponseWriter, r *http.Request) {
	f, err := os.Create("spool.json")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	io.Copy(f, r.Body)
}
`
	diags := apply(t, src)
	found := false
	for _, d := range diags {
		if d.Code == "closecheck" && strings.Contains(d.Msg, "defer f.Close()") {
			found = true
		}
	}
	if !found {
		t.Fatalf("discarded spool close not flagged: %v", codes(diags))
	}
}

func TestCtxpollUnboundedLoopFlagged(t *testing.T) {
	src := `package p

type kern struct{}

func (kern) Eval(id int) {}

func run(k kern) {
	for {
		k.Eval(0) // never polls: cannot be cancelled
	}
}
`
	diags := applyAs(t, "internal/fake/engine.go", src)
	if len(diags) != 1 || diags[0].Code != "ctxpoll" {
		t.Fatalf("unpollable hot loop not flagged: %v", codes(diags))
	}
}

func TestCtxpollHorizonLoopFlagged(t *testing.T) {
	src := `package p

type cfg struct{ Horizon int64 }

type kern struct{}

func (kern) Eval(id int) {}

func run(k kern, c cfg) {
	for now := int64(0); now <= c.Horizon; now++ {
		k.Eval(0)
	}
}
`
	diags := applyAs(t, "internal/fake/engine.go", src)
	if len(diags) != 1 || diags[0].Code != "ctxpoll" {
		t.Fatalf("horizon-driven loop without poll not flagged: %v", codes(diags))
	}
}

func TestCtxpollPollingLoopClean(t *testing.T) {
	src := `package p

type sup struct{}

func (sup) Cancelled() bool { return false }

type kern struct{}

func (kern) Eval(id int) {}

func run(k kern, s sup) {
	for {
		if s.Cancelled() {
			return
		}
		k.Eval(0)
	}
}

func bounded(k kern, lanes int) {
	for l := 0; l < lanes; l++ { // bounded by data, not the horizon
		k.Eval(l)
	}
}
`
	for _, d := range applyAs(t, "internal/fake/engine.go", src) {
		if d.Code == "ctxpoll" {
			t.Fatalf("polling or bounded loop flagged: %+v", d)
		}
	}
}

func TestCtxpollOutsideInternalIgnored(t *testing.T) {
	src := `package p

type kern struct{}

func (kern) Eval(id int) {}

func run(k kern) {
	for {
		k.Eval(0)
	}
}
`
	for _, d := range applyAs(t, "cmd/fake/main.go", src) {
		if d.Code == "ctxpoll" {
			t.Fatalf("non-internal file flagged: %+v", d)
		}
	}
}

func TestGlobalRandFlagged(t *testing.T) {
	src := `package p

import "math/rand"

func pick(n int) int { return rand.Intn(n) }

func seed() { rand.Seed(42) }
`
	diags := applyAs(t, "internal/fake/gen.go", src)
	n := 0
	for _, d := range diags {
		if d.Code == "globalrand" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("want 2 globalrand findings (Intn, Seed), got %v", codes(diags))
	}
}

func TestGlobalRandSeededSourceClean(t *testing.T) {
	src := `package p

import "math/rand"

func pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
`
	for _, d := range applyAs(t, "internal/fake/gen.go", src) {
		if d.Code == "globalrand" {
			t.Fatalf("seeded local source flagged: %+v", d)
		}
	}
}

func TestGlobalRandOutsideInternalIgnored(t *testing.T) {
	src := `package p

import "math/rand"

func pick(n int) int { return rand.Intn(n) }
`
	for _, d := range applyAs(t, "tools/fake/main.go", src) {
		if d.Code == "globalrand" {
			t.Fatalf("non-internal file flagged: %+v", d)
		}
	}
}

// TestRepoIsClean runs the analyzers over the real module — the check
// `make lint` performs — pinning down that the codebase convention
// (typed atomics, indexed counter writes) holds everywhere.
func TestRepoIsClean(t *testing.T) {
	files, err := collect("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("collect found no files — wrong working directory?")
	}
	diags, err := run(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.Pos, d.Code, d.Msg)
	}
}

func TestClosecheckDeferOnCreate(t *testing.T) {
	src := `package p

import "os"

func write(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}
`
	diags := apply(t, src)
	found := false
	for _, d := range diags {
		if d.Code == "closecheck" && strings.Contains(d.Msg, "defer f.Close()") {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer f.Close() on a created file not flagged: %v", codes(diags))
	}
}

func TestClosecheckBareSyncAndClose(t *testing.T) {
	src := `package p

import "os"

func write(path string) {
	f, _ := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Sync()
	f.Close()
}
`
	diags := apply(t, src)
	n := 0
	for _, d := range diags {
		if d.Code == "closecheck" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("want 2 closecheck findings (Sync and Close), got %d: %v", n, codes(diags))
	}
}

func TestClosecheckCleanPatterns(t *testing.T) {
	src := `package p

import "os"

// Checked close, explicit discard on the failing path, read-only files
// and non-file idents must all stay silent.
func write(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func read(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
`
	diags := apply(t, src)
	for _, d := range diags {
		if d.Code == "closecheck" {
			t.Fatalf("clean pattern flagged: %s: %s", d.Pos, d.Msg)
		}
	}
}

func TestClosecheckReadOnlyNameCollision(t *testing.T) {
	// The same ident opens read-only in one block and writable in a later
	// one; only the close after the writable binding may be flagged.
	src := `package p

import "os"

func both(a, b string) {
	{
		f, _ := os.Open(a)
		defer f.Close()
	}
	{
		f, _ := os.Create(b)
		defer f.Close()
	}
}
`
	diags := apply(t, src)
	n := 0
	for _, d := range diags {
		if d.Code == "closecheck" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want exactly 1 closecheck finding (the writable close), got %d: %v", n, codes(diags))
	}
}
