package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Diagnostic is one finding, positioned for editor-style output.
type Diagnostic struct {
	Pos  token.Position
	Code string
	Msg  string
}

// Analyzer mirrors the go/analysis shape (Name, Doc, Run) without the
// golang.org/x/tools dependency, which this module does not take. Each
// analyzer is purely syntactic: it sees one parsed file at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(fset *token.FileSet, f *ast.File) []Diagnostic
}

// analyzers is the registry applied by main to every non-test file.
var analyzers = []*Analyzer{legacyAtomic, mixedAccess, counterCopy, respWrite, ctxpoll, globalrand, closecheck}

// counterFields are the per-worker counters of stats.WorkerCounters. The
// counter-copy check uses them to recognise lost-update mutations of a
// range copy without type information.
var counterFields = map[string]bool{
	"Evals": true, "ModelCalls": true, "NodeUpdates": true, "EventsUsed": true,
	"Steals": true, "BarrierWaits": true, "IdlePolls": true, "Messages": true,
	"Rollbacks": true, "Cancelled": true, "RolledBack": true,
	"Busy": true, "Idle": true,
}

// legacyAtomicFuncs are the pre-Go-1.19 free functions of sync/atomic.
// The repo convention is typed atomics (atomic.Int64 etc.), which make
// it impossible to mix atomic and plain access to the same word.
var legacyAtomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true,
	"AddUintptr": true, "LoadInt32": true, "LoadInt64": true, "LoadUint32": true,
	"LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true,
	"StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true,
	"SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true,
	"CompareAndSwapUint32": true, "CompareAndSwapUint64": true,
	"CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// atomicImportName returns the local name under which f imports
// sync/atomic, or "" when the file does not import it.
func atomicImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != "sync/atomic" {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "atomic"
	}
	return ""
}

// isLegacyAtomicCall reports whether call is pkg.Fn with pkg naming the
// sync/atomic import and Fn a legacy free function.
func isLegacyAtomicCall(call *ast.CallExpr, pkg string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkg || !legacyAtomicFuncs[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// legacyAtomic flags calls to the free functions of sync/atomic. Typed
// atomics carry their atomicity in the type, so a counter can never be
// half-migrated; the free functions leave the same word open to plain
// `x++` from another goroutine — the exact race the per-worker counter
// surface is designed to rule out.
var legacyAtomic = &Analyzer{
	Name: "legacyatomic",
	Doc:  "flag legacy sync/atomic free functions; use typed atomics (atomic.Int64 etc.)",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		pkg := atomicImportName(f)
		if pkg == "" {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := isLegacyAtomicCall(call, pkg); ok {
				out = append(out, Diagnostic{
					Pos:  fset.Position(call.Pos()),
					Code: "legacyatomic",
					Msg: fmt.Sprintf("legacy %s.%s: use a typed atomic (atomic.Int64 et al.) so plain access to the same counter cannot compile",
						pkg, fn),
				})
			}
			return true
		})
		return out
	},
}

// mixedAccess flags an lvalue that one function accesses both through a
// legacy atomic call (atomic.AddInt64(&w.Evals, 1)) and as a plain read
// or write (w.Evals++): the plain access races with the atomic one and
// the race detector only sees it when both paths fire in one run.
var mixedAccess = &Analyzer{
	Name: "mixedatomic",
	Doc:  "flag lvalues accessed both atomically (legacy calls) and plainly in one function",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		pkg := atomicImportName(f)
		if pkg == "" {
			return nil
		}
		var out []Diagnostic
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			atomicLV := map[string]token.Pos{} // lvalue text -> first atomic use
			plainLV := map[string]token.Pos{}  // lvalue text -> first plain write
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if _, ok := isLegacyAtomicCall(n, pkg); ok && len(n.Args) > 0 {
						if u, ok := n.Args[0].(*ast.UnaryExpr); ok && u.Op == token.AND {
							atomicLV[exprText(u.X)] = n.Pos()
						}
						return false // don't double-count the &arg as plain
					}
				case *ast.IncDecStmt:
					plainLV[exprText(n.X)] = n.Pos()
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						plainLV[exprText(lhs)] = n.Pos()
					}
				}
				return true
			})
			for lv, pos := range plainLV {
				if _, both := atomicLV[lv]; both {
					out = append(out, Diagnostic{
						Pos:  fset.Position(pos),
						Code: "mixedatomic",
						Msg:  fmt.Sprintf("%s is written plainly here but accessed with %s.* elsewhere in %s: every access must be atomic", lv, pkg, fn.Name.Name),
					})
				}
			}
		}
		return out
	},
}

// counterCopy flags mutation of a WorkerCounters field through the value
// variable of a range statement: the range variable is a copy, so the
// increment is silently lost. The canonical bug is
//
//	for _, w := range run.PerWorker { w.Evals++ }
//
// The check is syntactic, so it fires only when the mutated field is one
// of the known counter names and the ranged expression looks like a
// counter collection (mentions PerWorker or Counters).
var counterCopy = &Analyzer{
	Name: "countercopy",
	Doc:  "flag lost updates to WorkerCounters fields through a range copy",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		var out []Diagnostic
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			val, ok := rng.Value.(*ast.Ident)
			if !ok || val.Name == "_" {
				return true
			}
			src := exprText(rng.X)
			if !strings.Contains(src, "PerWorker") && !strings.Contains(src, "Counters") && !strings.Contains(src, "counters") {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				var lhs ast.Expr
				switch m := m.(type) {
				case *ast.IncDecStmt:
					lhs = m.X
				case *ast.AssignStmt:
					if len(m.Lhs) == 1 {
						lhs = m.Lhs[0]
					}
				default:
					return true
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || !counterFields[sel.Sel.Name] {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == val.Name {
					out = append(out, Diagnostic{
						Pos:  fset.Position(sel.Pos()),
						Code: "countercopy",
						Msg: fmt.Sprintf("%s.%s mutates a range copy of %s; the update is lost — index the slice or take a pointer",
							val.Name, sel.Sel.Name, src),
					})
				}
				return true
			})
			return true
		})
		return out
	},
}

// respWriterParams returns the names of fn's parameters whose declared
// type mentions ResponseWriter ("http.ResponseWriter" or a local alias
// ending in ResponseWriter). Purely syntactic, like every check here.
func respWriterParams(fn *ast.FuncDecl) map[string]bool {
	if fn.Type.Params == nil {
		return nil
	}
	var out map[string]bool
	for _, field := range fn.Type.Params.List {
		if !strings.HasSuffix(exprText(field.Type), "ResponseWriter") {
			continue
		}
		for _, name := range field.Names {
			if out == nil {
				out = map[string]bool{}
			}
			out[name.Name] = true
		}
	}
	return out
}

// respWrite flags HTTP handlers that call w.WriteHeader after the
// response body has already been written through w. The first body write
// commits an implicit 200 and a later WriteHeader is silently dropped
// ("superfluous response.WriteHeader call" at runtime), so an error
// status computed after rendering never reaches the client. The rule the
// server package follows: set the status, then write the body.
//
// The check is per-function and ordered by source position: a write
// through the ResponseWriter parameter (w.Write(...), or w passed as an
// argument to any call, e.g. fmt.Fprintf(w, ...) or json.NewEncoder(w))
// followed later by w.WriteHeader(...). Calls to w.Header() do not count
// as writes — header mutation before WriteHeader is the normal pattern.
var respWrite = &Analyzer{
	Name: "respwrite",
	Doc:  "flag http.Handlers that write the response body before setting the status",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		var out []Diagnostic
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			writers := respWriterParams(fn)
			if len(writers) == 0 {
				continue
			}
			firstWrite := map[string]token.Pos{} // writer name -> earliest body write
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && writers[id.Name] {
						switch sel.Sel.Name {
						case "Header":
							return true // header mutation, not a body write
						case "WriteHeader":
							if w, wrote := firstWrite[id.Name]; wrote && w < call.Pos() {
								out = append(out, Diagnostic{
									Pos:  fset.Position(call.Pos()),
									Code: "respwrite",
									Msg: fmt.Sprintf("%s.WriteHeader after the body was already written at %s: the status is dropped — set it before writing",
										id.Name, fset.Position(w)),
								})
							}
							return true
						default:
							// w.Write, or any other method that emits body.
							if _, seen := firstWrite[id.Name]; !seen {
								firstWrite[id.Name] = call.Pos()
							}
							return true
						}
					}
				}
				// w handed to another writer: fmt.Fprintf(w, ...),
				// json.NewEncoder(w), io.Copy(w, r), render(w)...
				for _, arg := range call.Args {
					if id, ok := arg.(*ast.Ident); ok && writers[id.Name] {
						if _, seen := firstWrite[id.Name]; !seen {
							firstWrite[id.Name] = call.Pos()
						}
					}
				}
				return true
			})
		}
		return out
	},
}

// exprText renders a simple expression (identifiers and selectors) as
// source text, used to compare lvalues structurally.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprText(e.Fun) + "(...)"
	case *ast.BinaryExpr:
		return exprText(e.X) + " " + e.Op.String() + " " + exprText(e.Y)
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	}
	return "?"
}
