package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// writableOpeners are the os functions that yield a file the process will
// write: Create and CreateTemp always, OpenFile when its flag argument
// names a writing mode. Read-only files are exempt — a discarded Close on
// them loses nothing.
var writableOpeners = map[string]bool{"Create": true, "CreateTemp": true}

// writableFlags are the os.OpenFile flag names that make the handle
// writable.
var writableFlags = []string{"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC"}

// writableOpenCall reports whether call opens a writable os.File.
func writableOpenCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "os" {
		return false
	}
	if writableOpeners[sel.Sel.Name] {
		return true
	}
	if sel.Sel.Name != "OpenFile" || len(call.Args) < 2 {
		return false
	}
	flags := exprText(call.Args[1])
	for _, f := range writableFlags {
		if strings.Contains(flags, f) {
			return true
		}
	}
	return false
}

// closecheck flags writable files whose Close or Sync error is silently
// discarded. On a buffered filesystem the write error often surfaces only
// at fsync/close time: a `defer f.Close()` or bare `f.Close()` on a file
// opened with os.Create/os.OpenFile(O_WRONLY...) can swallow the only
// notification that the data never reached disk — checkpoint snapshots,
// journals and reports written that way look durable and are not. Check
// the error (`if err := f.Close(); err != nil`) or, on a path that is
// already failing, discard it explicitly with `_ = f.Close()`.
//
// Per-function and purely syntactic: identifiers assigned from a writable
// os open in the same function are tracked; a DeferStmt or ExprStmt
// calling their Close/Sync discards the error and is flagged. Uses of the
// returned error (assignment, if-init, return) are not flagged.
var closecheck = &Analyzer{
	Name: "closecheck",
	Doc:  "flag discarded Close/Sync errors on writable files; check them or discard explicitly with _ =",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		var out []Diagnostic
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Pass 1: identifiers bound to a writable file in this function.
			writable := map[string]token.Pos{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				asg, ok := n.(*ast.AssignStmt)
				if !ok || len(asg.Rhs) != 1 {
					return true
				}
				call, ok := asg.Rhs[0].(*ast.CallExpr)
				if !ok || !writableOpenCall(call) {
					return true
				}
				// `f, err := os.Create(...)`: the file is the first lvalue.
				// Keep the earliest binding position: only Close/Sync calls
				// after it are considered, so a read-only file that happens
				// to share the name in an earlier block is not tainted.
				if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if prev, seen := writable[id.Name]; !seen || asg.Pos() < prev {
						writable[id.Name] = asg.Pos()
					}
				}
				return true
			})
			if len(writable) == 0 {
				continue
			}
			// Pass 2: discarded Close/Sync results on those identifiers.
			flag := func(call *ast.CallExpr, deferred bool) {
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return
				}
				bound, isFile := writable[id.Name]
				if !isFile || call.Pos() < bound {
					return
				}
				if sel.Sel.Name != "Close" && sel.Sel.Name != "Sync" {
					return
				}
				how := fmt.Sprintf("%s.%s()", id.Name, sel.Sel.Name)
				if deferred {
					how = "defer " + how
				}
				out = append(out, Diagnostic{
					Pos:  fset.Position(call.Pos()),
					Code: "closecheck",
					Msg: fmt.Sprintf("%s discards the error of a writable file: a delayed write failure is silently lost — check it, or discard explicitly with `_ = %s.%s()` on an already-failing path",
						how, id.Name, sel.Sel.Name),
				})
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt:
					flag(n.Call, true)
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						flag(call, false)
					}
				case *ast.GoStmt:
					flag(n.Call, false)
				}
				return true
			})
		}
		return out
	},
}
