package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// engineFile reports whether the parsed file lives under internal/ — the
// engine and kernel code the hot-loop and randomness conventions apply to.
// Fixtures in tests opt in by parsing with an internal/-prefixed filename.
func engineFile(fset *token.FileSet, f *ast.File) bool {
	name := filepath.ToSlash(fset.Position(f.Pos()).Filename)
	return strings.Contains(name, "internal/")
}

// pollNames are the calls that count as observing cancellation inside a hot
// loop: the guard's cooperative flag (Cancelled), a context poll (Err,
// Done), or an errgroup-style check.
var pollNames = map[string]bool{"Cancelled": true, "Err": true, "Done": true}

// ctxpoll flags simulation hot loops that evaluate elements without ever
// polling for cancellation. An engine's main loop — unbounded (`for {`) or
// driven by the horizon (`for now <= cfg.Horizon`) — that calls some
// `*.Eval(...)` but never checks Cancelled/Err/Done cannot be stopped by
// context cancellation or the supervisor's abort flag: the run only ends at
// the horizon, which on a livelocked circuit is never. Every engine's loop
// polls today; the check keeps it that way.
//
// Purely syntactic, scoped to internal/ files. Nested function literals are
// their own scope on both sides: an Eval inside a spawned goroutine belongs
// to that goroutine's loop, and a poll inside a closure does not guard the
// outer loop body.
var ctxpoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "flag unbounded/horizon-driven loops that call Eval without polling Cancelled/Err/Done",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		if !engineFile(fset, f) {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loop.Cond != nil && !strings.Contains(exprText(loop.Cond), "Horizon") {
				return true // bounded by something other than the horizon
			}
			evalPos := token.NoPos
			polls := false
			inspectSameFunc(loop.Body, func(m ast.Node) {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				switch {
				case sel.Sel.Name == "Eval":
					if evalPos == token.NoPos {
						evalPos = call.Pos()
					}
				case pollNames[sel.Sel.Name]:
					polls = true
				}
			})
			if evalPos != token.NoPos && !polls {
				out = append(out, Diagnostic{
					Pos:  fset.Position(evalPos),
					Code: "ctxpoll",
					Msg: fmt.Sprintf("hot loop at %s evaluates elements but never polls Cancelled/Err/Done: the run cannot be cancelled or aborted by the supervisor",
						fset.Position(loop.Pos())),
				})
			}
			return true
		})
		return out
	},
}

// inspectSameFunc walks n without descending into nested function literals.
func inspectSameFunc(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

// globalRandFuncs are math/rand's package-level convenience functions, all
// backed by the shared global source. New/NewSource are the sanctioned
// constructors and are not listed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// globalrand flags calls through math/rand's global source in internal/
// code. The simulators promise reproducibility: every stochastic choice
// (rand/gray stimulus, fuzz circuits, partition tie-breaks) must flow from
// an explicit seeded *rand.Rand so two runs with the same seed are
// byte-identical. The global source is shared mutable state — seeded once
// per process, perturbed by any other caller, and a data race magnet in
// parallel engines.
var globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "flag math/rand global-source calls in internal/; use an explicit seeded rand.New(rand.NewSource(...))",
	Run: func(fset *token.FileSet, f *ast.File) []Diagnostic {
		if !engineFile(fset, f) {
			return nil
		}
		pkg := ""
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				if imp.Name != nil {
					pkg = imp.Name.Name
				} else {
					pkg = "rand"
				}
			}
		}
		if pkg == "" || pkg == "_" || pkg == "." {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkg && globalRandFuncs[sel.Sel.Name] {
				out = append(out, Diagnostic{
					Pos:  fset.Position(call.Pos()),
					Code: "globalrand",
					Msg: fmt.Sprintf("%s.%s uses math/rand's global source: derive from an explicit seeded rand.New(rand.NewSource(seed)) so runs reproduce",
						pkg, sel.Sel.Name),
				})
			}
			return true
		})
		return out
	},
}
