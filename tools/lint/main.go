// Command lint is the repo's custom vet pass: syntactic checks for
// sync/atomic misuse around the per-worker counter surface that the
// standard vet suite does not cover. It takes no dependency on
// golang.org/x/tools; each check is an Analyzer in the go/analysis shape
// (Name, Doc, Run) over plain go/ast.
//
// Usage:
//
//	go run ./tools/lint [dir ...]
//
// With no arguments it walks the current module from ".". Test files and
// testdata/vendor directories are skipped. Exit status 1 when any check
// fires.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		fs, err := collect(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
		files = append(files, fs...)
	}
	sort.Strings(files)

	diags, err := run(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Code, d.Msg)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// collect gathers the non-test .go files under root, skipping testdata,
// vendor and hidden directories. Accepts the conventional "./..."
// spelling from Makefiles.
func collect(root string) ([]string, error) {
	root = strings.TrimSuffix(root, "...")
	if root == "" {
		root = "."
	}
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	return files, err
}

// run parses each file and applies every registered analyzer.
func run(files []string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var diags []Diagnostic
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			diags = append(diags, a.Run(fset, f)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	return diags, nil
}
