package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func pts(m map[key]float64) map[key]float64 { return m }

func TestDiffCleanWithinTolerance(t *testing.T) {
	base := pts(map[key]float64{
		{"fig1", "a", 1}:  10.0,
		{"fig1", "a", 2}:  20.0,
		{"t5", "msgs", 0}: 1000,
	})
	cur := pts(map[key]float64{
		{"fig1", "a", 1}:  10.9, // 8.3% off
		{"fig1", "a", 2}:  20.0,
		{"t5", "msgs", 0}: 1100, // 9.1% off
	})
	figs := map[string]bool{"fig1": true, "t5": true}
	drift, checked := diff(base, cur, figs, 0.10, 0.01)
	if len(drift) != 0 {
		t.Fatalf("unexpected drift: %v", drift)
	}
	if checked != 3 {
		t.Fatalf("checked = %d, want 3", checked)
	}
}

func TestDiffCatchesRegression(t *testing.T) {
	base := pts(map[key]float64{{"fig1", "a", 1}: 10.0})
	cur := pts(map[key]float64{{"fig1", "a", 1}: 7.0})
	drift, _ := diff(base, cur, map[string]bool{"fig1": true}, 0.10, 0.01)
	if len(drift) != 1 || !strings.Contains(drift[0], "fig1/a x=1") {
		t.Fatalf("drift = %v, want one fig1/a report", drift)
	}
}

func TestDiffAbsoluteSlack(t *testing.T) {
	// Near-zero values: 0.001 -> 0.02 is 95% relative but passes on the
	// absolute slack, which exists exactly for these noise-floor points.
	base := pts(map[key]float64{{"fig1", "a", 1}: 0.001})
	cur := pts(map[key]float64{{"fig1", "a", 1}: 0.02})
	if drift, _ := diff(base, cur, map[string]bool{"fig1": true}, 0.10, 0.05); len(drift) != 0 {
		t.Fatalf("absolute slack ignored: %v", drift)
	}
}

func TestDiffStructuralDrift(t *testing.T) {
	base := pts(map[key]float64{
		{"fig1", "a", 1}: 1,
		{"fig1", "a", 2}: 2, // missing from current
	})
	cur := pts(map[key]float64{
		{"fig1", "a", 1}: 1,
		{"fig1", "b", 1}: 3, // new series not in baseline
	})
	drift, _ := diff(base, cur, map[string]bool{"fig1": true}, 0.10, 0.01)
	if len(drift) != 2 {
		t.Fatalf("drift = %v, want missing + extra", drift)
	}
}

func TestDiffSkipsFiguresAbsentFromCurrent(t *testing.T) {
	base := pts(map[key]float64{{"t5", "msgs", 0}: 1000})
	drift, checked := diff(base, pts(map[key]float64{}), map[string]bool{}, 0.10, 0.01)
	if len(drift) != 0 || checked != 0 {
		t.Fatalf("subset run flagged: drift=%v checked=%d", drift, checked)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	doc := `{"mode":"model","quick":true,"figures":[
		{"ID":"fig1","Series":[{"Name":"a","X":[1,2],"Y":[10,20]}]}]}`
	p := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, meta, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Mode != "model" || !meta.Quick {
		t.Fatalf("meta = %+v", meta)
	}
	if got[key{"fig1", "a", 2}] != 20 {
		t.Fatalf("points = %v", got)
	}
}

func TestLoadRejectsRaggedSeries(t *testing.T) {
	doc := `{"mode":"model","figures":[{"ID":"f","Series":[{"Name":"a","X":[1],"Y":[1,2]}]}]}`
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := load(p); err == nil {
		t.Fatal("ragged series accepted")
	}
}
