// Command benchdiff compares two benchmark snapshots written by
// `figures -json` (the jsonDoc schema: mode, quick, figures with raw
// series) and fails when any shared data point drifts outside tolerance.
// It is the regression gate behind `make bench-diff`: regenerate the
// quick snapshot, diff it against the tracked BENCH_baseline.json, and
// let CI refuse silent performance or model changes.
//
// Usage:
//
//	go run ./tools/benchdiff [-tol 0.15] [-abs 0.05] baseline.json current.json
//
// Points are matched by (figure ID, series name, X value). A point
// passes when |cur-base| <= abs, or when the symmetric relative error
// |cur-base| / max(|cur|,|base|) is within tol. Points present on only
// one side are reported as structural drift and fail the diff, except
// that figures present only in the baseline are ignored (the current
// file may have been generated for a subset of experiments).
//
// Exit status: 0 clean, 1 drift found, 2 usage or parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// snapshot mirrors cmd/figures' jsonDoc closely enough to decode it; the
// two commands stay decoupled so the diff tool never drags engine code in.
type snapshot struct {
	Mode    string `json:"mode"`
	Quick   bool   `json:"quick"`
	Figures []struct {
		ID     string `json:"ID"`
		Series []struct {
			Name string    `json:"Name"`
			X    []float64 `json:"X"`
			Y    []float64 `json:"Y"`
		} `json:"Series"`
	} `json:"figures"`
}

// key addresses one data point across snapshots.
type key struct {
	fig, series string
	x           float64
}

func load(path string) (map[key]float64, *snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var doc snapshot
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	pts := make(map[key]float64)
	for _, f := range doc.Figures {
		for _, s := range f.Series {
			if len(s.X) != len(s.Y) {
				return nil, nil, fmt.Errorf("%s: %s/%s: %d X values, %d Y values",
					path, f.ID, s.Name, len(s.X), len(s.Y))
			}
			for i, x := range s.X {
				pts[key{f.ID, s.Name, x}] = s.Y[i]
			}
		}
	}
	return pts, &doc, nil
}

func main() {
	tol := flag.Float64("tol", 0.15, "symmetric relative tolerance per point")
	abs := flag.Float64("abs", 0.05, "absolute slack; drift below this always passes")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol f] [-abs f] baseline.json current.json")
		os.Exit(2)
	}
	base, baseDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, curDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if baseDoc.Mode != curDoc.Mode || baseDoc.Quick != curDoc.Quick {
		fmt.Fprintf(os.Stderr, "benchdiff: snapshots not comparable: baseline %s/quick=%v, current %s/quick=%v\n",
			baseDoc.Mode, baseDoc.Quick, curDoc.Mode, curDoc.Quick)
		os.Exit(2)
	}

	curFigs := make(map[string]bool)
	for _, f := range curDoc.Figures {
		curFigs[f.ID] = true
	}
	drift, checked := diff(base, cur, curFigs, *tol, *abs)

	if len(drift) > 0 {
		sort.Strings(drift)
		fmt.Fprintf(os.Stderr, "benchdiff: %d of %d points drifted beyond tolerance:\n", len(drift), checked)
		for _, d := range drift {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d points within %.0f%% of %s\n", checked, 100**tol, flag.Arg(0))
}

// diff compares every baseline point against the current snapshot.
// Figures absent from curFigs are skipped entirely (the current run may
// cover a subset); anything else missing on either side is structural
// drift. A point passes on absolute slack or symmetric relative error.
func diff(base, cur map[key]float64, curFigs map[string]bool, tol, abs float64) (drift []string, checked int) {
	for k, b := range base {
		if !curFigs[k.fig] {
			continue
		}
		c, ok := cur[k]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s/%s x=%g: missing from current", k.fig, k.series, k.x))
			continue
		}
		checked++
		d := math.Abs(c - b)
		if d <= abs {
			continue
		}
		if rel := d / math.Max(math.Abs(c), math.Abs(b)); rel > tol {
			drift = append(drift, fmt.Sprintf("%s/%s x=%g: %.4g -> %.4g (%.1f%% > %.0f%%)",
				k.fig, k.series, k.x, b, c, 100*rel, 100*tol))
		}
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			drift = append(drift, fmt.Sprintf("%s/%s x=%g: not in baseline", k.fig, k.series, k.x))
		}
	}
	return drift, checked
}
