package parsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// allAlgorithms is every registered engine, exercised through the facade.
var allAlgorithms = []Algorithm{
	Sequential, EventDriven, Compiled, Async, DistAsync, TimeWarp, ChandyMisra, Vector, JIT,
}

// cancelHorizon is far beyond what any algorithm can finish in the test
// deadline: the feedback chain keeps one event circulating forever, so an
// uncancelled run would take minutes to hours.
const cancelHorizon = Time(1) << 40

func cancelWorkers(a Algorithm) int {
	if a == Sequential {
		return 1
	}
	return 2
}

// TestSimulateContextTimeout runs every algorithm on a long feedback ring
// with a deadline a few milliseconds out and requires a prompt return with
// DeadlineExceeded plus usable partial statistics. Run under -race this
// also checks that the cancellation paths are data-race free.
func TestSimulateContextTimeout(t *testing.T) {
	c := BenchFeedbackChain(31)
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			res, err := SimulateContext(ctx, c, Options{
				Algorithm: alg,
				Workers:   cancelWorkers(alg),
				Horizon:   cancelHorizon,
			})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			// "Within one scheduling quantum" — generous bound so loaded CI
			// machines pass, but far below any full run of this horizon.
			if elapsed > 5*time.Second {
				t.Fatalf("took %v to honour cancellation", elapsed)
			}
			if res == nil {
				t.Fatal("no partial result returned")
			}
			if res.Stats.Workers != cancelWorkers(alg) {
				t.Errorf("partial stats workers = %d, want %d", res.Stats.Workers, cancelWorkers(alg))
			}
			if len(res.Stats.PerWorker) != cancelWorkers(alg) {
				t.Errorf("PerWorker rows = %d, want %d", len(res.Stats.PerWorker), cancelWorkers(alg))
			}
			if res.Final == nil {
				t.Error("partial result has no Final values")
			}
			if res.Stats.Wall <= 0 {
				t.Error("partial stats carry no wall time")
			}
		})
	}
}

// TestSimulateContextExplicitCancel cancels mid-run from another goroutine
// and requires Canceled (not DeadlineExceeded) to come back.
func TestSimulateContextExplicitCancel(t *testing.T) {
	c := BenchFeedbackChain(31)
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			res, err := SimulateContext(ctx, c, Options{
				Algorithm: alg,
				Workers:   cancelWorkers(alg),
				Horizon:   cancelHorizon,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want Canceled", err)
			}
			if res == nil {
				t.Fatal("no partial result returned")
			}
		})
	}
}

// TestSimulateContextComplete checks that a context that is never cancelled
// does not perturb a short run: same histories as the context-free path.
func TestSimulateContextComplete(t *testing.T) {
	c := BenchFeedbackChain(15)
	for _, alg := range allAlgorithms {
		res, err := SimulateContext(context.Background(), c, Options{
			Algorithm: alg,
			Workers:   cancelWorkers(alg),
			Horizon:   500,
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		ref, err := Simulate(c, Options{Algorithm: alg, Workers: cancelWorkers(alg), Horizon: 500})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for n := range ref.Final {
			if !res.Final[n].Equal(ref.Final[n]) {
				t.Fatalf("%s: node %d final %v != %v", alg, n, res.Final[n], ref.Final[n])
			}
		}
	}
}

// TestSimulateContextAlreadyCancelled hands every algorithm a context that
// is dead on arrival; the run must return almost immediately.
func TestSimulateContextAlreadyCancelled(t *testing.T) {
	c := BenchFeedbackChain(31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range allAlgorithms {
		start := time.Now()
		res, err := SimulateContext(ctx, c, Options{
			Algorithm: alg,
			Workers:   cancelWorkers(alg),
			Horizon:   cancelHorizon,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want Canceled", alg, err)
		}
		if res == nil {
			t.Fatalf("%s: no partial result", alg)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: took %v on a pre-cancelled context", alg, elapsed)
		}
	}
}
