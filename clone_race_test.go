package parsim

import (
	"sync"
	"testing"
)

// TestConcurrentSimulateOnClones is the contract test for Circuit.Clone:
// many Simulate calls running concurrently, each on its own clone of one
// template circuit, must be race-free (run under -race via `make race`)
// and must all produce the reference node histories. Sharing one *Circuit
// between concurrent runs is outside the API contract — see the Simulate
// doc comment — so per-run cloning is exactly what a multi-tenant caller
// (e.g. the parsimd daemon) does.
func TestConcurrentSimulateOnClones(t *testing.T) {
	tmpl := BenchInverterArray(InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 8, TogglePeriod: 1})
	const horizon = Time(200)

	refRec := NewRecorder()
	if _, err := Simulate(tmpl.Clone(), Options{Algorithm: Sequential, Horizon: horizon, Probe: refRec}); err != nil {
		t.Fatal(err)
	}

	algs := []Algorithm{Sequential, EventDriven, Compiled, Async, DistAsync, TimeWarp, ChandyMisra, Vector}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(algs))
	diffs := make(chan string, 2*len(algs))
	for _, alg := range algs {
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(alg Algorithm) {
				defer wg.Done()
				workers := 2
				if alg == Sequential {
					workers = 1
				}
				rec := NewRecorder()
				clone := tmpl.Clone()
				if _, err := Simulate(clone, Options{
					Algorithm: alg,
					Horizon:   horizon,
					Workers:   workers,
					Probe:     rec,
				}); err != nil {
					errs <- err
					return
				}
				if d := HistoryDiff(clone, refRec, rec); d != "" {
					diffs <- alg.String() + ": " + d
				}
			}(alg)
		}
	}
	wg.Wait()
	close(errs)
	close(diffs)
	for err := range errs {
		t.Error(err)
	}
	for d := range diffs {
		t.Error(d)
	}
}

// TestCloneIndependentOfTemplateMutation pins the deep-copy property at
// the facade level: poking the template after cloning must not change the
// clone's behaviour.
func TestCloneIndependentOfTemplateMutation(t *testing.T) {
	tmpl := BenchInverterArray(InverterArrayConfig{Rows: 2, Cols: 4, ActiveRows: 2, TogglePeriod: 1})
	clone := tmpl.Clone()
	want, err := Simulate(tmpl.Clone(), Options{Algorithm: Sequential, Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Vandalise the template (legal: we own it; it just must not leak).
	for i := range tmpl.Nodes {
		tmpl.Nodes[i].Fanout = nil
	}
	for i := range tmpl.Elems {
		tmpl.Elems[i].In = nil
		tmpl.Elems[i].Out = nil
	}
	got, err := Simulate(clone, Options{Algorithm: Sequential, Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	for n := range want.Final {
		if !want.Final[n].Equal(got.Final[n]) {
			t.Fatalf("node %d final %v != %v after template mutation", n, got.Final[n], want.Final[n])
		}
	}
}
