// Package core implements the paper's primary contribution: the
// asynchronous ("semi-chaotic") parallel logic simulation algorithm.
//
// Unlike the synchronous simulators, there are no locks and no barriers:
// "the processors never have to wait for any of the other processors". The
// unit of work is an element, not a time step. Each node carries its entire
// event history (an append-only list of value changes) together with a
// monotonically increasing valid-time: the simulated time up to which the
// node's behaviour is fully known. Evaluating an element consumes every
// pending input event below the minimum input valid-time — often many
// events in one activation, which is where the algorithm's "very large
// problem size" comes from — appends the resulting output changes, advances
// the outputs' valid-times, and stimulates the fan-out.
//
// Because valid-times advance incrementally even when no events are
// produced, the Chandy-Misra deadlock ("no more elements have events on all
// their inputs") never forms, and because only known-valid events are ever
// consumed there are no Time-Warp rollbacks and no state-restoration
// storage. Work distribution uses the paper's n-by-n single-reader,
// single-writer FIFO matrix with round-robin placement; element activation
// is deduplicated by a lock-free per-element state machine
// (idle/queued/running/dirty). Storage for consumed events is reclaimed
// asynchronously: history chunks become unreachable as soon as every
// fan-out cursor has passed them, which hands the paper's asynchronous
// garbage collection to the Go runtime.
package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/spsc"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Workers  int          // parallel workers (processors); >= 1
	Horizon  circuit.Time // simulate t in [0, Horizon)
	Probe    trace.Probe  // optional observer; must be concurrency-safe
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	// NoLookahead disables clocked-element lookahead (ablation): without
	// it, valid-times creep around register feedback loops an element
	// delay at a time and evaluation counts explode on circuits like the
	// microprocessor.
	NoLookahead bool
	// GateLookahead enables the paper's controlling-value optimisation:
	// while any input of an AND/NAND (OR/NOR) gate holds 0 (1), the output
	// is pinned, events on the other inputs are consumed without
	// evaluation, and the output's valid-time extends to the point where
	// the last controlling input could change.
	GateLookahead bool
	// DeadlockRecovery switches to the Chandy-Misra discipline the paper
	// contrasts itself with: valid-times do NOT advance during execution,
	// so the simulation runs until "no more elements have events on all
	// their inputs" (deadlock), then a global clock-value update advances
	// every node's valid-time to the fixpoint and the simulation restarts.
	// Results are identical; Result.Rounds counts the deadlocks broken.
	DeadlockRecovery bool
	// Guard is the optional run supervisor: worker panics are contained,
	// evaluations heartbeat the watchdog, and a run that goes passive
	// with node valid-times short of the horizon self-reports the stall
	// instead of silently returning stale X values.
	Guard *guard.Supervisor
}

// Result is the outcome of a run.
type Result struct {
	Run   stats.Run
	Final []logic.Value
	// Rounds counts deadlock-recovery rounds (DeadlockRecovery mode only;
	// 1 means the run never deadlocked).
	Rounds int64
}

// Element activation states.
const (
	stIdle int32 = iota
	stQueued
	stRunning
	stDirty
)

const chunkSz = 64

// event is one node value change.
type event struct {
	t circuit.Time
	v logic.Value
}

// hchunk is a block of a node's append-only history. Chunks link forward
// only, so once every consumer cursor has moved past a chunk nothing
// references it and it is collected — the asynchronous "garbage collection"
// of consumed events.
type hchunk struct {
	base  int64 // history index of slots[0]
	slots [chunkSz]event
	next  atomic.Pointer[hchunk]
}

// history is one node's behaviour over time. The writer side (tail, last,
// finalVal) is only ever touched while holding the driving element in the
// running state, which serialises writers across activations; readers go
// through the atomics.
type history struct {
	count   atomic.Int64 // published events
	validTo atomic.Int64 // behaviour known for all t < validTo
	tail    *hchunk      // writer-only
	last    logic.Value  // last appended-or-dropped value (dedup), writer-only
	final   logic.Value  // last value applied before the horizon, writer-only
}

// cursor tracks one (element, input port) consumer position.
type cursor struct {
	pos   int64
	chunk *hchunk
	val   logic.Value // input value at the current position
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	hist    []history
	first   []*hchunk  // first chunk of every node, for cursor initialisation
	cursors [][]cursor // [elem][port]
	estate  []atomic.Int32
	state   [][]logic.Value

	queues  [][]*spsc.Queue[circuit.ElemID] // [target][source]
	pending atomic.Int64

	wc     []stats.WorkerCounters
	cancel *engine.CancelFlag
	chaos  *guard.ChaosProbe // captured once; nil on production runs
}

// Run simulates the circuit with opts.Workers lock-free workers.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled every worker
// stops at its next queue poll (or between events inside a long element
// activation) and the partial result is returned with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	p := opts.Workers
	s := &sim{
		c:       c,
		opts:    opts,
		p:       p,
		hist:    make([]history, len(c.Nodes)),
		first:   make([]*hchunk, len(c.Nodes)),
		cursors: make([][]cursor, len(c.Elems)),
		estate:  make([]atomic.Int32, len(c.Elems)),
		state:   make([][]logic.Value, len(c.Elems)),
		queues:  make([][]*spsc.Queue[circuit.ElemID], p),
		wc:      make([]stats.WorkerCounters, p),
		cancel:  engine.WatchCancel(ctx),
		chaos:   opts.Guard.Chaos(),
	}
	defer s.cancel.Release()
	for i := range c.Nodes {
		ch := &hchunk{}
		s.first[i] = ch
		h := &s.hist[i]
		h.tail = ch
		x := logic.AllX(c.Nodes[i].Width)
		h.last = x
		h.final = x
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		if n := el.NumStateVals(); n > 0 {
			s.state[i] = make([]logic.Value, n)
			el.InitState(s.state[i])
		}
		cs := make([]cursor, len(el.In))
		for port, n := range el.In {
			cs[port] = cursor{
				chunk: s.first[n],
				val:   logic.AllX(c.Nodes[n].Width),
			}
		}
		s.cursors[i] = cs
	}
	for w := 0; w < p; w++ {
		s.queues[w] = make([]*spsc.Queue[circuit.ElemID], p)
		for src := 0; src < p; src++ {
			s.queues[w][src] = spsc.New[circuit.ElemID]()
		}
	}

	// Initialisation per the paper: "evaluate all generator and constant
	// nodes for all time", then stimulate their fan-outs. This runs before
	// any worker starts, so plain pushes into the queue matrix are safe.
	rr := 0
	for _, g := range c.Generators() {
		el := &c.Elems[g]
		n := el.Out[0]
		h := &s.hist[n]
		var t circuit.Time
		for t < opts.Horizon {
			if s.cancel.Cancelled() {
				break // generators can span huge horizons; stop materialising
			}
			v := el.GenValueAt(t)
			if !v.Equal(h.last) {
				s.appendEvent(0, n, t, v)
			}
			next, ok := el.GenNextChange(t)
			if !ok {
				break
			}
			t = next
		}
		h.validTo.Store(int64(opts.Horizon))
		for _, pr := range c.Nodes[n].Fanout {
			if s.estate[pr.Elem].CompareAndSwap(stIdle, stQueued) {
				s.pending.Add(1)
				s.queues[rr%p][0].Push(pr.Elem)
				rr++
			}
		}
	}

	start := time.Now()
	rounds := int64(0)
	for {
		rounds++
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer opts.Guard.Recover(w, "asynchronous eval loop")
				newWorker(s, w).run()
			}(w)
		}
		wg.Wait()
		if s.cancel.Cancelled() {
			break
		}
		if !s.opts.DeadlockRecovery || !s.recoverDeadlock() {
			break
		}
	}
	wall := time.Since(start)

	final := make([]logic.Value, len(c.Nodes))
	for i := range final {
		final[i] = s.hist[i].final
	}
	res := &Result{Final: final, Rounds: rounds}
	res.Run = stats.Run{
		Algorithm: "asynchronous",
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
	}
	res.Run.Aggregate(wall, s.wc)
	if err := s.cancel.Err(ctx); err != nil {
		return res, err
	}
	// The run terminated on its own: every node's behaviour must have
	// reached the horizon, or the workers went passive around a stall.
	alg := "asynchronous"
	if opts.DeadlockRecovery {
		alg = "chandy-misra"
	}
	if st := s.stallReport(alg); st != nil {
		return res, st
	}
	return res, nil
}

// stallReport scans node valid-times after the workers have gone passive.
// A run that terminated without cancellation has no pending activations,
// so any node whose valid-time is short of the horizon is genuinely stuck
// — the conservative silent stall-at-X the static analyzer predicts for
// zero-delay cycles — and the historical behaviour of running to the end
// with stale X values becomes a typed error naming the stuck nodes.
func (s *sim) stallReport(alg string) *guard.StallError {
	if s.opts.Horizon <= 0 {
		return nil
	}
	horizon := int64(s.opts.Horizon)
	minValid := horizon
	var stuck []string
	truncated := 0
	for i := range s.hist {
		vt := s.hist[i].validTo.Load()
		if vt >= horizon {
			continue
		}
		if vt < minValid {
			minValid = vt
		}
		if len(stuck) < 8 {
			stuck = append(stuck, s.c.Nodes[i].Name)
		} else {
			truncated++
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	return &guard.StallError{
		Engine:       alg,
		LastProgress: minValid,
		StuckNodes:   stuck,
		Truncated:    truncated,
	}
}

// appendEvent publishes one value change on node n at time t. Caller must
// hold the node's writer side (driving element running, or pre-start).
func (s *sim) appendEvent(worker int, n circuit.NodeID, t circuit.Time, v logic.Value) {
	h := &s.hist[n]
	h.last = v
	if t >= s.opts.Horizon {
		return // beyond the simulated window; dedup state still updated
	}
	h.final = v
	c := h.tail
	idx := h.count.Load()
	off := idx - c.base
	if off == chunkSz {
		nc := &hchunk{base: idx}
		c.next.Store(nc)
		h.tail = nc
		c, off = nc, 0
	}
	c.slots[off] = event{t: t, v: v}
	h.count.Store(idx + 1) // publish after the slot write
	s.wc[worker].NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
}

type worker struct {
	s        *sim
	id       int
	rr       int // round-robin activation target
	inBuf    []logic.Value
	outBuf   []logic.Value
	countBuf []int64
	vtBuf    []int64
	appBuf   []bool
	idle     time.Duration
}

func newWorker(s *sim, id int) *worker {
	return &worker{s: s, id: id, rr: id}
}

func (w *worker) run() {
	s := w.s
	defer func() { s.wc[w.id].Idle = w.idle }()
	for {
		if s.cancel.Cancelled() {
			return // every worker polls the flag, so all exit independently
		}
		t0 := time.Now()
		found := false
		for src := 0; src < s.p; src++ {
			if e, ok := s.queues[w.id][src].Pop(); ok {
				found = true
				w.process(e)
			}
		}
		if found {
			continue
		}
		if s.pending.Load() == 0 {
			return
		}
		// Out of local work while others still run: this is the only spin
		// in the algorithm, and it is starvation, not synchronisation.
		s.wc[w.id].IdlePolls++
		runtime.Gosched()
		w.idle += time.Since(t0)
	}
}

// activate stimulates an element: schedule it if idle, mark it dirty if it
// is currently being evaluated so it re-runs, and do nothing if it is
// already waiting. This is the paper's "activate the elements only once".
func (w *worker) activate(e circuit.ElemID) {
	s := w.s
	st := &s.estate[e]
	for {
		switch st.Load() {
		case stIdle:
			if st.CompareAndSwap(stIdle, stQueued) {
				s.pending.Add(1)
				tgt := w.rr % s.p
				w.rr++
				if s.chaos != nil && s.chaos.DropWakeup() {
					// Injected lost wakeup: the element stays claimed but is
					// never delivered, so pending never drains and the run
					// hangs — the failure the watchdog exists to catch.
					return
				}
				s.queues[tgt][w.id].Push(e)
				return
			}
		case stQueued, stDirty:
			return
		case stRunning:
			if st.CompareAndSwap(stRunning, stDirty) {
				return
			}
		}
	}
}

// process owns the element from queued until it settles back to idle,
// re-evaluating as long as concurrent activations mark it dirty.
func (w *worker) process(e circuit.ElemID) {
	st := &w.s.estate[e]
	if !st.CompareAndSwap(stQueued, stRunning) {
		panic("core: popped element not in queued state")
	}
	for {
		w.evalElement(e)
		if st.CompareAndSwap(stRunning, stIdle) {
			w.s.pending.Add(-1)
			return
		}
		// Dirty: new input behaviour arrived while running.
		if !st.CompareAndSwap(stDirty, stRunning) {
			panic("core: unexpected element state during re-run")
		}
	}
}

// peek returns the next unconsumed event on one input cursor, bounded by
// the already-loaded published count.
func (cu *cursor) peek(count int64) (event, bool) {
	if cu.pos >= count {
		return event{}, false
	}
	for cu.pos >= cu.chunk.base+chunkSz {
		cu.chunk = cu.chunk.next.Load()
	}
	return cu.chunk.slots[cu.pos-cu.chunk.base], true
}

// evalElement implements the paper's "get the output behaviour of an
// element" procedure: consume every input event below min-valid in merged
// time order, evaluating once per distinct time, then advance the outputs'
// valid times and stimulate fan-outs that gained behaviour.
func (w *worker) evalElement(e circuit.ElemID) {
	s := w.s
	el := &s.c.Elems[e]
	s.wc[w.id].Evals++
	s.opts.Guard.Heartbeat(w.id)
	if s.chaos != nil {
		s.chaos.Eval()
	}
	cs := s.cursors[e]

	// Step 1-2: min-valid across inputs; load published counts once so the
	// view is consistent (events published after this point wait for the
	// next activation).
	minValid := int64(s.opts.Horizon)
	if cap(w.countBuf) < len(cs) {
		w.countBuf = make([]int64, len(cs))
		w.vtBuf = make([]int64, len(cs))
	}
	counts := w.countBuf[:len(cs)]
	vts := w.vtBuf[:len(cs)]
	for port, n := range el.In {
		h := &s.hist[n]
		vt := h.validTo.Load()
		if vt > int64(s.opts.Horizon) {
			vt = int64(s.opts.Horizon)
		}
		vts[port] = vt
		if vt < minValid {
			minValid = vt
		}
		counts[port] = h.count.Load()
	}

	if cap(w.inBuf) < len(cs) {
		w.inBuf = make([]logic.Value, len(cs))
	}
	in := w.inBuf[:len(cs)]
	if cap(w.outBuf) < len(el.Out) {
		w.outBuf = make([]logic.Value, len(el.Out))
	}
	out := w.outBuf[:len(el.Out)]

	if cap(w.appBuf) < len(el.Out) {
		w.appBuf = make([]bool, len(el.Out))
	}
	// Controlling-value lookahead for gates (optional), before any events
	// are consumed: if inputs holding the controlling value pin the output,
	// it cannot change before the last of them can — events on the other
	// inputs below that bound are consumed without invoking the model,
	// exactly as the paper's AND-gate example describes.
	effValid := minValid
	if s.opts.GateLookahead {
		if ctrl, ok := circuit.ControllingValue(el.Kind); ok {
			tau := int64(-1)
			for port := range cs {
				if !circuit.Controlled(cs[port].val, ctrl) {
					continue
				}
				var tb int64
				if ev, ok2 := cs[port].peek(counts[port]); ok2 {
					tb = int64(ev.t)
				} else {
					tb = vts[port]
				}
				if tb > tau {
					tau = tb
				}
			}
			if tau > effValid {
				// Skip-consume everything that provably cannot matter.
				for port := range cs {
					limit := tau
					if vts[port] < limit {
						limit = vts[port]
					}
					for {
						ev, ok2 := cs[port].peek(counts[port])
						if !ok2 || int64(ev.t) >= limit {
							break
						}
						cs[port].val = ev.v
						cs[port].pos++
						s.wc[w.id].EventsUsed++
					}
				}
				effValid = tau
			}
		}
	}

	appended := w.appBuf[:len(el.Out)]
	for i := range appended {
		appended[i] = false
	}
	// Step 4: consume events before min-valid in merged time order. A
	// single activation can consume an unbounded number of events, so the
	// cancellation flag is polled between merged time points too.
	for {
		if s.cancel.Cancelled() {
			break
		}
		tmin := circuit.Time(-1)
		for port := range cs {
			if ev, ok := cs[port].peek(counts[port]); ok && ev.t < circuit.Time(minValid) {
				if tmin < 0 || ev.t < tmin {
					tmin = ev.t
				}
			}
		}
		if tmin < 0 {
			break
		}
		for port := range cs {
			if ev, ok := cs[port].peek(counts[port]); ok && ev.t == tmin {
				cs[port].val = ev.v
				cs[port].pos++
				s.wc[w.id].EventsUsed++
			}
			in[port] = cs[port].val
		}
		el.Eval(in, s.state[e], out)
		s.wc[w.id].ModelCalls++
		if s.opts.CostSpin > 0 {
			circuit.Spin(el.Cost * s.opts.CostSpin)
		}
		for p, n := range el.Out {
			h := &s.hist[n]
			if out[p].Equal(h.last) {
				continue
			}
			s.appendEvent(w.id, n, tmin+el.Delay, out[p])
			appended[p] = true
		}
	}

	// Lookahead for clocked elements: the output cannot change until the
	// next event on a trigger input (e.g. the next clock event for a DFF),
	// so the output's validity extends to that point even while the data
	// inputs lag. Every event below minValid was consumed above, so a
	// pending trigger event — or, when none is queued, the trigger node's
	// valid-time — bounds the first possible output change.
	if trig := circuit.TriggerPorts(el.Kind); trig != nil && !s.opts.NoLookahead {
		bound := int64(s.opts.Horizon)
		for _, port := range trig {
			var tb int64
			if ev, ok := cs[port].peek(counts[port]); ok {
				tb = int64(ev.t)
			} else {
				tb = vts[port]
			}
			if tb < bound {
				bound = tb
			}
		}
		if bound > effValid {
			effValid = bound
		}
	}

	// Step 5: advance output valid times; stimulate fan-out wherever new
	// behaviour (events or valid-time progress) appeared. Under the
	// Chandy-Misra discipline the valid-times stay frozen: consumers block
	// on them until the global deadlock-recovery pass.
	for p, n := range el.Out {
		h := &s.hist[n]
		advanced := false
		if !s.opts.DeadlockRecovery {
			newValid := effValid + int64(el.Delay)
			if newValid > int64(s.opts.Horizon) {
				newValid = int64(s.opts.Horizon)
			}
			if newValid > h.validTo.Load() {
				h.validTo.Store(newValid)
				advanced = true
			}
		}
		if advanced || appended[p] {
			for _, pr := range s.c.Nodes[n].Fanout {
				w.activate(pr.Elem)
			}
		}
	}
}

// recoverDeadlock is the Chandy-Misra "update the clock-values and restart"
// step, run single-threaded between rounds while every worker is stopped.
// Each node's valid-time advances to the fixpoint of
//
//	validTo(out) = min over inputs of min(validTo(in), first unevaluated
//	               event time on in) + delay
//
// (an output is only materialised up to the driver's first unconsumed input
// event), and every element that gained consumable events is re-queued.
// It reports whether a new round is worth running.
func (s *sim) recoverDeadlock() bool {
	firstPending := func(e circuit.ElemID, port int, n circuit.NodeID) int64 {
		h := &s.hist[n]
		cu := &s.cursors[e][port]
		if ev, ok := cu.peek(h.count.Load()); ok {
			return int64(ev.t)
		}
		return int64(s.opts.Horizon) + 1
	}
	changed := true
	anyAdvance := false
	for changed {
		changed = false
		for i := range s.c.Elems {
			el := &s.c.Elems[i]
			if el.IsGenerator() {
				continue
			}
			bound := int64(s.opts.Horizon)
			for port, n := range el.In {
				b := s.hist[n].validTo.Load()
				if fp := firstPending(el.ID, port, n); fp < b {
					b = fp
				}
				if b < bound {
					bound = b
				}
			}
			newValid := bound + int64(el.Delay)
			if newValid > int64(s.opts.Horizon) {
				newValid = int64(s.opts.Horizon)
			}
			for _, n := range el.Out {
				h := &s.hist[n]
				if newValid > h.validTo.Load() {
					h.validTo.Store(newValid)
					changed = true
					anyAdvance = true
				}
			}
		}
	}
	if !anyAdvance {
		return false
	}
	// Restart: queue every element that now has a consumable event or a
	// fresher input horizon than its outputs reflect.
	queued := false
	rr := 0
	for i := range s.c.Elems {
		el := &s.c.Elems[i]
		if el.IsGenerator() {
			continue
		}
		minValid := int64(s.opts.Horizon)
		for _, n := range el.In {
			if vt := s.hist[n].validTo.Load(); vt < minValid {
				minValid = vt
			}
		}
		runnable := false
		for port, n := range el.In {
			if fp := firstPending(el.ID, port, n); fp < minValid {
				runnable = true
				_ = port
				break
			}
		}
		if !runnable {
			// Pure valid-time propagation through this element was already
			// handled by the fixpoint above.
			continue
		}
		if s.estate[el.ID].CompareAndSwap(stIdle, stQueued) {
			s.pending.Add(1)
			s.queues[rr%s.p][0].Push(el.ID)
			rr++
			queued = true
		}
	}
	return queued
}
