package core

import (
	"context"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/logic"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

// crossCheck runs the circuit under the sequential oracle and the
// asynchronous simulator, requiring identical node histories — the
// strongest available evidence that chaotic evaluation order preserves
// simulation semantics.
func crossCheck(t *testing.T, c *circuit.Circuit, horizon circuit.Time, opts Options) *Result {
	t.Helper()
	ref := trace.NewRecorder()
	seqRes := seq.Run(c, seq.Options{Horizon: horizon, Probe: ref})

	got := trace.NewRecorder()
	opts.Horizon = horizon
	opts.Probe = got
	res := Run(c, opts)

	if d := trace.Diff(c, ref, got); d != "" {
		t.Fatalf("%s (P=%d): history mismatch: %s", c.Name, opts.Workers, d)
	}
	if res.Run.NodeUpdates != seqRes.Run.NodeUpdates {
		t.Errorf("node updates %d != sequential %d", res.Run.NodeUpdates, seqRes.Run.NodeUpdates)
	}
	for i := range res.Final {
		if !res.Final[i].Equal(seqRes.Final[i]) {
			t.Errorf("final value of node %s differs: %v vs %v",
				c.Nodes[i].Name, res.Final[i], seqRes.Final[i])
		}
	}
	return res
}

func TestMatchesSequentialOnArray(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 6, TogglePeriod: 2})
	for _, p := range []int{1, 2, 3, 4, 8} {
		crossCheck(t, c, 300, Options{Workers: p})
	}
}

func TestMatchesSequentialOnFuncMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.InPeriod = 64
	c := gen.FuncMultiplier(cfg)
	for _, p := range []int{1, 2, 4} {
		crossCheck(t, c, 512, Options{Workers: p})
	}
}

func TestMatchesSequentialOnGateMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 128
	c := gen.GateMultiplier(cfg)
	crossCheck(t, c, 512, Options{Workers: 4})
}

func TestMatchesSequentialOnCPU(t *testing.T) {
	cfg := gen.DefaultCPU()
	c := gen.CPU(cfg)
	res := crossCheck(t, c, gen.CPUHorizon(cfg, 40), Options{Workers: 4})
	if res.Run.Evals == 0 {
		t.Error("no evaluations")
	}
}

func TestMatchesSequentialOnFeedbackChain(t *testing.T) {
	// The worst case: a long feedback loop forces one-event-at-a-time
	// progress around the ring, yet results must stay exact.
	for _, p := range []int{1, 4} {
		c := gen.FeedbackChain(13)
		crossCheck(t, c, 600, Options{Workers: p})
	}
}

func TestMatchesSequentialOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := gen.RandomCircuit(seed, 80)
		crossCheck(t, c, 250, Options{Workers: 3})
	}
}

func TestBatchedEventConsumption(t *testing.T) {
	// On a feed-forward circuit with generator inputs valid for all time,
	// elements near the source should consume many events per evaluation:
	// the paper's "very large problem size". Events-used per eval must
	// comfortably exceed 1 on the inverter array.
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 4, Cols: 8, ActiveRows: 4, TogglePeriod: 1})
	res := Run(c, Options{Workers: 1, Horizon: 1000})
	perEval := float64(res.Run.EventsUsed) / float64(res.Run.Evals)
	if perEval < 5 {
		t.Errorf("events per evaluation = %.2f; batching is not happening", perEval)
	}
}

func TestFeedbackSerialisesEvaluation(t *testing.T) {
	// In the feedback ring, events can only be produced one at a time, so
	// events-per-eval should sit near 1 — the contrast the paper draws in
	// section 4.1.
	c := gen.FeedbackChain(15)
	res := Run(c, Options{Workers: 1, Horizon: 2000})
	perEval := float64(res.Run.EventsUsed) / float64(res.Run.Evals)
	if perEval > 2 {
		t.Errorf("events per evaluation = %.2f; expected near-serial progress", perEval)
	}
}

func TestDeterministicHistories(t *testing.T) {
	c := gen.RandomCircuit(11, 100)
	r1 := trace.NewRecorder()
	Run(c, Options{Workers: 4, Horizon: 300, Probe: r1})
	r2 := trace.NewRecorder()
	Run(c, Options{Workers: 4, Horizon: 300, Probe: r2})
	if d := trace.Diff(c, r1, r2); d != "" {
		t.Fatalf("two runs differ: %s", d)
	}
}

func TestUtilizationBounded(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	res := Run(c, Options{Workers: 2, Horizon: 400})
	u := res.Run.Utilization()
	if u <= 0 || u > 1.0001 {
		t.Errorf("utilisation %f out of (0,1]", u)
	}
}

func TestBadWorkerCountError(t *testing.T) {
	res, err := RunContext(context.Background(), gen.FeedbackChain(3), Options{Workers: 0, Horizon: 10})
	if err == nil {
		t.Fatal("Workers=0 did not return an error")
	}
	if res != nil {
		t.Fatal("bad config must not produce a result")
	}
}

func TestZeroHorizon(t *testing.T) {
	c := gen.FeedbackChain(3)
	res := Run(c, Options{Workers: 2, Horizon: 0})
	if res.Run.NodeUpdates != 0 {
		t.Errorf("updates at zero horizon: %d", res.Run.NodeUpdates)
	}
}

func TestClockedLookaheadBoundsEvals(t *testing.T) {
	// Without DFF lookahead, valid-times creep around the CPU's register
	// feedback loops a tick or two per activation and evaluations explode
	// by ~100x over the event-driven count. With lookahead the flood must
	// stay within an order of magnitude.
	cfg := gen.DefaultCPU()
	c := gen.CPU(cfg)
	horizon := gen.CPUHorizon(cfg, 30)
	asyncRes := Run(c, Options{Workers: 1, Horizon: horizon})
	seqRes := seq.Run(c, seq.Options{Horizon: horizon})
	if asyncRes.Run.Evals > 15*seqRes.Run.Evals {
		t.Errorf("async evals %d vs event-driven %d: lookahead not effective",
			asyncRes.Run.Evals, seqRes.Run.Evals)
	}
}

func TestLookaheadAblation(t *testing.T) {
	// The ablation must still be exact, just slower: same histories, far
	// more evaluations on the feedback-heavy CPU.
	cfg := gen.DefaultCPU()
	c := gen.CPU(cfg)
	horizon := gen.CPUHorizon(cfg, 12)

	ref := trace.NewRecorder()
	with := Run(c, Options{Workers: 2, Horizon: horizon, Probe: ref})
	got := trace.NewRecorder()
	without := Run(c, Options{Workers: 2, Horizon: horizon, Probe: got, NoLookahead: true})
	if d := trace.Diff(c, ref, got); d != "" {
		t.Fatalf("lookahead changed results: %s", d)
	}
	if without.Run.Evals < 3*with.Run.Evals {
		t.Errorf("lookahead saves little here: %d vs %d evals",
			without.Run.Evals, with.Run.Evals)
	}
}

func TestGateLookaheadExact(t *testing.T) {
	// The controlling-value optimisation must not change any history.
	circuits := []*circuit.Circuit{
		gen.InverterArray(gen.InverterArrayConfig{Rows: 6, Cols: 6, ActiveRows: 4, TogglePeriod: 2}),
		gen.FeedbackChain(9),
		gen.CPU(gen.DefaultCPU()),
	}
	horizons := []circuit.Time{300, 400, gen.CPUHorizon(gen.DefaultCPU(), 25)}
	for i, c := range circuits {
		ref := trace.NewRecorder()
		seq.Run(c, seq.Options{Horizon: horizons[i], Probe: ref})
		got := trace.NewRecorder()
		Run(c, Options{Workers: 2, Horizon: horizons[i], Probe: got, GateLookahead: true})
		if d := trace.Diff(c, ref, got); d != "" {
			t.Fatalf("%s: gate lookahead changed results: %s", c.Name, d)
		}
	}
	for seed := int64(20); seed < 32; seed++ {
		c := gen.RandomCircuit(seed, 80)
		ref := trace.NewRecorder()
		seq.Run(c, seq.Options{Horizon: 250, Probe: ref})
		got := trace.NewRecorder()
		Run(c, Options{Workers: 3, Horizon: 250, Probe: got, GateLookahead: true})
		if d := trace.Diff(c, ref, got); d != "" {
			t.Fatalf("seed %d: gate lookahead changed results: %s", seed, d)
		}
	}
}

func TestGateLookaheadSkipsWork(t *testing.T) {
	// An AND gate whose busy input trickles events out of a feedback ring
	// while the hold input pins the output low: with the optimisation the
	// gate must consume those events without invoking its model.
	ringLen := 9
	b := circuit.NewBuilder("gate-la")
	load := b.Bit("load")
	zero := b.Bit("zero")
	y := b.Bit("y")
	b.Wave("loadgen", load, []circuit.Time{0, circuit.Time(2 * ringLen)},
		[]logic.Value{logic.V(1, 1), logic.V(1, 0)})
	b.Const("zgen", zero, logic.V(1, 0))
	prev := y
	for i := 0; i < ringLen; i++ {
		out := b.Bit(name2("fb", i))
		b.Gate(circuit.KindNot, name2("inv", i), 1, out, prev)
		prev = out
	}
	b.AddElement(circuit.KindMux2, "mux", 1, []circuit.NodeID{y},
		[]circuit.NodeID{load, prev, zero}, circuit.Params{})

	hold := b.Bit("hold")
	b.Wave("holdgen", hold, []circuit.Time{0, 1900},
		[]logic.Value{logic.V(1, 0), logic.V(1, 1)})
	// A whole bank of gated consumers: without the optimisation each one
	// re-evaluates per ring event; with it they all skip.
	for i := 0; i < 32; i++ {
		gated := b.Bit(name2("gated", i))
		b.Gate(circuit.KindAnd, name2("gate", i), 1, gated, hold, y)
	}
	c := b.MustBuild()

	with := Run(c, Options{Workers: 1, Horizon: 2000, GateLookahead: true})
	without := Run(c, Options{Workers: 1, Horizon: 2000})
	if with.Run.NodeUpdates != without.Run.NodeUpdates {
		t.Fatalf("update counts differ: %d vs %d", with.Run.NodeUpdates, without.Run.NodeUpdates)
	}
	if with.Run.ModelCalls*2 > without.Run.ModelCalls {
		t.Errorf("gate lookahead barely helped: %d vs %d model calls",
			with.Run.ModelCalls, without.Run.ModelCalls)
	}
}

func name2(p string, i int) string {
	return p + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestChandyMisraDeadlockRecoveryExact(t *testing.T) {
	// The Chandy-Misra discipline (frozen valid-times, global deadlock
	// recovery) must produce the same histories as everything else.
	circuits := []struct {
		c       *circuit.Circuit
		horizon circuit.Time
	}{
		{gen.InverterArray(gen.InverterArrayConfig{Rows: 6, Cols: 6, ActiveRows: 5, TogglePeriod: 2}), 200},
		{gen.FeedbackChain(9), 400},
		{gen.FuncMultiplier(gen.DefaultMultiplier()), 512},
	}
	for _, tc := range circuits {
		ref := trace.NewRecorder()
		seq.Run(tc.c, seq.Options{Horizon: tc.horizon, Probe: ref})
		got := trace.NewRecorder()
		res := Run(tc.c, Options{Workers: 2, Horizon: tc.horizon, Probe: got, DeadlockRecovery: true})
		if d := trace.Diff(tc.c, ref, got); d != "" {
			t.Fatalf("%s: CM mode differs: %s", tc.c.Name, d)
		}
		if res.Rounds < 2 {
			t.Errorf("%s: expected deadlock-recovery rounds, got %d", tc.c.Name, res.Rounds)
		}
		t.Logf("%s: %d deadlock-recovery rounds, %d evals", tc.c.Name, res.Rounds, res.Run.Evals)
	}
}

func TestFeedbackNeedsManyRecoveryRounds(t *testing.T) {
	// The paper's point against Chandy-Misra: around a feedback loop the
	// simulation deadlocks over and over; incremental valid-times (the
	// default mode) never deadlock at all.
	c := gen.FeedbackChain(9)
	cm := Run(c, Options{Workers: 2, Horizon: 400, DeadlockRecovery: true})
	inc := Run(c, Options{Workers: 2, Horizon: 400})
	if inc.Rounds != 1 {
		t.Errorf("incremental mode reported %d rounds", inc.Rounds)
	}
	if cm.Rounds < 20 {
		t.Errorf("CM on a feedback ring broke only %d deadlocks", cm.Rounds)
	}
}
