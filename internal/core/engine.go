package core

import (
	"context"

	"parsim/internal/circuit"
	"parsim/internal/engine"
)

// eng adapts the asynchronous simulator to the unified engine layer. The
// same package backs two registry entries: the paper's semi-chaotic
// algorithm and the Chandy-Misra deadlock-recovery discipline it is
// contrasted with.
type eng struct {
	name             string
	deadlockRecovery bool
}

func (e eng) Name() string { return e.name }

func (e eng) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	res, err := RunContext(ctx, c, Options{
		Workers:          cfg.Workers,
		Horizon:          cfg.Horizon,
		Probe:            cfg.Probe,
		CostSpin:         cfg.CostSpin,
		NoLookahead:      cfg.NoLookahead,
		GateLookahead:    cfg.GateLookahead,
		DeadlockRecovery: e.deadlockRecovery,
		Guard:            cfg.Guard,
	})
	if res == nil {
		return nil, err
	}
	rep := &engine.Report{Run: res.Run, Final: res.Final}
	if e.deadlockRecovery {
		rep.Rounds = res.Rounds
	}
	return rep, err
}

func init() {
	engine.Register(eng{name: "asynchronous"}, "async", "semi-chaotic")
	engine.Register(eng{name: "chandy-misra", deadlockRecovery: true}, "cm", "deadlock-recovery")
}
