// Package trace implements observation of simulation runs: node-change
// probes, an in-memory waveform recorder used to cross-check simulators
// event for event, and a VCD writer for the "watched nodes" the paper
// excludes from its timed region.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// Probe receives node value changes. Implementations must be safe for
// concurrent use: the parallel simulators invoke probes from worker
// goroutines. Calls for a single node always arrive in increasing time
// order; calls for different nodes may interleave arbitrarily.
type Probe interface {
	OnChange(n circuit.NodeID, t circuit.Time, v logic.Value)
}

// Change is one recorded node transition.
type Change struct {
	Time  circuit.Time
	Value logic.Value
}

// Recorder accumulates the full change history of every node. A Recorder
// with no filter records everything; NewRecorderFor records only selected
// nodes.
type Recorder struct {
	mu     sync.Mutex
	hist   map[circuit.NodeID][]Change
	filter map[circuit.NodeID]bool // nil = record all
}

// NewRecorder records every node change.
func NewRecorder() *Recorder {
	return &Recorder{hist: make(map[circuit.NodeID][]Change)}
}

// NewRecorderFor records only the listed nodes.
func NewRecorderFor(nodes ...circuit.NodeID) *Recorder {
	r := NewRecorder()
	r.filter = make(map[circuit.NodeID]bool, len(nodes))
	for _, n := range nodes {
		r.filter[n] = true
	}
	return r
}

// OnChange implements Probe.
func (r *Recorder) OnChange(n circuit.NodeID, t circuit.Time, v logic.Value) {
	if r.filter != nil && !r.filter[n] {
		return
	}
	r.mu.Lock()
	r.hist[n] = append(r.hist[n], Change{Time: t, Value: v})
	r.mu.Unlock()
}

// History returns the recorded change list for a node, sorted by time. The
// returned slice is owned by the caller.
func (r *Recorder) History(n circuit.NodeID) []Change {
	r.mu.Lock()
	h := append([]Change(nil), r.hist[n]...)
	r.mu.Unlock()
	sort.Slice(h, func(i, j int) bool { return h[i].Time < h[j].Time })
	return h
}

// Nodes returns the IDs of all nodes with at least one recorded change,
// sorted.
func (r *Recorder) Nodes() []circuit.NodeID {
	r.mu.Lock()
	ids := make([]circuit.NodeID, 0, len(r.hist))
	for n := range r.hist {
		ids = append(ids, n)
	}
	r.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ChangeRecord is one recorded node transition together with its node,
// exposed for checkpointing.
type ChangeRecord struct {
	Node  circuit.NodeID
	Time  circuit.Time
	Value logic.Value
}

// DumpChanges returns every recorded change sorted by (time, node), the same
// global order WriteVCD emits. The receiver is not modified.
func (r *Recorder) DumpChanges() []ChangeRecord {
	r.mu.Lock()
	var out []ChangeRecord
	for n, h := range r.hist {
		for _, ch := range h {
			out = append(out, ChangeRecord{Node: n, Time: ch.Time, Value: ch.Value})
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Preload installs previously dumped changes, honouring the recorder's
// filter. A resumed run preloads the checkpointed history so its final
// recorder — and any VCD written from it — is identical to an uninterrupted
// run's.
func (r *Recorder) Preload(chs []ChangeRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ch := range chs {
		if r.filter != nil && !r.filter[ch.Node] {
			continue
		}
		r.hist[ch.Node] = append(r.hist[ch.Node], Change{Time: ch.Time, Value: ch.Value})
	}
}

// ValueAt returns the recorded value of node n at time t, or X if the node
// has no change at or before t.
func (r *Recorder) ValueAt(c *circuit.Circuit, n circuit.NodeID, t circuit.Time) logic.Value {
	h := r.History(n)
	i := sort.Search(len(h), func(i int) bool { return h[i].Time > t }) - 1
	if i < 0 {
		return logic.AllX(c.Nodes[n].Width)
	}
	return h[i].Value
}

// TotalChanges returns the number of recorded changes across all nodes.
func (r *Recorder) TotalChanges() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, h := range r.hist {
		n += len(h)
	}
	return n
}

// Diff compares two recorders and returns a description of the first
// mismatch, or "" if the histories are identical. It is the backbone of the
// simulator cross-check tests.
func Diff(c *circuit.Circuit, a, b *Recorder) string {
	an, bn := a.Nodes(), b.Nodes()
	seen := map[circuit.NodeID]bool{}
	for _, lists := range [][]circuit.NodeID{an, bn} {
		for _, n := range lists {
			if seen[n] {
				continue
			}
			seen[n] = true
			ha, hb := a.History(n), b.History(n)
			if len(ha) != len(hb) {
				return fmt.Sprintf("node %s: %d vs %d changes", c.Nodes[n].Name, len(ha), len(hb))
			}
			for i := range ha {
				if ha[i] != hb[i] {
					return fmt.Sprintf("node %s change %d: (%d, %v) vs (%d, %v)",
						c.Nodes[n].Name, i, ha[i].Time, ha[i].Value, hb[i].Time, hb[i].Value)
				}
			}
		}
	}
	return ""
}

// MultiProbe fans changes out to several probes.
type MultiProbe []Probe

// OnChange implements Probe.
func (m MultiProbe) OnChange(n circuit.NodeID, t circuit.Time, v logic.Value) {
	for _, p := range m {
		p.OnChange(n, t, v)
	}
}

// CountingProbe counts changes without storing them; useful in benchmarks
// that want probe overhead without recorder memory.
type CountingProbe struct {
	mu sync.Mutex
	n  int64
}

// OnChange implements Probe.
func (p *CountingProbe) OnChange(circuit.NodeID, circuit.Time, logic.Value) {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// Count returns the number of observed changes.
func (p *CountingProbe) Count() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// WriteVCD emits the recorder's contents as a Value Change Dump covering
// [0, horizon) for the given nodes (all recorded nodes if none listed).
func WriteVCD(w io.Writer, c *circuit.Circuit, r *Recorder, horizon circuit.Time, nodes ...circuit.NodeID) error {
	if len(nodes) == 0 {
		nodes = r.Nodes()
	}
	fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", c.Name)
	ids := make(map[circuit.NodeID]string, len(nodes))
	for i, n := range nodes {
		id := vcdID(i)
		ids[n] = id
		fmt.Fprintf(w, "$var wire %d %s %s $end\n", c.Nodes[n].Width, id, c.Nodes[n].Name)
	}
	fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n")

	// Merge all histories into global time order.
	type ev struct {
		t circuit.Time
		n circuit.NodeID
		v logic.Value
	}
	var evs []ev
	for _, n := range nodes {
		for _, ch := range r.History(n) {
			if ch.Time < horizon {
				evs = append(evs, ev{ch.Time, n, ch.Value})
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].n < evs[j].n
	})

	fmt.Fprint(w, "#0\n$dumpvars\n")
	for _, n := range nodes {
		if err := writeVCDValue(w, logic.AllX(c.Nodes[n].Width), ids[n]); err != nil {
			return err
		}
	}
	fmt.Fprint(w, "$end\n")
	last := circuit.Time(0)
	for _, e := range evs {
		if e.t != last {
			fmt.Fprintf(w, "#%d\n", e.t)
			last = e.t
		}
		if err := writeVCDValue(w, e.v, ids[e.n]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "#%d\n", horizon)
	return err
}

func writeVCDValue(w io.Writer, v logic.Value, id string) error {
	if v.Width() == 1 {
		_, err := fmt.Fprintf(w, "%s%s\n", v.Bit(0), id)
		return err
	}
	bits := make([]byte, v.Width())
	for i := 0; i < v.Width(); i++ {
		bits[v.Width()-1-i] = v.Bit(i).String()[0]
	}
	_, err := fmt.Fprintf(w, "b%s %s\n", bits, id)
	return err
}

// vcdID generates short printable VCD identifiers.
func vcdID(i int) string {
	const base = 94 // printable ASCII '!'..'~'
	s := []byte{}
	for {
		s = append(s, byte('!'+i%base))
		i /= base
		if i == 0 {
			return string(s)
		}
	}
}
