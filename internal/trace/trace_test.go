package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

func tinyCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("tiny")
	a := b.Bit("a")
	y := b.Node("y", 4)
	b.Clock("g", a, 4, 0, 0)
	b.Const("c", y, logic.V(4, 5))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRecorderBasics(t *testing.T) {
	c := tinyCircuit(t)
	r := NewRecorder()
	a := c.ByName["a"]
	r.OnChange(a, 0, logic.V(1, 1))
	r.OnChange(a, 5, logic.V(1, 0))
	h := r.History(a)
	if len(h) != 2 || h[0].Time != 0 || h[1].Value.MustUint() != 0 {
		t.Fatalf("history = %v", h)
	}
	if got := r.ValueAt(c, a, 3).MustUint(); got != 1 {
		t.Errorf("ValueAt(3) = %d", got)
	}
	if got := r.ValueAt(c, a, 7).MustUint(); got != 0 {
		t.Errorf("ValueAt(7) = %d", got)
	}
	if !r.ValueAt(c, a, -1).Equal(logic.AllX(1)) {
		t.Errorf("ValueAt before first change should be X")
	}
	if r.TotalChanges() != 2 {
		t.Errorf("TotalChanges = %d", r.TotalChanges())
	}
	if nodes := r.Nodes(); len(nodes) != 1 || nodes[0] != a {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestRecorderFilter(t *testing.T) {
	c := tinyCircuit(t)
	a, y := c.ByName["a"], c.ByName["y"]
	r := NewRecorderFor(y)
	r.OnChange(a, 0, logic.V(1, 1))
	r.OnChange(y, 0, logic.V(4, 5))
	if len(r.History(a)) != 0 {
		t.Error("filtered node recorded")
	}
	if len(r.History(y)) != 1 {
		t.Error("selected node not recorded")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	c := tinyCircuit(t)
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := c.ByName["a"]
			for i := 0; i < 1000; i++ {
				r.OnChange(n, circuit.Time(w*1000+i), logic.V(1, uint64(i&1)))
			}
		}(w)
	}
	wg.Wait()
	if r.TotalChanges() != 4000 {
		t.Errorf("TotalChanges = %d", r.TotalChanges())
	}
	h := r.History(c.ByName["a"])
	for i := 1; i < len(h); i++ {
		if h[i].Time < h[i-1].Time {
			t.Fatal("history not sorted")
		}
	}
}

func TestDiff(t *testing.T) {
	c := tinyCircuit(t)
	a := c.ByName["a"]
	r1, r2 := NewRecorder(), NewRecorder()
	r1.OnChange(a, 0, logic.V(1, 1))
	r2.OnChange(a, 0, logic.V(1, 1))
	if d := Diff(c, r1, r2); d != "" {
		t.Errorf("identical recorders differ: %s", d)
	}
	r2.OnChange(a, 5, logic.V(1, 0))
	if d := Diff(c, r1, r2); !strings.Contains(d, "1 vs 2 changes") {
		t.Errorf("count diff not reported: %q", d)
	}
	r1.OnChange(a, 6, logic.V(1, 0))
	if d := Diff(c, r1, r2); !strings.Contains(d, "change 1") {
		t.Errorf("content diff not reported: %q", d)
	}
}

func TestMultiProbe(t *testing.T) {
	c := tinyCircuit(t)
	r := NewRecorder()
	cp := &CountingProbe{}
	m := MultiProbe{r, cp}
	m.OnChange(c.ByName["a"], 0, logic.V(1, 1))
	if r.TotalChanges() != 1 || cp.Count() != 1 {
		t.Error("multiprobe did not fan out")
	}
}

func TestVCDFormat(t *testing.T) {
	c := tinyCircuit(t)
	r := NewRecorder()
	a, y := c.ByName["a"], c.ByName["y"]
	r.OnChange(a, 0, logic.V(1, 1))
	r.OnChange(y, 2, logic.FromStates([]logic.State{logic.H, logic.L, logic.X, logic.Z}))
	r.OnChange(a, 4, logic.V(1, 0))

	var buf bytes.Buffer
	if err := WriteVCD(&buf, c, r, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module tiny", "$var wire 1 ! a",
		"$var wire 4 \" y", "$enddefinitions",
		"#0", "1!", "#2", "bzx01 \"", "#4", "0!", "#10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Initial dump declares both nodes X.
	if !strings.Contains(out, "$dumpvars") || !strings.Contains(out, "x!") {
		t.Errorf("missing X initialisation:\n%s", out)
	}
}

func TestVCDIdentifiers(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, ch := range id {
			if ch < '!' || ch > '~' {
				t.Fatalf("unprintable id byte %q", ch)
			}
		}
	}
}
