// Package spsc implements the unbounded lock-free single-producer,
// single-consumer FIFO at the heart of the paper's asynchronous algorithm:
// "each queue has only one processor that adds elements to it and only one
// processor that removes elements from it (one reader and one writer).
// Since no locks are used, the two processors corresponding to each queue
// must never modify the same location."
//
// The queue is a linked list of fixed-size chunks. The producer writes a
// slot and then publishes it by storing the chunk's write index atomically;
// the consumer reads the index before touching slots, so the pair never
// races on data. Consumed chunks are dropped for the garbage collector,
// which plays the role of the paper's asynchronous storage reclamation.
package spsc

import "sync/atomic"

// ChunkSize is the number of slots per allocation; a modest power of two
// keeps the producer's amortised cost at one atomic store per push.
const ChunkSize = 128

type chunk[T any] struct {
	slots [ChunkSize]T
	wpos  atomic.Int32 // slots published by the producer
	next  atomic.Pointer[chunk[T]]
}

// Queue is an unbounded SPSC FIFO. The zero value is not usable; call New.
// Push must only ever be called from one goroutine at a time, and Pop from
// one goroutine at a time; the two may run concurrently.
type Queue[T any] struct {
	// Producer side.
	tail *chunk[T]
	// Consumer side.
	head *chunk[T]
	rpos int32
	// Approximate element count maintained with atomic adds; only used for
	// monitoring, never for synchronisation.
	size atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	c := &chunk[T]{}
	return &Queue[T]{tail: c, head: c}
}

// Push appends v. It never blocks and never fails.
func (q *Queue[T]) Push(v T) {
	c := q.tail
	w := c.wpos.Load() // no concurrent writer; load is for clarity
	if w == ChunkSize {
		nc := &chunk[T]{}
		nc.slots[0] = v
		nc.wpos.Store(1)
		c.next.Store(nc) // publish the full link after the slot
		q.tail = nc
		q.size.Add(1)
		return
	}
	c.slots[w] = v
	c.wpos.Store(w + 1) // publish
	q.size.Add(1)
}

// Pop removes and returns the oldest element; ok is false if the queue is
// currently empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	c := q.head
	for {
		w := c.wpos.Load()
		if q.rpos < w {
			v = c.slots[q.rpos]
			// Release the slot so large payloads do not leak past
			// consumption — the paper frees events "only after all fan-out
			// elements of a node have been processed"; here the chunk is
			// unreachable once drained.
			var zero T
			c.slots[q.rpos] = zero
			q.rpos++
			q.size.Add(-1)
			return v, true
		}
		if w < ChunkSize {
			return v, false // producer has not filled this chunk yet
		}
		next := c.next.Load()
		if next == nil {
			return v, false // full chunk but the link is not published yet
		}
		q.head = next
		q.rpos = 0
		c = next
	}
}

// Len returns an approximate number of queued elements, for monitoring.
func (q *Queue[T]) Len() int { return int(q.size.Load()) }
