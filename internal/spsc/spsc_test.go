package spsc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	q := New[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	const n = 10 * ChunkSize
	for i := 0; i < n; i++ {
		q.Push(i)
	}
	if q.Len() != n {
		t.Fatalf("Len = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New[int]()
	next := 0
	pushed := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < round%7; i++ {
			q.Push(pushed)
			pushed++
		}
		for i := 0; i < round%5; i++ {
			v, ok := q.Pop()
			if !ok {
				if next != pushed {
					t.Fatalf("empty with %d outstanding", pushed-next)
				}
				break
			}
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
}

// TestConcurrentProducerConsumer exercises the lock-free handoff under the
// race detector.
func TestConcurrentProducerConsumer(t *testing.T) {
	q := New[int64]()
	const n = 200000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; i++ {
			q.Push(i)
		}
	}()
	var sum int64
	var count int64
	go func() {
		defer wg.Done()
		expect := int64(0)
		for count < n {
			v, ok := q.Pop()
			if !ok {
				continue
			}
			if v != expect {
				t.Errorf("out of order: got %d, want %d", v, expect)
				return
			}
			expect++
			sum += v
			count++
		}
	}()
	wg.Wait()
	if count != n || sum != n*(n-1)/2 {
		t.Fatalf("count=%d sum=%d", count, sum)
	}
}

func TestPointerPayloadReleased(t *testing.T) {
	q := New[*int]()
	x := 5
	q.Push(&x)
	v, ok := q.Pop()
	if !ok || *v != 5 {
		t.Fatal("pointer payload broken")
	}
}

func TestQuickMatchesSlice(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New[uint8]()
		var model []uint8
		for _, op := range ops {
			if op%3 != 0 {
				q.Push(op)
				model = append(model, op)
			} else {
				v, ok := q.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int]()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}
