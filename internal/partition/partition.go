// Package partition statically assigns circuit elements to processors for
// the compiled-mode simulator. The paper notes that compiled-mode
// load-balancing is easy when elements are similar (gate level) and hard
// when evaluation costs differ wildly (functional level); the strategies
// here let the benchmarks quantify that.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"parsim/internal/circuit"
)

// Strategy selects a partitioning algorithm.
type Strategy int

const (
	// RoundRobin deals elements 0..n-1 across processors in turn; the
	// baseline the paper's compiled-mode simulator uses.
	RoundRobin Strategy = iota
	// Blocks gives each processor one contiguous range of element IDs,
	// preserving locality between neighbouring cells of regular arrays.
	Blocks
	// CostLPT applies longest-processing-time-first bin packing on element
	// costs, the classic fix for dissimilar functional-model runtimes.
	CostLPT
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case Blocks:
		return "blocks"
	case CostLPT:
		return "cost-lpt"
	}
	return "unknown"
}

// ParseStrategy parses a flag-style strategy name as produced by String.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "round-robin", "roundrobin", "rr", "":
		return RoundRobin, nil
	case "blocks", "block":
		return Blocks, nil
	case "cost-lpt", "costlpt", "lpt":
		return CostLPT, nil
	}
	return RoundRobin, fmt.Errorf("parsim: unknown partition strategy %q (have round-robin, blocks, cost-lpt)", s)
}

// Split assigns every non-generator element of c to one of p partitions.
// Generators are excluded: the simulators schedule them separately.
func Split(c *circuit.Circuit, p int, s Strategy) [][]circuit.ElemID {
	if p < 1 {
		panic("partition: need at least one processor")
	}
	var ids []circuit.ElemID
	for i := range c.Elems {
		if !c.Elems[i].IsGenerator() {
			ids = append(ids, c.Elems[i].ID)
		}
	}
	parts := make([][]circuit.ElemID, p)
	switch s {
	case RoundRobin:
		for i, id := range ids {
			parts[i%p] = append(parts[i%p], id)
		}
	case Blocks:
		per := (len(ids) + p - 1) / p
		for i, id := range ids {
			parts[i/per] = append(parts[i/per], id)
		}
	case CostLPT:
		sort.SliceStable(ids, func(i, j int) bool {
			return c.Elems[ids[i]].Cost > c.Elems[ids[j]].Cost
		})
		load := make([]int64, p)
		for _, id := range ids {
			min := 0
			for w := 1; w < p; w++ {
				if load[w] < load[min] {
					min = w
				}
			}
			parts[min] = append(parts[min], id)
			load[min] += c.Elems[id].Cost
		}
		// Deterministic evaluation order within a partition.
		for _, part := range parts {
			sort.Slice(part, func(i, j int) bool { return part[i] < part[j] })
		}
	default:
		panic("partition: unknown strategy")
	}
	return parts
}

// Imbalance returns max partition cost divided by mean partition cost — 1.0
// is perfect balance. It is the quantity the paper blames for the
// functional multiplier's poor compiled-mode speed-up.
func Imbalance(c *circuit.Circuit, parts [][]circuit.ElemID) float64 {
	if len(parts) == 0 {
		return 1
	}
	var total, max int64
	for _, part := range parts {
		var load int64
		for _, id := range part {
			load += c.Elems[id].Cost
		}
		total += load
		if load > max {
			max = load
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(parts))
	return float64(max) / mean
}
