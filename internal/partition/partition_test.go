package partition

import (
	"strings"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
)

func strategies() []Strategy { return []Strategy{RoundRobin, Blocks, CostLPT} }

// checkCover verifies every non-generator element lands in exactly one
// partition.
func checkCover(t *testing.T, c *circuit.Circuit, parts [][]circuit.ElemID) {
	t.Helper()
	seen := make(map[circuit.ElemID]int)
	for _, part := range parts {
		for _, id := range part {
			seen[id]++
			if c.Elems[id].IsGenerator() {
				t.Errorf("generator %q assigned to a partition", c.Elems[id].Name)
			}
		}
	}
	want := 0
	for i := range c.Elems {
		if !c.Elems[i].IsGenerator() {
			want++
			if seen[c.Elems[i].ID] != 1 {
				t.Errorf("element %q covered %d times", c.Elems[i].Name, seen[c.Elems[i].ID])
			}
		}
	}
	if len(seen) != want {
		t.Errorf("covered %d elements, want %d", len(seen), want)
	}
}

// TestParseStrategy: every String() output round-trips, aliases resolve,
// and unknown names are rejected with the list of valid ones.
func TestParseStrategy(t *testing.T) {
	for _, s := range strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip %v -> %q -> %v (err %v)", s, s.String(), got, err)
		}
	}
	for in, want := range map[string]Strategy{
		"rr": RoundRobin, "": RoundRobin, "LPT": CostLPT, "block": Blocks,
	} {
		if got, err := ParseStrategy(in); err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("kernighan-lin"); err == nil ||
		!strings.Contains(err.Error(), "round-robin") {
		t.Errorf("unknown strategy err = %v, want list of valid names", err)
	}
}

func TestSplitCoversAllStrategies(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 8, TogglePeriod: 1})
	for _, s := range strategies() {
		for _, p := range []int{1, 2, 3, 7, 16} {
			parts := Split(c, p, s)
			if len(parts) != p {
				t.Fatalf("%v p=%d: %d partitions", s, p, len(parts))
			}
			checkCover(t, c, parts)
		}
	}
}

func TestRoundRobinBalance(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 8, TogglePeriod: 1})
	parts := Split(c, 4, RoundRobin)
	for _, part := range parts {
		if len(part) != 16 {
			t.Errorf("partition size %d, want 16", len(part))
		}
	}
	if im := Imbalance(c, parts); im > 1.01 {
		t.Errorf("imbalance %f on homogeneous circuit", im)
	}
}

func TestCostLPTBeatsRoundRobinOnFunctional(t *testing.T) {
	// The functional multiplier has wildly dissimilar element costs; LPT
	// should balance it at least as well as round-robin.
	c := gen.FuncMultiplier(gen.DefaultMultiplier())
	rr := Imbalance(c, Split(c, 8, RoundRobin))
	lpt := Imbalance(c, Split(c, 8, CostLPT))
	if lpt > rr+1e-9 {
		t.Errorf("LPT imbalance %.3f worse than round-robin %.3f", lpt, rr)
	}
	if lpt > 1.6 {
		t.Errorf("LPT imbalance %.3f unexpectedly poor", lpt)
	}
}

func TestMorePartitionsThanElements(t *testing.T) {
	c := gen.FeedbackChain(3) // 5 non-generator elements
	parts := Split(c, 16, RoundRobin)
	checkCover(t, c, parts)
	parts = Split(c, 16, Blocks)
	checkCover(t, c, parts)
}

func TestBadArgs(t *testing.T) {
	c := gen.FeedbackChain(3)
	for _, f := range []func(){
		func() { Split(c, 0, RoundRobin) },
		func() { Split(c, 2, Strategy(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy name")
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if Imbalance(nil, nil) != 1 {
		t.Error("no partitions must read as balanced")
	}
	c := gen.FeedbackChain(3)
	empty := [][]circuit.ElemID{{}, {}}
	if Imbalance(c, empty) != 1 {
		t.Error("zero-cost partitions must read as balanced")
	}
	// A deliberately lopsided partition.
	var all []circuit.ElemID
	for i := range c.Elems {
		if !c.Elems[i].IsGenerator() {
			all = append(all, c.Elems[i].ID)
		}
	}
	lop := [][]circuit.ElemID{all, {}}
	if im := Imbalance(c, lop); im != 2 {
		t.Errorf("all-on-one imbalance = %f, want 2", im)
	}
}
