package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/gen"
)

// c1 — checkpointing overhead: the compiled engine runs the four paper
// circuits twice, once plain and once checkpointing at the default capture
// interval and write gap, and the figure reports the run-time ratio in
// process CPU time (see `one` below for why not wall clock). The
// acceptance criterion is that checkpointing at the defaults costs <=5% on
// every circuit — cheap enough to leave on for any long run.
//
// Like v1/v2/f1/a1, c1 always measures real executions; `make bench-ckpt`
// regenerates the tracked BENCH_ckpt.json snapshot.
func c1(cfg Config) *Figure {
	f := &Figure{
		ID:     "c1",
		Title:  "Checkpointing overhead, compiled engine, default snapshot interval",
		XLabel: "circuit",
		YLabel: "CPU-time ratio (checkpointed / plain)",
	}
	// Horizons long enough to cross the snapshot interval several times;
	// the benches() horizons tuned for speed-up curves are too short for
	// even one save at the default interval.
	mult := gen.DefaultMultiplier()
	cpu := gen.DefaultCPU()
	gateHorizon := circuit.Time(4096)
	funcHorizon := circuit.Time(16384) // the functional model steps fast; more steps keep the run measurable
	arrHorizon := circuit.Time(16384)
	cpuCycles := 60
	if cfg.Quick {
		gateHorizon, funcHorizon, arrHorizon, cpuCycles = 1024, 1024, 1024, 20
	}
	rows := []bench{
		{"inverter-array", func() *circuit.Circuit {
			return gen.InverterArray(gen.DefaultInverterArray())
		}, arrHorizon},
		{"mult16-gate", func() *circuit.Circuit { return gen.GateMultiplier(mult) }, gateHorizon},
		{"mult16-func", func() *circuit.Circuit { return gen.FuncMultiplier(mult) }, funcHorizon},
		{"microprocessor", func() *circuit.Circuit { return gen.CPU(cpu) }, gen.CPUHorizon(cpu, cpuCycles)},
	}

	dir, err := os.MkdirTemp("", "parsim-ckpt-bench-")
	if err != nil {
		panic("harness: ckpt bench: " + err.Error())
	}
	defer os.RemoveAll(dir)

	// one measures a single run in process CPU time (user + system), falling
	// back to wall clock where rusage is unavailable. CPU time bills every
	// real checkpoint cost — capture, encode, write syscalls, fsync kernel
	// work, the extra GC — but not the neighbouring load that dominates
	// wall-clock variance on a shared host.
	one := func(c *circuit.Circuit, horizon circuit.Time, ckpt string, saves *int64) float64 {
		ec := engine.Config{Workers: 1, Horizon: horizon}
		if ckpt != "" {
			var n int64
			// The writer goroutine is joined before Run returns, so n is
			// settled by the time it is read back.
			ec.Checkpoint = engine.CheckpointSpec{
				Path:   ckpt,
				OnSave: func(step int64) { n++ },
			}
			defer func() { *saves = n }()
		}
		// A forced collection outside the timed region keeps one run's
		// garbage from billing the next run's measurement.
		runtime.GC()
		cpu0 := cpuTime()
		rep, err := engine.Run(context.Background(), "compiled", c, ec)
		if err != nil {
			panic("harness: compiled: " + err.Error())
		}
		if d := cpuTime() - cpu0; d > 0 {
			return float64(d)
		}
		return float64(rep.Run.Wall)
	}

	ratio := Series{Name: "wall-ratio"}
	worst := 0.0
	for i, r := range rows {
		c := r.build()
		// The two configurations are sampled in alternating order over the
		// same window and the figure reports the ratio of the CPU-time
		// sums, so any residual drift (thermal, frequency, accounting)
		// lands on both sums almost equally and cancels.
		plain, ckpt := 0.0, 0.0
		var saves int64
		// Unmeasured warm-up pair: the first runs of a circuit pay page
		// faults and heap growth that would otherwise bias whichever
		// configuration goes first.
		one(c, r.horizon, "", nil)
		one(c, r.horizon, filepath.Join(dir, r.name+".ckpt"), &saves)
		for rep := 0; rep < 2*realReps+4; rep++ {
			if rep%2 == 0 {
				plain += one(c, r.horizon, "", nil)
				ckpt += one(c, r.horizon, filepath.Join(dir, r.name+".ckpt"), &saves)
			} else {
				ckpt += one(c, r.horizon, filepath.Join(dir, r.name+".ckpt"), &saves)
				plain += one(c, r.horizon, "", nil)
			}
		}
		rel := 0.0
		if plain > 0 {
			rel = ckpt / plain
		}
		if rel > worst {
			worst = rel
		}
		ratio.X = append(ratio.X, float64(i))
		ratio.Y = append(ratio.Y, rel)
		reps := float64(2*realReps + 4)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: plain %.2fms, checkpointed %.2fms (%d snapshots last run) — %.3fx",
			r.name, plain/1e6/reps, ckpt/1e6/reps, saves, rel))
	}
	f.Series = append(f.Series, ratio)
	f.Notes = append(f.Notes,
		fmt.Sprintf("capture interval: every %d steps; durable writes throttled to one per %v, atomic temp+fsync+rename each", engine.DefaultCheckpointEvery, checkpoint.DefaultGap),
		fmt.Sprintf("worst circuit: %.3fx — acceptance: <=1.05x on every paper circuit", worst))
	return f
}
