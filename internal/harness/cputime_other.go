//go:build !unix

package harness

// cpuTime reports 0 on platforms without rusage; callers fall back to wall
// clock.
func cpuTime() int64 { return 0 }
