package harness

import (
	"strings"
	"testing"
)

func quickModel() Config {
	cfg := DefaultConfig(Model)
	cfg.Quick = true
	cfg.MaxP = 8
	return cfg
}

func TestAllModelExperimentsGenerate(t *testing.T) {
	cfg := quickModel()
	for _, id := range IDs() {
		f, err := Generate(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(f.Series) == 0 {
			t.Errorf("%s: no series", id)
		}
		out := f.Format()
		if !strings.Contains(out, strings.ToUpper(id)) {
			t.Errorf("%s: format missing id:\n%s", id, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Generate("fig9", quickModel()); err == nil {
		t.Error("fig9 accepted")
	}
}

func TestModelShapesMatchPaper(t *testing.T) {
	cfg := DefaultConfig(Model)
	cfg.Quick = true

	// Fig. 5: async above event-driven at 16 processors, both growing.
	f, err := Generate("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ed, as := f.Series[0], f.Series[1]
	edTop, asTop := ed.Y[len(ed.Y)-1], as.Y[len(as.Y)-1]
	if asTop <= edTop {
		t.Errorf("async %0.2f not above event-driven %0.2f at max P", asTop, edTop)
	}
	if edTop < 5 || edTop > 12 {
		t.Errorf("event-driven top speed-up %.2f outside paper band", edTop)
	}
	if asTop < 9 || asTop > 16 {
		t.Errorf("async top speed-up %.2f outside paper band", asTop)
	}

	// T1: every ratio in [1, 3.5].
	f, err = Generate("t1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if r := s.Y[0]; r < 1 || r > 3.5 {
			t.Errorf("t1 %s ratio %.2f outside [1, 3.5]", s.Name, r)
		}
	}

	// T2: central queue ceiling ~2, distributed well above.
	f, err = Generate("t2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var central, dist Series
	for _, s := range f.Series {
		switch s.Name {
		case "central":
			central = s
		case "distributed":
			dist = s
		}
	}
	for _, y := range central.Y {
		if y > 2.6 {
			t.Errorf("central speed-up %.2f above the ~2 ceiling", y)
		}
	}
	if top := dist.Y[len(dist.Y)-1]; top < 2*central.Y[len(central.Y)-1] {
		t.Errorf("distributed %.2f not clearly above central", top)
	}

	// T4: feedback chain stuck near 1.
	f, err = Generate("t4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range f.Series[0].Y {
		if y > 1.6 {
			t.Errorf("feedback chain speed-up %.2f; should stay near 1", y)
		}
	}
}

func TestRealModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-mode timing in -short")
	}
	cfg := DefaultConfig(Real)
	cfg.Quick = true
	cfg.MaxP = 2
	cfg.SpinScale = 20
	f, err := Generate("fig5", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock numbers are noisy; only sanity-check structure.
	for _, s := range f.Series {
		if len(s.Y) == 0 || s.Y[0] <= 0 {
			t.Errorf("series %s empty or nonpositive", s.Name)
		}
	}
}

func TestProcSweep(t *testing.T) {
	ps := procSweep(16)
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16}
	if len(ps) != len(want) {
		t.Fatalf("sweep = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("sweep = %v", ps)
		}
	}
	if got := procSweep(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("sweep(1) = %v", got)
	}
}

func TestFormatAlignment(t *testing.T) {
	f := &Figure{
		ID: "test", Title: "t", XLabel: "P",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{1, 1.5}},
			{Name: "b", X: []float64{2}, Y: []float64{3}},
		},
		Notes: []string{"hello"},
	}
	out := f.Format()
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for absent point")
	}
	if !strings.Contains(out, "note: hello") {
		t.Error("missing note")
	}
}

func TestChart(t *testing.T) {
	f := &Figure{
		ID: "c", Title: "t", XLabel: "P", YLabel: "speed-up",
		Series: []Series{
			{Name: "alpha", X: []float64{1, 2, 4, 8}, Y: []float64{1, 1.9, 3.5, 6}},
			{Name: "beta", X: []float64{1, 2, 4, 8}, Y: []float64{1, 1.5, 2, 2.2}},
		},
	}
	out := f.Chart(60, 12)
	for _, want := range []string{"speed-up vs P", "*", "+", "alpha", "beta", "ideal", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 15 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
	// Degenerate inputs must not panic and return empty.
	if (&Figure{}).Chart(60, 12) != "" {
		t.Error("empty figure should render nothing")
	}
	flat := &Figure{Series: []Series{{Name: "f", X: []float64{1}, Y: []float64{0}}}}
	if flat.Chart(60, 12) != "" {
		t.Error("zero-range figure should render nothing")
	}
}

// TestBatchedThroughput is the acceptance gate for the batched engine:
// on the two-valued inverter array, packing 64 stimulus vectors per word
// must deliver at least 8x the scalar compiled engine's per-vector
// throughput. The measured margin is ~100x, so the 8x floor holds even
// on a loaded CI host.
func TestBatchedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("real-mode timing in -short")
	}
	cfg := DefaultConfig(Real)
	cfg.Quick = true
	f, err := Generate("v1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := f.Series[0]
	if sp.Name != "per-vector-speedup" {
		t.Fatalf("series[0] = %q", sp.Name)
	}
	last := len(sp.X) - 1
	if sp.X[last] != 64 {
		t.Fatalf("last lane count = %v, want 64", sp.X[last])
	}
	if sp.Y[last] < 8 {
		t.Errorf("per-vector speed-up at 64 lanes = %.1fx, want >= 8x", sp.Y[last])
	}
}
