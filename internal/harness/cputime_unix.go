//go:build unix

package harness

import "syscall"

// cpuTime returns the process's cumulative CPU time (user + system) in
// nanoseconds, or 0 when unavailable. The overhead experiments prefer CPU
// time over wall clock: on a shared host the wall noise from neighbouring
// load exceeds the effects being measured, while CPU time bills exactly the
// work this process did — including kernel time spent in fsync.
func cpuTime() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
