// Package harness regenerates every figure and quantitative claim from the
// paper's evaluation. Each experiment can run in two modes:
//
//   - Model: the virtual 16-processor machine (package machine) replays the
//     algorithms over traces collected from the sequential simulator. This
//     reproduces the paper's full 1-16 processor curves deterministically on
//     any host.
//   - Real: the actual parallel simulators run on real goroutines and the
//     harness reports measured wall-clock speed-ups. Curves are bounded by
//     the host's core count.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/gen"
	"parsim/internal/machine"
	"parsim/internal/partition"
	"parsim/internal/seq"

	// Populate the engine registry (the harness cannot import the parsim
	// facade, which itself imports this package).
	_ "parsim/internal/compiled"
	_ "parsim/internal/core"
	_ "parsim/internal/dist"
	_ "parsim/internal/parevent"
	_ "parsim/internal/timewarp"
)

// Mode selects how an experiment is executed.
type Mode int

// Execution modes.
const (
	Model Mode = iota // virtual multiprocessor, deterministic
	Real              // real goroutines, wall-clock timing
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Real {
		return "real"
	}
	return "model"
}

// Config parameterises experiment generation.
type Config struct {
	Mode  Mode
	MaxP  int  // highest processor count on the curves
	Quick bool // shrink horizons (used by tests)
	// SpinScale adds synthetic per-evaluation work in Real mode so that
	// evaluation cost dominates goroutine overhead, as interpreted
	// evaluation routines did on the Multimax.
	SpinScale int64
	Cost      machine.CostModel
}

// DefaultConfig returns the standard configuration for the given mode.
func DefaultConfig(mode Mode) Config {
	cfg := Config{
		Mode:      mode,
		MaxP:      16,
		SpinScale: 300,
		Cost:      machine.DefaultCostModel(),
	}
	if mode == Real {
		cfg.MaxP = runtime.NumCPU()
	}
	return cfg
}

// Series is one labelled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one regenerated experiment.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// IDs returns every experiment identifier, in paper order. The first nine
// are the paper's figures and quantitative claims; t5 quantifies the
// related-work baselines the paper argues against.
func IDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "t1", "t2", "t3", "t4", "t5"}
}

// Generate regenerates one experiment by ID.
func Generate(id string, cfg Config) (*Figure, error) {
	if cfg.MaxP < 1 {
		cfg.MaxP = 1
	}
	switch strings.ToLower(id) {
	case "fig1":
		return fig1(cfg), nil
	case "fig2":
		return fig2(cfg), nil
	case "fig3":
		return fig3(cfg), nil
	case "fig4":
		return fig4(cfg), nil
	case "fig5":
		return fig5(cfg), nil
	case "t1":
		return t1(cfg), nil
	case "t2":
		return t2(cfg), nil
	case "t3":
		return t3(cfg), nil
	case "t4":
		return t4(cfg), nil
	case "t5":
		return t5(cfg), nil
	case "v1":
		// Not in IDs(): the batched-throughput experiment always measures
		// real wall-clock (see vector.go), so the default all-experiments
		// model pass skips it; `make bench-vector` regenerates it.
		return v1(cfg), nil
	case "v2":
		// Also real-only: the lanes x workers sweep behind BENCH_vector2.json
		// (`make bench-vector2`).
		return v2(cfg), nil
	case "f1":
		// Fault-simulation coverage behind BENCH_fault.json (`make
		// bench-fault`); deterministic series, real wall in the notes.
		return f1(cfg), nil
	case "a1":
		// Real-only too: engine=auto against the measured best-of-eight
		// (`make bench-auto` writes BENCH_auto.json).
		return a1(cfg), nil
	case "c1":
		// Real-only: checkpointing overhead on the paper circuits (`make
		// bench-ckpt` writes BENCH_ckpt.json).
		return c1(cfg), nil
	case "j1":
		// Real-only: codegen-vs-compiled throughput behind BENCH_jit.json
		// (`make bench-jit`).
		return j1(cfg), nil
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %s, v1, v2, f1, a1, c1, j1)", id, strings.Join(IDs(), ", "))
}

// procSweep returns the processor counts for curves: 1..8 then evens.
func procSweep(maxP int) []int {
	var ps []int
	for p := 1; p <= maxP; p++ {
		if p <= 8 || p%2 == 0 {
			ps = append(ps, p)
		}
	}
	return ps
}

// ---- benchmark circuits ----

type bench struct {
	name    string
	build   func() *circuit.Circuit
	horizon circuit.Time
}

func (cfg *Config) benches() map[string]bench {
	mult := gen.DefaultMultiplier()
	periods := circuit.Time(4)
	arrayHorizon := circuit.Time(192)
	cpuCycles := 40
	if cfg.Quick {
		periods = 2
		arrayHorizon = 96
		cpuCycles = 12
	}
	cpu := gen.DefaultCPU()
	return map[string]bench{
		"mult16-gate": {
			name:    "mult16-gate",
			build:   func() *circuit.Circuit { return gen.GateMultiplier(mult) },
			horizon: mult.InPeriod * periods,
		},
		"mult16-func": {
			name:    "mult16-func",
			build:   func() *circuit.Circuit { return gen.FuncMultiplier(mult) },
			horizon: mult.InPeriod * periods * 2,
		},
		"inverter-array": {
			name:    "inverter-array",
			build:   func() *circuit.Circuit { return gen.InverterArray(gen.DefaultInverterArray()) },
			horizon: arrayHorizon,
		},
		"microprocessor": {
			name:    "microprocessor",
			build:   func() *circuit.Circuit { return gen.CPU(cpu) },
			horizon: gen.CPUHorizon(cpu, cpuCycles),
		},
	}
}

// ---- shared speed-up machinery ----

// algo abstracts "run this algorithm at P processors and give me a span".
// Model mode returns virtual spans; Real mode wall-clock nanoseconds.
type algo struct {
	name string
	run  func(p int) (span float64, util float64)
}

// speedupSeries evaluates one algorithm across the processor sweep.
func speedupSeries(name string, ps []int, run func(p int) (float64, float64)) Series {
	s := Series{Name: name}
	base, _ := run(1)
	for _, p := range ps {
		span, _ := run(p)
		sp := 0.0
		if span > 0 {
			sp = base / span
		}
		s.X = append(s.X, float64(p))
		s.Y = append(s.Y, sp)
	}
	return s
}

// modelEventDriven builds the model-mode runner for a circuit.
func (cfg *Config) modelEventDriven(c *circuit.Circuit, res *seq.Result, mode machine.EDMode) func(int) (float64, float64) {
	return func(p int) (float64, float64) {
		m := machine.EventDriven(c, res.Steps, p, mode, cfg.Cost)
		return float64(m.Span), m.Utilization()
	}
}

func (cfg *Config) modelAsync(c *circuit.Circuit, res *seq.Result) func(int) (float64, float64) {
	return func(p int) (float64, float64) {
		m := machine.Async(c, res.Graph, p, cfg.Cost)
		return float64(m.Span), m.Utilization()
	}
}

func (cfg *Config) modelCompiled(c *circuit.Circuit, steps int64) func(int) (float64, float64) {
	return func(p int) (float64, float64) {
		m := machine.Compiled(c, steps, p, partition.RoundRobin, cfg.Cost)
		return float64(m.Span), m.Utilization()
	}
}

// realRun medians wall-clock over a few repetitions.
const realReps = 3

func realBest(f func() (float64, float64)) (float64, float64) {
	bestSpan, bestUtil := 0.0, 0.0
	for i := 0; i < realReps; i++ {
		span, util := f()
		if i == 0 || span < bestSpan {
			bestSpan, bestUtil = span, util
		}
	}
	return bestSpan, bestUtil
}

// realEngine builds a Real-mode runner for any registered algorithm: one
// generic path through the engine registry instead of a hand-rolled runner
// per simulator. tweak, when non-nil, adjusts the Config (ablation flags).
func (cfg *Config) realEngine(alg string, c *circuit.Circuit, horizon circuit.Time, tweak func(*engine.Config)) func(int) (float64, float64) {
	return func(p int) (float64, float64) {
		return realBest(func() (float64, float64) {
			ec := engine.Config{Workers: p, Horizon: horizon, CostSpin: cfg.SpinScale}
			if tweak != nil {
				tweak(&ec)
			}
			rep, err := engine.Run(context.Background(), alg, c, ec)
			if err != nil {
				panic("harness: " + alg + ": " + err.Error())
			}
			return float64(rep.Run.Wall), rep.Run.Utilization()
		})
	}
}

// collectFor runs the sequential simulator with trace collection.
func collectFor(c *circuit.Circuit, horizon circuit.Time) *seq.Result {
	return seq.Run(c, seq.Options{Horizon: horizon, Collect: true, CollectAvail: true})
}

// Format renders the figure as an aligned text table with notes.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(f.ID), f.Title)
	if len(f.Series) > 0 {
		// Header.
		fmt.Fprintf(&b, "  %-8s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "  %14s", s.Name)
		}
		fmt.Fprintln(&b)
		// Merge X values (series may share them; use the first series' X).
		xs := map[float64]bool{}
		for _, s := range f.Series {
			for _, x := range s.X {
				xs[x] = true
			}
		}
		sorted := make([]float64, 0, len(xs))
		for x := range xs {
			sorted = append(sorted, x)
		}
		sort.Float64s(sorted)
		for _, x := range sorted {
			fmt.Fprintf(&b, "  %-8.6g", x)
			for _, s := range f.Series {
				y, ok := lookup(s, x)
				if ok {
					fmt.Fprintf(&b, "  %14.2f", y)
				} else {
					fmt.Fprintf(&b, "  %14s", "-")
				}
			}
			fmt.Fprintln(&b)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}
