package harness

import (
	"context"
	"fmt"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/gen"

	// The batched engine registers itself like the scalar simulators.
	_ "parsim/internal/vector"
)

// v1 — batched compiled-mode throughput: the bit-parallel vector engine
// packs up to 64 seed-shifted stimulus vectors into the two planes of a
// machine word, so one pass over the levelized schedule advances every
// vector at once. The experiment sweeps the lane count on the two-valued
// inverter array and reports per-vector speed-up over the scalar compiled
// engine: (scalar wall x lanes) / batched wall, both at one worker so the
// ratio isolates word-level parallelism from thread-level parallelism.
//
// v1 is not part of IDs(): it measures real wall-clock regardless of the
// configured mode (there is no virtual-machine model of word-level
// parallelism), so it is regenerated on demand — `make bench-vector`
// writes the snapshot the repository tracks as BENCH_vector.json.
func v1(cfg Config) *Figure {
	f := &Figure{
		ID:     "v1",
		Title:  "Batched compiled-mode per-vector speed-up vs scalar compiled, inverter array",
		XLabel: "lanes",
		YLabel: "per-vector speed-up",
	}
	horizon := circuit.Time(4096)
	if cfg.Quick {
		horizon = 512
	}
	c := gen.InverterArray(gen.DefaultInverterArray())

	// Wall-clock of one run, best of realReps; CostSpin stays zero so the
	// measurement is raw kernel throughput, not synthetic evaluation work.
	wall := func(alg string, lanes int) float64 {
		span, _ := realBest(func() (float64, float64) {
			rep, err := engine.Run(context.Background(), alg, c, engine.Config{
				Workers: 1, Horizon: horizon, Lanes: lanes,
			})
			if err != nil {
				panic("harness: " + alg + ": " + err.Error())
			}
			return float64(rep.Run.Wall), rep.Run.Utilization()
		})
		return span
	}

	scalar := wall("compiled", 0)
	speedup := Series{Name: "per-vector-speedup"}
	ratio := Series{Name: "batch-wall-ratio"} // batched wall / scalar wall
	for _, lanes := range []int{1, 8, 16, 32, 64} {
		w := wall("vector", lanes)
		sp, r := 0.0, 0.0
		if w > 0 {
			sp = scalar * float64(lanes) / w
		}
		if scalar > 0 {
			r = w / scalar
		}
		speedup.X = append(speedup.X, float64(lanes))
		speedup.Y = append(speedup.Y, sp)
		ratio.X = append(ratio.X, float64(lanes))
		ratio.Y = append(ratio.Y, r)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%2d lanes: %.2fms wall, %.1fx per-vector (batch costs %.2fx one scalar run)",
			lanes, w/1e6, sp, r))
	}
	f.Series = append(f.Series, speedup, ratio)
	f.Notes = append(f.Notes,
		fmt.Sprintf("scalar compiled baseline: %.2fms wall for one stimulus vector", scalar/1e6),
		"target: >=8x per-vector throughput at 64 lanes on the two-valued inverter array",
		"both engines run one worker; the ratio isolates word-level parallelism")
	return f
}

// v2 — lanes x workers: the wide-plane refactor multiplies the two
// parallelism axes, so the sweep runs the vector engine at 64, 256 and
// 1024 lanes across 1-8 workers on the inverter array. Each gated series
// reports lane-axis amortization at a fixed worker count — per-vector
// throughput relative to the one-word 64-lane run with the same workers —
// so the numbers compare across hosts with different core counts (the
// thread axis cancels out). The notes record the absolute acceptance
// ratio: 1024-lane multi-worker per-vector throughput over the 64-lane
// single-worker baseline.
//
// Like v1, v2 always measures real wall-clock; `make bench-vector2`
// regenerates the tracked BENCH_vector2.json snapshot and `make
// bench-diff` re-measures it within a loose tolerance.
func v2(cfg Config) *Figure {
	f := &Figure{
		ID:     "v2",
		Title:  "Wide-plane per-vector throughput, lanes x workers, inverter array",
		XLabel: "workers",
		YLabel: "throughput vs 64 lanes, same workers",
	}
	horizon := circuit.Time(4096)
	if cfg.Quick {
		horizon = 512
	}
	c := gen.InverterArray(gen.DefaultInverterArray())
	laneSweep := []int{64, 256, 1024}
	workerSweep := []int{1, 2, 4, 8}

	wall := func(lanes, workers int) float64 {
		span, _ := realBest(func() (float64, float64) {
			rep, err := engine.Run(context.Background(), "vector", c, engine.Config{
				Workers: workers, Horizon: horizon, Lanes: lanes,
			})
			if err != nil {
				panic("harness: vector: " + err.Error())
			}
			return float64(rep.Run.Wall), rep.Run.Utilization()
		})
		return span
	}

	walls := make(map[[2]int]float64)
	for _, lanes := range laneSweep {
		for _, workers := range workerSweep {
			walls[[2]int{lanes, workers}] = wall(lanes, workers)
		}
	}
	// throughput in vectors per nanosecond
	tput := func(lanes, workers int) float64 {
		if w := walls[[2]int{lanes, workers}]; w > 0 {
			return float64(lanes) / w
		}
		return 0
	}
	for _, lanes := range laneSweep {
		s := Series{Name: fmt.Sprintf("lanes-%d", lanes)}
		for _, workers := range workerSweep {
			rel := 0.0
			if base := tput(64, workers); base > 0 {
				rel = tput(lanes, workers) / base
			}
			s.X = append(s.X, float64(workers))
			s.Y = append(s.Y, rel)
			f.Notes = append(f.Notes, fmt.Sprintf(
				"%4d lanes x %d workers: %.2fms wall, %.2fx per-vector vs 64 lanes at the same workers",
				lanes, workers, walls[[2]int{lanes, workers}]/1e6, rel))
		}
		f.Series = append(f.Series, s)
	}
	// The acceptance ratio: best multi-worker 1024-lane throughput over the
	// 64-lane single-worker baseline (the engine's pre-refactor ceiling).
	base := tput(64, 1)
	best, bestW := 0.0, 0
	for _, workers := range workerSweep[1:] {
		if tp := tput(1024, workers); tp > best {
			best, bestW = tp, workers
		}
	}
	accept := 0.0
	if base > 0 {
		accept = best / base
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("acceptance: 1024 lanes x %d workers deliver %.1fx the per-vector throughput of 64 lanes x 1 worker (target >=4x)",
			bestW, accept),
		"series are normalised per worker count so the lane-axis amortization compares across hosts")
	return f
}

// f1 — concurrent stuck-at fault simulation: coverage, collapse rate,
// pass count and grading throughput on the four paper circuits. Lane 0
// carries the good machine and every other lane injects one fault from
// the analyzer's collapsed list, so one wide-plane pass grades Lanes-1
// faults against the same stimulus. The coverage/collapse/pass series are
// deterministic (fixed stimulus seeds, fixed fault lists); only the
// faults-per-second series and the wall notes carry real time.
func f1(cfg Config) *Figure {
	f := &Figure{
		ID:     "f1",
		Title:  "Concurrent stuck-at fault simulation on the paper circuits",
		XLabel: "circuit",
		YLabel: "fraction",
	}
	type row struct {
		name    string
		build   func() *circuit.Circuit
		horizon circuit.Time
		lanes   int
	}
	// Fault grading needs stimulus variety more than settling time, so the
	// multipliers run with a shortened input period — the arrays settle
	// well inside each period — and the multiplier fault lists (thousands
	// of sites, nothing collapses in a NAND array) get 1024-lane planes so
	// the pass count stays small.
	multCfg := gen.DefaultMultiplier()
	multCfg.InPeriod = 64
	funcCfg := gen.DefaultMultiplier()
	funcCfg.InPeriod = 64
	cpuCfg := gen.DefaultCPU()
	multHorizon, cpuCycles := circuit.Time(2048), 24
	arrHorizon := circuit.Time(256)
	if cfg.Quick {
		multHorizon, arrHorizon, cpuCycles = 1024, 64, 8
	}
	rows := []row{
		{"inverter-array", func() *circuit.Circuit {
			return gen.InverterArray(gen.DefaultInverterArray())
		}, arrHorizon, 64},
		{"mult16-gate", func() *circuit.Circuit {
			return gen.GateMultiplier(multCfg)
		}, multHorizon, 1024},
		{"mult16-func", func() *circuit.Circuit {
			return gen.FuncMultiplier(funcCfg)
		}, multHorizon, 1024},
		{"microprocessor", func() *circuit.Circuit {
			return gen.CPU(cpuCfg)
		}, gen.CPUHorizon(cpuCfg, cpuCycles), 1024},
	}
	coverage := Series{Name: "coverage"}
	collapse := Series{Name: "collapse-rate"}
	passes := Series{Name: "passes"}
	rate := Series{Name: "faults-per-second"}
	for i, r := range rows {
		c := r.build()
		start := time.Now()
		rep, err := engine.Run(context.Background(), "vector", c, engine.Config{
			Workers: 1, Horizon: r.horizon, Lanes: r.lanes, FaultSim: true,
		})
		if err != nil {
			panic("harness: fault sim: " + err.Error())
		}
		wall := time.Since(start)
		cov := rep.FaultCoverage
		sites := cov.Total + cov.Collapsed
		x := float64(i)
		coverage.X = append(coverage.X, x)
		coverage.Y = append(coverage.Y, cov.Coverage())
		collapse.X = append(collapse.X, x)
		collapse.Y = append(collapse.Y, float64(cov.Collapsed)/float64(sites))
		passes.X = append(passes.X, x)
		passes.Y = append(passes.Y, float64(cov.Passes))
		rate.X = append(rate.X, x)
		rate.Y = append(rate.Y, float64(cov.Total)/wall.Seconds())
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: %s — %d stuck-at sites collapsed to %d, graded in %.0fms at %d lanes (%.0f faults/s)",
			r.name, cov.String(), sites, cov.Total,
			float64(wall)/1e6, r.lanes, float64(cov.Total)/wall.Seconds()))
	}
	f.Series = append(f.Series, coverage, collapse, passes, rate)
	f.Notes = append(f.Notes,
		"lane 0 is the good machine; a fault counts detected when any observed sink",
		"diverges from lane 0 before the horizon; acceptance: >=90% coverage on at",
		"least one paper circuit (sequential depth limits the CPU's reachable sites)")
	return f
}
