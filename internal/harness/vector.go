package harness

import (
	"context"
	"fmt"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/gen"

	// The batched engine registers itself like the scalar simulators.
	_ "parsim/internal/vector"
)

// v1 — batched compiled-mode throughput: the bit-parallel vector engine
// packs up to 64 seed-shifted stimulus vectors into the two planes of a
// machine word, so one pass over the levelized schedule advances every
// vector at once. The experiment sweeps the lane count on the two-valued
// inverter array and reports per-vector speed-up over the scalar compiled
// engine: (scalar wall x lanes) / batched wall, both at one worker so the
// ratio isolates word-level parallelism from thread-level parallelism.
//
// v1 is not part of IDs(): it measures real wall-clock regardless of the
// configured mode (there is no virtual-machine model of word-level
// parallelism), so it is regenerated on demand — `make bench-vector`
// writes the snapshot the repository tracks as BENCH_vector.json.
func v1(cfg Config) *Figure {
	f := &Figure{
		ID:     "v1",
		Title:  "Batched compiled-mode per-vector speed-up vs scalar compiled, inverter array",
		XLabel: "lanes",
		YLabel: "per-vector speed-up",
	}
	horizon := circuit.Time(4096)
	if cfg.Quick {
		horizon = 512
	}
	c := gen.InverterArray(gen.DefaultInverterArray())

	// Wall-clock of one run, best of realReps; CostSpin stays zero so the
	// measurement is raw kernel throughput, not synthetic evaluation work.
	wall := func(alg string, lanes int) float64 {
		span, _ := realBest(func() (float64, float64) {
			rep, err := engine.Run(context.Background(), alg, c, engine.Config{
				Workers: 1, Horizon: horizon, Lanes: lanes,
			})
			if err != nil {
				panic("harness: " + alg + ": " + err.Error())
			}
			return float64(rep.Run.Wall), rep.Run.Utilization()
		})
		return span
	}

	scalar := wall("compiled", 0)
	speedup := Series{Name: "per-vector-speedup"}
	ratio := Series{Name: "batch-wall-ratio"} // batched wall / scalar wall
	for _, lanes := range []int{1, 8, 16, 32, 64} {
		w := wall("vector", lanes)
		sp, r := 0.0, 0.0
		if w > 0 {
			sp = scalar * float64(lanes) / w
		}
		if scalar > 0 {
			r = w / scalar
		}
		speedup.X = append(speedup.X, float64(lanes))
		speedup.Y = append(speedup.Y, sp)
		ratio.X = append(ratio.X, float64(lanes))
		ratio.Y = append(ratio.Y, r)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%2d lanes: %.2fms wall, %.1fx per-vector (batch costs %.2fx one scalar run)",
			lanes, w/1e6, sp, r))
	}
	f.Series = append(f.Series, speedup, ratio)
	f.Notes = append(f.Notes,
		fmt.Sprintf("scalar compiled baseline: %.2fms wall for one stimulus vector", scalar/1e6),
		"target: >=8x per-vector throughput at 64 lanes on the two-valued inverter array",
		"both engines run one worker; the ratio isolates word-level parallelism")
	return f
}
