package harness

import (
	"context"
	"fmt"

	"parsim/internal/engine"

	// The statically compiled ("jit") engine registers itself too.
	_ "parsim/internal/codegen"
)

// j1 — codegen vs compiled wall-clock: the jit engine lowers the levelized
// schedule into fused batch loops over struct-of-arrays slabs, replacing
// the compiled engine's per-element closure walk. The experiment measures
// raw kernel throughput (CostSpin 0, scalar lanes) on the two structured
// paper circuits — the gate-level multiplier and the microprocessor — at
// 1, 2 and 4 workers, and reports the jit/compiled speed-up per worker
// count. Acceptance: >= 1.5x over compiled at one worker on both circuits.
//
// Like v1/v2/f1/a1/c1, j1 is not part of IDs(): it always measures real
// wall-clock, so `make bench-jit` regenerates the tracked BENCH_jit.json
// snapshot and `make bench-diff` re-measures it within a loose tolerance.
func j1(cfg Config) *Figure {
	f := &Figure{
		ID:     "j1",
		Title:  "Codegen (jit) speed-up over the compiled engine, structured circuits",
		XLabel: "workers",
		YLabel: "jit speed-up vs compiled, same workers",
	}
	benches := cfg.benches()
	workerSweep := []int{1, 2, 4}

	wall := func(alg string, b bench, workers int) float64 {
		span, _ := realBest(func() (float64, float64) {
			rep, err := engine.Run(context.Background(), alg, b.build(), engine.Config{
				Workers: workers, Horizon: b.horizon,
			})
			if err != nil {
				panic("harness: " + alg + ": " + err.Error())
			}
			return float64(rep.Run.Wall), rep.Run.Utilization()
		})
		return span
	}

	for _, name := range []string{"mult16-gate", "microprocessor"} {
		b := benches[name]
		s := Series{Name: name}
		for _, workers := range workerSweep {
			cw := wall("compiled", b, workers)
			jw := wall("jit", b, workers)
			sp := 0.0
			if jw > 0 {
				sp = cw / jw
			}
			s.X = append(s.X, float64(workers))
			s.Y = append(s.Y, sp)
			f.Notes = append(f.Notes, fmt.Sprintf(
				"%s x %d workers: compiled %.2fms, jit %.2fms — %.2fx",
				name, workers, cw/1e6, jw/1e6, sp))
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"CostSpin 0, one stimulus lane: the ratio is raw schedule-walk throughput,",
		"fused batch loops + SoA slabs vs per-element closures over plane structs",
		"acceptance: >=1.5x over compiled at 1 worker on both circuits")
	return f
}
