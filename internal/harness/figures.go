package harness

import (
	"context"
	"fmt"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/gen"
	"parsim/internal/machine"
	"parsim/internal/seq"
)

// utilAt reads a speed-up series at processor count p and converts to the
// paper's utilisation measure, speed-up divided by processors.
func utilAt(s Series, p int) float64 {
	for i, x := range s.X {
		if int(x) == p {
			return s.Y[i] / float64(p)
		}
	}
	return 0
}

// fig1 — "Event-driven Simulation Results": speed-up versus processors for
// the four benchmark circuits. Paper: 6-9x with 15 processors on the gate
// multiplier, with a dip above 8 processors from cache sharing.
func fig1(cfg Config) *Figure {
	f := &Figure{
		ID:     "fig1",
		Title:  "Event-driven speed-up vs processors (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	ps := procSweep(cfg.MaxP)
	for _, name := range []string{"mult16-gate", "mult16-func", "inverter-array", "microprocessor"} {
		b := cfg.benches()[name]
		c := b.build()
		var run func(int) (float64, float64)
		if cfg.Mode == Model {
			res := collectFor(c, b.horizon)
			run = cfg.modelEventDriven(c, res, machine.EDDistributed)
		} else {
			run = cfg.realEngine("event-driven", c, b.horizon, nil)
		}
		f.Series = append(f.Series, speedupSeries(name, ps, run))
	}
	f.Notes = append(f.Notes,
		"paper: gate multiplier reaches 6-9x at 15 processors; utilisation limited by",
		"available events per step and the end-of-step synchronisation",
		"paper fig-1 dip above 8 processors: two processors per Encore cache card")
	return f
}

// fig2 — "Event per Time-Step Results": event-driven speed-up on the
// inverter array with the stimulus rate controlling events per tick
// (512/256/128/64).
func fig2(cfg Config) *Figure {
	f := &Figure{
		ID:     "fig2",
		Title:  "Event-driven speed-up vs events per time step, inverter array (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	horizon := circuit.Time(192)
	if cfg.Quick {
		horizon = 96
	}
	ps := procSweep(cfg.MaxP)
	for _, active := range []int{32, 16, 8, 4} {
		acfg := gen.DefaultInverterArray()
		acfg.ActiveRows = active
		c := gen.InverterArray(acfg)
		var run func(int) (float64, float64)
		if cfg.Mode == Model {
			res := collectFor(c, horizon)
			run = cfg.modelEventDriven(c, res, machine.EDDistributed)
		} else {
			run = cfg.realEngine("event-driven", c, horizon, nil)
		}
		f.Series = append(f.Series, speedupSeries(fmt.Sprintf("%d ev/tick", active*16), ps, run))
	}
	f.Notes = append(f.Notes,
		"paper: to use more than 16 processors efficiently, ~1000 events must be",
		"available in a significant fraction of the time steps")
	return f
}

// fig3 — "Compiled Mode Simulation Results": speed-up versus processors.
// Paper: 10-13x at 15 processors for homogeneous gate circuits; the
// functional multiplier is poor (few elements, dissimilar costs).
func fig3(cfg Config) *Figure {
	f := &Figure{
		ID:     "fig3",
		Title:  "Compiled-mode speed-up vs processors (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	ps := procSweep(cfg.MaxP)
	steps := int64(128)
	realHorizon := circuit.Time(128)
	if cfg.Quick {
		steps, realHorizon = 48, 48
	}
	for _, name := range []string{"inverter-array", "mult16-gate", "mult16-func"} {
		b := cfg.benches()[name]
		c := b.build()
		var run func(int) (float64, float64)
		if cfg.Mode == Model {
			run = cfg.modelCompiled(c, steps)
		} else {
			run = cfg.realEngine("compiled", c, realHorizon, nil)
		}
		f.Series = append(f.Series, speedupSeries(name, ps, run))
	}
	f.Notes = append(f.Notes,
		"paper: compiled mode wins on circuits with many similar elements, but if",
		"element activity is low most of the speed-up is meaningless — the",
		"event-driven approach would be faster overall")
	return f
}

// fig4 — "Speedups for the Asynchronous Algorithm". Paper: inverter array
// best (91% utilisation at 8 processors), then the gate multiplier; the
// 100-element functional multiplier pipelines.
func fig4(cfg Config) *Figure {
	f := &Figure{
		ID:     "fig4",
		Title:  "Asynchronous algorithm speed-up vs processors (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	ps := procSweep(cfg.MaxP)
	for _, name := range []string{"inverter-array", "mult16-gate", "mult16-func"} {
		b := cfg.benches()[name]
		c := b.build()
		var run func(int) (float64, float64)
		if cfg.Mode == Model {
			res := collectFor(c, b.horizon)
			run = cfg.modelAsync(c, res)
		} else {
			run = cfg.realEngine("asynchronous", c, b.horizon, nil)
		}
		f.Series = append(f.Series, speedupSeries(name, ps, run))
	}
	p8 := 8
	if p8 > cfg.MaxP {
		p8 = cfg.MaxP
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("inverter-array utilisation (speed-up/P) at P=%d: %.0f%% (paper: 91%% at 8)",
			p8, 100*utilAt(f.Series[0], p8)),
		"paper: the functional multiplier is small (100 elements) so evaluation",
		"pipelines, raising scheduling overhead per event")
	return f
}

// fig5 — "Comparative Speeds for the Inverter Array": event-driven vs
// asynchronous speed-up on one plot. Paper: async utilisation 68% at 16
// processors, 10-20% above the event-driven algorithm.
func fig5(cfg Config) *Figure {
	f := &Figure{
		ID:     "fig5",
		Title:  "Event-driven vs asynchronous on the inverter array (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	b := cfg.benches()["inverter-array"]
	c := b.build()
	ps := procSweep(cfg.MaxP)
	var edRun, asRun func(int) (float64, float64)
	if cfg.Mode == Model {
		res := collectFor(c, b.horizon)
		edRun = cfg.modelEventDriven(c, res, machine.EDDistributed)
		asRun = cfg.modelAsync(c, res)
	} else {
		edRun = cfg.realEngine("event-driven", c, b.horizon, nil)
		asRun = cfg.realEngine("asynchronous", c, b.horizon, nil)
	}
	f.Series = append(f.Series,
		speedupSeries("event-driven", ps, edRun),
		speedupSeries("asynchronous", ps, asRun))
	pTop := cfg.MaxP
	edU := utilAt(f.Series[0], pTop)
	asU := utilAt(f.Series[1], pTop)
	f.Notes = append(f.Notes,
		fmt.Sprintf("utilisation (speed-up/P) at P=%d: asynchronous %.0f%%, event-driven %.0f%%",
			pTop, 100*asU, 100*edU),
		"paper: asynchronous utilisation 68% at 16 processors, 10-20% above event-driven")
	return f
}

// t1 — text claim §5: "The uniprocessor version of the asynchronous
// algorithm ranges between 1 to 3 times faster than the event-driven
// algorithm."
func t1(cfg Config) *Figure {
	f := &Figure{
		ID:     "t1",
		Title:  "Uniprocessor asynchronous vs event-driven speed ratio (" + cfg.Mode.String() + " mode)",
		XLabel: "circuit",
		YLabel: "ratio",
	}
	i := 0.0
	for _, name := range []string{"inverter-array", "mult16-gate", "mult16-func", "microprocessor"} {
		b := cfg.benches()[name]
		c := b.build()
		var ed, as float64
		if cfg.Mode == Model {
			res := collectFor(c, b.horizon)
			ed, _ = cfg.modelEventDriven(c, res, machine.EDDistributed)(1)
			as, _ = cfg.modelAsync(c, res)(1)
		} else {
			ed, _ = cfg.realEngine("event-driven", c, b.horizon, nil)(1)
			as, _ = cfg.realEngine("asynchronous", c, b.horizon, nil)(1)
		}
		ratio := 0.0
		if as > 0 {
			ratio = ed / as
		}
		f.Series = append(f.Series, Series{Name: name, X: []float64{i}, Y: []float64{ratio}})
		i++
	}
	f.Notes = append(f.Notes, "paper: ratio ranges from 1 to 3 depending on the circuit")
	return f
}

// t2 — text claims §2: the central-queue design peaked near 2x with 8
// processors; distributed queues with stealing gained 15-20% utilisation
// over static distribution.
func t2(cfg Config) *Figure {
	f := &Figure{
		ID:     "t2",
		Title:  "Event-driven work distribution ablation, inverter array (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	b := cfg.benches()["inverter-array"]
	c := b.build()
	ps := procSweep(cfg.MaxP)
	type variant struct {
		name  string
		model machine.EDMode
		tweak func(*engine.Config)
	}
	for _, v := range []variant{
		{"central", machine.EDCentral, func(ec *engine.Config) { ec.CentralQueue = true }},
		{"no-steal", machine.EDNoSteal, func(ec *engine.Config) { ec.NoSteal = true }},
		{"distributed", machine.EDDistributed, nil},
	} {
		var run func(int) (float64, float64)
		if cfg.Mode == Model {
			res := collectFor(c, b.horizon)
			run = cfg.modelEventDriven(c, res, v.model)
		} else {
			run = cfg.realEngine("event-driven", c, b.horizon, v.tweak)
		}
		f.Series = append(f.Series, speedupSeries(v.name, ps, run))
	}
	f.Notes = append(f.Notes,
		"paper: the central-queue version peaked at ~2x with 8 processors;",
		"round-robin distributed queues plus end-of-phase stealing gave 15-20%",
		"better utilisation than static load balancing")
	return f
}

// t3 — text claim §4: even for ~5000-gate circuits there can be fewer than
// 5 events available about 50% of the time.
func t3(cfg Config) *Figure {
	f := &Figure{
		ID:     "t3",
		Title:  "Event availability per time step (sequential trace)",
		XLabel: "circuit",
		YLabel: "fraction of steps with <5 events",
	}
	// The Gray-stimulus multiplier is the paper's scenario: a big gate
	// circuit driven by a realistic low-activity vector suite.
	grayCfg := gen.DefaultMultiplier()
	grayCfg.Gray = true
	grayCfg.InPeriod = 96
	// Finer clock granularity spreads each cascade over more time steps;
	// the paper notes its availability numbers "depend on the type of
	// circuit and the clock granularity".
	grayCfg.GateDelay = 4
	grayHorizon := circuit.Time(2048)
	if cfg.Quick {
		grayHorizon = 512
	}
	type row struct {
		name    string
		c       *circuit.Circuit
		horizon circuit.Time
	}
	gate := cfg.benches()["mult16-gate"]
	cpu := cfg.benches()["microprocessor"]
	arr := cfg.benches()["inverter-array"]
	rows := []row{
		{"mult16-gate-gray", gen.GateMultiplier(grayCfg), grayHorizon},
		{"mult16-gate-rand", gate.build(), gate.horizon},
		{"microprocessor", cpu.build(), cpu.horizon},
		{"inverter-array", arr.build(), arr.horizon},
	}
	for i, r := range rows {
		res := seq.Run(r.c, seq.Options{Horizon: r.horizon, CollectAvail: true})
		frac := res.Run.Avail.FractionBelow(5)
		f.Series = append(f.Series, Series{Name: r.name, X: []float64{float64(i)}, Y: []float64{frac}})
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: %d steps, mean %.1f events/step, median %d, max %d, %.0f%% of steps below 5",
			r.name, res.Run.Avail.N(), res.Run.Avail.Mean(),
			res.Run.Avail.Quantile(0.5), res.Run.Avail.Max(), 100*frac))
	}
	f.Notes = append(f.Notes, "paper: <5 events available ~50% of the time on a 5000-gate circuit")
	return f
}

// t4 — §4.1: long feedback chains are the asynchronous algorithm's worst
// case; the simulation degenerates to one event at a time around the loop.
func t4(cfg Config) *Figure {
	f := &Figure{
		ID:     "t4",
		Title:  "Asynchronous algorithm on a long feedback chain (" + cfg.Mode.String() + " mode)",
		XLabel: "P",
		YLabel: "speed-up",
	}
	length := 31
	horizon := circuit.Time(1500)
	if cfg.Quick {
		length, horizon = 15, 500
	}
	ring := gen.FeedbackChain(length)
	array := gen.InverterArray(gen.DefaultInverterArray())
	arrayHorizon := circuit.Time(192)
	if cfg.Quick {
		arrayHorizon = 96
	}
	ps := procSweep(cfg.MaxP)
	var ringRun, arrRun func(int) (float64, float64)
	if cfg.Mode == Model {
		ringRes := collectFor(ring, horizon)
		arrRes := collectFor(array, arrayHorizon)
		ringRun = cfg.modelAsync(ring, ringRes)
		arrRun = cfg.modelAsync(array, arrRes)
	} else {
		ringRun = cfg.realEngine("asynchronous", ring, horizon, nil)
		arrRun = cfg.realEngine("asynchronous", array, arrayHorizon, nil)
	}
	f.Series = append(f.Series,
		speedupSeries(fmt.Sprintf("feedback-chain-%d", length), ps, ringRun),
		speedupSeries("inverter-array", ps, arrRun))
	f.Notes = append(f.Notes,
		"paper: with a feedback loop the algorithm reduces to one event at a time;",
		"for such circuits the event-driven algorithm can be faster at high P")
	return f
}

// t5 — related-work baselines (paper §1): Arnold's rollback-based
// optimistic simulator ("performance primarily limited by detecting and
// processing the rollbacks ... leads to a major state storage problem")
// and the distributed-memory port the paper names as future work. All
// three asynchronous variants produce identical histories; this experiment
// contrasts their overheads.
func t5(cfg Config) *Figure {
	f := &Figure{
		ID:     "t5",
		Title:  "Asynchronous variants: conservative vs optimistic vs message-passing",
		XLabel: "circuit",
		YLabel: "overhead",
	}
	workers := 4
	if cfg.MaxP < workers {
		workers = cfg.MaxP
	}
	type row struct {
		name    string
		build   func() *circuit.Circuit
		horizon circuit.Time
	}
	mult := gen.DefaultMultiplier()
	rows := []row{
		{"inverter-array", func() *circuit.Circuit {
			return gen.InverterArray(gen.DefaultInverterArray())
		}, 192},
		{"mult16-gate", func() *circuit.Circuit { return gen.GateMultiplier(mult) }, mult.InPeriod * 2},
		{"feedback-chain", func() *circuit.Circuit { return gen.FeedbackChain(31) }, 1200},
	}
	if cfg.Quick {
		rows[0].horizon, rows[1].horizon, rows[2].horizon = 96, mult.InPeriod, 400
	}
	var rollbacks, saved, msgs, cmRounds Series
	rollbacks.Name = "tw-rollbacks/1k-events"
	saved.Name = "tw-peak-saved-state"
	msgs.Name = "dist-messages/1k-events"
	cmRounds.Name = "cm-deadlocks"
	runAlg := func(alg string, c *circuit.Circuit, horizon circuit.Time) *engine.Report {
		rep, err := engine.Run(context.Background(), alg, c,
			engine.Config{Workers: workers, Horizon: horizon})
		if err != nil {
			panic("harness: " + alg + ": " + err.Error())
		}
		return rep
	}
	for i, r := range rows {
		c := r.build()
		cons := runAlg("asynchronous", c, r.horizon)
		opt := runAlg("time-warp", c, r.horizon)
		msg := runAlg("distributed-async", c, r.horizon)
		cm := runAlg("chandy-misra", c, r.horizon)
		optTot := opt.Run.Totals()
		nMsgs := msg.Run.Totals().Messages
		ev := float64(cons.Run.NodeUpdates)
		if ev == 0 {
			ev = 1
		}
		x := float64(i)
		rollbacks.X = append(rollbacks.X, x)
		rollbacks.Y = append(rollbacks.Y, float64(optTot.Rollbacks)/ev*1000)
		saved.X = append(saved.X, x)
		saved.Y = append(saved.Y, float64(opt.PeakLog))
		msgs.X = append(msgs.X, x)
		msgs.Y = append(msgs.Y, float64(nMsgs)/ev*1000)
		cmRounds.X = append(cmRounds.X, x)
		cmRounds.Y = append(cmRounds.Y, float64(cm.Rounds))
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s (P=%d, %d events): time-warp %d rollbacks, %d steps undone, %d anti-messages, peak saved state %d; chandy-misra broke %d deadlocks; the incremental algorithm saves nothing, never rolls back and never deadlocks; distributed sent %d messages",
			r.name, workers, cons.Run.NodeUpdates, optTot.Rollbacks, optTot.RolledBack,
			optTot.Cancelled, opt.PeakLog, cm.Rounds, nMsgs))
	}
	f.Series = append(f.Series, rollbacks, saved, msgs, cmRounds)
	f.Notes = append(f.Notes,
		"paper on the optimistic baseline: speed-up limited by rollback handling and",
		"the state storage its rollback mechanism requires; the conservative",
		"asynchronous algorithm eliminates both by consuming only known-valid events")
	return f
}
