package harness

import (
	"fmt"
	"math"
	"strings"
)

// chart markers, one per series, in order.
var chartMarkers = []byte{'*', '+', 'x', 'o', '#', '@', '%', '&'}

// Chart renders the figure's series as an ASCII scatter plot roughly width
// by height characters, with axes, y-grid labels and a legend — a terminal
// stand-in for the paper's hand-drawn speed-up plots. An "ideal" y = x
// diagonal is drawn with dots when the figure plots speed-up against
// processors, matching the dotted ideal line in every figure of the paper.
func (f *Figure) Chart(width, height int) string {
	if len(f.Series) == 0 || width < 20 || height < 5 {
		return ""
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxX <= minX || maxY <= 0 {
		return ""
	}
	maxY = math.Ceil(maxY)

	plotW := width - 8 // room for y labels and axis
	plotH := height
	grid := make([][]byte, plotH)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}
	toCol := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(plotW-1))
		return clamp(c, 0, plotW-1)
	}
	toRow := func(y float64) int {
		r := plotH - 1 - int(y/maxY*float64(plotH-1))
		return clamp(r, 0, plotH-1)
	}

	// The ideal y = x diagonal, when the axes share units (speed-up vs P).
	if f.XLabel == "P" {
		for x := minX; x <= math.Min(maxX, maxY); x++ {
			grid[toRow(x)][toCol(x)] = '.'
		}
	}
	for si, s := range f.Series {
		m := chartMarkers[si%len(chartMarkers)]
		for i := range s.X {
			grid[toRow(s.Y[i])][toCol(s.X[i])] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s\n", f.YLabel, f.XLabel)
	for r := 0; r < plotH; r++ {
		yVal := (1 - float64(r)/float64(plotH-1)) * maxY
		label := "      "
		// Label roughly five horizontal gridlines.
		if r%((plotH+4)/5) == 0 || r == plotH-1 {
			label = fmt.Sprintf("%6.1f", yVal)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", plotW))
	fmt.Fprintf(&b, "        %-*g%*g\n", plotW/2, minX, plotW-plotW/2, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "        %c %s\n", chartMarkers[si%len(chartMarkers)], s.Name)
	}
	if f.XLabel == "P" {
		fmt.Fprintln(&b, "        . ideal")
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
