package harness

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"parsim/internal/analyze"
	"parsim/internal/engine"

	// The selection engine registers itself like the simulators it picks
	// between.
	_ "parsim/internal/auto"
)

// a1 — engine=auto vs best-of-eight: for each paper circuit, measure every
// scalar engine across a worker sweep, then run engine=auto once with the
// full worker budget and compare its end-to-end wall (profile + cost model
// + the selected engine's run) against the best measured combination. The
// series reports best wall / auto wall per circuit; >= 0.9 means the static
// selection gives up at most 10% over an oracle that tried everything.
//
// Methodology: on circuits with non-unit delays (the functional multiplier's
// block delay, the microprocessor) the compiled and vector engines are
// excluded from "best" — their rank-order evaluation computes a different
// simulation than event timing, so their walls are not comparable results.
// The cost model marks them ineligible on the same criterion, so auto never
// picks what the oracle is not allowed to count.
//
// Like v1/v2/f1, a1 is not part of IDs(): it always measures real
// wall-clock, so the default all-experiments model pass skips it and `make
// bench-auto` regenerates the tracked BENCH_auto.json snapshot.
func a1(cfg Config) *Figure {
	f := &Figure{
		ID:     "a1",
		Title:  "engine=auto vs best-of-eight, paper circuits",
		XLabel: "circuit",
		YLabel: "best wall / auto wall",
	}
	maxW := cfg.MaxP
	if n := runtime.NumCPU(); maxW > n {
		maxW = n
	}
	if maxW < 1 {
		maxW = 1
	}
	var sweep []int
	for _, w := range []int{1, 2, 4} {
		if w <= maxW {
			sweep = append(sweep, w)
		}
	}
	budget := sweep[len(sweep)-1]

	var engines []string
	for _, name := range engine.Names() {
		if name != "auto" {
			engines = append(engines, name)
		}
	}

	benches := cfg.benches()
	order := []string{"inverter-array", "mult16-gate", "mult16-func", "microprocessor"}
	ratios := Series{Name: "auto-vs-best"}
	worst := math.Inf(1)
	for i, name := range order {
		b := benches[name]
		c := b.build()
		unitDelay := analyze.Profile(c).UnitDelay

		bestWall := math.Inf(1)
		bestEng, bestW := "", 0
		for _, eng := range engines {
			if !unitDelay && (eng == "compiled" || eng == "vector") {
				continue
			}
			ws := sweep
			if eng == "sequential" {
				ws = []int{1}
			}
			run := cfg.realEngine(eng, c, b.horizon, nil)
			for _, w := range ws {
				wall, _ := run(w)
				if wall < bestWall {
					bestWall, bestEng, bestW = wall, eng, w
				}
			}
		}

		// One true end-to-end run: profiling and prediction are inside the
		// measured wall, so the ratio charges auto for its own overhead.
		autoWall := 0.0
		var sel *engine.Selection
		for r := 0; r < realReps; r++ {
			rep, err := engine.Run(context.Background(), "auto", c, engine.Config{
				Workers: budget, Horizon: b.horizon, CostSpin: cfg.SpinScale,
			})
			if err != nil {
				panic("harness: auto: " + err.Error())
			}
			if w := float64(rep.Run.Wall); r == 0 || w < autoWall {
				autoWall = w
			}
			sel = rep.Selected
		}

		ratio := 0.0
		if autoWall > 0 {
			ratio = bestWall / autoWall
		}
		if ratio < worst {
			worst = ratio
		}
		ratios.X = append(ratios.X, float64(i+1))
		ratios.Y = append(ratios.Y, ratio)
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%d=%s: auto picked %s x%d (confidence %.2f) %.2fms; best measured %s x%d %.2fms; ratio %.2f",
			i+1, name, sel.Engine, sel.Workers, sel.Confidence, autoWall/1e6,
			bestEng, bestW, bestWall/1e6, ratio))
		if !unitDelay {
			f.Notes = append(f.Notes, fmt.Sprintf(
				"%d=%s: compiled/vector excluded from best (non-unit delays diverge from event timing)",
				i+1, name))
		}
	}
	f.Series = append(f.Series, ratios)
	f.Notes = append(f.Notes,
		fmt.Sprintf("worker sweep %v, auto budget %d, spin %d, best of %d reps", sweep, budget, cfg.SpinScale, realReps),
		fmt.Sprintf("acceptance: ratio >= 0.9 on every circuit (worst %.2f)", worst))
	return f
}
