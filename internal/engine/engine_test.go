package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// fake is a minimal engine recording what it was invoked with.
type fake struct {
	name string
	got  *Config
}

func (f *fake) Name() string { return f.name }

func (f *fake) Run(ctx context.Context, c *circuit.Circuit, cfg Config) (*Report, error) {
	*f.got = cfg
	return &Report{Final: []logic.Value{}}, nil
}

func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("t")
	n := b.Bit("n")
	b.Const("c", n, logic.V(1, 1))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegistryResolution(t *testing.T) {
	var got Config
	Register(&fake{name: "fake-engine", got: &got}, "fk")

	for _, name := range []string{"fake-engine", "FAKE-ENGINE", " fk ", "Fk"} {
		e, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if e.Name() != "fake-engine" {
			t.Errorf("Get(%q).Name() = %q", name, e.Name())
		}
	}

	if _, err := Get("no-such-algorithm"); err == nil {
		t.Error("unknown name resolved")
	} else if !strings.Contains(err.Error(), "fake-engine") {
		t.Errorf("unknown-name error does not list registered engines: %v", err)
	}

	found := false
	for _, n := range Names() {
		if n == "fake-engine" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing fake-engine", Names())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(&fake{name: "dup-engine", got: &Config{}})
	Register(&fake{name: "dup-engine", got: &Config{}})
}

func TestRunValidation(t *testing.T) {
	var got Config
	Register(&fake{name: "val-engine", got: &got}, "val")
	c := testCircuit(t)

	if _, err := Run(context.Background(), "val", nil, Config{Horizon: 1}); err == nil ||
		!strings.Contains(err.Error(), "nil circuit") {
		t.Errorf("nil circuit: %v", err)
	}
	if _, err := Run(context.Background(), "val", c, Config{Horizon: -5}); err == nil ||
		!strings.Contains(err.Error(), "negative horizon -5") {
		t.Errorf("negative horizon: %v", err)
	}
	if _, err := Run(context.Background(), "val", c, Config{Horizon: 1, Workers: -3}); err == nil ||
		!strings.Contains(err.Error(), "invalid worker count -3") {
		t.Errorf("negative workers: %v", err)
	}
	if _, err := Run(context.Background(), "nope", c, Config{Horizon: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}

	// Workers 0 defaults to 1, and a nil ctx is tolerated.
	if _, err := Run(nil, "val", c, Config{Horizon: 1}); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
	if got.Workers != 1 {
		t.Errorf("defaulted workers = %d, want 1", got.Workers)
	}
}

func TestLintModeParse(t *testing.T) {
	cases := []struct {
		in   string
		want LintMode
		ok   bool
	}{
		{"off", LintOff, true},
		{"", LintOff, true},
		{"warn", LintWarn, true},
		{"WARN", LintWarn, true},
		{" strict ", LintStrict, true},
		{"pedantic", LintOff, false},
	}
	for _, tc := range cases {
		got, err := ParseLintMode(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseLintMode(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseLintMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// String round-trips through Parse for every mode.
	for _, m := range []LintMode{LintOff, LintWarn, LintStrict} {
		back, err := ParseLintMode(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip %v -> %q -> %v (err %v)", m, m.String(), back, err)
		}
	}
}

func TestLintGateInRunEngine(t *testing.T) {
	var got Config
	Register(&fake{name: "lint-engine", got: &got})
	c := testCircuit(t)

	// A clean circuit passes even under strict.
	if _, err := Run(context.Background(), "lint-engine", c, Config{Horizon: 1, Lint: LintStrict}); err != nil {
		t.Fatalf("strict lint rejected clean circuit: %v", err)
	}

	// A zero-delay ring is refused under warn and strict but runs with
	// lint off (the fake engine ignores the circuit entirely).
	b := circuit.NewBuilder("ring")
	n0, n1 := b.Bit("n0"), b.Bit("n1")
	b.Gate(circuit.KindNot, "a", 0, n1, n0)
	b.Gate(circuit.KindNot, "b", 0, n0, n1)
	ring, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LintMode{LintWarn, LintStrict} {
		if _, err := Run(context.Background(), "lint-engine", ring, Config{Horizon: 1, Lint: mode}); err == nil {
			t.Errorf("lint %v accepted a zero-delay ring", mode)
		} else if !strings.Contains(err.Error(), "zero-delay-cycle") {
			t.Errorf("lint %v error does not name the diagnostic: %v", mode, err)
		}
	}
	if _, err := Run(context.Background(), "lint-engine", ring, Config{Horizon: 1, Lint: LintOff}); err != nil {
		t.Errorf("lint off still rejected the circuit: %v", err)
	}
}

func TestCancelFlag(t *testing.T) {
	// Background context: no watcher, never cancelled.
	f := WatchCancel(context.Background())
	if f.Cancelled() {
		t.Error("background context reads cancelled")
	}
	if f.Err(context.Background()) != nil {
		t.Error("background Err non-nil")
	}
	f.Release()
	f.Release() // idempotent

	ctx, cancel := context.WithCancel(context.Background())
	f = WatchCancel(ctx)
	defer f.Release()
	if f.Cancelled() {
		t.Error("flag set before cancellation")
	}
	cancel()
	// The watcher goroutine needs a moment to observe ctx.Done().
	for i := 0; i < 1000 && !f.Cancelled(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !f.Cancelled() {
		t.Fatal("flag never observed cancellation")
	}
	if f.Err(ctx) != context.Canceled {
		t.Errorf("Err = %v, want Canceled", f.Err(ctx))
	}
}
