package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// fake is a minimal engine recording what it was invoked with.
type fake struct {
	name string
	got  *Config
}

func (f *fake) Name() string { return f.name }

func (f *fake) Run(ctx context.Context, c *circuit.Circuit, cfg Config) (*Report, error) {
	*f.got = cfg
	return &Report{Final: []logic.Value{}}, nil
}

func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("t")
	n := b.Bit("n")
	b.Const("c", n, logic.V(1, 1))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegistryResolution(t *testing.T) {
	var got Config
	Register(&fake{name: "fake-engine", got: &got}, "fk")

	for _, name := range []string{"fake-engine", "FAKE-ENGINE", " fk ", "Fk"} {
		e, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if e.Name() != "fake-engine" {
			t.Errorf("Get(%q).Name() = %q", name, e.Name())
		}
	}

	if _, err := Get("no-such-algorithm"); err == nil {
		t.Error("unknown name resolved")
	} else if !strings.Contains(err.Error(), "fake-engine") {
		t.Errorf("unknown-name error does not list registered engines: %v", err)
	}

	found := false
	for _, n := range Names() {
		if n == "fake-engine" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing fake-engine", Names())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(&fake{name: "dup-engine", got: &Config{}})
	Register(&fake{name: "dup-engine", got: &Config{}})
}

func TestRunValidation(t *testing.T) {
	var got Config
	Register(&fake{name: "val-engine", got: &got}, "val")
	c := testCircuit(t)

	if _, err := Run(context.Background(), "val", nil, Config{Horizon: 1}); err == nil ||
		!strings.Contains(err.Error(), "nil circuit") {
		t.Errorf("nil circuit: %v", err)
	}
	if _, err := Run(context.Background(), "val", c, Config{Horizon: -5}); err == nil ||
		!strings.Contains(err.Error(), "negative horizon -5") {
		t.Errorf("negative horizon: %v", err)
	}
	if _, err := Run(context.Background(), "val", c, Config{Horizon: 1, Workers: -3}); err == nil ||
		!strings.Contains(err.Error(), "invalid worker count -3") {
		t.Errorf("negative workers: %v", err)
	}
	if _, err := Run(context.Background(), "nope", c, Config{Horizon: 1}); err == nil {
		t.Error("unknown algorithm accepted")
	}

	// Workers 0 defaults to 1, and a nil ctx is tolerated.
	if _, err := Run(nil, "val", c, Config{Horizon: 1}); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
	if got.Workers != 1 {
		t.Errorf("defaulted workers = %d, want 1", got.Workers)
	}
}

func TestCancelFlag(t *testing.T) {
	// Background context: no watcher, never cancelled.
	f := WatchCancel(context.Background())
	if f.Cancelled() {
		t.Error("background context reads cancelled")
	}
	if f.Err(context.Background()) != nil {
		t.Error("background Err non-nil")
	}
	f.Release()
	f.Release() // idempotent

	ctx, cancel := context.WithCancel(context.Background())
	f = WatchCancel(ctx)
	defer f.Release()
	if f.Cancelled() {
		t.Error("flag set before cancellation")
	}
	cancel()
	// The watcher goroutine needs a moment to observe ctx.Done().
	for i := 0; i < 1000 && !f.Cancelled(); i++ {
		time.Sleep(time.Millisecond)
	}
	if !f.Cancelled() {
		t.Fatal("flag never observed cancellation")
	}
	if f.Err(ctx) != context.Canceled {
		t.Errorf("Err = %v, want Canceled", f.Err(ctx))
	}
}
