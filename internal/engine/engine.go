// Package engine is the unified simulation-engine layer: one interface,
// one configuration struct and one registry shared by all seven
// simulators (sequential, event-driven, compiled, asynchronous,
// Chandy-Misra, distributed-async and Time Warp).
//
// The paper's point is that the same circuits run under interchangeable
// algorithms whose only differences are scheduling and synchronisation.
// This package makes that interchangeability concrete: the facade, the
// CLIs, the figure harness and the benchmarks all resolve an algorithm by
// name through the registry instead of hand-rolling per-algorithm
// dispatch, every engine accepts the same Config, honours context
// cancellation, and reports the same per-worker counter surface
// (stats.WorkerCounters).
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/analyze"
	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// LintMode selects how much pre-flight static analysis RunEngine applies
// before handing the circuit to an engine. The analysis is the
// whole-graph checker in internal/analyze; it runs once in the shared
// validation path, so every registered engine gets the same guarantees.
type LintMode int

const (
	// LintOff (the default) skips pre-flight analysis entirely.
	LintOff LintMode = iota
	// LintWarn refuses circuits with Error diagnostics — the hazards that
	// livelock or corrupt a run, such as zero-delay combinational cycles
	// and undriven inputs.
	LintWarn
	// LintStrict additionally refuses Warning diagnostics: unresolved
	// tri-states, multi-driver resolutions, stimulus-free regions and
	// zero-delay elements.
	LintStrict
)

// String returns the flag-style mode name.
func (m LintMode) String() string {
	switch m {
	case LintWarn:
		return "warn"
	case LintStrict:
		return "strict"
	}
	return "off"
}

// ParseLintMode parses a -lint flag value.
func ParseLintMode(s string) (LintMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "":
		return LintOff, nil
	case "warn":
		return LintWarn, nil
	case "strict":
		return LintStrict, nil
	}
	return LintOff, fmt.Errorf("parsim: unknown lint mode %q (have off, warn, strict)", s)
}

// Config is the shared configuration accepted by every engine. Fields that
// do not apply to an algorithm are ignored by it (e.g. Strategy outside
// the statically partitioned engines, NoSteal outside event-driven).
type Config struct {
	Workers int          // parallel workers; 0 defaults to 1
	Horizon circuit.Time // simulate t in [0, Horizon); must be >= 0
	Probe   trace.Probe  // optional observer; must be concurrency-safe for parallel engines
	// CostSpin > 0 burns CostSpin x the element's Cost of synthetic work
	// per evaluation, restoring the paper's gate-vs-functional evaluation
	// cost spread for benchmarking.
	CostSpin int64
	// Strategy selects the static partitioner (compiled, dist, timewarp).
	Strategy partition.Strategy
	// CollectAvail records the elements-available-per-step histogram
	// (sequential and event-driven engines).
	CollectAvail bool
	// Lint selects the pre-flight static-analysis level applied in the
	// shared validation path before any engine runs (see LintMode).
	Lint LintMode

	// Watchdog enables the runtime stall watchdog: a run whose progress
	// metric stays flat for this long is aborted with guard.ErrStalled
	// plus a per-worker diagnostic dump. 0 disables the watchdog.
	Watchdog time.Duration
	// Fallback is the retry policy applied when the original engine
	// faults or stalls: the run is transparently retried on the named
	// engine (typically "sequential"), with capped exponential backoff
	// between attempts. The retried Report carries Degraded=true and a
	// *FallbackError (attempt count + original error) in Fault. A zero
	// policy disables fallback.
	Fallback FallbackPolicy

	// Checkpoint asks the engine to write periodic snapshots at quiescent
	// points (see CheckpointSpec). Only the synchronous engines
	// (sequential, compiled, vector) support it; RunEngine rejects the
	// request for every other engine with checkpoint.ErrUnsupported.
	Checkpoint CheckpointSpec
	// ResumeFrom names a snapshot file to continue from instead of
	// starting at t=0. The snapshot must have been written by the same
	// engine under the same netlist and options (content digest); any
	// mismatch or corruption is a typed error, never a silent restart.
	ResumeFrom string
	// CkptPlan and CkptSnap are the resolved forms of Checkpoint and
	// ResumeFrom, installed by RunEngine after digest computation and
	// snapshot verification. Engine adapters read these; callers leave
	// them zero.
	CkptPlan checkpoint.Plan
	CkptSnap *checkpoint.Snapshot
	// Guard is the per-run supervisor, installed by RunEngine. Engines
	// read it to publish progress and contain worker panics; callers
	// leave it nil.
	Guard *guard.Supervisor
	// Chaos injects faults (panics, delays, dropped wakeups) into the
	// engine it names, for supervision tests. Production runs leave it
	// nil; the fallback run never sees it.
	Chaos *guard.ChaosProbe

	// Batched-simulation fields, honoured by the vector engine and ignored
	// by the scalar engines.
	//
	// Lanes is the number of independent stimulus vectors simulated at
	// once (1..logic.MaxWideLanes; 0 defaults to one 64-lane plane word;
	// larger counts widen every plane to ceil(Lanes/64) words).
	Lanes int
	// LaneStride offsets the Seed of rand/gray stimulus generators per
	// lane: lane k runs with Seed + k*LaneStride, so lane 0 always replays
	// the scalar stimulus. 0 defaults to 1.
	LaneStride int64
	// ProbeLane selects which lane feeds Probe and Report.Final in a
	// batched run (default 0, the scalar-identical lane).
	ProbeLane int

	// FaultSim switches the run to concurrent stuck-at fault simulation:
	// lane 0 simulates the good machine, lanes 1..Lanes-1 each carry one
	// fault from the analyzer's collapsed stuck-at list, and the Report
	// carries FaultCoverage. Only the vector engine supports it; RunEngine
	// rejects the flag for every other engine.
	FaultSim bool
	// FaultMaxPasses caps fault-list chunking (each pass simulates Lanes-1
	// faults; 0 runs every pass the list needs).
	FaultMaxPasses int
	// FaultStatuses includes the per-fault status rows in FaultCoverage.
	FaultStatuses bool

	// Ablation flags, honoured by the engine they name.
	NoSteal       bool // event-driven: disable end-of-phase work stealing
	CentralQueue  bool // event-driven: the paper's contended single-queue design
	NoLookahead   bool // asynchronous: disable clocked-element lookahead
	GateLookahead bool // asynchronous: controlling-value gate lookahead
	StepsPerRound int  // time-warp: optimistic steps per GVT round (0 = default)
}

// FallbackPolicy configures the transparent retry applied after a
// recoverable failure (worker panic or watchdog stall).
type FallbackPolicy struct {
	// Engine names the engine the run is retried on; empty disables
	// fallback entirely.
	Engine string
	// MaxRetries is the number of fallback attempts; 0 defaults to 1 (a
	// single re-run, the historical behaviour).
	MaxRetries int
	// BaseDelay is the sleep before the second fallback attempt; each
	// further attempt doubles it (with jitter), capped at
	// MaxFallbackDelay. The first attempt is always immediate. 0 disables
	// inter-attempt delays.
	BaseDelay time.Duration
}

// Enabled reports whether the policy names a fallback engine.
func (p FallbackPolicy) Enabled() bool { return p.Engine != "" }

// MaxFallbackDelay caps the exponential backoff between fallback attempts.
const MaxFallbackDelay = 2 * time.Second

// FallbackError is stored in Report.Fault when a run completed on the
// fallback engine: it records how many fallback attempts were needed and
// wraps the original engine's error, so errors.Is/As see through it.
type FallbackError struct {
	Attempts int   // fallback attempts made (the one that succeeded included)
	Err      error // the original engine's recoverable error
}

func (e *FallbackError) Error() string {
	return fmt.Sprintf("recovered by fallback after %d attempt(s): %v", e.Attempts, e.Err)
}

func (e *FallbackError) Unwrap() error { return e.Err }

// CheckpointSpec asks for periodic durable snapshots of the run.
type CheckpointSpec struct {
	// Path is the snapshot file, rewritten atomically at each checkpoint.
	Path string
	// EverySteps is the capture interval in time steps; 0 defaults to
	// DefaultCheckpointEvery. Captures are throttled to at most one
	// durable write per WriteGap of wall time (the first is immediate).
	EverySteps int64
	// WriteGap is the minimum wall-clock spacing between durable writes;
	// 0 defaults to checkpoint.DefaultGap. A kill -9 loses at most one
	// gap plus one capture interval of work.
	WriteGap time.Duration
	// OnSave, when set, is called after each snapshot reaches disk (the
	// server journals checkpoint records through it). It may run
	// concurrently with the simulation's subsequent steps.
	OnSave func(step int64)
}

// DefaultCheckpointEvery is the snapshot interval used when
// CheckpointSpec.EverySteps is zero.
const DefaultCheckpointEvery = 256

// checkpointable names the engines with quiescent-point snapshot support:
// the synchronous family, where the per-step barrier makes global state
// well-defined. The async engines would need GVT-coordinated cuts; they
// report checkpoint.ErrUnsupported instead of pretending.
var checkpointable = map[string]bool{
	"sequential": true,
	"compiled":   true,
	"vector":     true,
	"jit":        true,
}

// SupportsCheckpoint reports whether the named engine (or alias) can
// checkpoint and resume.
func SupportsCheckpoint(name string) bool {
	e, err := Get(name)
	if err != nil {
		return false
	}
	return checkpointable[e.Name()]
}

// Report is the uniform outcome of a run. Per-algorithm counters live in
// Run.PerWorker (zero where not applicable); only genuinely global,
// non-summable metrics get their own field.
type Report struct {
	Run   stats.Run
	Final []logic.Value // node values at the horizon, indexed by NodeID
	// PeakLog is the peak saved-state footprint (time-warp only).
	PeakLog int64
	// Rounds counts Chandy-Misra deadlock recoveries (chandy-misra only;
	// 1 means the run never deadlocked).
	Rounds int64
	// GVTRounds counts time-warp synchronisation rounds.
	GVTRounds int64
	// LaneFinal holds every stimulus lane's final node values from a
	// batched vector run, indexed [lane][NodeID]; LaneFinal[ProbeLane]
	// equals Final. Nil for the scalar engines.
	LaneFinal [][]logic.Value
	// FaultCoverage reports stuck-at coverage from a fault-simulation run
	// (Config.FaultSim); nil otherwise.
	FaultCoverage *stats.FaultCoverage
	// Degraded marks a result produced by the Config.Fallback engine
	// after the requested engine faulted or stalled; Fault holds a
	// *FallbackError wrapping the original engine's error.
	Degraded bool
	Fault    error
	// Resumed marks a run continued from a Config.ResumeFrom snapshot
	// rather than started at t=0.
	Resumed bool
	// Selected records the decision of an engine=auto run: which engine the
	// static profile + cost model picked, at what configuration, with the
	// full ranking and the profile that justified it. Nil for direct runs.
	Selected *Selection
}

// Choice is one ranked entry from the auto-selection cost model.
type Choice struct {
	Engine   string  `json:"engine"`
	Workers  int     `json:"workers"`
	Strategy string  `json:"strategy,omitempty"`
	Lanes    int     `json:"lanes,omitempty"`
	Span     float64 `json:"span"`
	Eligible bool    `json:"eligible"`
	Reason   string  `json:"reason,omitempty"`
}

// Selection is the outcome of cost-model-driven engine selection
// (engine=auto): the winning configuration, a confidence score from the
// span gap to the runner-up, the full per-engine ranking, and the static
// profile the prediction was computed from.
type Selection struct {
	Engine     string                  `json:"engine"`
	Workers    int                     `json:"workers"`
	Strategy   string                  `json:"strategy,omitempty"`
	Lanes      int                     `json:"lanes,omitempty"`
	Confidence float64                 `json:"confidence"`
	Ranking    []Choice                `json:"ranking,omitempty"`
	Profile    *analyze.CircuitProfile `json:"profile,omitempty"`
}

// Engine is one simulation algorithm. Run simulates c over [0,
// cfg.Horizon) and returns statistics plus final node values. When ctx is
// cancelled mid-run the engine stops within one scheduling quantum (a time
// step, a GVT round, or a queue poll) and returns the partial Report
// together with ctx.Err().
type Engine interface {
	// Name is the canonical registry name (matches Algorithm.String()).
	Name() string
	Run(ctx context.Context, c *circuit.Circuit, cfg Config) (*Report, error)
}

// ---- registry ----

var (
	regMu    sync.RWMutex
	registry = map[string]Engine{}
	canon    []string // canonical names in registration order
)

// Register adds an engine under its canonical name plus any aliases.
// Engines self-register from init, so registering a duplicate name panics.
func Register(e Engine, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	names := append([]string{e.Name()}, aliases...)
	for _, n := range names {
		key := strings.ToLower(n)
		if _, dup := registry[key]; dup {
			panic("engine: duplicate registration of " + key)
		}
		registry[key] = e
	}
	canon = append(canon, e.Name())
}

// Get resolves an engine by canonical name or alias (case-insensitive).
func Get(name string) (Engine, error) {
	regMu.RLock()
	e, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("parsim: unknown algorithm %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return e, nil
}

// Names returns the canonical engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), canon...)
	sort.Strings(out)
	return out
}

// Run resolves name through the registry, validates cfg once for every
// engine, and runs. This is the single dispatch point for the facade,
// the CLIs, the harness and the benchmarks.
func Run(ctx context.Context, name string, c *circuit.Circuit, cfg Config) (*Report, error) {
	e, err := Get(name)
	if err != nil {
		return nil, err
	}
	return RunEngine(ctx, e, c, cfg)
}

// ValidateWorkers is the single worker-count check shared by RunEngine
// and the engine packages' direct entry points, replacing the historical
// per-engine "need at least one worker" panics: bad configuration is an
// error, never a crash.
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("parsim: invalid worker count %d: Workers must be positive (or 0 for the default of 1)", n)
	}
	return nil
}

// RunEngine validates cfg (the one place worker counts and horizons are
// checked) and invokes e under the supervision layer: worker panics come
// back as *guard.WorkerFault, flat-lined runs as guard.ErrStalled when a
// Watchdog window is set, and either outcome is transparently retried on
// the Config.Fallback engine when one is named.
func RunEngine(ctx context.Context, e Engine, c *circuit.Circuit, cfg Config) (*Report, error) {
	if c == nil {
		return nil, fmt.Errorf("parsim: nil circuit")
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("parsim: negative horizon %d: Horizon is the exclusive end of simulated time and must be >= 0", cfg.Horizon)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if err := ValidateWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.FaultSim && e.Name() != "vector" {
		return nil, fmt.Errorf("parsim: fault simulation requires the vector engine, not %q", e.Name())
	}
	var fb Engine
	if cfg.Fallback.Enabled() {
		var err error
		if fb, err = Get(cfg.Fallback.Engine); err != nil {
			return nil, fmt.Errorf("parsim: invalid fallback engine: %w", err)
		}
	}
	if err := resolveCheckpoint(c, e, &cfg); err != nil {
		return nil, err
	}
	if cfg.Lint != LintOff {
		rep := analyze.Analyze(c, analyze.Options{})
		if err := rep.Err(cfg.Lint == LintStrict); err != nil {
			return nil, fmt.Errorf("parsim: lint (%s) rejected circuit %q: %w", cfg.Lint, c.Name, err)
		}
	}
	rep, err := runGuarded(ctx, e, c, cfg)
	if err == nil || fb == nil || fb.Name() == e.Name() || !guard.Recoverable(err) ||
		cfg.FaultSim { // a scalar fallback cannot carry a fault-sim run
		if err == nil && cfg.CkptSnap != nil {
			rep.Resumed = true
		}
		return rep, err
	}
	// Fallback policy: the requested engine faulted or stalled; re-run on
	// the reference engine with supervision (minus chaos — an injected
	// fault must not follow the run — and minus checkpointing, whose
	// snapshots are bound to the original engine's digest), retrying with
	// capped exponential backoff, and report the degraded outcome.
	fbCfg := cfg
	fbCfg.Fallback = FallbackPolicy{}
	fbCfg.Chaos = nil
	fbCfg.Lint = LintOff // the circuit was already linted above
	fbCfg.Checkpoint = CheckpointSpec{}
	fbCfg.ResumeFrom = ""
	fbCfg.CkptPlan = checkpoint.Plan{}
	fbCfg.CkptSnap = nil
	if fb.Name() == "sequential" {
		fbCfg.Workers = 1
	}
	attempts := cfg.Fallback.MaxRetries
	if attempts < 1 {
		attempts = 1
	}
	// Jitter keeps a fleet of simultaneously faulted runs from retrying in
	// lockstep. The source is local: the repo lint forbids the global
	// math/rand state inside internal/.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if serr := sleepBackoff(ctx, rng, cfg.Fallback.BaseDelay, attempt-2); serr != nil {
				return rep, err
			}
		}
		fbRep, fbErr := runGuarded(ctx, fb, c, fbCfg)
		if fbErr == nil {
			fbRep.Degraded = true
			fbRep.Fault = &FallbackError{Attempts: attempt, Err: err}
			return fbRep, nil
		}
		if ctx.Err() != nil || !guard.Recoverable(fbErr) {
			break
		}
	}
	// Every fallback attempt failed too; the original failure is the one
	// that explains the run, so report it.
	return rep, err
}

// sleepBackoff sleeps BaseDelay * 2^exp with up to 50% added jitter, capped
// at MaxFallbackDelay, returning early with the context error if the caller
// cancels. A zero base delay returns immediately.
func sleepBackoff(ctx context.Context, rng *rand.Rand, base time.Duration, exp int) error {
	if base <= 0 {
		return ctx.Err()
	}
	d := base << uint(exp)
	if d <= 0 || d > MaxFallbackDelay { // <= 0 catches shift overflow
		d = MaxFallbackDelay
	}
	d += time.Duration(rng.Int63n(int64(d)/2 + 1))
	if d > MaxFallbackDelay {
		d = MaxFallbackDelay
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// resolveCheckpoint turns the user-facing Checkpoint/ResumeFrom fields into
// the resolved CkptPlan/CkptSnap the engine adapters consume: it gates on
// engine support, computes the content digest, applies the default
// interval, and loads + verifies the resume snapshot.
func resolveCheckpoint(c *circuit.Circuit, e Engine, cfg *Config) error {
	if cfg.Checkpoint.Path == "" && cfg.ResumeFrom == "" {
		return nil
	}
	if !checkpointable[e.Name()] {
		return fmt.Errorf("parsim: engine %q: %w", e.Name(), checkpoint.ErrUnsupported)
	}
	if cfg.Checkpoint.EverySteps < 0 {
		return fmt.Errorf("parsim: negative checkpoint interval %d", cfg.Checkpoint.EverySteps)
	}
	digest, err := checkpoint.Digest(c, checkpoint.Identity{
		Engine:         e.Name(),
		Horizon:        int64(cfg.Horizon),
		Workers:        cfg.Workers,
		Strategy:       cfg.Strategy.String(),
		Lanes:          cfg.Lanes,
		LaneStride:     cfg.LaneStride,
		ProbeLane:      cfg.ProbeLane,
		CostSpin:       cfg.CostSpin,
		FaultSim:       cfg.FaultSim,
		FaultMaxPasses: cfg.FaultMaxPasses,
		FaultStatuses:  cfg.FaultStatuses,
		CollectAvail:   cfg.CollectAvail,
	})
	if err != nil {
		return err
	}
	if cfg.Checkpoint.Path != "" {
		every := cfg.Checkpoint.EverySteps
		if every == 0 {
			every = DefaultCheckpointEvery
		}
		cfg.CkptPlan = checkpoint.Plan{
			Path:   cfg.Checkpoint.Path,
			Every:  every,
			Gap:    cfg.Checkpoint.WriteGap,
			Engine: e.Name(),
			Digest: digest,
			OnSave: cfg.Checkpoint.OnSave,
		}
	}
	if cfg.ResumeFrom != "" {
		snap, err := checkpoint.Load(cfg.ResumeFrom)
		if err != nil {
			return err
		}
		if err := checkpoint.Verify(cfg.ResumeFrom, snap, e.Name(), digest); err != nil {
			return err
		}
		if snap.Step < 0 || snap.Step >= int64(cfg.Horizon) {
			return &checkpoint.MismatchError{
				Path:  cfg.ResumeFrom,
				Field: "step cursor",
				Want:  fmt.Sprintf("in [0, %d)", cfg.Horizon),
				Got:   fmt.Sprintf("%d", snap.Step),
			}
		}
		cfg.CkptSnap = snap
	}
	return nil
}

// runGuarded executes one engine run under a fresh supervisor: it derives
// the cancellable run context, contains main-goroutine panics, folds the
// supervision outcome into the returned error, and attaches the
// per-worker diagnostic dump to stall reports once the workers have
// exited (reading their counters is only race-free then).
func runGuarded(ctx context.Context, e Engine, c *circuit.Circuit, cfg Config) (*Report, error) {
	sup := guard.New(e.Name(), guard.Options{
		Workers: cfg.Workers,
		Window:  cfg.Watchdog,
		Chaos:   cfg.Chaos,
	})
	cfg.Guard = sup
	runCtx := sup.Attach(ctx)
	rep, err := runContained(runCtx, e, c, cfg, sup)
	sup.Stop()
	if gerr := sup.Err(); gerr != nil && ctx.Err() == nil {
		// The supervisor tripped and the caller did not cancel: the
		// engine's own error is just the induced cancellation, so the
		// typed supervision error is the real outcome.
		err = gerr
	}
	var st *guard.StallError
	if errors.As(err, &st) && st.Dump == "" && rep != nil {
		st.Dump = rep.Run.DebugDump()
	}
	return rep, err
}

// runContained invokes e.Run with the engine's main goroutine under the
// same containment as its workers: a panic there (the sequential engine
// runs entirely on this goroutine) becomes a WorkerFault with worker -1.
func runContained(ctx context.Context, e Engine, c *circuit.Circuit, cfg Config, sup *guard.Supervisor) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			sup.Capture(-1, "engine main goroutine", r)
			rep, err = nil, sup.Err()
		}
	}()
	return e.Run(ctx, c, cfg)
}

// ---- cancellation support ----

// CancelFlag is a cheap, atomically readable view of a context's
// cancellation state, for polling inside simulator hot loops where calling
// ctx.Err() per iteration (a mutex in the standard library) would contend.
type CancelFlag struct {
	set  atomic.Bool
	stop chan struct{}
	once sync.Once
}

// WatchCancel starts watching ctx. The flag flips once ctx is cancelled.
// Callers must Release the flag when the run finishes so the watcher
// goroutine exits; Release is idempotent.
func WatchCancel(ctx context.Context) *CancelFlag {
	f := &CancelFlag{}
	done := ctx.Done()
	if done == nil {
		return f // never cancellable; no watcher needed
	}
	f.stop = make(chan struct{})
	go func() {
		select {
		case <-done:
			f.set.Store(true)
		case <-f.stop:
		}
	}()
	return f
}

// Cancelled reports whether the watched context has been cancelled.
func (f *CancelFlag) Cancelled() bool { return f.set.Load() }

// Release stops the watcher goroutine.
func (f *CancelFlag) Release() {
	if f.stop != nil {
		f.once.Do(func() { close(f.stop) })
	}
}

// Err returns ctx.Err() if the flag observed a cancellation, else nil.
// Engines use it to decide whether a finished run was cut short.
func (f *CancelFlag) Err(ctx context.Context) error {
	if f.Cancelled() {
		return ctx.Err()
	}
	return nil
}
