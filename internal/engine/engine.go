// Package engine is the unified simulation-engine layer: one interface,
// one configuration struct and one registry shared by all seven
// simulators (sequential, event-driven, compiled, asynchronous,
// Chandy-Misra, distributed-async and Time Warp).
//
// The paper's point is that the same circuits run under interchangeable
// algorithms whose only differences are scheduling and synchronisation.
// This package makes that interchangeability concrete: the facade, the
// CLIs, the figure harness and the benchmarks all resolve an algorithm by
// name through the registry instead of hand-rolling per-algorithm
// dispatch, every engine accepts the same Config, honours context
// cancellation, and reports the same per-worker counter surface
// (stats.WorkerCounters).
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"parsim/internal/analyze"
	"parsim/internal/circuit"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// LintMode selects how much pre-flight static analysis RunEngine applies
// before handing the circuit to an engine. The analysis is the
// whole-graph checker in internal/analyze; it runs once in the shared
// validation path, so every registered engine gets the same guarantees.
type LintMode int

const (
	// LintOff (the default) skips pre-flight analysis entirely.
	LintOff LintMode = iota
	// LintWarn refuses circuits with Error diagnostics — the hazards that
	// livelock or corrupt a run, such as zero-delay combinational cycles
	// and undriven inputs.
	LintWarn
	// LintStrict additionally refuses Warning diagnostics: unresolved
	// tri-states, multi-driver resolutions, stimulus-free regions and
	// zero-delay elements.
	LintStrict
)

// String returns the flag-style mode name.
func (m LintMode) String() string {
	switch m {
	case LintWarn:
		return "warn"
	case LintStrict:
		return "strict"
	}
	return "off"
}

// ParseLintMode parses a -lint flag value.
func ParseLintMode(s string) (LintMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "":
		return LintOff, nil
	case "warn":
		return LintWarn, nil
	case "strict":
		return LintStrict, nil
	}
	return LintOff, fmt.Errorf("parsim: unknown lint mode %q (have off, warn, strict)", s)
}

// Config is the shared configuration accepted by every engine. Fields that
// do not apply to an algorithm are ignored by it (e.g. Strategy outside
// the statically partitioned engines, NoSteal outside event-driven).
type Config struct {
	Workers int          // parallel workers; 0 defaults to 1
	Horizon circuit.Time // simulate t in [0, Horizon); must be >= 0
	Probe   trace.Probe  // optional observer; must be concurrency-safe for parallel engines
	// CostSpin > 0 burns CostSpin x the element's Cost of synthetic work
	// per evaluation, restoring the paper's gate-vs-functional evaluation
	// cost spread for benchmarking.
	CostSpin int64
	// Strategy selects the static partitioner (compiled, dist, timewarp).
	Strategy partition.Strategy
	// CollectAvail records the elements-available-per-step histogram
	// (sequential and event-driven engines).
	CollectAvail bool
	// Lint selects the pre-flight static-analysis level applied in the
	// shared validation path before any engine runs (see LintMode).
	Lint LintMode

	// Ablation flags, honoured by the engine they name.
	NoSteal       bool // event-driven: disable end-of-phase work stealing
	CentralQueue  bool // event-driven: the paper's contended single-queue design
	NoLookahead   bool // asynchronous: disable clocked-element lookahead
	GateLookahead bool // asynchronous: controlling-value gate lookahead
	StepsPerRound int  // time-warp: optimistic steps per GVT round (0 = default)
}

// Report is the uniform outcome of a run. Per-algorithm counters live in
// Run.PerWorker (zero where not applicable); only genuinely global,
// non-summable metrics get their own field.
type Report struct {
	Run   stats.Run
	Final []logic.Value // node values at the horizon, indexed by NodeID
	// PeakLog is the peak saved-state footprint (time-warp only).
	PeakLog int64
	// Rounds counts Chandy-Misra deadlock recoveries (chandy-misra only;
	// 1 means the run never deadlocked).
	Rounds int64
	// GVTRounds counts time-warp synchronisation rounds.
	GVTRounds int64
}

// Engine is one simulation algorithm. Run simulates c over [0,
// cfg.Horizon) and returns statistics plus final node values. When ctx is
// cancelled mid-run the engine stops within one scheduling quantum (a time
// step, a GVT round, or a queue poll) and returns the partial Report
// together with ctx.Err().
type Engine interface {
	// Name is the canonical registry name (matches Algorithm.String()).
	Name() string
	Run(ctx context.Context, c *circuit.Circuit, cfg Config) (*Report, error)
}

// ---- registry ----

var (
	regMu    sync.RWMutex
	registry = map[string]Engine{}
	canon    []string // canonical names in registration order
)

// Register adds an engine under its canonical name plus any aliases.
// Engines self-register from init, so registering a duplicate name panics.
func Register(e Engine, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	names := append([]string{e.Name()}, aliases...)
	for _, n := range names {
		key := strings.ToLower(n)
		if _, dup := registry[key]; dup {
			panic("engine: duplicate registration of " + key)
		}
		registry[key] = e
	}
	canon = append(canon, e.Name())
}

// Get resolves an engine by canonical name or alias (case-insensitive).
func Get(name string) (Engine, error) {
	regMu.RLock()
	e, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("parsim: unknown algorithm %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return e, nil
}

// Names returns the canonical engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), canon...)
	sort.Strings(out)
	return out
}

// Run resolves name through the registry, validates cfg once for every
// engine, and runs. This is the single dispatch point for the facade,
// the CLIs, the harness and the benchmarks.
func Run(ctx context.Context, name string, c *circuit.Circuit, cfg Config) (*Report, error) {
	e, err := Get(name)
	if err != nil {
		return nil, err
	}
	return RunEngine(ctx, e, c, cfg)
}

// RunEngine validates cfg (the one place worker counts and horizons are
// checked) and invokes e.
func RunEngine(ctx context.Context, e Engine, c *circuit.Circuit, cfg Config) (*Report, error) {
	if c == nil {
		return nil, fmt.Errorf("parsim: nil circuit")
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("parsim: negative horizon %d: Horizon is the exclusive end of simulated time and must be >= 0", cfg.Horizon)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("parsim: invalid worker count %d: Workers must be positive (or 0 for the default of 1)", cfg.Workers)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Lint != LintOff {
		rep := analyze.Analyze(c, analyze.Options{})
		if err := rep.Err(cfg.Lint == LintStrict); err != nil {
			return nil, fmt.Errorf("parsim: lint (%s) rejected circuit %q: %w", cfg.Lint, c.Name, err)
		}
	}
	return e.Run(ctx, c, cfg)
}

// ---- cancellation support ----

// CancelFlag is a cheap, atomically readable view of a context's
// cancellation state, for polling inside simulator hot loops where calling
// ctx.Err() per iteration (a mutex in the standard library) would contend.
type CancelFlag struct {
	set  atomic.Bool
	stop chan struct{}
	once sync.Once
}

// WatchCancel starts watching ctx. The flag flips once ctx is cancelled.
// Callers must Release the flag when the run finishes so the watcher
// goroutine exits; Release is idempotent.
func WatchCancel(ctx context.Context) *CancelFlag {
	f := &CancelFlag{}
	done := ctx.Done()
	if done == nil {
		return f // never cancellable; no watcher needed
	}
	f.stop = make(chan struct{})
	go func() {
		select {
		case <-done:
			f.set.Store(true)
		case <-f.stop:
		}
	}()
	return f
}

// Cancelled reports whether the watched context has been cancelled.
func (f *CancelFlag) Cancelled() bool { return f.set.Load() }

// Release stops the watcher goroutine.
func (f *CancelFlag) Release() {
	if f.stop != nil {
		f.once.Do(func() { close(f.stop) })
	}
}

// Err returns ctx.Err() if the flag observed a cancellation, else nil.
// Engines use it to decide whether a finished run was cut short.
func (f *CancelFlag) Err(ctx context.Context) error {
	if f.Cancelled() {
		return ctx.Err()
	}
	return nil
}
