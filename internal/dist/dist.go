// Package dist implements the paper's stated future work: "porting these
// algorithms to a hypercube architecture" — the asynchronous algorithm
// restructured for distributed memory.
//
// Unlike package core, nothing is shared: every worker owns a static
// partition of elements plus private replicas of the node histories its
// elements read. Owners broadcast batches of events and valid-time
// advances to subscriber workers over channels (the message-passing stand-
// in for hypercube links), and consumed history prefixes are compacted
// locally — explicit storage reclamation, since no shared garbage
// collector can see a remote replica.
//
// Termination uses the Dijkstra-Feijen-van Gasteren ring: workers colour
// themselves black when they send work, a token circulates when workers go
// passive, and worker 0 announces termination when a white token completes
// a round through passive white workers. No counters are shared.
package dist

import (
	"context"
	"sync"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Workers  int          // partitions / virtual hypercube nodes; >= 1
	Horizon  circuit.Time // simulate t in [0, Horizon)
	Probe    trace.Probe  // optional observer; must be concurrency-safe
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	Strategy partition.Strategy
	// Guard is the optional run supervisor: worker panics are contained,
	// evaluations heartbeat the watchdog, and a run that terminates with
	// owned-node valid-times short of the horizon self-reports the stall
	// instead of silently returning stale X values.
	Guard *guard.Supervisor
}

// Result is the outcome of a run.
type Result struct {
	Run      stats.Run
	Final    []logic.Value
	Messages int64 // inter-worker messages sent
}

// event is one node value change.
type event struct {
	t circuit.Time
	v logic.Value
}

// msg carries one owned node's fresh behaviour to a subscriber.
type msg struct {
	node    circuit.NodeID
	events  []event
	validTo circuit.Time
}

// token is Safra's termination-detection token: the colour records whether
// any visited worker did work since last whitened; q accumulates each
// worker's sent-minus-received message count, so in-flight mail is visible.
type token struct {
	black bool
	q     int64
}

// replica is a worker-local view of one node's history. For nodes the
// worker owns it is the authoritative copy; for remote nodes it is fed by
// messages. Plain fields only — each replica lives inside one goroutine.
type replica struct {
	events  []event
	base    int64 // history index of events[0] (grows as the prefix is reclaimed)
	validTo circuit.Time
	last    logic.Value // last value (dedup for owners, tail value for all)
	final   logic.Value // last value applied before the horizon (owners)
}

const reclaimThreshold = 256

// Run simulates the circuit on opts.Workers message-passing workers.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled every worker
// stops at its next queue poll or blocking wait and the partial result is
// returned with ctx.Err(). In-flight messages are abandoned; termination
// detection is bypassed.
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	p := opts.Workers
	cancel := engine.WatchCancel(ctx)
	defer cancel.Release()
	parts := partition.Split(c, p, opts.Strategy)

	// elemOwner[i] = worker owning element i; nodeOwner likewise via driver.
	elemOwner := make([]int, len(c.Elems))
	for w, part := range parts {
		for _, e := range part {
			elemOwner[e] = w
		}
	}
	for _, g := range c.Generators() {
		elemOwner[g] = int(g) % p
	}

	workers := make([]*worker, p)
	done := make(chan struct{})
	for w := 0; w < p; w++ {
		workers[w] = newWorker(c, opts, w, p, parts[w], elemOwner)
		workers[w].done = done
		workers[w].cancel = cancel
		workers[w].ctxDone = ctx.Done()
	}
	// Wire channels and subscriber lists.
	for w := 0; w < p; w++ {
		workers[w].peers = workers
	}
	for i := range c.Nodes {
		owner := elemOwner[c.Nodes[i].Driver]
		subs := map[int]bool{}
		for _, pr := range c.Nodes[i].Fanout {
			if o := elemOwner[pr.Elem]; o != owner {
				subs[o] = true
			}
		}
		for s := range subs {
			nid := circuit.NodeID(i)
			workers[owner].subscribers[nid] = append(workers[owner].subscribers[nid], s)
		}
	}

	// Seed generators: the owner materialises each generator's behaviour
	// for all time before workers start.
	for _, g := range c.Generators() {
		w := workers[elemOwner[g]]
		el := &c.Elems[g]
		n := el.Out[0]
		r := w.replicaFor(n)
		var t circuit.Time
		for t < opts.Horizon {
			if cancel.Cancelled() {
				break // generators can span huge horizons; stop materialising
			}
			v := el.GenValueAt(t)
			if !v.Equal(r.last) {
				w.append(n, t, v)
			}
			next, ok := el.GenNextChange(t)
			if !ok {
				break
			}
			t = next
		}
		w.advanceValidTo(n, opts.Horizon)
	}
	// Flush the seeded behaviour as pre-start mail and activations.
	for _, w := range workers {
		w.preStartFlush()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer opts.Guard.Recover(w.id, "distributed eval loop")
			w.run()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result{Final: make([]logic.Value, len(c.Nodes))}
	for i := range c.Nodes {
		owner := workers[elemOwner[c.Nodes[i].Driver]]
		if r, ok := owner.replicas[circuit.NodeID(i)]; ok {
			res.Final[i] = r.final
		} else {
			res.Final[i] = logic.AllX(c.Nodes[i].Width)
		}
	}
	res.Run = stats.Run{
		Algorithm: "distributed-async",
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
	}
	per := make([]stats.WorkerCounters, p)
	for w := 0; w < p; w++ {
		per[w] = workers[w].wc
		res.Messages += workers[w].wc.Messages
	}
	res.Run.Aggregate(wall, per)
	if err := cancel.Err(ctx); err != nil {
		return res, err
	}
	// Workers also watch ctx.Done directly, so they can exit before the
	// flag's watcher goroutine observes the cancellation; consult the
	// context itself so a cut-short run is never mistaken for a stall.
	if err := ctx.Err(); err != nil {
		return res, err
	}
	// Termination was declared (every worker passive, no mail in flight),
	// so authoritative valid-times short of the horizon mean the run
	// stalled rather than completed: self-report with the stuck nodes,
	// as core does, instead of silently returning stale X values. The
	// owner replicas are plain fields, safe to read after wg.Wait.
	if opts.Horizon > 0 {
		horizon := int64(opts.Horizon)
		minValid := horizon
		var stuck []string
		truncated := 0
		for i := range c.Nodes {
			owner := workers[elemOwner[c.Nodes[i].Driver]]
			r, ok := owner.replicas[circuit.NodeID(i)]
			if !ok || int64(r.validTo) >= horizon {
				continue
			}
			if int64(r.validTo) < minValid {
				minValid = int64(r.validTo)
			}
			if len(stuck) < 8 {
				stuck = append(stuck, c.Nodes[i].Name)
			} else {
				truncated++
			}
		}
		if len(stuck) > 0 {
			return res, &guard.StallError{
				Engine:       "distributed-async",
				LastProgress: minValid,
				StuckNodes:   stuck,
				Truncated:    truncated,
			}
		}
	}
	return res, nil
}
