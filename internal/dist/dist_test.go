package dist

import (
	"context"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/partition"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

// crossCheck compares the distributed simulator against the sequential
// oracle, event for event.
func crossCheck(t *testing.T, c *circuit.Circuit, horizon circuit.Time, opts Options) *Result {
	t.Helper()
	ref := trace.NewRecorder()
	seqRes := seq.Run(c, seq.Options{Horizon: horizon, Probe: ref})

	got := trace.NewRecorder()
	opts.Horizon = horizon
	opts.Probe = got
	res := Run(c, opts)

	if d := trace.Diff(c, ref, got); d != "" {
		t.Fatalf("%s (P=%d): history mismatch: %s", c.Name, opts.Workers, d)
	}
	if res.Run.NodeUpdates != seqRes.Run.NodeUpdates {
		t.Errorf("node updates %d != sequential %d", res.Run.NodeUpdates, seqRes.Run.NodeUpdates)
	}
	for i := range res.Final {
		if !res.Final[i].Equal(seqRes.Final[i]) {
			t.Errorf("final value of node %s differs: %v vs %v",
				c.Nodes[i].Name, res.Final[i], seqRes.Final[i])
		}
	}
	return res
}

func TestMatchesSequentialOnArray(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 6, TogglePeriod: 2})
	for _, p := range []int{1, 2, 3, 5, 8} {
		crossCheck(t, c, 300, Options{Workers: p})
	}
}

func TestMatchesSequentialOnFuncMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.InPeriod = 64
	c := gen.FuncMultiplier(cfg)
	for _, p := range []int{1, 3, 4} {
		crossCheck(t, c, 512, Options{Workers: p})
	}
}

func TestMatchesSequentialOnGateMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 128
	c := gen.GateMultiplier(cfg)
	crossCheck(t, c, 512, Options{Workers: 4})
}

func TestMatchesSequentialOnCPU(t *testing.T) {
	cfg := gen.DefaultCPU()
	c := gen.CPU(cfg)
	crossCheck(t, c, gen.CPUHorizon(cfg, 25), Options{Workers: 4})
}

func TestMatchesSequentialOnFeedback(t *testing.T) {
	for _, p := range []int{1, 3} {
		crossCheck(t, gen.FeedbackChain(13), 600, Options{Workers: p})
	}
}

func TestMatchesSequentialOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		c := gen.RandomCircuit(seed, 80)
		crossCheck(t, c, 250, Options{Workers: 3})
	}
}

func TestMessagesOnlyWithMultipleWorkers(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 4, TogglePeriod: 1})
	solo := Run(c, Options{Workers: 1, Horizon: 100})
	if solo.Messages != 0 {
		t.Errorf("single worker sent %d messages", solo.Messages)
	}
	multi := Run(c, Options{Workers: 4, Horizon: 100})
	if multi.Messages == 0 {
		t.Error("four workers exchanged no messages")
	}
}

func TestReclamationBoundsMemory(t *testing.T) {
	// A long run over a small circuit: replicas must stay compact.
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 2, Cols: 4, ActiveRows: 2, TogglePeriod: 1})
	res := Run(c, Options{Workers: 2, Horizon: 100000})
	if res.Run.NodeUpdates < 100000 {
		t.Fatalf("not enough activity: %d", res.Run.NodeUpdates)
	}
	// Indirect check: the run completing in reasonable time with ~1M events
	// across 8 nodes exercises the compaction path (reclaimThreshold=256).
}

func TestDeterministicHistories(t *testing.T) {
	c := gen.RandomCircuit(11, 100)
	r1 := trace.NewRecorder()
	Run(c, Options{Workers: 4, Horizon: 300, Probe: r1})
	r2 := trace.NewRecorder()
	Run(c, Options{Workers: 4, Horizon: 300, Probe: r2})
	if d := trace.Diff(c, r1, r2); d != "" {
		t.Fatalf("two runs differ: %s", d)
	}
}

func TestPartitionStrategies(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.InPeriod = 64
	c := gen.FuncMultiplier(cfg)
	for _, s := range []partition.Strategy{partition.RoundRobin, partition.Blocks, partition.CostLPT} {
		crossCheck(t, c, 256, Options{Workers: 3, Strategy: s})
	}
}

func TestBadWorkerCountError(t *testing.T) {
	res, err := RunContext(context.Background(), gen.FeedbackChain(3), Options{Workers: 0, Horizon: 10})
	if err == nil {
		t.Fatal("Workers=0 did not return an error")
	}
	if res != nil {
		t.Fatal("bad config must not produce a result")
	}
}

func TestZeroHorizon(t *testing.T) {
	res := Run(gen.FeedbackChain(3), Options{Workers: 2, Horizon: 0})
	if res.Run.NodeUpdates != 0 {
		t.Errorf("updates at zero horizon: %d", res.Run.NodeUpdates)
	}
}
