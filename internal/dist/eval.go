package dist

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// peek returns the next unconsumed event for one cursor into a replica.
func peek(r *replica, cu *cursor) (event, bool) {
	idx := cu.pos - r.base
	if idx >= int64(len(r.events)) {
		return event{}, false
	}
	return r.events[idx], true
}

// evalElement is the distributed counterpart of core's evaluation: consume
// every input event below min-valid in merged time order, append output
// changes to the owned replicas, then ship fresh behaviour to remote
// subscribers and activate local consumers.
func (w *worker) evalElement(e circuit.ElemID) {
	el := &w.c.Elems[e]
	w.wc.Evals++
	w.opts.Guard.Heartbeat(w.id)
	if w.chaos != nil {
		w.chaos.Eval()
	}
	cs := w.cursors[e]

	minValid := int64(w.opts.Horizon)
	for _, n := range el.In {
		if vt := int64(w.replicas[n].validTo); vt < minValid {
			minValid = vt
		}
	}

	if cap(w.inBuf) < len(cs) {
		w.inBuf = make([]logic.Value, len(cs))
	}
	in := w.inBuf[:len(cs)]
	if cap(w.outBuf) < len(el.Out) {
		w.outBuf = make([]logic.Value, len(el.Out))
	}
	out := w.outBuf[:len(el.Out)]

	// Reset per-output staging.
	for _, n := range el.Out {
		w.staged[n] = w.staged[n][:0]
	}

	// A single activation can consume an unbounded number of events, so the
	// cancellation flag is polled between merged time points too.
	for {
		if w.cancel.Cancelled() {
			break
		}
		tmin := circuit.Time(-1)
		for port, n := range el.In {
			if ev, ok := peek(w.replicas[n], &cs[port]); ok && int64(ev.t) < minValid {
				if tmin < 0 || ev.t < tmin {
					tmin = ev.t
				}
			}
		}
		if tmin < 0 {
			break
		}
		for port, n := range el.In {
			if ev, ok := peek(w.replicas[n], &cs[port]); ok && ev.t == tmin {
				cs[port].val = ev.v
				cs[port].pos++
				w.wc.EventsUsed++
			}
			in[port] = cs[port].val
		}
		el.Eval(in, w.state[e], out)
		w.wc.ModelCalls++
		if w.opts.CostSpin > 0 {
			circuit.Spin(el.Cost * w.opts.CostSpin)
		}
		for p, n := range el.Out {
			r := w.replicas[n]
			if out[p].Equal(r.last) {
				continue
			}
			t := tmin + el.Delay
			r.last = out[p]
			if t >= w.opts.Horizon {
				continue
			}
			r.final = out[p]
			r.events = append(r.events, event{t: t, v: out[p]})
			w.staged[n] = append(w.staged[n], event{t: t, v: out[p]})
			w.wc.NodeUpdates++
			if w.opts.Probe != nil {
				w.opts.Probe.OnChange(n, t, out[p])
			}
		}
	}

	// Clocked-element lookahead, as in core: the output cannot change
	// before the next trigger-input event.
	effValid := minValid
	if trig := circuit.TriggerPorts(el.Kind); trig != nil {
		bound := int64(w.opts.Horizon)
		for _, port := range trig {
			n := el.In[port]
			var tb int64
			if ev, ok := peek(w.replicas[n], &cs[port]); ok {
				tb = int64(ev.t)
			} else {
				tb = int64(w.replicas[n].validTo)
			}
			if tb < bound {
				bound = tb
			}
		}
		if bound > effValid {
			effValid = bound
		}
	}

	// Publish: advance valid times, activate local consumers, mail remote
	// subscribers.
	for _, n := range el.Out {
		newValid := circuit.Time(effValid) + el.Delay
		advanced := w.advanceValidTo(n, newValid)
		fresh := w.staged[n]
		if !advanced && len(fresh) == 0 {
			continue
		}
		for _, pr := range w.c.Nodes[n].Fanout {
			w.activateLocal(pr.Elem)
		}
		if subs := w.subscribers[n]; len(subs) > 0 {
			var evs []event
			if len(fresh) > 0 {
				evs = append([]event(nil), fresh...)
			}
			vt := w.replicas[n].validTo
			for _, sub := range subs {
				w.send(sub, msg{node: n, events: evs, validTo: vt})
			}
		}
		w.maybeReclaim(n)
	}
	for _, n := range el.In {
		w.maybeReclaim(n)
	}
}

// maybeReclaim compacts a replica's consumed prefix once it grows past the
// threshold — the explicit storage reclamation a distributed-memory port
// needs ("the storage for the events on node 1 can be freed").
func (w *worker) maybeReclaim(n circuit.NodeID) {
	r := w.replicas[n]
	if len(r.events) < reclaimThreshold {
		return
	}
	min := r.base + int64(len(r.events))
	for _, cu := range w.readers[n] {
		if cu.pos < min {
			min = cu.pos
		}
	}
	drop := min - r.base
	if drop <= 0 {
		return
	}
	kept := copy(r.events, r.events[drop:])
	// Zero the tail so reclaimed values do not linger.
	for i := kept; i < len(r.events); i++ {
		r.events[i] = event{}
	}
	r.events = r.events[:kept]
	r.base = min
}
