package dist

import (
	"runtime"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/stats"
)

// cursor is one (element, input port) consumer position into a replica.
type cursor struct {
	pos int64
	val logic.Value
}

type worker struct {
	c     *circuit.Circuit
	opts  Options
	id, p int
	peers []*worker

	elems     []circuit.ElemID
	elemOwner []int

	inbox   chan msg
	tokenIn chan token
	done    chan struct{}
	cancel  *engine.CancelFlag
	ctxDone <-chan struct{}
	chaos   *guard.ChaosProbe // captured once; nil on production runs

	subscribers map[circuit.NodeID][]int

	replicas map[circuit.NodeID]*replica
	readers  map[circuit.NodeID][]*cursor
	cursors  map[circuit.ElemID][]cursor
	state    map[circuit.ElemID][]logic.Value

	queue   []circuit.ElemID
	inQueue []bool // indexed by global ElemID

	// Staged output events for the element currently being evaluated.
	staged map[circuit.NodeID][]event

	// Safra termination detection state.
	black        bool
	msgCount     int64 // basic messages sent minus received
	holdingToken bool
	heldToken    token
	probeOut     bool // worker 0: a probe is circulating

	// Statistics. Plain fields: each worker struct lives inside one
	// goroutine and is aggregated only after wg.Wait().
	wc stats.WorkerCounters

	inBuf, outBuf []logic.Value
}

func newWorker(c *circuit.Circuit, opts Options, id, p int,
	elems []circuit.ElemID, elemOwner []int) *worker {
	w := &worker{
		c:           c,
		opts:        opts,
		id:          id,
		p:           p,
		elems:       elems,
		elemOwner:   elemOwner,
		inbox:       make(chan msg, 256),
		tokenIn:     make(chan token, 1),
		subscribers: make(map[circuit.NodeID][]int),
		replicas:    make(map[circuit.NodeID]*replica),
		readers:     make(map[circuit.NodeID][]*cursor),
		cursors:     make(map[circuit.ElemID][]cursor),
		state:       make(map[circuit.ElemID][]logic.Value),
		inQueue:     make([]bool, len(c.Elems)),
		staged:      make(map[circuit.NodeID][]event),
		chaos:       opts.Guard.Chaos(),
	}
	for _, e := range elems {
		el := &c.Elems[e]
		if n := el.NumStateVals(); n > 0 {
			st := make([]logic.Value, n)
			el.InitState(st)
			w.state[e] = st
		}
		cs := make([]cursor, len(el.In))
		for port, n := range el.In {
			w.replicaFor(n)
			cs[port] = cursor{val: logic.AllX(c.Nodes[n].Width)}
		}
		w.cursors[e] = cs
		for port, n := range el.In {
			w.readers[n] = append(w.readers[n], &cs[port])
		}
		for _, n := range el.Out {
			w.replicaFor(n)
		}
	}
	return w
}

// replicaFor returns (creating if needed) the local view of a node.
func (w *worker) replicaFor(n circuit.NodeID) *replica {
	if r, ok := w.replicas[n]; ok {
		return r
	}
	x := logic.AllX(w.c.Nodes[n].Width)
	r := &replica{last: x, final: x}
	w.replicas[n] = r
	return r
}

// append records one owned-node change locally (dedup is the caller's job
// for generators; evalElement dedups through last).
func (w *worker) append(n circuit.NodeID, t circuit.Time, v logic.Value) {
	r := w.replicas[n]
	r.last = v
	if t >= w.opts.Horizon {
		return
	}
	r.final = v
	r.events = append(r.events, event{t: t, v: v})
	w.wc.NodeUpdates++
	if w.opts.Probe != nil {
		w.opts.Probe.OnChange(n, t, v)
	}
}

func (w *worker) advanceValidTo(n circuit.NodeID, t circuit.Time) bool {
	r := w.replicas[n]
	if t > w.opts.Horizon {
		t = w.opts.Horizon
	}
	if t > r.validTo {
		r.validTo = t
		return true
	}
	return false
}

// activateLocal queues an owned element.
func (w *worker) activateLocal(e circuit.ElemID) {
	if w.elemOwner[e] != w.id || w.inQueue[e] {
		return
	}
	if w.chaos != nil && w.chaos.DropWakeup() {
		// Injected lost wakeup: the element is never queued, the workers
		// go passive, Safra's ring declares termination, and the run's
		// completion check self-reports the stall.
		return
	}
	w.inQueue[e] = true
	w.queue = append(w.queue, e)
}

// preStartFlush runs before goroutines start: deliver seeded generator
// behaviour directly into subscriber replicas and activate consumers.
func (w *worker) preStartFlush() {
	for _, g := range w.c.Generators() {
		if w.elemOwner[g] != w.id {
			continue
		}
		n := w.c.Elems[g].Out[0]
		r := w.replicas[n]
		for _, sub := range w.subscribers[n] {
			peer := w.peers[sub]
			pr := peer.replicaFor(n)
			pr.events = append(pr.events, r.events...)
			pr.validTo = r.validTo
			pr.last = r.last
		}
		for _, pr := range w.c.Nodes[n].Fanout {
			w.peers[w.elemOwner[pr.Elem]].activateLocal(pr.Elem)
		}
	}
}

// send delivers a basic message, draining our own inbox if the destination
// is full so that cycles of full buffers cannot deadlock.
func (w *worker) send(to int, m msg) {
	w.black = true
	w.msgCount++
	w.wc.Messages++
	for {
		if w.cancel.Cancelled() {
			return // receiver may have exited; abandon the message
		}
		select {
		case w.peers[to].inbox <- m:
			return
		default:
			// Destination full: make progress on our own mail so cycles of
			// full buffers cannot deadlock, and yield so the receiver runs.
			w.drainInbox()
			runtime.Gosched()
		}
	}
}

// handleMsg applies a remote node update. Receiving makes us black
// (Safra's rule for asynchronous channels).
func (w *worker) handleMsg(m msg) {
	w.black = true
	w.msgCount--
	r := w.replicaFor(m.node)
	r.events = append(r.events, m.events...)
	if m.validTo > r.validTo {
		r.validTo = m.validTo
	}
	if len(m.events) > 0 {
		r.last = m.events[len(m.events)-1].v
	}
	for _, pr := range w.c.Nodes[m.node].Fanout {
		w.activateLocal(pr.Elem)
	}
}

// drainInbox handles all currently queued mail without blocking.
func (w *worker) drainInbox() {
	for {
		select {
		case m := <-w.inbox:
			w.handleMsg(m)
		default:
			return
		}
	}
}

func (w *worker) run() {
	for {
		if w.cancel.Cancelled() {
			return // all workers poll the flag, so the gang exits together
		}
		w.drainInbox()
		if len(w.queue) > 0 {
			e := w.queue[0]
			w.queue = w.queue[1:]
			w.inQueue[e] = false
			w.evalElement(e)
			continue
		}

		// Passive. Forward or initiate the termination token.
		if w.holdingToken {
			w.holdingToken = false
			if w.forwardToken(w.heldToken) {
				return
			}
			continue
		}
		if w.id == 0 && !w.probeOut {
			if w.p == 1 {
				// Ring of one: passive with no mail means done.
				return
			}
			w.probeOut = true
			w.black = false
			w.peers[1].tokenIn <- token{}
			continue
		}

		t0 := time.Now()
		w.wc.IdlePolls++
		select {
		case m := <-w.inbox:
			w.wc.Idle += time.Since(t0)
			w.handleMsg(m)
		case tok := <-w.tokenIn:
			w.wc.Idle += time.Since(t0)
			w.heldToken = tok
			w.holdingToken = true
		case <-w.done:
			w.wc.Idle += time.Since(t0)
			return
		case <-w.ctxDone:
			w.wc.Idle += time.Since(t0)
			return
		}
	}
}

// forwardToken applies Safra's rules at a passive moment. Worker 0 judges
// the completed probe; everyone else accumulates and passes on. The return
// value tells the caller to exit (termination declared).
func (w *worker) forwardToken(tok token) bool {
	if w.id == 0 {
		if !tok.black && !w.black && tok.q+w.msgCount == 0 {
			close(w.done)
			return true
		}
		// Inconclusive probe; yield before the next one so probing cannot
		// crowd out the workers still computing.
		w.probeOut = false
		runtime.Gosched()
		return false
	}
	out := token{black: tok.black || w.black, q: tok.q + w.msgCount}
	w.black = false
	w.peers[(w.id+1)%w.p].tokenIn <- out
	return false
}
