package compiled

import (
	"context"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/partition"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

// crossCheck compares compiled-mode output against the sequential oracle on
// a unit-delay circuit.
func crossCheck(t *testing.T, c *circuit.Circuit, horizon circuit.Time, opts Options) *Result {
	t.Helper()
	if !UnitDelay(c) {
		t.Fatalf("%s is not unit-delay; cross-check invalid", c.Name)
	}
	ref := trace.NewRecorder()
	seqRes := seq.Run(c, seq.Options{Horizon: horizon, Probe: ref})

	got := trace.NewRecorder()
	opts.Horizon = horizon
	opts.Probe = got
	res := Run(c, opts)

	if d := trace.Diff(c, ref, got); d != "" {
		t.Fatalf("%s (P=%d): history mismatch: %s", c.Name, opts.Workers, d)
	}
	if res.Run.NodeUpdates != seqRes.Run.NodeUpdates {
		t.Errorf("node updates %d != sequential %d", res.Run.NodeUpdates, seqRes.Run.NodeUpdates)
	}
	for i := range res.Final {
		if !res.Final[i].Equal(seqRes.Final[i]) {
			t.Errorf("final value of node %s differs: %v vs %v",
				c.Nodes[i].Name, res.Final[i], seqRes.Final[i])
		}
	}
	return res
}

func TestMatchesSequentialOnArray(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 5, TogglePeriod: 3})
	for _, p := range []int{1, 2, 4} {
		crossCheck(t, c, 200, Options{Workers: p})
	}
}

func TestMatchesSequentialOnGateMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 128
	c := gen.GateMultiplier(cfg)
	crossCheck(t, c, 384, Options{Workers: 4})
}

func TestMatchesSequentialOnRandomUnitCircuits(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := gen.RandomUnitCircuit(seed, 70)
		crossCheck(t, c, 200, Options{Workers: 3})
	}
}

func TestAllPartitionStrategies(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 6, Cols: 6, ActiveRows: 6, TogglePeriod: 1})
	for _, st := range []partition.Strategy{partition.RoundRobin, partition.Blocks, partition.CostLPT} {
		crossCheck(t, c, 150, Options{Workers: 4, Strategy: st})
	}
}

func TestEvalsCountEveryElementEveryStep(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 1, TogglePeriod: 8})
	const horizon = 100
	res := Run(c, Options{Workers: 2, Horizon: horizon})
	wantEvals := int64(horizon-1) * int64(c.NumGates())
	if res.Run.Evals != wantEvals {
		t.Errorf("evals = %d, want %d (compiled mode evaluates everything)", res.Run.Evals, wantEvals)
	}
	// Activity is low, so updates must be far below evals: the wasted work
	// the paper warns about.
	if res.Run.NodeUpdates*4 > res.Run.Evals {
		t.Errorf("updates %d not small vs evals %d", res.Run.NodeUpdates, res.Run.Evals)
	}
}

func TestUnitDelayDetector(t *testing.T) {
	if !UnitDelay(gen.InverterArray(gen.DefaultInverterArray())) {
		t.Error("inverter array must be unit-delay")
	}
	if UnitDelay(gen.CPU(gen.DefaultCPU())) {
		t.Error("CPU has ROM/RAM delay 2; not unit-delay")
	}
}

func TestBadWorkerCountError(t *testing.T) {
	res, err := RunContext(context.Background(), gen.FeedbackChain(3), Options{Workers: 0, Horizon: 10})
	if err == nil {
		t.Fatal("Workers=0 did not return an error")
	}
	if res != nil {
		t.Fatal("bad config must not produce a result")
	}
}
