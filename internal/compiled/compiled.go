// Package compiled implements the paper's second algorithm: the parallel
// unit-delay compiled-mode simulator. Every element is evaluated at every
// time step from a static partition, with one barrier per step. The "problem
// size" per step is maximal and load-balancing is easy for homogeneous gate
// circuits — at the price of wasted work whenever element activity is low,
// which is exactly the trade-off the paper's Figure 3 explores.
package compiled

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/barrier"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Workers  int          // parallel workers; >= 1
	Horizon  circuit.Time // simulate unit-delay steps t in [0, Horizon)
	Probe    trace.Probe  // optional observer; must be concurrency-safe
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	Strategy partition.Strategy
	// Guard is the optional run supervisor: worker panics are contained,
	// worker 0 publishes the current step as progress, and a trip aborts
	// the step barrier so no survivor spins for a dead peer.
	Guard *guard.Supervisor
}

// Result is the outcome of a run.
type Result struct {
	Run   stats.Run
	Final []logic.Value
}

// UnitDelay reports whether every element in c has delay 1, the assumption
// under which compiled-mode histories match the event-driven simulators.
func UnitDelay(c *circuit.Circuit) bool {
	for i := range c.Elems {
		if c.Elems[i].Delay != 1 {
			return false
		}
	}
	return true
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	buf   [2][]logic.Value // double-buffered node values
	state [][]logic.Value
	parts [][]circuit.ElemID
	bar   *barrier.Barrier

	wc     []stats.WorkerCounters
	cancel *engine.CancelFlag
	chaos  *guard.ChaosProbe // captured once; nil on production runs
	// stopAt, when > 0, is the step at which every worker exits. Worker 0
	// publishes it during step stopAt-1; the step barrier makes the write
	// visible to all workers before any of them reaches step stopAt, so the
	// whole gang leaves the loop at the same step boundary and nobody is
	// left waiting on the barrier.
	stopAt atomic.Int64
}

// Run simulates the circuit in compiled mode and returns statistics and the
// node values after the final step.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled all workers
// stop together at the next time step and the partial result is returned
// with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	p := opts.Workers
	s := &sim{
		c:      c,
		opts:   opts,
		p:      p,
		parts:  partition.Split(c, p, opts.Strategy),
		bar:    barrier.New(p),
		wc:     make([]stats.WorkerCounters, p),
		cancel: engine.WatchCancel(ctx),
		chaos:  opts.Guard.Chaos(),
	}
	defer s.cancel.Release()
	opts.Guard.OnTrip(s.bar.Abort)
	for side := range s.buf {
		s.buf[side] = make([]logic.Value, len(c.Nodes))
	}
	for i := range c.Nodes {
		x := logic.AllX(c.Nodes[i].Width)
		s.buf[0][i] = x
		s.buf[1][i] = x
	}
	s.state = make([][]logic.Value, len(c.Elems))
	for i := range c.Elems {
		if n := c.Elems[i].NumStateVals(); n > 0 {
			s.state[i] = make([]logic.Value, n)
			c.Elems[i].InitState(s.state[i])
		}
	}
	// Generators assume their t=0 values before the first step.
	for _, g := range c.Generators() {
		el := &c.Elems[g]
		v := el.GenValueAt(0)
		n := el.Out[0]
		if !v.Equal(s.buf[0][n]) {
			s.buf[0][n] = v
			s.buf[1][n] = v // both sides start consistent
			if opts.Probe != nil {
				opts.Probe.OnChange(n, 0, v)
			}
			s.wc[0].NodeUpdates++
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer opts.Guard.Recover(w, "compiled step loop")
			s.worker(w)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	steps := int64(opts.Horizon)
	final := s.buf[int(opts.Horizon-1)&1]
	if opts.Horizon <= 0 {
		final = s.buf[0]
	}
	if sa := s.stopAt.Load(); sa > 0 && circuit.Time(sa) < opts.Horizon-1 {
		// Cancelled: the last completed step wrote values for time sa.
		steps = sa + 1
		final = s.buf[int(sa)&1]
	}
	res := &Result{Final: final}
	res.Run = stats.Run{
		Algorithm: "compiled-mode(" + opts.Strategy.String() + ")",
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
		TimeSteps: steps,
	}
	for w := 0; w < p; w++ {
		s.wc[w].ModelCalls = s.wc[w].Evals
	}
	res.Run.Aggregate(wall, s.wc)
	return res, s.cancel.Err(ctx)
}

func (s *sim) worker(id int) {
	var sense barrier.Sense
	var idle time.Duration
	defer func() { s.wc[id].Idle = idle }()

	part := s.parts[id]
	var gens []circuit.ElemID
	for i, g := range s.c.Generators() {
		if i%s.p == id {
			gens = append(gens, g)
		}
	}
	inBuf := make([]logic.Value, 8)
	outBuf := make([]logic.Value, 4)

	// Step t computes node values for t+1: read side t&1, write side
	// (t+1)&1. The final step is Horizon-2 -> values at Horizon-1.
	for t := circuit.Time(0); t < s.opts.Horizon-1; t++ {
		if sa := s.stopAt.Load(); sa > 0 && t >= circuit.Time(sa) {
			return
		}
		if id == 0 {
			s.opts.Guard.Progress(int64(t))
			if s.cancel.Cancelled() {
				s.stopAt.CompareAndSwap(0, int64(t)+1)
			}
		}
		cur := s.buf[t&1]
		next := s.buf[(t+1)&1]

		for _, g := range gens {
			el := &s.c.Elems[g]
			s.write(id, el.Out[0], t+1, el.GenValueAt(t+1), cur, next)
		}
		for _, eid := range part {
			el := &s.c.Elems[eid]
			s.wc[id].Evals++
			if s.chaos != nil {
				s.chaos.Eval()
			}
			if cap(inBuf) < len(el.In) {
				inBuf = make([]logic.Value, len(el.In))
			}
			in := inBuf[:len(el.In)]
			for i, n := range el.In {
				in[i] = cur[n]
			}
			if cap(outBuf) < len(el.Out) {
				outBuf = make([]logic.Value, len(el.Out))
			}
			out := outBuf[:len(el.Out)]
			el.Eval(in, s.state[eid], out)
			if s.opts.CostSpin > 0 {
				circuit.Spin(el.Cost * s.opts.CostSpin)
			}
			for p, n := range el.Out {
				s.write(id, n, t+1, out[p], cur, next)
			}
		}

		t0 := time.Now()
		s.wc[id].BarrierWaits++
		ok := s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}
	}
}

// write stores a node's next value, recording a change when it differs from
// the current one. Only the node's single driver (or generator owner) calls
// this for a given node, so the slots race with nobody.
func (s *sim) write(id int, n circuit.NodeID, t circuit.Time, v logic.Value,
	cur, next []logic.Value) {
	next[n] = v
	if v.Equal(cur[n]) {
		return
	}
	s.wc[id].NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
}
