// Package compiled implements the paper's second algorithm: the parallel
// unit-delay compiled-mode simulator. Every element is evaluated at every
// time step from a static partition, with one barrier per step. The "problem
// size" per step is maximal and load-balancing is easy for homogeneous gate
// circuits — at the price of wasted work whenever element activity is low,
// which is exactly the trade-off the paper's Figure 3 explores.
package compiled

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/barrier"
	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Workers  int          // parallel workers; >= 1
	Horizon  circuit.Time // simulate unit-delay steps t in [0, Horizon)
	Probe    trace.Probe  // optional observer; must be concurrency-safe
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	Strategy partition.Strategy
	// Guard is the optional run supervisor: worker panics are contained,
	// worker 0 publishes the current step as progress, and a trip aborts
	// the step barrier so no survivor spins for a dead peer.
	Guard *guard.Supervisor
	// Checkpoint asks for periodic snapshots at the per-step barrier, the
	// quiescent point where every worker has finished the previous step
	// and none has started the next.
	Checkpoint checkpoint.Plan
	// Resume continues from a verified snapshot; the resumed run replays
	// bit-identically to an uninterrupted one.
	Resume *checkpoint.Snapshot
}

// Result is the outcome of a run.
type Result struct {
	Run   stats.Run
	Final []logic.Value
}

// UnitDelay reports whether every element in c has delay 1, the assumption
// under which compiled-mode histories match the event-driven simulators.
func UnitDelay(c *circuit.Circuit) bool {
	for i := range c.Elems {
		if c.Elems[i].Delay != 1 {
			return false
		}
	}
	return true
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	buf   [2][]logic.Value // double-buffered node values
	state [][]logic.Value
	parts [][]circuit.ElemID
	bar   *barrier.Barrier

	wc     []stats.WorkerCounters
	cancel *engine.CancelFlag
	chaos  *guard.ChaosProbe // captured once; nil on production runs

	startT circuit.Time       // resume step (0 for a fresh run)
	ckptW  *checkpoint.Writer // background snapshot writer; nil when disabled
	// ckptErr is worker 0's snapshot failure, published before the
	// post-save barrier release (an atomic edge), so every worker observes
	// it right after its uncounted Wait and the gang exits together.
	ckptErr error
	// stopAt, when > 0, is the step at which every worker exits. Worker 0
	// publishes it during step stopAt-1; the step barrier makes the write
	// visible to all workers before any of them reaches step stopAt, so the
	// whole gang leaves the loop at the same step boundary and nobody is
	// left waiting on the barrier.
	stopAt atomic.Int64
}

// Run simulates the circuit in compiled mode and returns statistics and the
// node values after the final step.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled all workers
// stop together at the next time step and the partial result is returned
// with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	p := opts.Workers
	s := &sim{
		c:      c,
		opts:   opts,
		p:      p,
		parts:  partition.Split(c, p, opts.Strategy),
		bar:    barrier.New(p),
		wc:     make([]stats.WorkerCounters, p),
		cancel: engine.WatchCancel(ctx),
		chaos:  opts.Guard.Chaos(),
	}
	defer s.cancel.Release()
	opts.Guard.OnTrip(s.bar.Abort)
	for side := range s.buf {
		s.buf[side] = make([]logic.Value, len(c.Nodes))
	}
	for i := range c.Nodes {
		x := logic.AllX(c.Nodes[i].Width)
		s.buf[0][i] = x
		s.buf[1][i] = x
	}
	s.state = make([][]logic.Value, len(c.Elems))
	for i := range c.Elems {
		if n := c.Elems[i].NumStateVals(); n > 0 {
			s.state[i] = make([]logic.Value, n)
			c.Elems[i].InitState(s.state[i])
		}
	}
	if opts.Resume != nil {
		// The snapshot replaces the t=0 initialisation wholesale: both
		// buffer sides take the checkpointed values (driven nodes are fully
		// rewritten each step, undriven nodes must stay constant), element
		// state and counters pick up where they left off, and the generator
		// init below is skipped — its node update is already counted in the
		// restored counters.
		if err := s.restore(opts.Resume); err != nil {
			return nil, err
		}
	} else {
		// Generators assume their t=0 values before the first step.
		for _, g := range c.Generators() {
			el := &c.Elems[g]
			v := el.GenValueAt(0)
			n := el.Out[0]
			if !v.Equal(s.buf[0][n]) {
				s.buf[0][n] = v
				s.buf[1][n] = v // both sides start consistent
				if opts.Probe != nil {
					opts.Probe.OnChange(n, 0, v)
				}
				s.wc[0].NodeUpdates++
			}
		}
	}

	if opts.Checkpoint.Enabled() {
		s.ckptW = checkpoint.NewWriter(opts.Checkpoint)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer opts.Guard.Recover(w, "compiled step loop")
			s.worker(w)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	steps := int64(opts.Horizon)
	final := s.buf[int(opts.Horizon-1)&1]
	if opts.Horizon <= 0 {
		final = s.buf[0]
	}
	if sa := s.stopAt.Load(); sa > 0 && circuit.Time(sa) < opts.Horizon-1 {
		// Cancelled: the last completed step wrote values for time sa.
		steps = sa + 1
		final = s.buf[int(sa)&1]
	}
	if opts.Checkpoint.Enabled() && s.ckptErr == nil && s.cancel.Cancelled() {
		// A clean stop (stopAt published, every worker left at that step
		// boundary) is a quiescent point; capture it so a drained run can
		// be resumed. A guard trip aborts the barrier without publishing
		// stopAt — that state is untrusted and deliberately not saved.
		if sa := s.stopAt.Load(); sa > 0 {
			if err := s.saveCheckpoint(circuit.Time(sa)); err != nil {
				s.ckptErr = err
			}
		}
	}
	if s.ckptW != nil {
		// Flush the newest pending snapshot before returning, so a drain's
		// final capture is durable when the caller proceeds. A run that
		// completed its horizon has nothing left to resume — drop the
		// pending capture instead of paying a useless final fsync.
		if !s.cancel.Cancelled() {
			s.ckptW.DiscardPending()
		}
		if cerr := s.ckptW.Close(); cerr != nil && s.ckptErr == nil {
			s.ckptErr = cerr
		}
	}
	if s.ckptErr != nil {
		return nil, s.ckptErr
	}
	res := &Result{Final: final}
	res.Run = stats.Run{
		Algorithm: "compiled-mode(" + opts.Strategy.String() + ")",
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
		TimeSteps: steps,
	}
	for w := 0; w < p; w++ {
		s.wc[w].ModelCalls = s.wc[w].Evals
	}
	res.Run.Aggregate(wall, s.wc)
	return res, s.cancel.Err(ctx)
}

func (s *sim) worker(id int) {
	var sense barrier.Sense
	var idle time.Duration
	defer func() { s.wc[id].Idle += idle }()

	part := s.parts[id]
	var gens []circuit.ElemID
	for i, g := range s.c.Generators() {
		if i%s.p == id {
			gens = append(gens, g)
		}
	}
	inBuf := make([]logic.Value, 8)
	outBuf := make([]logic.Value, 4)

	// Step t computes node values for t+1: read side t&1, write side
	// (t+1)&1. The final step is Horizon-2 -> values at Horizon-1.
	for t := s.startT; t < s.opts.Horizon-1; t++ {
		if sa := s.stopAt.Load(); sa > 0 && t >= circuit.Time(sa) {
			return
		}
		// Periodic checkpoint at the step boundary: every worker computes
		// the same due(t), so the gang meets at one extra (uncounted)
		// barrier while worker 0 captures the quiesced state. The previous
		// end-of-step barrier already synchronised everyone, so a single
		// extra Wait suffices and the counted BarrierWaits total matches an
		// uninterrupted run's.
		if s.checkpointDue(t) {
			// Ready gates the capture, not the barrier: every worker still
			// meets here (the predicate is pure), and worker 0 skips packing
			// a snapshot the throttled writer would only coalesce away.
			if id == 0 && s.ckptW.Ready() {
				if err := s.saveCheckpoint(t); err != nil {
					s.ckptErr = err // published by the barrier release below
				}
			}
			if !s.bar.Wait(&sense) {
				return
			}
			if s.ckptErr != nil {
				return
			}
		}
		if id == 0 {
			s.opts.Guard.Progress(int64(t))
			if s.cancel.Cancelled() {
				s.stopAt.CompareAndSwap(0, int64(t)+1)
			}
		}
		cur := s.buf[t&1]
		next := s.buf[(t+1)&1]

		for _, g := range gens {
			el := &s.c.Elems[g]
			s.write(id, el.Out[0], t+1, el.GenValueAt(t+1), cur, next)
		}
		for _, eid := range part {
			el := &s.c.Elems[eid]
			s.wc[id].Evals++
			if s.chaos != nil {
				s.chaos.Eval()
			}
			if cap(inBuf) < len(el.In) {
				inBuf = make([]logic.Value, len(el.In))
			}
			in := inBuf[:len(el.In)]
			for i, n := range el.In {
				in[i] = cur[n]
			}
			if cap(outBuf) < len(el.Out) {
				outBuf = make([]logic.Value, len(el.Out))
			}
			out := outBuf[:len(el.Out)]
			el.Eval(in, s.state[eid], out)
			if s.opts.CostSpin > 0 {
				circuit.Spin(el.Cost * s.opts.CostSpin)
			}
			for p, n := range el.Out {
				s.write(id, n, t+1, out[p], cur, next)
			}
		}

		t0 := time.Now()
		s.wc[id].BarrierWaits++
		ok := s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}
	}
}

// checkpointDue reports whether the gang snapshots at the top of step t.
// Every worker evaluates the same pure predicate, so they agree without
// communication.
func (s *sim) checkpointDue(t circuit.Time) bool {
	plan := s.opts.Checkpoint
	return plan.Enabled() && t > s.startT && int64(t)%plan.Every == 0
}

// saveCheckpoint writes a snapshot of the quiesced state at the top of the
// given step: node values for time step, element state and counters through
// step-1. Only worker 0 (or the post-run single thread) calls it.
func (s *sim) saveCheckpoint(step circuit.Time) error {
	plan := s.opts.Checkpoint
	snap := &checkpoint.Snapshot{
		Engine:  plan.Engine,
		Digest:  plan.Digest,
		Step:    int64(step),
		Workers: append([]stats.WorkerCounters(nil), s.wc...),
		Values:  checkpoint.PackValues(s.buf[int(step)&1]),
	}
	snap.ElemState = make([][]checkpoint.RawValue, len(s.state))
	for i, st := range s.state {
		if len(st) > 0 {
			snap.ElemState[i] = checkpoint.PackValues(st)
		}
	}
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok {
		snap.HasTrace = true
		for _, ch := range rec.DumpChanges() {
			snap.Trace = append(snap.Trace, checkpoint.TraceChange{
				Node:  int32(ch.Node),
				T:     int64(ch.Time),
				Value: checkpoint.PackValue(ch.Value),
			})
		}
	}
	// The snapshot is a deep copy; the background writer makes it durable
	// (and fires the plan's OnSave) off the gang's critical path.
	return s.ckptW.Save(snap)
}

// restore rebuilds the simulator from a digest-verified snapshot, validating
// every structural property so failures are errors, never panics.
func (s *sim) restore(snap *checkpoint.Snapshot) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("parsim: resume (compiled): %s", fmt.Sprintf(format, args...))
	}
	if len(snap.Values) != len(s.c.Nodes) {
		return bad("snapshot has %d node values for a %d-node circuit", len(snap.Values), len(s.c.Nodes))
	}
	vals, err := checkpoint.UnpackValues(snap.Values)
	if err != nil {
		return bad("node values: %v", err)
	}
	for i := range s.c.Nodes {
		if vals[i].Width() != s.c.Nodes[i].Width {
			return bad("node %d width mismatch", i)
		}
	}
	if len(snap.ElemState) != len(s.c.Elems) {
		return bad("snapshot has %d element states for %d elements", len(snap.ElemState), len(s.c.Elems))
	}
	newState := make([][]logic.Value, len(s.state))
	for i := range s.state {
		if len(snap.ElemState[i]) != len(s.state[i]) {
			return bad("element %d has %d state values, want %d", i, len(snap.ElemState[i]), len(s.state[i]))
		}
		if len(s.state[i]) == 0 {
			continue
		}
		st, err := checkpoint.UnpackValues(snap.ElemState[i])
		if err != nil {
			return bad("element %d state: %v", i, err)
		}
		newState[i] = st
	}
	if len(snap.Workers) != s.p {
		return bad("snapshot has %d worker counter rows, want %d", len(snap.Workers), s.p)
	}
	// All validated; commit. Both buffer sides take the snapshot values:
	// every driven node is fully rewritten each step and every undriven
	// node stays constant, so the resumed double-buffer sequence matches
	// the uninterrupted one exactly.
	copy(s.buf[0], vals)
	copy(s.buf[1], vals)
	for i := range newState {
		if newState[i] != nil {
			s.state[i] = newState[i]
		}
	}
	copy(s.wc, snap.Workers)
	s.startT = circuit.Time(snap.Step)
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok && snap.HasTrace {
		chs := make([]trace.ChangeRecord, len(snap.Trace))
		for i, tc := range snap.Trace {
			v, err := tc.Value.Unpack()
			if err != nil {
				return bad("trace change %d: %v", i, err)
			}
			chs[i] = trace.ChangeRecord{Node: circuit.NodeID(tc.Node), Time: circuit.Time(tc.T), Value: v}
		}
		rec.Preload(chs)
	}
	return nil
}

// write stores a node's next value, recording a change when it differs from
// the current one. Only the node's single driver (or generator owner) calls
// this for a given node, so the slots race with nobody.
func (s *sim) write(id int, n circuit.NodeID, t circuit.Time, v logic.Value,
	cur, next []logic.Value) {
	next[n] = v
	if v.Equal(cur[n]) {
		return
	}
	s.wc[id].NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
}
