package compiled

import (
	"context"

	"parsim/internal/circuit"
	"parsim/internal/engine"
)

// eng adapts the compiled-mode simulator to the unified engine layer.
type eng struct{}

func (eng) Name() string { return "compiled" }

func (eng) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	res, err := RunContext(ctx, c, Options{
		Workers:    cfg.Workers,
		Horizon:    cfg.Horizon,
		Probe:      cfg.Probe,
		CostSpin:   cfg.CostSpin,
		Strategy:   cfg.Strategy,
		Guard:      cfg.Guard,
		Checkpoint: cfg.CkptPlan,
		Resume:     cfg.CkptSnap,
	})
	if res == nil {
		return nil, err
	}
	return &engine.Report{Run: res.Run, Final: res.Final}, err
}

func init() { engine.Register(eng{}, "compiled-mode") }
