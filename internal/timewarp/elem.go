package timewarp

import (
	"fmt"
	"sort"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// twDebug enables expensive invariant checking (tests only).
var twDebug = false

// twTraceElem, when >= 0, prints every step/rollback of that element.
var twTraceElem = circuit.ElemID(-1)

// check verifies cheap structural invariants (cursor bounds, snapshot
// consistency); the sortedness of a port queue is checked locally at each
// insertion instead of globally, keeping debug runs near full speed.
func (rt *elemRT) check(where string) {
	if !twDebug {
		return
	}
	for i := range rt.ports {
		q := &rt.ports[i]
		if q.cursor > len(q.events) {
			panic(fmt.Sprintf("timewarp: %s: elem %d port %d cursor %d > len %d",
				where, rt.id, i, q.cursor, len(q.events)))
		}
	}
	for p := range rt.el.Out {
		for li := range rt.log {
			if int(rt.log[li].sentFrom[p]) > len(rt.outLog[p]) {
				panic(fmt.Sprintf("timewarp: %s: elem %d sentFrom %d > outlog %d",
					where, rt.id, rt.log[li].sentFrom[p], len(rt.outLog[p])))
			}
		}
	}
}

// checkNeighbors verifies sortedness around one just-touched index.
func (rt *elemRT) checkNeighbors(port, idx int) {
	if !twDebug {
		return
	}
	q := &rt.ports[port]
	for _, j := range [2]int{idx, idx + 1} {
		if j <= 0 || j >= len(q.events) {
			continue
		}
		a, b := q.events[j-1], q.events[j]
		if a.t > b.t || (a.t == b.t && a.id >= b.id) {
			panic(fmt.Sprintf("timewarp: elem %d port %d unsorted at %d", rt.id, port, j))
		}
	}
}

// portQ is one input port's event list, sorted by (time, id). Events below
// cursor have been processed; the element's current input value on this
// port is the value of the last processed event.
type portQ struct {
	events []twEvent
	cursor int
}

// next returns the next unprocessed event time, or -1.
func (q *portQ) next() circuit.Time {
	if q.cursor < len(q.events) {
		return q.events[q.cursor].t
	}
	return -1
}

// val returns the port's input value as of the processed prefix.
func (q *portQ) val(width int) logic.Value {
	if q.cursor == 0 {
		return logic.AllX(width)
	}
	return q.events[q.cursor-1].v
}

// outRec is one output event this element has sent (still uncommitted).
type outRec struct {
	t  circuit.Time
	v  logic.Value
	id int64
}

// snapshot is the element's saved state before one processed step; popping
// it undoes the step.
type snapshot struct {
	t        circuit.Time
	cursors  []int32
	state    []logic.Value
	lastOut  []logic.Value
	sentFrom []int32 // outLog lengths before the step
}

// elemRT is one element's Time Warp runtime.
type elemRT struct {
	id      circuit.ElemID
	el      *circuit.Element
	ports   []portQ
	state   []logic.Value
	lastOut []logic.Value
	outLog  [][]outRec
	log     []snapshot
	lvt     circuit.Time
}

func newElemRT(c *circuit.Circuit, e circuit.ElemID) *elemRT {
	el := &c.Elems[e]
	rt := &elemRT{
		id:      e,
		el:      el,
		ports:   make([]portQ, len(el.In)),
		lastOut: make([]logic.Value, len(el.Out)),
		outLog:  make([][]outRec, len(el.Out)),
		lvt:     -1,
	}
	if n := el.NumStateVals(); n > 0 {
		rt.state = make([]logic.Value, n)
		el.InitState(rt.state)
	}
	for p, n := range el.Out {
		rt.lastOut[p] = logic.AllX(c.Nodes[n].Width)
	}
	return rt
}

// nextTime returns the earliest unprocessed input event time, or -1.
func (rt *elemRT) nextTime() circuit.Time {
	min := circuit.Time(-1)
	for i := range rt.ports {
		if t := rt.ports[i].next(); t >= 0 && (min < 0 || t < min) {
			min = t
		}
	}
	return min
}

// searchPos finds the sorted position of (t, id) in a port queue.
func searchPos(events []twEvent, t circuit.Time, id int64) int {
	return sort.Search(len(events), func(i int) bool {
		if events[i].t != t {
			return events[i].t > t
		}
		return events[i].id >= id
	})
}

// insertPort delivers one (possibly anti-) event to this element's port,
// rolling the element back first if the event lands in its past.
func (rt *elemRT) insertPort(s *sim, w int, ev twEvent, port int) {
	q := &rt.ports[port]
	// A straggler is any event at or before the element's local virtual
	// time: the element has already evaluated that moment (possibly with
	// this port silent) and must be rolled back — position in the port
	// queue alone cannot tell, because the port may have been empty.
	if ev.t <= rt.lvt {
		rt.rollback(s, w, ev.t)
	}
	if ev.anti {
		idx := searchPos(q.events, ev.t, ev.id)
		if idx >= len(q.events) || q.events[idx].id != ev.id || q.events[idx].t != ev.t {
			panic("timewarp: anti-message without matching positive")
		}
		if twDebug && idx < q.cursor {
			times := []circuit.Time{}
			for _, e := range q.events {
				times = append(times, e.t)
			}
			logT := []circuit.Time{}
			for _, l := range rt.log {
				logT = append(logT, l.t)
			}
			panic(fmt.Sprintf("timewarp: anti still in past after rollback: elem %d anti(t=%d id=%d) idx %d cursor %d lvt %d eventTimes %v logTimes %v",
				rt.id, ev.t, ev.id, idx, q.cursor, rt.lvt, times, logT))
		}
		q.events = append(q.events[:idx], q.events[idx+1:]...)
		s.wc[w].Cancelled++
		rt.check("anti+")
		return
	}
	idx := searchPos(q.events, ev.t, ev.id)
	if twDebug && idx < q.cursor {
		panic(fmt.Sprintf("timewarp: straggler still in past after rollback: elem %d idx %d cursor %d t %d lvt %d",
			rt.id, idx, q.cursor, ev.t, rt.lvt))
	}
	q.events = append(q.events, twEvent{})
	copy(q.events[idx+1:], q.events[idx:])
	q.events[idx] = ev
	rt.checkNeighbors(port, idx)
	rt.check("insert+")
}

// rollback undoes every processed step at time >= t, restoring snapshots
// and cancelling the outputs those steps sent. Anti-message delivery is
// deferred until the element is consistent again: a cancellation can
// cascade into another rollback that sends anti-messages right back here,
// and re-entering a half-undone element would corrupt its log.
func (rt *elemRT) rollback(s *sim, w int, t circuit.Time) {
	if rt.id == twTraceElem {
		fmt.Printf("TRACE elem %d rollback to t=%d lvt=%d logLen=%d\n", rt.id, t, rt.lvt, len(rt.log))
	}
	s.wc[w].Rollbacks++
	var antis []twEvent
	for len(rt.log) > 0 && rt.log[len(rt.log)-1].t >= t {
		entry := &rt.log[len(rt.log)-1]
		s.wc[w].RolledBack++
		for p := range rt.el.Out {
			lg := rt.outLog[p]
			for _, rec := range lg[entry.sentFrom[p]:] {
				antis = append(antis, twEvent{
					node: rt.el.Out[p], t: rec.t, v: rec.v, id: rec.id, anti: true,
				})
			}
			rt.outLog[p] = lg[:entry.sentFrom[p]]
		}
		for i := range rt.ports {
			rt.ports[i].cursor = int(entry.cursors[i])
		}
		copy(rt.state, entry.state)
		copy(rt.lastOut, entry.lastOut)
		rt.log = rt.log[:len(rt.log)-1]
	}
	if len(rt.log) > 0 {
		rt.lvt = rt.log[len(rt.log)-1].t
	} else {
		rt.lvt = -1
	}
	rt.check("rollback")
	for _, a := range antis {
		s.deliver(w, a)
	}
}

// process runs one optimistic step: consume the earliest unprocessed input
// time, evaluate, send changed outputs. Returns false when no input events
// are pending.
func (rt *elemRT) process(s *sim, w int, wk *twWorker) bool {
	tmin := rt.nextTime()
	if tmin < 0 {
		return false
	}
	// Save the before-state.
	snap := snapshot{
		t:        tmin,
		cursors:  make([]int32, len(rt.ports)),
		lastOut:  append([]logic.Value(nil), rt.lastOut...),
		sentFrom: make([]int32, len(rt.el.Out)),
	}
	for i := range rt.ports {
		snap.cursors[i] = int32(rt.ports[i].cursor)
	}
	if rt.state != nil {
		snap.state = append([]logic.Value(nil), rt.state...)
	}
	for p := range rt.el.Out {
		snap.sentFrom[p] = int32(len(rt.outLog[p]))
	}

	// Consume and evaluate.
	if cap(wk.inBuf) < len(rt.ports) {
		wk.inBuf = make([]logic.Value, len(rt.ports))
	}
	in := wk.inBuf[:len(rt.ports)]
	for i := range rt.ports {
		q := &rt.ports[i]
		for q.cursor < len(q.events) && q.events[q.cursor].t == tmin {
			q.cursor++
			s.wc[w].EventsUsed++
		}
		in[i] = q.val(s.c.Nodes[rt.el.In[i]].Width)
	}
	if cap(wk.outBuf) < len(rt.el.Out) {
		wk.outBuf = make([]logic.Value, len(rt.el.Out))
	}
	out := wk.outBuf[:len(rt.el.Out)]
	rt.el.Eval(in, rt.state, out)
	s.wc[w].Evals++
	if s.chaos != nil {
		s.chaos.Eval()
	}
	if s.opts.CostSpin > 0 {
		circuit.Spin(rt.el.Cost * s.opts.CostSpin)
	}
	if rt.id == twTraceElem {
		fmt.Printf("TRACE elem %d step t=%d in=%v out=%v lvt=%d\n", rt.id, tmin, in, out, rt.lvt)
	}
	for p, n := range rt.el.Out {
		if out[p].Equal(rt.lastOut[p]) {
			continue
		}
		rt.lastOut[p] = out[p]
		tOut := tmin + rt.el.Delay
		if tOut >= s.opts.Horizon {
			continue
		}
		id := wk.nextID()
		rt.outLog[p] = append(rt.outLog[p], outRec{t: tOut, v: out[p], id: id})
		s.deliver(w, twEvent{node: n, t: tOut, v: out[p], id: id})
	}
	rt.log = append(rt.log, snap)
	rt.lvt = tmin
	return true
}

// commit releases everything behind the commit horizon: log entries,
// output records (which become the node's official history) and processed
// input events no longer needed for rollback.
func (rt *elemRT) commit(s *sim, w int, upTo circuit.Time) {
	k := 0
	for k < len(rt.log) && rt.log[k].t < upTo {
		k++
	}
	if k > 0 {
		rt.log = append(rt.log[:0:0], rt.log[k:]...)
	}
	for p, n := range rt.el.Out {
		lg := rt.outLog[p]
		k = 0
		for k < len(lg) && lg[k].t < upTo {
			s.final[n] = lg[k].v
			s.wc[w].NodeUpdates++
			if s.probe != nil {
				s.probe.OnChange(n, lg[k].t, lg[k].v)
			}
			k++
		}
		if k > 0 {
			rt.outLog[p] = append(lg[:0:0], lg[k:]...)
			// Surviving snapshots recorded outLog lengths that included the
			// dropped prefix.
			for li := range rt.log {
				rt.log[li].sentFrom[p] -= int32(k)
			}
		}
	}
	for i := range rt.ports {
		q := &rt.ports[i]
		// Drop committed events, but always keep the last one below the
		// commit horizon: rollback can rewind the cursor to the committed
		// boundary, and that event then carries the port's value. (Every
		// event below the GVT is processed, so this never exceeds cursor.)
		lb := 0
		for lb < len(q.events) && q.events[lb].t < upTo {
			lb++
		}
		k = lb - 1
		if k < 0 {
			k = 0
		}
		if k > q.cursor {
			k = q.cursor
		}
		if k > 0 {
			q.events = append(q.events[:0:0], q.events[k:]...)
			q.cursor -= k
			// Surviving snapshots index into the same port queue; their
			// saved cursors all lie beyond the dropped prefix (the dropped
			// events were processed before every surviving step).
			for li := range rt.log {
				rt.log[li].cursors[i] -= int32(k)
			}
		}
	}
	rt.commitCheck()
}

// commitCheck is called at the end of commit in debug mode.
func (rt *elemRT) commitCheck() { rt.check("commit") }

// saved returns the element's live saved-state footprint (snapshots plus
// uncommitted output records plus buffered input events).
func (rt *elemRT) saved() int64 {
	n := int64(len(rt.log))
	for p := range rt.outLog {
		n += int64(len(rt.outLog[p]))
	}
	for i := range rt.ports {
		n += int64(len(rt.ports[i].events))
	}
	return n
}
