package timewarp

import (
	"context"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

// crossCheck compares committed Time Warp output against the sequential
// oracle, event for event.
func init() { twDebug = true }

func crossCheck(t *testing.T, c *circuit.Circuit, horizon circuit.Time, opts Options) *Result {
	t.Helper()
	ref := trace.NewRecorder()
	seqRes := seq.Run(c, seq.Options{Horizon: horizon, Probe: ref})

	got := trace.NewRecorder()
	opts.Horizon = horizon
	opts.Probe = got
	res := Run(c, opts)

	if d := trace.Diff(c, ref, got); d != "" {
		t.Fatalf("%s (P=%d): history mismatch: %s", c.Name, opts.Workers, d)
	}
	if res.Run.NodeUpdates != seqRes.Run.NodeUpdates {
		t.Errorf("committed updates %d != sequential %d", res.Run.NodeUpdates, seqRes.Run.NodeUpdates)
	}
	for i := range res.Final {
		if !res.Final[i].Equal(seqRes.Final[i]) {
			t.Errorf("final value of node %s differs: %v vs %v",
				c.Nodes[i].Name, res.Final[i], seqRes.Final[i])
		}
	}
	return res
}

func TestMatchesSequentialOnArray(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 8, Cols: 8, ActiveRows: 6, TogglePeriod: 2})
	for _, p := range []int{1, 2, 3, 4} {
		crossCheck(t, c, 300, Options{Workers: p})
	}
}

func TestMatchesSequentialOnFuncMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.InPeriod = 64
	c := gen.FuncMultiplier(cfg)
	for _, p := range []int{1, 3} {
		crossCheck(t, c, 512, Options{Workers: p})
	}
}

func TestMatchesSequentialOnGateMultiplier(t *testing.T) {
	cfg := gen.DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 128
	c := gen.GateMultiplier(cfg)
	crossCheck(t, c, 512, Options{Workers: 4})
}

func TestMatchesSequentialOnCPU(t *testing.T) {
	cfg := gen.DefaultCPU()
	c := gen.CPU(cfg)
	crossCheck(t, c, gen.CPUHorizon(cfg, 20), Options{Workers: 3})
}

func TestMatchesSequentialOnFeedback(t *testing.T) {
	for _, p := range []int{1, 3} {
		crossCheck(t, gen.FeedbackChain(13), 600, Options{Workers: p})
	}
}

func TestMatchesSequentialOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := gen.RandomCircuit(seed, 80)
		crossCheck(t, c, 200, Options{Workers: 3})
	}
}

func TestSmallWindowForcesRollbacks(t *testing.T) {
	// A small optimism window with several workers on a deep circuit makes
	// cross-partition stragglers likely; the simulator must both roll back
	// and still produce exact results.
	cfg := gen.DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 64
	c := gen.GateMultiplier(cfg)
	res := crossCheck(t, c, 512, Options{Workers: 4, StepsPerRound: 64})
	t.Logf("rollbacks=%d cancelled=%d rolledBack=%d peakLog=%d rounds=%d",
		res.Rollbacks, res.Cancelled, res.RolledBack, res.PeakLog, res.GVTRounds)
	if res.Rollbacks == 0 {
		t.Log("no rollbacks occurred; optimism never misfired on this host")
	}
}

func TestStateStorageGrowsWithOptimism(t *testing.T) {
	// The paper's criticism: optimistic execution must keep state to roll
	// back to. More optimism per round -> more saved state.
	c := gen.InverterArray(gen.InverterArrayConfig{Rows: 16, Cols: 16, ActiveRows: 16, TogglePeriod: 1})
	small := Run(c, Options{Workers: 2, Horizon: 160, StepsPerRound: 64})
	big := Run(c, Options{Workers: 2, Horizon: 160, StepsPerRound: 4096})
	if big.PeakLog <= small.PeakLog {
		t.Errorf("peak saved state did not grow with optimism: %d vs %d",
			big.PeakLog, small.PeakLog)
	}
	if small.GVTRounds <= big.GVTRounds {
		t.Errorf("smaller windows should need more GVT rounds: %d vs %d",
			small.GVTRounds, big.GVTRounds)
	}
}

func TestBadWorkerCountError(t *testing.T) {
	res, err := RunContext(context.Background(), gen.FeedbackChain(3), Options{Workers: 0, Horizon: 10})
	if err == nil {
		t.Fatal("Workers=0 did not return an error")
	}
	if res != nil {
		t.Fatal("bad config must not produce a result")
	}
}

func TestZeroHorizon(t *testing.T) {
	res := Run(gen.FeedbackChain(3), Options{Workers: 2, Horizon: 0})
	if res.Run.NodeUpdates != 0 {
		t.Errorf("updates at zero horizon: %d", res.Run.NodeUpdates)
	}
}
