package timewarp

import (
	"container/heap"
	"time"

	"parsim/internal/barrier"
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// twWorker is the per-goroutine context: a lazy min-heap over owned
// elements' next event times plus scratch buffers.
type twWorker struct {
	s  *sim
	id int

	h     elemHeap
	idGen int64
	// staged holds outgoing cross-partition events until the next send
	// window: mailboxes may only be appended to while their owner is not
	// draining them, which the round barriers guarantee for phase B.
	staged []stagedEvent
	inBuf  []logic.Value
	outBuf []logic.Value
}

type stagedEvent struct {
	owner int
	ev    twEvent
}

// nextID mints a message id unique across workers (worker id in the low
// bits) and increasing per worker.
func (wk *twWorker) nextID() int64 {
	wk.idGen++
	return wk.idGen*int64(wk.s.p) + int64(wk.id)
}

// push (re)registers an element in the scheduling heap.
func (wk *twWorker) push(e circuit.ElemID) {
	if t := wk.s.rts[e].nextTime(); t >= 0 {
		heap.Push(&wk.h, heapEntry{t: t, e: e})
	}
}

// deliver routes one event (or anti-event) to every consumer of the node:
// locally by direct insertion, remotely via staging (flushed into the
// mailboxes during the next safe window). Each remote worker receives one
// copy and fans it out to its own consumers on arrival.
func (s *sim) deliver(w int, ev twEvent) {
	wk := s.wks[w]
	var sentTo [8]int
	nSent := 0
	for _, pr := range s.c.Nodes[ev.node].Fanout {
		owner := s.elemOwner[pr.Elem]
		if owner == w {
			s.rts[pr.Elem].insertPort(s, w, ev, int(pr.Port))
			wk.push(pr.Elem)
			continue
		}
		dup := false
		for i := 0; i < nSent; i++ {
			if sentTo[i] == owner {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if nSent < len(sentTo) {
			sentTo[nSent] = owner
			nSent++
		} else {
			// Fanout wider than the dedup window: fall back to scanning the
			// staged list for this event.
			for _, se := range wk.staged {
				if se.owner == owner && se.ev.id == ev.id && se.ev.node == ev.node && se.ev.anti == ev.anti {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		wk.staged = append(wk.staged, stagedEvent{owner: owner, ev: ev})
	}
}

func (s *sim) worker(w int) {
	wk := s.wks[w]
	var sense barrier.Sense
	var idle time.Duration
	defer func() { s.wc[w].Idle = idle }()

	// Initial scheduling of seeded elements.
	for _, e := range s.owned[w] {
		wk.push(e)
	}

	for {
		// Phase A: drain cross-partition mail from the previous round.
		// Rollbacks triggered here stage their anti-messages; nothing may
		// touch another worker's mailbox while it could be draining.
		for src := 0; src < s.p; src++ {
			box := s.mailbox[w][src]
			for _, ev := range box {
				for _, pr := range s.c.Nodes[ev.node].Fanout {
					if s.elemOwner[pr.Elem] == w {
						s.rts[pr.Elem].insertPort(s, w, ev, int(pr.Port))
						wk.push(pr.Elem)
					}
				}
			}
			s.mailbox[w][src] = box[:0]
		}
		t0 := time.Now()
		s.wc[w].BarrierWaits++
		ok := s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}

		// Phase B: flush staged mail, then process optimistically, lowest
		// timestamp first. Every mailbox owner is busy in its own phase B,
		// so appends cannot race with drains.
		for _, se := range wk.staged {
			s.mailbox[se.owner][w] = append(s.mailbox[se.owner][w], se.ev)
		}
		wk.staged = wk.staged[:0]
		steps := 0
		for steps < s.opts.StepsPerRound && wk.h.Len() > 0 {
			top := heap.Pop(&wk.h).(heapEntry)
			rt := s.rts[top.e]
			if t := rt.nextTime(); t < 0 || t != top.t {
				if t >= 0 {
					heap.Push(&wk.h, heapEntry{t: t, e: top.e})
				}
				continue // stale entry
			}
			if rt.process(s, w, wk) {
				steps++
			}
			wk.push(top.e)
		}
		// Flush mail staged by phase-B rollbacks and sends.
		for _, se := range wk.staged {
			s.mailbox[se.owner][w] = append(s.mailbox[se.owner][w], se.ev)
		}
		wk.staged = wk.staged[:0]

		t0 = time.Now()
		s.wc[w].BarrierWaits++
		ok = s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}

		// Phase C: GVT. Cancellation rides the existing round protocol:
		// worker 0 observes the flag here and declares the run done, every
		// worker sees s.done after the phase barrier, and the gang leaves
		// together at the end of phase D — no barrier is left short.
		if w == 0 {
			s.computeGVT()
			s.roundsRun++
			// Publishing the GVT makes livelock observable: rounds that
			// spin without advancing it never reset the watchdog.
			s.opts.Guard.Progress(int64(s.gvt))
			if s.cancel.Cancelled() {
				s.done = true
			}
		}
		t0 = time.Now()
		s.wc[w].BarrierWaits++
		ok = s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}

		// Phase D: account saved state, then commit behind the GVT.
		var savedNow int64
		for _, e := range s.owned[w] {
			savedNow += s.rts[e].saved()
		}
		if savedNow > s.peakLog[w] {
			s.peakLog[w] = savedNow
		}
		upTo := s.gvt
		if upTo > s.opts.Horizon {
			upTo = s.opts.Horizon
		}
		for _, e := range s.owned[w] {
			s.rts[e].commit(s, w, upTo)
		}
		if s.done {
			return
		}
		t0 = time.Now()
		s.wc[w].BarrierWaits++
		ok = s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}
	}
}

// computeGVT scans every pending event — element queues and undelivered
// mail — for the minimum timestamp. Nothing below it can be rolled back.
func (s *sim) computeGVT() {
	min := circuit.Time(-1)
	consider := func(t circuit.Time) {
		if t >= 0 && (min < 0 || t < min) {
			min = t
		}
	}
	for _, rt := range s.rts {
		if rt == nil {
			continue
		}
		consider(rt.nextTime())
	}
	for w := range s.mailbox {
		for src := range s.mailbox[w] {
			for _, ev := range s.mailbox[w][src] {
				consider(ev.t)
			}
		}
	}
	if min < 0 || min >= s.opts.Horizon {
		s.gvt = s.opts.Horizon
		s.done = true
		return
	}
	s.gvt = min
}

type heapEntry struct {
	t circuit.Time
	e circuit.ElemID
}

type elemHeap []heapEntry

func (h elemHeap) Len() int { return len(h) }
func (h elemHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].e < h[j].e
}
func (h elemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *elemHeap) Push(x any)   { *h = append(*h, x.(heapEntry)) }
func (h *elemHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
