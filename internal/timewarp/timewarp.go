// Package timewarp implements the rollback-based optimistic simulator the
// paper positions its asynchronous algorithm against (Arnold's parallel
// simulator, built on Jefferson's Virtual Time): elements process input
// events speculatively in local-time order; a straggler event arriving in
// an element's past forces a rollback that restores a state snapshot and
// cancels previously sent events with anti-messages.
//
// The paper's two criticisms are made measurable here: Result counts
// rollbacks and cancelled events ("performance primarily limited by
// detecting and processing the rollbacks"), and PeakLog records the high-
// water mark of saved state ("the rollback mechanism leads to a major
// state storage problem").
//
// Execution is windowed: workers process optimistically within a round,
// then synchronise to exchange cross-partition events, compute the global
// virtual time (GVT) and commit everything behind it — a standard
// synchronous-GVT Time Warp organisation. Committed histories are
// identical to the conservative simulators', which the tests enforce.
package timewarp

import (
	"context"
	"sync"
	"time"

	"parsim/internal/barrier"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Workers  int          // parallel workers; >= 1
	Horizon  circuit.Time // simulate t in [0, Horizon)
	Probe    trace.Probe  // optional observer (committed events only)
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	Strategy partition.Strategy
	// StepsPerRound caps optimistic progress between GVT rounds
	// (default 2048 element steps per worker).
	StepsPerRound int
	// Guard is the optional run supervisor: worker panics are contained,
	// worker 0 publishes the GVT as progress (a pinned GVT — the paper's
	// livelock — therefore stalls out), and a trip aborts the round
	// barrier so no survivor spins for a dead peer.
	Guard *guard.Supervisor
}

// Result is the outcome of a run.
type Result struct {
	Run        stats.Run
	Final      []logic.Value
	Rollbacks  int64 // rollback episodes
	Cancelled  int64 // events annihilated by anti-messages
	RolledBack int64 // processed element steps undone
	PeakLog    int64 // peak saved state: log entries + uncommitted events
	GVTRounds  int64 // synchronisation rounds
}

// twEvent is a (possibly anti-) message carrying one node change.
type twEvent struct {
	node circuit.NodeID
	t    circuit.Time
	v    logic.Value
	id   int64 // matches positive and anti messages
	anti bool
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	rts       []*elemRT // indexed by ElemID (nil for generators)
	elemOwner []int
	owned     [][]circuit.ElemID
	mailbox   [][][]twEvent // [target][source]

	wks       []*twWorker
	bar       *barrier.Barrier
	gvt       circuit.Time
	done      bool
	roundsRun int64
	cancel    *engine.CancelFlag
	chaos     *guard.ChaosProbe // captured once; nil on production runs

	probe trace.Probe
	final []logic.Value

	wc      []stats.WorkerCounters
	peakLog []int64
}

// Run simulates the circuit with optimistic rollback-based parallelism.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: worker 0 observes the cancelled ctx
// in the GVT phase and declares the run done, so all workers commit what is
// behind the GVT and exit together at the end of the round; the partial
// result is returned with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	if opts.StepsPerRound <= 0 {
		opts.StepsPerRound = 2048
	}
	p := opts.Workers
	parts := partition.Split(c, p, opts.Strategy)
	s := &sim{
		c:         c,
		opts:      opts,
		p:         p,
		rts:       make([]*elemRT, len(c.Elems)),
		elemOwner: make([]int, len(c.Elems)),
		owned:     parts,
		mailbox:   make([][][]twEvent, p),
		bar:       barrier.New(p),
		probe:     opts.Probe,
		final:     make([]logic.Value, len(c.Nodes)),
		wc:        make([]stats.WorkerCounters, p),
		peakLog:   make([]int64, p),
		cancel:    engine.WatchCancel(ctx),
		chaos:     opts.Guard.Chaos(),
	}
	defer s.cancel.Release()
	opts.Guard.OnTrip(s.bar.Abort)
	s.wks = make([]*twWorker, p)
	for w := range s.mailbox {
		s.mailbox[w] = make([][]twEvent, p)
		s.wks[w] = &twWorker{s: s, id: w}
	}
	for w, part := range parts {
		for _, e := range part {
			s.elemOwner[e] = w
			s.rts[e] = newElemRT(c, e)
		}
	}
	for _, g := range c.Generators() {
		s.elemOwner[g] = int(g) % p
	}
	for i := range c.Nodes {
		s.final[i] = logic.AllX(c.Nodes[i].Width)
	}

	// Seed: generators inject their full behaviour as initial events,
	// delivered directly (single-threaded, pre-start).
	var seedID int64 = -1 // negative ids: generator events, never cancelled
	for _, g := range c.Generators() {
		el := &c.Elems[g]
		n := el.Out[0]
		last := logic.AllX(c.Nodes[n].Width)
		var t circuit.Time
		for t < opts.Horizon {
			if s.cancel.Cancelled() {
				break // generators can span huge horizons; stop materialising
			}
			v := el.GenValueAt(t)
			if !v.Equal(last) {
				last = v
				ev := twEvent{node: n, t: t, v: v, id: seedID}
				seedID--
				s.final[n] = v
				s.wc[0].NodeUpdates++
				if s.probe != nil {
					s.probe.OnChange(n, t, v)
				}
				for _, pr := range c.Nodes[n].Fanout {
					s.rts[pr.Elem].insertPort(s, 0, ev, int(pr.Port))
				}
			}
			next, ok := el.GenNextChange(t)
			if !ok {
				break
			}
			t = next
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer opts.Guard.Recover(w, "time-warp round loop")
			s.worker(w)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &Result{Final: s.final, GVTRounds: s.roundsRun}
	res.Run = stats.Run{
		Algorithm: "time-warp",
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
	}
	for w := 0; w < p; w++ {
		s.wc[w].ModelCalls = s.wc[w].Evals
		if s.peakLog[w] > res.PeakLog {
			res.PeakLog = s.peakLog[w]
		}
	}
	res.Run.Aggregate(wall, s.wc)
	tot := res.Run.Totals()
	res.Rollbacks = tot.Rollbacks
	res.Cancelled = tot.Cancelled
	res.RolledBack = tot.RolledBack
	return res, s.cancel.Err(ctx)
}
