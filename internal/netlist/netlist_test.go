package netlist

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

// roundTrip serialises and reparses a circuit, then checks the reparsed
// circuit behaves identically by comparing full simulation histories.
func roundTrip(t *testing.T, c *circuit.Circuit, horizon circuit.Time) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("write: %v", err)
	}
	c2, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if c2.Name != c.Name {
		t.Errorf("name %q != %q", c2.Name, c.Name)
	}
	if len(c2.Nodes) != len(c.Nodes) || len(c2.Elems) != len(c.Elems) {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d elems",
			len(c2.Nodes), len(c.Nodes), len(c2.Elems), len(c.Elems))
	}
	r1 := trace.NewRecorder()
	seq.Run(c, seq.Options{Horizon: horizon, Probe: r1})
	r2 := trace.NewRecorder()
	seq.Run(c2, seq.Options{Horizon: horizon, Probe: r2})
	if d := trace.Diff(c, r1, r2); d != "" {
		t.Fatalf("round-tripped circuit behaves differently: %s", d)
	}
}

func TestRoundTripAllGenerated(t *testing.T) {
	mcfg := gen.DefaultMultiplier()
	mcfg.N = 8
	cases := []struct {
		c       *circuit.Circuit
		horizon circuit.Time
	}{
		{gen.InverterArray(gen.InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 3, TogglePeriod: 2}), 100},
		{gen.FeedbackChain(7), 200},
		{gen.FuncMultiplier(gen.DefaultMultiplier()), 300},
		{gen.GateMultiplier(mcfg), 200},
		{gen.CPU(gen.DefaultCPU()), 700},
		{gen.RandomCircuit(3, 50), 150},
	}
	for _, tc := range cases {
		roundTrip(t, tc.c, tc.horizon)
	}
}

func TestReadBasic(t *testing.T) {
	src := `
# a tiny circuit
circuit tiny
node clk 1
node q 1
elem clock cg delay=1 out=clk period=10 phase=0 duty=5
elem not inv delay=2 out=q in=clk
`
	c, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if c.Name != "tiny" || len(c.Elems) != 2 {
		t.Fatalf("parsed %v", c)
	}
	el := &c.Elems[c.ElByName["inv"]]
	if el.Kind != circuit.KindNot || el.Delay != 2 {
		t.Errorf("inv parsed wrong: %+v", el)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"node a 1", "before circuit"},
		{"circuit x\ncircuit y", "duplicate circuit"},
		{"circuit x\nnode a", "name and width"},
		{"circuit x\nnode a 1\nelem bogus e out=a", "unknown element kind"},
		{"circuit x\nnode a 1\nelem not e out=a in=missing", "undeclared node"},
		{"circuit x\nnode a 1\nelem not e out=a badattr", "bad attribute"},
		{"circuit x\nnode a 1\nelem not e out=a wat=1", "unknown attribute"},
		{"circuit x\nnode a 1\nelem const c out=a init=4'b10", "attribute"},
		{"circuit x\nwat", "unknown directive"},
		{"", "no circuit"},
		{"circuit x\nnode a 1\nelem not", "kind and name"},
		{"circuit x\nnode a 1\nelem clock cg out=a period=ten", "attribute"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Read(%q) err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

// TestReadDuplicateDeclarations: repeated node/elem names are parse
// errors that point at both the duplicate and the original line.
func TestReadDuplicateDeclarations(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{
			"circuit x\nnode a 1\nnode a 1\n",
			[]string{"netlist:3", `node "a" already declared at line 2`},
		},
		{
			"circuit x\nnode a 1\nnode b 1\nelem not g out=a in=b\nelem not g out=b in=a\n",
			[]string{"netlist:5", `element "g" already declared at line 4`},
		},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.src))
		if err == nil {
			t.Errorf("Read(%q) accepted a duplicate declaration", tc.src)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Read(%q) err = %v, want containing %q", tc.src, err, want)
			}
		}
	}
}

// TestReadErrorsCarryLineNumbers: every parse-stage failure names the
// offending line as netlist:<n>.
func TestReadErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		line string
	}{
		{"circuit x\nnode a\n", "netlist:2"},
		{"circuit x\nnode a 1\n# comment\nelem bogus e out=a\n", "netlist:4"},
		{"circuit x\n\n\nwat\n", "netlist:4"},
		{"circuit x\nnode a 1\nelem not e out=a in=missing\n", "netlist:3"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.src))
		if err == nil || !strings.Contains(err.Error(), tc.line) {
			t.Errorf("Read(%q) err = %v, want containing %q", tc.src, err, tc.line)
		}
	}
}

func TestValidationErrorsPropagate(t *testing.T) {
	// Undriven node must fail circuit validation at Build.
	src := "circuit x\nnode a 1\nnode b 1\nelem not e out=b in=a"
	if _, err := Read(strings.NewReader(src)); err == nil ||
		!strings.Contains(err.Error(), "no driver") {
		t.Errorf("err = %v", err)
	}
}

func TestSummary(t *testing.T) {
	c := gen.FeedbackChain(5)
	s := Summary(c)
	for _, want := range []string{"feedback-chain-5", "nodes:", "not", "mux2"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestWriteIdempotent: write -> read -> write must produce identical bytes,
// proving the format captures everything the builder needs.
func TestWriteIdempotent(t *testing.T) {
	circuits := []*circuit.Circuit{
		gen.FeedbackChain(9),
		gen.FuncMultiplier(gen.DefaultMultiplier()),
		gen.CPU(gen.DefaultCPU()),
		gen.RandomCircuit(7, 60),
	}
	for _, c := range circuits {
		var first bytes.Buffer
		if err := Write(&first, c); err != nil {
			t.Fatal(err)
		}
		c2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		var second bytes.Buffer
		if err := Write(&second, c2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: serialisation not idempotent", c.Name)
		}
	}
}

// validNet returns a small well-formed netlist for the limit tests.
func validNet() string {
	return `circuit lim
node a 1
node b 1
node c 1
elem clock osc period=4 out=a
elem not inv1 delay=1 out=b in=a
elem not inv2 delay=1 out=c in=b
`
}

func TestReadLimitedNoLimitsMatchesRead(t *testing.T) {
	c, err := ReadLimited(strings.NewReader(validNet()), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 3 || len(c.Elems) != 3 {
		t.Fatalf("got %d nodes, %d elems", len(c.Nodes), len(c.Elems))
	}
}

func TestReadLimitedByteCap(t *testing.T) {
	src := validNet()
	// Exactly at the cap parses; one byte under the size fails typed.
	if _, err := ReadLimited(strings.NewReader(src), Limits{MaxBytes: int64(len(src))}); err != nil {
		t.Fatalf("at-cap input rejected: %v", err)
	}
	_, err := ReadLimited(strings.NewReader(src), Limits{MaxBytes: int64(len(src)) - 1})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "bytes" {
		t.Fatalf("want bytes LimitError, got %v", err)
	}
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("LimitError does not match ErrLimit: %v", err)
	}
}

func TestReadLimitedByteCapTruncatedTail(t *testing.T) {
	// A cap landing mid-way through a trailing comment: the scanner sees a
	// clean EOF on the truncated stream, but the parse must still fail —
	// silently returning a prefix of an oversized input would hand the
	// caller a different circuit than the one submitted.
	src := validNet() + "# trailing commentary that pushes the input past the cap\n"
	_, err := ReadLimited(strings.NewReader(src), Limits{MaxBytes: int64(len(validNet())) + 10})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "bytes" {
		t.Fatalf("want bytes LimitError, got %v", err)
	}
}

func TestReadLimitedNodeAndElemCaps(t *testing.T) {
	_, err := ReadLimited(strings.NewReader(validNet()), Limits{MaxNodes: 2})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "nodes" || le.Limit != 2 {
		t.Fatalf("want nodes LimitError(2), got %v", err)
	}
	_, err = ReadLimited(strings.NewReader(validNet()), Limits{MaxElems: 1})
	if !errors.As(err, &le) || le.What != "elements" || le.Limit != 1 {
		t.Fatalf("want elements LimitError(1), got %v", err)
	}
	// Caps exactly met parse fine.
	if _, err := ReadLimited(strings.NewReader(validNet()), Limits{MaxNodes: 3, MaxElems: 3}); err != nil {
		t.Fatalf("at-cap counts rejected: %v", err)
	}
}

func TestReadLimitedParseErrorsStayUntyped(t *testing.T) {
	_, err := ReadLimited(strings.NewReader("circuit x\nbogus line\n"), Limits{MaxBytes: 1 << 20})
	if err == nil || errors.Is(err, ErrLimit) {
		t.Fatalf("parse error misclassified: %v", err)
	}
}
