// Package netlist reads and writes the textual circuit interchange format
// used by the command-line tools.
//
// The format is line-oriented:
//
//	# comment
//	circuit <name>
//	node <name> <width>
//	elem <kind> <name> [delay=<ticks>] [out=<n,...>] [in=<n,...>] [key=value ...]
//
// Kind-specific keys: period, phase, duty, seed (integers); lo, shift
// (integers); init (a value literal such as 8'hff or 4'b10xz); times
// (comma-separated integers); values (comma-separated value literals); mem
// (comma-separated unsigned integers).
package netlist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// Write serialises the circuit.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	for i := range c.Nodes {
		fmt.Fprintf(bw, "node %s %d\n", c.Nodes[i].Name, c.Nodes[i].Width)
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		fmt.Fprintf(bw, "elem %s %s delay=%d", circuit.KindName(el.Kind), el.Name, el.Delay)
		if len(el.Out) > 0 {
			fmt.Fprintf(bw, " out=%s", joinNodes(c, el.Out))
		}
		if len(el.In) > 0 {
			fmt.Fprintf(bw, " in=%s", joinNodes(c, el.In))
		}
		writeParams(bw, el)
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func joinNodes(c *circuit.Circuit, ids []circuit.NodeID) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = c.Nodes[id].Name
	}
	return strings.Join(names, ",")
}

func writeParams(w io.Writer, el *circuit.Element) {
	p := &el.Params
	switch el.Kind {
	case circuit.KindConst, circuit.KindDFFR:
		fmt.Fprintf(w, " init=%s", p.Init)
	case circuit.KindClock:
		fmt.Fprintf(w, " period=%d phase=%d duty=%d", p.Period, p.Phase, p.Duty)
	case circuit.KindRand, circuit.KindGray:
		fmt.Fprintf(w, " period=%d seed=%d", p.Period, p.Seed)
	case circuit.KindWave:
		times := make([]string, len(p.Times))
		values := make([]string, len(p.Values))
		for i := range p.Times {
			times[i] = strconv.FormatInt(int64(p.Times[i]), 10)
			values[i] = p.Values[i].String()
		}
		fmt.Fprintf(w, " times=%s values=%s", strings.Join(times, ","), strings.Join(values, ","))
	case circuit.KindSlice:
		fmt.Fprintf(w, " lo=%d", p.Lo)
	case circuit.KindShlK, circuit.KindShrK:
		fmt.Fprintf(w, " shift=%d", p.Shift)
	case circuit.KindRom, circuit.KindRam:
		if len(p.Mem) > 0 {
			words := make([]string, len(p.Mem))
			for i, m := range p.Mem {
				words[i] = strconv.FormatUint(m, 10)
			}
			fmt.Fprintf(w, " mem=%s", strings.Join(words, ","))
		}
	}
}

// Limits bounds untrusted netlist input. The zero value imposes no
// limits, so trusted callers keep the old Read behaviour; services parsing
// network-supplied netlists set all three fields and map the typed
// *LimitError to an HTTP 413 while ordinary parse errors map to 400.
type Limits struct {
	MaxBytes int64 // total input bytes accepted; 0 = unlimited
	MaxNodes int   // node declarations accepted; 0 = unlimited
	MaxElems int   // element declarations accepted; 0 = unlimited
}

// ErrLimit is the sentinel matched by errors.Is for every input-limit
// rejection.
var ErrLimit = errors.New("netlist: input exceeds limit")

// LimitError reports which Limits field an input exceeded. It matches
// ErrLimit via errors.Is.
type LimitError struct {
	What  string // "bytes", "nodes" or "elements"
	Limit int64
}

// Error describes the exceeded limit.
func (e *LimitError) Error() string {
	return fmt.Sprintf("netlist: input exceeds %s limit (%d)", e.What, e.Limit)
}

// Is matches ErrLimit.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// countingReader counts the bytes drawn from the wrapped reader, so the
// byte cap fires on genuine input size, not on scanner buffering.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Read parses a circuit. The returned circuit has been validated by
// circuit.Builder. Input is fully trusted: no size limits apply — use
// ReadLimited for anything that arrived over a network.
func Read(r io.Reader) (*circuit.Circuit, error) {
	return ReadLimited(r, Limits{})
}

// ReadLimited is Read for untrusted input: parsing stops with a typed
// *LimitError as soon as the input exceeds any configured limit, so a
// pathological netlist cannot make the parser allocate unboundedly.
func ReadLimited(r io.Reader, lim Limits) (*circuit.Circuit, error) {
	cr := &countingReader{r: r}
	if lim.MaxBytes > 0 {
		// Read one byte past the cap so "exactly at the limit" still parses
		// while anything larger is detected without draining the input.
		r = io.LimitReader(cr, lim.MaxBytes+1)
	} else {
		r = cr
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *circuit.Builder
	lineNo := 0
	nodes, elems := 0, 0
	// The builder merges repeated Node calls and defers element errors to
	// Build; in the textual format a repeated declaration is a typo, so
	// track first-declaration lines and fail fast with both locations.
	nodeLine := map[string]int{}
	elemLine := map[string]int{}
	for sc.Scan() {
		lineNo++
		if lim.MaxBytes > 0 && cr.n > lim.MaxBytes {
			return nil, &LimitError{What: "bytes", Limit: lim.MaxBytes}
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist:%d: circuit wants one name", lineNo)
			}
			if b != nil {
				return nil, fmt.Errorf("netlist:%d: duplicate circuit line", lineNo)
			}
			b = circuit.NewBuilder(fields[1])
		case "node":
			if b == nil {
				return nil, fmt.Errorf("netlist:%d: node before circuit line", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("netlist:%d: node wants name and width", lineNo)
			}
			width, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("netlist:%d: bad width %q", lineNo, fields[2])
			}
			if first, dup := nodeLine[fields[1]]; dup {
				return nil, fmt.Errorf("netlist:%d: node %q already declared at line %d", lineNo, fields[1], first)
			}
			nodeLine[fields[1]] = lineNo
			if nodes++; lim.MaxNodes > 0 && nodes > lim.MaxNodes {
				return nil, &LimitError{What: "nodes", Limit: int64(lim.MaxNodes)}
			}
			b.Node(fields[1], width)
		case "elem":
			if b == nil {
				return nil, fmt.Errorf("netlist:%d: elem before circuit line", lineNo)
			}
			if len(fields) >= 3 {
				if first, dup := elemLine[fields[2]]; dup {
					return nil, fmt.Errorf("netlist:%d: element %q already declared at line %d", lineNo, fields[2], first)
				}
				elemLine[fields[2]] = lineNo
			}
			if elems++; lim.MaxElems > 0 && elems > lim.MaxElems {
				return nil, &LimitError{What: "elements", Limit: int64(lim.MaxElems)}
			}
			if err := parseElem(b, fields[1:]); err != nil {
				return nil, fmt.Errorf("netlist:%d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("netlist:%d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// The limit reader may have truncated the input mid-line, which the
	// scanner reports as a clean EOF; the byte count tells the truth.
	if lim.MaxBytes > 0 && cr.n > lim.MaxBytes {
		return nil, &LimitError{What: "bytes", Limit: lim.MaxBytes}
	}
	if b == nil {
		return nil, fmt.Errorf("netlist: no circuit line")
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return c, nil
}

func parseElem(b *circuit.Builder, fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("elem wants kind and name")
	}
	kind, ok := circuit.KindByName(fields[0])
	if !ok {
		return fmt.Errorf("unknown element kind %q", fields[0])
	}
	name := fields[1]
	delay := circuit.Time(1)
	var outs, ins []circuit.NodeID
	var params circuit.Params
	for _, f := range fields[2:] {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return fmt.Errorf("bad attribute %q", f)
		}
		var err error
		switch key {
		case "delay":
			delay, err = parseTime(val)
		case "out":
			outs, err = lookupNodes(b, val)
		case "in":
			ins, err = lookupNodes(b, val)
		case "period":
			params.Period, err = parseTime(val)
		case "phase":
			params.Phase, err = parseTime(val)
		case "duty":
			params.Duty, err = parseTime(val)
		case "seed":
			params.Seed, err = strconv.ParseInt(val, 10, 64)
		case "lo":
			params.Lo, err = strconv.Atoi(val)
		case "shift":
			params.Shift, err = strconv.Atoi(val)
		case "init":
			params.Init, err = logic.ParseValue(val)
		case "times":
			for _, part := range strings.Split(val, ",") {
				var t circuit.Time
				if t, err = parseTime(part); err != nil {
					break
				}
				params.Times = append(params.Times, t)
			}
		case "values":
			for _, part := range strings.Split(val, ",") {
				var v logic.Value
				if v, err = logic.ParseValue(part); err != nil {
					break
				}
				params.Values = append(params.Values, v)
			}
		case "mem":
			for _, part := range strings.Split(val, ",") {
				var m uint64
				if m, err = strconv.ParseUint(part, 10, 64); err != nil {
					break
				}
				params.Mem = append(params.Mem, m)
			}
		default:
			return fmt.Errorf("unknown attribute %q", key)
		}
		if err != nil {
			return fmt.Errorf("attribute %q: %v", f, err)
		}
	}
	b.AddElement(kind, name, delay, outs, ins, params)
	return nil
}

func parseTime(s string) (circuit.Time, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	return circuit.Time(v), err
}

// lookupNodes resolves a comma-separated node-name list; the nodes must
// have been declared by earlier node lines.
func lookupNodes(b *circuit.Builder, val string) ([]circuit.NodeID, error) {
	parts := strings.Split(val, ",")
	ids := make([]circuit.NodeID, len(parts))
	for i, p := range parts {
		id, ok := b.Lookup(p)
		if !ok {
			return nil, fmt.Errorf("undeclared node %q", p)
		}
		ids[i] = id
	}
	return ids, nil
}

// Summary formats a short human-readable report about a circuit, used by
// the netlist CLI.
func Summary(c *circuit.Circuit) string {
	s := c.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit %s\n", c.Name)
	fmt.Fprintf(&sb, "  nodes:      %d\n", s.Nodes)
	fmt.Fprintf(&sb, "  elements:   %d (%d gates, %d functional, %d generators)\n",
		s.Elements, s.Gates, s.Functional, s.Generators)
	fmt.Fprintf(&sb, "  max fanout: %d\n", s.MaxFanout)
	fmt.Fprintf(&sb, "  total cost: %d inverter-units\n", s.TotalCost)
	kinds := map[string]int{}
	for i := range c.Elems {
		kinds[circuit.KindName(c.Elems[i].Kind)]++
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "  %-10s %d\n", k, kinds[k])
	}
	return sb.String()
}
