package analyze

import (
	"fmt"

	"parsim/internal/circuit"
)

// Fault is one single stuck-at fault site: bit Bit of node Node permanently
// held at L (StuckHigh false) or H (StuckHigh true). The concurrent fault
// simulator injects one Fault per stimulus lane.
type Fault struct {
	Node      circuit.NodeID `json:"node"`
	Bit       int            `json:"bit"`
	StuckHigh bool           `json:"stuck_high"`
}

// Site renders the fault as a stable human-readable site label, e.g.
// "alu_y[3]:sa1" or "clk:sa0" — the identifier coverage reports key on.
func (f Fault) Site(c *circuit.Circuit) string {
	sa := "sa0"
	if f.StuckHigh {
		sa = "sa1"
	}
	n := &c.Nodes[f.Node]
	if n.Width > 1 {
		return fmt.Sprintf("%s[%d]:%s", n.Name, f.Bit, sa)
	}
	return fmt.Sprintf("%s:%s", n.Name, sa)
}

// TotalFaultSites returns the size of the uncollapsed single stuck-at
// universe: both polarities of every bit of every node.
func TotalFaultSites(c *circuit.Circuit) int {
	total := 0
	for n := range c.Nodes {
		total += 2 * c.Nodes[n].Width
	}
	return total
}

// FaultList enumerates the single stuck-at fault universe of the circuit in
// deterministic node/bit order and, when collapse is true, removes faults
// provably equivalent to a retained representative: a fault on the output
// of a single-input buf/not gate whose input node feeds only that gate is
// indistinguishable at every observation point from the matching fault on
// the input, so inverter and buffer chains keep only the chain head's
// fault pair. The collapsed list is what the concurrent fault simulator
// injects; coverage over it equals coverage over the full universe.
func FaultList(c *circuit.Circuit, collapse bool) []Fault {
	faults := make([]Fault, 0, TotalFaultSites(c))
	for n := range c.Nodes {
		id := circuit.NodeID(n)
		if collapse && collapsesIntoInput(c, id) {
			continue
		}
		for b := 0; b < c.Nodes[n].Width; b++ {
			faults = append(faults,
				Fault{Node: id, Bit: b, StuckHigh: false},
				Fault{Node: id, Bit: b, StuckHigh: true})
		}
	}
	return faults
}

// collapsesIntoInput reports whether every fault on n is equivalent to a
// fault on its driver's input: n is driven by a single-input buf or not
// gate, and that gate is its input node's only reader — so any fault
// effect on n is exactly the (possibly inverted) effect of the matching
// input fault, and no other path can distinguish them.
func collapsesIntoInput(c *circuit.Circuit, n circuit.NodeID) bool {
	d := c.Nodes[n].Driver
	if d == circuit.NoElem {
		return false
	}
	el := &c.Elems[d]
	if (el.Kind != circuit.KindBuf && el.Kind != circuit.KindNot) || len(el.In) != 1 {
		return false
	}
	return len(c.Nodes[el.In[0]].Fanout) == 1
}
