package analyze

import (
	"fmt"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
)

// scheduleChain builds a unit-delay inverter chain with a structurally
// unique tail width, so each test gets a circuit no other test has pushed
// into the process-wide schedule cache.
func scheduleChain(t *testing.T, n int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder(fmt.Sprintf("sched-chain-%d", n))
	clk := b.Bit("clk")
	b.Clock("osc", clk, 4, 0, 0)
	prev := clk
	for i := 0; i < n; i++ {
		nd := b.Bit(fmt.Sprintf("n%d", i))
		b.Gate(circuit.KindNot, fmt.Sprintf("inv%d", i), 1, nd, prev)
		prev = nd
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

// TestLevelScheduleMemoized pins the one-levelization-per-circuit
// guarantee: repeated LevelSchedule calls, the profiler, the full analyzer
// and a structural clone all share a single Kahn pass through the digest
// cache.
func TestLevelScheduleMemoized(t *testing.T) {
	c := scheduleChain(t, 61)
	before := levelizeRuns.Load()
	first := LevelSchedule(c)
	second := LevelSchedule(c)
	Profile(c)
	Analyze(c, Options{})
	clone := c.Clone()
	third := LevelSchedule(clone)
	if got := levelizeRuns.Load() - before; got != 1 {
		t.Fatalf("levelize ran %d times across LevelSchedule x2, Profile, Analyze and a clone; want 1", got)
	}
	for i := range first {
		if first[i] != second[i] || first[i] != third[i] {
			t.Fatalf("cached levels diverge at element %d: %d / %d / %d", i, first[i], second[i], third[i])
		}
	}
	// A structurally different circuit must miss.
	d := scheduleChain(t, 62)
	LevelSchedule(d)
	if got := levelizeRuns.Load() - before; got != 2 {
		t.Fatalf("distinct circuit should re-levelize (got %d runs, want 2)", got)
	}
}

// TestLevelScheduleReturnsCopy: mutating a returned schedule must not
// poison the cache for the next caller.
func TestLevelScheduleReturnsCopy(t *testing.T) {
	c := scheduleChain(t, 63)
	a := LevelSchedule(c)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	a[0] = -99
	b := LevelSchedule(c)
	if b[0] == -99 {
		t.Fatal("cache returned the caller-mutated slice")
	}
}

// TestLevelScheduleCacheBounded: pushing more than schedCacheCap distinct
// circuits through the cache must evict rather than grow without limit.
func TestLevelScheduleCacheBounded(t *testing.T) {
	for i := 0; i < schedCacheCap+8; i++ {
		LevelSchedule(scheduleChain(t, 100+i))
	}
	schedCache.Lock()
	n, f := len(schedCache.byKey), len(schedCache.fifo)
	schedCache.Unlock()
	if n > schedCacheCap || f > schedCacheCap {
		t.Fatalf("cache grew to %d entries / %d fifo slots, cap %d", n, f, schedCacheCap)
	}
	if n != f {
		t.Fatalf("cache map (%d) and fifo (%d) out of sync", n, f)
	}
}

// TestLevelScheduleMatchesReport: the memoized schedule and the analyzer
// report agree on a real generator circuit, including -1 for elements the
// report leaves unlevelized.
func TestLevelScheduleMatchesReport(t *testing.T) {
	c := gen.CPU(gen.DefaultCPU())
	levels := LevelSchedule(c)
	rep := Analyze(c, Options{})
	if len(levels) != len(rep.Levels) {
		t.Fatalf("schedule has %d levels, report %d", len(levels), len(rep.Levels))
	}
	for i := range levels {
		if levels[i] != rep.Levels[i] {
			t.Fatalf("element %d: schedule level %d, report %d", i, levels[i], rep.Levels[i])
		}
	}
}
