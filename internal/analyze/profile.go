package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"parsim/internal/circuit"
	"parsim/internal/partition"
)

// CircuitProfile is the static structural fingerprint of a circuit: every
// quantity the engine-selection cost model needs, computed from the element
// graph alone — no simulation, no traces. The profile is deterministic
// (two calls on the same circuit produce byte-identical JSON) and O(elements),
// so it stays cheap at million-gate scale.
//
// The quantities follow what actually governs parallel-simulator throughput:
// levelized depth and width bound synchronous parallelism, the activity
// estimate separates event-driven from compiled-mode economics (the paper's
// central trade-off), feedback loops bound the asynchronous algorithm's
// progress (the paper's T4 serialisation case), fanout hot spots and
// partition cut quality bound the message-passing engines, and the
// memory-model cost fraction shifts the balance between dispatch overhead
// and evaluation work.
type CircuitProfile struct {
	Circuit    string `json:"circuit"`
	Nodes      int    `json:"nodes"`
	Elements   int    `json:"elements"`
	Generators int    `json:"generators"`
	Gates      int    `json:"gates"`
	Functional int    `json:"functional"`
	// Sequential counts state-holding elements: trigger-sampled kinds
	// (dff, dffr, ram) plus transparent latches.
	Sequential int `json:"sequential"`
	// TotalCost sums non-generator evaluation cost (circuit cost units).
	TotalCost int64 `json:"total_cost"`
	// UnitDelay reports every element at delay 1 — the precondition for the
	// compiled and vector engines to reproduce event-timed histories.
	UnitDelay bool  `json:"unit_delay"`
	MaxDelay  int64 `json:"max_delay"`

	// Levelization: topological depth over combinational edges.
	MaxLevel    int   `json:"max_level"`
	LevelWidths []int `json:"level_widths,omitempty"`
	Unlevelized int   `json:"unlevelized,omitempty"`
	// PeakWidth and MeanWidth summarise the per-level width distribution —
	// the parallelism ceiling of the synchronous algorithms.
	PeakWidth int     `json:"peak_width"`
	MeanWidth float64 `json:"mean_width"`

	// Fanout distribution over driven nodes.
	FanoutHist []FanoutBucket `json:"fanout_hist"`
	MaxFanout  int            `json:"max_fanout"`
	// HotShare is the fraction of all fanout edges carried by the five
	// widest nodes — broadcast pressure on the partitioned engines.
	HotShare float64 `json:"hot_share"`
	// EdgeFanout is the fanout-weighted mean fanout (sum f² / sum f): the
	// expected fanout of the node behind a randomly chosen edge. It proxies
	// lock and broadcast contention — an update to a wide node makes every
	// engine that locks per node touch all its consumers at once.
	EdgeFanout float64 `json:"edge_fanout"`

	// MemCostFraction is the share of TotalCost in memory-model elements
	// (mul, alu, rom, ram) — heavy, unsplittable evaluations.
	MemCostFraction float64 `json:"mem_cost_fraction"`
	// SeqFraction is Sequential / (Elements - Generators).
	SeqFraction float64 `json:"seq_fraction"`

	// Activity estimate: expected events per tick propagated through the
	// stimulus cones (generator rates attenuated through logic, sampled at
	// trigger ports). EvalsPerTick is the expected number of element
	// evaluations per tick; EvalCostPerTick weights each by element cost;
	// MaxRateCost is the hottest single element (rate x cost), the
	// asynchronous algorithm's serial floor; ActiveFraction is
	// EvalsPerTick / (Elements - Generators).
	EvalsPerTick    float64   `json:"evals_per_tick"`
	EvalCostPerTick float64   `json:"eval_cost_per_tick"`
	ActiveFraction  float64   `json:"active_fraction"`
	MaxRateCost     float64   `json:"max_rate_cost"`
	LevelActivity   []float64 `json:"level_activity,omitempty"`

	// Feedback census over combinational SCCs (delayed loops — zero-delay
	// loops are the analyzer's business, not the profiler's).
	FeedbackLoops int   `json:"feedback_loops"`
	LoopElems     int   `json:"loop_elems,omitempty"`
	MinLoopDelay  int64 `json:"min_loop_delay,omitempty"`
	// LoopSerialCost is max over loops of (loop cost / loop delay): the
	// per-tick work the tightest loop forces through one worker.
	LoopSerialCost float64 `json:"loop_serial_cost,omitempty"`

	// Cuts scores every partition strategy at 2/4/8 workers: cost imbalance
	// (max/mean, 1.0 perfect) and the fraction of propagation edges crossing
	// partitions (inter-worker traffic).
	Cuts []CutQuality `json:"cuts"`
}

// FanoutBucket is one bar of the fanout histogram.
type FanoutBucket struct {
	Label string `json:"label"`
	Count int    `json:"count"`
}

// CutQuality scores one (strategy, workers) static partition.
type CutQuality struct {
	Strategy    string  `json:"strategy"`
	Workers     int     `json:"workers"`
	Imbalance   float64 `json:"imbalance"`
	CutFraction float64 `json:"cut_fraction"`
}

// cutWorkerSweep is the fixed worker grid the profile scores partitions at;
// the cost model interpolates by nearest count for other worker budgets.
var cutWorkerSweep = []int{2, 4, 8}

// Profile computes the static fingerprint of c. It never runs simulation
// and is deterministic: no map iteration reaches the output.
func Profile(c *circuit.Circuit) *CircuitProfile {
	p := &CircuitProfile{
		Circuit:  c.Name,
		Nodes:    len(c.Nodes),
		Elements: len(c.Elems),
		MaxLevel: -1,
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		switch {
		case circuit.IsGenerator(el.Kind):
			p.Generators++
		case el.Kind >= circuit.KindBuf && el.Kind <= circuit.KindXnor:
			p.Gates++
		default:
			p.Functional++
		}
		if !circuit.IsGenerator(el.Kind) {
			p.TotalCost += el.Cost
			if isMemKind(el.Kind) {
				p.MemCostFraction += float64(el.Cost)
			}
			if isSeqKind(el.Kind) {
				p.Sequential++
			}
		}
		if d := int64(el.Delay); d > p.MaxDelay {
			p.MaxDelay = d
		}
	}
	p.UnitDelay = p.MaxDelay <= 1
	if p.TotalCost > 0 {
		p.MemCostFraction = round3(p.MemCostFraction / float64(p.TotalCost))
	}
	if n := p.Elements - p.Generators; n > 0 {
		p.SeqFraction = round3(float64(p.Sequential) / float64(n))
	}

	g := buildGraph(c)
	sched := levelsFor(c)
	levels, maxLevel := sched.levels, sched.maxLevel
	p.MaxLevel = maxLevel
	if maxLevel >= 0 {
		p.LevelWidths = make([]int, maxLevel+1)
	}
	for _, l := range levels {
		if l >= 0 {
			p.LevelWidths[l]++
		} else {
			p.Unlevelized++
		}
	}
	for _, w := range p.LevelWidths {
		if w > p.PeakWidth {
			p.PeakWidth = w
		}
	}
	if len(p.LevelWidths) > 0 {
		p.MeanWidth = round3(float64(p.Elements-p.Unlevelized) / float64(len(p.LevelWidths)))
	}

	p.fanout(c)
	p.activity(c, levels)
	p.feedback(c, g)
	p.cuts(c)
	return p
}

// isMemKind marks the memory-model kinds: the wide, expensive evaluations
// whose cost cannot be split across workers.
func isMemKind(k circuit.Kind) bool {
	switch k {
	case circuit.KindMul, circuit.KindAlu, circuit.KindRom, circuit.KindRam:
		return true
	}
	return false
}

// isSeqKind marks state-holding elements: everything with trigger ports
// plus transparent latches.
func isSeqKind(k circuit.Kind) bool {
	return circuit.TriggerPorts(k) != nil || k == circuit.KindLatch
}

// fanoutBuckets are the histogram edges: bucket i covers
// [fanoutBuckets[i], fanoutBuckets[i+1]).
var fanoutBuckets = []int{0, 1, 2, 4, 8, 16, 64}

func (p *CircuitProfile) fanout(c *circuit.Circuit) {
	counts := make([]int, len(fanoutBuckets))
	labels := make([]string, len(fanoutBuckets))
	for i, lo := range fanoutBuckets {
		if i+1 < len(fanoutBuckets) {
			hi := fanoutBuckets[i+1] - 1
			if hi == lo {
				labels[i] = fmt.Sprint(lo)
			} else {
				labels[i] = fmt.Sprintf("%d-%d", lo, hi)
			}
		} else {
			labels[i] = fmt.Sprintf("%d+", lo)
		}
	}
	var total int
	var sq float64
	var top [5]int // five widest fanouts, descending
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Driver == circuit.NoElem {
			continue
		}
		f := len(nd.Fanout)
		total += f
		sq += float64(f) * float64(f)
		if f > p.MaxFanout {
			p.MaxFanout = f
		}
		for j := 0; j < len(top); j++ {
			if f > top[j] {
				copy(top[j+1:], top[j:])
				top[j] = f
				break
			}
		}
		b := 0
		for b+1 < len(fanoutBuckets) && f >= fanoutBuckets[b+1] {
			b++
		}
		counts[b]++
	}
	p.FanoutHist = make([]FanoutBucket, len(counts))
	for i := range counts {
		p.FanoutHist[i] = FanoutBucket{Label: labels[i], Count: counts[i]}
	}
	if total > 0 {
		hot := 0
		for _, f := range top {
			hot += f
		}
		p.HotShare = round3(float64(hot) / float64(total))
		p.EdgeFanout = round3(sq / float64(total))
	}
}

// activity propagates static event-rate estimates from the stimulus
// generators through the element graph in level order. Rates are events
// per tick on an element's outputs, capped at 1 (every engine coalesces
// same-tick updates per node):
//
//   - generators emit at their configured period;
//   - trigger-sampled elements (dff, dffr, ram) emit at half their trigger
//     rate — a register changes on some edges, not all;
//   - gates attenuate (half the input events flip the output);
//   - other functional elements pass activity through.
//
// Elements inside combinational cycles have no level; they get a flat 0.5,
// the paper's observation that a live feedback loop stays busy.
func (p *CircuitProfile) activity(c *circuit.Circuit, levels []int) {
	n := len(c.Elems)
	outRate := make([]float64, n)
	evalRate := make([]float64, n)

	// Group elements by level; element ID order inside a level keeps the
	// pass deterministic.
	order := make([]int, 0, n)
	byLevel := make([][]int, 0)
	for id, l := range levels {
		if l < 0 {
			continue
		}
		for len(byLevel) <= l {
			byLevel = append(byLevel, nil)
		}
		byLevel[l] = append(byLevel[l], id)
	}
	for _, ids := range byLevel {
		order = append(order, ids...)
	}

	rateOf := func(nid circuit.NodeID) float64 {
		d := c.Nodes[nid].Driver
		if d == circuit.NoElem {
			return 0
		}
		return outRate[d]
	}

	eval := func(id int) {
		el := &c.Elems[id]
		if circuit.IsGenerator(el.Kind) {
			outRate[id] = genRate(el)
			return
		}
		var in float64
		if tp := circuit.TriggerPorts(el.Kind); tp != nil {
			for _, port := range tp {
				if port < len(el.In) {
					in += rateOf(el.In[port])
				}
			}
			evalRate[id] = math.Min(1, in)
			outRate[id] = math.Min(1, 0.5*in)
			return
		}
		for _, nid := range el.In {
			in += rateOf(nid)
		}
		evalRate[id] = math.Min(1, in)
		if el.Kind >= circuit.KindBuf && el.Kind <= circuit.KindXnor {
			outRate[id] = math.Min(1, 0.5*in)
		} else {
			outRate[id] = math.Min(1, in)
		}
	}

	for _, id := range order {
		eval(id)
	}
	// Cycle-fed elements: no topological order exists; assume the loop is
	// live half the time.
	for id, l := range levels {
		if l < 0 {
			outRate[id] = 0.5
			evalRate[id] = 0.5
		}
	}

	if p.MaxLevel >= 0 {
		p.LevelActivity = make([]float64, p.MaxLevel+1)
	}
	for id := range c.Elems {
		if circuit.IsGenerator(c.Elems[id].Kind) {
			continue
		}
		r := evalRate[id]
		p.EvalsPerTick += r
		rc := r * float64(c.Elems[id].Cost)
		p.EvalCostPerTick += rc
		if rc > p.MaxRateCost {
			p.MaxRateCost = rc
		}
		if l := levels[id]; l >= 0 {
			p.LevelActivity[l] += r
		}
	}
	for i := range p.LevelActivity {
		p.LevelActivity[i] = round3(p.LevelActivity[i])
	}
	if n := p.Elements - p.Generators; n > 0 {
		p.ActiveFraction = round3(p.EvalsPerTick / float64(n))
	}
	p.EvalsPerTick = round3(p.EvalsPerTick)
	p.EvalCostPerTick = round3(p.EvalCostPerTick)
	p.MaxRateCost = round3(p.MaxRateCost)
}

// genRate estimates a generator's output events per tick.
func genRate(el *circuit.Element) float64 {
	period := float64(el.Params.Period)
	switch el.Kind {
	case circuit.KindClock:
		if period >= 1 {
			return math.Min(1, 2/period) // two edges per period
		}
		return 1
	case circuit.KindRand, circuit.KindGray:
		if period >= 1 {
			return math.Min(1, 1/period)
		}
		return 1
	case circuit.KindWave:
		if n := len(el.Params.Times); n > 1 {
			span := float64(el.Params.Times[n-1]-el.Params.Times[0]) + 1
			return math.Min(1, float64(n)/span)
		}
		return 0 // const-like: at most one change ever
	}
	return 0 // const
}

// feedback censuses the delayed combinational loops — the asynchronous
// algorithm's serialisation hazard (paper §4.1).
func (p *CircuitProfile) feedback(c *circuit.Circuit, g *graph) {
	for _, comp := range sccs(g.comb, nil) {
		if !isCycle(g.comb, comp) {
			continue
		}
		p.FeedbackLoops++
		p.LoopElems += len(comp)
		var delay, cost int64
		for _, v := range comp {
			delay += int64(c.Elems[v].Delay)
			cost += c.Elems[v].Cost
		}
		if p.MinLoopDelay == 0 || delay < p.MinLoopDelay {
			p.MinLoopDelay = delay
		}
		if delay > 0 {
			if s := float64(cost) / float64(delay); s > p.LoopSerialCost {
				p.LoopSerialCost = s
			}
		}
	}
	p.LoopSerialCost = round3(p.LoopSerialCost)
}

// cuts scores every partition strategy on the fixed worker grid.
func (p *CircuitProfile) cuts(c *circuit.Circuit) {
	for _, s := range []partition.Strategy{partition.RoundRobin, partition.Blocks, partition.CostLPT} {
		for _, workers := range cutWorkerSweep {
			parts := partition.Split(c, workers, s)
			partOf := make([]int, len(c.Elems))
			for i := range partOf {
				partOf[i] = -1
			}
			for pi, ids := range parts {
				for _, id := range ids {
					partOf[id] = pi
				}
			}
			cut, total := 0, 0
			for i := range c.Nodes {
				nd := &c.Nodes[i]
				if nd.Driver == circuit.NoElem {
					continue
				}
				dp := partOf[nd.Driver]
				if dp < 0 {
					continue // generator-driven: scheduled outside partitions
				}
				for _, ref := range nd.Fanout {
					total++
					if partOf[ref.Elem] != dp {
						cut++
					}
				}
			}
			cq := CutQuality{
				Strategy:  s.String(),
				Workers:   workers,
				Imbalance: round3(partition.Imbalance(c, parts)),
			}
			if total > 0 {
				cq.CutFraction = round3(float64(cut) / float64(total))
			}
			p.Cuts = append(p.Cuts, cq)
		}
	}
}

// round3 quantises to three decimals so profile JSON stays stable and
// readable; every input is already deterministic.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// CutAt returns the cut quality for the given strategy at the nearest
// scored worker count (workers <= 1 is a perfect single partition).
func (p *CircuitProfile) CutAt(strategy string, workers int) CutQuality {
	if workers <= 1 {
		return CutQuality{Strategy: strategy, Workers: 1, Imbalance: 1, CutFraction: 0}
	}
	best := CutQuality{Strategy: strategy, Workers: workers, Imbalance: 1, CutFraction: 0}
	bestDist := -1
	for _, cq := range p.Cuts {
		if cq.Strategy != strategy {
			continue
		}
		d := cq.Workers - workers
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestDist = d
			best = cq
		}
	}
	return best
}

// JSON renders the profile as stable indented JSON.
func (p *CircuitProfile) JSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// WriteJSON writes the indented JSON rendering plus a trailing newline.
func (p *CircuitProfile) WriteJSON(w io.Writer) error {
	b, err := p.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText renders the profile for humans, mirroring Report.WriteText.
func (p *CircuitProfile) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile %s: %d nodes, %d elements (%d generators, %d gates, %d functional, %d sequential)\n",
		p.Circuit, p.Nodes, p.Elements, p.Generators, p.Gates, p.Functional, p.Sequential)
	fmt.Fprintf(&sb, "  cost: total %d, memory-model fraction %.1f%%, unit-delay %v (max delay %d)\n",
		p.TotalCost, 100*p.MemCostFraction, p.UnitDelay, p.MaxDelay)
	if p.MaxLevel >= 0 {
		fmt.Fprintf(&sb, "  levelization: depth %d, peak width %d, mean width %.1f, widths %s",
			p.MaxLevel, p.PeakWidth, p.MeanWidth, widthsString(p.LevelWidths))
		if p.Unlevelized > 0 {
			fmt.Fprintf(&sb, " (+%d in combinational cycles)", p.Unlevelized)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  fanout: max %d, edge-weighted mean %.1f, top-5 nodes carry %.1f%% of edges, histogram",
		p.MaxFanout, p.EdgeFanout, 100*p.HotShare)
	for _, b := range p.FanoutHist {
		fmt.Fprintf(&sb, " %s:%d", b.Label, b.Count)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  activity: %.2f evals/tick (%.1f%% of elements), eval cost %.1f/tick, hottest element %.2f\n",
		p.EvalsPerTick, 100*p.ActiveFraction, p.EvalCostPerTick, p.MaxRateCost)
	if p.FeedbackLoops > 0 {
		fmt.Fprintf(&sb, "  feedback: %d loop(s), %d element(s), min loop delay %d, serial cost %.2f/tick\n",
			p.FeedbackLoops, p.LoopElems, p.MinLoopDelay, p.LoopSerialCost)
	} else {
		sb.WriteString("  feedback: none\n")
	}
	for _, cq := range p.Cuts {
		fmt.Fprintf(&sb, "  partition %-11s x%d: imbalance %.2f, cut %.1f%%\n",
			cq.Strategy, cq.Workers, cq.Imbalance, 100*cq.CutFraction)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
