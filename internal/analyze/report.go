package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteText renders the report for humans, one finding per line.
func (r *Report) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "analyze %s: %d nodes, %d elements\n", r.Circuit, r.Nodes, r.Elements)
	if r.MaxLevel >= 0 {
		fmt.Fprintf(&sb, "  levelization: depth %d, widths %s", r.MaxLevel, widthsString(r.LevelWidths))
		if r.Unlevelized > 0 {
			fmt.Fprintf(&sb, " (+%d in combinational cycles)", r.Unlevelized)
		}
		sb.WriteByte('\n')
	} else {
		sb.WriteString("  levelization: none (no element could be ranked)\n")
	}
	errs, warns, infos := r.Counts()
	fmt.Fprintf(&sb, "  diagnostics: %d error(s), %d warning(s), %d info\n", errs, warns, infos)
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "    %-7s %s: %s\n", d.Severity, d.Code, d.Msg)
	}
	if p := r.Partition; p != nil {
		fmt.Fprintf(&sb, "  partition: %d workers, %s: imbalance %.2f, cut %d/%d edges\n",
			p.Workers, p.Strategy, p.Imbalance, p.CutEdges, p.TotalEdges)
		for i, pi := range p.Parts {
			fmt.Fprintf(&sb, "    p%-3d %5d elems, cost %d\n", i, pi.Elems, pi.Cost)
		}
		for _, h := range p.HotNodes {
			fmt.Fprintf(&sb, "    hot node %s: fanout %d across %d partitions\n",
				h.Node, h.Fanout, h.Partitions)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// widthsString compacts the level-width profile: full up to 16 levels,
// else the first 16 with a tail marker.
func widthsString(widths []int) string {
	const max = 16
	show := widths
	tail := ""
	if len(show) > max {
		show = show[:max]
		tail = " ..."
	}
	parts := make([]string, len(show))
	for i, w := range show {
		parts[i] = fmt.Sprint(w)
	}
	return "[" + strings.Join(parts, " ") + tail + "]"
}
