package analyze

import (
	"sort"

	"parsim/internal/circuit"
	"parsim/internal/partition"
)

// PartitionReport summarises how well a static partition of the circuit
// would behave: the per-partition evaluation weight the compiled and
// distributed engines balance, the cut edges that become inter-worker
// messages, and the fan-out hot spots that broadcast across partitions.
type PartitionReport struct {
	Workers   int    `json:"workers"`
	Strategy  string `json:"strategy"`
	Imbalance float64 `json:"imbalance"` // max/mean partition cost; 1.0 is perfect
	// CutEdges counts driver->consumer edges whose endpoints live in
	// different partitions (generator-driven edges excluded: generators
	// are scheduled outside the partitions). TotalEdges is the same count
	// without the partition test.
	CutEdges   int        `json:"cut_edges"`
	TotalEdges int        `json:"total_edges"`
	Parts      []PartInfo `json:"parts"`
	// HotNodes are the widest cross-partition broadcast points, ordered
	// by the number of partitions touched, then fan-out.
	HotNodes []HotNode `json:"hot_nodes,omitempty"`
}

// PartInfo describes one partition.
type PartInfo struct {
	Elems int   `json:"elems"`
	Cost  int64 `json:"cost"`
}

// HotNode is one fan-out hot spot.
type HotNode struct {
	Node       string `json:"node"`
	Fanout     int    `json:"fanout"`
	Partitions int    `json:"partitions"` // distinct consumer partitions
}

const maxHotNodes = 5

func partitionReport(c *circuit.Circuit, opts Options) *PartitionReport {
	parts := partition.Split(c, opts.Workers, opts.Strategy)
	pr := &PartitionReport{
		Workers:   opts.Workers,
		Strategy:  opts.Strategy.String(),
		Imbalance: partition.Imbalance(c, parts),
		Parts:     make([]PartInfo, len(parts)),
	}
	partOf := make([]int, len(c.Elems))
	for i := range partOf {
		partOf[i] = -1 // generators
	}
	for p, ids := range parts {
		for _, id := range ids {
			partOf[id] = p
			pr.Parts[p].Elems++
			pr.Parts[p].Cost += c.Elems[id].Cost
		}
	}
	var hot []HotNode
	seen := make(map[int]bool)
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Driver == circuit.NoElem {
			continue
		}
		dp := partOf[nd.Driver]
		clear(seen)
		for _, ref := range nd.Fanout {
			cp := partOf[ref.Elem]
			seen[cp] = true
			if dp >= 0 {
				pr.TotalEdges++
				if cp != dp {
					pr.CutEdges++
				}
			}
		}
		if len(seen) >= 2 && len(nd.Fanout) >= 2 {
			hot = append(hot, HotNode{Node: nd.Name, Fanout: len(nd.Fanout), Partitions: len(seen)})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Partitions != hot[j].Partitions {
			return hot[i].Partitions > hot[j].Partitions
		}
		if hot[i].Fanout != hot[j].Fanout {
			return hot[i].Fanout > hot[j].Fanout
		}
		return hot[i].Node < hot[j].Node
	})
	if len(hot) > maxHotNodes {
		hot = hot[:maxHotNodes]
	}
	pr.HotNodes = hot
	return pr
}
