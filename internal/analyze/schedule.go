package analyze

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"parsim/internal/circuit"
)

// LevelSchedule computes each element's combinational depth — the same
// Kahn levelization Analyze reports in Report.Levels — without running the
// diagnostic passes. Elements inside (or fed only through) sequential
// feedback that cannot be levelized get -1. The batched vector engine uses
// this to order each static partition so that evaluation sweeps the node
// arrays in dependency depth order; the codegen engine additionally derives
// its node numbering from it.
//
// Levelization is memoized by a structural digest of the circuit, so the
// profiler, the vector engine and the codegen engine all levelizing the
// same circuit (or structurally identical clones of it) pay for one Kahn
// pass. The returned slice is a fresh copy the caller may mutate.
func LevelSchedule(c *circuit.Circuit) []int {
	e := levelsFor(c)
	out := make([]int, len(e.levels))
	copy(out, e.levels)
	return out
}

// OrderByLevel sorts each partition in place by ascending level (depth -1
// first, then 0, 1, ...), breaking ties by element ID so the schedule is
// deterministic for a given circuit and partitioning.
func OrderByLevel(parts [][]circuit.ElemID, levels []int) {
	for _, part := range parts {
		sort.Slice(part, func(i, j int) bool {
			li, lj := levels[part[i]], levels[part[j]]
			if li != lj {
				return li < lj
			}
			return part[i] < part[j]
		})
	}
}

// levelizeRuns counts the levelization passes that actually ran (cache
// misses). Test hook: the one-levelization-per-circuit guarantee is pinned
// against it.
var levelizeRuns atomic.Int64

// schedEntry is an immutable cached levelization. The levels slice is
// shared between the cache and in-package readers; exported paths hand out
// copies.
type schedEntry struct {
	levels   []int
	maxLevel int
}

const schedCacheCap = 128

// schedCache memoizes levelizations by structural digest. Bounded FIFO:
// long-running processes (parsimd replaying a journal of distinct
// circuits) cannot grow it without limit, and eviction order does not
// matter for correctness — a miss just re-levelizes. The mutex also
// single-flights concurrent misses on the same circuit.
var schedCache = struct {
	sync.Mutex
	byKey map[[32]byte]*schedEntry
	fifo  [][32]byte
}{byKey: make(map[[32]byte]*schedEntry)}

// scheduleKey digests exactly the structure levelization depends on:
// element kinds (combPort consults trigger ports by kind), their input and
// output node lists (buildGraph's edges), and the node count. Names,
// delays, costs and generator parameters do not influence levels and are
// deliberately excluded, so renamed or re-parameterized clones still hit.
func scheduleKey(c *circuit.Circuit) [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(int64(len(c.Nodes)))
	put(int64(len(c.Elems)))
	for i := range c.Elems {
		el := &c.Elems[i]
		put(int64(el.Kind))
		put(int64(len(el.In)))
		for _, n := range el.In {
			put(int64(n))
		}
		put(int64(len(el.Out)))
		for _, n := range el.Out {
			put(int64(n))
		}
	}
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// levelsFor returns the memoized levelization for c, running the Kahn pass
// on a cache miss.
func levelsFor(c *circuit.Circuit) *schedEntry {
	key := scheduleKey(c)
	schedCache.Lock()
	defer schedCache.Unlock()
	if e, ok := schedCache.byKey[key]; ok {
		return e
	}
	levelizeRuns.Add(1)
	levels, maxLevel := levelize(buildGraph(c))
	e := &schedEntry{levels: levels, maxLevel: maxLevel}
	if len(schedCache.fifo) >= schedCacheCap {
		delete(schedCache.byKey, schedCache.fifo[0])
		schedCache.fifo = schedCache.fifo[1:]
	}
	schedCache.byKey[key] = e
	schedCache.fifo = append(schedCache.fifo, key)
	return e
}
