package analyze

import (
	"sort"

	"parsim/internal/circuit"
)

// LevelSchedule computes each element's combinational depth — the same
// Kahn levelization Analyze reports in Report.Levels — without running the
// diagnostic passes. Elements inside (or fed only through) sequential
// feedback that cannot be levelized get -1. The batched vector engine uses
// this to order each static partition so that evaluation sweeps the node
// arrays in dependency depth order.
func LevelSchedule(c *circuit.Circuit) []int {
	levels, _ := levelize(buildGraph(c))
	return levels
}

// OrderByLevel sorts each partition in place by ascending level (depth -1
// first, then 0, 1, ...), breaking ties by element ID so the schedule is
// deterministic for a given circuit and partitioning.
func OrderByLevel(parts [][]circuit.ElemID, levels []int) {
	for _, part := range parts {
		sort.Slice(part, func(i, j int) bool {
			li, lj := levels[part[i]], levels[part[j]]
			if li != lj {
				return li < lj
			}
			return part[i] < part[j]
		})
	}
}
