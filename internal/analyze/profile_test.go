package analyze

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/gen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden profile snapshots")

// paperCircuits builds the four benchmark circuits of the paper's
// evaluation — the inputs engine=auto is calibrated on.
func paperCircuits() map[string]func() *circuit.Circuit {
	return map[string]func() *circuit.Circuit{
		"inverter-array": func() *circuit.Circuit { return gen.InverterArray(gen.DefaultInverterArray()) },
		"mult16-gate":    func() *circuit.Circuit { return gen.GateMultiplier(gen.DefaultMultiplier()) },
		"mult16-func":    func() *circuit.Circuit { return gen.FuncMultiplier(gen.DefaultMultiplier()) },
		"microprocessor": func() *circuit.Circuit { return gen.CPU(gen.DefaultCPU()) },
	}
}

// TestProfileGolden pins the full fingerprint of every paper circuit as an
// indented-JSON snapshot. A profile change (new field, altered estimate)
// shows up as a readable diff; regenerate intentionally with
// `go test ./internal/analyze -run TestProfileGolden -update`.
func TestProfileGolden(t *testing.T) {
	for name, build := range paperCircuits() {
		t.Run(name, func(t *testing.T) {
			got, err := Profile(build()).JSON()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "profile_"+name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the snapshot)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("profile drifted from %s:\n--- want\n%s\n--- got\n%s", path, want, got)
			}
		})
	}
}

// TestProfileDeterministic: two profiles of independently built copies of
// the same circuit must serialise byte-identically — no map iteration or
// float instability may reach the output, or the golden snapshots (and the
// auto engine's selections) would flap.
func TestProfileDeterministic(t *testing.T) {
	for name, build := range paperCircuits() {
		a, err := Profile(build()).JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := Profile(build()).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: two Profile calls disagree:\n%s\nvs\n%s", name, a, b)
		}
	}
}

// TestProfileScales guards the O(elements) promise: profiling an 8x larger
// random unit-delay circuit must cost well under the 64x a quadratic pass
// would. Wall-clock ratios are noisy on shared hosts, so the bound is
// loose (24x, three times the linear ratio) and each size takes its best
// of three runs.
func TestProfileScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	timeProfile := func(size int) time.Duration {
		c := gen.RandomUnitCircuit(7, size)
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			p := Profile(c)
			d := time.Since(start)
			if p.Elements == 0 {
				t.Fatal("empty profile")
			}
			if i == 0 || d < best {
				best = d
			}
		}
		return best
	}
	small := timeProfile(625)
	large := timeProfile(5000)
	if small <= 0 {
		small = time.Microsecond
	}
	if ratio := float64(large) / float64(small); ratio > 24 {
		t.Errorf("profiling 5000 elements took %.0fx the 625-element cost (%v vs %v); expected roughly linear",
			ratio, large, small)
	}
}

// TestProfileFeedbackChain: the profiler must census delayed loops — the
// asynchronous algorithm's serialisation hazard — on the one paper topology
// that has them.
func TestProfileFeedbackChain(t *testing.T) {
	p := Profile(gen.FeedbackChain(31))
	if p.FeedbackLoops == 0 || p.LoopElems == 0 {
		t.Fatalf("feedback chain profiled without loops: %+v", p)
	}
	if p.MinLoopDelay <= 0 {
		t.Errorf("delayed loop reported with min delay %d", p.MinLoopDelay)
	}
	if p.LoopSerialCost <= 0 {
		t.Errorf("loop serial cost %v, want > 0", p.LoopSerialCost)
	}
}

// TestCutAt covers the nearest-worker lookup the cost model interpolates
// through.
func TestCutAt(t *testing.T) {
	p := Profile(gen.GateMultiplier(gen.DefaultMultiplier()))
	if cq := p.CutAt("blocks", 1); cq.CutFraction != 0 || cq.Imbalance != 1 {
		t.Errorf("single partition should be perfect, got %+v", cq)
	}
	for _, w := range []int{2, 3, 4, 8, 16} {
		cq := p.CutAt("blocks", w)
		if cq.Strategy != "blocks" {
			t.Fatalf("CutAt(blocks, %d) returned strategy %q", w, cq.Strategy)
		}
		if cq.Imbalance < 1 {
			t.Errorf("imbalance %v < 1 at %d workers", cq.Imbalance, w)
		}
	}
}

// TestProfileWriteText smoke-checks the human rendering: every section
// header present, no error.
func TestProfileWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := Profile(gen.InverterArray(gen.DefaultInverterArray())).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"profile ", "cost:", "levelization:", "fanout:", "activity:", "feedback:", "partition"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("text rendering missing %q:\n%s", want, out)
		}
	}
}
