// Package analyze is the pre-flight static analyzer for circuits: a
// multi-pass whole-graph checker that catches the netlist pathologies the
// simulators themselves cannot guard against cheaply at run time.
//
// The paper's asynchronous "semi-chaotic" algorithm avoids deadlock only
// because node valid-times advance monotonically — a property that breaks
// on zero-delay combinational cycles, where an event at time t schedules
// another event at the same t forever. The conservative-PDES literature
// (Chandy-Misra descendants, PARSIR's pre-run model checks) handles this
// class of hazard statically, before the run; this package does the same
// for every engine in the registry:
//
//   - zero-delay combinational cycles (SCC-based, reported with the
//     offending element path) — the livelock hazard, severity Error;
//   - undriven nodes feeding element inputs (floating inputs) — Error;
//   - corrupt hand-assembled graphs (dangling IDs, inconsistent driver
//     back-pointers) — Error;
//   - tri-state outputs feeding non-resolving inputs, and wired-resolution
//     elements with multiple always-driving ("strong") inputs — Warning;
//   - elements unreachable from any stimulus generator, with the X-source
//     roots that poison them — Warning;
//   - zero-delay elements outside cycles — Warning;
//   - delayed combinational loops (the paper's T4 serialisation case),
//     non-unit delays (compiled-mode divergence), partition imbalance,
//     fully disconnected nodes — Info.
//
// Beyond diagnostics the Report carries a levelization (topological depth
// per element over combinational edges, the parallelism profile compiled
// and synchronous modes can exploit) and an optional partition-quality
// summary (per-partition evaluation weight, cut edges, fan-out hot spots)
// computed against internal/partition.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"parsim/internal/circuit"
	"parsim/internal/partition"
)

// Severity ranks a diagnostic. Error diagnostics make engines refuse the
// circuit under LintWarn and LintStrict; Warnings block only under
// LintStrict; Info never blocks.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	}
	return "info"
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic codes, one per check.
const (
	CodeCorrupt        = "corrupt-graph"
	CodeZeroDelayCycle = "zero-delay-cycle"
	CodeZeroDelayElem  = "zero-delay-elem"
	CodeCombLoop       = "comb-loop"
	CodeUndriven       = "undriven-node"
	CodeDangling       = "dangling-node"
	CodeTriUnresolved  = "tri-unresolved"
	CodeMultiDriver    = "multi-driver"
	CodeUnreachable    = "unreachable"
	CodeXSource        = "x-source"
	CodeNonUnitDelay   = "non-unit-delay"
	CodeImbalance      = "partition-imbalance"
)

// Diag is one typed diagnostic.
type Diag struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Elem     string   `json:"elem,omitempty"` // element the diagnostic anchors to
	Node     string   `json:"node,omitempty"` // node the diagnostic anchors to
	Path     []string `json:"path,omitempty"` // element path (cycles, X-source roots)
	Msg      string   `json:"msg"`
}

// String formats the diagnostic as "severity code: msg".
func (d Diag) String() string {
	return fmt.Sprintf("%s %s: %s", d.Severity, d.Code, d.Msg)
}

// Options configures an analysis.
type Options struct {
	// Workers > 0 adds the partition-quality report for that many
	// partitions under Strategy. Workers == 0 skips the partition pass
	// (the engine pre-flight path does this: partition quality is
	// reporting, not correctness).
	Workers  int
	Strategy partition.Strategy
}

// Report is the structured outcome of one analysis.
type Report struct {
	Circuit  string `json:"circuit"`
	Nodes    int    `json:"nodes"`
	Elements int    `json:"elements"`

	Diags []Diag `json:"diags"`

	// MaxLevel is the combinational critical-path depth (levels are
	// topological depths over combinational edges). -1 when no element
	// could be levelized, which happens only on corrupt graphs.
	MaxLevel int `json:"max_level"`
	// LevelWidths[l] counts elements at depth l — the parallelism profile
	// available to the synchronous and compiled algorithms.
	LevelWidths []int `json:"level_widths,omitempty"`
	// Unlevelized counts elements inside (or fed only through)
	// combinational cycles, which have no topological depth.
	Unlevelized int `json:"unlevelized,omitempty"`
	// Levels holds the per-element depth (-1 for unlevelized elements),
	// indexed by ElemID. Omitted from JSON: it is O(circuit).
	Levels []int `json:"-"`

	// Partition is the partition-quality summary, present when
	// Options.Workers > 0.
	Partition *PartitionReport `json:"partition,omitempty"`
}

// Counts returns the number of diagnostics at each severity.
func (r *Report) Counts() (errs, warns, infos int) {
	for _, d := range r.Diags {
		switch d.Severity {
		case Error:
			errs++
		case Warning:
			warns++
		default:
			infos++
		}
	}
	return errs, warns, infos
}

// Blocking returns the diagnostics that make an engine refuse the
// circuit: Errors always, Warnings too when strict.
func (r *Report) Blocking(strict bool) []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Severity == Error || strict && d.Severity == Warning {
			out = append(out, d)
		}
	}
	return out
}

// Err summarises the blocking diagnostics as an error, or returns nil
// when the circuit passes at the given strictness.
func (r *Report) Err(strict bool) error {
	bl := r.Blocking(strict)
	if len(bl) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d blocking diagnostic(s)", len(bl))
	for i, d := range bl {
		if i == 3 {
			fmt.Fprintf(&sb, "; and %d more", len(bl)-i)
			break
		}
		fmt.Fprintf(&sb, "; [%s] %s: %s", d.Severity, d.Code, d.Msg)
	}
	return fmt.Errorf("%s", sb.String())
}

func (r *Report) add(d Diag) { r.Diags = append(r.Diags, d) }

// Analyze runs every pass over c and returns the report. The circuit is
// only read; Analyze is safe to call concurrently with simulations of the
// same circuit.
func Analyze(c *circuit.Circuit, opts Options) *Report {
	r := &Report{
		Circuit:  c.Name,
		Nodes:    len(c.Nodes),
		Elements: len(c.Elems),
		MaxLevel: -1,
	}
	if r.checkStructure(c); len(r.Diags) > 0 {
		// The graph is not safe to traverse; report the corruption alone.
		r.sortDiags()
		return r
	}
	g := buildGraph(c)
	r.checkNodes(c)
	r.checkDelays(c)
	r.checkZeroDelayCycles(c, g)
	r.checkCombLoops(c, g)
	r.levelize(c, g)
	r.checkReachability(c, g)
	if opts.Workers > 0 {
		r.Partition = partitionReport(c, opts)
		if r.Partition.Imbalance > imbalanceThreshold {
			r.add(Diag{
				Code:     CodeImbalance,
				Severity: Info,
				Msg: fmt.Sprintf("partition imbalance %.2f across %d workers under %s (1.00 is perfect)",
					r.Partition.Imbalance, opts.Workers, opts.Strategy),
			})
		}
	}
	r.sortDiags()
	return r
}

// sortDiags orders diagnostics most severe first, then by code and anchor
// so output is deterministic.
func (r *Report) sortDiags() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Elem != b.Elem {
			return a.Elem < b.Elem
		}
		return a.Node < b.Node
	})
}

// checkStructure validates that every ID inside the circuit is in range
// and that driver back-pointers are consistent, so later passes can index
// freely. Builder output always passes; hand-assembled Circuit literals
// may not.
func (r *Report) checkStructure(c *circuit.Circuit) {
	nn, ne := len(c.Nodes), len(c.Elems)
	nodeOK := func(id circuit.NodeID) bool { return id >= 0 && int(id) < nn }
	elemOK := func(id circuit.ElemID) bool { return id >= 0 && int(id) < ne }
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Driver != circuit.NoElem && !elemOK(nd.Driver) {
			r.add(Diag{Code: CodeCorrupt, Severity: Error, Node: nd.Name,
				Msg: fmt.Sprintf("node %q has out-of-range driver element %d", nd.Name, nd.Driver)})
		}
		for _, ref := range nd.Fanout {
			if !elemOK(ref.Elem) {
				r.add(Diag{Code: CodeCorrupt, Severity: Error, Node: nd.Name,
					Msg: fmt.Sprintf("node %q fans out to out-of-range element %d", nd.Name, ref.Elem)})
				continue
			}
			if int(ref.Port) >= len(c.Elems[ref.Elem].In) || c.Elems[ref.Elem].In[ref.Port] != circuit.NodeID(i) {
				r.add(Diag{Code: CodeCorrupt, Severity: Error, Node: nd.Name,
					Msg: fmt.Sprintf("node %q fan-out entry (%q, port %d) does not match that element's inputs",
						nd.Name, c.Elems[ref.Elem].Name, ref.Port)})
			}
		}
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		for _, n := range el.In {
			if !nodeOK(n) {
				r.add(Diag{Code: CodeCorrupt, Severity: Error, Elem: el.Name,
					Msg: fmt.Sprintf("element %q reads out-of-range node %d", el.Name, n)})
			}
		}
		for _, n := range el.Out {
			if !nodeOK(n) {
				r.add(Diag{Code: CodeCorrupt, Severity: Error, Elem: el.Name,
					Msg: fmt.Sprintf("element %q drives out-of-range node %d", el.Name, n)})
			}
		}
	}
}

// checkNodes looks for floating inputs, disconnected nodes and the two
// drive-conflict shapes the single-driver circuit model can express:
// tri-state outputs consumed without resolution, and wired-resolution
// elements whose inputs are always-driving.
func (r *Report) checkNodes(c *circuit.Circuit) {
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Driver == circuit.NoElem {
			if len(nd.Fanout) > 0 {
				r.add(Diag{Code: CodeUndriven, Severity: Error, Node: nd.Name,
					Msg: fmt.Sprintf("node %q has no driver but feeds %d input(s) (e.g. %s): those inputs float at X forever",
						nd.Name, len(nd.Fanout), portName(c, nd.Fanout[0]))})
			} else {
				r.add(Diag{Code: CodeDangling, Severity: Info, Node: nd.Name,
					Msg: fmt.Sprintf("node %q is declared but neither driven nor read", nd.Name)})
			}
			continue
		}
		if c.Elems[nd.Driver].Kind == circuit.KindTri {
			var bad []string
			for _, ref := range nd.Fanout {
				if c.Elems[ref.Elem].Kind != circuit.KindRes2 {
					bad = append(bad, c.Elems[ref.Elem].Name)
				}
			}
			if len(bad) > 0 {
				r.add(Diag{Code: CodeTriUnresolved, Severity: Warning, Node: nd.Name,
					Msg: fmt.Sprintf("tri-state node %q feeds non-resolving input(s) %s: Z will reach ordinary logic",
						nd.Name, nameList(bad, 4))})
			}
		}
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		if el.Kind != circuit.KindRes2 {
			continue
		}
		var strong []string
		for _, in := range el.In {
			d := c.Nodes[in].Driver
			if d == circuit.NoElem {
				continue // already an undriven-node diagnostic
			}
			if k := c.Elems[d].Kind; k != circuit.KindTri && k != circuit.KindRes2 {
				strong = append(strong, c.Elems[d].Name)
			}
		}
		if len(strong) >= 2 {
			r.add(Diag{Code: CodeMultiDriver, Severity: Warning, Elem: el.Name,
				Msg: fmt.Sprintf("wired resolution %q joins %d always-driving outputs (%s): a multi-driver conflict, not a bus",
					el.Name, len(strong), nameList(strong, 4))})
		}
	}
}

// checkDelays summarises delay anomalies: zero-delay elements (the
// event-driven engines schedule at t+delay, so delay 0 re-enters the
// current instant) and non-unit delays (compiled mode treats everything
// as unit delay, so histories diverge).
func (r *Report) checkDelays(c *circuit.Circuit) {
	var zero, nonUnit []string
	for i := range c.Elems {
		el := &c.Elems[i]
		switch {
		case el.Delay == 0:
			zero = append(zero, el.Name)
		case el.Delay != 1:
			nonUnit = append(nonUnit, el.Name)
		}
	}
	if len(zero) > 0 {
		r.add(Diag{Code: CodeZeroDelayElem, Severity: Warning, Elem: zero[0],
			Msg: fmt.Sprintf("%d zero-delay element(s) (%s): events re-enter the instant they were produced; every engine assumes delay >= 1 for monotone progress",
				len(zero), nameList(zero, 4))})
	}
	if len(nonUnit) > 0 {
		r.add(Diag{Code: CodeNonUnitDelay, Severity: Info, Elem: nonUnit[0],
			Msg: fmt.Sprintf("%d element(s) with delay != 1 (%s): compiled-mode's unit-delay histories will diverge from the event-driven engines",
				len(nonUnit), nameList(nonUnit, 4))})
	}
}

// checkZeroDelayCycles finds cycles made entirely of zero-delay elements
// over combinational edges: an event in such a cycle schedules its
// successor at the same timestamp forever, so node valid-times stop
// advancing and the asynchronous engines livelock. This is the deadlock
// class conservative PDES systems reject statically, and the one hazard
// the paper's monotone valid-time argument cannot survive.
func (r *Report) checkZeroDelayCycles(c *circuit.Circuit, g *graph) {
	keep := make([]bool, len(c.Elems))
	any := false
	for i := range c.Elems {
		if c.Elems[i].Delay == 0 {
			keep[i] = true
			any = true
		}
	}
	if !any {
		return
	}
	sub := restrict(g.comb, keep)
	for _, comp := range sccs(sub, keep) {
		if !isCycle(sub, comp) {
			continue
		}
		inComp := make([]bool, len(c.Elems))
		for _, v := range comp {
			inComp[v] = true
		}
		cyc := findCycle(sub, inComp, minVertex(comp))
		path := elemNames(c, cyc)
		r.add(Diag{Code: CodeZeroDelayCycle, Severity: Error, Elem: path[0], Path: path,
			Msg: fmt.Sprintf("zero-delay combinational cycle: %s -> %s: valid-times cannot advance through it; asynchronous engines livelock, event-driven engines loop at one timestamp",
				strings.Join(path, " -> "), path[0])})
	}
}

// checkCombLoops reports combinational cycles that do carry delay — legal
// (the feedback-chain benchmark is one) but exactly the structure the
// paper's T4 experiment shows serialising the asynchronous algorithm to
// one event at a time.
func (r *Report) checkCombLoops(c *circuit.Circuit, g *graph) {
	const maxReported = 10
	reported := 0
	for _, comp := range sccs(g.comb, nil) {
		if !isCycle(g.comb, comp) {
			continue
		}
		// Pure zero-delay cycles already got an Error.
		allZero := true
		var total circuit.Time
		for _, v := range comp {
			if d := c.Elems[v].Delay; d != 0 {
				allZero = false
			}
			total += c.Elems[v].Delay
		}
		if allZero {
			continue
		}
		if reported++; reported > maxReported {
			continue
		}
		inComp := make([]bool, len(c.Elems))
		for _, v := range comp {
			inComp[v] = true
		}
		cyc := findCycle(g.comb, inComp, minVertex(comp))
		path := elemNames(c, cyc)
		r.add(Diag{Code: CodeCombLoop, Severity: Info, Elem: path[0], Path: path,
			Msg: fmt.Sprintf("combinational loop of %d element(s) (%s ...): serialises the asynchronous algorithm to one event at a time (paper T4)",
				len(comp), nameList(path, 4))})
	}
	if reported > maxReported {
		r.add(Diag{Code: CodeCombLoop, Severity: Info,
			Msg: fmt.Sprintf("%d further combinational loop(s) not listed", reported-maxReported)})
	}
}

// levelize fills the Report's levelization fields. Routed through the
// memoized schedule so an Analyze followed by a levelized-engine run pays
// for one Kahn pass; the report owns its copy because callers may inspect
// and mutate Report.Levels.
func (r *Report) levelize(c *circuit.Circuit, g *graph) {
	e := levelsFor(c)
	levels, maxLevel := make([]int, len(e.levels)), e.maxLevel
	copy(levels, e.levels)
	r.Levels = levels
	r.MaxLevel = maxLevel
	if maxLevel >= 0 {
		r.LevelWidths = make([]int, maxLevel+1)
	}
	for _, l := range levels {
		if l < 0 {
			r.Unlevelized++
			continue
		}
		r.LevelWidths[l]++
	}
}

// checkReachability walks forward from every generator; elements the walk
// never reaches can only ever output X. The roots of each unreachable
// region (source SCCs of its condensation) are reported as X-sources with
// their downstream blast radius.
func (r *Report) checkReachability(c *circuit.Circuit, g *graph) {
	n := len(c.Elems)
	reached := make([]bool, n)
	var queue []int32
	for i := range c.Elems {
		if c.Elems[i].IsGenerator() {
			reached[i] = true
			queue = append(queue, int32(i))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.full[v] {
			if !reached[w] {
				reached[w] = true
				queue = append(queue, w)
			}
		}
	}
	unreachable := make([]bool, n)
	var names []string
	count := 0
	for i := range c.Elems {
		if !reached[i] {
			unreachable[i] = true
			names = append(names, c.Elems[i].Name)
			count++
		}
	}
	if count == 0 {
		return
	}
	r.add(Diag{Code: CodeUnreachable, Severity: Warning, Elem: names[0],
		Msg: fmt.Sprintf("%d of %d element(s) unreachable from any generator (%s): their outputs stay X for the whole run",
			count, n, nameList(names, 6))})

	// Condense the unreachable subgraph; its source components are the
	// X-roots. sccs returns reverse topological order, so a component is
	// a source iff no earlier-ordered... order is reverse-topological
	// (successors first); compute incoming-edge sets explicitly instead.
	unsub := restrict(g.full, unreachable)
	comps := sccs(g.full, unreachable)
	compOf := make([]int, n)
	for i := range compOf {
		compOf[i] = -1
	}
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	hasIncoming := make([]bool, len(comps))
	for v := 0; v < n; v++ {
		if !unreachable[v] {
			continue
		}
		for _, w := range g.full[v] {
			if unreachable[w] && compOf[w] != compOf[v] {
				hasIncoming[compOf[w]] = true
			}
		}
	}
	for ci, comp := range comps {
		if hasIncoming[ci] {
			continue
		}
		// Blast radius: everything reachable from this root within the
		// unreachable region, minus the root itself.
		seen := make([]bool, n)
		var bfs []int32
		for _, v := range comp {
			seen[v] = true
			bfs = append(bfs, v)
		}
		downstream := 0
		for len(bfs) > 0 {
			v := bfs[0]
			bfs = bfs[1:]
			for _, w := range g.full[v] {
				if unreachable[w] && !seen[w] {
					seen[w] = true
					downstream++
					bfs = append(bfs, w)
				}
			}
		}
		path := elemNames(c, comp)
		sort.Strings(path)
		what := "reads only undriven or stimulus-free inputs"
		if isCycle(unsub, comp) {
			what = "forms a feedback loop with no generator input"
		}
		r.add(Diag{Code: CodeXSource, Severity: Warning, Elem: path[0], Path: path,
			Msg: fmt.Sprintf("X-source %s %s; poisons %d downstream element(s)",
				nameList(path, 4), what, downstream)})
	}
}

// ---- small helpers ----

// restrict returns a view of adj with edges from or to dropped vertices
// removed. Cheap: it filters lazily by wrapping each successor scan.
func restrict(adj [][]int32, keep []bool) [][]int32 {
	out := make([][]int32, len(adj))
	for v := range adj {
		if !keep[v] {
			continue
		}
		for _, w := range adj[v] {
			if keep[w] {
				out[v] = append(out[v], w)
			}
		}
	}
	return out
}

func minVertex(comp []int32) int32 {
	min := comp[0]
	for _, v := range comp[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

func elemNames(c *circuit.Circuit, ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.Elems[id].Name
	}
	return out
}

func nameList(names []string, max int) string {
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return strings.Join(names[:max], ", ") + ", ..."
}

func portName(c *circuit.Circuit, ref circuit.PortRef) string {
	return fmt.Sprintf("%s port %d", c.Elems[ref.Elem].Name, ref.Port)
}

const imbalanceThreshold = 1.25
