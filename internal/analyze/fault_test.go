package analyze

import (
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// chainCircuit builds clk -> inv0 -> n0 -> inv1 -> n1 -> inv2 -> n2, the
// canonical collapsing case: every inverter output fault is equivalent to a
// fault on the chain head.
func chainCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("fault-chain")
	clk := b.Bit("clk")
	b.Clock("gen", clk, 2, 0, 1)
	prev := clk
	for i := 0; i < 3; i++ {
		out := b.Bit([]string{"n0", "n1", "n2"}[i])
		b.Gate(circuit.KindNot, []string{"inv0", "inv1", "inv2"}[i], 1, out, prev)
		prev = out
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWideFaultListCollapse pins the collapsing rule on an inverter chain:
// the full universe enumerates both polarities of every node bit, the
// collapsed list keeps only the chain head's pair.
func TestWideFaultListCollapse(t *testing.T) {
	c := chainCircuit(t)

	full := FaultList(c, false)
	if got, want := len(full), TotalFaultSites(c); got != want {
		t.Fatalf("uncollapsed list has %d faults, want %d", got, want)
	}
	if want := 2 * 4; len(full) != want { // 4 single-bit nodes x 2 polarities
		t.Fatalf("uncollapsed list has %d faults, want %d", len(full), want)
	}

	collapsed := FaultList(c, true)
	if len(collapsed) != 2 {
		t.Fatalf("collapsed list has %d faults, want 2 (chain head only): %v", len(collapsed), collapsed)
	}
	clk := c.ByName["clk"]
	for i, f := range collapsed {
		if f.Node != clk {
			t.Errorf("collapsed fault %d on node %d, want clk (%d)", i, f.Node, clk)
		}
	}
	// Deterministic order: sa0 before sa1 at each site.
	if collapsed[0].StuckHigh || !collapsed[1].StuckHigh {
		t.Fatalf("collapsed list order not sa0,sa1: %v", collapsed)
	}
}

// TestFaultListFanoutBlocksCollapse: an inverter whose input feeds a second
// reader must keep its output faults — the input fault is distinguishable
// through the other path.
func TestFaultListFanoutBlocksCollapse(t *testing.T) {
	b := circuit.NewBuilder("fault-fanout")
	clk := b.Bit("clk")
	b.Clock("gen", clk, 2, 0, 1)
	n0, n1 := b.Bit("n0"), b.Bit("n1")
	b.Gate(circuit.KindNot, "inv0", 1, n0, clk)
	b.Gate(circuit.KindNot, "inv1", 1, n1, clk)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	collapsed := FaultList(c, true)
	if got, want := len(collapsed), TotalFaultSites(c); got != want {
		t.Fatalf("fanout circuit collapsed %d faults away, want none (%d of %d kept)",
			want-got, got, want)
	}
}

// TestFaultSiteLabels pins the site label format coverage reports key on.
func TestFaultSiteLabels(t *testing.T) {
	b := circuit.NewBuilder("fault-sites")
	bus := b.Node("bus", 4)
	b.Const("gen", bus, logic.V(4, 5))
	one := b.Bit("one")
	b.AddElement(circuit.KindRedOr, "red", 1, []circuit.NodeID{one}, []circuit.NodeID{bus}, circuit.Params{})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	busID := c.ByName["bus"]
	oneID := c.ByName["one"]
	cases := []struct {
		f    Fault
		want string
	}{
		{Fault{Node: busID, Bit: 2, StuckHigh: true}, "bus[2]:sa1"},
		{Fault{Node: busID, Bit: 0, StuckHigh: false}, "bus[0]:sa0"},
		{Fault{Node: oneID, Bit: 0, StuckHigh: true}, "one:sa1"},
	}
	for _, tc := range cases {
		if got := tc.f.Site(c); got != tc.want {
			t.Errorf("Site(%+v) = %q, want %q", tc.f, got, tc.want)
		}
	}
	if got, want := TotalFaultSites(c), 2*(4+1); got != want {
		t.Errorf("TotalFaultSites = %d, want %d", got, want)
	}
}
