package analyze

import "parsim/internal/circuit"

// graph is the element-level dependency view of a circuit: one vertex per
// element, one edge driver -> consumer for every (node, fan-out port)
// pair. Two edge sets are kept:
//
//   - full: every propagation edge, used for reachability (can a stimulus
//     event ever arrive here?);
//   - comb: edges that can forward an event without waiting for a separate
//     trigger, used for loop detection and levelization. An edge into a
//     clocked element's non-trigger port (a DFF's data input, a RAM's
//     write port) is cut: the value is merely sampled when the trigger
//     fires, so it cannot keep a combinational wave circulating.
type graph struct {
	full [][]int32
	comb [][]int32
}

func buildGraph(c *circuit.Circuit) *graph {
	n := len(c.Elems)
	g := &graph{
		full: make([][]int32, n),
		comb: make([][]int32, n),
	}
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.Driver == circuit.NoElem {
			continue
		}
		d := int32(nd.Driver)
		for _, ref := range nd.Fanout {
			g.full[d] = append(g.full[d], int32(ref.Elem))
			if combPort(c.Elems[ref.Elem].Kind, ref.Port) {
				g.comb[d] = append(g.comb[d], int32(ref.Elem))
			}
		}
	}
	return g
}

// combPort reports whether an event arriving on the given input port of an
// element of kind k can propagate to the element's outputs on its own.
// For kinds with trigger ports (TriggerPorts != nil) only the trigger
// inputs qualify; everything else is sampled state.
func combPort(k circuit.Kind, port int32) bool {
	tp := circuit.TriggerPorts(k)
	if tp == nil {
		return true
	}
	for _, p := range tp {
		if int32(p) == port {
			return true
		}
	}
	return false
}

// sccs runs Tarjan's algorithm over adj restricted to the vertices where
// keep[v] is true (keep == nil keeps everything) and returns the strongly
// connected components in reverse topological order.
func sccs(adj [][]int32, keep []bool) [][]int32 {
	n := len(adj)
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack []int32
		comps [][]int32
		next  int32
	)
	kept := func(v int32) bool { return keep == nil || keep[v] }

	// Iterative Tarjan: frame.ei is the next out-edge of frame.v to scan.
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	for root := int32(0); root < int32(n); root++ {
		if !kept(root) || index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if !kept(w) {
					continue
				}
				switch {
				case index[w] == unvisited:
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				case onStack[w]:
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int32
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// hasSelfEdge reports whether v has an edge to itself in adj (restricted
// to kept vertices, though a self-edge is by definition kept with v).
func hasSelfEdge(adj [][]int32, v int32) bool {
	for _, w := range adj[v] {
		if w == v {
			return true
		}
	}
	return false
}

// isCycle reports whether comp is a genuine cycle: more than one vertex,
// or a single vertex with a self-edge.
func isCycle(adj [][]int32, comp []int32) bool {
	return len(comp) > 1 || hasSelfEdge(adj, comp[0])
}

// findCycle extracts one explicit cycle through the component, as a
// vertex sequence whose last element closes back on the first. inComp
// must be true exactly for the component's vertices.
func findCycle(adj [][]int32, inComp []bool, start int32) []int32 {
	pos := map[int32]int{start: 0}
	path := []int32{start}
	cur := start
	for {
		var nxt int32 = -1
		for _, w := range adj[cur] {
			if inComp[w] {
				nxt = w
				break
			}
		}
		if nxt < 0 {
			// Cannot happen inside a non-trivial SCC, but stay safe.
			return path
		}
		if at, seen := pos[nxt]; seen {
			return path[at:]
		}
		pos[nxt] = len(path)
		path = append(path, nxt)
		cur = nxt
	}
}

// levelize computes each element's topological depth over the
// combinational edge set: generators and elements with no combinational
// predecessors sit at level 0, every other acyclic element at
// 1 + max(predecessor level). Elements inside (or fed only through)
// combinational cycles get level -1.
func levelize(g *graph) (levels []int, maxLevel int) {
	n := len(g.comb)
	indeg := make([]int, n)
	for _, succs := range g.comb {
		for _, w := range succs {
			indeg[w]++
		}
	}
	levels = make([]int, n)
	for i := range levels {
		levels[i] = -1
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			levels[v] = 0
			queue = append(queue, int32(v))
		}
	}
	maxLevel = -1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if levels[v] > maxLevel {
			maxLevel = levels[v]
		}
		for _, w := range g.comb[v] {
			if levels[w] < levels[v]+1 {
				levels[w] = levels[v] + 1
			}
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	// Vertices whose indegree never reached zero are in or behind a cycle:
	// reset any provisional level.
	for v := 0; v < n; v++ {
		if indeg[v] > 0 {
			levels[v] = -1
		}
	}
	return levels, maxLevel
}
