package analyze

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/gen"
	"parsim/internal/logic"
	"parsim/internal/partition"
)

// zeroDelayRing builds the canonical livelock hazard: a clock XORed into a
// ring of inverters, every ring element with delay 0. With the clock high
// the loop has no stable assignment, so events chase each other at one
// timestamp forever.
func zeroDelayRing(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("zero-delay-ring")
	clk := b.Bit("clk")
	n0, n1, n2 := b.Bit("n0"), b.Bit("n1"), b.Bit("n2")
	b.Clock("osc", clk, 4, 0, 0)
	b.Gate(circuit.KindXor, "inject", 0, n0, clk, n2)
	b.Gate(circuit.KindNot, "inv1", 0, n1, n0)
	b.Gate(circuit.KindNot, "inv2", 0, n2, n1)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c
}

func find(r *Report, code string) *Diag {
	for i := range r.Diags {
		if r.Diags[i].Code == code {
			return &r.Diags[i]
		}
	}
	return nil
}

func TestZeroDelayCycle(t *testing.T) {
	r := Analyze(zeroDelayRing(t), Options{})
	d := find(r, CodeZeroDelayCycle)
	if d == nil {
		t.Fatalf("no %s diagnostic: %+v", CodeZeroDelayCycle, r.Diags)
	}
	if d.Severity != Error {
		t.Errorf("severity = %v, want Error", d.Severity)
	}
	// The offending element path must walk the whole ring.
	want := map[string]bool{"inject": true, "inv1": true, "inv2": true}
	if len(d.Path) != 3 {
		t.Fatalf("path = %v, want the 3 ring elements", d.Path)
	}
	for _, name := range d.Path {
		if !want[name] {
			t.Errorf("path %v contains unexpected element %q", d.Path, name)
		}
	}
	if err := r.Err(false); err == nil || !strings.Contains(err.Error(), CodeZeroDelayCycle) {
		t.Errorf("Err(warn) = %v, want blocking zero-delay-cycle", err)
	}
	// A zero-delay-elem warning rides along.
	if find(r, CodeZeroDelayElem) == nil {
		t.Errorf("no %s warning: %+v", CodeZeroDelayElem, r.Diags)
	}
}

func TestDelayedCombLoopIsInfoOnly(t *testing.T) {
	r := Analyze(gen.FeedbackChain(15), Options{})
	d := find(r, CodeCombLoop)
	if d == nil {
		t.Fatalf("no %s diagnostic on the feedback chain: %+v", CodeCombLoop, r.Diags)
	}
	if d.Severity != Info {
		t.Errorf("severity = %v, want Info (a delayed ring is legal)", d.Severity)
	}
	if find(r, CodeZeroDelayCycle) != nil {
		t.Error("delayed ring must not be a zero-delay cycle")
	}
	// T4's ring must pass even strict lint: it is the paper's benchmark.
	if err := r.Err(true); err != nil {
		t.Errorf("Err(strict) = %v, want nil", err)
	}
	// The ring elements cannot be levelized.
	if r.Unlevelized != 16 { // 15 inverters + mux
		t.Errorf("unlevelized = %d, want 16", r.Unlevelized)
	}
}

func TestMultiDriverAndTriDiagnostics(t *testing.T) {
	b := circuit.NewBuilder("drive")
	a, bb := b.Bit("a"), b.Bit("b")
	res := b.Bit("res")
	en := b.Bit("en")
	tout := b.Bit("tout")
	y := b.Bit("y")
	b.Const("ca", a, logic.V(1, 0))
	b.Const("cb", bb, logic.V(1, 1))
	// Two always-driving outputs joined by a wired resolution.
	b.Gate(circuit.KindRes2, "join", 1, res, a, bb)
	// A tri-state output consumed by plain logic.
	b.Const("cen", en, logic.V(1, 1))
	b.AddElement(circuit.KindTri, "t", 1, []circuit.NodeID{tout},
		[]circuit.NodeID{en, a}, circuit.Params{})
	b.Gate(circuit.KindAnd, "g", 1, y, tout, res)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Analyze(c, Options{})
	if d := find(r, CodeMultiDriver); d == nil || d.Severity != Warning {
		t.Errorf("multi-driver diagnostic = %+v, want Warning", d)
	} else if !strings.Contains(d.Msg, "ca") || !strings.Contains(d.Msg, "cb") {
		t.Errorf("multi-driver msg misses driver names: %s", d.Msg)
	}
	if d := find(r, CodeTriUnresolved); d == nil || d.Severity != Warning {
		t.Errorf("tri-unresolved diagnostic = %+v, want Warning", d)
	}
	// Warnings block under strict but not warn mode.
	if err := r.Err(false); err != nil {
		t.Errorf("Err(warn) = %v, want nil", err)
	}
	if err := r.Err(true); err == nil {
		t.Error("Err(strict) = nil, want blocking warnings")
	}
}

func TestFloatingAndDanglingNodes(t *testing.T) {
	// Hand-assembled circuit (the Builder refuses undriven nodes; a
	// Circuit literal does not, and the analyzer must catch it).
	c := &circuit.Circuit{
		Name: "hand",
		Nodes: []circuit.Node{
			{ID: 0, Name: "float", Width: 1, Driver: circuit.NoElem,
				Fanout: []circuit.PortRef{{Elem: 0, Port: 0}}},
			{ID: 1, Name: "y", Width: 1, Driver: 0},
			{ID: 2, Name: "island", Width: 1, Driver: circuit.NoElem},
		},
		Elems: []circuit.Element{
			{ID: 0, Name: "g", Kind: circuit.KindBuf, In: []circuit.NodeID{0},
				Out: []circuit.NodeID{1}, Delay: 1},
		},
	}
	r := Analyze(c, Options{})
	if d := find(r, CodeUndriven); d == nil || d.Severity != Error || d.Node != "float" {
		t.Errorf("undriven diagnostic = %+v", d)
	}
	if d := find(r, CodeDangling); d == nil || d.Severity != Info || d.Node != "island" {
		t.Errorf("dangling diagnostic = %+v", d)
	}
}

func TestCorruptGraph(t *testing.T) {
	c := &circuit.Circuit{
		Name: "corrupt",
		Nodes: []circuit.Node{
			{ID: 0, Name: "n", Width: 1, Driver: 7}, // no such element
		},
	}
	r := Analyze(c, Options{})
	d := find(r, CodeCorrupt)
	if d == nil || d.Severity != Error {
		t.Fatalf("corrupt diagnostic = %+v", d)
	}
	// Corruption short-circuits the other passes.
	if len(r.Diags) != 1 {
		t.Errorf("diags = %+v, want the corruption alone", r.Diags)
	}
}

func TestUnreachableAndXSource(t *testing.T) {
	// Cross-coupled inverter pair with no generator anywhere: builds
	// fine, but no stimulus can ever reach it.
	b := circuit.NewBuilder("sr")
	q, qb := b.Bit("q"), b.Bit("qb")
	b.Gate(circuit.KindNot, "g1", 1, q, qb)
	b.Gate(circuit.KindNot, "g2", 1, qb, q)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Analyze(c, Options{})
	if d := find(r, CodeUnreachable); d == nil || d.Severity != Warning {
		t.Fatalf("unreachable diagnostic = %+v", d)
	}
	d := find(r, CodeXSource)
	if d == nil || d.Severity != Warning {
		t.Fatalf("x-source diagnostic = %+v", d)
	}
	if len(d.Path) != 2 || d.Path[0] != "g1" || d.Path[1] != "g2" {
		t.Errorf("x-source root = %v, want [g1 g2]", d.Path)
	}
	if !strings.Contains(d.Msg, "feedback loop") {
		t.Errorf("x-source msg should identify the stimulus-free loop: %s", d.Msg)
	}
}

func TestLevelizationDepthAndTriggerCut(t *testing.T) {
	b := circuit.NewBuilder("levels")
	clk := b.Bit("clk")
	n0, n1, n2 := b.Bit("n0"), b.Bit("n1"), b.Bit("n2")
	q, m := b.Bit("q"), b.Bit("m")
	b.Clock("osc", clk, 4, 0, 0)
	b.Const("c0", n0, logic.V(1, 0))
	b.Gate(circuit.KindNot, "i1", 1, n1, n0)
	b.Gate(circuit.KindNot, "i2", 1, n2, n1)
	b.AddElement(circuit.KindDFF, "ff", 1, []circuit.NodeID{q},
		[]circuit.NodeID{clk, n2}, circuit.Params{})
	b.Gate(circuit.KindNot, "i3", 1, m, q)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := Analyze(c, Options{})
	level := func(name string) int { return r.Levels[c.ElByName[name]] }
	if level("osc") != 0 || level("c0") != 0 {
		t.Errorf("generator levels = %d, %d, want 0, 0", level("osc"), level("c0"))
	}
	if level("i1") != 1 || level("i2") != 2 {
		t.Errorf("chain levels = %d, %d, want 1, 2", level("i1"), level("i2"))
	}
	// The DFF ranks off its clock (trigger), not its depth-2 data input.
	if level("ff") != 1 {
		t.Errorf("dff level = %d, want 1 (clock trigger, data edge cut)", level("ff"))
	}
	if level("i3") != 2 {
		t.Errorf("post-register level = %d, want 2", level("i3"))
	}
	if r.MaxLevel != 2 {
		t.Errorf("max level = %d, want 2", r.MaxLevel)
	}
	wantWidths := []int{2, 2, 2} // osc+c0 / i1+ff / i2+i3
	for l, w := range wantWidths {
		if r.LevelWidths[l] != w {
			t.Errorf("level %d width = %d, want %d", l, r.LevelWidths[l], w)
		}
	}
	if r.Unlevelized != 0 {
		t.Errorf("unlevelized = %d, want 0", r.Unlevelized)
	}
}

func TestPartitionQualityReport(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{
		Rows: 8, Cols: 8, ActiveRows: 8, TogglePeriod: 1,
	})
	// 3 workers so the contiguous blocks of ceil(64/3) = 22 elements
	// split inverter rows mid-chain and produce cut edges.
	r := Analyze(c, Options{Workers: 3, Strategy: partition.Blocks})
	p := r.Partition
	if p == nil {
		t.Fatal("no partition report")
	}
	if p.Workers != 3 || p.Strategy != "blocks" {
		t.Errorf("partition header = %+v", p)
	}
	elems, cost := 0, int64(0)
	for _, pi := range p.Parts {
		elems += pi.Elems
		cost += pi.Cost
	}
	if elems != 64 { // 8x8 inverters; generators excluded
		t.Errorf("partitioned elems = %d, want 64", elems)
	}
	if cost != 64 {
		t.Errorf("partitioned cost = %d, want 64", cost)
	}
	// 8 rows of 8 chained inverters: 56 inverter-to-inverter edges.
	if p.TotalEdges != 56 {
		t.Errorf("total edges = %d, want 56", p.TotalEdges)
	}
	if p.CutEdges <= 0 || p.CutEdges >= p.TotalEdges {
		t.Errorf("cut edges = %d of %d, want a proper subset", p.CutEdges, p.TotalEdges)
	}
	if p.Imbalance < 1.0 {
		t.Errorf("imbalance = %f, want >= 1", p.Imbalance)
	}
	// The engine pre-flight path skips the partition pass.
	if Analyze(c, Options{}).Partition != nil {
		t.Error("partition report computed without Workers")
	}
}

func TestCleanCircuitPassesStrict(t *testing.T) {
	c := gen.InverterArray(gen.InverterArrayConfig{
		Rows: 4, Cols: 4, ActiveRows: 4, TogglePeriod: 1,
	})
	r := Analyze(c, Options{})
	if err := r.Err(true); err != nil {
		t.Errorf("clean circuit blocked under strict: %v", err)
	}
	errs, warns, _ := r.Counts()
	if errs != 0 || warns != 0 {
		t.Errorf("clean circuit produced %d errors, %d warnings: %+v", errs, warns, r.Diags)
	}
}

func TestReportOutputFormats(t *testing.T) {
	r := Analyze(zeroDelayRing(t), Options{Workers: 2, Strategy: partition.RoundRobin})
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"zero-delay-cycle", "levelization", "partition: 2 workers"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output misses %q:\n%s", want, text.String())
		}
	}
	var jsonOut bytes.Buffer
	if err := r.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Circuit string `json:"circuit"`
		Diags   []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
		} `json:"diags"`
		Partition *struct {
			Workers int `json:"workers"`
		} `json:"partition"`
	}
	if err := json.Unmarshal(jsonOut.Bytes(), &decoded); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, jsonOut.String())
	}
	if decoded.Circuit != "zero-delay-ring" || decoded.Partition == nil || decoded.Partition.Workers != 2 {
		t.Errorf("decoded = %+v", decoded)
	}
	found := false
	for _, d := range decoded.Diags {
		if d.Code == CodeZeroDelayCycle && d.Severity == "error" {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON misses the zero-delay-cycle error: %s", jsonOut.String())
	}
}
