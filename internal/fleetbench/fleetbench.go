// Package fleetbench is the d1 harness experiment: job throughput of a
// parsimd fleet as nodes are added, plus the latency of a dedup cache
// hit against re-simulating the same submission.
//
// Like the paper experiments in internal/harness, d1 has two modes. In
// model mode (the default behind `make bench-fleet`) the throughput
// curve comes from a deterministic discrete-event model of the fleet —
// jobs are routed through the REAL consistent-hash ring with the real
// spill-on-full and park-when-fleet-full policies, and each node serves
// its queue serially — so the curve reproduces the scheduling behaviour
// of an n-node fleet on any host, including single-core CI runners. In
// real mode the bench boots an actual in-process fleet (coordinator +
// worker servers over loopback HTTP) and measures wall clock; on a host
// with fewer cores than nodes the CPU-bound jobs serialise and the curve
// flattens, which the notes call out.
//
// The dedup comparison is always a real measurement: a fresh CPU-bound
// submission is timed end to end against resubmitting the identical body
// to a live fleet, which answers from the coordinator's result cache.
//
// This package sits outside internal/harness on purpose: it drives
// internal/server, which imports the parsim facade, which imports
// harness — so a harness experiment cannot boot servers without an
// import cycle. cmd/figures special-cases the d1 id instead.
package fleetbench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"parsim"
	"parsim/internal/cluster"
	"parsim/internal/server"
)

// Options parameterise the d1 experiment.
type Options struct {
	// Real measures an actual in-process fleet instead of the
	// discrete-event model.
	Real bool
	// Quick shrinks job counts and service times for a fast pass.
	Quick bool
	// MaxNodes is the largest fleet size (default 3).
	MaxNodes int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run regenerates experiment d1.
func Run(opts Options) (*parsim.Figure, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 3
	}
	jobs := 60
	if opts.Quick {
		jobs = 24
	}

	fig := &parsim.Figure{
		ID:     "d1",
		Title:  "Fleet job throughput vs nodes, and dedup hit latency",
		XLabel: "nodes",
		YLabel: "speedup vs 1 node",
	}

	var speedups []float64
	var err error
	if opts.Real {
		speedups, err = realThroughput(&opts, jobs)
	} else {
		speedups = modelThroughput(&opts, jobs)
	}
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(speedups))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	mode := "model"
	if opts.Real {
		mode = "real"
	}
	fig.Series = append(fig.Series, parsim.Series{
		Name: fmt.Sprintf("throughput speedup (%s, %d jobs)", mode, jobs),
		X:    xs,
		Y:    speedups,
	})
	last := speedups[len(speedups)-1]
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"%d-node fleet: %.2fx job throughput vs 1 node (target >= 2.2x)",
		opts.MaxNodes, last))
	if opts.Real && runtime.NumCPU() < opts.MaxNodes {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"real mode on %d host core(s): CPU-bound jobs serialise below %d nodes; model mode shows the scheduling-limited curve",
			runtime.NumCPU(), opts.MaxNodes))
	}

	freshMS, hitMS, err := dedupLatency(&opts)
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, parsim.Series{
		Name: "dedup latency ms (x=1 fresh run, x=2 cache hit)",
		X:    []float64{1, 2},
		Y:    []float64{freshMS, hitMS},
	})
	ratio := freshMS / hitMS
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"dedup hit %.0fx faster than re-simulation (fresh %.1fms, hit %.2fms; target >= 10x)",
		ratio, freshMS, hitMS))
	return fig, nil
}

// modelThroughput runs the discrete-event fleet model for 1..MaxNodes
// nodes and returns the speedup of each size against one node. Routing
// is the coordinator's real policy over the real ring: walk the key's
// successors, admit at the first node with queue room, park and retry at
// the next completion when the whole fleet is full.
func modelThroughput(opts *Options, jobs int) []float64 {
	const (
		service  = 1.0 // one simulated time unit per job
		admitCap = 4   // 1 running + 3 queued, the worker admission window
	)
	makespans := make([]float64, 0, opts.MaxNodes)
	for n := 1; n <= opts.MaxNodes; n++ {
		ring := cluster.NewRing(cluster.DefaultVNodes)
		for i := 0; i < n; i++ {
			ring.Add(fmt.Sprintf("node-%d", i))
		}
		// Per-node FIFO backlog, served one job at a time.
		type nodeState struct {
			backlog int
			free    float64 // time the node finishes everything assigned
		}
		nodes := make(map[string]*nodeState)
		for _, m := range ring.Members() {
			nodes[m] = &nodeState{}
		}
		// Completion events, earliest first.
		var completions []struct {
			at   float64
			node string
		}
		clock := 0.0
		admit := func(addr string) {
			ns := nodes[addr]
			start := clock
			if ns.free > start {
				start = ns.free
			}
			ns.free = start + service
			ns.backlog++
			completions = append(completions, struct {
				at   float64
				node string
			}{ns.free, addr})
			sort.Slice(completions, func(i, j int) bool { return completions[i].at < completions[j].at })
		}
		for j := 0; j < jobs; j++ {
			key := fmt.Sprintf("model-job-%d", j)
			for {
				routed := false
				for _, addr := range ring.Successors(key, n) {
					if nodes[addr].backlog < admitCap {
						admit(addr)
						routed = true
						break
					}
				}
				if routed {
					break
				}
				// Fleet full: park until the next completion frees a slot.
				next := completions[0]
				completions = completions[1:]
				clock = next.at
				nodes[next.node].backlog--
			}
		}
		makespan := 0.0
		for _, ns := range nodes {
			if ns.free > makespan {
				makespan = ns.free
			}
		}
		makespans = append(makespans, makespan)
		opts.logf("d1 model: %d node(s), %d jobs -> makespan %.1f", n, jobs, makespan)
	}
	speedups := make([]float64, len(makespans))
	for i, m := range makespans {
		speedups[i] = makespans[0] / m
	}
	return speedups
}

// benchFleet is a live in-process fleet for the real-mode and dedup
// measurements.
type benchFleet struct {
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	workers []*server.Server
	worker  []*httptest.Server
	cancel  context.CancelFunc
	joined  []chan struct{}
	root    string
}

func startFleet(n, coreBudget, maxQueue int) (*benchFleet, error) {
	f := &benchFleet{}
	f.coord = cluster.NewCoordinator(cluster.Config{
		HeartbeatEvery: 100 * time.Millisecond,
		EvictAfter:     5 * time.Second, // a bench saturates the CPU; keep the failure detector quiet
		CacheEntries:   64,
	})
	f.coordTS = httptest.NewServer(f.coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	root, err := os.MkdirTemp("", "fleetbench-*")
	if err != nil {
		f.stop()
		return nil, err
	}
	f.root = root
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			CoreBudget: coreBudget,
			MaxQueue:   maxQueue,
			StateDir:   filepath.Join(root, fmt.Sprintf("node%d", i)),
		})
		if err != nil {
			f.stop()
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		f.workers = append(f.workers, srv)
		f.worker = append(f.worker, ts)
		jn := &cluster.Joiner{
			Coordinator: f.coordTS.URL,
			Advertise:   ts.Listener.Addr().String(),
			Cores:       coreBudget,
			MaxQueue:    maxQueue,
			Gauges: func() cluster.NodeGauges {
				return cluster.NodeGauges{
					QueueDepth: srv.QueueDepth(),
					Running:    srv.RunningJobs(),
					CoresInUse: srv.CoresInUse(),
					CoreBudget: srv.CoreBudget(),
				}
			},
		}
		done := make(chan struct{})
		f.joined = append(f.joined, done)
		go func() {
			defer close(done)
			jn.Run(ctx)
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(f.coord.Members()) < n {
		if time.Now().After(deadline) {
			f.stop()
			return nil, fmt.Errorf("fleetbench: only %d of %d nodes joined", len(f.coord.Members()), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return f, nil
}

func (f *benchFleet) stop() {
	if f.cancel != nil {
		f.cancel()
	}
	for _, done := range f.joined {
		<-done
	}
	f.coord.Close()
	f.coordTS.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, srv := range f.workers {
		f.worker[i].Close()
		srv.Drain(ctx)
	}
	if f.root != "" {
		os.RemoveAll(f.root)
	}
}

const benchNetlist = `circuit ring
node clk 1
node a 1
node b 1
node q 1
elem clock osc delay=1 out=clk period=8
elem not n1 delay=1 out=a in=clk
elem not n2 delay=1 out=b in=a
elem not n3 delay=1 out=q in=b
`

// submitAwait posts one job body and polls it to a terminal state,
// retrying 429s — the fleet-full backpressure contract.
func submitAwait(base string, body map[string]any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var id string
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fleetbench: submit status %d: %v", resp.StatusCode, view)
		}
		id, _ = view["id"].(string)
		if st, _ := view["state"].(string); st == "done" {
			return nil // dedup hit answered terminally
		}
		break
	}
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch view["state"] {
		case "done":
			return nil
		case "failed", "cancelled":
			return fmt.Errorf("fleetbench: job %s %v: %v", id, view["state"], view["error"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// realThroughput measures wall-clock job throughput of live fleets of
// 1..MaxNodes single-core nodes and returns speedups vs one node.
func realThroughput(opts *Options, jobs int) ([]float64, error) {
	spin := int64(300)
	horizon := int64(25000)
	if opts.Quick {
		horizon = 12000
	}
	elapsed := make([]float64, 0, opts.MaxNodes)
	for n := 1; n <= opts.MaxNodes; n++ {
		f, err := startFleet(n, 1, 4)
		if err != nil {
			return nil, err
		}
		// Closed loop: keep every node's admission window full.
		sem := make(chan struct{}, 3*n)
		errs := make(chan error, jobs)
		start := time.Now()
		for j := 0; j < jobs; j++ {
			sem <- struct{}{}
			go func(j int) {
				defer func() { <-sem }()
				errs <- submitAwait(f.coordTS.URL, map[string]any{
					"netlist":   benchNetlist,
					"engine":    "sequential",
					"workers":   1,
					"horizon":   horizon + int64(j), // distinct: no dedup
					"cost_spin": spin,
				})
			}(j)
		}
		for j := 0; j < jobs; j++ {
			if err := <-errs; err != nil {
				f.stop()
				return nil, err
			}
		}
		wall := time.Since(start).Seconds()
		f.stop()
		elapsed = append(elapsed, wall)
		opts.logf("d1 real: %d node(s), %d jobs -> %.2fs (%.1f jobs/s)", n, jobs, wall, float64(jobs)/wall)
	}
	speedups := make([]float64, len(elapsed))
	for i, e := range elapsed {
		speedups[i] = elapsed[0] / e
	}
	return speedups, nil
}

// dedupLatency times one fresh CPU-bound submission against resubmitting
// the identical body, which the coordinator answers from its result
// cache without touching a worker.
func dedupLatency(opts *Options) (freshMS, hitMS float64, err error) {
	f, err := startFleet(1, 1, 4)
	if err != nil {
		return 0, 0, err
	}
	defer f.stop()
	spin, horizon := int64(2000), int64(200000)
	if opts.Quick {
		spin, horizon = 1000, 100000
	}
	body := map[string]any{
		"netlist":   benchNetlist,
		"engine":    "sequential",
		"workers":   1,
		"horizon":   horizon,
		"cost_spin": spin,
	}
	start := time.Now()
	if err := submitAwait(f.coordTS.URL, body); err != nil {
		return 0, 0, err
	}
	freshMS = float64(time.Since(start).Microseconds()) / 1e3
	start = time.Now()
	if err := submitAwait(f.coordTS.URL, body); err != nil {
		return 0, 0, err
	}
	hitMS = float64(time.Since(start).Microseconds()) / 1e3
	if hitMS <= 0 {
		hitMS = 0.001
	}
	opts.logf("d1 dedup: fresh %.1fms, cache hit %.2fms (%.0fx)", freshMS, hitMS, freshMS/hitMS)
	return freshMS, hitMS, nil
}
