// Package vector implements a bit-parallel batched compiled-mode simulator:
// N independent stimulus lanes advance through the same circuit
// simultaneously, 64 lanes per machine word and as many words per plane as
// the run requests. Node state is a pair of bit planes (value/unknown),
// every element is compiled to a plane-op kernel that evaluates all lanes
// with word-wide boolean instructions looped over the plane words, and the
// step loop is the same statically partitioned, barrier-per-step structure
// as the scalar compiled engine — so the lane axis and the worker axis
// multiply. Lane 0 replays the scalar stimulus bit for bit; the remaining
// lanes carry seed-shifted variants (or, in fault-simulation mode, injected
// stuck-at faults), so one run answers "what do N stimulus vectors do" for
// roughly the cost of one scalar run.
package vector

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/analyze"
	"parsim/internal/barrier"
	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a batched run.
type Options struct {
	Workers  int          // parallel workers; >= 1
	Horizon  circuit.Time // simulate unit-delay steps t in [0, Horizon)
	Probe    trace.Probe  // optional observer of lane ProbeLane; concurrency-safe
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	Strategy partition.Strategy
	Guard    *guard.Supervisor

	// Lanes is the number of live stimulus lanes (1..logic.MaxWideLanes;
	// 0 defaults to 64, one plane word). Lane counts beyond 64 widen every
	// plane to ceil(Lanes/64) words.
	Lanes int
	// LaneStride offsets rand/gray generator seeds per lane: lane k runs
	// with Seed + k*LaneStride. 0 defaults to 1. Lane 0 always keeps the
	// original seed and is bit-identical to a scalar run.
	LaneStride int64
	// ProbeLane selects the lane Probe observes and Final reports
	// (default 0, the scalar-identical lane). Must be < Lanes.
	ProbeLane int

	// FaultSim, when non-nil, switches the run to concurrent stuck-at
	// fault simulation: every lane carries the same stimulus (LaneStride
	// is forced to 0), lane 0 simulates the good machine and lanes 1..N
	// carry one injected fault each from the list. See fault.go.
	FaultSim *FaultOptions

	// Checkpoint asks for periodic snapshots at the per-step barrier, the
	// quiescent point where every worker has finished the previous step
	// and none has started the next. Fault-simulation runs snapshot
	// mid-pass, carrying the cross-pass detection state along.
	Checkpoint checkpoint.Plan
	// Resume continues from a verified snapshot; the resumed run replays
	// bit-identically to an uninterrupted one, lane for lane.
	Resume *checkpoint.Snapshot
}

// Result is the outcome of a batched run.
type Result struct {
	Run stats.Run
	// Final holds lane ProbeLane's node values after the last step — the
	// same shape every scalar engine reports.
	Final []logic.Value
	// LaneFinal holds every lane's final node values: LaneFinal[k][n] is
	// node n as lane k saw it.
	LaneFinal [][]logic.Value
	// FaultCoverage reports fault-simulation results when Options.FaultSim
	// was set, nil otherwise.
	FaultCoverage *stats.FaultCoverage
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	lay      layout
	words    int
	laneMask []uint64

	buf   [2][]logic.WidePlane // double-buffered node planes
	parts [][]kernel           // per-worker kernels in level order
	gens  [][]genKernel        // per-worker generator kernels
	bar   *barrier.Barrier

	wc     []stats.WorkerCounters
	cancel *engine.CancelFlag
	chaos  *guard.ChaosProbe
	// stopAt, when > 0, is the step at which every worker exits. Worker 0
	// publishes it during step stopAt-1; the step barrier makes the write
	// visible to all workers before any of them reaches step stopAt.
	stopAt atomic.Int64

	startT circuit.Time       // resume step (0 for a fresh run)
	ckptW  *checkpoint.Writer // background snapshot writer; nil when disabled
	// ckptErr is worker 0's snapshot failure, published before the
	// post-save barrier release (an atomic edge), so every worker observes
	// it right after its uncounted Wait and the gang exits together.
	ckptErr error

	// fault is the per-pass fault-simulation state, nil outside fault mode.
	fault *faultPass
}

// Run simulates the circuit in batched compiled mode.
func Run(c *circuit.Circuit, opts Options) (*Result, error) {
	return RunContext(context.Background(), c, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled all workers
// stop together at the next time step and the partial result is returned
// with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	if opts.Lanes == 0 {
		opts.Lanes = logic.MaxLanes
	}
	if opts.Lanes < 1 || opts.Lanes > logic.MaxWideLanes {
		return nil, fmt.Errorf("vector: lanes %d out of range [1,%d]", opts.Lanes, logic.MaxWideLanes)
	}
	if opts.LaneStride == 0 {
		opts.LaneStride = 1
	}
	if opts.ProbeLane < 0 || opts.ProbeLane >= opts.Lanes {
		return nil, fmt.Errorf("vector: probe lane %d outside [0,%d)", opts.ProbeLane, opts.Lanes)
	}
	if opts.FaultSim != nil {
		return runFaultSim(ctx, c, opts)
	}
	return runPass(ctx, c, opts, nil)
}

// runPass runs one batched simulation pass. fp, when non-nil, carries the
// fault-injection state of one fault-simulation pass.
func runPass(ctx context.Context, c *circuit.Circuit, opts Options, fp *faultPass) (*Result, error) {
	p := opts.Workers
	s := &sim{
		c:        c,
		opts:     opts,
		p:        p,
		lay:      newLayout(c),
		words:    logic.PlaneWords(opts.Lanes),
		laneMask: logic.LaneMasks(opts.Lanes),
		bar:      barrier.New(p),
		wc:       make([]stats.WorkerCounters, p),
		cancel:   engine.WatchCancel(ctx),
		chaos:    opts.Guard.Chaos(),
		fault:    fp,
	}
	defer s.cancel.Release()
	opts.Guard.OnTrip(s.bar.Abort)

	// The same static partitions every scalar engine uses, swept in
	// levelized order so each worker's kernel list walks the node arrays
	// in dependency depth order.
	parts := partition.Split(c, p, opts.Strategy)
	analyze.OrderByLevel(parts, analyze.LevelSchedule(c))
	s.parts = make([][]kernel, p)
	for w, part := range parts {
		s.parts[w] = make([]kernel, 0, len(part))
		for _, eid := range part {
			s.parts[w] = append(s.parts[w], compileElem(c, &c.Elems[eid], s.lay, opts.Lanes))
		}
	}
	s.gens = make([][]genKernel, p)
	for i, g := range c.Generators() {
		w := i % p
		s.gens[w] = append(s.gens[w], compileGen(c, &c.Elems[g], s.lay, opts.Lanes, opts.LaneStride))
	}
	if fp != nil {
		fp.bind(s)
	}

	for side := range s.buf {
		s.buf[side] = newWidePlanes(s.lay.total, s.words)
		for i := range s.buf[side] {
			s.buf[side][i].Fill(logic.X)
		}
	}
	if opts.Resume != nil {
		// The snapshot replaces the t=0 initialisation wholesale: both
		// buffer sides take the checkpointed planes (driven nodes are fully
		// rewritten each step, undriven nodes must stay constant), kernel
		// state and counters pick up where they left off, and the generator
		// init below is skipped — its node update is already counted in the
		// restored counters.
		if err := s.restore(opts.Resume); err != nil {
			return nil, err
		}
		if fp != nil {
			// The restored planes already carry the injected faults;
			// re-asserting them is idempotent and guards the undriven sites.
			fp.inject(s.buf[0])
			fp.inject(s.buf[1])
		}
		return s.finish(ctx, c, opts)
	}
	// Generators assume their t=0 values before the first step, mirroring
	// the scalar engine: both buffer sides start consistent, the probe sees
	// lane ProbeLane, and a change in any live lane counts one update.
	for w := range s.gens {
		for i := range s.gens[w] {
			g := &s.gens[w][i]
			g.write(0, s.buf[0])
			o, wd := int(g.out.off), int(g.out.w)
			var changed uint64
			for b := 0; b < wd; b++ {
				cv, nv := s.buf[1][o+b], s.buf[0][o+b]
				for ww := 0; ww < s.words; ww++ {
					changed |= ((cv.V[ww] ^ nv.V[ww]) | (cv.U[ww] ^ nv.U[ww])) & s.laneMask[ww]
				}
			}
			if changed == 0 {
				continue
			}
			for b := 0; b < wd; b++ {
				copyWide(s.buf[1][o+b], s.buf[0][o+b])
			}
			s.wc[0].NodeUpdates++
			if opts.Probe != nil && s.probeLaneChangedInit(o, wd) {
				opts.Probe.OnChange(g.out.node, 0,
					logic.ExtractLaneWide(s.buf[0][o:o+wd], opts.ProbeLane, wd))
			}
		}
	}
	// Faults present from t=0 must be injected into both buffer sides so
	// the first step already reads the faulty machine state.
	if fp != nil {
		fp.inject(s.buf[0])
		fp.inject(s.buf[1])
	}
	return s.finish(ctx, c, opts)
}

// finish runs the worker gang over the (freshly initialised or restored)
// state and assembles the pass result.
func (s *sim) finish(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	p := s.p
	if opts.Checkpoint.Enabled() {
		s.ckptW = checkpoint.NewWriter(opts.Checkpoint)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer opts.Guard.Recover(w, "vector step loop")
			s.worker(w)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	steps := int64(opts.Horizon)
	planes := s.buf[int(opts.Horizon-1)&1]
	if opts.Horizon <= 0 {
		planes = s.buf[0]
	}
	if sa := s.stopAt.Load(); sa > 0 && circuit.Time(sa) < opts.Horizon-1 {
		steps = sa + 1
		planes = s.buf[int(sa)&1]
	}
	if opts.Checkpoint.Enabled() && s.ckptErr == nil && s.cancel.Cancelled() {
		// A clean stop (stopAt published, every worker left at that step
		// boundary) is a quiescent point; capture it so a drained run can
		// be resumed. A guard trip aborts the barrier without publishing
		// stopAt — that state is untrusted and deliberately not saved.
		if sa := s.stopAt.Load(); sa > 0 {
			if err := s.saveCheckpoint(circuit.Time(sa)); err != nil {
				s.ckptErr = err
			}
		}
	}
	if s.ckptW != nil {
		// Flush the newest pending snapshot before returning, so a drain's
		// final capture is durable when the caller proceeds. A run that
		// completed its horizon has nothing left to resume — drop the
		// pending capture instead of paying a useless final fsync.
		if !s.cancel.Cancelled() {
			s.ckptW.DiscardPending()
		}
		if cerr := s.ckptW.Close(); cerr != nil && s.ckptErr == nil {
			s.ckptErr = cerr
		}
	}
	if s.ckptErr != nil {
		return nil, s.ckptErr
	}
	res := &Result{
		Final:     s.extractLane(planes, opts.ProbeLane),
		LaneFinal: make([][]logic.Value, opts.Lanes),
	}
	for l := 0; l < opts.Lanes; l++ {
		res.LaneFinal[l] = s.extractLane(planes, l)
	}
	res.Run = stats.Run{
		Algorithm: fmt.Sprintf("vector(%s)x%d", opts.Strategy, opts.Lanes),
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
		TimeSteps: steps,
	}
	for w := 0; w < p; w++ {
		s.wc[w].ModelCalls = s.wc[w].Evals
	}
	res.Run.Aggregate(wall, s.wc)
	return res, s.cancel.Err(ctx)
}

// probeLaneChangedInit reports whether the probe lane's value differs from
// the t=0 write just copied between the buffer sides; used only on the
// init path where "changed" means "differs from the all-X reset".
func (s *sim) probeLaneChangedInit(o, w int) bool {
	lw, lb := s.opts.ProbeLane>>6, uint(s.opts.ProbeLane&63)
	for b := 0; b < w; b++ {
		nv := s.buf[0][o+b]
		// reset state is all-X: V=0, U=all ones
		if nv.V[lw]>>lb&1 != 0 || nv.U[lw]>>lb&1 == 0 {
			return true
		}
	}
	return false
}

func (s *sim) extractLane(planes []logic.WidePlane, lane int) []logic.Value {
	vals := make([]logic.Value, len(s.c.Nodes))
	for n := range s.c.Nodes {
		w := s.c.Nodes[n].Width
		o := int(s.lay.off[n])
		vals[n] = logic.ExtractLaneWide(planes[o:o+w], lane, w)
	}
	return vals
}

func (s *sim) worker(id int) {
	var sense barrier.Sense
	var idle time.Duration
	defer func() { s.wc[id].Idle += idle }()

	gens := s.gens[id]
	kernels := s.parts[id]

	// Step t computes node planes for t+1: read side t&1, write side
	// (t+1)&1. The final step is Horizon-2 -> values at Horizon-1.
	for t := s.startT; t < s.opts.Horizon-1; t++ {
		if sa := s.stopAt.Load(); sa > 0 && t >= circuit.Time(sa) {
			return
		}
		// Periodic checkpoint at the step boundary: every worker computes
		// the same due(t), so the gang meets at one extra (uncounted)
		// barrier while worker 0 captures the quiesced state. The previous
		// end-of-step barrier already synchronised everyone, so a single
		// extra Wait suffices and the counted BarrierWaits total matches an
		// uninterrupted run's.
		if s.checkpointDue(t) {
			// Ready gates the capture, not the barrier: every worker still
			// meets here (the predicate is pure), and worker 0 skips packing
			// a snapshot the throttled writer would only coalesce away.
			if id == 0 && s.ckptW.Ready() {
				if err := s.saveCheckpoint(t); err != nil {
					s.ckptErr = err // published by the barrier release below
				}
			}
			if !s.bar.Wait(&sense) {
				return
			}
			if s.ckptErr != nil {
				return
			}
		}
		if id == 0 {
			s.opts.Guard.Progress(int64(t))
			if s.cancel.Cancelled() {
				s.stopAt.CompareAndSwap(0, int64(t)+1)
			}
		}
		cur := s.buf[t&1]
		next := s.buf[(t+1)&1]

		// Fault detection observes the settled values of step t before
		// this step's kernels overwrite the other buffer side.
		if s.fault != nil {
			s.fault.observe(id, t, cur)
		}

		for i := range gens {
			g := &gens[i]
			g.write(t+1, next)
			s.noteSpan(id, g.out, t+1, cur, next)
		}
		for i := range kernels {
			k := &kernels[i]
			s.wc[id].Evals++
			if s.chaos != nil {
				s.chaos.Eval()
			}
			k.run(cur, next)
			if s.opts.CostSpin > 0 {
				circuit.Spin(k.cost * s.opts.CostSpin)
			}
			for _, sp := range k.outs {
				s.noteSpan(id, sp, t+1, cur, next)
			}
		}
		// Re-assert injected faults on the freshly written side: a stuck
		// node stays stuck no matter what its driver computed.
		if s.fault != nil {
			s.fault.injectWorker(id, next)
		}

		t0 := time.Now()
		s.wc[id].BarrierWaits++
		ok := s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}
	}
}

// noteSpan compares one output node's planes across the buffer sides,
// counting a node update when any live lane changed and firing the probe
// when the observed lane did. Only the node's single driver calls this for
// a given span, so the counters race with nobody.
func (s *sim) noteSpan(id int, sp span, t circuit.Time, cur, next []logic.WidePlane) {
	o, w := int(sp.off), int(sp.w)
	var changed uint64
scan:
	for b := 0; b < w; b++ {
		cv, nv := cur[o+b], next[o+b]
		for ww := 0; ww < s.words; ww++ {
			changed |= ((cv.V[ww] ^ nv.V[ww]) | (cv.U[ww] ^ nv.U[ww])) & s.laneMask[ww]
			if changed != 0 {
				break scan // one changed live lane counts; no need to scan on
			}
		}
	}
	if changed == 0 {
		return
	}
	s.wc[id].NodeUpdates++
	if s.opts.Probe == nil {
		return
	}
	lw, lb := s.opts.ProbeLane>>6, uint(s.opts.ProbeLane&63)
	var probeChanged uint64
	for b := 0; b < w; b++ {
		cv, nv := cur[o+b], next[o+b]
		probeChanged |= ((cv.V[lw] ^ nv.V[lw]) | (cv.U[lw] ^ nv.U[lw])) & s.laneMask[lw]
	}
	if probeChanged>>lb&1 != 0 {
		s.opts.Probe.OnChange(sp.node, t,
			logic.ExtractLaneWide(next[o:o+w], s.opts.ProbeLane, w))
	}
}
