package vector

import (
	"fmt"

	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/logic"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Checkpoint/resume for the batched engine. A snapshot captures one buffer
// side's node planes (all lanes), every stateful kernel's private planes and
// per-lane scalar state, the per-worker counters, the recorded probe history
// and — in fault-simulation mode — the cross-pass detection state, all at
// the per-step barrier where the gang is quiescent.

// checkpointDue reports whether the gang snapshots at the top of step t.
// Every worker evaluates the same pure predicate, so they agree without
// communication.
func (s *sim) checkpointDue(t circuit.Time) bool {
	plan := s.opts.Checkpoint
	return plan.Enabled() && t > s.startT && int64(t)%plan.Every == 0
}

func packPlane(p logic.WidePlane) checkpoint.PlaneState {
	return checkpoint.PlaneState{
		V: append([]uint64(nil), p.V...),
		U: append([]uint64(nil), p.U...),
	}
}

// saveCheckpoint writes a snapshot of the quiesced state at the top of the
// given step: node planes for time step, kernel state and counters through
// step-1. Only worker 0 (or the post-run single thread) calls it.
func (s *sim) saveCheckpoint(step circuit.Time) error {
	plan := s.opts.Checkpoint
	snap := &checkpoint.Snapshot{
		Engine:  plan.Engine,
		Digest:  plan.Digest,
		Step:    int64(step),
		Workers: append([]stats.WorkerCounters(nil), s.wc...),
	}
	side := s.buf[int(step)&1]
	snap.Planes = make([]checkpoint.PlaneState, len(side))
	for i, p := range side {
		snap.Planes[i] = packPlane(p)
	}
	// Kernels in (worker, position) order — the partition is deterministic,
	// so the restore side walks the same sequence.
	for w := range s.parts {
		for i := range s.parts[w] {
			k := &s.parts[w][i]
			var ks checkpoint.KernelState
			for _, st := range k.state {
				ks.Planes = append(ks.Planes, packPlane(st))
			}
			for _, lane := range k.laneState {
				ks.Lanes = append(ks.Lanes, checkpoint.PackValues(lane))
			}
			snap.Kernels = append(snap.Kernels, ks)
		}
	}
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok {
		snap.HasTrace = true
		for _, ch := range rec.DumpChanges() {
			snap.Trace = append(snap.Trace, checkpoint.TraceChange{
				Node:  int32(ch.Node),
				T:     int64(ch.Time),
				Value: checkpoint.PackValue(ch.Value),
			})
		}
	}
	if fp := s.fault; fp != nil {
		fs := &checkpoint.FaultState{
			Pass:     fp.pass,
			Ran:      fp.ran,
			Statuses: append([]stats.FaultStatus(nil), fp.statuses...),
			Acc:      fp.acc,
		}
		for _, d := range fp.det {
			fs.Det = append(fs.Det, append([]uint64(nil), d...))
		}
		for _, f := range fp.first {
			fs.First = append(fs.First, append([]int64(nil), f...))
		}
		snap.Fault = fs
	}
	// The snapshot is a deep copy; the background writer makes it durable
	// (and fires the plan's OnSave) off the gang's critical path.
	return s.ckptW.Save(snap)
}

// restore rebuilds the simulator from a digest-verified snapshot, validating
// every structural property so failures are errors, never panics.
func (s *sim) restore(snap *checkpoint.Snapshot) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("parsim: resume (vector): %s", fmt.Sprintf(format, args...))
	}
	if len(snap.Planes) != s.lay.total {
		return bad("snapshot has %d node planes for a %d-plane circuit", len(snap.Planes), s.lay.total)
	}
	for i, p := range snap.Planes {
		if len(p.V) != s.words || len(p.U) != s.words {
			return bad("plane %d has %d/%d words, want %d", i, len(p.V), len(p.U), s.words)
		}
	}
	nk := 0
	for w := range s.parts {
		nk += len(s.parts[w])
	}
	if len(snap.Kernels) != nk {
		return bad("snapshot has %d kernel states for %d kernels", len(snap.Kernels), nk)
	}
	// Validate every kernel state before committing anything.
	laneVals := make([][][]logic.Value, nk)
	idx := 0
	for w := range s.parts {
		for i := range s.parts[w] {
			k := &s.parts[w][i]
			ks := &snap.Kernels[idx]
			if len(ks.Planes) != len(k.state) {
				return bad("kernel %d has %d state planes, want %d", idx, len(ks.Planes), len(k.state))
			}
			for j, p := range ks.Planes {
				if len(p.V) != s.words || len(p.U) != s.words {
					return bad("kernel %d state plane %d has %d/%d words, want %d", idx, j, len(p.V), len(p.U), s.words)
				}
			}
			if len(ks.Lanes) != len(k.laneState) {
				return bad("kernel %d has %d lane states, want %d", idx, len(ks.Lanes), len(k.laneState))
			}
			if len(ks.Lanes) > 0 {
				laneVals[idx] = make([][]logic.Value, len(ks.Lanes))
				for l := range ks.Lanes {
					if len(ks.Lanes[l]) != len(k.laneState[l]) {
						return bad("kernel %d lane %d has %d state values, want %d", idx, l, len(ks.Lanes[l]), len(k.laneState[l]))
					}
					vals, err := checkpoint.UnpackValues(ks.Lanes[l])
					if err != nil {
						return bad("kernel %d lane %d: %v", idx, l, err)
					}
					for j := range vals {
						if vals[j].Width() != k.laneState[l][j].Width() {
							return bad("kernel %d lane %d state %d width mismatch", idx, l, j)
						}
					}
					laneVals[idx][l] = vals
				}
			}
			idx++
		}
	}
	if len(snap.Workers) != s.p {
		return bad("snapshot has %d worker counter rows, want %d", len(snap.Workers), s.p)
	}
	if (snap.Fault != nil) != (s.fault != nil) {
		return bad("fault-simulation state presence mismatch")
	}
	if fp := s.fault; fp != nil {
		fs := snap.Fault
		if len(fs.Det) != s.p || len(fs.First) != s.p {
			return bad("fault state has %d/%d worker rows, want %d", len(fs.Det), len(fs.First), s.p)
		}
		for w := 0; w < s.p; w++ {
			if len(fs.Det[w]) != s.words {
				return bad("fault detection mask %d has %d words, want %d", w, len(fs.Det[w]), s.words)
			}
			if len(fs.First[w]) != len(fp.faults) {
				return bad("fault first-step row %d has %d entries, want %d", w, len(fs.First[w]), len(fp.faults))
			}
		}
	}
	// All validated; commit. Both buffer sides take the snapshot planes:
	// every driven node is fully rewritten each step and every undriven
	// node stays constant, so the resumed double-buffer sequence matches
	// the uninterrupted one exactly.
	for side := range s.buf {
		for i := range s.buf[side] {
			copy(s.buf[side][i].V, snap.Planes[i].V)
			copy(s.buf[side][i].U, snap.Planes[i].U)
		}
	}
	idx = 0
	for w := range s.parts {
		for i := range s.parts[w] {
			k := &s.parts[w][i]
			for j := range k.state {
				copy(k.state[j].V, snap.Kernels[idx].Planes[j].V)
				copy(k.state[j].U, snap.Kernels[idx].Planes[j].U)
			}
			for l := range k.laneState {
				copy(k.laneState[l], laneVals[idx][l])
			}
			idx++
		}
	}
	copy(s.wc, snap.Workers)
	s.startT = circuit.Time(snap.Step)
	if fp := s.fault; fp != nil {
		for w := 0; w < s.p; w++ {
			copy(fp.det[w], snap.Fault.Det[w])
			copy(fp.first[w], snap.Fault.First[w])
		}
	}
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok && snap.HasTrace {
		chs := make([]trace.ChangeRecord, len(snap.Trace))
		for i, tc := range snap.Trace {
			v, err := tc.Value.Unpack()
			if err != nil {
				return bad("trace change %d: %v", i, err)
			}
			chs[i] = trace.ChangeRecord{Node: circuit.NodeID(tc.Node), Time: circuit.Time(tc.T), Value: v}
		}
		rec.Preload(chs)
	}
	return nil
}
