package vector

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// Bit-sliced kernels for the table-driven functional kinds (mul, alu, rom,
// ram). Until PR 6 these fell back to per-lane scalar evaluation; here each
// is restated as word-wide boolean arithmetic so all lanes of a plane word
// evaluate in a handful of instructions, matching the scalar registry
// semantics in internal/circuit/kind.go lane for lane:
//
//   - mul:  product mod 2^w via shift-and-add; a lane with any X/Z bit in
//     either operand poisons to all-X (logic.Mul).
//   - alu:  per-lane opcode decode into eight disjoint select masks; add/sub
//     ripple with whole-result unknown poisoning, and/or/xor per-bit logic
//     ops, shl1/shr1 raw plane shifts (preserving X/Z like Value.ShiftLeft),
//     pass-b via Z->X normalisation; unknown opcode lanes go all-X.
//   - rom:  per-entry address-match masks; unknown or out-of-range address
//     lanes read all-X.
//   - ram:  wide-plane memory state, write-enable gated by the same rising
//     edge masks as the DFF kernel, per-entry match masks on write and read,
//     unknown-address writes poison the whole memory in those lanes.

// compileMul builds the shift-and-add multiplier. For each set bit i of
// operand a the partial product b<<i is ripple-added into the accumulator,
// all lanes at once; partial products with shift >= w cannot affect the
// result mod 2^w and are skipped.
func compileMul(ins []span, out, w, words int) func(cur, next []logic.WidePlane) {
	a, aw := int(ins[0].off), int(ins[0].w)
	b, bw := int(ins[1].off), int(ins[1].w)
	res := make([]uint64, w)
	return func(cur, next []logic.WidePlane) {
		for wd := 0; wd < words; wd++ {
			var unk uint64
			for i := 0; i < aw; i++ {
				unk |= cur[a+i].U[wd]
			}
			for i := 0; i < bw; i++ {
				unk |= cur[b+i].U[wd]
			}
			for i := range res {
				res[i] = 0
			}
			top := aw
			if top > w {
				top = w
			}
			for i := 0; i < top; i++ {
				ai := cur[a+i].V[wd]
				if ai == 0 {
					continue
				}
				carry := uint64(0)
				for j := i; j < w; j++ {
					var bj uint64
					if j-i < bw {
						bj = cur[b+j-i].V[wd] & ai
					}
					s := res[j] ^ bj ^ carry
					carry = res[j]&bj | carry&(res[j]^bj)
					res[j] = s
				}
			}
			for i := 0; i < w; i++ {
				next[out+i].SetWord(wd, logic.Plane{V: res[i] &^ unk, U: unk})
			}
		}
	}
}

// compileAlu decodes the opcode planes into disjoint per-lane select masks
// (one per reachable opcode; lanes with any unknown opcode bit go all-X),
// computes every candidate result word-wide, and blends them under the
// masks. Opcodes beyond AluShr1 collapse onto pass-b, the scalar switch's
// default arm.
func compileAlu(ins []span, out, w, words int) func(cur, next []logic.WidePlane) {
	op, a, b := int(ins[0].off), int(ins[1].off), int(ins[2].off)
	opw := int(ins[0].w)
	nOps := 1 << uint(opw)
	if nOps > 8 {
		nOps = 8 // opcode input is 3 bits; wider would duplicate pass-b arms
	}
	addV := make([]uint64, w)
	subV := make([]uint64, w)
	sel := make([]uint64, nOps)
	var hm, lm [8]uint64
	return func(cur, next []logic.WidePlane) {
		for wd := 0; wd < words; wd++ {
			var unkOp uint64
			for i := 0; i < opw; i++ {
				r := cur[op+i].Word(wd).Readable()
				unkOp |= r.U
				hm[i], lm[i] = r.HMask(), r.LMask()
			}
			for k := range sel {
				m := ^unkOp
				for i := 0; i < opw; i++ {
					if k>>uint(i)&1 == 1 {
						m &= hm[i]
					} else {
						m &= lm[i]
					}
				}
				sel[k] = m
			}

			// Ripple add and sub over the bit columns; lanes with any
			// unknown operand bit poison (Value.Add/Sub semantics).
			var unkAB uint64
			for i := 0; i < w; i++ {
				unkAB |= cur[a+i].U[wd] | cur[b+i].U[wd]
			}
			addC, subC := uint64(0), ^uint64(0)
			for i := 0; i < w; i++ {
				av := cur[a+i].Word(wd).Readable().V
				bv := cur[b+i].Word(wd).Readable().V
				addV[i] = av ^ bv ^ addC
				addC = av&bv | addC&(av^bv)
				nb := ^bv
				subV[i] = av ^ nb ^ subC
				subC = av&nb | subC&(av^nb)
			}

			for i := 0; i < w; i++ {
				av := cur[a+i].Word(wd)
				bv := cur[b+i].Word(wd)
				var cand [8]logic.Plane
				cand[circuit.AluAdd] = logic.Plane{V: addV[i] &^ unkAB, U: unkAB}
				cand[circuit.AluSub] = logic.Plane{V: subV[i] &^ unkAB, U: unkAB}
				cand[circuit.AluAnd] = logic.PlaneAnd(av, bv)
				cand[circuit.AluOr] = logic.PlaneOr(av, bv)
				cand[circuit.AluXor] = logic.PlaneXor(av, bv)
				if i > 0 {
					cand[circuit.AluShl1] = cur[a+i-1].Word(wd) // raw: X/Z shift along
				}
				if i < w-1 {
					cand[circuit.AluShr1] = cur[a+i+1].Word(wd)
				}
				cand[circuit.AluPassB] = bv.Readable()
				res := logic.Plane{U: unkOp}
				for k := 0; k < nOps; k++ {
					ci := k
					if ci > int(circuit.AluPassB) {
						ci = int(circuit.AluPassB)
					}
					res.V |= cand[ci].V & sel[k]
					res.U |= cand[ci].U & sel[k]
				}
				next[out+i].SetWord(wd, res)
			}
		}
	}
}

// matchMask returns the mask of lanes whose address equals entry e: the
// AND across address bits of that bit's H or L mask. Lanes with any
// unknown address bit match no entry.
func matchMask(cur []logic.WidePlane, addr, aw, wd int, e uint64) uint64 {
	m := ^uint64(0)
	for i := 0; i < aw; i++ {
		r := cur[addr+i].Word(wd).Readable()
		if e>>uint(i)&1 == 1 {
			m &= r.HMask()
		} else {
			m &= r.LMask()
		}
	}
	return m
}

// compileRom enumerates the ROM contents once per word, accumulating each
// entry's value under its address-match mask. Lanes matching no entry —
// unknown address bits or an address beyond the contents — read all-X,
// matching evalRom.
func compileRom(el *circuit.Element, ins []span, out, w, words int) func(cur, next []logic.WidePlane) {
	addr, aw := int(ins[0].off), int(ins[0].w)
	mem := el.Params.Mem
	limit := uint64(len(mem))
	if aw < 63 && uint64(1)<<uint(aw) < limit {
		limit = 1 << uint(aw)
	}
	resV := make([]uint64, w)
	return func(cur, next []logic.WidePlane) {
		for wd := 0; wd < words; wd++ {
			for i := range resV {
				resV[i] = 0
			}
			var covered uint64
			for e := uint64(0); e < limit; e++ {
				m := matchMask(cur, addr, aw, wd, e)
				if m == 0 {
					continue
				}
				covered |= m
				for i := 0; i < w; i++ {
					if mem[e]>>uint(i)&1 == 1 {
						resV[i] |= m
					}
				}
			}
			for i := 0; i < w; i++ {
				next[out+i].SetWord(wd, logic.Plane{V: resV[i], U: ^covered})
			}
		}
	}
}

// compileRam keeps the memory as wide planes — entries x data bits, every
// lane with its own contents — and evaluates write-then-read exactly as
// evalRam does: a rising clock edge with write-enable high stores the
// Z-normalised write data at the matching entry per lane; a write at an
// unknown address poisons that lane's whole memory; reads blend entries
// under the same match masks, unknown-address lanes reading all-X.
func compileRam(el *circuit.Element, ins []span, out, w, words int) (func(cur, next []logic.WidePlane), []logic.WidePlane) {
	clk, we := int(ins[0].off), int(ins[1].off)
	addr, aw := int(ins[2].off), int(ins[2].w)
	wdata := int(ins[3].off)
	entries := 1 << uint(aw)

	// state: previous clock plane + entries x w memory planes, each lane
	// initialised from Params.Mem then all-X — Element.InitState per lane.
	prevClk := wideRow(1, words, logic.X)[0]
	mem := newWidePlanes(entries*w, words)
	for e := 0; e < entries; e++ {
		var init logic.Value
		if e < len(el.Params.Mem) {
			init = logic.V(w, el.Params.Mem[e])
		} else {
			init = logic.AllX(w)
		}
		logic.BroadcastValueWide(mem[e*w:(e+1)*w], init)
	}

	state := append([]logic.WidePlane{prevClk}, mem...)

	resV := make([]uint64, w)
	resU := make([]uint64, w)
	match := make([]uint64, entries)
	xw := logic.PlaneBroadcast(logic.X)
	run := func(cur, next []logic.WidePlane) {
		for wd := 0; wd < words; wd++ {
			c := cur[clk].Word(wd)
			edge := prevClk.Word(wd).LMask() & c.HMask()
			prevClk.SetWord(wd, c)

			var unkA uint64
			for i := 0; i < aw; i++ {
				unkA |= cur[addr+i].U[wd]
			}
			for e := range match {
				match[e] = matchMask(cur, addr, aw, wd, uint64(e))
			}

			if wl := edge & cur[we].Word(wd).HMask(); wl != 0 {
				poison := wl & unkA
				for e := 0; e < entries; e++ {
					m := wl & match[e]
					if m == 0 && poison == 0 {
						continue
					}
					for i := 0; i < w; i++ {
						q := mem[e*w+i].Word(wd)
						if m != 0 {
							q = logic.PlaneSelect(m, cur[wdata+i].Word(wd).Readable(), q)
						}
						if poison != 0 {
							q = logic.PlaneSelect(poison, xw, q)
						}
						mem[e*w+i].SetWord(wd, q)
					}
				}
			}

			for i := range resV {
				resV[i], resU[i] = 0, 0
			}
			var covered uint64
			for e := 0; e < entries; e++ {
				m := match[e]
				if m == 0 {
					continue
				}
				covered |= m
				for i := 0; i < w; i++ {
					q := mem[e*w+i].Word(wd)
					resV[i] |= q.V & m
					resU[i] |= q.U & m
				}
			}
			for i := 0; i < w; i++ {
				next[out+i].SetWord(wd, logic.Plane{V: resV[i], U: resU[i] | ^covered})
			}
		}
	}
	return run, state
}
