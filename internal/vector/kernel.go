package vector

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// layout assigns every node a contiguous run of wide planes in the double
// buffer: node n's bit b lives at off[n]+b. The whole circuit state for N
// stimulus lanes is two flat []WidePlane arrays swept in levelized order;
// each plane is `words` machine-word pairs wide.
type layout struct {
	off   []int32
	total int
}

func newLayout(c *circuit.Circuit) layout {
	off := make([]int32, len(c.Nodes))
	n := int32(0)
	for i := range c.Nodes {
		off[i] = n
		n += int32(c.Nodes[i].Width)
	}
	return layout{off: off, total: int(n)}
}

// span locates one node's planes.
type span struct {
	node circuit.NodeID
	off  int32
	w    int32
}

func (l layout) span(c *circuit.Circuit, n circuit.NodeID) span {
	return span{node: n, off: l.off[n], w: int32(c.Nodes[n].Width)}
}

// newWidePlanes allocates n standalone planes of the given word width over
// one struct-of-arrays backing: all value words in one flat []uint64, all
// undefined words in another, plane p owning words [p*words, (p+1)*words).
func newWidePlanes(n, words int) []logic.WidePlane {
	v := make([]uint64, n*words)
	u := make([]uint64, n*words)
	ps := make([]logic.WidePlane, n)
	for p := range ps {
		lo, hi := p*words, (p+1)*words
		ps[p] = logic.WidePlane{V: v[lo:hi:hi], U: u[lo:hi:hi]}
	}
	return ps
}

// wideRow allocates w planes of the given word width holding s in every
// lane — the wide form of broadcastRow, used for kernel-internal state.
func wideRow(w, words int, s logic.State) []logic.WidePlane {
	row := newWidePlanes(w, words)
	for i := range row {
		row[i].Fill(s)
	}
	return row
}

func copyWide(dst, src logic.WidePlane) {
	copy(dst.V, src.V)
	copy(dst.U, src.U)
}

func zeroWide(dst logic.WidePlane) {
	for w := range dst.V {
		dst.V[w], dst.U[w] = 0, 0
	}
}

// kernel is one element compiled to a plane-op routine: run reads input
// planes from cur and writes every output plane in next, for all lanes at
// once, looping the proven single-word plane ops over the plane words.
// Kernels with internal state (DFF, latch, RAM) own it via closure; each
// element belongs to exactly one partition, so exactly one worker ever runs
// its kernel.
type kernel struct {
	eid  circuit.ElemID
	cost int64
	outs []span
	run  func(cur, next []logic.WidePlane)
	// state aliases the closure-captured plane rows of stateful kernels —
	// a flip-flop's previous clock and held output, a latch's output, a
	// RAM's memory array — so a checkpoint can read and restore them in
	// place (WidePlane copies share their backing words). laneState aliases
	// the per-lane scalar state of fallback kernels the same way.
	state     []logic.WidePlane
	laneState [][]logic.Value
}

// compileElem translates one element into its plane-op kernel. Gate,
// mux/register, wiring, comparison, adder and the table-driven functional
// kinds (mul, alu, rom, ram — see bitsliced.go) all get true bit-parallel
// kernels; any future kind falls back to per-lane scalar evaluation behind
// the same interface.
func compileElem(c *circuit.Circuit, el *circuit.Element, lay layout, lanes int) kernel {
	words := logic.PlaneWords(lanes)
	k := kernel{eid: el.ID, cost: el.Cost}
	for _, n := range el.Out {
		k.outs = append(k.outs, lay.span(c, n))
	}
	ins := make([]span, len(el.In))
	for i, n := range el.In {
		ins[i] = lay.span(c, n)
	}
	out := int(lay.off[el.Out[0]])
	w := c.Nodes[el.Out[0]].Width

	switch el.Kind {
	case circuit.KindBuf:
		k.run = compileGate(ins, out, w, words, opOr, false)
	case circuit.KindNot:
		k.run = compileGate(ins, out, w, words, opOr, true)
	case circuit.KindAnd:
		k.run = compileGate(ins, out, w, words, opAnd, false)
	case circuit.KindNand:
		k.run = compileGate(ins, out, w, words, opAnd, true)
	case circuit.KindOr:
		k.run = compileGate(ins, out, w, words, opOr, false)
	case circuit.KindNor:
		k.run = compileGate(ins, out, w, words, opOr, true)
	case circuit.KindXor:
		k.run = compileGate(ins, out, w, words, opXor, false)
	case circuit.KindXnor:
		k.run = compileGate(ins, out, w, words, opXor, true)

	case circuit.KindMux2:
		sel, a, b := int(ins[0].off), int(ins[1].off), int(ins[2].off)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				s := cur[sel].Word(wd)
				for i := 0; i < w; i++ {
					next[out+i].SetWord(wd, logic.PlaneMux(s, cur[a+i].Word(wd), cur[b+i].Word(wd)))
				}
			}
		}

	case circuit.KindDFF:
		clk, d := int(ins[0].off), int(ins[1].off)
		prevClk := wideRow(1, words, logic.X)[0]
		q := wideRow(w, words, logic.X)
		k.state = append([]logic.WidePlane{prevClk}, q...)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				c := cur[clk].Word(wd)
				edge := prevClk.Word(wd).LMask() & c.HMask()
				prevClk.SetWord(wd, c)
				for i := 0; i < w; i++ {
					qi := logic.PlaneSelect(edge, cur[d+i].Word(wd).Readable(), q[i].Word(wd))
					q[i].SetWord(wd, qi)
					next[out+i].SetWord(wd, qi)
				}
			}
		}

	case circuit.KindDFFR:
		clk, rst, d := int(ins[0].off), int(ins[1].off), int(ins[2].off)
		prevClk := wideRow(1, words, logic.X)[0]
		q := wideRow(w, words, logic.X)
		k.state = append([]logic.WidePlane{prevClk}, q...)
		initRow := make([]logic.Plane, w)
		logic.BroadcastValue(initRow, el.Params.Init)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				c := cur[clk].Word(wd)
				edge := prevClk.Word(wd).LMask() & c.HMask()
				prevClk.SetWord(wd, c)
				rstH := cur[rst].Word(wd).HMask()
				for i := 0; i < w; i++ {
					qi := logic.PlaneSelect(edge, cur[d+i].Word(wd).Readable(), q[i].Word(wd))
					qi = logic.PlaneSelect(rstH, initRow[i], qi)
					q[i].SetWord(wd, qi)
					next[out+i].SetWord(wd, qi)
				}
			}
		}

	case circuit.KindLatch:
		en, d := int(ins[0].off), int(ins[1].off)
		q := wideRow(w, words, logic.X)
		k.state = q
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				enH := cur[en].Word(wd).HMask()
				for i := 0; i < w; i++ {
					qi := logic.PlaneSelect(enH, cur[d+i].Word(wd).Readable(), q[i].Word(wd))
					q[i].SetWord(wd, qi)
					next[out+i].SetWord(wd, qi)
				}
			}
		}

	case circuit.KindTri:
		en, a := int(ins[0].off), int(ins[1].off)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				e := cur[en].Word(wd).Readable()
				enH, enL := e.HMask(), e.LMask()
				enX := ^(enH | enL)
				for i := 0; i < w; i++ {
					r := cur[a+i].Word(wd).Readable()
					next[out+i].SetWord(wd, logic.Plane{
						V: r.V&enH | enL,
						U: r.U&enH | enL | enX,
					})
				}
			}
		}

	case circuit.KindRes2:
		a, b := int(ins[0].off), int(ins[1].off)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				for i := 0; i < w; i++ {
					next[out+i].SetWord(wd, logic.PlaneResolve(cur[a+i].Word(wd), cur[b+i].Word(wd)))
				}
			}
		}

	case circuit.KindEq:
		a, b := int(ins[0].off), int(ins[1].off)
		aw := int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				diff, allKnown := uint64(0), ^uint64(0)
				for i := 0; i < aw; i++ {
					ra, rb := cur[a+i].Word(wd).Readable(), cur[b+i].Word(wd).Readable()
					known := ^(ra.U | rb.U)
					diff |= (ra.V ^ rb.V) & known
					allKnown &= known
				}
				next[out].SetWord(wd, logic.Plane{V: allKnown &^ diff, U: ^(diff | allKnown)})
			}
		}

	case circuit.KindLtU:
		a, b := int(ins[0].off), int(ins[1].off)
		aw := int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			// MSB-first ripple compare; lanes with any unknown bit poison
			// to X, matching the scalar Uint()-based evaluation.
			for wd := 0; wd < words; wd++ {
				unk, lt, eq := uint64(0), uint64(0), ^uint64(0)
				for i := aw - 1; i >= 0; i-- {
					ra, rb := cur[a+i].Word(wd).Readable(), cur[b+i].Word(wd).Readable()
					unk |= ra.U | rb.U
					lt |= eq & ^ra.V & rb.V
					eq &= ^(ra.V ^ rb.V)
				}
				next[out].SetWord(wd, logic.Plane{V: lt &^ unk, U: unk})
			}
		}

	case circuit.KindAdd:
		k.run = compileAdd(ins, out, w, words, false, -1)
	case circuit.KindSub:
		k.run = compileAdd(ins, out, w, words, true, -1)
	case circuit.KindAddC:
		coutOff := int(lay.off[el.Out[1]])
		k.run = compileAdd(ins, out, w, words, false, coutOff)

	case circuit.KindSlice:
		a := int(ins[0].off) + el.Params.Lo
		k.run = copyPlanes(a, out, w)
	case circuit.KindExt:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			n := w
			if aw < n {
				n = aw
			}
			for i := 0; i < n; i++ {
				copyWide(next[out+i], cur[a+i])
			}
			for i := n; i < w; i++ {
				zeroWide(next[out+i])
			}
		}
	case circuit.KindConcat:
		lo, hi := int(ins[0].off), int(ins[1].off)
		low := int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			for i := 0; i < low; i++ {
				copyWide(next[out+i], cur[lo+i])
			}
			for i := low; i < w; i++ {
				copyWide(next[out+i], cur[hi+i-low])
			}
		}
	case circuit.KindShlK:
		a := int(ins[0].off)
		sh := el.Params.Shift
		k.run = func(cur, next []logic.WidePlane) {
			for i := w - 1; i >= sh; i-- {
				copyWide(next[out+i], cur[a+i-sh])
			}
			top := sh
			if top > w {
				top = w
			}
			for i := 0; i < top; i++ {
				zeroWide(next[out+i])
			}
		}
	case circuit.KindShrK:
		a := int(ins[0].off)
		sh := el.Params.Shift
		k.run = func(cur, next []logic.WidePlane) {
			for i := 0; i < w-sh; i++ {
				copyWide(next[out+i], cur[a+i+sh])
			}
			from := w - sh
			if from < 0 {
				from = 0
			}
			for i := from; i < w; i++ {
				zeroWide(next[out+i])
			}
		}

	case circuit.KindRedAnd:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				someL, anyU := uint64(0), uint64(0)
				for i := 0; i < aw; i++ {
					r := cur[a+i].Word(wd).Readable()
					someL |= r.LMask()
					anyU |= r.U
				}
				next[out].SetWord(wd, logic.Plane{V: ^(someL | anyU), U: anyU &^ someL})
			}
		}
	case circuit.KindRedOr:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				someH, anyU := uint64(0), uint64(0)
				for i := 0; i < aw; i++ {
					r := cur[a+i].Word(wd).Readable()
					someH |= r.HMask()
					anyU |= r.U
				}
				next[out].SetWord(wd, logic.Plane{V: someH, U: anyU &^ someH})
			}
		}
	case circuit.KindRedXor:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.WidePlane) {
			for wd := 0; wd < words; wd++ {
				par, anyU := uint64(0), uint64(0)
				for i := 0; i < aw; i++ {
					r := cur[a+i].Word(wd).Readable()
					par ^= r.V
					anyU |= r.U
				}
				next[out].SetWord(wd, logic.Plane{V: par &^ anyU, U: anyU})
			}
		}

	case circuit.KindMul:
		k.run = compileMul(ins, out, w, words)
	case circuit.KindAlu:
		k.run = compileAlu(ins, out, w, words)
	case circuit.KindRom:
		k.run = compileRom(el, ins, out, w, words)
	case circuit.KindRam:
		k.run, k.state = compileRam(el, ins, out, w, words)

	default:
		// Per-lane scalar fallback for any future kind: correct for every
		// registry element, at scalar speed.
		k.run, k.laneState = compileScalar(el, ins, k.outs, lanes)
	}
	return k
}

func copyPlanes(src, dst, w int) func(cur, next []logic.WidePlane) {
	return func(cur, next []logic.WidePlane) {
		for i := 0; i < w; i++ {
			copyWide(next[dst+i], cur[src+i])
		}
	}
}

// gateOp names the fold operation of a logic gate; an enum rather than a
// func value so compileGate can pick the fused fast path per shape.
type gateOp int

const (
	opAnd gateOp = iota
	opOr
	opXor
)

func (op gateOp) plane(a, b logic.Plane) logic.Plane {
	switch op {
	case opAnd:
		return logic.PlaneAnd(a, b)
	case opXor:
		return logic.PlaneXor(a, b)
	}
	return logic.PlaneOr(a, b)
}

// compileGate folds a binary plane op across the inputs per bit column and
// plane word, exactly as circuit.evalFold does with scalar values:
// single-input gates fold with an all-L operand (the Or identity) so buf
// and not normalise X/Z the same way the scalar registry does.
//
// The 1- and 2-input shapes — the bulk of every gate-level benchmark — get
// fused kernels that stream the V/U plane words directly instead of going
// through the Plane struct per word; the algebra below is the PlaneOr /
// PlaneAnd / PlaneXor definitions with the Readable() normalisation folded
// in (the parametric truth-table suite proves them against the scalar
// registry at every tested width).
func compileGate(ins []span, out, w, words int, op gateOp, invert bool) func(cur, next []logic.WidePlane) {
	switch {
	case len(ins) == 1 && op != opAnd:
		// Or/Xor folded with the all-L identity reduce to buf (or not):
		// V' = V&^U (known-H lanes), inverted V' = ^(V|U), U' = U.
		a := int(ins[0].off)
		return func(cur, next []logic.WidePlane) {
			for i := 0; i < w; i++ {
				src, dst := cur[a+i], next[out+i]
				for wd := 0; wd < words; wd++ {
					av, au := src.V[wd], src.U[wd]
					if invert {
						dst.V[wd] = ^(av | au)
					} else {
						dst.V[wd] = av &^ au
					}
					dst.U[wd] = au
				}
			}
		}
	case len(ins) == 2:
		return compileGate2(ins, out, w, words, op, invert)
	}
	offs := make([]int, len(ins))
	for i, sp := range ins {
		offs[i] = int(sp.off)
	}
	single := len(offs) == 1
	return func(cur, next []logic.WidePlane) {
		for i := 0; i < w; i++ {
			dst := next[out+i]
			for wd := 0; wd < words; wd++ {
				acc := cur[offs[0]+i].Word(wd)
				if single {
					acc = op.plane(acc, logic.Plane{})
				}
				for _, o := range offs[1:] {
					acc = op.plane(acc, cur[o+i].Word(wd))
				}
				if invert {
					acc = logic.PlaneNot(acc)
				}
				dst.SetWord(wd, acc)
			}
		}
	}
}

// compileGate2 fuses a two-input gate into one pass over the plane words.
// Per word: one = lanes where the op yields a known H, zero = known L, and
// U' = everything else; the inverted forms swap one and zero (PlaneNot of
// a canonical plane keeps U and complements V into the remaining lanes).
func compileGate2(ins []span, out, w, words int, op gateOp, invert bool) func(cur, next []logic.WidePlane) {
	a, b := int(ins[0].off), int(ins[1].off)
	return func(cur, next []logic.WidePlane) {
		for i := 0; i < w; i++ {
			sa, sb, dst := cur[a+i], cur[b+i], next[out+i]
			for wd := 0; wd < words; wd++ {
				av, au := sa.V[wd], sa.U[wd]
				bv, bu := sb.V[wd], sb.U[wd]
				var one, zero uint64
				switch op {
				case opAnd:
					one = (av &^ au) & (bv &^ bu)
					zero = ^(av | au) | ^(bv | bu)
				case opOr:
					one = (av &^ au) | (bv &^ bu)
					zero = ^(av | au) & ^(bv | bu)
				default: // opXor
					u := au | bu
					one = (av ^ bv) &^ u
					zero = ^(av ^ bv) &^ u
				}
				if invert {
					one, zero = zero, one
				}
				dst.V[wd] = one
				dst.U[wd] = ^(one | zero)
			}
		}
	}
}

// compileAdd builds ripple-carry addition (or subtraction via two's
// complement) over the bit columns, per plane word. Lanes with any unknown
// input bit poison the whole result to X — the scalar Add/Sub/AddCarry
// semantics. coutOff >= 0 selects the three-input addc form with a carry
// output.
func compileAdd(ins []span, out, w, words int, sub bool, coutOff int) func(cur, next []logic.WidePlane) {
	a, b := int(ins[0].off), int(ins[1].off)
	cin := -1
	if coutOff >= 0 {
		cin = int(ins[2].off)
	}
	return func(cur, next []logic.WidePlane) {
		for wd := 0; wd < words; wd++ {
			var unk uint64
			for i := 0; i < w; i++ {
				unk |= cur[a+i].U[wd] | cur[b+i].U[wd]
			}
			carry := uint64(0)
			if sub {
				carry = ^uint64(0)
			}
			if cin >= 0 {
				r := cur[cin].Word(wd).Readable()
				unk |= r.U
				carry = r.V
			}
			for i := 0; i < w; i++ {
				av := cur[a+i].Word(wd).Readable().V
				bv := cur[b+i].Word(wd).Readable().V
				if sub {
					bv = ^bv
				}
				sum := av ^ bv ^ carry
				carry = av&bv | carry&(av^bv)
				next[out+i].SetWord(wd, logic.Plane{V: sum &^ unk, U: unk})
			}
			if coutOff >= 0 {
				next[coutOff].SetWord(wd, logic.Plane{V: carry &^ unk, U: unk})
			}
		}
	}
}

// compileScalar is the per-lane fallback: unpack each lane's inputs into
// scalar Values, run the element's registry eval with that lane's own
// state, and pack the outputs back. One worker owns the kernel, so the
// scratch buffers and per-lane state race with nobody. The second return
// value exposes the per-lane state (nil for stateless elements) so
// checkpoints can capture and restore it in place.
func compileScalar(el *circuit.Element, ins []span, outs []span, lanes int) (func(cur, next []logic.WidePlane), [][]logic.Value) {
	states := make([][]logic.Value, lanes)
	stateful := el.NumStateVals() > 0
	if stateful {
		for l := range states {
			states[l] = make([]logic.Value, el.NumStateVals())
			el.InitState(states[l])
		}
	}
	in := make([]logic.Value, len(ins))
	out := make([]logic.Value, len(outs))
	run := func(cur, next []logic.WidePlane) {
		for l := 0; l < lanes; l++ {
			for i, sp := range ins {
				in[i] = logic.ExtractLaneWide(cur[sp.off:sp.off+sp.w], l, int(sp.w))
			}
			el.Eval(in, states[l], out)
			for i, sp := range outs {
				logic.PackLaneWide(next[sp.off:sp.off+sp.w], l, out[i])
			}
		}
	}
	if !stateful {
		return run, nil
	}
	return run, states
}

// genKernel is one stimulus generator: clock/wave/const outputs are lane-
// invariant and broadcast; rand/gray get one per-lane element copy whose
// Seed is offset by the lane stride, so each lane replays an independent
// stimulus vector (lane 0 keeps the original seed and is bit-identical to
// a scalar run).
type genKernel struct {
	el      *circuit.Element
	out     span
	perLane []circuit.Element
}

func compileGen(c *circuit.Circuit, el *circuit.Element, lay layout, lanes int, stride int64) genKernel {
	g := genKernel{el: el, out: lay.span(c, el.Out[0])}
	if (el.Kind == circuit.KindRand || el.Kind == circuit.KindGray) && lanes > 1 && stride != 0 {
		g.perLane = make([]circuit.Element, lanes)
		for l := range g.perLane {
			cp := *el
			cp.Params.Seed += stride * int64(l)
			g.perLane[l] = cp
		}
	}
	return g
}

// write evaluates the generator at time t into the destination buffer.
func (g *genKernel) write(t circuit.Time, dst []logic.WidePlane) {
	o, w := int(g.out.off), int(g.out.w)
	if g.perLane == nil {
		logic.BroadcastValueWide(dst[o:o+w], g.el.GenValueAt(t))
		return
	}
	for l := range g.perLane {
		logic.PackLaneWide(dst[o:o+w], l, g.perLane[l].GenValueAt(t))
	}
}
