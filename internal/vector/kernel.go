package vector

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// layout assigns every node a contiguous run of Planes in the double
// buffer: node n's bit b lives at off[n]+b. The whole circuit state for 64
// stimulus lanes is two flat []Plane arrays swept in levelized order.
type layout struct {
	off   []int32
	total int
}

func newLayout(c *circuit.Circuit) layout {
	off := make([]int32, len(c.Nodes))
	n := int32(0)
	for i := range c.Nodes {
		off[i] = n
		n += int32(c.Nodes[i].Width)
	}
	return layout{off: off, total: int(n)}
}

// span locates one node's planes.
type span struct {
	node circuit.NodeID
	off  int32
	w    int32
}

func (l layout) span(c *circuit.Circuit, n circuit.NodeID) span {
	return span{node: n, off: l.off[n], w: int32(c.Nodes[n].Width)}
}

// kernel is one element compiled to a plane-op routine: run reads input
// planes from cur and writes every output plane in next, for all lanes at
// once. Kernels with internal state (DFF, latch, RAM) own it via closure;
// each element belongs to exactly one partition, so exactly one worker
// ever runs its kernel.
type kernel struct {
	eid  circuit.ElemID
	cost int64
	outs []span
	run  func(cur, next []logic.Plane)
}

// compileElem translates one element into its plane-op kernel. Gate,
// mux/register, wiring, comparison and adder kinds get true bit-parallel
// kernels; the handful of table-driven kinds (mul, alu, rom, ram) fall
// back to per-lane scalar evaluation behind the same interface.
func compileElem(c *circuit.Circuit, el *circuit.Element, lay layout, lanes int) kernel {
	k := kernel{eid: el.ID, cost: el.Cost}
	for _, n := range el.Out {
		k.outs = append(k.outs, lay.span(c, n))
	}
	ins := make([]span, len(el.In))
	for i, n := range el.In {
		ins[i] = lay.span(c, n)
	}
	out := int(lay.off[el.Out[0]])
	w := c.Nodes[el.Out[0]].Width

	switch el.Kind {
	case circuit.KindBuf:
		k.run = compileGate(ins, out, w, logic.PlaneOr, false)
	case circuit.KindNot:
		k.run = compileGate(ins, out, w, logic.PlaneOr, true)
	case circuit.KindAnd:
		k.run = compileGate(ins, out, w, logic.PlaneAnd, false)
	case circuit.KindNand:
		k.run = compileGate(ins, out, w, logic.PlaneAnd, true)
	case circuit.KindOr:
		k.run = compileGate(ins, out, w, logic.PlaneOr, false)
	case circuit.KindNor:
		k.run = compileGate(ins, out, w, logic.PlaneOr, true)
	case circuit.KindXor:
		k.run = compileGate(ins, out, w, logic.PlaneXor, false)
	case circuit.KindXnor:
		k.run = compileGate(ins, out, w, logic.PlaneXor, true)

	case circuit.KindMux2:
		sel, a, b := int(ins[0].off), int(ins[1].off), int(ins[2].off)
		k.run = func(cur, next []logic.Plane) {
			s := cur[sel]
			for i := 0; i < w; i++ {
				next[out+i] = logic.PlaneMux(s, cur[a+i], cur[b+i])
			}
		}

	case circuit.KindDFF:
		clk, d := int(ins[0].off), int(ins[1].off)
		prevClk := logic.PlaneBroadcast(logic.X)
		q := broadcastRow(logic.X, w)
		k.run = func(cur, next []logic.Plane) {
			c := cur[clk]
			edge := prevClk.LMask() & c.HMask()
			prevClk = c
			for i := 0; i < w; i++ {
				q[i] = logic.PlaneSelect(edge, cur[d+i].Readable(), q[i])
				next[out+i] = q[i]
			}
		}

	case circuit.KindDFFR:
		clk, rst, d := int(ins[0].off), int(ins[1].off), int(ins[2].off)
		prevClk := logic.PlaneBroadcast(logic.X)
		q := broadcastRow(logic.X, w)
		initRow := make([]logic.Plane, w)
		logic.BroadcastValue(initRow, el.Params.Init)
		k.run = func(cur, next []logic.Plane) {
			c := cur[clk]
			edge := prevClk.LMask() & c.HMask()
			prevClk = c
			rstH := cur[rst].HMask()
			for i := 0; i < w; i++ {
				qi := logic.PlaneSelect(edge, cur[d+i].Readable(), q[i])
				qi = logic.PlaneSelect(rstH, initRow[i], qi)
				q[i] = qi
				next[out+i] = qi
			}
		}

	case circuit.KindLatch:
		en, d := int(ins[0].off), int(ins[1].off)
		q := broadcastRow(logic.X, w)
		k.run = func(cur, next []logic.Plane) {
			enH := cur[en].HMask()
			for i := 0; i < w; i++ {
				q[i] = logic.PlaneSelect(enH, cur[d+i].Readable(), q[i])
				next[out+i] = q[i]
			}
		}

	case circuit.KindTri:
		en, a := int(ins[0].off), int(ins[1].off)
		k.run = func(cur, next []logic.Plane) {
			e := cur[en].Readable()
			enH, enL := e.HMask(), e.LMask()
			enX := ^(enH | enL)
			for i := 0; i < w; i++ {
				r := cur[a+i].Readable()
				next[out+i] = logic.Plane{
					V: r.V&enH | enL,
					U: r.U&enH | enL | enX,
				}
			}
		}

	case circuit.KindRes2:
		a, b := int(ins[0].off), int(ins[1].off)
		k.run = func(cur, next []logic.Plane) {
			for i := 0; i < w; i++ {
				next[out+i] = logic.PlaneResolve(cur[a+i], cur[b+i])
			}
		}

	case circuit.KindEq:
		a, b := int(ins[0].off), int(ins[1].off)
		aw := int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			diff, allKnown := uint64(0), ^uint64(0)
			for i := 0; i < aw; i++ {
				ra, rb := cur[a+i].Readable(), cur[b+i].Readable()
				known := ^(ra.U | rb.U)
				diff |= (ra.V ^ rb.V) & known
				allKnown &= known
			}
			next[out] = logic.Plane{V: allKnown &^ diff, U: ^(diff | allKnown)}
		}

	case circuit.KindLtU:
		a, b := int(ins[0].off), int(ins[1].off)
		aw := int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			// MSB-first ripple compare; lanes with any unknown bit poison
			// to X, matching the scalar Uint()-based evaluation.
			unk, lt, eq := uint64(0), uint64(0), ^uint64(0)
			for i := aw - 1; i >= 0; i-- {
				ra, rb := cur[a+i].Readable(), cur[b+i].Readable()
				unk |= ra.U | rb.U
				lt |= eq & ^ra.V & rb.V
				eq &= ^(ra.V ^ rb.V)
			}
			next[out] = logic.Plane{V: lt &^ unk, U: unk}
		}

	case circuit.KindAdd:
		k.run = compileAdd(ins, out, w, false, -1)
	case circuit.KindSub:
		k.run = compileAdd(ins, out, w, true, -1)
	case circuit.KindAddC:
		coutOff := int(lay.off[el.Out[1]])
		k.run = compileAdd(ins, out, w, false, coutOff)

	case circuit.KindSlice:
		a := int(ins[0].off) + el.Params.Lo
		k.run = copyPlanes(a, out, w)
	case circuit.KindExt:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			n := w
			if aw < n {
				n = aw
			}
			for i := 0; i < n; i++ {
				next[out+i] = cur[a+i]
			}
			for i := n; i < w; i++ {
				next[out+i] = logic.Plane{}
			}
		}
	case circuit.KindConcat:
		lo, hi := int(ins[0].off), int(ins[1].off)
		low := int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			for i := 0; i < low; i++ {
				next[out+i] = cur[lo+i]
			}
			for i := low; i < w; i++ {
				next[out+i] = cur[hi+i-low]
			}
		}
	case circuit.KindShlK:
		a := int(ins[0].off)
		sh := el.Params.Shift
		k.run = func(cur, next []logic.Plane) {
			for i := w - 1; i >= sh; i-- {
				next[out+i] = cur[a+i-sh]
			}
			top := sh
			if top > w {
				top = w
			}
			for i := 0; i < top; i++ {
				next[out+i] = logic.Plane{}
			}
		}
	case circuit.KindShrK:
		a := int(ins[0].off)
		sh := el.Params.Shift
		k.run = func(cur, next []logic.Plane) {
			for i := 0; i < w-sh; i++ {
				next[out+i] = cur[a+i+sh]
			}
			from := w - sh
			if from < 0 {
				from = 0
			}
			for i := from; i < w; i++ {
				next[out+i] = logic.Plane{}
			}
		}

	case circuit.KindRedAnd:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			someL, anyU := uint64(0), uint64(0)
			for i := 0; i < aw; i++ {
				r := cur[a+i].Readable()
				someL |= r.LMask()
				anyU |= r.U
			}
			next[out] = logic.Plane{V: ^(someL | anyU), U: anyU &^ someL}
		}
	case circuit.KindRedOr:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			someH, anyU := uint64(0), uint64(0)
			for i := 0; i < aw; i++ {
				r := cur[a+i].Readable()
				someH |= r.HMask()
				anyU |= r.U
			}
			next[out] = logic.Plane{V: someH, U: anyU &^ someH}
		}
	case circuit.KindRedXor:
		a, aw := int(ins[0].off), int(ins[0].w)
		k.run = func(cur, next []logic.Plane) {
			par, anyU := uint64(0), uint64(0)
			for i := 0; i < aw; i++ {
				r := cur[a+i].Readable()
				par ^= r.V
				anyU |= r.U
			}
			next[out] = logic.Plane{V: par &^ anyU, U: anyU}
		}

	default:
		// Table-driven kinds (mul, alu, rom, ram): per-lane scalar
		// evaluation with per-lane element state. Correct for every kind,
		// at scalar speed — the batch still amortises scheduling.
		k.run = compileScalar(el, ins, k.outs, lanes)
	}
	return k
}

func broadcastRow(s logic.State, w int) []logic.Plane {
	row := make([]logic.Plane, w)
	p := logic.PlaneBroadcast(s)
	for i := range row {
		row[i] = p
	}
	return row
}

func copyPlanes(src, dst, w int) func(cur, next []logic.Plane) {
	return func(cur, next []logic.Plane) {
		for i := 0; i < w; i++ {
			next[dst+i] = cur[src+i]
		}
	}
}

// compileGate folds a binary plane op across the inputs per bit column,
// exactly as circuit.evalFold does with scalar values: single-input gates
// fold with an all-L operand (the Or identity) so buf and not normalise
// X/Z the same way the scalar registry does.
func compileGate(ins []span, out, w int, op func(a, b logic.Plane) logic.Plane, invert bool) func(cur, next []logic.Plane) {
	offs := make([]int, len(ins))
	for i, sp := range ins {
		offs[i] = int(sp.off)
	}
	single := len(offs) == 1
	return func(cur, next []logic.Plane) {
		for i := 0; i < w; i++ {
			acc := cur[offs[0]+i]
			if single {
				acc = op(acc, logic.Plane{})
			}
			for _, o := range offs[1:] {
				acc = op(acc, cur[o+i])
			}
			if invert {
				acc = logic.PlaneNot(acc)
			}
			next[out+i] = acc
		}
	}
}

// compileAdd builds ripple-carry addition (or subtraction via two's
// complement) over the bit columns. Lanes with any unknown input bit
// poison the whole result to X — the scalar Add/Sub/AddCarry semantics.
// coutOff >= 0 selects the three-input addc form with a carry output.
func compileAdd(ins []span, out, w int, sub bool, coutOff int) func(cur, next []logic.Plane) {
	a, b := int(ins[0].off), int(ins[1].off)
	cin := -1
	if coutOff >= 0 {
		cin = int(ins[2].off)
	}
	return func(cur, next []logic.Plane) {
		var unk uint64
		for i := 0; i < w; i++ {
			unk |= cur[a+i].Readable().U | cur[b+i].Readable().U
		}
		carry := uint64(0)
		if sub {
			carry = ^uint64(0)
		}
		if cin >= 0 {
			r := cur[cin].Readable()
			unk |= r.U
			carry = r.V
		}
		for i := 0; i < w; i++ {
			av := cur[a+i].Readable().V
			bv := cur[b+i].Readable().V
			if sub {
				bv = ^bv
			}
			sum := av ^ bv ^ carry
			carry = av&bv | carry&(av^bv)
			next[out+i] = logic.Plane{V: sum &^ unk, U: unk}
		}
		if coutOff >= 0 {
			next[coutOff] = logic.Plane{V: carry &^ unk, U: unk}
		}
	}
}

// compileScalar is the per-lane fallback: unpack each lane's inputs into
// scalar Values, run the element's registry eval with that lane's own
// state, and pack the outputs back. One worker owns the kernel, so the
// scratch buffers and per-lane state race with nobody.
func compileScalar(el *circuit.Element, ins []span, outs []span, lanes int) func(cur, next []logic.Plane) {
	states := make([][]logic.Value, lanes)
	if n := el.NumStateVals(); n > 0 {
		for l := range states {
			states[l] = make([]logic.Value, n)
			el.InitState(states[l])
		}
	}
	in := make([]logic.Value, len(ins))
	out := make([]logic.Value, len(outs))
	return func(cur, next []logic.Plane) {
		for l := 0; l < lanes; l++ {
			for i, sp := range ins {
				in[i] = logic.ExtractLane(cur[sp.off:sp.off+sp.w], l, int(sp.w))
			}
			el.Eval(in, states[l], out)
			for i, sp := range outs {
				logic.PackLane(next[sp.off:sp.off+sp.w], l, out[i])
			}
		}
	}
}

// genKernel is one stimulus generator: clock/wave/const outputs are lane-
// invariant and broadcast; rand/gray get one per-lane element copy whose
// Seed is offset by the lane stride, so each lane replays an independent
// stimulus vector (lane 0 keeps the original seed and is bit-identical to
// a scalar run).
type genKernel struct {
	el      *circuit.Element
	out     span
	perLane []circuit.Element
}

func compileGen(c *circuit.Circuit, el *circuit.Element, lay layout, lanes int, stride int64) genKernel {
	g := genKernel{el: el, out: lay.span(c, el.Out[0])}
	if (el.Kind == circuit.KindRand || el.Kind == circuit.KindGray) && lanes > 1 && stride != 0 {
		g.perLane = make([]circuit.Element, lanes)
		for l := range g.perLane {
			cp := *el
			cp.Params.Seed += stride * int64(l)
			g.perLane[l] = cp
		}
	}
	return g
}

// write evaluates the generator at time t into the destination buffer.
func (g *genKernel) write(t circuit.Time, dst []logic.Plane) {
	o, w := int(g.out.off), int(g.out.w)
	if g.perLane == nil {
		logic.BroadcastValue(dst[o:o+w], g.el.GenValueAt(t))
		return
	}
	for l := range g.perLane {
		logic.PackLane(dst[o:o+w], l, g.perLane[l].GenValueAt(t))
	}
}
