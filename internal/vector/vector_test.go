package vector

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/compiled"
	"parsim/internal/engine"
	"parsim/internal/gen"
	"parsim/internal/logic"
	"parsim/internal/trace"
)

// shiftSeeds clones c with every rand/gray generator's seed offset by
// delta — the stimulus lane k of a batched run with LaneStride s sees.
func shiftSeeds(c *circuit.Circuit, delta int64) *circuit.Circuit {
	cp := c.Clone()
	for _, g := range cp.Generators() {
		el := &cp.Elems[g]
		if el.Kind == circuit.KindRand || el.Kind == circuit.KindGray {
			el.Params.Seed += delta
		}
	}
	return cp
}

// TestLanesMatchScalarCompiled runs a batched simulation and checks every
// lane's final values against a scalar compiled run fed that lane's
// seed-shifted stimulus.
func TestLanesMatchScalarCompiled(t *testing.T) {
	c := gen.RandomUnitCircuit(11, 80)
	const lanes, stride, horizon = 8, 3, 150

	res, err := Run(c, Options{
		Workers: 2, Horizon: horizon,
		Lanes: lanes, LaneStride: stride,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LaneFinal) != lanes {
		t.Fatalf("LaneFinal rows = %d, want %d", len(res.LaneFinal), lanes)
	}
	for lane := 0; lane < lanes; lane++ {
		sc := compiled.Run(shiftSeeds(c, stride*int64(lane)), compiled.Options{
			Workers: 1, Horizon: horizon,
		})
		for n := range c.Nodes {
			if got, want := res.LaneFinal[lane][n], sc.Final[n]; got != want {
				t.Errorf("lane %d node %q: %v, want %v", lane, c.Nodes[n].Name, got, want)
			}
		}
	}
	// Final is the probe lane's view (default lane 0).
	for n := range c.Nodes {
		if res.Final[n] != res.LaneFinal[0][n] {
			t.Fatalf("Final differs from LaneFinal[0] at node %d", n)
		}
	}
}

// TestGoldenVCDByteMatch is the golden waveform check: the batched run's
// probe, pointed at lane k, must reproduce the scalar compiled engine's
// VCD byte for byte when the scalar engine is fed lane k's stimulus.
func TestGoldenVCDByteMatch(t *testing.T) {
	c := gen.RandomUnitCircuit(23, 60)
	const lanes, stride, horizon = 4, 5, 120

	for lane := 0; lane < lanes; lane++ {
		vrec := trace.NewRecorder()
		if _, err := Run(c, Options{
			Workers: 2, Horizon: horizon, Probe: vrec,
			Lanes: lanes, LaneStride: stride, ProbeLane: lane,
		}); err != nil {
			t.Fatal(err)
		}

		srec := trace.NewRecorder()
		sc := shiftSeeds(c, stride*int64(lane))
		compiled.Run(sc, compiled.Options{Workers: 1, Horizon: horizon, Probe: srec})

		var vvcd, svcd bytes.Buffer
		if err := trace.WriteVCD(&vvcd, c, vrec, horizon); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteVCD(&svcd, sc, srec, horizon); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vvcd.Bytes(), svcd.Bytes()) {
			if d := trace.Diff(c, srec, vrec); d != "" {
				t.Fatalf("lane %d waveform diverges from scalar compiled: %s", lane, d)
			}
			t.Fatalf("lane %d VCD bytes differ", lane)
		}
	}
}

// TestLaneZeroMatchesScalarHistory pins the core contract at full width:
// with all 64 lanes live, lane 0 still replays the scalar run exactly,
// event for event.
func TestLaneZeroMatchesScalarHistory(t *testing.T) {
	c := gen.RandomUnitCircuit(5, 100)
	const horizon = 200

	vrec := trace.NewRecorder()
	if _, err := Run(c, Options{Workers: 3, Horizon: horizon, Probe: vrec}); err != nil {
		t.Fatal(err)
	}
	srec := trace.NewRecorder()
	compiled.Run(c, compiled.Options{Workers: 1, Horizon: horizon, Probe: srec})
	if d := trace.Diff(c, srec, vrec); d != "" {
		t.Fatalf("lane 0 history diverges from scalar compiled: %s", d)
	}
}

func TestOptionValidation(t *testing.T) {
	c := gen.RandomUnitCircuit(1, 20)
	cases := []Options{
		{Workers: 1, Horizon: 10, Lanes: -1},
		{Workers: 1, Horizon: 10, Lanes: logic.MaxWideLanes + 1},
		{Workers: 1, Horizon: 10, Lanes: 4, ProbeLane: 4},
		{Workers: 1, Horizon: 10, ProbeLane: -1},
		{Workers: 0, Horizon: 10},
	}
	for i, opts := range cases {
		if _, err := Run(c, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestSingleLane(t *testing.T) {
	c := gen.RandomUnitCircuit(9, 40)
	res, err := Run(c, Options{Workers: 1, Horizon: 100, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := compiled.Run(c, compiled.Options{Workers: 1, Horizon: 100})
	for n := range c.Nodes {
		if res.Final[n] != sc.Final[n] {
			t.Fatalf("node %d: %v != %v", n, res.Final[n], sc.Final[n])
		}
	}
	if len(res.LaneFinal) != 1 {
		t.Fatalf("LaneFinal rows = %d", len(res.LaneFinal))
	}
}

// TestCancellation checks the gang leaves together and reports ctx.Err
// with a partial result.
func TestCancellation(t *testing.T) {
	c := gen.RandomUnitCircuit(2, 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, c, Options{Workers: 2, Horizon: 1 << 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Run.TimeSteps >= 1<<20 {
		t.Fatalf("expected a partial result, got %+v", res)
	}
}

// TestRegistryDispatch runs the engine through the unified registry,
// proving registration, alias resolution and LaneFinal plumbing.
func TestRegistryDispatch(t *testing.T) {
	c := gen.RandomUnitCircuit(4, 40)
	for _, name := range []string{"vector", "batched", "bit-parallel"} {
		rep, err := engine.Run(context.Background(), name, c, engine.Config{
			Workers: 1, Horizon: 50, Lanes: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.LaneFinal) != 4 {
			t.Fatalf("%s: LaneFinal rows = %d", name, len(rep.LaneFinal))
		}
		if rep.Run.Algorithm == "" || rep.Run.NodeUpdates == 0 {
			t.Fatalf("%s: empty stats: %+v", name, rep.Run)
		}
	}
}

// TestInverterArraySanity runs the benchmark circuit the BENCH_vector
// figure uses, as a correctness gate: lane 0 vs scalar compiled.
func TestInverterArraySanity(t *testing.T) {
	cfg := gen.DefaultInverterArray()
	cfg.Rows, cfg.Cols, cfg.ActiveRows = 8, 8, 8
	c := gen.InverterArray(cfg)
	vrec := trace.NewRecorder()
	if _, err := Run(c, Options{Workers: 1, Horizon: 96, Probe: vrec}); err != nil {
		t.Fatal(err)
	}
	srec := trace.NewRecorder()
	compiled.Run(c, compiled.Options{Workers: 1, Horizon: 96, Probe: srec})
	if d := trace.Diff(c, srec, vrec); d != "" {
		t.Fatalf("inverter array diverges: %s", d)
	}
}

func TestZeroHorizon(t *testing.T) {
	c := gen.RandomUnitCircuit(6, 20)
	res, err := Run(c, Options{Workers: 1, Horizon: 0, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) != len(c.Nodes) {
		t.Fatalf("Final len = %d", len(res.Final))
	}
	_ = res
}

func TestLaneStrideZeroDefaultsToOne(t *testing.T) {
	c := gen.RandomUnitCircuit(8, 40)
	a, err := Run(c, Options{Workers: 1, Horizon: 80, Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, Options{Workers: 1, Horizon: 80, Lanes: 4, LaneStride: 1})
	if err != nil {
		t.Fatal(err)
	}
	for lane := range a.LaneFinal {
		for n := range c.Nodes {
			if a.LaneFinal[lane][n] != b.LaneFinal[lane][n] {
				t.Fatalf("lane %d node %d differ under default stride", lane, n)
			}
		}
	}
	_ = logic.MaxLanes
}
