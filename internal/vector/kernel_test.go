package vector

import (
	"fmt"
	"math/rand"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

var allStates = []logic.State{logic.L, logic.H, logic.X, logic.Z}

// kernelShape describes one port configuration of an element kind to prove:
// input node widths, output node widths, and the params the kind needs.
type kernelShape struct {
	ins    []int
	outs   []int
	params circuit.Params
}

// kernelShapes maps every evaluating kind to the shapes its kernel is
// proven over. Generator kinds map to nil: they have no inputs to
// enumerate and are covered by the engine-level differential tests.
// TestKernelsMatchScalarExhaustive walks circuit.AllKinds(), so adding a
// kind to the registry without adding a shape here fails the test.
var kernelShapes = map[circuit.Kind][]kernelShape{
	circuit.KindBuf: {
		{ins: []int{1}, outs: []int{1}},
		{ins: []int{2}, outs: []int{2}},
	},
	circuit.KindNot: {
		{ins: []int{1}, outs: []int{1}},
		{ins: []int{2}, outs: []int{2}},
	},
	circuit.KindAnd:  gateShapes(),
	circuit.KindOr:   gateShapes(),
	circuit.KindNand: gateShapes(),
	circuit.KindNor:  gateShapes(),
	circuit.KindXor:  gateShapes(),
	circuit.KindXnor: gateShapes(),
	circuit.KindMux2: {
		{ins: []int{1, 1, 1}, outs: []int{1}},
		{ins: []int{1, 2, 2}, outs: []int{2}},
	},
	circuit.KindDFF: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{1, 2}, outs: []int{2}},
	},
	circuit.KindDFFR: {
		{ins: []int{1, 1, 1}, outs: []int{1}, params: circuit.Params{Init: logic.V(1, 1)}},
		{ins: []int{1, 1, 2}, outs: []int{2}, params: circuit.Params{Init: logic.V(2, 2)}},
	},
	circuit.KindLatch: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{1, 2}, outs: []int{2}},
	},
	circuit.KindTri: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{1, 2}, outs: []int{2}},
	},
	circuit.KindRes2: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{2, 2}, outs: []int{2}},
	},
	circuit.KindConst: nil, // generator
	circuit.KindAdd: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{2, 2}, outs: []int{2}},
	},
	circuit.KindAddC: {
		{ins: []int{2, 2, 1}, outs: []int{2, 1}},
	},
	circuit.KindSub: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{2, 2}, outs: []int{2}},
	},
	circuit.KindMul: {
		{ins: []int{2, 2}, outs: []int{3}},
	},
	circuit.KindEq: {
		{ins: []int{2, 2}, outs: []int{1}},
	},
	circuit.KindLtU: {
		{ins: []int{2, 2}, outs: []int{1}},
	},
	circuit.KindSlice: {
		{ins: []int{4}, outs: []int{2}, params: circuit.Params{Lo: 1}},
	},
	circuit.KindExt: {
		{ins: []int{2}, outs: []int{4}},
	},
	circuit.KindConcat: {
		{ins: []int{2, 2}, outs: []int{4}},
	},
	circuit.KindShlK: {
		{ins: []int{4}, outs: []int{4}, params: circuit.Params{Shift: 1}},
		{ins: []int{4}, outs: []int{4}, params: circuit.Params{Shift: 4}},
	},
	circuit.KindShrK: {
		{ins: []int{4}, outs: []int{4}, params: circuit.Params{Shift: 1}},
		{ins: []int{4}, outs: []int{4}, params: circuit.Params{Shift: 4}},
	},
	circuit.KindRedAnd: {{ins: []int{3}, outs: []int{1}}},
	circuit.KindRedOr:  {{ins: []int{3}, outs: []int{1}}},
	circuit.KindRedXor: {{ins: []int{3}, outs: []int{1}}},
	circuit.KindAlu: {
		{ins: []int{3, 2, 2}, outs: []int{2}},
	},
	circuit.KindRom: {
		{ins: []int{2}, outs: []int{2}, params: circuit.Params{Mem: []uint64{1, 2, 3}}},
	},
	circuit.KindRam: {
		{ins: []int{1, 1, 2, 2}, outs: []int{2}, params: circuit.Params{Mem: []uint64{3}}},
	},
	circuit.KindClock: nil, // generator
	circuit.KindWave:  nil, // generator
	circuit.KindRand:  nil, // generator
	circuit.KindGray:  nil, // generator
}

// gateShapes covers the two-input, three-input (fold) and multi-bit forms
// of the variadic gate kinds.
func gateShapes() []kernelShape {
	return []kernelShape{
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{1, 1, 1}, outs: []int{1}},
		{ins: []int{2, 2}, outs: []int{2}},
	}
}

// buildShape constructs a one-element circuit for the shape, with every
// input node driven by a placeholder const so the netlist validates.
func buildShape(t *testing.T, kind circuit.Kind, sh kernelShape) (*circuit.Circuit, *circuit.Element) {
	t.Helper()
	b := circuit.NewBuilder("kernel-" + circuit.KindName(kind))
	var ins, outs []circuit.NodeID
	for i, w := range sh.ins {
		n := b.Node(fmt.Sprintf("in%d", i), w)
		b.Const(fmt.Sprintf("drv%d", i), n, logic.AllX(w))
		ins = append(ins, n)
	}
	for i, w := range sh.outs {
		outs = append(outs, b.Node(fmt.Sprintf("out%d", i), w))
	}
	b.AddElement(kind, "dut", 1, outs, ins, sh.params)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build %v %v: %v", kind, sh, err)
	}
	return c, &c.Elems[c.ElByName["dut"]]
}

// valueFromIndex decodes an enumeration index into a width-w four-state
// value, two index bits per bit position.
func valueFromIndex(w int, idx uint64) logic.Value {
	states := make([]logic.State, w)
	for b := range states {
		states[b] = allStates[idx>>uint(2*b)&3]
	}
	return logic.FromStates(states)
}

// kernelProofWidths lists the plane widths every kernel is proven at: one
// word (the PR 5 baseline) and a multi-word plane, so the word loops in
// every kernel are exercised with cross-word lane populations.
var kernelProofWidths = []int{logic.MaxLanes, 4 * logic.MaxLanes}

// TestKernelsMatchScalarExhaustive proves every compiled kernel against the
// element's scalar registry evaluation, at every width in
// kernelProofWidths. For every kind in the registry and every shape: all
// four-state input combinations are enumerated (lanes per step, one per
// lane) and, for stateful kinds, extended with random multi-step sequences
// so capture/hold behaviour is compared against a per-lane scalar oracle
// carrying its own element state.
func TestKernelsMatchScalarExhaustive(t *testing.T) {
	testKernelsAtWidth(t, kernelProofWidths[0])
}

// TestWideKernelsMatchScalarExhaustive is the multi-word run of the same
// proof; a separate test function so the CI wide-lane job (-run Wide)
// exercises it in isolation.
func TestWideKernelsMatchScalarExhaustive(t *testing.T) {
	for _, lanes := range kernelProofWidths[1:] {
		testKernelsAtWidth(t, lanes)
	}
}

func testKernelsAtWidth(t *testing.T, lanes int) {
	for _, kind := range circuit.AllKinds() {
		shapes, listed := kernelShapes[kind]
		if !listed {
			t.Errorf("kind %s has no kernel shape entry; add one to kernelShapes", circuit.KindName(kind))
			continue
		}
		if shapes == nil {
			if !circuit.IsGenerator(kind) {
				t.Errorf("kind %s is not a generator but has no kernel shapes", circuit.KindName(kind))
			}
			continue
		}
		for si, sh := range shapes {
			t.Run(fmt.Sprintf("lanes%d/%s/%d", lanes, circuit.KindName(kind), si), func(t *testing.T) {
				proveKernel(t, kind, sh, lanes)
			})
		}
	}
}

func proveKernel(t *testing.T, kind circuit.Kind, sh kernelShape, lanes int) {
	c, el := buildShape(t, kind, sh)
	lay := newLayout(c)
	kern := compileElem(c, el, lay, lanes)
	words := logic.PlaneWords(lanes)

	// Total input combination count: 4^w options per input.
	totalBits := 0
	for _, w := range sh.ins {
		totalBits += 2 * w
	}
	combos := uint64(1) << uint(totalBits)

	stateful := el.NumStateVals() > 0
	steps := int((combos + uint64(lanes) - 1) / uint64(lanes))
	if stateful {
		// Sequences matter: append random steps so edges and holds are
		// exercised against the oracle's persistent state.
		steps += 96
	}

	// Per-lane scalar oracle state.
	oracleState := make([][]logic.Value, lanes)
	if n := el.NumStateVals(); n > 0 {
		for l := range oracleState {
			oracleState[l] = make([]logic.Value, n)
			el.InitState(oracleState[l])
		}
	}

	cur := newWidePlanes(lay.total, words)
	next := newWidePlanes(lay.total, words)
	rng := rand.New(rand.NewSource(int64(kind)*7919 + int64(totalBits) + int64(lanes)))

	inVals := make([][]logic.Value, lanes)
	oracleIn := make([]logic.Value, len(sh.ins))
	oracleOut := make([]logic.Value, len(sh.outs))
	for step := 0; step < steps; step++ {
		// Choose and pack each lane's input combination.
		for l := 0; l < lanes; l++ {
			idx := uint64(step*lanes+l) % combos
			if uint64(step*lanes+l) >= combos {
				idx = rng.Uint64() % combos
			}
			vals := make([]logic.Value, len(sh.ins))
			shift := uint(0)
			for i, w := range sh.ins {
				vals[i] = valueFromIndex(w, idx>>shift)
				shift += uint(2 * w)
			}
			inVals[l] = vals
			for i, n := range el.In {
				o := int(lay.off[n])
				logic.PackLaneWide(cur[o:o+sh.ins[i]], l, vals[i])
			}
		}

		kern.run(cur, next)

		for l := 0; l < lanes; l++ {
			copy(oracleIn, inVals[l])
			el.Eval(oracleIn, oracleState[l], oracleOut)
			for oi, n := range el.Out {
				o, w := int(lay.off[n]), sh.outs[oi]
				got := logic.ExtractLaneWide(next[o:o+w], l, w)
				if got != oracleOut[oi] {
					t.Fatalf("lanes %d step %d lane %d in=%v: out %d = %v, want %v",
						lanes, step, l, inVals[l], oi, got, oracleOut[oi])
				}
			}
		}
	}
}
