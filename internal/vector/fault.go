package vector

import (
	"context"
	"fmt"
	"math/bits"

	"parsim/internal/analyze"
	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/logic"
	"parsim/internal/stats"
)

// Concurrent stuck-at fault simulation, the classic concurrent/parallel
// fault simulation scheme restated over wide planes: lane 0 simulates the
// good machine, every other lane carries the same stimulus plus exactly one
// injected stuck-at fault. A fault is detected when its lane's value at an
// observation node differs from lane 0 with both lanes known — one plane
// XOR compares 64 fault machines against the reference at once. Fault
// lists larger than Lanes-1 chunk into multiple passes.

// FaultOptions configures fault simulation (Options.FaultSim).
type FaultOptions struct {
	// Faults is the stuck-at list to inject. Nil generates the collapsed
	// single stuck-at list for the whole circuit (analyze.FaultList).
	Faults []analyze.Fault
	// Observe lists the observation nodes detection compares against the
	// good machine. Nil defaults to the circuit's sink nodes (no fanout);
	// a circuit with no sinks observes every node.
	Observe []circuit.NodeID
	// MaxPasses caps the number of chunked passes (each pass simulates
	// Lanes-1 faults). 0 runs as many passes as the list needs; faults
	// beyond the cap are reported undetected.
	MaxPasses int
	// KeepStatuses includes the per-fault status rows in the coverage
	// report; they can dominate the report size for large circuits.
	KeepStatuses bool
}

// ObservationNodes returns the default fault observation points: the
// circuit's sink nodes (driven or undriven nodes nothing reads — the
// "primary outputs"), or every node when the circuit has none.
func ObservationNodes(c *circuit.Circuit) []circuit.NodeID {
	var sinks []circuit.NodeID
	for n := range c.Nodes {
		if len(c.Nodes[n].Fanout) == 0 {
			sinks = append(sinks, circuit.NodeID(n))
		}
	}
	if len(sinks) > 0 {
		return sinks
	}
	all := make([]circuit.NodeID, len(c.Nodes))
	for n := range all {
		all[n] = circuit.NodeID(n)
	}
	return all
}

// runFaultSim chunks the fault list into passes of Lanes-1 faults and runs
// each pass with lane 0 as the good machine.
func runFaultSim(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	fo := *opts.FaultSim
	if opts.Lanes < 2 {
		return nil, fmt.Errorf("vector: fault simulation needs >= 2 lanes, have %d", opts.Lanes)
	}
	// Every lane carries the same stimulus, so divergence from lane 0 is a
	// fault effect and nothing else; the probe observes the good machine.
	opts.LaneStride = 0
	opts.ProbeLane = 0

	faults := fo.Faults
	if faults == nil {
		faults = analyze.FaultList(c, true)
	}
	observe := fo.Observe
	if len(observe) == 0 {
		observe = ObservationNodes(c)
	}

	perPass := opts.Lanes - 1
	passes := (len(faults) + perPass - 1) / perPass
	if fo.MaxPasses > 0 && passes > fo.MaxPasses {
		passes = fo.MaxPasses
	}

	statuses := make([]stats.FaultStatus, len(faults))
	for i := range statuses {
		statuses[i] = stats.FaultStatus{Site: faults[i].Site(c), Step: -1}
	}

	// Resuming a fault simulation restarts at the snapshotted pass with the
	// completed passes' statuses and counters already in hand; the in-flight
	// pass's plane and detection state is restored inside runPass.
	startPass, ran := 0, 0
	var resumeAcc *checkpoint.RunCounters
	if snap := opts.Resume; snap != nil {
		fs := snap.Fault
		if fs == nil {
			return nil, fmt.Errorf("parsim: resume (vector): snapshot carries no fault-simulation state")
		}
		if len(fs.Statuses) != len(statuses) {
			return nil, fmt.Errorf("parsim: resume (vector): snapshot has %d fault statuses, want %d",
				len(fs.Statuses), len(statuses))
		}
		if fs.Pass < 0 || fs.Pass >= passes {
			return nil, fmt.Errorf("parsim: resume (vector): snapshot pass %d outside [0,%d)", fs.Pass, passes)
		}
		copy(statuses, fs.Statuses)
		startPass, ran = fs.Pass, fs.Ran
		acc := fs.Acc
		resumeAcc = &acc
	}

	var total *Result
	var runErr error
	for p := startPass; p < passes; p++ {
		lo := p * perPass
		hi := lo + perPass
		if hi > len(faults) {
			hi = len(faults)
		}
		fp := newFaultPass(c, faults[lo:hi], observe)
		fp.pass, fp.ran, fp.statuses = p, ran, statuses
		if total != nil {
			fp.acc = packRun(&total.Run)
		} else if resumeAcc != nil {
			fp.acc = *resumeAcc
		}
		passOpts := opts
		if p != startPass {
			passOpts.Resume = nil
		}
		res, err := runPass(ctx, c, passOpts, fp)
		if res != nil {
			fp.record(statuses[lo:hi])
			ran++
			if total == nil {
				total = res
				if resumeAcc != nil {
					// Fold the completed passes' counters back in so the
					// stitched totals match an uninterrupted run's.
					addRunCounters(&total.Run, *resumeAcc)
					resumeAcc = nil
				}
			} else {
				total.Final = res.Final
				mergeRun(&total.Run, &res.Run)
			}
		}
		if err != nil {
			runErr = err
			break
		}
	}
	if total == nil {
		return nil, runErr
	}

	detected := 0
	for i := range statuses {
		if statuses[i].Detected {
			detected++
		}
	}
	cov := &stats.FaultCoverage{
		Total:     len(faults),
		Detected:  detected,
		Collapsed: analyze.TotalFaultSites(c) - len(faults),
		Passes:    ran,
		Lanes:     opts.Lanes,
	}
	if fo.KeepStatuses {
		cov.Faults = statuses
	}
	// LaneFinal would expose per-fault machine state — large and not the
	// product of this mode; Final remains the good machine's view.
	total.LaneFinal = nil
	total.FaultCoverage = cov
	total.Run.Algorithm += "+faults"
	return total, runErr
}

// packRun extracts the accumulating counters of a running total into the
// snapshot wire form; addRunCounters folds them back in on resume. The two
// cover exactly the fields mergeRun sums across passes.
func packRun(r *stats.Run) checkpoint.RunCounters {
	return checkpoint.RunCounters{
		TimeSteps:   r.TimeSteps,
		NodeUpdates: r.NodeUpdates,
		Evals:       r.Evals,
		ModelCalls:  r.ModelCalls,
		EventsUsed:  r.EventsUsed,
		Wall:        r.Wall,
		PerWorker:   append([]stats.WorkerCounters(nil), r.PerWorker...),
	}
}

func addRunCounters(dst *stats.Run, acc checkpoint.RunCounters) {
	dst.TimeSteps += acc.TimeSteps
	dst.NodeUpdates += acc.NodeUpdates
	dst.Evals += acc.Evals
	dst.ModelCalls += acc.ModelCalls
	dst.EventsUsed += acc.EventsUsed
	dst.Wall += acc.Wall
	for i := range dst.PerWorker {
		if i < len(acc.PerWorker) {
			dst.PerWorker[i].Accumulate(acc.PerWorker[i])
		}
	}
}

// mergeRun accumulates one pass's run stats into the running total.
func mergeRun(dst, src *stats.Run) {
	dst.TimeSteps += src.TimeSteps
	dst.NodeUpdates += src.NodeUpdates
	dst.Evals += src.Evals
	dst.ModelCalls += src.ModelCalls
	dst.EventsUsed += src.EventsUsed
	dst.Wall += src.Wall
	for i := range dst.PerWorker {
		if i < len(src.PerWorker) {
			dst.PerWorker[i].Accumulate(src.PerWorker[i])
		}
	}
}

// faultInj is one fault's injection site in plane coordinates: set or
// clear one lane bit of one plane word, forcing the lane known.
type faultInj struct {
	plane     int
	wd        int
	mask      uint64
	stuckHigh bool
}

func (in faultInj) apply(dst []logic.WidePlane) {
	p := dst[in.plane]
	if in.stuckHigh {
		p.V[in.wd] |= in.mask
	} else {
		p.V[in.wd] &^= in.mask
	}
	p.U[in.wd] &^= in.mask
}

// faultPass carries one pass's injection and detection state. Injection
// ownership follows element ownership — the worker whose kernel drives the
// faulted node re-asserts the fault after writing it, so no two workers
// touch the same plane word; undriven nodes belong to worker 0.
// Observation nodes are split round-robin; each worker records detections
// in its own masks, merged when the pass finishes.
type faultPass struct {
	c        *circuit.Circuit
	faults   []analyze.Fault
	obsNodes []circuit.NodeID

	words    int
	all      []faultInj   // every injection, for init-time application
	byWorker [][]faultInj // injections owned per worker
	obs      [][]span     // observation spans per worker
	det      [][]uint64   // per-worker detected lane masks [worker][word]
	first    [][]int64    // per-worker first-detection step per fault, -1 = none

	// Snapshot context, set by runFaultSim before the pass starts: the
	// pass index, how many passes completed before it, the full status
	// table (rows for completed passes filled in) and the counters merged
	// from completed passes. Mid-pass checkpoints carry these along so a
	// restart re-enters the chunk loop where it left off.
	pass     int
	ran      int
	statuses []stats.FaultStatus
	acc      checkpoint.RunCounters
}

func newFaultPass(c *circuit.Circuit, faults []analyze.Fault, observe []circuit.NodeID) *faultPass {
	return &faultPass{c: c, faults: faults, obsNodes: observe}
}

// bind resolves the pass state against a compiled sim: plane offsets,
// element ownership and per-worker detection buffers.
func (fp *faultPass) bind(s *sim) {
	fp.words = s.words
	p := s.p
	own := make([]int, len(fp.c.Elems))
	for w, ks := range s.parts {
		for _, k := range ks {
			own[k.eid] = w
		}
	}
	for w, gs := range s.gens {
		for _, g := range gs {
			own[g.el.ID] = w
		}
	}
	fp.all = fp.all[:0]
	fp.byWorker = make([][]faultInj, p)
	for i, f := range fp.faults {
		lane := i + 1
		inj := faultInj{
			plane:     int(s.lay.off[f.Node]) + f.Bit,
			wd:        lane >> 6,
			mask:      1 << uint(lane&63),
			stuckHigh: f.StuckHigh,
		}
		fp.all = append(fp.all, inj)
		w := 0
		if d := fp.c.Nodes[f.Node].Driver; d != circuit.NoElem {
			w = own[d]
		}
		fp.byWorker[w] = append(fp.byWorker[w], inj)
	}
	fp.obs = make([][]span, p)
	for i, n := range fp.obsNodes {
		fp.obs[i%p] = append(fp.obs[i%p], s.lay.span(fp.c, n))
	}
	fp.det = make([][]uint64, p)
	fp.first = make([][]int64, p)
	for w := 0; w < p; w++ {
		fp.det[w] = make([]uint64, s.words)
		fp.first[w] = make([]int64, len(fp.faults))
		for i := range fp.first[w] {
			fp.first[w][i] = -1
		}
	}
}

// inject applies every fault to one buffer side (init time, before the
// workers start).
func (fp *faultPass) inject(dst []logic.WidePlane) {
	for _, in := range fp.all {
		in.apply(dst)
	}
}

// injectWorker re-asserts worker id's faults on the freshly written side.
func (fp *faultPass) injectWorker(id int, dst []logic.WidePlane) {
	for _, in := range fp.byWorker[id] {
		in.apply(dst)
	}
}

// observe scans worker id's observation nodes at step t: a fault lane is
// detected when its value is known and differs from a known good-machine
// (lane 0) value on any observed bit. Lanes already in the worker's
// detected mask are dropped from further comparison.
func (fp *faultPass) observe(id int, t circuit.Time, cur []logic.WidePlane) {
	det := fp.det[id]
	first := fp.first[id]
	nf := len(fp.faults)
	for _, sp := range fp.obs[id] {
		o, w := int(sp.off), int(sp.w)
		for b := 0; b < w; b++ {
			wp := cur[o+b]
			if wp.U[0]&1 != 0 {
				continue // good machine unknown on this bit: no verdict
			}
			var gv uint64
			if wp.V[0]&1 != 0 {
				gv = ^uint64(0)
			}
			for wd := 0; wd < fp.words; wd++ {
				diffs := (wp.V[wd] ^ gv) &^ wp.U[wd] &^ det[wd]
				if wd == 0 {
					diffs &^= 1 // lane 0 is the reference itself
				}
				if diffs == 0 {
					continue
				}
				det[wd] |= diffs
				for diffs != 0 {
					bit := bits.TrailingZeros64(diffs)
					diffs &^= 1 << uint(bit)
					idx := wd*64 + bit - 1
					if idx < nf && first[idx] < 0 {
						first[idx] = int64(t)
					}
				}
			}
		}
	}
}

// record merges the per-worker detections into the pass's status rows:
// detected if any worker saw the lane diverge, at the earliest such step.
func (fp *faultPass) record(st []stats.FaultStatus) {
	for i := range st {
		best := int64(-1)
		for w := range fp.first {
			if s := fp.first[w][i]; s >= 0 && (best < 0 || s < best) {
				best = s
			}
		}
		if best >= 0 {
			st[i].Detected = true
			st[i].Step = best
		}
	}
}
