package vector

import (
	"context"
	"testing"

	"parsim/internal/analyze"
	"parsim/internal/engine"
	"parsim/internal/gen"
	"parsim/internal/logic"
)

// TestWideFaultInverterArrayFullCoverage runs concurrent fault simulation on
// the paper's control circuit. The collapsed fault list is exactly the chain
// heads (both polarities of every toggling input), every one of which
// reaches its chain's sink, so coverage must be total — and no detection can
// happen before the fault effect has propagated through the chain.
func TestWideFaultInverterArrayFullCoverage(t *testing.T) {
	cfg := gen.DefaultInverterArray()
	cfg.Rows, cfg.Cols, cfg.ActiveRows = 8, 8, 8
	c := gen.InverterArray(cfg)

	res, err := Run(c, Options{
		Workers: 2, Horizon: 64, Lanes: 64,
		FaultSim: &FaultOptions{KeepStatuses: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.FaultCoverage
	if cov == nil {
		t.Fatal("no FaultCoverage on fault-sim result")
	}
	if cov.Total != 2*cfg.Rows {
		t.Fatalf("collapsed list has %d faults, want %d (chain heads only)", cov.Total, 2*cfg.Rows)
	}
	if cov.Detected != cov.Total {
		t.Fatalf("coverage %.3f (%d/%d), want 1.0; statuses: %+v",
			cov.Coverage(), cov.Detected, cov.Total, cov.Faults)
	}
	if cov.Passes != 1 {
		t.Fatalf("Passes = %d, want 1", cov.Passes)
	}
	if want := analyze.TotalFaultSites(c) - cov.Total; cov.Collapsed != want {
		t.Fatalf("Collapsed = %d, want %d", cov.Collapsed, want)
	}
	for _, st := range cov.Faults {
		if st.Step < int64(cfg.Cols) {
			t.Errorf("fault %s detected at step %d, before the %d-deep chain can propagate",
				st.Site, st.Step, cfg.Cols)
		}
	}
	if res.LaneFinal != nil {
		t.Fatal("fault-sim result carries LaneFinal; expected nil")
	}
}

// TestWideFaultGateMultiplierCoverage is the acceptance-level run: the
// paper's gate-level array multiplier (scaled to 4x4) under random operand
// vectors must reach at least 90% stuck-at coverage, with the fault list
// spanning multiple words of a wide plane.
func TestWideFaultGateMultiplierCoverage(t *testing.T) {
	mcfg := gen.DefaultMultiplier()
	mcfg.N, mcfg.InPeriod, mcfg.Seed = 4, 64, 11
	c := gen.GateMultiplier(mcfg)

	faults := analyze.FaultList(c, true)
	if len(faults) <= 64 {
		t.Fatalf("multiplier fault list has %d faults; want >64 so a 256-lane pass crosses words", len(faults))
	}
	res, err := Run(c, Options{
		Workers: 2, Horizon: 1024, Lanes: 256,
		FaultSim: &FaultOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.FaultCoverage
	if cov == nil {
		t.Fatal("no FaultCoverage on fault-sim result")
	}
	if cov.Total != len(faults) {
		t.Fatalf("Total = %d, want %d", cov.Total, len(faults))
	}
	if cov.Coverage() < 0.90 {
		t.Fatalf("coverage %.3f (%d/%d) below 0.90", cov.Coverage(), cov.Detected, cov.Total)
	}
	if cov.Faults != nil {
		t.Fatal("statuses kept without KeepStatuses")
	}
}

// TestWideFaultMultiPassMatchesSinglePass chunks the same fault list into
// many narrow passes and checks every fault resolves identically (detected
// flag and first-detection step) to one wide pass — the pass boundary must
// be invisible.
func TestWideFaultMultiPassMatchesSinglePass(t *testing.T) {
	cfg := gen.DefaultInverterArray()
	cfg.Rows, cfg.Cols, cfg.ActiveRows = 6, 5, 4
	c := gen.InverterArray(cfg)
	faults := analyze.FaultList(c, false) // full universe: force several passes

	run := func(lanes int) *Result {
		res, err := Run(c, Options{
			Workers: 1, Horizon: 48, Lanes: lanes,
			FaultSim: &FaultOptions{Faults: faults, KeepStatuses: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	narrow := run(8) // 7 faults per pass
	wide := run(128) // all faults in one pass
	if narrow.FaultCoverage.Passes <= wide.FaultCoverage.Passes {
		t.Fatalf("narrow run took %d passes, wide %d; expected chunking",
			narrow.FaultCoverage.Passes, wide.FaultCoverage.Passes)
	}
	if narrow.FaultCoverage.Detected != wide.FaultCoverage.Detected {
		t.Fatalf("detected: narrow %d, wide %d", narrow.FaultCoverage.Detected, wide.FaultCoverage.Detected)
	}
	for i := range faults {
		n, w := narrow.FaultCoverage.Faults[i], wide.FaultCoverage.Faults[i]
		if n != w {
			t.Fatalf("fault %d (%s): narrow %+v, wide %+v", i, n.Site, n, w)
		}
	}
}

// TestWideFaultGoodMachineUnperturbed: the fault-sim run's Final is lane
// 0's view and must be bit-identical to a plain run of the same circuit —
// injected faults may never leak into the good machine.
func TestWideFaultGoodMachineUnperturbed(t *testing.T) {
	cfg := gen.DefaultInverterArray()
	cfg.Rows, cfg.Cols, cfg.ActiveRows = 4, 6, 4
	c := gen.InverterArray(cfg)

	plain, err := Run(c, Options{Workers: 1, Horizon: 50, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(c, Options{
		Workers: 2, Horizon: 50, Lanes: 64,
		FaultSim: &FaultOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := range c.Nodes {
		if plain.Final[n] != faulty.Final[n] {
			t.Fatalf("node %q: good machine %v under faults, %v plain",
				c.Nodes[n].Name, faulty.Final[n], plain.Final[n])
		}
	}
}

// TestWideFaultMaxPasses caps the chunk loop: faults beyond the cap stay
// undetected and the pass count reflects the cap.
func TestWideFaultMaxPasses(t *testing.T) {
	cfg := gen.DefaultInverterArray()
	cfg.Rows, cfg.Cols, cfg.ActiveRows = 8, 4, 8
	c := gen.InverterArray(cfg)
	faults := analyze.FaultList(c, true) // 16 faults

	res, err := Run(c, Options{
		Workers: 1, Horizon: 40, Lanes: 8, // 7 faults per pass
		FaultSim: &FaultOptions{Faults: faults, MaxPasses: 1, KeepStatuses: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cov := res.FaultCoverage
	if cov.Passes != 1 {
		t.Fatalf("Passes = %d, want 1", cov.Passes)
	}
	if cov.Detected != 7 {
		t.Fatalf("Detected = %d, want exactly the first pass's 7", cov.Detected)
	}
	for i, st := range cov.Faults {
		if got, want := st.Detected, i < 7; got != want {
			t.Errorf("fault %d (%s): detected %v, want %v", i, st.Site, got, want)
		}
	}
}

// TestWideFaultOptionValidation: fault simulation needs a reference lane
// plus at least one fault lane.
func TestWideFaultOptionValidation(t *testing.T) {
	c := gen.RandomUnitCircuit(3, 20)
	if _, err := Run(c, Options{Workers: 1, Horizon: 10, Lanes: 1, FaultSim: &FaultOptions{}}); err == nil {
		t.Fatal("Lanes=1 fault sim accepted")
	}
}

// TestWideFaultEngineDispatch drives fault simulation through the unified
// engine registry and checks the engine layer rejects non-vector engines.
func TestWideFaultEngineDispatch(t *testing.T) {
	cfg := gen.DefaultInverterArray()
	cfg.Rows, cfg.Cols, cfg.ActiveRows = 4, 4, 4
	c := gen.InverterArray(cfg)

	rep, err := engine.Run(context.Background(), "vector", c, engine.Config{
		Workers: 1, Horizon: 40, Lanes: 64,
		FaultSim: true, FaultStatuses: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultCoverage == nil || rep.FaultCoverage.Detected == 0 {
		t.Fatalf("registry fault run reported no coverage: %+v", rep.FaultCoverage)
	}
	if len(rep.FaultCoverage.Faults) == 0 {
		t.Fatal("FaultStatuses did not propagate status rows")
	}

	if _, err := engine.Run(context.Background(), "compiled", c, engine.Config{
		Workers: 1, Horizon: 40, FaultSim: true,
	}); err == nil {
		t.Fatal("compiled engine accepted a fault-sim config")
	}
	_ = logic.MaxWideLanes
}
