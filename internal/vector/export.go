package vector

// Exported kernel-compilation surface for the codegen engine
// (internal/codegen): the static compiler reuses the proven plane-op
// kernels of this package — the mux/register/wiring/arithmetic closures
// and the bit-sliced mul/alu/rom/ram tables — against its own node
// numbering, instead of re-deriving (and re-proving) the 4-state algebra.
// Only the fused 1/2-input gate shapes are re-lowered by the codegen
// backend itself, into flat-slab batch loops.

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// OutSpan locates one node's planes in a caller-supplied numbering:
// node Node's bit b lives at plane Off+b.
type OutSpan struct {
	Node circuit.NodeID
	Off  int32
	W    int32
}

// ElemKernel is the exported form of one compiled element: Run reads the
// input planes from cur and writes every output plane in next, for all
// lanes at once. State and LaneState alias the kernel's internal storage
// so checkpoints can capture and restore it in place.
type ElemKernel struct {
	Eid       circuit.ElemID
	Cost      int64
	Outs      []OutSpan
	Run       func(cur, next []logic.WidePlane)
	State     []logic.WidePlane
	LaneState [][]logic.Value
}

func exportKernel(k kernel) ElemKernel {
	ek := ElemKernel{
		Eid:       k.eid,
		Cost:      k.cost,
		Run:       k.run,
		State:     k.state,
		LaneState: k.laneState,
	}
	for _, sp := range k.outs {
		ek.Outs = append(ek.Outs, OutSpan{Node: sp.node, Off: sp.off, W: sp.w})
	}
	return ek
}

// CompileElemKernel compiles one element into its bit-parallel plane-op
// kernel against a caller-owned node numbering: off[n] is the first plane
// of node n. Every kind the batched engine lowers natively (gates,
// mux/registers, wiring, comparisons, adders, the bit-sliced functional
// kinds) gets the same kernel here; unknown kinds fall back to per-lane
// scalar evaluation.
func CompileElemKernel(c *circuit.Circuit, el *circuit.Element, off []int32, lanes int) ElemKernel {
	return exportKernel(compileElem(c, el, layout{off: off}, lanes))
}

// CompileScalarElemKernel forces the per-lane scalar fallback for one
// element regardless of kind. The codegen engine uses it for the
// table-driven functional kinds at one lane, where a bit-sliced kernel
// would do word-ops-per-bit work for a single live stimulus vector and
// the registry's native integer evaluation is strictly faster.
func CompileScalarElemKernel(c *circuit.Circuit, el *circuit.Element, off []int32, lanes int) ElemKernel {
	lay := layout{off: off}
	k := kernel{eid: el.ID, cost: el.Cost}
	for _, n := range el.Out {
		k.outs = append(k.outs, lay.span(c, n))
	}
	ins := make([]span, len(el.In))
	for i, n := range el.In {
		ins[i] = lay.span(c, n)
	}
	k.run, k.laneState = compileScalar(el, ins, k.outs, lanes)
	return exportKernel(k)
}

// GenExec is one compiled stimulus generator over a caller-owned
// numbering; Write evaluates it at time t into the destination planes.
type GenExec struct {
	g   genKernel
	Out OutSpan
}

// CompileGenExec compiles one generator element the same way the batched
// engine does: clock/wave/const broadcast lane-invariant values, rand/gray
// get per-lane seed-offset copies when lanes > 1 and stride != 0.
func CompileGenExec(c *circuit.Circuit, el *circuit.Element, off []int32, lanes int, stride int64) GenExec {
	g := compileGen(c, el, layout{off: off}, lanes, stride)
	return GenExec{
		g:   g,
		Out: OutSpan{Node: g.out.node, Off: g.out.off, W: g.out.w},
	}
}

// Write evaluates the generator at time t into dst.
func (g *GenExec) Write(t circuit.Time, dst []logic.WidePlane) { g.g.write(t, dst) }
