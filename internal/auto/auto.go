// Package auto registers the "auto" engine: cost-model-driven engine
// selection. It never simulates anything itself — Run computes the static
// circuit profile (analyze.Profile), ranks every registered engine through
// the extended machine cost model (machine.Predict), and hands the run to
// the predicted winner at the predicted worker count, partition strategy
// and lane width. The decision is recorded on Report.Selected so the
// facade, the CLIs and parsimd can all surface it.
//
// Config.Workers acts as a budget: the winner may run fewer workers than
// the budget (a feedback-dominated circuit is fastest on one worker), never
// more. Config.Lanes > 1 forces the vector engine: of the two engines that
// produce LaneFinal (vector and jit) it is the one whose bit-sliced
// functional kernels are tuned for wide batches, and a forced winner keeps
// batched selection deterministic.
// Fault simulation never reaches this package: RunEngine rejects
// Config.FaultSim for any engine not named "vector".
package auto

import (
	"context"

	"parsim/internal/analyze"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/machine"
	"parsim/internal/partition"
)

type eng struct{}

// Name returns the registry name.
func (eng) Name() string { return "auto" }

func init() { engine.Register(eng{}, "select") }

// Run profiles the circuit, picks the winner and delegates. The outer
// RunEngine call has already validated the config, linted the circuit and
// attached the supervisor (cfg.Guard), which the inner engine inherits —
// its stall signal is aggregate, so a winner running fewer workers than
// the budget still keeps the watchdog fed.
func (eng) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	sel, icfg := Choose(c, cfg)
	inner, err := engine.Get(sel.Engine)
	if err != nil {
		return nil, err
	}
	rep, err := inner.Run(ctx, c, icfg)
	if rep != nil {
		rep.Selected = sel
	}
	return rep, err
}

// Choose computes the selection for c under cfg and returns it together
// with the config the winning engine should run with. Exported for the
// profile tooling and tests; Run is the production path.
func Choose(c *circuit.Circuit, cfg engine.Config) (*engine.Selection, engine.Config) {
	prof := analyze.Profile(c)
	preds := machine.Predict(prof, machine.PredictOptions{
		MaxWorkers: cfg.Workers,
		Lanes:      cfg.Lanes,
		CostSpin:   cfg.CostSpin,
	})

	sel := &engine.Selection{
		Confidence: machine.Confidence(preds),
		Ranking:    make([]engine.Choice, 0, len(preds)),
		Profile:    prof,
	}
	var win *engine.Choice
	for _, pr := range preds {
		ch := engine.Choice{
			Engine:   pr.Engine,
			Workers:  pr.Workers,
			Strategy: pr.Strategy,
			Lanes:    pr.Lanes,
			Span:     pr.Span,
			Eligible: pr.Eligible,
			Reason:   pr.Reason,
		}
		if _, err := engine.Get(ch.Engine); err != nil {
			ch.Eligible = false
			ch.Reason = "engine not registered"
		}
		sel.Ranking = append(sel.Ranking, ch)
	}
	if cfg.Lanes > 1 {
		// Batched job: only the vector engine carries lanes.
		for i := range sel.Ranking {
			if sel.Ranking[i].Engine == "vector" {
				win = &sel.Ranking[i]
				win.Eligible = true
				win.Reason = "forced: Lanes > 1 requires the batched vector engine"
				break
			}
		}
		sel.Confidence = 1
	}
	if win == nil {
		for i := range sel.Ranking {
			if sel.Ranking[i].Eligible {
				win = &sel.Ranking[i]
				break
			}
		}
	}
	if win == nil {
		// Nothing eligible (cannot happen with the stock registry, but a
		// stripped build deserves a sane answer): fall back to sequential.
		sel.Ranking = append(sel.Ranking, engine.Choice{
			Engine: "sequential", Workers: 1, Eligible: true,
			Reason: "fallback: no eligible prediction",
		})
		win = &sel.Ranking[len(sel.Ranking)-1]
	}

	sel.Engine = win.Engine
	sel.Workers = win.Workers
	sel.Strategy = win.Strategy
	sel.Lanes = win.Lanes

	icfg := cfg
	icfg.Workers = win.Workers
	if icfg.Workers < 1 || icfg.Workers > cfg.Workers {
		icfg.Workers = cfg.Workers
	}
	if win.Engine == "sequential" {
		icfg.Workers = 1
	}
	if win.Strategy != "" {
		if s, err := partition.ParseStrategy(win.Strategy); err == nil {
			icfg.Strategy = s
		}
	}
	if win.Engine == "vector" && icfg.Lanes == 0 {
		// A scalar job on the vector engine: one lane, probe lane 0, same
		// histories as any scalar engine.
		icfg.Lanes = 1
	}
	sel.Workers = icfg.Workers
	return sel, icfg
}
