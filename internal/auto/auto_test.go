package auto

import (
	"context"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/gen"
	"parsim/internal/seq"

	// The candidates the selector must be able to hand a run to.
	_ "parsim/internal/codegen"
	_ "parsim/internal/compiled"
	_ "parsim/internal/core"
	_ "parsim/internal/dist"
	_ "parsim/internal/parevent"
	_ "parsim/internal/timewarp"
	_ "parsim/internal/vector"
)

// TestRegistry: the engine registers under its canonical name and the
// "select" alias.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"auto", "select"} {
		e, err := engine.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if e.Name() != "auto" {
			t.Errorf("Get(%q).Name() = %q, want auto", name, e.Name())
		}
	}
}

// TestChooseInverterArray pins the selection on the paper's flagship
// circuit: the asynchronous engine at the full budget, with the complete
// nine-engine ranking recorded on the selection.
func TestChooseInverterArray(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	sel, icfg := Choose(c, engine.Config{Workers: 4, Horizon: 96, CostSpin: 300})
	if sel.Engine != "asynchronous" {
		t.Errorf("selected %q, want asynchronous", sel.Engine)
	}
	if icfg.Workers < 1 || icfg.Workers > 4 {
		t.Errorf("inner config workers %d outside budget", icfg.Workers)
	}
	if len(sel.Ranking) != 9 {
		t.Errorf("ranking has %d entries, want 9", len(sel.Ranking))
	}
	if sel.Profile == nil || sel.Profile.Elements == 0 {
		t.Error("selection carries no profile")
	}
	if sel.Confidence < 0 || sel.Confidence > 1 {
		t.Errorf("confidence %v outside [0, 1]", sel.Confidence)
	}
}

// TestChooseLanesForceVector: a batched job has no choice — only the
// vector engine produces LaneFinal.
func TestChooseLanesForceVector(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	sel, icfg := Choose(c, engine.Config{Workers: 2, Horizon: 96, Lanes: 16})
	if sel.Engine != "vector" {
		t.Fatalf("lanes=16 selected %q, want vector", sel.Engine)
	}
	if sel.Confidence != 1 {
		t.Errorf("forced selection confidence %v, want 1", sel.Confidence)
	}
	if icfg.Lanes != 16 {
		t.Errorf("inner config lanes %d, want 16", icfg.Lanes)
	}
}

// TestChooseSequentialFallsToOneWorker: when the winner is the sequential
// engine the inner config must not carry a parallel worker count.
func TestChooseSequentialFallsToOneWorker(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	sel, icfg := Choose(c, engine.Config{Workers: 4, Horizon: 96})
	if sel.Engine == "sequential" && icfg.Workers != 1 {
		t.Errorf("sequential selected with %d workers", icfg.Workers)
	}
}

// TestRunEndToEnd: dispatching "auto" through the registry must run the
// selected engine and reproduce the sequential engine's final node values
// (the selection may pick any engine; all of them preserve event timing on
// the unit-delay array).
func TestRunEndToEnd(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	horizon := circuit.Time(96)
	rep, err := engine.Run(context.Background(), "auto", c, engine.Config{
		Workers: 2, Horizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selected == nil {
		t.Fatal("report carries no selection")
	}
	if rep.Selected.Engine == "auto" || rep.Selected.Engine == "" {
		t.Fatalf("selection did not resolve to a concrete engine: %q", rep.Selected.Engine)
	}
	if rep.Run.Evals == 0 && rep.Run.Totals().Evals == 0 {
		t.Error("selected engine did not run")
	}
	ref := seq.Run(c.Clone(), seq.Options{Horizon: horizon})
	if len(rep.Final) != len(ref.Final) {
		t.Fatalf("final length %d vs sequential %d", len(rep.Final), len(ref.Final))
	}
	for i := range ref.Final {
		if rep.Final[i] != ref.Final[i] {
			t.Fatalf("node %d final %v, sequential says %v (engine %s)",
				i, rep.Final[i], ref.Final[i], rep.Selected.Engine)
		}
	}
}

// TestRunScalarJobOnVector: if the cost model hands a scalar job to the
// vector engine it must run with one lane; forced batched jobs keep theirs.
func TestRunScalarJobOnVector(t *testing.T) {
	c := gen.InverterArray(gen.DefaultInverterArray())
	rep, err := engine.Run(context.Background(), "auto", c, engine.Config{
		Workers: 1, Horizon: 96, Lanes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selected.Engine != "vector" {
		t.Fatalf("batched job selected %q", rep.Selected.Engine)
	}
	if len(rep.LaneFinal) != 16 {
		t.Errorf("batched job produced %d lanes, want 16", len(rep.LaneFinal))
	}
}
