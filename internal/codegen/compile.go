package codegen

import (
	"sort"

	"parsim/internal/analyze"
	"parsim/internal/circuit"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/vector"
)

// The static compiler: lower a circuit's levelized schedule into a
// program — a per-(worker, level) sequence of fused gate batches and
// devirtualized element kernels over a struct-of-arrays plane numbering.
// Compilation happens once per run; the step loop then executes
// straight-line batch loops with one barrier per level.

// program is one circuit compiled for p workers at a lane width.
type program struct {
	// off maps node -> first plane index. Nodes are numbered in (driver
	// level, node) order so each level's outputs land contiguously in the
	// slabs — the struct-of-arrays layout PARSIR argues for: a level's
	// write set is one dense stripe, not a scatter over the whole state.
	off   []int32
	total int // plane count
	slots int // level slots: slot 0 = cycle-fed (-1), slot l+1 = level l
	// work[w][slot] is worker w's slice of one level.
	work [][]levelWork
	// gens[w] are worker w's stimulus generators (round-robin).
	gens [][]vector.GenExec
}

// levelWork is one worker's compiled slice of one level: the fused gate
// batches, the kernels for every other kind, and the output spans to scan
// for node-update/probe accounting.
type levelWork struct {
	batches []gateBatch
	kerns   []vector.ElemKernel
	spans   []vector.OutSpan
	// noteOffs mirrors spans as flat (offset, width) pairs for the
	// one-word, probe-free fast path: the whole level's update scan runs
	// as one loop over the slabs instead of a call per span.
	noteOffs []int32
	elems    int64 // elements in this slice (eval accounting)
	cost     int64 // summed element Cost (CostSpin accounting)
}

// slotOf maps an analyze level to its slot index.
func slotOf(level int) int { return level + 1 }

// tableKind reports the table-driven functional kinds whose bit-sliced
// kernels pay off only with multiple live lanes; at one lane the scalar
// registry evaluation is faster, so the compiler picks it.
func tableKind(k circuit.Kind) bool {
	switch k {
	case circuit.KindMul, circuit.KindAlu, circuit.KindRom, circuit.KindRam:
		return true
	}
	return false
}

// compileProgram lowers c for p workers. lanes and stride follow the
// batched engine's lane semantics (lane 0 replays the scalar stimulus).
func compileProgram(c *circuit.Circuit, p int, strat partition.Strategy, lanes int, stride int64) *program {
	words := logic.PlaneWords(lanes)
	levels := analyze.LevelSchedule(c)
	maxLevel := -1
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	slots := slotOf(maxLevel) + 1
	if slots < 1 {
		slots = 1
	}

	// Node numbering: stable sort all nodes by their driver's level slot
	// (undriven nodes first — they are constant inputs every level reads),
	// then assign plane offsets in that order.
	type nodeKey struct {
		slot int
		n    circuit.NodeID
	}
	keys := make([]nodeKey, len(c.Nodes))
	for n := range c.Nodes {
		k := nodeKey{slot: -1, n: circuit.NodeID(n)}
		if d := c.Nodes[n].Driver; d != circuit.NoElem {
			k.slot = slotOf(levels[d])
		}
		keys[n] = k
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].slot != keys[j].slot {
			return keys[i].slot < keys[j].slot
		}
		return keys[i].n < keys[j].n
	})
	off := make([]int32, len(c.Nodes))
	total := int32(0)
	for _, k := range keys {
		off[k.n] = total
		total += int32(c.Nodes[k.n].Width)
	}

	prog := &program{off: off, total: int(total), slots: slots}

	// Partition ownership is the same static split every synchronous
	// engine uses; within a worker, elements group by level and, inside a
	// level, fused gates batch by shape in element order.
	parts := partition.Split(c, p, strat)
	prog.work = make([][]levelWork, p)
	for w := range prog.work {
		prog.work[w] = make([]levelWork, slots)
	}
	for w, part := range parts {
		eids := append([]circuit.ElemID(nil), part...)
		sort.Slice(eids, func(i, j int) bool {
			si, sj := slotOf(levels[eids[i]]), slotOf(levels[eids[j]])
			if si != sj {
				return si < sj
			}
			return eids[i] < eids[j]
		})
		// Per-slot, per-shape offset accumulators, flushed slot by slot.
		var pend [numShapes][]int32
		flush := func(sl int) {
			lw := &prog.work[w][sl]
			for sh := gateShape(0); sh < numShapes; sh++ {
				if len(pend[sh]) == 0 {
					continue
				}
				lw.batches = append(lw.batches, compileBatch(sh, pend[sh], words))
				pend[sh] = nil
			}
		}
		cur := -1
		for _, eid := range eids {
			el := &c.Elems[eid]
			sl := slotOf(levels[eid])
			if sl != cur {
				if cur >= 0 {
					flush(cur)
				}
				cur = sl
			}
			lw := &prog.work[w][sl]
			lw.elems++
			lw.cost += el.Cost
			if sh, ok := fusedShape(el); ok {
				out := el.Out[0]
				oo, ww := off[out], int32(c.Nodes[out].Width)
				wd := int32(words)
				for i := int32(0); i < ww; i++ {
					switch sh.arity() {
					case 2:
						pend[sh] = append(pend[sh],
							(off[el.In[0]]+i)*wd, (oo+i)*wd)
					case 3:
						pend[sh] = append(pend[sh],
							(off[el.In[0]]+i)*wd, (off[el.In[1]]+i)*wd, (oo+i)*wd)
					case 4:
						// mux2: the width-1 select column broadcasts.
						pend[sh] = append(pend[sh],
							off[el.In[0]]*wd, (off[el.In[1]]+i)*wd, (off[el.In[2]]+i)*wd, (oo+i)*wd)
					}
				}
				lw.spans = append(lw.spans, vector.OutSpan{Node: out, Off: oo, W: ww})
				lw.noteOffs = append(lw.noteOffs, oo, ww)
				continue
			}
			var k vector.ElemKernel
			if lanes == 1 && tableKind(el.Kind) {
				k = vector.CompileScalarElemKernel(c, el, off, lanes)
			} else {
				k = vector.CompileElemKernel(c, el, off, lanes)
			}
			lw.kerns = append(lw.kerns, k)
			lw.spans = append(lw.spans, k.Outs...)
			for _, sp := range k.Outs {
				lw.noteOffs = append(lw.noteOffs, sp.Off, sp.W)
			}
		}
		if cur >= 0 {
			flush(cur)
		}
	}

	prog.gens = make([][]vector.GenExec, p)
	for i, g := range c.Generators() {
		w := i % p
		prog.gens[w] = append(prog.gens[w], vector.CompileGenExec(c, &c.Elems[g], off, lanes, stride))
	}
	return prog
}
