package codegen

import (
	"context"

	"parsim/internal/circuit"
	"parsim/internal/engine"
)

type eng struct{}

func (eng) Name() string { return "jit" }

func (eng) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	opts := Options{
		Workers:    cfg.Workers,
		Horizon:    cfg.Horizon,
		Probe:      cfg.Probe,
		CostSpin:   cfg.CostSpin,
		Strategy:   cfg.Strategy,
		Guard:      cfg.Guard,
		Lanes:      cfg.Lanes,
		LaneStride: cfg.LaneStride,
		ProbeLane:  cfg.ProbeLane,
		Checkpoint: cfg.CkptPlan,
		Resume:     cfg.CkptSnap,
	}
	res, err := RunContext(ctx, c, opts)
	if res == nil {
		return nil, err
	}
	return &engine.Report{
		Run: res.Run, Final: res.Final, LaneFinal: res.LaneFinal,
	}, err
}

func init() {
	engine.Register(eng{}, "codegen")
}
