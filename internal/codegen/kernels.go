package codegen

// The fused gate shapes: the 1- and 2-input gates that dominate every
// gate-level netlist are not compiled one closure per element the way the
// batched engine does it. Instead the compiler collects all same-shaped
// gates of one (worker, level) slice into a single batch — a flat offset
// table over the struct-of-arrays value/unknown slabs — and the whole
// batch runs as one branch-free loop of word ops: no per-element call, no
// kind dispatch, no bounds-check chains through plane structs. The algebra
// is exactly the batched engine's fused compileGate/compileGate2 forms
// (PlaneAnd/PlaneOr/PlaneXor with the Readable() normalisation folded in),
// which the truth-table suite proves against the scalar registry.

import "parsim/internal/circuit"

// gateShape enumerates the fused batch loops. 1-input shapes store offset
// pairs (src, dst); 2-input shapes store triples (a, b, dst). Offsets are
// plane indices pre-multiplied by the plane word count, so the loops index
// the flat slabs directly.
type gateShape int

const (
	shapeBuf1 gateShape = iota // buf, 1-input or/xor (fold identity = L)
	shapeNot1                  // not, 1-input nor/xnor
	shapeAnd2
	shapeNand2
	shapeOr2
	shapeNor2
	shapeXor2
	shapeXnor2
	shapeMux2 // (sel, a, b, out) quadruples; sel repeats per bit column
	numShapes
)

// arity returns the number of offsets per batch entry.
func (sh gateShape) arity() int {
	switch sh {
	case shapeBuf1, shapeNot1:
		return 2
	case shapeMux2:
		return 4
	}
	return 3
}

// fusedShape classifies an element into a batch shape, or reports that it
// needs a real kernel. The mapping mirrors vector.compileGate: 1-input
// or-family gates reduce to buf/not (fold with the all-L identity), while
// 1-input and/nand keep the generic fold (its identity differs) and
// anything with three or more inputs folds in a kernel too.
func fusedShape(el *circuit.Element) (gateShape, bool) {
	switch len(el.In) {
	case 1:
		switch el.Kind {
		case circuit.KindBuf, circuit.KindOr, circuit.KindXor:
			return shapeBuf1, true
		case circuit.KindNot, circuit.KindNor, circuit.KindXnor:
			return shapeNot1, true
		}
	case 2:
		switch el.Kind {
		case circuit.KindAnd:
			return shapeAnd2, true
		case circuit.KindNand:
			return shapeNand2, true
		case circuit.KindOr:
			return shapeOr2, true
		case circuit.KindNor:
			return shapeNor2, true
		case circuit.KindXor:
			return shapeXor2, true
		case circuit.KindXnor:
			return shapeXnor2, true
		}
	case 3:
		// The 2:1 mux dominates datapath-heavy netlists (the microprocessor
		// is half mux2 by element count); its single-bit select broadcasts
		// over the data columns, so it batches as offset quadruples.
		if el.Kind == circuit.KindMux2 {
			return shapeMux2, true
		}
	}
	return 0, false
}

// gateBatch is one compiled batch: every same-shaped gate bit-column of a
// (worker, level) slice, run by a single specialized loop. run reads the
// cur-side slabs and writes the next-side slabs.
type gateBatch struct {
	shape gateShape
	offs  []int32
	run   func(cv, cu, nv, nu []uint64)
}

// compileBatch binds a shape's specialized loop to its offset table.
func compileBatch(sh gateShape, offs []int32, words int) gateBatch {
	b := gateBatch{shape: sh, offs: offs}
	switch sh {
	case shapeBuf1:
		b.run = runCopy1(offs, words, false)
	case shapeNot1:
		b.run = runCopy1(offs, words, true)
	case shapeAnd2:
		b.run = runAnd2(offs, words, false)
	case shapeNand2:
		b.run = runAnd2(offs, words, true)
	case shapeOr2:
		b.run = runOr2(offs, words, false)
	case shapeNor2:
		b.run = runOr2(offs, words, true)
	case shapeXor2:
		b.run = runXor2(offs, words, false)
	case shapeXnor2:
		b.run = runXor2(offs, words, true)
	case shapeMux2:
		b.run = runMux2(offs, words)
	}
	return b
}

// runCopy1: V' = V&^U (buf) or ^(V|U) (not), U' = U.
func runCopy1(offs []int32, words int, invert bool) func(cv, cu, nv, nu []uint64) {
	if words == 1 {
		if invert {
			return func(cv, cu, nv, nu []uint64) {
				for i := 0; i < len(offs); i += 2 {
					a, o := offs[i], offs[i+1]
					av, au := cv[a], cu[a]
					nv[o] = ^(av | au)
					nu[o] = au
				}
			}
		}
		return func(cv, cu, nv, nu []uint64) {
			for i := 0; i < len(offs); i += 2 {
				a, o := offs[i], offs[i+1]
				av, au := cv[a], cu[a]
				nv[o] = av &^ au
				nu[o] = au
			}
		}
	}
	return func(cv, cu, nv, nu []uint64) {
		for i := 0; i < len(offs); i += 2 {
			a, o := int(offs[i]), int(offs[i+1])
			for wd := 0; wd < words; wd++ {
				av, au := cv[a+wd], cu[a+wd]
				if invert {
					nv[o+wd] = ^(av | au)
				} else {
					nv[o+wd] = av &^ au
				}
				nu[o+wd] = au
			}
		}
	}
}

// runAnd2: one = known-H lanes of both inputs, zero = known-L lanes of
// either; nand swaps one and zero.
func runAnd2(offs []int32, words int, invert bool) func(cv, cu, nv, nu []uint64) {
	if words == 1 {
		return func(cv, cu, nv, nu []uint64) {
			for i := 0; i < len(offs); i += 3 {
				a, b, o := offs[i], offs[i+1], offs[i+2]
				av, au := cv[a], cu[a]
				bv, bu := cv[b], cu[b]
				one := (av &^ au) & (bv &^ bu)
				zero := ^(av | au) | ^(bv | bu)
				if invert {
					one, zero = zero, one
				}
				nv[o] = one
				nu[o] = ^(one | zero)
			}
		}
	}
	return func(cv, cu, nv, nu []uint64) {
		for i := 0; i < len(offs); i += 3 {
			a, b, o := int(offs[i]), int(offs[i+1]), int(offs[i+2])
			for wd := 0; wd < words; wd++ {
				av, au := cv[a+wd], cu[a+wd]
				bv, bu := cv[b+wd], cu[b+wd]
				one := (av &^ au) & (bv &^ bu)
				zero := ^(av | au) | ^(bv | bu)
				if invert {
					one, zero = zero, one
				}
				nv[o+wd] = one
				nu[o+wd] = ^(one | zero)
			}
		}
	}
}

// runOr2: one = known-H lanes of either input, zero = known-L lanes of
// both; nor swaps.
func runOr2(offs []int32, words int, invert bool) func(cv, cu, nv, nu []uint64) {
	if words == 1 {
		return func(cv, cu, nv, nu []uint64) {
			for i := 0; i < len(offs); i += 3 {
				a, b, o := offs[i], offs[i+1], offs[i+2]
				av, au := cv[a], cu[a]
				bv, bu := cv[b], cu[b]
				one := (av &^ au) | (bv &^ bu)
				zero := ^(av | au) & ^(bv | bu)
				if invert {
					one, zero = zero, one
				}
				nv[o] = one
				nu[o] = ^(one | zero)
			}
		}
	}
	return func(cv, cu, nv, nu []uint64) {
		for i := 0; i < len(offs); i += 3 {
			a, b, o := int(offs[i]), int(offs[i+1]), int(offs[i+2])
			for wd := 0; wd < words; wd++ {
				av, au := cv[a+wd], cu[a+wd]
				bv, bu := cv[b+wd], cu[b+wd]
				one := (av &^ au) | (bv &^ bu)
				zero := ^(av | au) & ^(bv | bu)
				if invert {
					one, zero = zero, one
				}
				nv[o+wd] = one
				nu[o+wd] = ^(one | zero)
			}
		}
	}
}

// runMux2 is logic.PlaneMux with the Readable() normalisation folded in:
// a when sel is a known L, b when a known H; an unreadable select keeps the
// value a and b agree on and poisons the rest.
func runMux2(offs []int32, words int) func(cv, cu, nv, nu []uint64) {
	if words == 1 {
		return func(cv, cu, nv, nu []uint64) {
			for i := 0; i < len(offs); i += 4 {
				s, a, b, o := offs[i], offs[i+1], offs[i+2], offs[i+3]
				sv, su := cv[s], cu[s]
				selH := sv &^ su
				selL := ^(sv | su)
				av, au := cv[a]&^cu[a], cu[a]
				bv, bu := cv[b]&^cu[b], cu[b]
				agree := ^(av ^ bv) &^ (au | bu)
				nv[o] = av&selL | bv&selH | av&agree&su
				nu[o] = au&selL | bu&selH | ^agree&su
			}
		}
	}
	return func(cv, cu, nv, nu []uint64) {
		for i := 0; i < len(offs); i += 4 {
			s, a, b, o := int(offs[i]), int(offs[i+1]), int(offs[i+2]), int(offs[i+3])
			for wd := 0; wd < words; wd++ {
				sv, su := cv[s+wd], cu[s+wd]
				selH := sv &^ su
				selL := ^(sv | su)
				av, au := cv[a+wd]&^cu[a+wd], cu[a+wd]
				bv, bu := cv[b+wd]&^cu[b+wd], cu[b+wd]
				agree := ^(av ^ bv) &^ (au | bu)
				nv[o+wd] = av&selL | bv&selH | av&agree&su
				nu[o+wd] = au&selL | bu&selH | ^agree&su
			}
		}
	}
}

// runXor2: both inputs known decide H/L by parity; any unknown poisons.
func runXor2(offs []int32, words int, invert bool) func(cv, cu, nv, nu []uint64) {
	if words == 1 {
		return func(cv, cu, nv, nu []uint64) {
			for i := 0; i < len(offs); i += 3 {
				a, b, o := offs[i], offs[i+1], offs[i+2]
				u := cu[a] | cu[b]
				one := (cv[a] ^ cv[b]) &^ u
				zero := ^(cv[a] ^ cv[b]) &^ u
				if invert {
					one, zero = zero, one
				}
				nv[o] = one
				nu[o] = ^(one | zero)
			}
		}
	}
	return func(cv, cu, nv, nu []uint64) {
		for i := 0; i < len(offs); i += 3 {
			a, b, o := int(offs[i]), int(offs[i+1]), int(offs[i+2])
			for wd := 0; wd < words; wd++ {
				u := cu[a+wd] | cu[b+wd]
				one := (cv[a+wd] ^ cv[b+wd]) &^ u
				zero := ^(cv[a+wd] ^ cv[b+wd]) &^ u
				if invert {
					one, zero = zero, one
				}
				nv[o+wd] = one
				nu[o+wd] = ^(one | zero)
			}
		}
	}
}
