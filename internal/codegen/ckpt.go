package codegen

import (
	"fmt"

	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/logic"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Checkpoint/resume for the compiled engine: the same quiescent-barrier
// protocol as the vector engine. A snapshot captures one buffer side's
// node planes (all lanes), every stateful kernel's private planes and
// per-lane scalar state (the fused gate batches are stateless by
// construction), the per-worker counters and the recorded probe history.
// Kernel states walk in (worker, level slot, position) order — the
// compiled program is deterministic, so the restore side walks the same
// sequence.

// checkpointDue reports whether the gang snapshots at the top of step t.
func (s *sim) checkpointDue(t circuit.Time) bool {
	plan := s.opts.Checkpoint
	return plan.Enabled() && t > s.startT && int64(t)%plan.Every == 0
}

func packPlane(p logic.WidePlane) checkpoint.PlaneState {
	return checkpoint.PlaneState{
		V: append([]uint64(nil), p.V...),
		U: append([]uint64(nil), p.U...),
	}
}

// saveCheckpoint writes a snapshot of the quiesced state at the top of the
// given step. Only worker 0 (or the post-run single thread) calls it.
func (s *sim) saveCheckpoint(step circuit.Time) error {
	plan := s.opts.Checkpoint
	snap := &checkpoint.Snapshot{
		Engine:  plan.Engine,
		Digest:  plan.Digest,
		Step:    int64(step),
		Workers: append([]stats.WorkerCounters(nil), s.wc...),
	}
	side := s.buf[int(step)&1].planes
	snap.Planes = make([]checkpoint.PlaneState, len(side))
	for i, p := range side {
		snap.Planes[i] = packPlane(p)
	}
	for w := range s.prog.work {
		for sl := range s.prog.work[w] {
			for i := range s.prog.work[w][sl].kerns {
				k := &s.prog.work[w][sl].kerns[i]
				var ks checkpoint.KernelState
				for _, st := range k.State {
					ks.Planes = append(ks.Planes, packPlane(st))
				}
				for _, lane := range k.LaneState {
					ks.Lanes = append(ks.Lanes, checkpoint.PackValues(lane))
				}
				snap.Kernels = append(snap.Kernels, ks)
			}
		}
	}
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok {
		snap.HasTrace = true
		for _, ch := range rec.DumpChanges() {
			snap.Trace = append(snap.Trace, checkpoint.TraceChange{
				Node:  int32(ch.Node),
				T:     int64(ch.Time),
				Value: checkpoint.PackValue(ch.Value),
			})
		}
	}
	return s.ckptW.Save(snap)
}

// restore rebuilds the simulator from a digest-verified snapshot,
// validating every structural property so failures are errors, never
// panics.
func (s *sim) restore(snap *checkpoint.Snapshot) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("parsim: resume (jit): %s", fmt.Sprintf(format, args...))
	}
	if len(snap.Planes) != s.prog.total {
		return bad("snapshot has %d node planes for a %d-plane circuit", len(snap.Planes), s.prog.total)
	}
	for i, p := range snap.Planes {
		if len(p.V) != s.words || len(p.U) != s.words {
			return bad("plane %d has %d/%d words, want %d", i, len(p.V), len(p.U), s.words)
		}
	}
	nk := 0
	for w := range s.prog.work {
		for sl := range s.prog.work[w] {
			nk += len(s.prog.work[w][sl].kerns)
		}
	}
	if len(snap.Kernels) != nk {
		return bad("snapshot has %d kernel states for %d kernels", len(snap.Kernels), nk)
	}
	// Validate every kernel state before committing anything.
	laneVals := make([][][]logic.Value, nk)
	idx := 0
	for w := range s.prog.work {
		for sl := range s.prog.work[w] {
			for i := range s.prog.work[w][sl].kerns {
				k := &s.prog.work[w][sl].kerns[i]
				ks := &snap.Kernels[idx]
				if len(ks.Planes) != len(k.State) {
					return bad("kernel %d has %d state planes, want %d", idx, len(ks.Planes), len(k.State))
				}
				for j, p := range ks.Planes {
					if len(p.V) != s.words || len(p.U) != s.words {
						return bad("kernel %d state plane %d has %d/%d words, want %d", idx, j, len(p.V), len(p.U), s.words)
					}
				}
				if len(ks.Lanes) != len(k.LaneState) {
					return bad("kernel %d has %d lane states, want %d", idx, len(ks.Lanes), len(k.LaneState))
				}
				if len(ks.Lanes) > 0 {
					laneVals[idx] = make([][]logic.Value, len(ks.Lanes))
					for l := range ks.Lanes {
						if len(ks.Lanes[l]) != len(k.LaneState[l]) {
							return bad("kernel %d lane %d has %d state values, want %d", idx, l, len(ks.Lanes[l]), len(k.LaneState[l]))
						}
						vals, err := checkpoint.UnpackValues(ks.Lanes[l])
						if err != nil {
							return bad("kernel %d lane %d: %v", idx, l, err)
						}
						for j := range vals {
							if vals[j].Width() != k.LaneState[l][j].Width() {
								return bad("kernel %d lane %d state %d width mismatch", idx, l, j)
							}
						}
						laneVals[idx][l] = vals
					}
				}
				idx++
			}
		}
	}
	if len(snap.Workers) != s.p {
		return bad("snapshot has %d worker counter rows, want %d", len(snap.Workers), s.p)
	}
	if snap.Fault != nil {
		return bad("snapshot carries fault-simulation state the jit engine cannot resume")
	}
	// All validated; commit. Both buffer sides take the snapshot planes:
	// every driven node is fully rewritten each step and every undriven
	// node stays constant, so the resumed double-buffer sequence matches
	// the uninterrupted one exactly.
	for side := range s.buf {
		for i := range s.buf[side].planes {
			copy(s.buf[side].planes[i].V, snap.Planes[i].V)
			copy(s.buf[side].planes[i].U, snap.Planes[i].U)
		}
	}
	idx = 0
	for w := range s.prog.work {
		for sl := range s.prog.work[w] {
			for i := range s.prog.work[w][sl].kerns {
				k := &s.prog.work[w][sl].kerns[i]
				for j := range k.State {
					copy(k.State[j].V, snap.Kernels[idx].Planes[j].V)
					copy(k.State[j].U, snap.Kernels[idx].Planes[j].U)
				}
				for l := range k.LaneState {
					copy(k.LaneState[l], laneVals[idx][l])
				}
				idx++
			}
		}
	}
	copy(s.wc, snap.Workers)
	s.startT = circuit.Time(snap.Step)
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok && snap.HasTrace {
		chs := make([]trace.ChangeRecord, len(snap.Trace))
		for i, tc := range snap.Trace {
			v, err := tc.Value.Unpack()
			if err != nil {
				return bad("trace change %d: %v", i, err)
			}
			chs[i] = trace.ChangeRecord{Node: circuit.NodeID(tc.Node), Time: circuit.Time(tc.T), Value: v}
		}
		rec.Preload(chs)
	}
	return nil
}
