package codegen

import (
	"fmt"
	"math/rand"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

var allStates = []logic.State{logic.L, logic.H, logic.X, logic.Z}

// codegenShape is one port configuration of a kind to prove through the
// compiler: input node widths, output node widths, params.
type codegenShape struct {
	ins    []int
	outs   []int
	params circuit.Params
}

// codegenShapes maps every evaluating kind to the shapes its codegen
// lowering is proven over. Generator kinds map to nil: they are lowered as
// stimulus (vector.GenExec), not as level work, and the engine-level
// differential tests cover them. TestCodegenLoweringsComplete walks
// circuit.AllKinds(), so a kind added to the registry without a codegen
// lowering entry here fails the shape check.
var codegenShapes = map[circuit.Kind][]codegenShape{
	circuit.KindBuf: {
		{ins: []int{1}, outs: []int{1}},
		{ins: []int{3}, outs: []int{3}},
	},
	circuit.KindNot: {
		{ins: []int{1}, outs: []int{1}},
		{ins: []int{3}, outs: []int{3}},
	},
	circuit.KindAnd:  gate2Shapes(),
	circuit.KindOr:   gate2Shapes(),
	circuit.KindNand: gate2Shapes(),
	circuit.KindNor:  gate2Shapes(),
	circuit.KindXor:  gate2Shapes(),
	circuit.KindXnor: gate2Shapes(),
	circuit.KindMux2: {
		{ins: []int{1, 1, 1}, outs: []int{1}},
		{ins: []int{1, 2, 2}, outs: []int{2}},
	},
	circuit.KindDFF: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{1, 2}, outs: []int{2}},
	},
	circuit.KindDFFR: {
		{ins: []int{1, 1, 1}, outs: []int{1}, params: circuit.Params{Init: logic.V(1, 1)}},
	},
	circuit.KindLatch: {
		{ins: []int{1, 1}, outs: []int{1}},
	},
	circuit.KindTri: {
		{ins: []int{1, 1}, outs: []int{1}},
	},
	circuit.KindRes2: {
		{ins: []int{1, 1}, outs: []int{1}},
	},
	circuit.KindConst: nil, // generator
	circuit.KindAdd: {
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{2, 2}, outs: []int{2}},
	},
	circuit.KindAddC: {
		{ins: []int{2, 2, 1}, outs: []int{2, 1}},
	},
	circuit.KindSub: {
		{ins: []int{2, 2}, outs: []int{2}},
	},
	circuit.KindMul: {
		{ins: []int{2, 2}, outs: []int{3}},
	},
	circuit.KindEq: {
		{ins: []int{2, 2}, outs: []int{1}},
	},
	circuit.KindLtU: {
		{ins: []int{2, 2}, outs: []int{1}},
	},
	circuit.KindSlice: {
		{ins: []int{4}, outs: []int{2}, params: circuit.Params{Lo: 1}},
	},
	circuit.KindExt: {
		{ins: []int{2}, outs: []int{4}},
	},
	circuit.KindConcat: {
		{ins: []int{2, 2}, outs: []int{4}},
	},
	circuit.KindShlK: {
		{ins: []int{4}, outs: []int{4}, params: circuit.Params{Shift: 1}},
	},
	circuit.KindShrK: {
		{ins: []int{4}, outs: []int{4}, params: circuit.Params{Shift: 1}},
	},
	circuit.KindRedAnd: {{ins: []int{3}, outs: []int{1}}},
	circuit.KindRedOr:  {{ins: []int{3}, outs: []int{1}}},
	circuit.KindRedXor: {{ins: []int{3}, outs: []int{1}}},
	circuit.KindAlu: {
		{ins: []int{3, 2, 2}, outs: []int{2}},
	},
	circuit.KindRom: {
		{ins: []int{2}, outs: []int{2}, params: circuit.Params{Mem: []uint64{1, 2, 3}}},
	},
	circuit.KindRam: {
		{ins: []int{1, 1, 2, 2}, outs: []int{2}, params: circuit.Params{Mem: []uint64{3}}},
	},
	circuit.KindClock: nil, // generator
	circuit.KindWave:  nil, // generator
	circuit.KindRand:  nil, // generator
	circuit.KindGray:  nil, // generator
}

// gate2Shapes covers a variadic gate kind's lowering ladder: the fused
// 2-input single-bit and multi-bit forms and the 3-input fold kernel. (The
// builder refuses 1-input variadic gates, so fusedShape's 1-input folds
// can only be reached by Buf/Not, proven above.)
func gate2Shapes() []codegenShape {
	return []codegenShape{
		{ins: []int{1, 1}, outs: []int{1}},
		{ins: []int{2, 2}, outs: []int{2}},
		{ins: []int{1, 1, 1}, outs: []int{1}},
	}
}

// buildShape constructs a one-element circuit for the shape, every input
// driven by a placeholder const so the netlist validates.
func buildShape(t *testing.T, kind circuit.Kind, sh codegenShape) (*circuit.Circuit, *circuit.Element) {
	t.Helper()
	b := circuit.NewBuilder("codegen-" + circuit.KindName(kind))
	var ins, outs []circuit.NodeID
	for i, w := range sh.ins {
		n := b.Node(fmt.Sprintf("in%d", i), w)
		b.Const(fmt.Sprintf("drv%d", i), n, logic.AllX(w))
		ins = append(ins, n)
	}
	for i, w := range sh.outs {
		outs = append(outs, b.Node(fmt.Sprintf("out%d", i), w))
	}
	b.AddElement(kind, "dut", 1, outs, ins, sh.params)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build %v %v: %v", kind, sh, err)
	}
	return c, &c.Elems[c.ElByName["dut"]]
}

// valueFromIndex decodes an enumeration index into a width-w four-state
// value, two index bits per bit position.
func valueFromIndex(w int, idx uint64) logic.Value {
	states := make([]logic.State, w)
	for b := range states {
		states[b] = allStates[idx>>uint(2*b)&3]
	}
	return logic.FromStates(states)
}

// TestCodegenLoweringsComplete is the shape check: every kind the registry
// knows must either be a generator or carry at least one codegen proof
// shape, and every proof shape must lower into the program as exactly the
// form fusedShape classifies it as — a fused batch or a devirtualized
// kernel, never silently dropped.
func TestCodegenLoweringsComplete(t *testing.T) {
	for _, kind := range circuit.AllKinds() {
		shapes, listed := codegenShapes[kind]
		if !listed {
			t.Errorf("kind %s has no codegen lowering entry; add one to codegenShapes", circuit.KindName(kind))
			continue
		}
		if shapes == nil {
			if !circuit.IsGenerator(kind) {
				t.Errorf("kind %s is not a generator but has no codegen shapes", circuit.KindName(kind))
			}
			continue
		}
		for si, sh := range shapes {
			c, el := buildShape(t, kind, sh)
			prog := compileProgram(c, 1, 0, 64, 1)
			var batches, kerns, spans int
			var elems int64
			for sl := range prog.work[0] {
				lw := &prog.work[0][sl]
				batches += len(lw.batches)
				kerns += len(lw.kerns)
				spans += len(lw.spans)
				elems += lw.elems
			}
			if elems != 1 {
				t.Errorf("%s shape %d: program counts %d elements, want the 1 dut", circuit.KindName(kind), si, elems)
			}
			if spans == 0 {
				t.Errorf("%s shape %d: no output spans — updates would go uncounted", circuit.KindName(kind), si)
			}
			if _, fused := fusedShape(el); fused {
				if batches == 0 || kerns != 0 {
					t.Errorf("%s shape %d: want fused batch lowering, got %d batches / %d kernels",
						circuit.KindName(kind), si, batches, kerns)
				}
			} else if kerns != 1 || batches != 0 {
				t.Errorf("%s shape %d: want kernel lowering, got %d batches / %d kernels",
					circuit.KindName(kind), si, batches, kerns)
			}
		}
	}
}

// TestCodegenKernelsMatchScalarExhaustive proves every codegen lowering
// against the element's scalar registry evaluation at one machine word (64
// lanes): all four-state input combinations enumerated lane-parallel, plus
// random multi-step sequences for stateful kinds, compared per-lane to a
// scalar oracle carrying its own element state.
func TestCodegenKernelsMatchScalarExhaustive(t *testing.T) {
	proveAllAtWidth(t, 64)
}

// TestWideCodegenKernelsMatchScalarExhaustive is the multi-word (256-lane)
// run of the same proof; a separate function so the CI wide-lane job
// (-run Wide) exercises it in isolation.
func TestWideCodegenKernelsMatchScalarExhaustive(t *testing.T) {
	proveAllAtWidth(t, 256)
}

// TestScalarCodegenKernelsMatchExhaustive pins the lanes == 1 compile
// path, where the table kinds (mul/alu/rom/ram) lower through the scalar
// registry kernel instead of their bit-sliced forms.
func TestScalarCodegenKernelsMatchExhaustive(t *testing.T) {
	proveAllAtWidth(t, 1)
}

func proveAllAtWidth(t *testing.T, lanes int) {
	for _, kind := range circuit.AllKinds() {
		shapes := codegenShapes[kind]
		if shapes == nil {
			continue
		}
		for si, sh := range shapes {
			t.Run(fmt.Sprintf("lanes%d/%s/%d", lanes, circuit.KindName(kind), si), func(t *testing.T) {
				proveLowering(t, kind, sh, lanes)
			})
		}
	}
}

// proveLowering compiles the one-element circuit through compileProgram
// and drives the dut's level work directly — inputs packed into the
// cur-side slabs at the program's node offsets, outputs extracted from the
// next side — against the per-lane scalar oracle.
func proveLowering(t *testing.T, kind circuit.Kind, sh codegenShape, lanes int) {
	c, el := buildShape(t, kind, sh)
	prog := compileProgram(c, 1, 0, lanes, 1)
	words := logic.PlaneWords(lanes)

	totalBits := 0
	for _, w := range sh.ins {
		totalBits += 2 * w
	}
	combos := uint64(1) << uint(totalBits)

	stateful := el.NumStateVals() > 0
	steps := int((combos + uint64(lanes) - 1) / uint64(lanes))
	if stateful {
		steps += 96
	}

	oracleState := make([][]logic.Value, lanes)
	if n := el.NumStateVals(); n > 0 {
		for l := range oracleState {
			oracleState[l] = make([]logic.Value, n)
			el.InitState(oracleState[l])
		}
	}

	cur := newPlaneBuf(prog.total, words)
	next := newPlaneBuf(prog.total, words)
	rng := rand.New(rand.NewSource(int64(kind)*7919 + int64(totalBits) + int64(lanes)))

	inVals := make([][]logic.Value, lanes)
	oracleIn := make([]logic.Value, len(sh.ins))
	oracleOut := make([]logic.Value, len(sh.outs))
	for step := 0; step < steps; step++ {
		for l := 0; l < lanes; l++ {
			idx := uint64(step*lanes+l) % combos
			if uint64(step*lanes+l) >= combos {
				idx = rng.Uint64() % combos
			}
			vals := make([]logic.Value, len(sh.ins))
			shift := uint(0)
			for i, w := range sh.ins {
				vals[i] = valueFromIndex(w, idx>>shift)
				shift += uint(2 * w)
			}
			inVals[l] = vals
			for i, n := range el.In {
				o := int(prog.off[n])
				logic.PackLaneWide(cur.planes[o:o+sh.ins[i]], l, vals[i])
			}
		}

		for sl := range prog.work[0] {
			lw := &prog.work[0][sl]
			for i := range lw.batches {
				lw.batches[i].run(cur.v, cur.u, next.v, next.u)
			}
			for i := range lw.kerns {
				lw.kerns[i].Run(cur.planes, next.planes)
			}
		}

		for l := 0; l < lanes; l++ {
			copy(oracleIn, inVals[l])
			el.Eval(oracleIn, oracleState[l], oracleOut)
			for oi, n := range el.Out {
				o, w := int(prog.off[n]), sh.outs[oi]
				got := logic.ExtractLaneWide(next.planes[o:o+w], l, w)
				if got != oracleOut[oi] {
					t.Fatalf("lanes %d step %d lane %d in=%v: out %d = %v, want %v",
						lanes, step, l, inVals[l], oi, got, oracleOut[oi])
				}
			}
		}
	}
}
