// Package codegen implements the statically compiled ("jit") simulator:
// the circuit's levelized schedule is lowered once, at run start, into a
// per-level program of branch-free word-op batches over a struct-of-arrays
// state layout, and the step loop then executes that program with one
// sense-reversing barrier per level across the workers — Manticore's
// static bulk-synchronous schedule on a general-purpose machine.
//
// Node state lives in two flat []uint64 slabs per buffer side (value and
// unknown planes), indexed by a compile-time node numbering ordered by
// schedule level so each level reads and writes dense stripes. The 1- and
// 2-input gates — the bulk of every gate-level netlist — run as fused
// batch loops with no per-element dispatch at all; every other kind runs
// through the batched engine's proven plane-op kernels (bit-sliced
// mul/alu/rom/ram included) devirtualized into the level sequence. Like
// the vector engine, N stimulus lanes advance together (default 1, the
// scalar-identical lane), and the unit-delay double buffer makes levels a
// pure batching device: the per-level barriers order memory traffic, not
// values, so a one-worker run skips them entirely.
package codegen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsim/internal/barrier"
	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/partition"
	"parsim/internal/stats"
	"parsim/internal/trace"
	"parsim/internal/vector"
)

// Options configures a compiled run.
type Options struct {
	Workers  int          // parallel workers; >= 1
	Horizon  circuit.Time // simulate unit-delay steps t in [0, Horizon)
	Probe    trace.Probe  // optional observer of lane ProbeLane; concurrency-safe
	CostSpin int64        // if > 0, burn CostSpin x element Cost per evaluation
	Strategy partition.Strategy
	Guard    *guard.Supervisor

	// Lanes is the number of live stimulus lanes (1..logic.MaxWideLanes;
	// 0 defaults to 1 — unlike the vector engine, jit is first a scalar
	// replacement for the compiled engine, and widens on request).
	Lanes int
	// LaneStride offsets rand/gray generator seeds per lane, exactly as
	// the vector engine does. 0 defaults to 1; lane 0 keeps the original
	// seed and is bit-identical to a scalar run.
	LaneStride int64
	// ProbeLane selects the lane Probe observes and Final reports.
	ProbeLane int

	// Checkpoint asks for periodic snapshots at the per-step barrier.
	Checkpoint checkpoint.Plan
	// Resume continues from a verified snapshot, bit-identically.
	Resume *checkpoint.Snapshot
}

// Result is the outcome of a compiled run.
type Result struct {
	Run stats.Run
	// Final holds lane ProbeLane's node values after the last step.
	Final []logic.Value
	// LaneFinal holds every lane's final node values.
	LaneFinal [][]logic.Value
}

// planeBuf is one buffer side: the flat struct-of-arrays slabs plus the
// per-plane views the reused kernels and generators run over. planes[p]
// aliases v[p*words:(p+1)*words] / u[...], so batch loops and kernels see
// the same memory.
type planeBuf struct {
	v, u   []uint64
	planes []logic.WidePlane
}

func newPlaneBuf(n, words int) planeBuf {
	v := make([]uint64, n*words)
	u := make([]uint64, n*words)
	ps := make([]logic.WidePlane, n)
	for p := range ps {
		lo, hi := p*words, (p+1)*words
		ps[p] = logic.WidePlane{V: v[lo:hi:hi], U: u[lo:hi:hi]}
	}
	return planeBuf{v: v, u: u, planes: ps}
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	p    int

	prog     *program
	words    int
	laneMask []uint64

	buf [2]planeBuf // double-buffered node planes
	bar *barrier.Barrier

	wc     []stats.WorkerCounters
	cancel *engine.CancelFlag
	chaos  *guard.ChaosProbe
	// stopAt, when > 0, is the step at which every worker exits; worker 0
	// publishes it during step stopAt-1 and a barrier orders the write.
	stopAt atomic.Int64

	startT  circuit.Time
	ckptW   *checkpoint.Writer
	ckptErr error
}

// Run simulates the circuit with the statically compiled engine.
func Run(c *circuit.Circuit, opts Options) (*Result, error) {
	return RunContext(context.Background(), c, opts)
}

// RunContext is Run with cancellation: when ctx is cancelled all workers
// stop together at the next time step and the partial result is returned
// with ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	if err := engine.ValidateWorkers(opts.Workers); err != nil {
		return nil, err
	}
	if opts.Lanes == 0 {
		opts.Lanes = 1
	}
	if opts.Lanes < 1 || opts.Lanes > logic.MaxWideLanes {
		return nil, fmt.Errorf("codegen: lanes %d out of range [1,%d]", opts.Lanes, logic.MaxWideLanes)
	}
	if opts.LaneStride == 0 {
		opts.LaneStride = 1
	}
	if opts.ProbeLane < 0 || opts.ProbeLane >= opts.Lanes {
		return nil, fmt.Errorf("codegen: probe lane %d outside [0,%d)", opts.ProbeLane, opts.Lanes)
	}
	p := opts.Workers
	s := &sim{
		c:        c,
		opts:     opts,
		p:        p,
		prog:     compileProgram(c, p, opts.Strategy, opts.Lanes, opts.LaneStride),
		words:    logic.PlaneWords(opts.Lanes),
		laneMask: logic.LaneMasks(opts.Lanes),
		bar:      barrier.New(p),
		wc:       make([]stats.WorkerCounters, p),
		cancel:   engine.WatchCancel(ctx),
		chaos:    opts.Guard.Chaos(),
	}
	defer s.cancel.Release()
	opts.Guard.OnTrip(s.bar.Abort)

	for side := range s.buf {
		s.buf[side] = newPlaneBuf(s.prog.total, s.words)
		for i := range s.buf[side].planes {
			s.buf[side].planes[i].Fill(logic.X)
		}
	}
	if opts.Resume != nil {
		// The snapshot replaces the t=0 initialisation wholesale, exactly
		// as in the vector engine: both buffer sides take the checkpointed
		// planes, kernel state and counters resume, and the generator init
		// below is skipped (already counted in the restored counters).
		if err := s.restore(opts.Resume); err != nil {
			return nil, err
		}
		return s.finish(ctx, c, opts)
	}
	// Generators assume their t=0 values before the first step: both
	// buffer sides start consistent, the probe sees lane ProbeLane, and a
	// change in any live lane counts one update.
	for w := range s.prog.gens {
		for i := range s.prog.gens[w] {
			g := &s.prog.gens[w][i]
			g.Write(0, s.buf[0].planes)
			o, wd := int(g.Out.Off), int(g.Out.W)
			var changed uint64
			for b := 0; b < wd; b++ {
				cv, nv := s.buf[1].planes[o+b], s.buf[0].planes[o+b]
				for ww := 0; ww < s.words; ww++ {
					changed |= ((cv.V[ww] ^ nv.V[ww]) | (cv.U[ww] ^ nv.U[ww])) & s.laneMask[ww]
				}
			}
			if changed == 0 {
				continue
			}
			for b := 0; b < wd; b++ {
				copy(s.buf[1].planes[o+b].V, s.buf[0].planes[o+b].V)
				copy(s.buf[1].planes[o+b].U, s.buf[0].planes[o+b].U)
			}
			s.wc[0].NodeUpdates++
			if opts.Probe != nil && s.probeLaneChangedInit(o, wd) {
				opts.Probe.OnChange(g.Out.Node, 0,
					logic.ExtractLaneWide(s.buf[0].planes[o:o+wd], opts.ProbeLane, wd))
			}
		}
	}
	return s.finish(ctx, c, opts)
}

// finish runs the worker gang over the (freshly initialised or restored)
// state and assembles the result.
func (s *sim) finish(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	p := s.p
	if opts.Checkpoint.Enabled() {
		s.ckptW = checkpoint.NewWriter(opts.Checkpoint)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer opts.Guard.Recover(w, "jit step loop")
			s.worker(w)
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	steps := int64(opts.Horizon)
	planes := s.buf[int(opts.Horizon-1)&1].planes
	if opts.Horizon <= 0 {
		planes = s.buf[0].planes
	}
	if sa := s.stopAt.Load(); sa > 0 && circuit.Time(sa) < opts.Horizon-1 {
		steps = sa + 1
		planes = s.buf[int(sa)&1].planes
	}
	if opts.Checkpoint.Enabled() && s.ckptErr == nil && s.cancel.Cancelled() {
		// A clean stop is a quiescent point; capture it so a drained run
		// can resume. A guard trip aborts the barrier without publishing
		// stopAt — that state is untrusted and deliberately not saved.
		if sa := s.stopAt.Load(); sa > 0 {
			if err := s.saveCheckpoint(circuit.Time(sa)); err != nil {
				s.ckptErr = err
			}
		}
	}
	if s.ckptW != nil {
		if !s.cancel.Cancelled() {
			s.ckptW.DiscardPending()
		}
		if cerr := s.ckptW.Close(); cerr != nil && s.ckptErr == nil {
			s.ckptErr = cerr
		}
	}
	if s.ckptErr != nil {
		return nil, s.ckptErr
	}
	res := &Result{
		Final:     s.extractLane(planes, opts.ProbeLane),
		LaneFinal: make([][]logic.Value, opts.Lanes),
	}
	for l := 0; l < opts.Lanes; l++ {
		res.LaneFinal[l] = s.extractLane(planes, l)
	}
	res.Run = stats.Run{
		Algorithm: fmt.Sprintf("jit(%s)x%d", opts.Strategy, opts.Lanes),
		Circuit:   c.Name,
		Horizon:   opts.Horizon,
		Workers:   p,
		TimeSteps: steps,
	}
	for w := 0; w < p; w++ {
		s.wc[w].ModelCalls = s.wc[w].Evals
	}
	res.Run.Aggregate(wall, s.wc)
	return res, s.cancel.Err(ctx)
}

// probeLaneChangedInit reports whether the probe lane's t=0 generator
// value differs from the all-X reset (V bit set or U bit clear).
func (s *sim) probeLaneChangedInit(o, w int) bool {
	lw, lb := s.opts.ProbeLane>>6, uint(s.opts.ProbeLane&63)
	for b := 0; b < w; b++ {
		nv := s.buf[0].planes[o+b]
		if nv.V[lw]>>lb&1 != 0 || nv.U[lw]>>lb&1 == 0 {
			return true
		}
	}
	return false
}

func (s *sim) extractLane(planes []logic.WidePlane, lane int) []logic.Value {
	vals := make([]logic.Value, len(s.c.Nodes))
	for n := range s.c.Nodes {
		w := s.c.Nodes[n].Width
		o := int(s.prog.off[n])
		vals[n] = logic.ExtractLaneWide(planes[o:o+w], lane, w)
	}
	return vals
}

func (s *sim) worker(id int) {
	var sense barrier.Sense
	var idle time.Duration
	defer func() { s.wc[id].Idle += idle }()

	gens := s.prog.gens[id]
	work := s.prog.work[id]
	// One worker needs no per-level ordering at all: the unit-delay double
	// buffer means levels never read this step's writes, so the barriers
	// are pure lockstep. They exist (at p > 1) to keep the gang sweeping
	// the same dense level stripe at the same time — the bulk-synchronous
	// schedule — not for correctness.
	multi := s.p > 1
	// With one plane word and no probe the per-span scan collapses to
	// noteLevel's single flat loop over the level's (offset, width) pairs.
	fastNote := s.opts.Probe == nil && s.words == 1

	// Step t computes node planes for t+1: read side t&1, write side
	// (t+1)&1. The final step is Horizon-2 -> values at Horizon-1.
	for t := s.startT; t < s.opts.Horizon-1; t++ {
		if sa := s.stopAt.Load(); sa > 0 && t >= circuit.Time(sa) {
			return
		}
		// Periodic checkpoint at the step boundary: one extra uncounted
		// barrier while worker 0 captures the quiesced state, exactly the
		// vector engine's protocol.
		if s.checkpointDue(t) {
			if id == 0 && s.ckptW.Ready() {
				if err := s.saveCheckpoint(t); err != nil {
					s.ckptErr = err // published by the barrier release below
				}
			}
			if !s.bar.Wait(&sense) {
				return
			}
			if s.ckptErr != nil {
				return
			}
		}
		if id == 0 {
			s.opts.Guard.Progress(int64(t))
			if s.cancel.Cancelled() {
				s.stopAt.CompareAndSwap(0, int64(t)+1)
			}
		}
		cur, next := &s.buf[t&1], &s.buf[(t+1)&1]

		for i := range gens {
			g := &gens[i]
			g.Write(t+1, next.planes)
			s.noteSpan(id, g.Out, t+1, cur, next)
		}
		for sl := range work {
			lw := &work[sl]
			if lw.elems > 0 {
				s.wc[id].Evals += lw.elems
				if s.chaos != nil {
					for e := int64(0); e < lw.elems; e++ {
						s.chaos.Eval()
					}
				}
				for i := range lw.batches {
					lw.batches[i].run(cur.v, cur.u, next.v, next.u)
				}
				for i := range lw.kerns {
					lw.kerns[i].Run(cur.planes, next.planes)
				}
				if s.opts.CostSpin > 0 {
					circuit.Spin(lw.cost * s.opts.CostSpin)
				}
				if fastNote {
					s.wc[id].NodeUpdates += noteLevel(lw.noteOffs, cur.v, cur.u, next.v, next.u, s.laneMask[0])
				} else {
					for _, sp := range lw.spans {
						s.noteSpan(id, sp, t+1, cur, next)
					}
				}
			}
			if multi && sl < len(work)-1 {
				// Per-level bulk-synchronous barrier; the last level's is
				// the end-of-step barrier below. Every worker holds the
				// same slot count, so the gang always agrees.
				t0 := time.Now()
				s.wc[id].BarrierWaits++
				ok := s.bar.Wait(&sense)
				idle += time.Since(t0)
				if !ok {
					return
				}
			}
		}

		t0 := time.Now()
		s.wc[id].BarrierWaits++
		ok := s.bar.Wait(&sense)
		idle += time.Since(t0)
		if !ok {
			return
		}
	}
}

// noteLevel is noteSpan's one-word, probe-free form: one flat loop over a
// level's (offset, width) pairs with no call or probe branch per span. At
// one plane word a node's plane index is its slab index, so the pairs feed
// the slabs directly.
func noteLevel(offs []int32, cv, cu, nv, nu []uint64, mask uint64) int64 {
	var updates int64
	for i := 0; i < len(offs); i += 2 {
		o, w := int(offs[i]), int(offs[i+1])
		for b := 0; b < w; b++ {
			if ((cv[o+b]^nv[o+b])|(cu[o+b]^nu[o+b]))&mask != 0 {
				updates++
				break
			}
		}
	}
	return updates
}

// noteSpan compares one output node's planes across the buffer sides,
// counting a node update when any live lane changed and firing the probe
// when the observed lane did. It scans the flat slabs directly — this runs
// once per element per step, so the plane-struct indirection would cost as
// much as a small kernel. Only the node's single driver calls this for a
// given span, so the counters race with nobody.
func (s *sim) noteSpan(id int, sp vector.OutSpan, t circuit.Time, cur, next *planeBuf) {
	o, w := int(sp.Off), int(sp.W)
	words := s.words
	var changed uint64
scan:
	for b := 0; b < w; b++ {
		i0 := (o + b) * words
		for ww := 0; ww < words; ww++ {
			changed |= ((cur.v[i0+ww] ^ next.v[i0+ww]) | (cur.u[i0+ww] ^ next.u[i0+ww])) & s.laneMask[ww]
			if changed != 0 {
				break scan // one changed live lane counts; no need to scan on
			}
		}
	}
	if changed == 0 {
		return
	}
	s.wc[id].NodeUpdates++
	if s.opts.Probe == nil {
		return
	}
	lw, lb := s.opts.ProbeLane>>6, uint(s.opts.ProbeLane&63)
	var probeChanged uint64
	for b := 0; b < w; b++ {
		i0 := (o+b)*words + lw
		probeChanged |= ((cur.v[i0] ^ next.v[i0]) | (cur.u[i0] ^ next.u[i0])) & s.laneMask[lw]
	}
	if probeChanged>>lb&1 != 0 {
		s.opts.Probe.OnChange(sp.Node, t,
			logic.ExtractLaneWide(next.planes[o:o+w], s.opts.ProbeLane, w))
	}
}
