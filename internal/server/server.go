// Package server is the simulation service layer behind the parsimd
// daemon: an HTTP/JSON API over the engine registry with a bounded FIFO
// job queue, admission control, a core-budget scheduler that shares
// GOMAXPROCS across concurrent runs, per-run circuit instancing via
// Circuit.Clone, and a Prometheus-format /metrics endpoint.
//
// The API surface:
//
//	POST /v1/jobs          submit a netlist + engine/options; 202 + job id
//	GET  /v1/jobs          list all jobs, oldest first
//	GET  /v1/jobs/{id}     poll job status; includes the run report when done
//	GET  /v1/jobs/{id}/vcd stream the recorded waveform as VCD
//	GET  /healthz          liveness (503 while draining)
//	GET  /metrics          Prometheus text exposition
//
// Admission control is explicit: a full queue answers 429 with a
// Retry-After hint instead of queueing unboundedly, oversized bodies and
// netlists answer 413, and a draining server answers 503. One dispatcher
// goroutine pops jobs in FIFO order and reserves each job's worker count
// from the core budget before launching it, so the running set never
// oversubscribes the machine — a wide job waits at the head of the queue
// until enough cores free up (head-of-line blocking is the intended
// fairness: strict FIFO, no starvation of wide jobs).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsim"
	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/cluster"
	"parsim/internal/engine"
	"parsim/internal/logic"
	"parsim/internal/netlist"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Config sizes the service. The zero value of any field selects the
// default documented on it.
type Config struct {
	// CoreBudget is the total worker cores the scheduler may hand out at
	// once across all running jobs. Default GOMAXPROCS.
	CoreBudget int
	// MaxQueue bounds the admission queue; a submission beyond it is
	// answered 429. Default 256.
	MaxQueue int
	// MaxBodyBytes caps the request body (and thereby the netlist text);
	// beyond it the submission is answered 413. Default 8 MiB.
	MaxBodyBytes int64
	// MaxNodes and MaxElems cap the parsed circuit size (413 beyond).
	// Default 200000 each.
	MaxNodes, MaxElems int
	// DefaultDeadline bounds a job that did not ask for a deadline;
	// MaxDeadline clamps one that asked for more. Defaults 2m and 10m.
	DefaultDeadline, MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// StateDir enables crash durability: an append-only job journal plus
	// per-job checkpoint snapshots live here, and New replays the journal
	// on startup — finished jobs reappear in the status API with their
	// saved results, interrupted ones are re-queued and resumed from
	// their last snapshot. Empty (the default) disables durability.
	StateDir string
	// CheckpointEvery is the snapshot interval in simulated time steps for
	// durable jobs on checkpoint-capable engines; 0 selects the engine
	// default (engine.DefaultCheckpointEvery).
	CheckpointEvery int64
	// DedupCache enables content-addressed submission dedup: identical
	// submissions (same canonicalized netlist + result-affecting options)
	// are served from a bounded LRU of this many finished results, and an
	// identical submission arriving while its twin is still queued or
	// running coalesces onto that run instead of re-simulating. Jobs with
	// watch nodes are never deduped (their VCD state is per-job). 0 (the
	// default) disables dedup.
	DedupCache int
}

func (c *Config) withDefaults() {
	if c.CoreBudget <= 0 {
		c.CoreBudget = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200000
	}
	if c.MaxElems <= 0 {
		c.MaxElems = 200000
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Server is the simulation service. Create with New, serve via Handler,
// stop with Drain.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	queue  *jobQueue
	budget *coreBudget
	met    *metrics
	jobs   *jobStore
	jnl    *journal             // nil unless Config.StateDir is set
	dedup  *cluster.ResultCache // nil unless Config.DedupCache > 0

	// dedupMu guards the two dedup indexes: inflight maps a job key to
	// the primary (first-submitted, actually running) job for that key,
	// waiters collects later identical submissions that will be finished
	// with the primary's result.
	dedupMu  sync.Mutex
	inflight map[string]*job
	waiters  map[string][]*job

	nextID       atomic.Int64
	runningJobs  atomic.Int64
	draining     atomic.Bool
	baseCtx      context.Context
	baseCancel   context.CancelFunc
	running      sync.WaitGroup // one per launched job goroutine
	dispatchDone chan struct{}
}

// New builds a Server and starts its dispatcher. When Config.StateDir is
// set, the job journal found there is replayed first — recovered jobs are
// queued ahead of any new submissions — so the error return covers an
// unreadable state directory or a corrupt journal.
func New(cfg Config) (*Server, error) {
	cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		mux:          http.NewServeMux(),
		queue:        newJobQueue(cfg.MaxQueue),
		budget:       newCoreBudget(cfg.CoreBudget),
		met:          newMetrics(),
		jobs:         newJobStore(),
		dispatchDone: make(chan struct{}),
	}
	if cfg.DedupCache > 0 {
		s.dedup = cluster.NewResultCache(cfg.DedupCache)
		s.inflight = make(map[string]*job)
		s.waiters = make(map[string][]*job)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/vcd", s.handleVCD)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.StateDir != "" {
		if err := s.openState(); err != nil {
			return nil, err
		}
	}
	go s.dispatch()
	return s, nil
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler gauges, exported for tests and the daemon's own logging; the
// same numbers appear on /metrics.
func (s *Server) CoreBudget() int  { return s.budget.Budget() }
func (s *Server) CoresInUse() int  { return s.budget.InUse() }
func (s *Server) CoresPeak() int   { return s.budget.Peak() }
func (s *Server) QueueDepth() int  { return s.queue.depth() }
func (s *Server) RunningJobs() int { return int(s.runningJobs.Load()) }

// jobRequest is the submission body for POST /v1/jobs.
type jobRequest struct {
	// Netlist is the circuit in the parsim netlist text format.
	Netlist string `json:"netlist"`
	// Engine names the algorithm (canonical name or alias).
	Engine string `json:"engine"`
	// Workers is the parallel worker count, which is also the number of
	// cores the scheduler reserves for the run. Default 1.
	Workers int `json:"workers,omitempty"`
	// Horizon is the simulated time bound; required, > 0.
	Horizon int64 `json:"horizon"`
	// DeadlineMS bounds the run's wall-clock time (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// WatchdogMS enables the stall watchdog (0 = off).
	WatchdogMS int64 `json:"watchdog_ms,omitempty"`
	// Lint selects pre-flight analysis: "off", "warn" or "strict".
	Lint string `json:"lint,omitempty"`
	// Fallback retries a faulted run on the sequential engine.
	Fallback bool `json:"fallback,omitempty"`
	// CostSpin is the synthetic per-evaluation work multiplier.
	CostSpin int64 `json:"cost_spin,omitempty"`
	// Watch lists node names to record; required for the /vcd endpoint.
	Watch []string `json:"watch,omitempty"`
	// Lanes batches seed-shifted stimulus vectors into one run of the
	// vector engine (0 = engine default of 64, one machine word; larger
	// counts widen every node plane to ceil(lanes/64) words and are
	// admission-checked against the server's plane budget; ignored by the
	// scalar engines). One job, one core reservation, Lanes results: the
	// per-lane final values come back in the result's lane_final rows.
	Lanes int `json:"lanes,omitempty"`
	// LaneStride is the per-lane rand/gray seed offset (0 = 1).
	LaneStride int64 `json:"lane_stride,omitempty"`
	// ProbeLane selects the lane the watch recording and the final values
	// observe (default 0, the scalar-identical lane).
	ProbeLane int `json:"probe_lane,omitempty"`
	// FaultSim switches a vector-engine job to concurrent stuck-at fault
	// simulation: lane 0 simulates the good machine, every other lane
	// injects one fault from the circuit's collapsed stuck-at list, and
	// the result carries a fault_coverage section. Rejected (400) on any
	// other engine.
	FaultSim bool `json:"fault_sim,omitempty"`
	// FaultMaxPasses caps the chunked fault passes (0 = whole list).
	FaultMaxPasses int `json:"fault_max_passes,omitempty"`
	// FaultStatuses includes the per-fault site/step rows in the result.
	FaultStatuses bool `json:"fault_statuses,omitempty"`
	// ResumeFrom names a checkpoint snapshot file on the server's
	// filesystem to continue from instead of starting at t=0. The fleet
	// coordinator sets it when requeueing a job off a dead node that left
	// a snapshot behind (state dirs shared between nodes). A snapshot
	// that is missing, corrupt or on a checkpoint-incapable engine is
	// dropped and the job runs from scratch — resuming is an optimisation,
	// never a correctness requirement.
	ResumeFrom string `json:"resume_from,omitempty"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"response encoding failure"}`)
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// reject answers a refused submission, counting it by status first.
func (s *Server) reject(w http.ResponseWriter, status int, format string, args ...any) {
	s.met.onReject(status)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs: validate, admit, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		s.reject(w, http.StatusBadRequest, "malformed JSON body: %v", err)
		return
	}

	j, status, err := s.buildJob(&req)
	if err != nil {
		s.reject(w, status, "%v", err)
		return
	}
	seq := s.nextID.Add(1)
	j.id = fmt.Sprintf("j-%06d", seq)
	j.submitted = time.Now()
	// Journal the acceptance before it becomes externally visible, so a
	// crash after the 202 never loses the job.
	s.logJournal(journalRecord{Type: recAccepted, Job: j.id, Seq: seq, Req: &req})

	if j.key != "" && s.dedupSubmit(j) {
		// Served without a new simulation: either finished on the spot from
		// the result cache or coalesced onto an identical in-flight run.
		s.jobs.add(j)
		s.met.onSubmit()
		s.met.onDedupHit()
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.view(time.Now()))
		return
	}

	if err := s.queue.push(j); err != nil {
		s.clearPrimary(j)
		if errors.Is(err, errQueueFull) {
			s.reject(w, http.StatusTooManyRequests,
				"queue full (%d jobs); retry later", s.cfg.MaxQueue)
			return
		}
		s.reject(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	s.jobs.add(j)
	s.met.onSubmit()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view(time.Now()))
}

// dedupSubmit tries to satisfy a keyed submission without simulating.
// True: the job was finished from the result cache, or parked as a waiter
// on an identical in-flight run (it reaches a terminal state when that
// run does). False: no hit; the job was registered as its key's primary
// and the caller must queue it normally.
func (s *Server) dedupSubmit(j *job) bool {
	if v, ok := s.dedup.Get(j.key); ok {
		res := stripResumed(v.(*parsim.Result))
		now := time.Now()
		j.setRunning(now)
		j.finish(res, nil, now, false)
		rec := journalRecord{Type: recDone, Job: j.id}
		if b, merr := json.Marshal(res); merr == nil {
			rec.Result = b
		}
		s.logJournal(rec)
		s.met.onFinish(j.engine, jobDone, false, 0, stats.WorkerCounters{})
		return true
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if _, running := s.inflight[j.key]; running {
		s.waiters[j.key] = append(s.waiters[j.key], j)
		return true
	}
	s.inflight[j.key] = j
	return false
}

// clearPrimary retracts a primary registration when the job never made it
// into the queue.
func (s *Server) clearPrimary(j *job) {
	if j.key == "" || s.dedup == nil {
		return
	}
	s.dedupMu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.dedupMu.Unlock()
}

// buildJob validates a submission and assembles the job record; the
// handler assigns the id and timestamps. On refusal it returns the HTTP
// status the submission deserves. Journal recovery reuses it so a
// replayed request passes exactly the admission checks a live one does.
func (s *Server) buildJob(req *jobRequest) (*job, int, error) {
	fail := func(status int, format string, args ...any) (*job, int, error) {
		return nil, status, fmt.Errorf(format, args...)
	}
	eng, err := engine.Get(req.Engine)
	if err != nil {
		return fail(http.StatusBadRequest, "%v", err)
	}
	if req.Horizon <= 0 {
		return fail(http.StatusBadRequest, "horizon must be > 0, got %d", req.Horizon)
	}
	workers := req.Workers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		return fail(http.StatusBadRequest, "workers must be >= 0, got %d", workers)
	}
	if eng.Name() == "sequential" {
		workers = 1 // the reference engine is single-threaded by definition
	}
	if workers > s.budget.Budget() {
		return fail(http.StatusBadRequest,
			"workers %d exceeds the server's core budget %d; the job could never be scheduled",
			workers, s.budget.Budget())
	}
	lint, err := engine.ParseLintMode(req.Lint)
	if err != nil {
		return fail(http.StatusBadRequest, "%v", err)
	}
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	if req.WatchdogMS < 0 || req.DeadlineMS < 0 {
		return fail(http.StatusBadRequest, "deadline_ms and watchdog_ms must be >= 0")
	}
	if req.Lanes < 0 || req.Lanes > logic.MaxWideLanes {
		return fail(http.StatusBadRequest, "lanes must be in [0,%d], got %d", logic.MaxWideLanes, req.Lanes)
	}
	lanes := req.Lanes
	if lanes == 0 {
		lanes = logic.MaxLanes
	}
	if req.ProbeLane < 0 || req.ProbeLane >= lanes {
		return fail(http.StatusBadRequest, "probe_lane %d outside [0,%d)", req.ProbeLane, lanes)
	}
	if req.FaultSim {
		if eng.Name() != "vector" {
			return fail(http.StatusBadRequest,
				"fault_sim requires the vector engine, not %q", eng.Name())
		}
		if lanes < 2 {
			return fail(http.StatusBadRequest,
				"fault_sim needs at least 2 lanes (good machine + one fault), got %d", lanes)
		}
	}

	circ, err := netlist.ReadLimited(strings.NewReader(req.Netlist), netlist.Limits{
		MaxBytes: s.cfg.MaxBodyBytes,
		MaxNodes: s.cfg.MaxNodes,
		MaxElems: s.cfg.MaxElems,
	})
	if err != nil {
		if errors.Is(err, netlist.ErrLimit) {
			return fail(http.StatusRequestEntityTooLarge, "%v", err)
		}
		return fail(http.StatusBadRequest, "netlist: %v", err)
	}
	// Lane-width-aware admission: a batched job's state footprint scales
	// with nodes x plane words, so a wide-lane job must fit the same node
	// budget a 64-lane job is held to. The vector and jit engines both
	// carry per-lane planes; scalar engines ignore lanes and carry one
	// machine word per node either way.
	if eng.Name() == "vector" || eng.Name() == "jit" {
		if words := logic.PlaneWords(lanes); len(circ.Nodes)*words > s.cfg.MaxNodes {
			return fail(http.StatusRequestEntityTooLarge,
				"circuit nodes (%d) x plane words (%d) exceeds the node budget %d; lower lanes or shrink the netlist",
				len(circ.Nodes), words, s.cfg.MaxNodes)
		}
	}

	var watch []circuit.NodeID
	for _, name := range req.Watch {
		n := circ.FindNode(strings.TrimSpace(name))
		if n == nil {
			return fail(http.StatusBadRequest, "watch: no node named %q", name)
		}
		watch = append(watch, n.ID)
	}

	resume := strings.TrimSpace(req.ResumeFrom)
	if resume != "" {
		if !engine.SupportsCheckpoint(eng.Name()) {
			log.Printf("parsimd: resume_from ignored: engine %s does not checkpoint", eng.Name())
			resume = ""
		} else if _, lerr := checkpoint.Load(resume); lerr != nil {
			log.Printf("parsimd: resume_from snapshot unusable (%v); running from scratch", lerr)
			resume = ""
		}
	}

	j := &job{
		circ:       circ,
		engine:     eng.Name(),
		cores:      workers,
		horizon:    circuit.Time(req.Horizon),
		deadline:   deadline,
		watchdog:   time.Duration(req.WatchdogMS) * time.Millisecond,
		lint:       lint,
		fallback:   req.Fallback,
		costSpin:   req.CostSpin,
		watch:      watch,
		lanes:      req.Lanes,
		laneStride: req.LaneStride,
		probeLane:  req.ProbeLane,
		faultSim:   req.FaultSim,
		faultCap:   req.FaultMaxPasses,
		faultStat:  req.FaultStatuses,
		resumeFrom: resume,
		state:      jobQueued,
	}
	if len(watch) > 0 {
		j.rec = trace.NewRecorderFor(watch...)
	}
	// Content-addressed job key, computed only when dedup is on. Watch
	// jobs are excluded: their recorded waveform is per-job state a cached
	// result cannot stand in for.
	if s.dedup != nil && len(watch) == 0 {
		j.key = cluster.KeyForSubmission(circ, &cluster.Submission{
			Engine:         req.Engine,
			Workers:        req.Workers,
			Horizon:        req.Horizon,
			Lint:           req.Lint,
			Fallback:       req.Fallback,
			CostSpin:       req.CostSpin,
			Lanes:          req.Lanes,
			LaneStride:     req.LaneStride,
			ProbeLane:      req.ProbeLane,
			FaultSim:       req.FaultSim,
			FaultMaxPasses: req.FaultMaxPasses,
			FaultStatuses:  req.FaultStatuses,
		})
	}
	return j, http.StatusOK, nil
}

// handleList is GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	all := s.jobs.all()
	views := make([]jobView, len(all))
	for i, j := range all {
		views[i] = j.view(now)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobView `json:"jobs"`
	}{Jobs: views})
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view(time.Now()))
}

// handleVCD is GET /v1/jobs/{id}/vcd: stream the recorded waveform of a
// finished job. 409 while the job is still queued or running, 404 when
// the job recorded nothing (no watch nodes were requested).
func (s *Server) handleVCD(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	state, hasTrace := j.snapshot()
	if state == jobQueued || state == jobRunning {
		writeJSON(w, http.StatusConflict,
			errorBody{Error: fmt.Sprintf("job is %s; the waveform is available once it finishes", state)})
		return
	}
	if !hasTrace {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "job recorded no waveform; submit with \"watch\" to trace nodes"})
		return
	}
	serveVCD(w, j)
}

// serveVCD streams a finished job's waveform. Split from handleVCD so
// the status-then-body order is straight-line (the respwrite lint checks
// it per function).
func serveVCD(w http.ResponseWriter, j *job) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	trace.WriteVCD(w, j.circ, j.rec, j.horizon, j.watch...)
}

// handleHealthz is GET /healthz: 200 while accepting work, 503 draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		Running    int    `json:"jobs_running"`
		CoresInUse int    `json:"cores_in_use"`
	}{"ok", s.QueueDepth(), s.RunningJobs(), s.CoresInUse()}
	status := http.StatusOK
	if s.draining.Load() {
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// handleMetrics is GET /metrics, Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.met.render(w, gauges{
		queueDepth: s.QueueDepth(),
		running:    s.RunningJobs(),
		budget:     s.budget.Budget(),
		inUse:      s.budget.InUse(),
		peak:       s.budget.Peak(),
	})
}

// dispatch is the scheduler loop: pop jobs in FIFO order, reserve their
// cores, launch them. Exactly one dispatcher runs per Server, so the
// core-budget wait preserves submission order — a wide job blocks the
// head of the queue until it fits rather than being overtaken forever.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for {
		j, ok := s.queue.peek()
		if !ok {
			return
		}
		// Reserve cores while the job is still the counted head of the
		// queue, so a core-starved head keeps admission control honest.
		admitted := !s.draining.Load() && s.budget.acquire(j.cores)
		s.queue.removeHead()
		if !admitted {
			now := time.Now()
			j.discard(now)
			s.met.onDiscard()
			for _, wj := range s.takeWaiters(j) {
				wj.discard(now)
				s.met.onDiscard()
			}
			continue
		}
		s.running.Add(1)
		go s.runJob(j)
	}
}

// runJob executes one admitted job: clone the template circuit so
// concurrent runs never share mutable state, bound the run with the
// job's deadline under the server's base context, dispatch through the
// engine registry, and fold the outcome into the job record and metrics.
func (s *Server) runJob(j *job) {
	defer s.running.Done()
	defer s.budget.release(j.cores)
	start := time.Now()
	s.met.onStart(start.Sub(j.submitted))
	j.setRunning(start)
	s.logJournal(journalRecord{Type: recStarted, Job: j.id})
	s.runningJobs.Add(1)
	defer s.runningJobs.Add(-1)

	ctx := s.baseCtx
	if j.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.deadline)
		defer cancel()
	}
	cfg := engine.Config{
		Workers:        j.cores,
		Horizon:        j.horizon,
		CostSpin:       j.costSpin,
		Lint:           j.lint,
		Watchdog:       j.watchdog,
		Lanes:          j.lanes,
		LaneStride:     j.laneStride,
		ProbeLane:      j.probeLane,
		FaultSim:       j.faultSim,
		FaultMaxPasses: j.faultCap,
		FaultStatuses:  j.faultStat,
	}
	if j.rec != nil {
		cfg.Probe = j.rec
	}
	if j.fallback {
		cfg.Fallback = engine.FallbackPolicy{Engine: "sequential"}
	}
	// Durable jobs on checkpoint-capable engines snapshot periodically —
	// and once more at the stop boundary if the run is cancelled — so a
	// crashed or drained daemon resumes them instead of replaying from
	// t=0. The journal records each snapshot as it reaches disk.
	if s.jnl != nil && engine.SupportsCheckpoint(j.engine) {
		cfg.Checkpoint = engine.CheckpointSpec{
			Path:       s.ckptPath(j.id),
			EverySteps: s.cfg.CheckpointEvery,
			OnSave: func(step int64) {
				s.logJournal(journalRecord{Type: recCheckpointed, Job: j.id, Step: step})
			},
		}
	}
	// Resume applies with or without a local journal: journal recovery
	// sets resumeFrom to this node's own snapshot, while a fleet requeue
	// passes a dead sibling's snapshot through the submission body.
	if j.resumeFrom != "" && engine.SupportsCheckpoint(j.engine) {
		cfg.ResumeFrom = j.resumeFrom
	}
	rep, err := engine.Run(ctx, j.engine, j.circ.Clone(), cfg)

	end := time.Now()
	serverCancelled := s.baseCtx.Err() != nil && errors.Is(err, context.Canceled)
	res := resultFromReport(rep)
	state := j.finish(res, err, end, serverCancelled)
	if s.jnl != nil {
		switch state {
		case jobDone:
			rec := journalRecord{Type: recDone, Job: j.id}
			if b, merr := json.Marshal(res); merr == nil {
				rec.Result = b
			}
			s.logJournal(rec)
		case jobCancelled:
			// Shutdown-cancelled: deliberately no terminal record. The job
			// stays in-flight in the journal, so the next startup re-queues
			// it and resumes from the final snapshot the cancel wrote —
			// a drain interrupts the work, it doesn't lose it.
		default:
			s.logJournal(journalRecord{Type: recFailed, Job: j.id, Error: err.Error()})
		}
	}
	var tot stats.WorkerCounters
	degraded := false
	if rep != nil {
		tot = rep.Run.Totals()
		degraded = rep.Degraded
		if rep.Selected != nil {
			s.met.onAutoSelect(rep.Selected.Engine)
		}
	}
	s.met.onFinish(j.engine, state, degraded, end.Sub(start), tot)
	s.settleDedup(j, res, err, end, serverCancelled, state)
}

// settleDedup closes out a keyed run: a successful result enters the LRU
// so the next identical submission skips simulation, and every waiter
// coalesced onto this run is finished with the same outcome.
func (s *Server) settleDedup(j *job, res *parsim.Result, runErr error, end time.Time, serverCancelled bool, state jobState) {
	if j.key == "" || s.dedup == nil {
		return
	}
	// Publish the result before releasing the in-flight slot, so there is
	// no window where an identical submission sees neither.
	if state == jobDone && res != nil {
		s.dedup.Put(j.key, res)
	}
	shared := stripResumed(res)
	for _, wj := range s.takeWaiters(j) {
		wj.setRunning(end)
		wst := wj.finish(shared, runErr, end, serverCancelled)
		if s.jnl != nil {
			switch wst {
			case jobDone:
				rec := journalRecord{Type: recDone, Job: wj.id}
				if b, merr := json.Marshal(shared); merr == nil {
					rec.Result = b
				}
				s.logJournal(rec)
			case jobCancelled:
				// Like the primary: no terminal record, so restart re-runs it.
			default:
				s.logJournal(journalRecord{Type: recFailed, Job: wj.id, Error: runErr.Error()})
			}
		}
		s.met.onFinish(wj.engine, wst, false, 0, stats.WorkerCounters{})
	}
}

// stripResumed returns res as the result of a dedup hit: Resumed is
// provenance of the producing run (it came back from a snapshot), not of
// a submission that never simulated at all, so a served copy clears it.
// Shallow copy — the shared Final/Stats payloads are read-only by then.
func stripResumed(res *parsim.Result) *parsim.Result {
	if res == nil || !res.Resumed {
		return res
	}
	cp := *res
	cp.Resumed = false
	return &cp
}

// takeWaiters atomically releases a primary's in-flight registration and
// claims its waiter list. A job that was never the registered primary for
// its key (dedup off, keyless, or a recovered duplicate) takes nothing.
func (s *Server) takeWaiters(j *job) []*job {
	if j.key == "" || s.dedup == nil {
		return nil
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if s.inflight[j.key] != j {
		return nil
	}
	delete(s.inflight, j.key)
	ws := s.waiters[j.key]
	delete(s.waiters, j.key)
	return ws
}

// resultFromReport converts an engine report to the facade Result — the
// same mapping SimulateContext applies, so a job's JSON result matches
// `parsim -json` byte for byte on the same run.
func resultFromReport(rep *engine.Report) *parsim.Result {
	if rep == nil {
		return nil
	}
	tot := rep.Run.Totals()
	return &parsim.Result{
		Stats:         rep.Run,
		Final:         rep.Final,
		LaneFinal:     rep.LaneFinal,
		FaultCoverage: rep.FaultCoverage,
		Messages:      tot.Messages,
		Rollbacks:     tot.Rollbacks,
		Cancelled:     tot.Cancelled,
		PeakLog:       rep.PeakLog,
		Rounds:        rep.Rounds,
		Degraded:      rep.Degraded,
		Resumed:       rep.Resumed,
		Fault:         rep.Fault,
		Selected:      rep.Selected,
	}
}

// Drain gracefully shuts the service down: refuse new submissions,
// discard the queued backlog, and wait for running jobs. If ctx expires
// first the base context is cancelled, which stops every engine within
// one scheduling quantum; Drain still waits for the (now aborted) jobs
// to record their partial results before returning ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		s.queue.close()
		s.budget.close()
	}
	<-s.dispatchDone
	done := make(chan struct{})
	go func() {
		s.running.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Every job goroutine has returned; no more appends are coming.
	if s.jnl != nil {
		if cerr := s.jnl.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
