package server

import (
	"errors"
	"sync"
)

// Admission-control sentinels, mapped to HTTP statuses by the handlers:
// errQueueFull becomes 429 with a Retry-After hint, errQueueClosed 503.
var (
	errQueueFull   = errors.New("server: job queue full")
	errQueueClosed = errors.New("server: job queue closed")
)

// jobQueue is the bounded FIFO between the submission handler and the
// dispatcher. Admission control is the bound: a full queue rejects the
// push instead of growing, so a traffic burst surfaces as 429s rather
// than unbounded memory.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	max    int
	closed bool
}

func newJobQueue(max int) *jobQueue {
	q := &jobQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a job, failing typed when the queue is full or draining.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.items) >= q.max {
		return errQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// peek blocks until a job is available and returns the head without
// removing it: the dispatcher keeps the head counted in the queue depth
// while it waits for cores, so admission control sees the true backlog.
// After close it first serves the leftover items (the dispatcher cancels
// them during shutdown), then reports ok=false.
func (q *jobQueue) peek() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	return q.items[0], true
}

// removeHead drops the job peek returned. Only the single dispatcher
// goroutine consumes the queue, so the head cannot change in between.
func (q *jobQueue) removeHead() {
	q.mu.Lock()
	q.items[0] = nil
	q.items = q.items[1:]
	q.mu.Unlock()
}

// close stops admission and wakes the dispatcher.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// coreBudget is the core-budget scheduler's accounting: a fixed pool of
// worker cores (normally GOMAXPROCS) shared by all concurrent runs. The
// dispatcher acquires a job's worker count before launching it and
// releases it when the run finishes, so the sum of reserved cores never
// exceeds the budget — several small jobs run side by side while a wide
// job waits until enough cores free up. The inUse/peak gauges are the
// scheduler's own observability surface (exposed via /metrics and the
// Server accessors) and are what the oversubscription test asserts on.
type coreBudget struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int
	inUse  int
	peak   int
	closed bool
}

func newCoreBudget(budget int) *coreBudget {
	b := &coreBudget{budget: budget}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// acquire blocks until n cores are free and reserves them. It returns
// false when the scheduler is closed (server shutdown) before the
// reservation could be made. n must have been validated to fit the
// budget at admission time.
func (b *coreBudget) acquire(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inUse+n > b.budget && !b.closed {
		b.cond.Wait()
	}
	if b.closed {
		return false
	}
	b.inUse += n
	if b.inUse > b.peak {
		b.peak = b.inUse
	}
	return true
}

// release returns n cores to the pool and wakes the dispatcher.
func (b *coreBudget) release(n int) {
	b.mu.Lock()
	b.inUse -= n
	b.cond.Broadcast()
	b.mu.Unlock()
}

// close wakes a dispatcher blocked in acquire so shutdown cannot hang
// behind a wide job waiting for cores.
func (b *coreBudget) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Budget returns the configured core budget.
func (b *coreBudget) Budget() int { return b.budget }

// InUse returns the cores currently reserved by running jobs.
func (b *coreBudget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Peak returns the high-water mark of reserved cores.
func (b *coreBudget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}
