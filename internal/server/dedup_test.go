package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// metricsBody fetches /metrics as text.
func (ts *testServer) metricsBody(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(ts.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// TestDedupCacheHit is the satellite bug fix from the issue: a
// byte-identical back-to-back submission must be served from the result
// cache instead of re-simulated.
func TestDedupCacheHit(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 8, DedupCache: 16})

	var first jobView
	if resp := ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 64}, &first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	v1 := ts.await(t, first.ID, 10*time.Second)
	if v1.State != jobDone {
		t.Fatalf("first job: state %s (error %q)", v1.State, v1.Error)
	}

	var second jobView
	if resp := ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 64}, &second); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d", resp.StatusCode)
	}
	if second.ID == first.ID {
		t.Fatal("dedup reused the job id; each submission keeps its own record")
	}
	v2 := ts.await(t, second.ID, 10*time.Second)
	if v2.State != jobDone {
		t.Fatalf("deduped job: state %s (error %q)", v2.State, v2.Error)
	}
	if v2.Result == nil || v1.Result == nil {
		t.Fatal("missing result on a done job")
	}
	if v2.Result.Stats.Evals != v1.Result.Stats.Evals {
		t.Fatalf("deduped result diverged: %d evals vs %d", v2.Result.Stats.Evals, v1.Result.Stats.Evals)
	}

	body := ts.metricsBody(t)
	if !strings.Contains(body, "parsimd_dedup_hits_total 1") {
		t.Fatalf("metrics missing parsimd_dedup_hits_total 1\n%s", body)
	}
	// Both submissions count as submitted; only one simulated.
	if !strings.Contains(body, "parsimd_jobs_submitted_total 2") {
		t.Errorf("metrics missing parsimd_jobs_submitted_total 2")
	}
	// The engine counters prove no second simulation happened: evals stay
	// at exactly one run's worth even though two jobs finished done.
	evalsLine := fmt.Sprintf(`parsimd_engine_evals_total{engine="sequential"} %d`, v1.Result.Stats.Evals)
	if !strings.Contains(body, evalsLine) {
		t.Errorf("deduped submission re-ran: want %q in metrics\n%s", evalsLine, body)
	}
	if !strings.Contains(body, `parsimd_jobs_total{state="done"} 2`) {
		t.Errorf("both jobs should finish done")
	}
}

// TestDedupInflightCoalesce submits an identical job while the first is
// still running: the second must coalesce onto the in-flight run and
// finish with its result, not start a second simulation.
func TestDedupInflightCoalesce(t *testing.T) {
	started := make(chan struct{}, 4)
	gate := testBlock.reset(started)
	ts := newTestServer(t, Config{CoreBudget: 4, MaxQueue: 8, DedupCache: 16})

	req := jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 64}
	var primary jobView
	if resp := ts.submit(t, req, &primary); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("primary submit: status %d", resp.StatusCode)
	}
	<-started // primary is now running and holds the in-flight slot

	var waiter jobView
	if resp := ts.submit(t, req, &waiter); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("waiter submit: status %d", resp.StatusCode)
	}
	// The waiter must not dispatch a second run of the engine.
	select {
	case <-started:
		t.Fatal("identical in-flight submission started its own run")
	case <-time.After(100 * time.Millisecond):
	}

	close(gate)
	pv := ts.await(t, primary.ID, 10*time.Second)
	wv := ts.await(t, waiter.ID, 10*time.Second)
	if pv.State != jobDone || wv.State != jobDone {
		t.Fatalf("states: primary %s, waiter %s", pv.State, wv.State)
	}
	if wv.Result == nil {
		t.Fatal("coalesced waiter has no result")
	}
	if !strings.Contains(ts.metricsBody(t), "parsimd_dedup_hits_total 1") {
		t.Fatal("in-flight coalesce did not count as a dedup hit")
	}
}

// TestDedupOffByDefault: with no DedupCache configured, identical
// submissions each simulate — the pre-existing contract tests rely on
// that, and so do benchmarks that replay one circuit.
func TestDedupOffByDefault(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 8})
	req := jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 64}
	for i := 0; i < 2; i++ {
		var sub jobView
		ts.submit(t, req, &sub)
		if v := ts.await(t, sub.ID, 10*time.Second); v.State != jobDone {
			t.Fatalf("submission %d: state %s", i, v.State)
		}
	}
	body := ts.metricsBody(t)
	if !strings.Contains(body, "parsimd_dedup_hits_total 0") {
		t.Fatalf("dedup engaged without DedupCache\n%s", body)
	}
	if !strings.Contains(body, "parsimd_run_milliseconds_count 2") {
		t.Errorf("expected both submissions to run\n%s", body)
	}
}

// TestDedupSkipsWatchJobs: jobs that record waveforms are never deduped
// (each needs its own recorder), even when byte-identical.
func TestDedupSkipsWatchJobs(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 8, DedupCache: 16})
	req := jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 64, Watch: []string{"q"}}
	for i := 0; i < 2; i++ {
		var sub jobView
		ts.submit(t, req, &sub)
		if v := ts.await(t, sub.ID, 10*time.Second); v.State != jobDone {
			t.Fatalf("submission %d: state %s", i, v.State)
		}
		// Each run must serve its own waveform.
		if code := ts.getJSON(t, "/v1/jobs/"+sub.ID+"/vcd", nil); code != http.StatusOK {
			t.Fatalf("submission %d: vcd status %d", i, code)
		}
	}
	if !strings.Contains(ts.metricsBody(t), "parsimd_dedup_hits_total 0") {
		t.Fatal("watch job was deduped")
	}
}
