package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"parsim/internal/stats"
)

// promBounds are the upper bounds (milliseconds) of the cumulative
// latency buckets /metrics exports. stats.Histogram keeps exact
// per-value counts, so the Prometheus buckets are derived at render
// time rather than fixed at observation time.
var promBounds = []int{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// engineTotals are the per-engine evaluation counters accumulated across
// finished jobs, keyed by canonical engine name.
type engineTotals struct {
	evals       int64
	modelCalls  int64
	nodeUpdates int64
	eventsUsed  int64
}

// metrics is the daemon's counter and latency surface, rendered in
// Prometheus text exposition format by render. All mutation goes through
// the methods below under one mutex; the hot path is one lock per job
// transition, far off any simulation inner loop.
type metrics struct {
	mu sync.Mutex

	submitted       int64 // accepted into the queue
	rejectedFull    int64 // 429: queue at capacity
	rejectedLarge   int64 // 413: body or netlist over the admission caps
	rejectedInvalid int64 // 400: malformed request
	rejectedDrain   int64 // 503: submitted while draining

	done      int64
	failed    int64
	cancelled int64
	degraded  int64 // finished via the sequential fallback
	dedupHits int64 // submissions served without a new simulation

	queueWaitMS stats.Histogram // submission -> dispatch, milliseconds
	runMS       stats.Histogram // dispatch -> finish, milliseconds

	perEngine map[string]*engineTotals

	autoSelected map[string]int64 // engine=auto jobs, keyed by the engine the cost model picked
}

func newMetrics() *metrics {
	return &metrics{
		perEngine:    make(map[string]*engineTotals),
		autoSelected: make(map[string]int64),
	}
}

// onAutoSelect counts one engine=auto job by the engine the cost model
// handed the run to.
func (m *metrics) onAutoSelect(engineName string) {
	m.mu.Lock()
	m.autoSelected[engineName]++
	m.mu.Unlock()
}

func (m *metrics) onSubmit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// onReject counts one refused submission by HTTP status.
func (m *metrics) onReject(status int) {
	m.mu.Lock()
	switch status {
	case 429:
		m.rejectedFull++
	case 413:
		m.rejectedLarge++
	case 503:
		m.rejectedDrain++
	default:
		m.rejectedInvalid++
	}
	m.mu.Unlock()
}

func (m *metrics) onStart(wait time.Duration) {
	m.mu.Lock()
	m.queueWaitMS.Observe(int(wait.Milliseconds()))
	m.mu.Unlock()
}

// onFinish folds one terminal job into the counters: its state, run
// latency, whether the fallback produced the result, and the summed
// per-worker evaluation counters attributed to its engine.
func (m *metrics) onFinish(engineName string, state jobState, wasDegraded bool, run time.Duration, tot stats.WorkerCounters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case jobDone:
		m.done++
	case jobFailed:
		m.failed++
	case jobCancelled:
		m.cancelled++
	}
	if wasDegraded {
		m.degraded++
	}
	m.runMS.Observe(int(run.Milliseconds()))
	e := m.perEngine[engineName]
	if e == nil {
		e = &engineTotals{}
		m.perEngine[engineName] = e
	}
	e.evals += tot.Evals
	e.modelCalls += tot.ModelCalls
	e.nodeUpdates += tot.NodeUpdates
	e.eventsUsed += tot.EventsUsed
}

// onDedupHit counts a submission satisfied by the dedup layer — from the
// result cache or by coalescing onto an identical in-flight run.
func (m *metrics) onDedupHit() {
	m.mu.Lock()
	m.dedupHits++
	m.mu.Unlock()
}

// onDiscard counts a queued job thrown away during drain.
func (m *metrics) onDiscard() {
	m.mu.Lock()
	m.cancelled++
	m.mu.Unlock()
}

// gauges is the instantaneous state render needs alongside the counters.
type gauges struct {
	queueDepth int
	running    int
	budget     int
	inUse      int
	peak       int
}

// render writes the whole surface in Prometheus text exposition format.
func (m *metrics) render(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("parsimd_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted)

	fmt.Fprintf(w, "# HELP parsimd_jobs_rejected_total Submissions refused by admission control, by reason.\n")
	fmt.Fprintf(w, "# TYPE parsimd_jobs_rejected_total counter\n")
	fmt.Fprintf(w, "parsimd_jobs_rejected_total{reason=\"queue_full\"} %d\n", m.rejectedFull)
	fmt.Fprintf(w, "parsimd_jobs_rejected_total{reason=\"too_large\"} %d\n", m.rejectedLarge)
	fmt.Fprintf(w, "parsimd_jobs_rejected_total{reason=\"invalid\"} %d\n", m.rejectedInvalid)
	fmt.Fprintf(w, "parsimd_jobs_rejected_total{reason=\"draining\"} %d\n", m.rejectedDrain)

	fmt.Fprintf(w, "# HELP parsimd_jobs_total Jobs finished, by terminal state.\n")
	fmt.Fprintf(w, "# TYPE parsimd_jobs_total counter\n")
	fmt.Fprintf(w, "parsimd_jobs_total{state=\"done\"} %d\n", m.done)
	fmt.Fprintf(w, "parsimd_jobs_total{state=\"failed\"} %d\n", m.failed)
	fmt.Fprintf(w, "parsimd_jobs_total{state=\"cancelled\"} %d\n", m.cancelled)

	counter("parsimd_jobs_degraded_total", "Jobs completed by the sequential fallback engine.", m.degraded)
	counter("parsimd_dedup_hits_total", "Submissions served from the content-addressed dedup layer instead of re-simulated.", m.dedupHits)

	gauge("parsimd_queue_depth", "Jobs waiting in the admission queue.", g.queueDepth)
	gauge("parsimd_jobs_running", "Jobs currently executing.", g.running)
	gauge("parsimd_cores_budget", "Worker cores the scheduler may hand out (normally GOMAXPROCS).", g.budget)
	gauge("parsimd_cores_in_use", "Worker cores currently reserved by running jobs.", g.inUse)
	gauge("parsimd_cores_in_use_peak", "High-water mark of reserved worker cores.", g.peak)

	histogram(w, "parsimd_queue_wait_milliseconds", "Time from submission to dispatch.", &m.queueWaitMS)
	histogram(w, "parsimd_run_milliseconds", "Wall time of the simulation run.", &m.runMS)

	engines := make([]string, 0, len(m.perEngine))
	for name := range m.perEngine {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	engineCounter := func(name, help string, pick func(*engineTotals) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, eng := range engines {
			fmt.Fprintf(w, "%s{engine=%q} %d\n", name, eng, pick(m.perEngine[eng]))
		}
	}
	if len(engines) > 0 {
		engineCounter("parsimd_engine_evals_total", "Element evaluations across finished jobs, by engine.",
			func(t *engineTotals) int64 { return t.evals })
		engineCounter("parsimd_engine_model_calls_total", "Element model-function invocations across finished jobs, by engine.",
			func(t *engineTotals) int64 { return t.modelCalls })
		engineCounter("parsimd_engine_node_updates_total", "Node value changes applied across finished jobs, by engine.",
			func(t *engineTotals) int64 { return t.nodeUpdates })
		engineCounter("parsimd_engine_events_used_total", "Input events consumed across finished jobs, by engine.",
			func(t *engineTotals) int64 { return t.eventsUsed })
	}

	if len(m.autoSelected) > 0 {
		selected := make([]string, 0, len(m.autoSelected))
		for name := range m.autoSelected {
			selected = append(selected, name)
		}
		sort.Strings(selected)
		fmt.Fprintf(w, "# HELP parsimd_auto_selected_total engine=auto jobs, by the engine the cost model selected.\n")
		fmt.Fprintf(w, "# TYPE parsimd_auto_selected_total counter\n")
		for _, eng := range selected {
			fmt.Fprintf(w, "parsimd_auto_selected_total{engine=%q} %d\n", eng, m.autoSelected[eng])
		}
	}
}

// histogram renders a stats.Histogram of millisecond samples as a
// Prometheus histogram: cumulative le-labelled buckets over promBounds,
// then sum and count.
func histogram(w io.Writer, name, help string, h *stats.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	buckets := h.Buckets()
	var cum int64
	i := 0
	for _, bound := range promBounds {
		for i < len(buckets) && buckets[i].Value <= bound {
			cum += buckets[i].Count
			i++
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N())
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, h.N())
}
