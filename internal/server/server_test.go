package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/logic"
	"parsim/internal/stats"

	_ "parsim" // registers the seven engines via the facade's blank imports
)

// blockEngine is a controllable engine for scheduler tests: every run
// parks until the job-wide gate opens or the context is cancelled. It
// never publishes progress, so a Config.Watchdog window trips on it —
// which is exactly what the deadline/stall tests need.
type blockEngine struct {
	mu      sync.Mutex
	gate    chan struct{}
	started chan struct{} // receives one tick per run that began
}

func (b *blockEngine) Name() string { return "test-block" }

func (b *blockEngine) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	b.mu.Lock()
	gate := b.gate
	started := b.started
	b.mu.Unlock()
	if started != nil {
		started <- struct{}{}
	}
	rep := &engine.Report{
		Run:   stats.Run{Algorithm: b.Name(), Circuit: c.Name, Workers: cfg.Workers, Horizon: cfg.Horizon},
		Final: make([]logic.Value, len(c.Nodes)),
	}
	rep.Run.Aggregate(0, make([]stats.WorkerCounters, cfg.Workers))
	select {
	case <-gate:
		return rep, nil
	case <-ctx.Done():
		return rep, ctx.Err()
	}
}

// reset rearms the gate and returns it, so each test controls only its
// own runs.
func (b *blockEngine) reset(started chan struct{}) chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gate = make(chan struct{})
	b.started = started
	return b.gate
}

var testBlock = func() *blockEngine {
	b := &blockEngine{}
	b.reset(nil)
	engine.Register(b)
	return b
}()

// testNetlist is a small three-inverter ring driven by a clock — valid
// for every engine (unit delays, so Compiled agrees too).
const testNetlist = `circuit ring
node clk 1
node a 1
node b 1
node q 1
elem clock osc delay=1 out=clk period=8
elem not n1 delay=1 out=a in=clk
elem not n2 delay=1 out=b in=a
elem not n3 delay=1 out=q in=b
`

type testServer struct {
	*Server
	ts *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return &testServer{Server: s, ts: ts}
}

// submit posts a job request and decodes the response body into out.
func (ts *testServer) submit(t *testing.T, req jobRequest, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", resp.Status, err)
		}
	}
	return resp
}

// getJSON fetches a path and decodes it into out, returning the status.
func (ts *testServer) getJSON(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", path, resp.Status, err)
		}
	}
	return resp.StatusCode
}

// await polls a job until it leaves queued/running, failing the test on
// timeout.
func (ts *testServer) await(t *testing.T, id string, timeout time.Duration) jobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v jobView
		if code := ts.getJSON(t, "/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if v.State != jobQueued && v.State != jobRunning {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEndToEndAllEngines submits the ring netlist to every registered
// real engine, polls to completion, and checks the run report.
func TestEndToEndAllEngines(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 4, MaxQueue: 32})
	for _, name := range engine.Names() {
		if name == "test-block" {
			continue
		}
		workers := 2
		if name == "sequential" {
			workers = 1
		}
		var sub jobView
		resp := ts.submit(t, jobRequest{
			Netlist: testNetlist, Engine: name, Workers: workers, Horizon: 64,
		}, &sub)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: submit status %d", name, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.ID {
			t.Errorf("%s: Location = %q", name, loc)
		}
		v := ts.await(t, sub.ID, 10*time.Second)
		if v.State != jobDone {
			t.Fatalf("%s: state %s (error %q)", name, v.State, v.Error)
		}
		if v.Result == nil {
			t.Fatalf("%s: done job has no result", name)
		}
		if v.Result.Stats.Evals == 0 {
			t.Errorf("%s: zero evaluations in result", name)
		}
		if v.Engine != name {
			t.Errorf("%s: job engine %q", name, v.Engine)
		}
	}
}

// TestSchedulerNeverOversubscribes floods the server with 64 concurrent
// in-flight jobs and asserts, via the scheduler's own gauge, that
// reserved cores never exceed the budget while every job still finishes.
func TestSchedulerNeverOversubscribes(t *testing.T) {
	budget := runtime.GOMAXPROCS(0)
	ts := newTestServer(t, Config{CoreBudget: budget, MaxQueue: 128})

	const jobs = 64
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		workers := 1 + i%budget // mix of narrow and wide jobs
		var sub jobView
		resp := ts.submit(t, jobRequest{
			Netlist: testNetlist, Engine: "asynchronous", Workers: workers, Horizon: 128,
		}, &sub)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: submit status %d", i, resp.StatusCode)
		}
		ids = append(ids, sub.ID)
	}
	inFlight := ts.QueueDepth() + ts.RunningJobs()
	for _, id := range ids {
		v := ts.await(t, id, 30*time.Second)
		if v.State != jobDone {
			t.Fatalf("job %s: state %s (error %q)", id, v.State, v.Error)
		}
	}
	if peak := ts.CoresPeak(); peak > budget {
		t.Fatalf("scheduler oversubscribed: peak %d cores reserved, budget %d", peak, budget)
	}
	if peak := ts.CoresPeak(); peak == 0 {
		t.Fatal("peak gauge never moved; jobs did not run through the scheduler")
	}
	if ts.CoresInUse() != 0 {
		t.Fatalf("cores still reserved after all jobs finished: %d", ts.CoresInUse())
	}
	t.Logf("in-flight after submission burst: %d; peak cores %d / budget %d",
		inFlight, ts.CoresPeak(), budget)
}

// TestQueueFullRejects fills the queue with blocked jobs and checks that
// the next submission is answered 429 with a Retry-After hint instead of
// queueing unboundedly.
func TestQueueFullRejects(t *testing.T) {
	started := make(chan struct{}, 8)
	gate := testBlock.reset(started)
	defer close(gate)
	ts := newTestServer(t, Config{CoreBudget: 1, MaxQueue: 2})

	// One job runs (reserving the single core), two fill the queue.
	for i := 0; i < 3; i++ {
		resp := ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: submit status %d", i, resp.StatusCode)
		}
	}
	<-started // the first job is definitely running, so 2 sit queued
	var errBody errorBody
	resp := ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8}, &errBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if !strings.Contains(errBody.Error, "queue full") {
		t.Errorf("429 body: %q", errBody.Error)
	}
}

// TestAdmissionValidation covers the 400/413 admission paths.
func TestAdmissionValidation(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4, MaxBodyBytes: 4096, MaxNodes: 3})
	cases := []struct {
		name string
		req  jobRequest
		want int
		msg  string
	}{
		{"unknown engine", jobRequest{Netlist: testNetlist, Engine: "warp-9", Horizon: 8}, 400, "unknown algorithm"},
		{"zero horizon", jobRequest{Netlist: testNetlist, Engine: "asynchronous"}, 400, "horizon"},
		{"too wide", jobRequest{Netlist: testNetlist, Engine: "asynchronous", Workers: 99, Horizon: 8}, 400, "core budget"},
		{"bad lint", jobRequest{Netlist: testNetlist, Engine: "asynchronous", Horizon: 8, Lint: "pedantic"}, 400, "lint"},
		{"bad netlist", jobRequest{Netlist: "circuit x\nnode", Engine: "asynchronous", Horizon: 8}, 400, "netlist"},
		{"too many nodes", jobRequest{Netlist: testNetlist, Engine: "asynchronous", Horizon: 8}, 413, "nodes"},
		{"unknown watch node", jobRequest{Netlist: "circuit x\nnode a 1\nelem clock c delay=1 out=a period=4\n",
			Engine: "asynchronous", Horizon: 8, Watch: []string{"zz"}}, 400, "watch"},
	}
	for _, tc := range cases {
		var errBody errorBody
		resp := ts.submit(t, tc.req, &errBody)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%q)", tc.name, resp.StatusCode, tc.want, errBody.Error)
			continue
		}
		if !strings.Contains(errBody.Error, tc.msg) {
			t.Errorf("%s: body %q missing %q", tc.name, errBody.Error, tc.msg)
		}
	}
	// Oversized body: bigger than MaxBodyBytes before it even parses.
	big := jobRequest{Netlist: strings.Repeat("# padding\n", 1024), Engine: "asynchronous", Horizon: 8}
	var errBody errorBody
	if resp := ts.submit(t, big, &errBody); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%q)", resp.StatusCode, errBody.Error)
	}
}

// TestDeadlineFailsJob gives a blocked run a tiny deadline and expects
// the job to fail with the context error in its status.
func TestDeadlineFailsJob(t *testing.T) {
	gate := testBlock.reset(nil)
	defer close(gate)
	ts := newTestServer(t, Config{CoreBudget: 1, MaxQueue: 4})
	var sub jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8, DeadlineMS: 50}, &sub)
	v := ts.await(t, sub.ID, 10*time.Second)
	if v.State != jobFailed {
		t.Fatalf("state %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", v.Error)
	}
}

// TestWatchdogStallSurfaces runs the never-progressing engine under a
// watchdog window and expects the stall report in the job status.
func TestWatchdogStallSurfaces(t *testing.T) {
	gate := testBlock.reset(nil)
	defer close(gate)
	ts := newTestServer(t, Config{CoreBudget: 1, MaxQueue: 4})
	var sub jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8,
		WatchdogMS: 100, DeadlineMS: 30000}, &sub)
	v := ts.await(t, sub.ID, 10*time.Second)
	if v.State != jobFailed {
		t.Fatalf("state %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "stall") {
		t.Errorf("error %q does not mention a stall", v.Error)
	}
}

// TestGracefulDrain checks the full shutdown story: running jobs finish,
// queued jobs are cancelled, new submissions get 503, and a drain whose
// context expires force-cancels what is left.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 8)
	gate := testBlock.reset(started)
	ts := newTestServer(t, Config{CoreBudget: 1, MaxQueue: 8})

	var first, second jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8}, &first)
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8}, &second)
	<-started // first is running; second sits in the queue

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- ts.Drain(ctx)
	}()

	// Draining: new work refused, health reports it.
	waitFor(t, time.Second, func() bool {
		return ts.getJSON(t, "/healthz", nil) == http.StatusServiceUnavailable
	})
	if resp := ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}

	close(gate) // let the running job finish
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := ts.await(t, first.ID, time.Second); v.State != jobDone {
		t.Errorf("running job after drain: %s, want done", v.State)
	}
	if v := ts.await(t, second.ID, time.Second); v.State != jobCancelled {
		t.Errorf("queued job after drain: %s, want cancelled", v.State)
	}
}

// TestForcedDrainCancelsRunning drains with an already-expired context:
// the running job must be force-cancelled, not waited on forever.
func TestForcedDrainCancelsRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := testBlock.reset(started)
	defer close(gate)
	ts := newTestServer(t, Config{CoreBudget: 1, MaxQueue: 4})
	var sub jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "test-block", Horizon: 8}, &sub)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ts.Drain(ctx); err != context.Canceled {
		t.Fatalf("forced drain returned %v, want context.Canceled", err)
	}
	v := ts.await(t, sub.ID, time.Second)
	if v.State != jobCancelled {
		t.Fatalf("force-cancelled job state %s, want cancelled (error %q)", v.State, v.Error)
	}
}

// TestVCDEndpoint submits with watch nodes and downloads the waveform.
func TestVCDEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4})
	var sub jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "asynchronous", Workers: 2,
		Horizon: 64, Watch: []string{"clk", "q"}}, &sub)

	// Before completion the endpoint must refuse with 409 or, if the tiny
	// run already finished, serve the file; only assert the former when
	// the job is still in flight.
	v := ts.await(t, sub.ID, 10*time.Second)
	if v.State != jobDone {
		t.Fatalf("state %s (error %q)", v.State, v.Error)
	}
	resp, err := http.Get(ts.ts.URL + "/v1/jobs/" + sub.ID + "/vcd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vcd status %d: %s", resp.StatusCode, buf.String())
	}
	for _, want := range []string{"$var", "clk", "$enddefinitions"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("VCD output missing %q:\n%s", want, buf.String())
		}
	}

	// A job without watch nodes has no waveform.
	var plain jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 16}, &plain)
	ts.await(t, plain.ID, 10*time.Second)
	if code := ts.getJSON(t, "/v1/jobs/"+plain.ID+"/vcd", nil); code != http.StatusNotFound {
		t.Errorf("vcd of unwatched job: status %d, want 404", code)
	}
}

// TestMetricsEndpoint checks the Prometheus surface after real traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4})
	var sub jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 64}, &sub)
	if v := ts.await(t, sub.ID, 10*time.Second); v.State != jobDone {
		t.Fatalf("state %s", v.State)
	}
	// One rejection for the by-reason counter.
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "nope", Horizon: 8}, nil)

	resp, err := http.Get(ts.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"parsimd_jobs_submitted_total 1",
		`parsimd_jobs_total{state="done"} 1`,
		`parsimd_jobs_rejected_total{reason="invalid"} 1`,
		fmt.Sprintf("parsimd_cores_budget %d", ts.CoreBudget()),
		"parsimd_queue_wait_milliseconds_count 1",
		"parsimd_run_milliseconds_bucket{le=\"+Inf\"} 1",
		`parsimd_engine_evals_total{engine="sequential"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestListJobs checks the listing endpoint returns every submission in
// order.
func TestListJobs(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 8})
	var first, second jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 16}, &first)
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "event-driven", Workers: 2, Horizon: 16}, &second)
	ts.await(t, first.ID, 10*time.Second)
	ts.await(t, second.ID, 10*time.Second)
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if code := ts.getJSON(t, "/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != first.ID || list.Jobs[1].ID != second.ID {
		t.Fatalf("listing wrong: %+v", list.Jobs)
	}
}

// TestJobNotFound pins the 404 shape.
// TestBatchedVectorJob submits one vector-engine job with four stimulus
// lanes and checks the per-lane results survive the JSON round trip:
// lane_final comes back with one row per lane, each row as wide as the
// netlist, and the probe lane's view equals the matching row.
func TestBatchedVectorJob(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4})
	var sub jobView
	resp := ts.submit(t, jobRequest{
		Netlist: testNetlist, Engine: "vector", Workers: 1, Horizon: 64,
		Lanes: 4, LaneStride: 7, ProbeLane: 2,
	}, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	v := ts.await(t, sub.ID, 10*time.Second)
	if v.State != jobDone {
		t.Fatalf("state %s (error %q)", v.State, v.Error)
	}
	if v.Result == nil {
		t.Fatal("done job has no result")
	}
	if got := len(v.Result.LaneFinal); got != 4 {
		t.Fatalf("lane_final rows = %d, want 4", got)
	}
	for lane, row := range v.Result.LaneFinal {
		if len(row) != 4 { // clk, a, b, q
			t.Fatalf("lane %d: %d nodes, want 4", lane, len(row))
		}
	}
	// The ring has no rand/gray generators, so every lane sees the same
	// stimulus and the probe lane must agree with its own row (and, here,
	// with lane 0).
	for n, want := range v.Result.LaneFinal[2] {
		if v.Result.Final[n] != want {
			t.Fatalf("node %d: final %v, probe-lane row has %v", n, v.Result.Final[n], want)
		}
	}

	// Scalar engines ignore the batch fields and report no lane rows.
	var plain jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "compiled", Workers: 1, Horizon: 64, Lanes: 4}, &plain)
	pv := ts.await(t, plain.ID, 10*time.Second)
	if pv.State != jobDone {
		t.Fatalf("compiled state %s (error %q)", pv.State, pv.Error)
	}
	if len(pv.Result.LaneFinal) != 0 {
		t.Fatalf("compiled run reported %d lane rows", len(pv.Result.LaneFinal))
	}
}

// TestBatchedAdmissionValidation covers the lane- and fault-field 400
// paths.
func TestBatchedAdmissionValidation(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4})
	cases := []struct {
		name string
		req  jobRequest
		msg  string
	}{
		{"lanes too wide", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: logic.MaxWideLanes + 1}, "lanes"},
		{"negative lanes", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: -1}, "lanes"},
		{"probe lane out of range", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: 4, ProbeLane: 4}, "probe_lane"},
		{"negative probe lane", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, ProbeLane: -1}, "probe_lane"},
		{"fault sim on scalar engine", jobRequest{Netlist: testNetlist, Engine: "asynchronous", Horizon: 8, FaultSim: true}, "fault_sim"},
		{"fault sim single lane", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: 1, FaultSim: true}, "fault_sim"},
	}
	for _, tc := range cases {
		var errBody errorBody
		resp := ts.submit(t, tc.req, &errBody)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%q)", tc.name, resp.StatusCode, errBody.Error)
			continue
		}
		if !strings.Contains(errBody.Error, tc.msg) {
			t.Errorf("%s: body %q missing %q", tc.name, errBody.Error, tc.msg)
		}
	}
}

// TestWideLaneAdmission is the plane-width admission table: a vector job's
// node budget is charged nodes x ceil(lanes/64) words, so widening the
// lanes shrinks the largest admissible netlist; scalar engines ignore the
// lane field entirely. testNetlist has 4 nodes and the server budgets 8,
// so one or two plane words fit and three don't.
func TestWideLaneAdmission(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4, MaxNodes: 8})
	cases := []struct {
		name string
		req  jobRequest
		want int
		msg  string
	}{
		{"one word fits", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: 64}, 202, ""},
		{"two words fit", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: 128}, 202, ""},
		{"three words too big", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: 192}, 413, "plane words"},
		{"max width too big", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: logic.MaxWideLanes}, 413, "plane words"},
		{"fault sim wide too big", jobRequest{Netlist: testNetlist, Engine: "vector", Horizon: 8, Lanes: 1024, FaultSim: true}, 413, "plane words"},
		{"scalar ignores lanes", jobRequest{Netlist: testNetlist, Engine: "asynchronous", Horizon: 8, Lanes: logic.MaxWideLanes}, 202, ""},
	}
	for _, tc := range cases {
		var errBody errorBody
		var out any
		if tc.want != 202 {
			out = &errBody
		}
		resp := ts.submit(t, tc.req, out)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%q)", tc.name, resp.StatusCode, tc.want, errBody.Error)
			continue
		}
		if tc.msg != "" && !strings.Contains(errBody.Error, tc.msg) {
			t.Errorf("%s: body %q missing %q", tc.name, errBody.Error, tc.msg)
		}
	}
}

// TestWideFaultJob runs a fault-simulation job end to end through the
// daemon: submit with fault_sim, poll to completion, and check the
// fault_coverage section survives the JSON round trip with full coverage
// of the inverter ring's collapsed fault list.
func TestWideFaultJob(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 4})
	var sub jobView
	resp := ts.submit(t, jobRequest{
		Netlist: testNetlist, Engine: "vector", Workers: 1, Horizon: 64,
		Lanes: 64, FaultSim: true, FaultStatuses: true,
	}, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	v := ts.await(t, sub.ID, 10*time.Second)
	if v.State != jobDone {
		t.Fatalf("state %s (error %q)", v.State, v.Error)
	}
	cov := v.Result.FaultCoverage
	if cov == nil {
		t.Fatal("fault job result has no fault_coverage")
	}
	// The ring collapses every inverter output into the clock node: one
	// site, two polarities, both detected at the ring's sink.
	if cov.Total != 2 || cov.Detected != 2 {
		t.Fatalf("coverage %d/%d, want 2/2; statuses %+v", cov.Detected, cov.Total, cov.Faults)
	}
	if len(cov.Faults) != 2 {
		t.Fatalf("fault_statuses rows = %d, want 2", len(cov.Faults))
	}
	for _, st := range cov.Faults {
		if !strings.Contains(st.Site, "clk") || !st.Detected || st.Step < 0 {
			t.Fatalf("unexpected status row %+v", st)
		}
	}
	if len(v.Result.LaneFinal) != 0 {
		t.Fatalf("fault job reported %d lane rows, want none", len(v.Result.LaneFinal))
	}
}

func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t, Config{CoreBudget: 1, MaxQueue: 2})
	if code := ts.getJSON(t, "/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", code)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
