package server

import (
	"sync"
	"time"

	"parsim"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/trace"
)

// jobState is the lifecycle of a submitted job. A job moves strictly
// queued -> running -> one of the terminal states; cancelled is reached
// from queued (drain discards the backlog) or from running (forced
// shutdown cancels the base context).
type jobState string

const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// job is one admitted simulation run. The immutable submission fields are
// written once by the submit handler before the job becomes visible to the
// dispatcher; the mutable lifecycle fields below mu are shared between the
// runner goroutine and status requests.
type job struct {
	id       string
	circ     *circuit.Circuit // template; every run simulates a fresh Clone
	engine   string           // canonical engine name
	cores    int              // worker cores reserved from the budget
	horizon  circuit.Time
	deadline time.Duration // per-job wall-clock budget (0 = none)
	watchdog time.Duration
	lint     engine.LintMode
	fallback bool
	costSpin int64
	// Batched-run fields, passed through to the vector engine (and
	// ignored by the scalar engines).
	lanes      int
	laneStride int64
	probeLane  int
	// Fault-simulation fields (vector engine only; validated at admission).
	faultSim  bool
	faultCap  int
	faultStat bool
	watch     []circuit.NodeID // nodes recorded for the /vcd endpoint
	rec       *trace.Recorder  // nil unless watch nodes were requested
	// resumeFrom names the snapshot the job continues from (empty = from
	// scratch): set during startup recovery from this node's own journal,
	// or at admission when a fleet requeue passes a dead sibling's
	// snapshot via resume_from.
	resumeFrom string
	// key is the content-addressed job key when dedup is enabled (empty
	// for watch jobs and when Config.DedupCache is 0).
	key string

	mu        sync.Mutex
	state     jobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *parsim.Result
	errMsg    string
}

// jobView is the JSON shape of a job served by GET /v1/jobs/{id} and as
// the body of the 202 submission response.
type jobView struct {
	ID       string   `json:"id"`
	State    jobState `json:"state"`
	Engine   string   `json:"engine"`
	Circuit  string   `json:"circuit"`
	Workers  int      `json:"workers"`
	Horizon  int64    `json:"horizon"`
	QueuedMS int64    `json:"queued_ms"`        // time spent waiting for cores
	RunMS    int64    `json:"run_ms,omitempty"` // wall time of the run itself
	Error    string   `json:"error,omitempty"`  // terminal failure message
	// Result is present once the job finished; a job recovered from the
	// journal serves the result it finished with before the restart.
	Result *parsim.Result `json:"result,omitempty"`
}

// view snapshots the job for serialisation.
func (j *job) view(now time.Time) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:      j.id,
		State:   j.state,
		Engine:  j.engine,
		Circuit: j.circ.Name,
		Workers: j.cores,
		Horizon: int64(j.horizon),
		Error:   j.errMsg,
	}
	switch j.state {
	case jobQueued:
		v.QueuedMS = now.Sub(j.submitted).Milliseconds()
	case jobRunning:
		v.QueuedMS = j.started.Sub(j.submitted).Milliseconds()
		v.RunMS = now.Sub(j.started).Milliseconds()
	default:
		v.QueuedMS = j.started.Sub(j.submitted).Milliseconds()
		v.RunMS = j.finished.Sub(j.started).Milliseconds()
		v.Result = j.result
	}
	return v
}

// snapshot returns the state plus whether the job carries a VCD-servable
// recording (terminal state with watched nodes).
func (j *job) snapshot() (jobState, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	terminal := j.state == jobDone || j.state == jobFailed || j.state == jobCancelled
	return j.state, terminal && j.rec != nil
}

func (j *job) setRunning(t time.Time) {
	j.mu.Lock()
	j.state = jobRunning
	j.started = t
	j.mu.Unlock()
}

// finish records the run outcome and returns the terminal state it chose:
// done on success, cancelled when the server shut the run down, failed
// otherwise (deadline, stall, fault, bad config). A partial result — the
// engines return one on cancellation — is kept either way.
func (j *job) finish(res *parsim.Result, err error, t time.Time, serverCancelled bool) jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = t
	j.result = res
	switch {
	case err == nil:
		j.state = jobDone
	case serverCancelled:
		j.state = jobCancelled
		j.errMsg = "cancelled by server shutdown: " + err.Error()
	default:
		j.state = jobFailed
		j.errMsg = err.Error()
	}
	return j.state
}

// discard marks a never-run job cancelled (queue drained at shutdown).
func (j *job) discard(t time.Time) {
	j.mu.Lock()
	j.state = jobCancelled
	j.started = t
	j.finished = t
	j.errMsg = "cancelled before running: server shutting down"
	j.mu.Unlock()
}

// jobStore is the id -> job index behind the status endpoints. Jobs are
// never evicted: the daemon serves finite benchmark workloads, and the
// store doubles as the run log /v1/jobs lists.
type jobStore struct {
	mu    sync.RWMutex
	byID  map[string]*job
	order []*job // insertion order, for stable listings
}

func newJobStore() *jobStore {
	return &jobStore{byID: make(map[string]*job)}
}

func (s *jobStore) add(j *job) {
	s.mu.Lock()
	s.byID[j.id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.RLock()
	j, ok := s.byID[id]
	s.mu.RUnlock()
	return j, ok
}

func (s *jobStore) all() []*job {
	s.mu.RLock()
	out := append([]*job(nil), s.order...)
	s.mu.RUnlock()
	return out
}
