package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// durableConfig is the base config for the crash-durability tests: one
// core, a state directory, a tight checkpoint interval so short runs
// still snapshot.
func durableConfig(dir string) Config {
	return Config{
		CoreBudget:      2,
		MaxQueue:        8,
		StateDir:        dir,
		CheckpointEvery: 50,
	}
}

// waitTerminal polls a job until it leaves the queued/running states.
func waitTerminal(t *testing.T, ts *testServer, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		if code := ts.getJSON(t, "/v1/jobs/"+id, &v); code != http200 {
			t.Fatalf("GET job: status %d", code)
		}
		if v.State != jobQueued && v.State != jobRunning {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return jobView{}
}

const http200 = 200

// journalLines parses every record currently in the journal file.
func journalLines(t *testing.T, dir string) []journalRecord {
	t.Helper()
	recs, err := readJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	return recs
}

// TestJournalRecoveryDoneJob restarts the server over the same state
// directory and checks a finished job survives with its result intact —
// same state, same final values, same counters.
func TestJournalRecoveryDoneJob(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, durableConfig(dir))

	var sub jobView
	resp := ts.submit(t, jobRequest{
		Netlist: testNetlist, Engine: "sequential", Horizon: 400,
	}, &sub)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %s", resp.Status)
	}
	before := waitTerminal(t, ts, sub.ID)
	if before.State != jobDone || before.Result == nil {
		t.Fatalf("job finished %s (result %v)", before.State, before.Result)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	ts.Drain(ctx)
	cancel()

	// A journal must exist and end with a done record for the job.
	recs := journalLines(t, dir)
	if len(recs) == 0 {
		t.Fatal("journal is empty after a durable run")
	}
	last := recs[len(recs)-1]
	if last.Type != recDone || last.Job != sub.ID {
		t.Fatalf("last journal record = %+v, want done for %s", last, sub.ID)
	}

	ts2 := newTestServer(t, durableConfig(dir))
	var after jobView
	if code := ts2.getJSON(t, "/v1/jobs/"+sub.ID, &after); code != http200 {
		t.Fatalf("recovered job: status %d", code)
	}
	if after.State != jobDone {
		t.Fatalf("recovered job state = %s, want done", after.State)
	}
	if after.Result == nil {
		t.Fatal("recovered job lost its result")
	}
	if got, want := after.Result.Stats.Totals().Evals, before.Result.Stats.Totals().Evals; got != want {
		t.Errorf("recovered Evals = %d, want %d", got, want)
	}
	if len(after.Result.Final) != len(before.Result.Final) {
		t.Fatalf("recovered %d final values, want %d", len(after.Result.Final), len(before.Result.Final))
	}
	for i := range before.Result.Final {
		if !before.Result.Final[i].Equal(after.Result.Final[i]) {
			t.Errorf("final[%d] = %v, want %v", i, after.Result.Final[i], before.Result.Final[i])
		}
	}
}

// TestDrainResume interrupts a running checkpointed job with an expired
// drain (the engine writes a final snapshot at the stop boundary, the
// journal keeps the job in-flight) and checks the restarted server
// re-queues it, resumes from the snapshot, and finishes with the same
// final values an uninterrupted run produces.
func TestDrainResume(t *testing.T) {
	// Reference: the same job run to completion without interruptions.
	ref := newTestServer(t, Config{CoreBudget: 2, MaxQueue: 8})
	var refSub jobView
	// The horizon is deliberately long (several seconds of simulation):
	// the drain below must land while the job is still running, even when
	// the whole test binary shares one loaded core, so the window between
	// the first durable snapshot and completion has to dwarf scheduling
	// latency.
	ref.submit(t, jobRequest{
		Netlist: testNetlist, Engine: "sequential", Horizon: 200000, CostSpin: 200,
	}, &refSub)
	refView := waitTerminal(t, ref, refSub.ID)
	if refView.State != jobDone {
		t.Fatalf("reference job finished %s: %s", refView.State, refView.Error)
	}

	dir := t.TempDir()
	ts := newTestServer(t, durableConfig(dir))
	var sub jobView
	resp := ts.submit(t, jobRequest{
		Netlist: testNetlist, Engine: "sequential", Horizon: 200000, CostSpin: 200,
	}, &sub)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %s", resp.Status)
	}

	// Wait for at least one periodic snapshot to reach the journal, so the
	// interruption lands mid-run with durable progress behind it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no checkpointed record appeared in the journal")
		}
		seen := false
		for _, rec := range journalLines(t, dir) {
			if rec.Type == recCheckpointed && rec.Job == sub.ID {
				seen = true
			}
		}
		if seen {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// An already-expired drain context: the base context is cancelled
	// immediately, the engine stops at the next step boundary and writes a
	// final snapshot there.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	ts.Drain(expired)

	if _, err := os.Stat(filepath.Join(dir, sub.ID+".ckpt")); err != nil {
		t.Fatalf("no snapshot on disk after drain: %v", err)
	}
	for _, rec := range journalLines(t, dir) {
		if rec.Job == sub.ID && (rec.Type == recDone || rec.Type == recFailed || rec.Type == recCancelled) {
			t.Fatalf("interrupted job has terminal journal record %q; it would not be resumed", rec.Type)
		}
	}

	ts2 := newTestServer(t, durableConfig(dir))
	after := waitTerminal(t, ts2, sub.ID)
	if after.State != jobDone {
		t.Fatalf("resumed job finished %s: %s", after.State, after.Error)
	}
	if after.Result == nil || !after.Result.Resumed {
		t.Fatalf("recovered job did not resume from its snapshot (result %+v)", after.Result)
	}
	if after.Result.Stats.TimeSteps != refView.Result.Stats.TimeSteps {
		t.Errorf("resumed TimeSteps = %d, want %d", after.Result.Stats.TimeSteps, refView.Result.Stats.TimeSteps)
	}
	for i := range refView.Result.Final {
		if !refView.Result.Final[i].Equal(after.Result.Final[i]) {
			t.Errorf("final[%d] = %v, want %v", i, after.Result.Final[i], refView.Result.Final[i])
		}
	}
	ta, tr := after.Result.Stats.Totals(), refView.Result.Stats.Totals()
	if ta.NodeUpdates != tr.NodeUpdates || ta.Evals != tr.Evals {
		t.Errorf("stitched counters diverge: updates %d/%d evals %d/%d",
			ta.NodeUpdates, tr.NodeUpdates, ta.Evals, tr.Evals)
	}
}

// TestJournalTornFinalLine checks that a crash artifact — a half-written
// final record — is tolerated: the journal loads, the torn event simply
// never happened.
func TestJournalTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	req := jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 100}
	accepted, err := json.Marshal(journalRecord{Type: recAccepted, Job: "j-000001", Seq: 1, Req: &req})
	if err != nil {
		t.Fatal(err)
	}
	content := string(accepted) + "\n" + `{"type":"done","job":"j-0000`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t, durableConfig(dir))
	// The torn done record never happened, so the job re-runs to done.
	after := waitTerminal(t, ts, "j-000001")
	if after.State != jobDone {
		t.Fatalf("recovered job finished %s: %s", after.State, after.Error)
	}
	if after.Result == nil || after.Result.Resumed {
		t.Fatalf("job without a snapshot should re-run from scratch (result %+v)", after.Result)
	}
}

// TestJournalCorruptMidFile checks that a malformed record anywhere but
// the final line refuses to load — silently skipping journal records
// would resurrect the wrong state.
func TestJournalCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	content := "{not json}\n" + `{"type":"started","job":"j-000001"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(durableConfig(dir)); err == nil {
		t.Fatal("New accepted a journal with a corrupt mid-file record")
	} else if !strings.Contains(err.Error(), "malformed record") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestRecoveryPreservesIDCounter checks a restarted server never reuses a
// journalled job id.
func TestRecoveryPreservesIDCounter(t *testing.T) {
	dir := t.TempDir()
	ts := newTestServer(t, durableConfig(dir))
	var first jobView
	ts.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 100}, &first)
	waitTerminal(t, ts, first.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	ts.Drain(ctx)
	cancel()

	ts2 := newTestServer(t, durableConfig(dir))
	var second jobView
	ts2.submit(t, jobRequest{Netlist: testNetlist, Engine: "sequential", Horizon: 100}, &second)
	if second.ID == first.ID {
		t.Fatalf("restarted server reused job id %s", first.ID)
	}
}
