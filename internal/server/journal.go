package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"parsim"
	"parsim/internal/checkpoint"
)

// The job journal is the daemon's crash-durability record: one JSON line
// per lifecycle event, appended and fsynced before the event is considered
// to have happened. On restart New replays the journal — jobs with a
// terminal record reappear in the status API with their saved result,
// jobs without one are re-queued and, when an intact snapshot exists,
// resumed from it. A `kill -9` therefore loses at most the work since the
// last checkpoint, never the job itself.

// Journal record types. A job's line sequence is
// accepted -> started -> checkpointed* -> (done|failed|cancelled);
// any prefix of that sequence is a legal crash state.
const (
	recAccepted     = "accepted"
	recStarted      = "started"
	recCheckpointed = "checkpointed"
	recDone         = "done"
	recFailed       = "failed"
	recCancelled    = "cancelled"
)

// journalRecord is one journal line.
type journalRecord struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Seq is the numeric id counter value (accepted records only), so a
	// restarted daemon never reuses an id.
	Seq int64 `json:"seq,omitempty"`
	// Req is the full submission body (accepted records only) — enough to
	// rebuild and re-run the job from scratch.
	Req *jobRequest `json:"req,omitempty"`
	// Step is the simulated time of the snapshot (checkpointed records).
	Step int64 `json:"step,omitempty"`
	// Result is the marshalled run report (done records).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the terminal failure message (failed/cancelled records).
	Error string    `json:"error,omitempty"`
	At    time.Time `json:"at"`
}

// journal is an append-only, fsync-per-record JSON-lines file.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one record and syncs it to disk. The record is durable
// when append returns nil — the caller may then act on the event.
func (jn *journal) append(rec journalRecord) error {
	rec.At = time.Now().UTC()
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding %s record: %w", rec.Type, err)
	}
	b = append(b, '\n')
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := jn.f.Write(b); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := jn.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the journal file; further appends fail.
func (jn *journal) Close() error {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.f == nil {
		return nil
	}
	f := jn.f
	jn.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// readJournal loads every record from a journal file. A missing file is
// an empty journal. A torn final line — the expected artifact of a crash
// mid-append — is tolerated and dropped; a malformed line anywhere else
// is corruption and an error, because silently skipping records would
// resurrect the wrong state.
func readJournal(path string) ([]journalRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	var recs []journalRecord
	for i, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			for _, rest := range lines[i+1:] {
				if len(bytes.TrimSpace(rest)) != 0 {
					return nil, fmt.Errorf("journal %s: malformed record on line %d: %w", path, i+1, err)
				}
			}
			// Torn final line: the crash interrupted the append before the
			// sync, so the event never durably happened. Drop it.
			return recs, nil
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// openState prepares the state directory, replays the journal into the
// job store/queue and opens the journal for appending. Called by New
// before the dispatcher starts, so recovered jobs run in their original
// submission order ahead of any new work.
func (s *Server) openState() error {
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}
	path := filepath.Join(s.cfg.StateDir, "journal.jsonl")
	recs, err := readJournal(path)
	if err != nil {
		return err
	}
	jn, err := openJournal(path)
	if err != nil {
		return err
	}
	s.jnl = jn
	s.recoverJobs(recs)
	return nil
}

// ckptPath is the snapshot file a durable job checkpoints to.
func (s *Server) ckptPath(id string) string {
	return filepath.Join(s.cfg.StateDir, id+".ckpt")
}

// logJournal appends a record, logging (not propagating) failures: a full
// disk degrades durability but should not take down a healthy run.
func (s *Server) logJournal(rec journalRecord) {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.append(rec); err != nil {
		log.Printf("parsimd: %v", err)
	}
}

// recoverJobs rebuilds the job store from replayed journal records.
// Finished jobs are rehydrated with their saved result; interrupted ones
// are re-queued, resuming from their last snapshot when it loads and
// verifies, from scratch when it is missing or corrupt.
func (s *Server) recoverJobs(recs []journalRecord) {
	type pending struct {
		req          *jobRequest
		checkpointed bool
		terminal     string
		result       json.RawMessage
		errMsg       string
		at           time.Time
	}
	byID := make(map[string]*pending)
	var order []string
	var maxSeq int64
	for _, rec := range recs {
		switch rec.Type {
		case recAccepted:
			if rec.Req == nil {
				continue
			}
			byID[rec.Job] = &pending{req: rec.Req, at: rec.At}
			order = append(order, rec.Job)
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case recCheckpointed:
			if p := byID[rec.Job]; p != nil {
				p.checkpointed = true
			}
		case recDone, recFailed, recCancelled:
			if p := byID[rec.Job]; p != nil {
				p.terminal = rec.Type
				p.result = rec.Result
				p.errMsg = rec.Error
			}
		}
	}
	if maxSeq > s.nextID.Load() {
		s.nextID.Store(maxSeq)
	}
	now := time.Now()
	for _, id := range order {
		p := byID[id]
		j, _, err := s.buildJob(p.req)
		if err != nil {
			// The server's limits shrank (or the journal predates a format
			// change); the job cannot be re-admitted. Leave it out rather
			// than fabricating a result.
			log.Printf("parsimd: recovery: dropping job %s: %v", id, err)
			continue
		}
		j.id = id
		j.submitted = p.at
		if j.submitted.IsZero() {
			j.submitted = now
		}
		switch p.terminal {
		case recDone:
			j.state = jobDone
			// The journalled result JSON is the Result wire schema; it
			// round-trips through UnmarshalJSON, so a recovered job's
			// status response matches the one served before the restart.
			if len(p.result) > 0 {
				res := new(parsim.Result)
				if uerr := json.Unmarshal(p.result, res); uerr == nil {
					j.result = res
				} else {
					log.Printf("parsimd: recovery: job %s result unreadable: %v", id, uerr)
				}
			}
			j.started, j.finished = j.submitted, j.submitted
		case recFailed:
			j.state = jobFailed
			j.errMsg = p.errMsg
			j.started, j.finished = j.submitted, j.submitted
		case recCancelled:
			j.state = jobCancelled
			j.errMsg = p.errMsg
			j.started, j.finished = j.submitted, j.submitted
		default:
			// Interrupted mid-flight (or never started): run it again.
			if p.checkpointed {
				ck := s.ckptPath(id)
				if _, lerr := checkpoint.Load(ck); lerr == nil {
					j.resumeFrom = ck
				} else {
					log.Printf("parsimd: recovery: job %s snapshot unusable (%v); restarting from scratch", id, lerr)
				}
			}
			if perr := s.queue.push(j); perr != nil {
				j.discard(now)
			}
		}
		s.jobs.add(j)
	}
}
