// Package eventq implements the pending-event structure used by the
// event-driven simulators: a timing wheel for the dense near future with a
// binary-heap overflow for far-future events. This is the classic logic
// simulator queue — O(1) scheduling for the common case of short gate
// delays, falling back gracefully for long delays such as clock periods.
package eventq

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// Update is a scheduled node value change.
type Update struct {
	Node  circuit.NodeID
	Value logic.Value
}

// DefaultWheelSize is the wheel span in ticks used by New.
const DefaultWheelSize = 1024

type slot struct {
	t   circuit.Time
	ups []Update
}

type overflowEntry struct {
	t   circuit.Time
	seq int64 // insertion order, tie-break for equal times
	up  Update
}

// less orders the overflow heap by (time, insertion order). The seq
// tie-break keeps equal-time pops in scheduling order, so draining a queue
// — and re-draining one rebuilt from a checkpoint — is deterministic.
func (e overflowEntry) less(o overflowEntry) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// Queue is a single-owner (not concurrency-safe) pending-event queue.
// Times must be scheduled at or after the last popped time; the simulators
// guarantee this because every element delay is at least one tick.
type Queue struct {
	slots []slot
	mask  circuit.Time
	cur   circuit.Time // scan start: no pending time is below cur
	wheel int          // updates resident in the wheel
	over  []overflowEntry
	seq   int64 // next overflow insertion sequence number
	n     int
}

// New returns an empty queue with the default wheel size.
func New() *Queue { return NewSize(DefaultWheelSize) }

// NewSize returns an empty queue whose wheel spans the given number of
// ticks; size must be a power of two.
func NewSize(size int) *Queue {
	if size <= 0 || size&(size-1) != 0 {
		panic("eventq: wheel size must be a positive power of two")
	}
	return &Queue{slots: make([]slot, size), mask: circuit.Time(size - 1)}
}

// Len returns the number of pending updates.
func (q *Queue) Len() int { return q.n }

// Schedule adds an update at time t. Scheduling before the last popped time
// panics: it would mean a causality violation in the simulator.
func (q *Queue) Schedule(t circuit.Time, up Update) {
	if t < q.cur {
		panic("eventq: schedule in the past")
	}
	q.n++
	if t < q.cur+circuit.Time(len(q.slots)) {
		s := &q.slots[t&q.mask]
		if len(s.ups) == 0 {
			s.t = t
			s.ups = append(s.ups, up)
			q.wheel++
			return
		}
		if s.t == t {
			s.ups = append(s.ups, up)
			q.wheel++
			return
		}
		// Slot collision with a different resident time (possible when the
		// resident entry predates several wheel advances): overflow.
	}
	q.pushOverflow(overflowEntry{t: t, up: up})
}

// Entry is one pending update together with its scheduled time, exposed for
// checkpointing.
type Entry struct {
	T     circuit.Time
	Node  circuit.NodeID
	Value logic.Value
}

// Dump returns the queue's scan cursor and every pending update in the exact
// order PopNext would deliver them. The receiver is not modified: the drain
// runs on a deep copy, so Dump is safe at any quiescent point.
func (q *Queue) Dump() (circuit.Time, []Entry) {
	clone := &Queue{
		slots: make([]slot, len(q.slots)),
		mask:  q.mask,
		cur:   q.cur,
		wheel: q.wheel,
		over:  append([]overflowEntry(nil), q.over...),
		seq:   q.seq,
		n:     q.n,
	}
	for i := range q.slots {
		clone.slots[i].t = q.slots[i].t
		clone.slots[i].ups = append([]Update(nil), q.slots[i].ups...)
	}
	entries := make([]Entry, 0, q.n)
	for {
		t, ups, ok := clone.PopNext()
		if !ok {
			break
		}
		for _, up := range ups {
			entries = append(entries, Entry{T: t, Node: up.Node, Value: up.Value})
		}
	}
	return q.cur, entries
}

// Restore resets the queue to hold exactly the given entries with the scan
// cursor at cur. Entries must be in Dump order (non-decreasing time);
// rescheduling them in that order reproduces pop order deterministically.
func (q *Queue) Restore(cur circuit.Time, entries []Entry) {
	for i := range q.slots {
		q.slots[i] = slot{}
	}
	q.cur = cur
	q.wheel = 0
	q.over = nil
	q.seq = 0
	q.n = 0
	for _, e := range entries {
		q.Schedule(e.T, Update{Node: e.Node, Value: e.Value})
	}
}

// Peek returns the earliest pending time.
func (q *Queue) Peek() (circuit.Time, bool) {
	if q.n == 0 {
		return 0, false
	}
	t := q.scanWheel()
	if len(q.over) > 0 && (t < 0 || q.over[0].t < t) {
		t = q.over[0].t
	}
	return t, true
}

// PopNext removes and returns every update scheduled at the earliest pending
// time. The returned slice is valid until the next call to Schedule or
// PopNext.
func (q *Queue) PopNext() (circuit.Time, []Update, bool) {
	t, ok := q.Peek()
	if !ok {
		return 0, nil, false
	}
	var ups []Update
	s := &q.slots[t&q.mask]
	if len(s.ups) > 0 && s.t == t {
		ups = s.ups
		s.ups = s.ups[:0]
		// Hand the caller the backing array and give the slot a fresh one so
		// the returned slice survives subsequent scheduling into this slot.
		q.slots[t&q.mask].ups = nil
		q.wheel -= len(ups)
	}
	for len(q.over) > 0 && q.over[0].t == t {
		ups = append(ups, q.popOverflow().up)
	}
	q.n -= len(ups)
	q.cur = t + 1
	return t, ups, true
}

// scanWheel returns the earliest resident wheel time, or -1 if the wheel is
// empty.
func (q *Queue) scanWheel() circuit.Time {
	if q.wheel == 0 {
		return -1
	}
	for i := circuit.Time(0); i < circuit.Time(len(q.slots)); i++ {
		t := q.cur + i
		if s := &q.slots[t&q.mask]; len(s.ups) > 0 && s.t == t {
			return t
		}
	}
	// Invariant: wheel entries always lie in [cur, cur+size).
	panic("eventq: wheel accounting corrupt")
}

func (q *Queue) pushOverflow(e overflowEntry) {
	e.seq = q.seq
	q.seq++
	q.over = append(q.over, e)
	i := len(q.over) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.over[i].less(q.over[parent]) {
			break
		}
		q.over[parent], q.over[i] = q.over[i], q.over[parent]
		i = parent
	}
}

func (q *Queue) popOverflow() overflowEntry {
	top := q.over[0]
	last := len(q.over) - 1
	q.over[0] = q.over[last]
	q.over = q.over[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.over[l].less(q.over[small]) {
			small = l
		}
		if r < last && q.over[r].less(q.over[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.over[i], q.over[small] = q.over[small], q.over[i]
		i = small
	}
	return top
}
