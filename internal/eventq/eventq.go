// Package eventq implements the pending-event structure used by the
// event-driven simulators: a timing wheel for the dense near future with a
// binary-heap overflow for far-future events. This is the classic logic
// simulator queue — O(1) scheduling for the common case of short gate
// delays, falling back gracefully for long delays such as clock periods.
package eventq

import (
	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// Update is a scheduled node value change.
type Update struct {
	Node  circuit.NodeID
	Value logic.Value
}

// DefaultWheelSize is the wheel span in ticks used by New.
const DefaultWheelSize = 1024

type slot struct {
	t   circuit.Time
	ups []Update
}

type overflowEntry struct {
	t  circuit.Time
	up Update
}

// Queue is a single-owner (not concurrency-safe) pending-event queue.
// Times must be scheduled at or after the last popped time; the simulators
// guarantee this because every element delay is at least one tick.
type Queue struct {
	slots []slot
	mask  circuit.Time
	cur   circuit.Time // scan start: no pending time is below cur
	wheel int          // updates resident in the wheel
	over  []overflowEntry
	n     int
}

// New returns an empty queue with the default wheel size.
func New() *Queue { return NewSize(DefaultWheelSize) }

// NewSize returns an empty queue whose wheel spans the given number of
// ticks; size must be a power of two.
func NewSize(size int) *Queue {
	if size <= 0 || size&(size-1) != 0 {
		panic("eventq: wheel size must be a positive power of two")
	}
	return &Queue{slots: make([]slot, size), mask: circuit.Time(size - 1)}
}

// Len returns the number of pending updates.
func (q *Queue) Len() int { return q.n }

// Schedule adds an update at time t. Scheduling before the last popped time
// panics: it would mean a causality violation in the simulator.
func (q *Queue) Schedule(t circuit.Time, up Update) {
	if t < q.cur {
		panic("eventq: schedule in the past")
	}
	q.n++
	if t < q.cur+circuit.Time(len(q.slots)) {
		s := &q.slots[t&q.mask]
		if len(s.ups) == 0 {
			s.t = t
			s.ups = append(s.ups, up)
			q.wheel++
			return
		}
		if s.t == t {
			s.ups = append(s.ups, up)
			q.wheel++
			return
		}
		// Slot collision with a different resident time (possible when the
		// resident entry predates several wheel advances): overflow.
	}
	q.pushOverflow(overflowEntry{t: t, up: up})
}

// Peek returns the earliest pending time.
func (q *Queue) Peek() (circuit.Time, bool) {
	if q.n == 0 {
		return 0, false
	}
	t := q.scanWheel()
	if len(q.over) > 0 && (t < 0 || q.over[0].t < t) {
		t = q.over[0].t
	}
	return t, true
}

// PopNext removes and returns every update scheduled at the earliest pending
// time. The returned slice is valid until the next call to Schedule or
// PopNext.
func (q *Queue) PopNext() (circuit.Time, []Update, bool) {
	t, ok := q.Peek()
	if !ok {
		return 0, nil, false
	}
	var ups []Update
	s := &q.slots[t&q.mask]
	if len(s.ups) > 0 && s.t == t {
		ups = s.ups
		s.ups = s.ups[:0]
		// Hand the caller the backing array and give the slot a fresh one so
		// the returned slice survives subsequent scheduling into this slot.
		q.slots[t&q.mask].ups = nil
		q.wheel -= len(ups)
	}
	for len(q.over) > 0 && q.over[0].t == t {
		ups = append(ups, q.popOverflow().up)
	}
	q.n -= len(ups)
	q.cur = t + 1
	return t, ups, true
}

// scanWheel returns the earliest resident wheel time, or -1 if the wheel is
// empty.
func (q *Queue) scanWheel() circuit.Time {
	if q.wheel == 0 {
		return -1
	}
	for i := circuit.Time(0); i < circuit.Time(len(q.slots)); i++ {
		t := q.cur + i
		if s := &q.slots[t&q.mask]; len(s.ups) > 0 && s.t == t {
			return t
		}
	}
	// Invariant: wheel entries always lie in [cur, cur+size).
	panic("eventq: wheel accounting corrupt")
}

func (q *Queue) pushOverflow(e overflowEntry) {
	q.over = append(q.over, e)
	i := len(q.over) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.over[parent].t <= q.over[i].t {
			break
		}
		q.over[parent], q.over[i] = q.over[i], q.over[parent]
		i = parent
	}
}

func (q *Queue) popOverflow() overflowEntry {
	top := q.over[0]
	last := len(q.over) - 1
	q.over[0] = q.over[last]
	q.over = q.over[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.over[l].t < q.over[small].t {
			small = l
		}
		if r < last && q.over[r].t < q.over[small].t {
			small = r
		}
		if small == i {
			break
		}
		q.over[i], q.over[small] = q.over[small], q.over[i]
		i = small
	}
	return top
}
