package eventq

import (
	"math/rand"
	"sort"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

func up(n int) Update {
	return Update{Node: circuit.NodeID(n), Value: logic.V(8, uint64(n))}
}

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue")
	}
	if _, _, ok := q.PopNext(); ok {
		t.Fatal("PopNext on empty queue")
	}
}

func TestFIFOWithinTime(t *testing.T) {
	q := New()
	q.Schedule(5, up(1))
	q.Schedule(5, up(2))
	q.Schedule(5, up(3))
	tm, ups, ok := q.PopNext()
	if !ok || tm != 5 || len(ups) != 3 {
		t.Fatalf("pop = %d %v %v", tm, ups, ok)
	}
	for i, u := range ups {
		if u.Node != circuit.NodeID(i+1) {
			t.Errorf("ups[%d] = node %d", i, u.Node)
		}
	}
}

func TestTimeOrdering(t *testing.T) {
	q := New()
	for _, tm := range []circuit.Time{9, 2, 7, 4, 100000, 3} {
		q.Schedule(tm, up(int(tm)))
	}
	want := []circuit.Time{2, 3, 4, 7, 9, 100000}
	for _, w := range want {
		tm, ups, ok := q.PopNext()
		if !ok || tm != w || len(ups) != 1 {
			t.Fatalf("pop = %d (%d ups) %v, want %d", tm, len(ups), ok, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d after draining", q.Len())
	}
}

func TestOverflowBeyondWheel(t *testing.T) {
	q := NewSize(16)
	// Far beyond the 16-tick wheel.
	q.Schedule(1000, up(1))
	q.Schedule(3, up(2))
	q.Schedule(1000+16, up(3)) // same slot as 1000 in a 16-slot wheel
	tm, _, _ := q.PopNext()
	if tm != 3 {
		t.Fatalf("first pop = %d", tm)
	}
	tm, _, _ = q.PopNext()
	if tm != 1000 {
		t.Fatalf("second pop = %d", tm)
	}
	tm, _, _ = q.PopNext()
	if tm != 1016 {
		t.Fatalf("third pop = %d", tm)
	}
}

func TestSlotCollisionGoesToOverflow(t *testing.T) {
	q := NewSize(8)
	q.Schedule(1, up(1))
	// After popping time 1, cur=2; time 9 maps to slot 1 again while the
	// wheel window is [2, 10).
	tm, _, _ := q.PopNext()
	if tm != 1 {
		t.Fatal("setup pop failed")
	}
	q.Schedule(9, up(2))
	q.Schedule(17, up(3)) // outside window -> overflow
	tm, _, _ = q.PopNext()
	if tm != 9 {
		t.Fatalf("pop = %d, want 9", tm)
	}
	tm, _, _ = q.PopNext()
	if tm != 17 {
		t.Fatalf("pop = %d, want 17", tm)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	q := New()
	q.Schedule(10, up(1))
	q.PopNext()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	q.Schedule(5, up(2))
}

func TestBadWheelSizePanics(t *testing.T) {
	for _, size := range []int{0, -4, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSize(%d) did not panic", size)
				}
			}()
			NewSize(size)
		}()
	}
}

// TestAgainstModel drives the queue and a naive map-based model with the
// same random schedule/pop sequence and requires identical behaviour.
func TestAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		q := NewSize(32)
		model := map[circuit.Time][]Update{}
		cur := circuit.Time(0)
		id := 0
		for step := 0; step < 2000; step++ {
			if r.Intn(3) != 0 || len(model) == 0 {
				// Schedule at a random future time, occasionally far out.
				var dt circuit.Time
				if r.Intn(10) == 0 {
					dt = circuit.Time(r.Intn(5000))
				} else {
					dt = circuit.Time(r.Intn(20))
				}
				tm := cur + dt
				u := up(id)
				id++
				q.Schedule(tm, u)
				model[tm] = append(model[tm], u)
			} else {
				tm, ups, ok := q.PopNext()
				if !ok {
					t.Fatalf("seed %d: queue empty but model has %d times", seed, len(model))
				}
				// Model: find min time.
				var want circuit.Time = -1
				for mt := range model {
					if want < 0 || mt < want {
						want = mt
					}
				}
				if tm != want {
					t.Fatalf("seed %d: popped %d, want %d", seed, tm, want)
				}
				wantUps := model[want]
				delete(model, want)
				if len(ups) != len(wantUps) {
					t.Fatalf("seed %d t=%d: %d ups, want %d", seed, tm, len(ups), len(wantUps))
				}
				// Same multiset of updates (order may differ between wheel
				// and overflow portions).
				sortUps := func(s []Update) {
					sort.Slice(s, func(i, j int) bool { return s[i].Node < s[j].Node })
				}
				gotCopy := append([]Update(nil), ups...)
				sortUps(gotCopy)
				sortUps(wantUps)
				for i := range gotCopy {
					if gotCopy[i] != wantUps[i] {
						t.Fatalf("seed %d t=%d: ups differ at %d", seed, tm, i)
					}
				}
				cur = tm + 1
			}
		}
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(1))
	cur := circuit.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(cur+circuit.Time(1+r.Intn(8)), up(i))
		if i%4 == 3 {
			tm, _, ok := q.PopNext()
			if ok {
				cur = tm
			}
		}
	}
}
