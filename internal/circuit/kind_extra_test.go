package circuit

import (
	"strings"
	"testing"

	"parsim/internal/logic"
)

func TestExtEval(t *testing.T) {
	_, el := buildOne(t, KindExt, []int{4}, []int{8}, Params{})
	if got := evalOnce(el, logic.V(4, 0b1011))[0]; got.MustUint() != 0b1011 || got.Width() != 8 {
		t.Errorf("ext = %v", got)
	}
	if got := evalOnce(el, logic.AllX(4))[0]; got.Bit(3) != logic.X || got.Bit(4) != logic.L {
		t.Errorf("ext of X = %v", got)
	}
}

func TestConstEval(t *testing.T) {
	b := NewBuilder("c")
	y := b.Node("y", 8)
	b.Const("k", y, logic.V(8, 0xAB))
	c := b.MustBuild()
	el := &c.Elems[0]
	if got := el.GenValueAt(5); got.MustUint() != 0xAB {
		t.Errorf("const gen value = %v", got)
	}
	if _, ok := el.GenNextChange(0); ok {
		t.Error("const must never change")
	}
}

func TestGrayGenerator(t *testing.T) {
	b := NewBuilder("g")
	y := b.Node("y", 8)
	b.AddElement(KindGray, "gg", 1, []NodeID{y}, nil, Params{Period: 10, Seed: 0})
	c := b.MustBuild()
	el := &c.Elems[0]
	// Exactly one bit changes at each period boundary.
	prev := el.GenValueAt(0).MustUint()
	for k := 1; k < 40; k++ {
		cur := el.GenValueAt(Time(k * 10)).MustUint()
		diff := prev ^ cur
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("step %d: %08b -> %08b changes %b bits", k, prev, cur, diff)
		}
		prev = cur
	}
	// Stable within a period; next change at the boundary.
	if !el.GenValueAt(3).Equal(el.GenValueAt(9)) {
		t.Error("gray value changed within a period")
	}
	if next, ok := el.GenNextChange(3); !ok || next != 10 {
		t.Errorf("next change = %d, %v", next, ok)
	}
	if !el.GenValueAt(-1).Equal(logic.AllX(8)) {
		t.Error("gray before t=0 must be X")
	}
}

func TestTriggerPorts(t *testing.T) {
	cases := map[Kind][]int{
		KindDFF:  {0},
		KindDFFR: {0, 1},
		KindRam:  {0, 2},
	}
	for k, want := range cases {
		got := TriggerPorts(k)
		if len(got) != len(want) {
			t.Fatalf("%s: trig = %v, want %v", KindName(k), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: trig = %v, want %v", KindName(k), got, want)
			}
		}
	}
	for _, k := range []Kind{KindAnd, KindNot, KindLatch, KindMux2, KindAdd} {
		if TriggerPorts(k) != nil {
			t.Errorf("%s must not have trigger ports", KindName(k))
		}
	}
}

func TestControllingValue(t *testing.T) {
	cases := map[Kind]logic.State{
		KindAnd: logic.L, KindNand: logic.L,
		KindOr: logic.H, KindNor: logic.H,
	}
	for k, want := range cases {
		got, ok := ControllingValue(k)
		if !ok || got != want {
			t.Errorf("%s: controlling = %v, %v", KindName(k), got, ok)
		}
	}
	for _, k := range []Kind{KindXor, KindBuf, KindNot, KindMux2} {
		if _, ok := ControllingValue(k); ok {
			t.Errorf("%s must have no controlling value", KindName(k))
		}
	}
	if !Controlled(logic.V(4, 0), logic.L) {
		t.Error("all-zero bus is controlled low")
	}
	if Controlled(logic.V(4, 2), logic.L) {
		t.Error("mixed bus is not controlled")
	}
	if !Controlled(logic.V(1, 1), logic.H) {
		t.Error("one bit high is controlled high")
	}
	if Controlled(logic.AllX(2), logic.L) {
		t.Error("X bus is not controlled")
	}
}

func TestTotalCostAndAccessors(t *testing.T) {
	b := NewBuilder("tc")
	a := b.Bit("a")
	y := b.Bit("y")
	if b.Width(a) != 1 {
		t.Error("Width broken")
	}
	if id, ok := b.Lookup("a"); !ok || id != a {
		t.Error("Lookup broken")
	}
	if _, ok := b.Lookup("nope"); ok {
		t.Error("Lookup of missing node")
	}
	b.Const("cg", a, logic.V(1, 0))
	b.Gate(KindNot, "inv", 1, y, a)
	c := b.MustBuild()
	if c.TotalCost() != DefaultCost(KindConst)+DefaultCost(KindNot) {
		t.Errorf("TotalCost = %d", c.TotalCost())
	}
}

// TestKindCheckErrors exercises every kind-specific validation branch.
func TestKindCheckErrors(t *testing.T) {
	v1 := logic.V(1, 0)
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"mux2 sel width", func(b *Builder) {
			s := b.Node("s", 2)
			a, c, y := b.Bit("a"), b.Bit("c"), b.Bit("y")
			b.Const("g1", s, logic.V(2, 0))
			b.Const("g2", a, v1)
			b.Const("g3", c, v1)
			b.AddElement(KindMux2, "m", 1, []NodeID{y}, []NodeID{s, a, c}, Params{})
		}, "select must be 1 bit"},
		{"mux2 data width", func(b *Builder) {
			s, a := b.Bit("s"), b.Node("a", 2)
			c, y := b.Bit("c"), b.Bit("y")
			b.Const("g1", s, v1)
			b.Const("g2", a, logic.V(2, 0))
			b.Const("g3", c, v1)
			b.AddElement(KindMux2, "m", 1, []NodeID{y}, []NodeID{s, a, c}, Params{})
		}, "data widths"},
		{"dff clock width", func(b *Builder) {
			clk := b.Node("clk", 2)
			d, q := b.Bit("d"), b.Bit("q")
			b.Const("g1", clk, logic.V(2, 0))
			b.Const("g2", d, v1)
			b.AddElement(KindDFF, "f", 1, []NodeID{q}, []NodeID{clk, d}, Params{})
		}, "clock/enable must be 1 bit"},
		{"dff data width", func(b *Builder) {
			clk, d := b.Bit("clk"), b.Node("d", 2)
			q := b.Bit("q")
			b.Const("g1", clk, v1)
			b.Const("g2", d, logic.V(2, 0))
			b.AddElement(KindDFF, "f", 1, []NodeID{q}, []NodeID{clk, d}, Params{})
		}, "data width"},
		{"dffr init width", func(b *Builder) {
			clk, rst := b.Bit("clk"), b.Bit("rst")
			d, q := b.Node("d", 2), b.Node("q", 2)
			b.Const("g1", clk, v1)
			b.Const("g2", rst, v1)
			b.Const("g3", d, logic.V(2, 0))
			b.AddElement(KindDFFR, "f", 1, []NodeID{q}, []NodeID{clk, rst, d},
				Params{Init: v1})
		}, "reset value width"},
		{"const width", func(b *Builder) {
			y := b.Node("y", 2)
			b.AddElement(KindConst, "k", 1, []NodeID{y}, nil, Params{Init: v1})
		}, "const value width"},
		{"addc carry width", func(b *Builder) {
			a, c2 := b.Node("a", 4), b.Node("c2", 4)
			cin := b.Node("cin", 2)
			sum, cout := b.Node("sum", 4), b.Bit("cout")
			b.Const("g1", a, logic.V(4, 0))
			b.Const("g2", c2, logic.V(4, 0))
			b.Const("g3", cin, logic.V(2, 0))
			b.AddElement(KindAddC, "ad", 1, []NodeID{sum, cout}, []NodeID{a, c2, cin}, Params{})
		}, "carry ports"},
		{"cmp operand widths", func(b *Builder) {
			a, c2, y := b.Node("a", 4), b.Node("c2", 2), b.Bit("y")
			b.Const("g1", a, logic.V(4, 0))
			b.Const("g2", c2, logic.V(2, 0))
			b.AddElement(KindEq, "e", 1, []NodeID{y}, []NodeID{a, c2}, Params{})
		}, "operand widths differ"},
		{"cmp output width", func(b *Builder) {
			a, c2, y := b.Node("a", 4), b.Node("c2", 4), b.Node("y", 2)
			b.Const("g1", a, logic.V(4, 0))
			b.Const("g2", c2, logic.V(4, 0))
			b.AddElement(KindLtU, "e", 1, []NodeID{y}, []NodeID{a, c2}, Params{})
		}, "comparison output"},
		{"slice range", func(b *Builder) {
			a, y := b.Node("a", 4), b.Node("y", 4)
			b.Const("g1", a, logic.V(4, 0))
			b.AddElement(KindSlice, "s", 1, []NodeID{y}, []NodeID{a}, Params{Lo: 2})
		}, "slice"},
		{"ext narrows", func(b *Builder) {
			a, y := b.Node("a", 4), b.Node("y", 2)
			b.Const("g1", a, logic.V(4, 0))
			b.AddElement(KindExt, "x", 1, []NodeID{y}, []NodeID{a}, Params{})
		}, "extension narrows"},
		{"concat widths", func(b *Builder) {
			a, c2, y := b.Node("a", 4), b.Node("c2", 4), b.Node("y", 9)
			b.Const("g1", a, logic.V(4, 0))
			b.Const("g2", c2, logic.V(4, 0))
			b.AddElement(KindConcat, "cc", 1, []NodeID{y}, []NodeID{a, c2}, Params{})
		}, "input widths"},
		{"negative shift", func(b *Builder) {
			a, y := b.Node("a", 4), b.Node("y", 4)
			b.Const("g1", a, logic.V(4, 0))
			b.AddElement(KindShlK, "sh", 1, []NodeID{y}, []NodeID{a}, Params{Shift: -1})
		}, "negative shift"},
		{"reduction output", func(b *Builder) {
			a, y := b.Node("a", 4), b.Node("y", 2)
			b.Const("g1", a, logic.V(4, 0))
			b.AddElement(KindRedAnd, "r", 1, []NodeID{y}, []NodeID{a}, Params{})
		}, "reduction output"},
		{"alu op width", func(b *Builder) {
			op := b.Node("op", 2)
			a, c2, y := b.Node("a", 4), b.Node("c2", 4), b.Node("y", 4)
			b.Const("g1", op, logic.V(2, 0))
			b.Const("g2", a, logic.V(4, 0))
			b.Const("g3", c2, logic.V(4, 0))
			b.AddElement(KindAlu, "u", 1, []NodeID{y}, []NodeID{op, a, c2}, Params{})
		}, "op input must be 3 bits"},
		{"rom empty", func(b *Builder) {
			a, y := b.Node("a", 4), b.Node("y", 8)
			b.Const("g1", a, logic.V(4, 0))
			b.AddElement(KindRom, "r", 1, []NodeID{y}, []NodeID{a}, Params{})
		}, "no contents"},
		{"ram address width", func(b *Builder) {
			clk, we := b.Bit("clk"), b.Bit("we")
			a, d, y := b.Node("a", 24), b.Node("d", 8), b.Node("y", 8)
			b.Const("g1", clk, v1)
			b.Const("g2", we, v1)
			b.Const("g3", a, logic.V(24, 0))
			b.Const("g4", d, logic.V(8, 0))
			b.AddElement(KindRam, "r", 1, []NodeID{y}, []NodeID{clk, we, a, d}, Params{})
		}, "too large"},
		{"clock period", func(b *Builder) {
			y := b.Bit("y")
			b.Clock("c", y, 1, 0, 0)
		}, "period"},
		{"clock duty", func(b *Builder) {
			y := b.Bit("y")
			b.Clock("c", y, 10, 0, 12)
		}, "duty"},
		{"clock phase", func(b *Builder) {
			y := b.Bit("y")
			b.Clock("c", y, 10, -2, 0)
		}, "negative phase"},
		{"wave mismatch", func(b *Builder) {
			y := b.Bit("y")
			b.AddElement(KindWave, "w", 1, []NodeID{y}, nil,
				Params{Times: []Time{0, 1}, Values: []logic.Value{v1}})
		}, "length mismatch"},
		{"wave empty", func(b *Builder) {
			y := b.Bit("y")
			b.AddElement(KindWave, "w", 1, []NodeID{y}, nil, Params{})
		}, "empty waveform"},
		{"wave unsorted", func(b *Builder) {
			y := b.Bit("y")
			b.Wave("w", y, []Time{5, 3}, []logic.Value{v1, v1})
		}, "strictly increasing"},
		{"wave negative time", func(b *Builder) {
			y := b.Bit("y")
			b.Wave("w", y, []Time{-1}, []logic.Value{v1})
		}, "negative time"},
		{"wave value width", func(b *Builder) {
			y := b.Node("y", 2)
			b.Wave("w", y, []Time{0}, []logic.Value{v1})
		}, "width"},
		{"rand period", func(b *Builder) {
			y := b.Bit("y")
			b.Rand("r", y, 0, 1)
		}, "period"},
	}
	for _, tc := range cases {
		b := NewBuilder("bad-" + tc.name)
		tc.build(b)
		_, err := b.Build()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
