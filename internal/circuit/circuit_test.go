package circuit

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"parsim/internal/logic"
)

// buildOne builds a single-element circuit with generator-driven inputs so
// element evaluation can be tested in isolation.
func buildOne(t *testing.T, kind Kind, inWidths []int, outWidths []int, params Params) (*Circuit, *Element) {
	t.Helper()
	b := NewBuilder("one")
	ins := make([]NodeID, len(inWidths))
	for i, w := range inWidths {
		n := b.Node(nodeName("in", i), w)
		b.Const(nodeName("drv", i), n, logic.AllX(w))
		ins[i] = n
	}
	outs := make([]NodeID, len(outWidths))
	for i, w := range outWidths {
		outs[i] = b.Node(nodeName("out", i), w)
	}
	b.AddElement(kind, "dut", 1, outs, ins, params)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return c, &c.Elems[c.ElByName["dut"]]
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// evalOnce evaluates an element against explicit inputs with fresh state.
func evalOnce(el *Element, in ...logic.Value) []logic.Value {
	state := make([]logic.Value, el.NumStateVals())
	el.InitState(state)
	out := make([]logic.Value, len(el.Out))
	el.Eval(in, state, out)
	return out
}

func TestGateEval(t *testing.T) {
	one, zero := logic.V(1, 1), logic.V(1, 0)
	cases := []struct {
		kind Kind
		in   []logic.Value
		want logic.Value
	}{
		{KindBuf, []logic.Value{one}, one},
		{KindNot, []logic.Value{one}, zero},
		{KindAnd, []logic.Value{one, one, zero}, zero},
		{KindAnd, []logic.Value{one, one, one}, one},
		{KindOr, []logic.Value{zero, zero, one}, one},
		{KindNand, []logic.Value{one, one}, zero},
		{KindNor, []logic.Value{zero, zero}, one},
		{KindXor, []logic.Value{one, one, one}, one},
		{KindXnor, []logic.Value{one, zero}, zero},
	}
	for _, tc := range cases {
		widths := make([]int, len(tc.in))
		for i := range widths {
			widths[i] = 1
		}
		_, el := buildOne(t, tc.kind, widths, []int{1}, Params{})
		got := evalOnce(el, tc.in...)[0]
		if !got.Equal(tc.want) {
			t.Errorf("%s%v = %v, want %v", KindName(tc.kind), tc.in, got, tc.want)
		}
	}
}

func TestMux2Eval(t *testing.T) {
	_, el := buildOne(t, KindMux2, []int{1, 8, 8}, []int{8}, Params{})
	a, b := logic.V(8, 0x11), logic.V(8, 0x22)
	if got := evalOnce(el, logic.V(1, 0), a, b)[0]; !got.Equal(a) {
		t.Errorf("mux sel=0 = %v", got)
	}
	if got := evalOnce(el, logic.V(1, 1), a, b)[0]; !got.Equal(b) {
		t.Errorf("mux sel=1 = %v", got)
	}
}

func TestDFFEdgeBehaviour(t *testing.T) {
	_, el := buildOne(t, KindDFF, []int{1, 4}, []int{4}, Params{})
	state := make([]logic.Value, el.NumStateVals())
	el.InitState(state)
	out := make([]logic.Value, 1)

	// Initially q is X.
	el.Eval([]logic.Value{logic.V(1, 0), logic.V(4, 5)}, state, out)
	if !out[0].Equal(logic.AllX(4)) {
		t.Fatalf("q before first edge = %v, want X", out[0])
	}
	// Rising edge captures d.
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(4, 5)}, state, out)
	if got := out[0].MustUint(); got != 5 {
		t.Fatalf("q after edge = %d, want 5", got)
	}
	// High clock with changing d does not capture.
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(4, 9)}, state, out)
	if got := out[0].MustUint(); got != 5 {
		t.Fatalf("q while high = %d, want 5", got)
	}
	// Falling edge does not capture.
	el.Eval([]logic.Value{logic.V(1, 0), logic.V(4, 9)}, state, out)
	if got := out[0].MustUint(); got != 5 {
		t.Fatalf("q after fall = %d, want 5", got)
	}
	// Second rising edge captures the new value.
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(4, 9)}, state, out)
	if got := out[0].MustUint(); got != 9 {
		t.Fatalf("q after 2nd edge = %d, want 9", got)
	}
}

func TestDFFXClockDoesNotCapture(t *testing.T) {
	_, el := buildOne(t, KindDFF, []int{1, 4}, []int{4}, Params{})
	state := make([]logic.Value, el.NumStateVals())
	el.InitState(state)
	out := make([]logic.Value, 1)
	// X -> 1 is not a clean rising edge.
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(4, 5)}, state, out)
	if !out[0].Equal(logic.AllX(4)) {
		t.Fatalf("q after X->1 = %v, want X", out[0])
	}
	// Now 1 -> 0 -> 1 is a clean edge.
	el.Eval([]logic.Value{logic.V(1, 0), logic.V(4, 5)}, state, out)
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(4, 5)}, state, out)
	if got := out[0].MustUint(); got != 5 {
		t.Fatalf("q after clean edge = %d, want 5", got)
	}
}

func TestDFFREval(t *testing.T) {
	_, el := buildOne(t, KindDFFR, []int{1, 1, 4}, []int{4},
		Params{Init: logic.V(4, 0)})
	state := make([]logic.Value, el.NumStateVals())
	el.InitState(state)
	out := make([]logic.Value, 1)
	// Reset forces the init value even without a clock edge.
	el.Eval([]logic.Value{logic.V(1, 0), logic.V(1, 1), logic.V(4, 7)}, state, out)
	if got := out[0].MustUint(); got != 0 {
		t.Fatalf("q under reset = %d, want 0", got)
	}
	// Release reset, clock in a value.
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(1, 0), logic.V(4, 7)}, state, out)
	if got := out[0].MustUint(); got != 7 {
		t.Fatalf("q after edge = %d, want 7", got)
	}
	// Reset dominates a simultaneous edge.
	el.Eval([]logic.Value{logic.V(1, 0), logic.V(1, 0), logic.V(4, 3)}, state, out)
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(1, 1), logic.V(4, 3)}, state, out)
	if got := out[0].MustUint(); got != 0 {
		t.Fatalf("q with reset+edge = %d, want 0", got)
	}
}

func TestLatchEval(t *testing.T) {
	_, el := buildOne(t, KindLatch, []int{1, 4}, []int{4}, Params{})
	state := make([]logic.Value, el.NumStateVals())
	el.InitState(state)
	out := make([]logic.Value, 1)
	el.Eval([]logic.Value{logic.V(1, 1), logic.V(4, 6)}, state, out)
	if got := out[0].MustUint(); got != 6 {
		t.Fatalf("transparent latch = %d, want 6", got)
	}
	el.Eval([]logic.Value{logic.V(1, 0), logic.V(4, 9)}, state, out)
	if got := out[0].MustUint(); got != 6 {
		t.Fatalf("opaque latch = %d, want 6", got)
	}
}

func TestTriAndRes2(t *testing.T) {
	_, tri := buildOne(t, KindTri, []int{1, 4}, []int{4}, Params{})
	if got := evalOnce(tri, logic.V(1, 0), logic.V(4, 5))[0]; !got.Equal(logic.AllZ(4)) {
		t.Errorf("tri disabled = %v, want Z", got)
	}
	if got := evalOnce(tri, logic.V(1, 1), logic.V(4, 5))[0]; got.MustUint() != 5 {
		t.Errorf("tri enabled = %v", got)
	}
	if got := evalOnce(tri, logic.AllX(1), logic.V(4, 5))[0]; !got.Equal(logic.AllX(4)) {
		t.Errorf("tri with X enable = %v, want X", got)
	}
	_, res := buildOne(t, KindRes2, []int{4, 4}, []int{4}, Params{})
	if got := evalOnce(res, logic.AllZ(4), logic.V(4, 5))[0]; got.MustUint() != 5 {
		t.Errorf("res2(Z, 5) = %v", got)
	}
}

func TestArithmeticElements(t *testing.T) {
	_, add := buildOne(t, KindAdd, []int{8, 8}, []int{8}, Params{})
	if got := evalOnce(add, logic.V(8, 200), logic.V(8, 100))[0].MustUint(); got != 44 {
		t.Errorf("add = %d", got)
	}
	_, addc := buildOne(t, KindAddC, []int{4, 4, 1}, []int{4, 1}, Params{})
	outs := evalOnce(addc, logic.V(4, 9), logic.V(4, 8), logic.V(1, 1))
	if outs[0].MustUint() != 2 || outs[1].MustUint() != 1 {
		t.Errorf("addc = %v carry %v", outs[0], outs[1])
	}
	_, sub := buildOne(t, KindSub, []int{8, 8}, []int{8}, Params{})
	if got := evalOnce(sub, logic.V(8, 5), logic.V(8, 7))[0].MustUint(); got != 254 {
		t.Errorf("sub = %d", got)
	}
	_, mul := buildOne(t, KindMul, []int{8, 8}, []int{16}, Params{})
	if got := evalOnce(mul, logic.V(8, 20), logic.V(8, 30))[0].MustUint(); got != 600 {
		t.Errorf("mul = %d", got)
	}
	_, eq := buildOne(t, KindEq, []int{8, 8}, []int{1}, Params{})
	if got := evalOnce(eq, logic.V(8, 5), logic.V(8, 5))[0].State(); got != logic.H {
		t.Errorf("eq = %v", got)
	}
	_, lt := buildOne(t, KindLtU, []int{8, 8}, []int{1}, Params{})
	if got := evalOnce(lt, logic.V(8, 5), logic.V(8, 7))[0].State(); got != logic.H {
		t.Errorf("ltu(5,7) = %v", got)
	}
	if got := evalOnce(lt, logic.V(8, 7), logic.V(8, 5))[0].State(); got != logic.L {
		t.Errorf("ltu(7,5) = %v", got)
	}
	if got := evalOnce(lt, logic.AllX(8), logic.V(8, 5))[0].State(); got != logic.X {
		t.Errorf("ltu(X,5) = %v", got)
	}
}

func TestBitSelectElements(t *testing.T) {
	_, sl := buildOne(t, KindSlice, []int{8}, []int{4}, Params{Lo: 4})
	if got := evalOnce(sl, logic.V(8, 0xA5))[0].MustUint(); got != 0xA {
		t.Errorf("slice = %x", got)
	}
	_, cc := buildOne(t, KindConcat, []int{4, 4}, []int{8}, Params{})
	if got := evalOnce(cc, logic.V(4, 0x5), logic.V(4, 0xA))[0].MustUint(); got != 0xA5 {
		t.Errorf("concat = %x", got)
	}
	_, shl := buildOne(t, KindShlK, []int{8}, []int{8}, Params{Shift: 3})
	if got := evalOnce(shl, logic.V(8, 1))[0].MustUint(); got != 8 {
		t.Errorf("shlk = %d", got)
	}
	_, shr := buildOne(t, KindShrK, []int{8}, []int{8}, Params{Shift: 3})
	if got := evalOnce(shr, logic.V(8, 8))[0].MustUint(); got != 1 {
		t.Errorf("shrk = %d", got)
	}
	_, ra := buildOne(t, KindRedAnd, []int{4}, []int{1}, Params{})
	if got := evalOnce(ra, logic.V(4, 0xF))[0].State(); got != logic.H {
		t.Errorf("redand = %v", got)
	}
	_, ro := buildOne(t, KindRedOr, []int{4}, []int{1}, Params{})
	if got := evalOnce(ro, logic.V(4, 0))[0].State(); got != logic.L {
		t.Errorf("redor = %v", got)
	}
	_, rx := buildOne(t, KindRedXor, []int{4}, []int{1}, Params{})
	if got := evalOnce(rx, logic.V(4, 0b0111))[0].State(); got != logic.H {
		t.Errorf("redxor = %v", got)
	}
}

func TestAluEval(t *testing.T) {
	_, alu := buildOne(t, KindAlu, []int{3, 8, 8}, []int{8}, Params{})
	a, b := logic.V(8, 12), logic.V(8, 10)
	cases := map[uint64]uint64{
		AluAdd:   22,
		AluSub:   2,
		AluAnd:   8,
		AluOr:    14,
		AluXor:   6,
		AluShl1:  24,
		AluShr1:  6,
		AluPassB: 10,
	}
	for op, want := range cases {
		got := evalOnce(alu, logic.V(3, op), a, b)[0].MustUint()
		if got != want {
			t.Errorf("alu op %d = %d, want %d", op, got, want)
		}
	}
	if got := evalOnce(alu, logic.AllX(3), a, b)[0]; !got.Equal(logic.AllX(8)) {
		t.Errorf("alu with X op = %v", got)
	}
}

func TestRomEval(t *testing.T) {
	_, rom := buildOne(t, KindRom, []int{2}, []int{8},
		Params{Mem: []uint64{10, 20, 30, 40}})
	for addr, want := range []uint64{10, 20, 30, 40} {
		got := evalOnce(rom, logic.V(2, uint64(addr)))[0].MustUint()
		if got != want {
			t.Errorf("rom[%d] = %d, want %d", addr, got, want)
		}
	}
	if got := evalOnce(rom, logic.AllX(2))[0]; !got.Equal(logic.AllX(8)) {
		t.Errorf("rom[X] = %v", got)
	}
}

func TestRamEval(t *testing.T) {
	_, ram := buildOne(t, KindRam, []int{1, 1, 3, 8}, []int{8}, Params{})
	if ram.NumStateVals() != 1+8 {
		t.Fatalf("ram state len = %d", ram.NumStateVals())
	}
	state := make([]logic.Value, ram.NumStateVals())
	ram.InitState(state)
	out := make([]logic.Value, 1)
	lo, hi := logic.V(1, 0), logic.V(1, 1)
	addr := logic.V(3, 5)
	// Uninitialised read is X.
	ram.Eval([]logic.Value{lo, lo, addr, logic.V(8, 0)}, state, out)
	if !out[0].Equal(logic.AllX(8)) {
		t.Fatalf("fresh read = %v", out[0])
	}
	// Write 42 on a rising edge with we=1.
	ram.Eval([]logic.Value{hi, hi, addr, logic.V(8, 42)}, state, out)
	if got := out[0].MustUint(); got != 42 {
		t.Fatalf("read after write = %v", out[0])
	}
	// No write when we=0.
	ram.Eval([]logic.Value{lo, lo, addr, logic.V(8, 9)}, state, out)
	ram.Eval([]logic.Value{hi, lo, addr, logic.V(8, 9)}, state, out)
	if got := out[0].MustUint(); got != 42 {
		t.Fatalf("read after we=0 edge = %v", out[0])
	}
}

func TestRamInitialContents(t *testing.T) {
	_, ram := buildOne(t, KindRam, []int{1, 1, 2, 8}, []int{8},
		Params{Mem: []uint64{7, 8}})
	state := make([]logic.Value, ram.NumStateVals())
	ram.InitState(state)
	out := make([]logic.Value, 1)
	ram.Eval([]logic.Value{logic.V(1, 0), logic.V(1, 0), logic.V(2, 1), logic.V(8, 0)}, state, out)
	if got := out[0].MustUint(); got != 8 {
		t.Fatalf("initialised ram[1] = %v", out[0])
	}
	ram.Eval([]logic.Value{logic.V(1, 0), logic.V(1, 0), logic.V(2, 3), logic.V(8, 0)}, state, out)
	if !out[0].Equal(logic.AllX(8)) {
		t.Fatalf("ram[3] beyond init = %v", out[0])
	}
}

func TestClockWaveform(t *testing.T) {
	b := NewBuilder("clk")
	n := b.Bit("clk")
	b.Clock("gen", n, 10, 3, 4)
	c := b.MustBuild()
	el := &c.Elems[0]
	// phase 3, high for 4, low for 6.
	wants := map[Time]logic.State{
		0: logic.L, 2: logic.L, 3: logic.H, 6: logic.H, 7: logic.L,
		12: logic.L, 13: logic.H, 16: logic.H, 17: logic.L,
	}
	for tm, want := range wants {
		if got := el.GenValueAt(tm).State(); got != want {
			t.Errorf("clock(%d) = %v, want %v", tm, got, want)
		}
	}
	// Next changes: from 0 -> 3 (rise), from 3 -> 7 (fall), from 7 -> 13.
	steps := map[Time]Time{0: 3, 3: 7, 6: 7, 7: 13, 13: 17}
	for tm, want := range steps {
		got, ok := el.GenNextChange(tm)
		if !ok || got != want {
			t.Errorf("clock next after %d = %d (%v), want %d", tm, got, ok, want)
		}
	}
}

func TestWaveWaveform(t *testing.T) {
	b := NewBuilder("wave")
	n := b.Node("w", 4)
	b.Wave("gen", n, []Time{2, 5, 9},
		[]logic.Value{logic.V(4, 1), logic.V(4, 2), logic.V(4, 3)})
	c := b.MustBuild()
	el := &c.Elems[0]
	if got := el.GenValueAt(0); !got.Equal(logic.AllX(4)) {
		t.Errorf("wave(0) = %v, want X", got)
	}
	wants := map[Time]uint64{2: 1, 4: 1, 5: 2, 8: 2, 9: 3, 100: 3}
	for tm, want := range wants {
		if got := el.GenValueAt(tm).MustUint(); got != want {
			t.Errorf("wave(%d) = %d, want %d", tm, got, want)
		}
	}
	if next, ok := el.GenNextChange(0); !ok || next != 2 {
		t.Errorf("next after 0 = %d %v", next, ok)
	}
	if next, ok := el.GenNextChange(5); !ok || next != 9 {
		t.Errorf("next after 5 = %d %v", next, ok)
	}
	if _, ok := el.GenNextChange(9); ok {
		t.Error("wave must be constant after last time")
	}
}

func TestRandWaveform(t *testing.T) {
	b := NewBuilder("rand")
	n := b.Node("r", 16)
	b.Rand("gen", n, 5, 42)
	c := b.MustBuild()
	el := &c.Elems[0]
	// Stable within a period, reproducible across calls.
	if !el.GenValueAt(0).Equal(el.GenValueAt(4)) {
		t.Error("rand value must be stable within a period")
	}
	if !el.GenValueAt(7).Equal(el.GenValueAt(9)) {
		t.Error("rand value must be stable within second period")
	}
	if next, ok := el.GenNextChange(3); !ok || next != 5 {
		t.Errorf("rand next after 3 = %d %v", next, ok)
	}
	// Different seeds give different sequences (overwhelmingly likely).
	b2 := NewBuilder("rand2")
	n2 := b2.Node("r", 16)
	b2.Rand("gen", n2, 5, 43)
	el2 := &b2.MustBuild().Elems[0]
	same := 0
	for i := Time(0); i < 50; i += 5 {
		if el.GenValueAt(i).Equal(el2.GenValueAt(i)) {
			same++
		}
	}
	if same > 3 {
		t.Errorf("different seeds agree on %d/10 periods", same)
	}
}

func TestQuickClockConsistency(t *testing.T) {
	// Property: the value is constant on [t, NextChange(t)) and differs at
	// NextChange(t).
	f := func(periodRaw, phaseRaw, tRaw uint16) bool {
		period := Time(periodRaw%100) + 2
		phase := Time(phaseRaw % 50)
		p := Params{Period: period, Phase: phase}
		tm := Time(tRaw % 500)
		next := clockNextChange(&p, tm)
		if next <= tm {
			return false
		}
		v := clockValueAt(&p, tm)
		for x := tm; x < next; x++ {
			if !clockValueAt(&p, x).Equal(v) {
				return false
			}
		}
		return !clockValueAt(&p, next).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderValidation(t *testing.T) {
	t.Run("undriven node", func(t *testing.T) {
		b := NewBuilder("bad")
		a := b.Bit("a")
		y := b.Bit("y")
		b.Gate(KindNot, "g", 1, y, a)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no driver") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("double driver", func(t *testing.T) {
		b := NewBuilder("bad")
		y := b.Bit("y")
		b.Const("c1", y, logic.V(1, 0))
		b.Const("c2", y, logic.V(1, 1))
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "driven by both") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("width mismatch", func(t *testing.T) {
		b := NewBuilder("bad")
		a := b.Node("a", 2)
		bn := b.Bit("b")
		y := b.Bit("y")
		b.Const("ca", a, logic.V(2, 0))
		b.Const("cb", bn, logic.V(1, 0))
		b.Gate(KindAnd, "g", 1, y, a, bn)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "width") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("wrong port count", func(t *testing.T) {
		b := NewBuilder("bad")
		a := b.Bit("a")
		y := b.Bit("y")
		b.Const("ca", a, logic.V(1, 0))
		b.AddElement(KindMux2, "m", 1, []NodeID{y}, []NodeID{a}, Params{})
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "exactly 3 inputs") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("duplicate element name", func(t *testing.T) {
		b := NewBuilder("bad")
		y := b.Bit("y")
		z := b.Bit("z")
		b.Const("c", y, logic.V(1, 0))
		b.Const("c", z, logic.V(1, 0))
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "declared twice") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("negative delay", func(t *testing.T) {
		b := NewBuilder("bad")
		a := b.Bit("a")
		y := b.Bit("y")
		b.Const("ca", a, logic.V(1, 0))
		b.Gate(KindNot, "g", -1, y, a)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "delay") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("zero delay builds", func(t *testing.T) {
		// Zero delay is representable (the static analyzer, not the
		// builder, polices zero-delay cycles).
		b := NewBuilder("zd")
		a := b.Bit("a")
		y := b.Bit("y")
		b.Const("ca", a, logic.V(1, 0))
		b.Gate(KindNot, "g", 0, y, a)
		c, err := b.Build()
		if err != nil {
			t.Fatalf("zero-delay circuit must build: %v", err)
		}
		if d := c.Elems[c.ElByName["g"]].Delay; d != 0 {
			t.Errorf("delay = %d, want 0", d)
		}
	})
	t.Run("all errors aggregated", func(t *testing.T) {
		b := NewBuilder("bad")
		a := b.Bit("a")
		y := b.Bit("y")
		b.Const("ca", a, logic.V(1, 0))
		b.Gate(KindNot, "g", -1, y, a)  // negative delay
		b.Const("cy", y, logic.V(1, 0)) // y multiply driven
		_ = b.Node("orphan", 1)         // undriven node
		_, err := b.Build()
		if err == nil {
			t.Fatal("want error")
		}
		var agg *BuildErrors
		if !errors.As(err, &agg) {
			t.Fatalf("err %T is not *BuildErrors", err)
		}
		if len(agg.Errs) < 3 {
			t.Errorf("aggregated %d errors, want >= 3: %v", len(agg.Errs), err)
		}
		for _, want := range []string{"delay", "driven by both", "no driver"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error text misses %q: %v", want, err)
			}
		}
		// Element context (name and kind) must survive into each message.
		if !strings.Contains(err.Error(), `"g" (not)`) {
			t.Errorf("error text misses element context: %v", err)
		}
	})
	t.Run("node redeclared width", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Node("a", 2)
		b.Node("a", 3)
		b.Const("ca", b.Node("a", 2), logic.V(2, 0))
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "redeclared") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestCircuitAccessors(t *testing.T) {
	b := NewBuilder("acc")
	a := b.Bit("a")
	y := b.Bit("y")
	b.Clock("clkgen", a, 4, 0, 0)
	b.Gate(KindNot, "inv", 1, y, a)
	c := b.MustBuild()

	if c.Node("a").ID != a {
		t.Error("Node lookup failed")
	}
	if c.FindNode("nope") != nil {
		t.Error("FindNode on missing name must be nil")
	}
	if len(c.Generators()) != 1 {
		t.Errorf("generators = %d", len(c.Generators()))
	}
	if c.NumGates() != 1 {
		t.Errorf("NumGates = %d", c.NumGates())
	}
	s := c.Stats()
	if s.Gates != 1 || s.Generators != 1 || s.Nodes != 2 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(c.String(), "acc") {
		t.Errorf("String = %q", c.String())
	}
	// Fanout of node a contains the inverter's port 0.
	fo := c.Node("a").Fanout
	if len(fo) != 1 || fo[0].Elem != c.ElByName["inv"] || fo[0].Port != 0 {
		t.Errorf("fanout = %+v", fo)
	}
	defer func() {
		if recover() == nil {
			t.Error("Node on missing name must panic")
		}
	}()
	c.Node("missing")
}

func TestKindNames(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		name := KindName(k)
		if name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %d, %v", name, got, ok)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName(bogus) must fail")
	}
}
