package circuit

import (
	"sort"

	"parsim/internal/logic"
)

// Generator elements have no inputs: their output is a pure function of
// simulation time. That is exactly the property the asynchronous algorithm
// exploits ("the value of node 1 at any particular instant can be determined
// by calling the code that models gen for that particular instant"), and it
// also lets the event-driven simulators schedule generator changes lazily.

// GenValueAt returns the generator's output value at time t >= 0.
func (el *Element) GenValueAt(t Time) logic.Value {
	switch el.Kind {
	case KindConst:
		return el.Params.Init
	case KindClock:
		return clockValueAt(&el.Params, t)
	case KindWave:
		return waveValueAt(el, t)
	case KindRand:
		return randValueAt(el, t)
	case KindGray:
		return grayValueAt(el, t)
	}
	panic("circuit: GenValueAt on non-generator element " + el.Name)
}

// GenNextChange returns the earliest time strictly after t at which the
// generator's output may change. ok is false if the output is constant for
// all later time.
func (el *Element) GenNextChange(t Time) (next Time, ok bool) {
	switch el.Kind {
	case KindConst:
		return 0, false
	case KindClock:
		return clockNextChange(&el.Params, t), true
	case KindWave:
		return waveNextChange(el, t)
	case KindRand, KindGray:
		p := el.Params.Period
		if t < 0 {
			return 0, true
		}
		return (t/p + 1) * p, true
	}
	panic("circuit: GenNextChange on non-generator element " + el.Name)
}

func clockDuty(p *Params) Time {
	if p.Duty != 0 {
		return p.Duty
	}
	return p.Period / 2
}

func clockValueAt(p *Params, t Time) logic.Value {
	if t < p.Phase {
		return logic.V(1, 0)
	}
	if (t-p.Phase)%p.Period < clockDuty(p) {
		return logic.V(1, 1)
	}
	return logic.V(1, 0)
}

func clockNextChange(p *Params, t Time) Time {
	if t < p.Phase {
		return p.Phase
	}
	into := (t - p.Phase) % p.Period
	base := t - into
	if into < clockDuty(p) {
		return base + clockDuty(p) // next falling edge
	}
	return base + p.Period // next rising edge
}

func waveValueAt(el *Element, t Time) logic.Value {
	p := &el.Params
	// Index of the last change at or before t.
	i := sort.Search(len(p.Times), func(i int) bool { return p.Times[i] > t }) - 1
	if i < 0 {
		return logic.AllX(el.outWidth(0))
	}
	return p.Values[i]
}

func waveNextChange(el *Element, t Time) (Time, bool) {
	p := &el.Params
	i := sort.Search(len(p.Times), func(i int) bool { return p.Times[i] > t })
	if i == len(p.Times) {
		return 0, false
	}
	return p.Times[i], true
}

// splitmix64 is a tiny stateless PRNG: randValueAt needs random access by
// period index so that every simulator sees the same stimulus regardless of
// the order in which it asks.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// grayValueAt walks a Gray-code sequence: exactly one output bit changes at
// every period boundary, the lowest-activity stimulus possible. Seed offsets
// the starting point so several generators stay decorrelated.
func grayValueAt(el *Element, t Time) logic.Value {
	if t < 0 {
		return logic.AllX(el.outWidth(0))
	}
	idx := uint64(t/el.Params.Period) + uint64(el.Params.Seed)
	return logic.V(el.outWidth(0), idx^(idx>>1))
}

func randValueAt(el *Element, t Time) logic.Value {
	if t < 0 {
		return logic.AllX(el.outWidth(0))
	}
	idx := uint64(t / el.Params.Period)
	h := splitmix64(uint64(el.Params.Seed) ^ splitmix64(idx))
	return logic.V(el.outWidth(0), h)
}
