package circuit

import (
	"fmt"

	"parsim/internal/logic"
)

// NodeID identifies a node (net) within one Circuit.
type NodeID int32

// ElemID identifies an element within one Circuit.
type ElemID int32

// NoElem marks the absence of a driving element.
const NoElem ElemID = -1

// PortRef names one input port of one element; nodes keep these in their
// fan-out lists.
type PortRef struct {
	Elem ElemID
	Port int32
}

// Node is a net connecting one driver output to any number of element
// inputs. Every node starts the simulation at X, as the paper assumes.
type Node struct {
	ID         NodeID
	Name       string
	Width      int
	Driver     ElemID // element whose output drives this node
	DriverPort int    // which output port of the driver
	Fanout     []PortRef
}

// Element is one simulated component.
type Element struct {
	ID     ElemID
	Name   string
	Kind   Kind
	In     []NodeID
	Out    []NodeID
	Delay  Time // output delay in ticks, >= 1
	Cost   int64
	Params Params

	circ *Circuit // set by Build; lets eval funcs resolve port widths
}

func (el *Element) inWidth(i int) int  { return el.circ.Nodes[el.In[i]].Width }
func (el *Element) outWidth(i int) int { return el.circ.Nodes[el.Out[i]].Width }

// NumStateVals returns how many logic.Values of per-instance state the
// element needs. Simulators allocate this and pass it to Eval.
func (el *Element) NumStateVals() int { return info(el.Kind).stateLen(el) }

// InitState fills a freshly allocated state slice with the element's initial
// state: clocks previously X, register contents X (or Params.Mem for RAM).
func (el *Element) InitState(state []logic.Value) {
	switch el.Kind {
	case KindDFF:
		state[0] = logic.AllX(1)
		state[1] = logic.AllX(el.outWidth(0))
	case KindDFFR:
		state[0] = logic.AllX(1)
		state[1] = logic.AllX(el.outWidth(0))
	case KindLatch:
		state[0] = logic.AllX(el.outWidth(0))
	case KindRam:
		state[0] = logic.AllX(1)
		w := el.outWidth(0)
		for i := 1; i < len(state); i++ {
			if mem := el.Params.Mem; i-1 < len(mem) {
				state[i] = logic.V(w, mem[i-1])
			} else {
				state[i] = logic.AllX(w)
			}
		}
	}
}

// Eval runs the element's evaluation function. Generator kinds must use
// GenValueAt instead.
func (el *Element) Eval(in, state, out []logic.Value) {
	f := info(el.Kind).eval
	if f == nil {
		panic(fmt.Sprintf("circuit: element %q kind %s has no eval (generator?)", el.Name, KindName(el.Kind)))
	}
	f(el, in, state, out)
}

// IsGenerator reports whether the element is a stimulus source.
func (el *Element) IsGenerator() bool { return IsGenerator(el.Kind) }

// Circuit is an immutable, validated netlist. Build one with a Builder.
// Circuits are safe for concurrent read access; all mutable simulation state
// lives inside the simulators.
type Circuit struct {
	Name     string
	Nodes    []Node
	Elems    []Element
	ByName   map[string]NodeID // node lookup
	ElByName map[string]ElemID // element lookup

	generators []ElemID
	totalCost  int64
}

// Generators returns the IDs of all stimulus-generator elements.
func (c *Circuit) Generators() []ElemID { return c.generators }

// NumGates returns the number of non-generator elements; the paper reports
// circuit sizes this way ("about 5000 elements at the gate level").
func (c *Circuit) NumGates() int { return len(c.Elems) - len(c.generators) }

// TotalCost returns the summed evaluation cost of all elements, the
// denominator for utilisation computations in the machine model.
func (c *Circuit) TotalCost() int64 { return c.totalCost }

// Node returns the node with the given name, or panics: circuit wiring is
// programmatic, so a missing name is a construction bug.
func (c *Circuit) Node(name string) *Node {
	id, ok := c.ByName[name]
	if !ok {
		panic(fmt.Sprintf("circuit: no node named %q", name))
	}
	return &c.Nodes[id]
}

// FindNode returns the node with the given name, or nil.
func (c *Circuit) FindNode(name string) *Node {
	if id, ok := c.ByName[name]; ok {
		return &c.Nodes[id]
	}
	return nil
}

// Stats summarises a circuit for reporting.
type Stats struct {
	Nodes      int
	Elements   int
	Generators int
	Gates      int // 1-bit logic gates
	Functional int // everything else that is not a gate or generator
	MaxFanout  int
	TotalCost  int64
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{Nodes: len(c.Nodes), Elements: len(c.Elems), TotalCost: c.totalCost}
	for i := range c.Elems {
		el := &c.Elems[i]
		switch {
		case el.IsGenerator():
			s.Generators++
		case el.Kind >= KindBuf && el.Kind <= KindXnor:
			s.Gates++
		default:
			s.Functional++
		}
	}
	for i := range c.Nodes {
		if f := len(c.Nodes[i].Fanout); f > s.MaxFanout {
			s.MaxFanout = f
		}
	}
	return s
}

// String returns a one-line summary.
func (c *Circuit) String() string {
	s := c.Stats()
	return fmt.Sprintf("%s: %d nodes, %d elements (%d gates, %d functional, %d generators)",
		c.Name, s.Nodes, s.Elements, s.Gates, s.Functional, s.Generators)
}
