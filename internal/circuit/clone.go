package circuit

import "parsim/internal/logic"

// Clone returns an independent deep copy of the circuit: nodes (including
// fan-out lists), elements (including port lists and parameter slices) and
// the name-lookup maps are all duplicated, so nothing the copy reaches is
// shared mutably with the original. The element-kind registry — evaluation
// functions and port shapes — is immutable package state and is shared by
// construction.
//
// Clone exists for multi-tenant callers: a server running many simulations
// concurrently instantiates one clone per run, so no two runs ever observe
// the same *Circuit. See the facade's Simulate documentation for the
// sharing contract.
func (c *Circuit) Clone() *Circuit {
	cp := &Circuit{
		Name:      c.Name,
		Nodes:     append([]Node(nil), c.Nodes...),
		Elems:     append([]Element(nil), c.Elems...),
		ByName:    make(map[string]NodeID, len(c.ByName)),
		ElByName:  make(map[string]ElemID, len(c.ElByName)),
		totalCost: c.totalCost,
	}
	for name, id := range c.ByName {
		cp.ByName[name] = id
	}
	for name, id := range c.ElByName {
		cp.ElByName[name] = id
	}
	if c.generators != nil {
		cp.generators = append([]ElemID(nil), c.generators...)
	}
	for i := range cp.Nodes {
		nd := &cp.Nodes[i]
		if nd.Fanout != nil {
			nd.Fanout = append([]PortRef(nil), nd.Fanout...)
		}
	}
	for i := range cp.Elems {
		el := &cp.Elems[i]
		el.circ = cp
		if el.In != nil {
			el.In = append([]NodeID(nil), el.In...)
		}
		if el.Out != nil {
			el.Out = append([]NodeID(nil), el.Out...)
		}
		el.Params = el.Params.clone()
	}
	return cp
}

// clone deep-copies the slice-valued parameter fields; scalar fields copy
// by value.
func (p Params) clone() Params {
	if p.Times != nil {
		p.Times = append([]Time(nil), p.Times...)
	}
	if p.Values != nil {
		p.Values = append([]logic.Value(nil), p.Values...)
	}
	if p.Mem != nil {
		p.Mem = append([]uint64(nil), p.Mem...)
	}
	return p
}
