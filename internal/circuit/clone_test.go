package circuit

import (
	"testing"

	"parsim/internal/logic"
)

// cloneFixture builds a circuit exercising every slice-valued field Clone
// must duplicate: fan-out lists, element port lists, and the Times/Values/
// Mem parameter slices.
func cloneFixture(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("clonefix")
	clk := b.Bit("clk")
	d := b.Node("d", 4)
	q := b.Node("q", 4)
	w := b.Node("w", 4)
	rd := b.Node("rd", 4)
	addr := b.Node("addr", 2)
	b.Clock("osc", clk, 10, 0, 0)
	b.Wave("stim", d, []Time{0, 5, 9}, []logic.Value{logic.V(4, 1), logic.V(4, 2), logic.V(4, 3)})
	b.AddElement(KindDFF, "reg", 1, []NodeID{q}, []NodeID{clk, d}, Params{})
	b.Gate(KindNot, "inv", 1, w, q)
	b.AddElement(KindSlice, "sl", 1, []NodeID{addr}, []NodeID{w}, Params{Lo: 0})
	b.AddElement(KindRom, "rom", 1, []NodeID{rd}, []NodeID{addr}, Params{Mem: []uint64{7, 8, 9, 10}})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCloneIsDeep(t *testing.T) {
	c := cloneFixture(t)
	cp := c.Clone()

	if cp == c {
		t.Fatal("Clone returned the receiver")
	}
	// Mutate every slice/map the clone reaches; the original must not move.
	cp.Nodes[0].Name = "hijacked"
	cp.Nodes[c.ByName["q"]].Fanout[0].Port = 99
	cp.Elems[0].Delay = 1234
	romID := c.ElByName["rom"]
	cp.Elems[romID].Params.Mem[0] = 0xdead
	waveID := c.ElByName["stim"]
	cp.Elems[waveID].Params.Times[0] = 777
	cp.Elems[waveID].Params.Values[0] = logic.V(4, 15)
	cp.Elems[romID].In[0] = 0
	cp.ByName["phantom"] = 0
	cp.ElByName["phantom"] = 0
	cp.generators[0] = ElemID(3)

	if c.Nodes[0].Name == "hijacked" {
		t.Error("node slice shared")
	}
	if c.Nodes[c.ByName["q"]].Fanout[0].Port == 99 {
		t.Error("fanout slice shared")
	}
	if c.Elems[0].Delay == 1234 {
		t.Error("element slice shared")
	}
	if c.Elems[romID].Params.Mem[0] == 0xdead {
		t.Error("Params.Mem shared")
	}
	if c.Elems[waveID].Params.Times[0] == 777 {
		t.Error("Params.Times shared")
	}
	if c.Elems[waveID].Params.Values[0].Equal(logic.V(4, 15)) {
		t.Error("Params.Values shared")
	}
	if c.Elems[romID].In[0] == 0 {
		t.Error("element In slice shared")
	}
	if _, ok := c.ByName["phantom"]; ok {
		t.Error("ByName map shared")
	}
	if _, ok := c.ElByName["phantom"]; ok {
		t.Error("ElByName map shared")
	}
	if c.generators[0] == ElemID(3) {
		t.Error("generators slice shared")
	}
}

func TestCloneBackPointersAndDerivedState(t *testing.T) {
	c := cloneFixture(t)
	cp := c.Clone()

	for i := range cp.Elems {
		if cp.Elems[i].circ != cp {
			t.Fatalf("element %d back-pointer still aims at the original", i)
		}
	}
	if cp.TotalCost() != c.TotalCost() {
		t.Errorf("TotalCost %d != %d", cp.TotalCost(), c.TotalCost())
	}
	if len(cp.Generators()) != len(c.Generators()) {
		t.Errorf("generator count %d != %d", len(cp.Generators()), len(c.Generators()))
	}
	// The back-pointer is what port-width resolution runs through: an
	// evaluation on the clone must work end to end.
	romID := cp.ElByName["rom"]
	el := &cp.Elems[romID]
	out := make([]logic.Value, 1)
	el.Eval([]logic.Value{logic.V(2, 1)}, nil, out)
	if got, ok := out[0].Uint(); !ok || got != 8 {
		t.Errorf("rom eval on clone = %v, want 8", out[0])
	}
	// Generator evaluation resolves widths through the back-pointer too.
	waveID := cp.ElByName["stim"]
	if v := cp.Elems[waveID].GenValueAt(6); !v.Equal(logic.V(4, 2)) {
		t.Errorf("wave value on clone = %v, want 4'h2", v)
	}
}

func TestCloneStats(t *testing.T) {
	c := cloneFixture(t)
	cp := c.Clone()
	if c.Stats() != cp.Stats() {
		t.Errorf("Stats differ: %+v vs %+v", c.Stats(), cp.Stats())
	}
	if c.String() != cp.String() {
		t.Errorf("String differs: %q vs %q", c.String(), cp.String())
	}
}
