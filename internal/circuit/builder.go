package circuit

import (
	"fmt"
	"strings"

	"parsim/internal/logic"
)

// Builder assembles a Circuit incrementally. It is not safe for concurrent
// use. All errors are accumulated and reported by Build, so construction
// code stays linear.
type Builder struct {
	name  string
	nodes []Node
	elems []Element
	byN   map[string]NodeID
	byE   map[string]ElemID
	errs  []error
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name: name,
		byN:  make(map[string]NodeID),
		byE:  make(map[string]ElemID),
	}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Node declares a node with the given name and width and returns its ID.
// Declaring the same name twice with the same width returns the existing
// node, so generators can wire by name without bookkeeping.
func (b *Builder) Node(name string, width int) NodeID {
	if id, ok := b.byN[name]; ok {
		if b.nodes[id].Width != width {
			b.errorf("node %q redeclared with width %d (was %d)", name, width, b.nodes[id].Width)
		}
		return id
	}
	if width < 1 || width > logic.MaxWidth {
		b.errorf("node %q width %d out of range", name, width)
		width = 1
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Name: name, Width: width, Driver: NoElem})
	b.byN[name] = id
	return id
}

// Bit declares (or returns) the 1-bit node with the given name.
func (b *Builder) Bit(name string) NodeID { return b.Node(name, 1) }

// Width returns the declared width of a node.
func (b *Builder) Width(n NodeID) int { return b.nodes[n].Width }

// Lookup returns the node with the given name, if declared.
func (b *Builder) Lookup(name string) (NodeID, bool) {
	id, ok := b.byN[name]
	return id, ok
}

// AddElement declares an element. Outputs and inputs are node IDs from
// Node. Delay must be >= 0 ticks; zero-delay elements build but are
// hazardous (a zero-delay combinational cycle livelocks the asynchronous
// engines), which the static analyzer in internal/analyze reports and the
// engines' Lint modes refuse. The element's evaluation cost starts at the
// kind's default (DefaultCost) and may be adjusted on the built circuit
// for cost-model experiments.
func (b *Builder) AddElement(kind Kind, name string, delay Time, outs, ins []NodeID, params Params) ElemID {
	if _, ok := b.byE[name]; ok {
		b.errorf("element %q (%s): declared twice", name, KindName(kind))
	}
	if delay < 0 {
		b.errorf("element %q (%s): negative delay %d", name, KindName(kind), delay)
		delay = 1
	}
	id := ElemID(len(b.elems))
	el := Element{
		ID:     id,
		Name:   name,
		Kind:   kind,
		In:     append([]NodeID(nil), ins...),
		Out:    append([]NodeID(nil), outs...),
		Delay:  delay,
		Cost:   DefaultCost(kind),
		Params: params,
	}
	b.elems = append(b.elems, el)
	b.byE[name] = id
	for port, n := range outs {
		nd := &b.nodes[n]
		if nd.Driver != NoElem {
			prev := &b.elems[nd.Driver]
			b.errorf("node %q driven by both %q (%s) and %q (%s)",
				nd.Name, prev.Name, KindName(prev.Kind), name, KindName(kind))
			continue
		}
		nd.Driver = id
		nd.DriverPort = port
	}
	for port, n := range ins {
		b.nodes[n].Fanout = append(b.nodes[n].Fanout, PortRef{Elem: id, Port: int32(port)})
	}
	return id
}

// Gate declares an n-input single-output gate with unit parameters.
func (b *Builder) Gate(kind Kind, name string, delay Time, out NodeID, ins ...NodeID) ElemID {
	return b.AddElement(kind, name, delay, []NodeID{out}, ins, Params{})
}

// Clock declares a clock generator: first rising edge at phase, high for
// duty ticks (period/2 if duty is 0), repeating every period ticks.
func (b *Builder) Clock(name string, out NodeID, period, phase, duty Time) ElemID {
	return b.AddElement(KindClock, name, 1, []NodeID{out}, nil,
		Params{Period: period, Phase: phase, Duty: duty})
}

// Wave declares a piecewise-constant waveform generator. times must be
// strictly increasing; the output holds values[i] from times[i] until the
// next change (X before the first time).
func (b *Builder) Wave(name string, out NodeID, times []Time, values []logic.Value) ElemID {
	return b.AddElement(KindWave, name, 1, []NodeID{out}, nil,
		Params{Times: times, Values: values})
}

// Rand declares a pseudo-random vector generator producing a fresh value
// every period ticks, reproducible from seed.
func (b *Builder) Rand(name string, out NodeID, period Time, seed int64) ElemID {
	return b.AddElement(KindRand, name, 1, []NodeID{out}, nil,
		Params{Period: period, Seed: seed})
}

// Const declares a constant driver.
func (b *Builder) Const(name string, out NodeID, v logic.Value) ElemID {
	return b.AddElement(KindConst, name, 1, []NodeID{out}, nil, Params{Init: v})
}

// checker carries validation context for kind-specific port checks.
type checker struct {
	b  *Builder
	el *Element
}

func (c *checker) errorf(format string, args ...any) {
	c.b.errorf("element %q (%s): "+format,
		append([]any{c.el.Name, KindName(c.el.Kind)}, args...)...)
}

func (c *checker) inW(i int) int  { return c.b.nodes[c.el.In[i]].Width }
func (c *checker) outW(i int) int { return c.b.nodes[c.el.Out[i]].Width }

// BuildErrors aggregates every problem found while building a circuit, so
// one Build reports all mistakes instead of the first. It unwraps to the
// individual errors for errors.Is/As.
type BuildErrors struct {
	Circuit string
	Errs    []error
}

// Error lists every accumulated error, one per line.
func (e *BuildErrors) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit %q: %d error(s):", e.Circuit, len(e.Errs))
	for _, err := range e.Errs {
		sb.WriteString("\n  ")
		sb.WriteString(err.Error())
	}
	return sb.String()
}

// Unwrap returns the individual errors.
func (e *BuildErrors) Unwrap() []error { return e.Errs }

// Build validates the netlist and returns the immutable Circuit. It fails if
// any node is undriven or multiply driven, any port count or width is wrong
// for its kind, or any accumulated construction error occurred; every
// error is reported, collected in a *BuildErrors.
func (b *Builder) Build() (*Circuit, error) {
	for i := range b.elems {
		el := &b.elems[i]
		ki := info(el.Kind)
		portsOK := true
		switch {
		case ki.minIn >= 0 && ki.maxIn == 0 && len(el.In) < ki.minIn:
			b.errorf("element %q (%s): needs at least %d inputs, has %d",
				el.Name, ki.name, ki.minIn, len(el.In))
			portsOK = false
		case ki.minIn == -1 && len(el.In) != ki.maxIn:
			b.errorf("element %q (%s): needs exactly %d inputs, has %d",
				el.Name, ki.name, ki.maxIn, len(el.In))
			portsOK = false
		}
		if len(el.Out) != ki.outs {
			b.errorf("element %q (%s): needs %d outputs, has %d",
				el.Name, ki.name, ki.outs, len(el.Out))
			portsOK = false
		}
		if portsOK && ki.check != nil {
			ki.check(el, &checker{b: b, el: el})
		}
	}
	for i := range b.nodes {
		if b.nodes[i].Driver == NoElem {
			b.errorf("node %q has no driver", b.nodes[i].Name)
		}
	}
	if len(b.errs) > 0 {
		return nil, &BuildErrors{Circuit: b.name, Errs: b.errs}
	}
	c := &Circuit{
		Name:     b.name,
		Nodes:    b.nodes,
		Elems:    b.elems,
		ByName:   b.byN,
		ElByName: b.byE,
	}
	for i := range c.Elems {
		el := &c.Elems[i]
		el.circ = c
		c.totalCost += el.Cost
		if el.IsGenerator() {
			c.generators = append(c.generators, el.ID)
		}
	}
	// Prevent accidental reuse of the builder: its slices are now owned by
	// the circuit.
	b.nodes, b.elems, b.byN, b.byE = nil, nil, nil, nil
	return c, nil
}

// MustBuild is Build for programmatic generators whose output is fixed; it
// panics on error.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// ---- kind-specific port validation ----

func checkGate(el *Element, c *checker) {
	w := c.outW(0)
	for i := range el.In {
		if c.inW(i) != w {
			c.errorf("input %d width %d != output width %d", i, c.inW(i), w)
		}
	}
}

func checkMux2(el *Element, c *checker) {
	if c.inW(0) != 1 {
		c.errorf("select must be 1 bit")
	}
	if c.inW(1) != c.outW(0) || c.inW(2) != c.outW(0) {
		c.errorf("data widths must match output")
	}
}

func checkDFF(el *Element, c *checker) {
	if c.inW(0) != 1 {
		c.errorf("clock/enable must be 1 bit")
	}
	if c.inW(1) != c.outW(0) {
		c.errorf("data width %d != output width %d", c.inW(1), c.outW(0))
	}
}

func checkDFFR(el *Element, c *checker) {
	if c.inW(0) != 1 || c.inW(1) != 1 {
		c.errorf("clock and reset must be 1 bit")
	}
	if c.inW(2) != c.outW(0) {
		c.errorf("data width %d != output width %d", c.inW(2), c.outW(0))
	}
	if el.Params.Init.Width() != c.outW(0) {
		c.errorf("reset value width %d != output width %d", el.Params.Init.Width(), c.outW(0))
	}
}

func checkSameWidth(el *Element, c *checker) {
	w := c.outW(0)
	for i := range el.In {
		if c.inW(i) != w {
			c.errorf("input %d width %d != output width %d", i, c.inW(i), w)
		}
	}
}

func checkConst(el *Element, c *checker) {
	if el.Params.Init.Width() != c.outW(0) {
		c.errorf("const value width %d != output width %d", el.Params.Init.Width(), c.outW(0))
	}
}

func checkAddC(el *Element, c *checker) {
	w := c.outW(0)
	if c.inW(0) != w || c.inW(1) != w {
		c.errorf("operand widths must match sum width %d", w)
	}
	if c.inW(2) != 1 || c.outW(1) != 1 {
		c.errorf("carry ports must be 1 bit")
	}
}

func checkCmp(el *Element, c *checker) {
	if c.inW(0) != c.inW(1) {
		c.errorf("operand widths differ: %d vs %d", c.inW(0), c.inW(1))
	}
	if c.outW(0) != 1 {
		c.errorf("comparison output must be 1 bit")
	}
}

func checkSlice(el *Element, c *checker) {
	if el.Params.Lo < 0 || el.Params.Lo+c.outW(0) > c.inW(0) {
		c.errorf("slice [%d,%d) out of input width %d", el.Params.Lo, el.Params.Lo+c.outW(0), c.inW(0))
	}
}

func checkExt(el *Element, c *checker) {
	if c.outW(0) < c.inW(0) {
		c.errorf("extension narrows %d -> %d", c.inW(0), c.outW(0))
	}
}

func checkConcat(el *Element, c *checker) {
	if c.inW(0)+c.inW(1) != c.outW(0) {
		c.errorf("input widths %d+%d != output width %d", c.inW(0), c.inW(1), c.outW(0))
	}
}

func checkShift(el *Element, c *checker) {
	if c.inW(0) != c.outW(0) {
		c.errorf("input width %d != output width %d", c.inW(0), c.outW(0))
	}
	if el.Params.Shift < 0 {
		c.errorf("negative shift %d", el.Params.Shift)
	}
}

func checkRed(el *Element, c *checker) {
	if c.outW(0) != 1 {
		c.errorf("reduction output must be 1 bit")
	}
}

func checkAlu(el *Element, c *checker) {
	if c.inW(0) != 3 {
		c.errorf("op input must be 3 bits")
	}
	if c.inW(1) != c.outW(0) || c.inW(2) != c.outW(0) {
		c.errorf("operand widths must match output width %d", c.outW(0))
	}
}

func checkRom(el *Element, c *checker) {
	if len(el.Params.Mem) == 0 {
		c.errorf("rom has no contents")
	}
	if c.inW(0) > 30 {
		c.errorf("address width %d unreasonably large", c.inW(0))
	}
}

func checkRam(el *Element, c *checker) {
	if c.inW(0) != 1 || c.inW(1) != 1 {
		c.errorf("clock and write-enable must be 1 bit")
	}
	if c.inW(3) != c.outW(0) {
		c.errorf("write data width %d != read data width %d", c.inW(3), c.outW(0))
	}
	if c.inW(2) > 20 {
		c.errorf("address width %d too large to allocate state", c.inW(2))
	}
}

func checkClock(el *Element, c *checker) {
	if c.outW(0) != 1 {
		c.errorf("clock output must be 1 bit")
	}
	p := el.Params
	if p.Period < 2 {
		c.errorf("period %d < 2", p.Period)
	}
	duty := p.Duty
	if duty == 0 {
		duty = p.Period / 2
	}
	if duty < 1 || duty >= p.Period {
		c.errorf("duty %d outside (0, period)", duty)
	}
	if p.Phase < 0 {
		c.errorf("negative phase %d", p.Phase)
	}
}

func checkWave(el *Element, c *checker) {
	p := el.Params
	if len(p.Times) != len(p.Values) {
		c.errorf("times/values length mismatch: %d vs %d", len(p.Times), len(p.Values))
		return
	}
	if len(p.Times) == 0 {
		c.errorf("empty waveform")
	}
	for i := range p.Times {
		if i > 0 && p.Times[i] <= p.Times[i-1] {
			c.errorf("times not strictly increasing at index %d", i)
		}
		if p.Times[i] < 0 {
			c.errorf("negative time at index %d", i)
		}
		if p.Values[i].Width() != c.outW(0) {
			c.errorf("value %d width %d != output width %d", i, p.Values[i].Width(), c.outW(0))
		}
	}
}

func checkRand(el *Element, c *checker) {
	if el.Params.Period < 1 {
		c.errorf("period %d < 1", el.Params.Period)
	}
}
