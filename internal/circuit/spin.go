package circuit

import "sync/atomic"

var spinSink atomic.Uint64

// Spin burns roughly n units of CPU work. The paper's functional models were
// interpreted routines costing 1-100 inverter-evaluations each; native Go
// evaluation flattens that ratio, so benchmarks that study load balancing
// re-introduce it by spinning each element's Cost. Correctness tests leave
// it off.
func Spin(n int64) {
	var x uint64 = uint64(n) + 0x9e3779b97f4a7c15
	for i := int64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	spinSink.Add(x)
}
