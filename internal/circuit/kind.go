// Package circuit defines the simulated object shared by all four
// simulators: a netlist of elements connected by nodes.
//
// Elements span the representation levels the paper simulates — simple
// gates, RTL registers and muxes, and functional blocks such as wide adders,
// multipliers, ALUs and memories. Each element kind has a pure evaluation
// function of (inputs, internal state); because every element has an output
// delay of at least one tick, node histories are deterministic regardless of
// the order in which a simulator chooses to evaluate elements. That property
// is what lets the synchronous, compiled and asynchronous simulators be
// cross-checked event for event.
package circuit

import (
	"fmt"

	"parsim/internal/logic"
)

// Time is a simulation timestamp in integer ticks.
type Time int64

// Kind identifies an element type.
type Kind uint8

// Element kinds. Gate kinds accept a variable number of inputs; functional
// kinds have fixed ports described in kindInfo.
const (
	KindInvalid Kind = iota

	// Gates (n inputs, 1 output, all ports the same width).
	KindBuf
	KindNot
	KindAnd
	KindOr
	KindNand
	KindNor
	KindXor
	KindXnor

	// RTL primitives.
	KindMux2  // in: sel(1), a, b       out: y
	KindDFF   // in: clk(1), d          out: q        state: prev clk, q
	KindDFFR  // in: clk(1), rst(1), d  out: q        state: prev clk, q
	KindLatch // in: en(1), d           out: q        state: q
	KindTri   // in: en(1), a           out: y (Z when en=0)
	KindRes2  // in: a, b               out: wired resolution of a and b

	// Functional blocks.
	KindConst  // out: y (Params.Init)
	KindAdd    // in: a, b               out: sum
	KindAddC   // in: a, b, cin(1)       out: sum, cout(1)
	KindSub    // in: a, b               out: diff
	KindMul    // in: a, b               out: product (width of out)
	KindEq     // in: a, b               out: eq(1)
	KindLtU    // in: a, b               out: lt(1), unsigned
	KindSlice  // in: a                  out: a[Lo : Lo+width(out)]
	KindExt    // in: a                  out: a zero-extended to width(out)
	KindConcat // in: lo, hi             out: {hi, lo}
	KindShlK   // in: a                  out: a << Params.Shift
	KindShrK   // in: a                  out: a >> Params.Shift
	KindRedAnd // in: a                  out: &a (1)
	KindRedOr  // in: a                  out: |a (1)
	KindRedXor // in: a                  out: ^a (1)
	KindAlu    // in: op(3), a, b        out: y
	KindRom    // in: addr               out: data (Params.Mem)
	KindRam    // in: clk(1), we(1), addr, wdata  out: rdata  state: prev clk + words

	// Generators: no inputs; the output waveform is a pure function of time.
	KindClock // Params.Period, Phase, Duty
	KindWave  // Params.Times/Values, holds last value
	KindRand  // new pseudo-random value every Params.Period, Params.Seed
	KindGray  // Gray-code counter: one bit changes every Params.Period

	kindMax
)

// ALU operation codes for KindAlu's 3-bit op input.
const (
	AluAdd uint64 = iota
	AluSub
	AluAnd
	AluOr
	AluXor
	AluShl1
	AluShr1
	AluPassB
)

// Params carries kind-specific configuration. Unused fields are ignored by
// kinds that do not need them.
type Params struct {
	Init   logic.Value   // KindConst value; also a node-independent reset value for DFFR
	Period Time          // KindClock, KindRand
	Phase  Time          // KindClock: time of first rising edge
	Duty   Time          // KindClock: ticks spent high per period (0 = Period/2)
	Times  []Time        // KindWave: strictly increasing change times
	Values []logic.Value // KindWave: value assumed at the matching time
	Mem    []uint64      // KindRom contents; KindRam initial contents (optional)
	Lo     int           // KindSlice low bit
	Shift  int           // KindShlK / KindShrK amount
	Seed   int64         // KindRand
}

// EvalFunc computes an element's outputs from its current inputs and
// internal state, writing results into out (len = number of outputs). It may
// mutate state. Implementations must be deterministic.
type EvalFunc func(el *Element, in, state, out []logic.Value)

// kindInfo describes the static shape of an element kind.
type kindInfo struct {
	name     string
	minIn    int // -1: exactly ports below
	maxIn    int // 0 with minIn>0: unbounded
	outs     int
	stateLen func(el *Element) int
	cost     int64 // default evaluation cost in inverter-units (paper §2.1: 1..100)
	eval     EvalFunc
	generate bool                          // true for generator kinds (no inputs)
	check    func(el *Element, c *checker) // extra width/port validation
}

var kinds [kindMax]kindInfo

func info(k Kind) *kindInfo {
	if k == KindInvalid || k >= kindMax || kinds[k].name == "" {
		panic(fmt.Sprintf("circuit: invalid kind %d", k))
	}
	return &kinds[k]
}

// KindName returns the canonical lower-case name of k, as used by the
// netlist format.
func KindName(k Kind) string { return info(k).name }

// AllKinds returns every registered element kind in declaration order, so
// kind-generic tests (the plane-kernel truth-table suite, netlist coverage)
// can iterate the registry instead of hand-listing kinds.
func AllKinds() []Kind {
	out := make([]Kind, 0, int(kindMax)-1)
	for k := Kind(1); k < kindMax; k++ {
		if kinds[k].name != "" {
			out = append(out, k)
		}
	}
	return out
}

// KindByName resolves a netlist kind name; ok is false if unknown.
func KindByName(name string) (Kind, bool) {
	for k := Kind(1); k < kindMax; k++ {
		if kinds[k].name == name {
			return k, true
		}
	}
	return KindInvalid, false
}

// IsGenerator reports whether k is a stimulus generator (no inputs, output a
// pure function of time).
func IsGenerator(k Kind) bool { return info(k).generate }

// DefaultCost returns the kind's evaluation cost in inverter-units used by
// the virtual machine model and the cost-balancing partitioner.
func DefaultCost(k Kind) int64 { return info(k).cost }

// TriggerPorts returns the input ports whose events alone can change the
// element's outputs, or nil when every input is a trigger. A D flip-flop's
// output moves only on clock events; its data input merely selects the
// captured value. The asynchronous simulator exploits this as lookahead:
// between trigger events the output's valid-time can leap forward, which
// collapses the valid-time creep around register feedback loops.
func TriggerPorts(k Kind) []int {
	switch k {
	case KindDFF:
		return dffTrig[:]
	case KindDFFR:
		return dffrTrig[:]
	case KindRam:
		return ramTrig[:]
	}
	return nil
}

var (
	dffTrig  = [...]int{0}    // clk
	dffrTrig = [...]int{0, 1} // clk, rst
	ramTrig  = [...]int{0, 2} // clk, addr (reads are combinational in addr)
)

// ControllingValue returns, for gates that have one, the input state that
// pins the output regardless of the other inputs: 0 for AND/NAND, 1 for
// OR/NOR. ok is false for every other kind. The paper's section 4 example:
// "if e2 is an AND gate and node 2 is 0 from time 0 until time 25 ...
// any events on node 4 between times 0 and 25 can be ignored."
func ControllingValue(k Kind) (v logic.State, ok bool) {
	switch k {
	case KindAnd, KindNand:
		return logic.L, true
	case KindOr, KindNor:
		return logic.H, true
	}
	return 0, false
}

// controlled reports whether the bus value pins a gate with the given
// controlling state: every bit at the controlling level.
func Controlled(val logic.Value, ctrl logic.State) bool {
	for i := 0; i < val.Width(); i++ {
		if val.Bit(i) != ctrl {
			return false
		}
	}
	return true
}

func statelessLen(*Element) int { return 0 }

func init() {
	gate := func(name string, minIn int, cost int64, eval EvalFunc) kindInfo {
		return kindInfo{name: name, minIn: minIn, maxIn: 0, outs: 1,
			stateLen: statelessLen, cost: cost, eval: eval, check: checkGate}
	}
	kinds[KindBuf] = gate("buf", 1, 1, evalFold(func(a, b logic.Value) logic.Value { return a.Or(b) }, false))
	kinds[KindNot] = gate("not", 1, 1, evalFold(func(a, b logic.Value) logic.Value { return a.Or(b) }, true))
	kinds[KindAnd] = gate("and", 2, 1, evalFold(logic.Value.And, false))
	kinds[KindOr] = gate("or", 2, 1, evalFold(logic.Value.Or, false))
	kinds[KindNand] = gate("nand", 2, 1, evalFold(logic.Value.And, true))
	kinds[KindNor] = gate("nor", 2, 1, evalFold(logic.Value.Or, true))
	kinds[KindXor] = gate("xor", 2, 1, evalFold(logic.Value.Xor, false))
	kinds[KindXnor] = gate("xnor", 2, 1, evalFold(logic.Value.Xor, true))

	kinds[KindMux2] = kindInfo{name: "mux2", minIn: -1, maxIn: 3, outs: 1,
		stateLen: statelessLen, cost: 2, eval: evalMux2, check: checkMux2}
	kinds[KindDFF] = kindInfo{name: "dff", minIn: -1, maxIn: 2, outs: 1,
		stateLen: func(*Element) int { return 2 }, cost: 3, eval: evalDFF, check: checkDFF}
	kinds[KindDFFR] = kindInfo{name: "dffr", minIn: -1, maxIn: 3, outs: 1,
		stateLen: func(*Element) int { return 2 }, cost: 3, eval: evalDFFR, check: checkDFFR}
	kinds[KindLatch] = kindInfo{name: "latch", minIn: -1, maxIn: 2, outs: 1,
		stateLen: func(*Element) int { return 1 }, cost: 2, eval: evalLatch, check: checkDFF}
	kinds[KindTri] = kindInfo{name: "tri", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalTri, check: checkDFF}
	kinds[KindRes2] = kindInfo{name: "res2", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalRes2, check: checkSameWidth}

	kinds[KindConst] = kindInfo{name: "const", minIn: -1, maxIn: 0, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalConst, generate: true, check: checkConst}
	kinds[KindAdd] = kindInfo{name: "add", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 20, eval: evalAdd, check: checkSameWidth}
	kinds[KindAddC] = kindInfo{name: "addc", minIn: -1, maxIn: 3, outs: 2,
		stateLen: statelessLen, cost: 20, eval: evalAddC, check: checkAddC}
	kinds[KindSub] = kindInfo{name: "sub", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 20, eval: evalSub, check: checkSameWidth}
	kinds[KindMul] = kindInfo{name: "mul", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 60, eval: evalMul, check: nil}
	kinds[KindEq] = kindInfo{name: "eq", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 5, eval: evalEq, check: checkCmp}
	kinds[KindLtU] = kindInfo{name: "ltu", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 5, eval: evalLtU, check: checkCmp}
	kinds[KindSlice] = kindInfo{name: "slice", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalSlice, check: checkSlice}
	kinds[KindExt] = kindInfo{name: "ext", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalExt, check: checkExt}
	kinds[KindConcat] = kindInfo{name: "concat", minIn: -1, maxIn: 2, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalConcat, check: checkConcat}
	kinds[KindShlK] = kindInfo{name: "shlk", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalShlK, check: checkShift}
	kinds[KindShrK] = kindInfo{name: "shrk", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 1, eval: evalShrK, check: checkShift}
	kinds[KindRedAnd] = kindInfo{name: "redand", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 2, eval: evalRedAnd, check: checkRed}
	kinds[KindRedOr] = kindInfo{name: "redor", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 2, eval: evalRedOr, check: checkRed}
	kinds[KindRedXor] = kindInfo{name: "redxor", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 2, eval: evalRedXor, check: checkRed}
	kinds[KindAlu] = kindInfo{name: "alu", minIn: -1, maxIn: 3, outs: 1,
		stateLen: statelessLen, cost: 40, eval: evalAlu, check: checkAlu}
	kinds[KindRom] = kindInfo{name: "rom", minIn: -1, maxIn: 1, outs: 1,
		stateLen: statelessLen, cost: 10, eval: evalRom, check: checkRom}
	kinds[KindRam] = kindInfo{name: "ram", minIn: -1, maxIn: 4, outs: 1,
		stateLen: ramStateLen, cost: 30, eval: evalRam, check: checkRam}

	kinds[KindClock] = kindInfo{name: "clock", minIn: -1, maxIn: 0, outs: 1,
		stateLen: statelessLen, cost: 1, eval: nil, generate: true, check: checkClock}
	kinds[KindWave] = kindInfo{name: "wave", minIn: -1, maxIn: 0, outs: 1,
		stateLen: statelessLen, cost: 1, eval: nil, generate: true, check: checkWave}
	kinds[KindRand] = kindInfo{name: "rand", minIn: -1, maxIn: 0, outs: 1,
		stateLen: statelessLen, cost: 1, eval: nil, generate: true, check: checkRand}
	kinds[KindGray] = kindInfo{name: "gray", minIn: -1, maxIn: 0, outs: 1,
		stateLen: statelessLen, cost: 1, eval: nil, generate: true, check: checkRand}
}

// evalFold builds the evaluation function of an n-input gate by folding a
// binary logic op, optionally inverting the result. Single-input buf/not
// fold with a second operand of all zeros, which is the identity for Or.
func evalFold(op func(a, b logic.Value) logic.Value, invert bool) EvalFunc {
	return func(el *Element, in, state, out []logic.Value) {
		acc := in[0]
		if len(in) == 1 {
			acc = op(acc, logic.V(acc.Width(), 0))
		}
		for _, v := range in[1:] {
			acc = op(acc, v)
		}
		if invert {
			acc = acc.Not()
		}
		out[0] = acc
	}
}

func evalMux2(el *Element, in, state, out []logic.Value) {
	out[0] = logic.Mux(in[0], in[1], in[2])
}

// risingEdge updates the stored previous clock and reports whether this
// evaluation sees a 0 -> 1 transition.
func risingEdge(state []logic.Value, clk logic.Value) bool {
	prev := state[0]
	state[0] = clk
	return prev.State() == logic.L && clk.State() == logic.H
}

func evalDFF(el *Element, in, state, out []logic.Value) {
	if risingEdge(state, in[0]) {
		state[1] = in[1].Not().Not() // normalise Z -> X on capture
	}
	out[0] = state[1]
}

func evalDFFR(el *Element, in, state, out []logic.Value) {
	edge := risingEdge(state, in[0])
	if in[1].State() == logic.H { // synchronous-priority asynchronous clear
		state[1] = el.Params.Init
	} else if edge {
		state[1] = in[2].Not().Not()
	}
	out[0] = state[1]
}

func evalLatch(el *Element, in, state, out []logic.Value) {
	if in[0].State() == logic.H {
		state[0] = in[1].Not().Not()
	}
	out[0] = state[0]
}

func evalTri(el *Element, in, state, out []logic.Value) {
	switch in[0].State() {
	case logic.H:
		out[0] = in[1].Not().Not()
	case logic.L:
		out[0] = logic.AllZ(in[1].Width())
	default:
		out[0] = logic.AllX(in[1].Width())
	}
}

func evalRes2(el *Element, in, state, out []logic.Value) {
	out[0] = logic.Resolve(in[0], in[1])
}

func evalConst(el *Element, in, state, out []logic.Value) { out[0] = el.Params.Init }

func evalAdd(el *Element, in, state, out []logic.Value) { out[0] = in[0].Add(in[1]) }

func evalAddC(el *Element, in, state, out []logic.Value) {
	out[0], out[1] = in[0].AddCarry(in[1], in[2])
}

func evalSub(el *Element, in, state, out []logic.Value) { out[0] = in[0].Sub(in[1]) }

func evalMul(el *Element, in, state, out []logic.Value) {
	out[0] = logic.Mul(in[0], in[1], el.outWidth(0))
}

func evalEq(el *Element, in, state, out []logic.Value) { out[0] = in[0].Eq(in[1]) }

func evalLtU(el *Element, in, state, out []logic.Value) {
	a, aok := in[0].Uint()
	b, bok := in[1].Uint()
	if !aok || !bok {
		out[0] = logic.AllX(1)
		return
	}
	if a < b {
		out[0] = logic.V(1, 1)
	} else {
		out[0] = logic.V(1, 0)
	}
}

func evalSlice(el *Element, in, state, out []logic.Value) {
	out[0] = in[0].Slice(el.Params.Lo, el.outWidth(0))
}

func evalExt(el *Element, in, state, out []logic.Value) {
	out[0] = in[0].Extend(el.outWidth(0))
}

func evalConcat(el *Element, in, state, out []logic.Value) {
	out[0] = in[0].Concat(in[1])
}

func evalShlK(el *Element, in, state, out []logic.Value) {
	out[0] = in[0].ShiftLeft(el.Params.Shift)
}

func evalShrK(el *Element, in, state, out []logic.Value) {
	out[0] = in[0].ShiftRight(el.Params.Shift)
}

func evalRedAnd(el *Element, in, state, out []logic.Value) { out[0] = in[0].ReduceAnd() }
func evalRedOr(el *Element, in, state, out []logic.Value)  { out[0] = in[0].ReduceOr() }
func evalRedXor(el *Element, in, state, out []logic.Value) { out[0] = in[0].ReduceXor() }

func evalAlu(el *Element, in, state, out []logic.Value) {
	op, ok := in[0].Uint()
	a, b := in[1], in[2]
	if !ok {
		out[0] = logic.AllX(a.Width())
		return
	}
	switch op {
	case AluAdd:
		out[0] = a.Add(b)
	case AluSub:
		out[0] = a.Sub(b)
	case AluAnd:
		out[0] = a.And(b)
	case AluOr:
		out[0] = a.Or(b)
	case AluXor:
		out[0] = a.Xor(b)
	case AluShl1:
		out[0] = a.ShiftLeft(1)
	case AluShr1:
		out[0] = a.ShiftRight(1)
	default: // AluPassB
		out[0] = b.Not().Not()
	}
}

func evalRom(el *Element, in, state, out []logic.Value) {
	w := el.outWidth(0)
	addr, ok := in[0].Uint()
	if !ok || addr >= uint64(len(el.Params.Mem)) {
		out[0] = logic.AllX(w)
		return
	}
	out[0] = logic.V(w, el.Params.Mem[addr])
}

func ramStateLen(el *Element) int {
	// state[0] holds the previous clock; the rest are the memory words, one
	// per address covered by the address input width.
	return 1 + (1 << uint(el.inWidth(2)))
}

func evalRam(el *Element, in, state, out []logic.Value) {
	clk, we, addr, wdata := in[0], in[1], in[2], in[3]
	edge := risingEdge(state, clk)
	a, aok := addr.Uint()
	if edge && we.State() == logic.H {
		if aok {
			state[1+a] = wdata.Not().Not()
		} else {
			// Writing to an unknown address poisons the whole memory: the
			// conservative choice, and the one that surfaces control bugs.
			for i := 1; i < len(state); i++ {
				state[i] = logic.AllX(wdata.Width())
			}
		}
	}
	if !aok {
		out[0] = logic.AllX(el.outWidth(0))
		return
	}
	out[0] = state[1+a]
}
