package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWatchdogFiresOnSilence(t *testing.T) {
	t.Parallel()
	g := New("compiled", Options{Workers: 2, Window: 30 * time.Millisecond})
	ctx := g.Attach(context.Background())
	defer g.Stop()

	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never tripped on a silent run")
	}
	st := g.Stalled()
	if st == nil {
		t.Fatal("tripped without a stall report")
	}
	if !errors.Is(st, ErrStalled) {
		t.Fatalf("stall report does not match ErrStalled: %v", st)
	}
	if st.Engine != "compiled" || st.Window != 30*time.Millisecond {
		t.Fatalf("stall report = %+v", st)
	}
	if err := g.Err(); !errors.Is(err, ErrStalled) {
		t.Fatalf("Err() = %v, want ErrStalled", err)
	}
}

func TestWatchdogHeldOffByHeartbeats(t *testing.T) {
	t.Parallel()
	g := New("asynchronous", Options{Workers: 2, Window: 60 * time.Millisecond})
	ctx := g.Attach(context.Background())
	defer g.Stop()

	// Beat well inside the window for several windows' worth of time.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		g.Heartbeat(1)
		select {
		case <-ctx.Done():
			t.Fatalf("watchdog tripped despite heartbeats: %v", g.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if g.Err() != nil {
		t.Fatalf("supervisor tripped: %v", g.Err())
	}
}

func TestWatchdogIgnoresPinnedProgress(t *testing.T) {
	t.Parallel()
	g := New("time-warp", Options{Workers: 1, Window: 40 * time.Millisecond})
	ctx := g.Attach(context.Background())
	defer g.Stop()

	// Republishing the same GVT is a livelock, not progress.
	go func() {
		for ctx.Err() == nil {
			g.Progress(7)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("pinned progress value held the watchdog off")
	}
	if st := g.Stalled(); st == nil || st.LastProgress != 7 {
		t.Fatalf("stall report = %+v, want LastProgress 7", st)
	}
}

func TestRecoverCapturesFaultAndCancels(t *testing.T) {
	t.Parallel()
	g := New("event-driven", Options{Workers: 4})
	ctx := g.Attach(context.Background())
	defer g.Stop()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer g.Recover(3, "phase B")
		panic("boom")
	}()
	wg.Wait()

	select {
	case <-ctx.Done():
	default:
		t.Fatal("fault did not cancel the derived context")
	}
	f := g.Fault()
	if f == nil {
		t.Fatal("no fault recorded")
	}
	if f.Engine != "event-driven" || f.Worker != 3 || f.Where != "phase B" || f.Panic != "boom" {
		t.Fatalf("fault = %+v", f)
	}
	if len(f.Stack) == 0 {
		t.Fatal("fault has no stack")
	}
	var wf *WorkerFault
	if err := g.Err(); !errors.As(err, &wf) {
		t.Fatalf("Err() = %v, want *WorkerFault", err)
	}
	if !Recoverable(g.Err()) {
		t.Fatal("worker fault should be recoverable")
	}
}

func TestFirstFaultWins(t *testing.T) {
	t.Parallel()
	g := New("x", Options{Workers: 2})
	g.Attach(context.Background())
	defer g.Stop()

	func() {
		defer g.Recover(0, "first")
		panic("first")
	}()
	func() {
		defer g.Recover(1, "second")
		panic("second")
	}()
	if f := g.Fault(); f == nil || f.Panic != "first" {
		t.Fatalf("fault = %+v, want the first panic", f)
	}
}

func TestNilSupervisorIsInert(t *testing.T) {
	t.Parallel()
	var g *Supervisor
	ctx := context.Background()
	if got := g.Attach(ctx); got != ctx {
		t.Fatal("nil Attach must return the context unchanged")
	}
	g.Heartbeat(0)
	g.Progress(10)
	g.OnTrip(func() { t.Fatal("nil OnTrip fired") })
	g.Stop()
	if g.Chaos() != nil || g.Fault() != nil || g.Stalled() != nil || g.Err() != nil {
		t.Fatal("nil accessors must return nil")
	}
	// Recover on a nil supervisor must re-panic, preserving the
	// historical crash behaviour for unsupervised runs.
	defer func() {
		if r := recover(); r != "through" {
			t.Fatalf("recovered %v, want the original panic", r)
		}
	}()
	func() {
		defer g.Recover(0, "nowhere")
		panic("through")
	}()
	t.Fatal("panic did not propagate through nil Recover")
}

func TestOnTripRunsHooks(t *testing.T) {
	t.Parallel()
	g := New("compiled", Options{Workers: 1})
	g.Attach(context.Background())
	defer g.Stop()

	ran := make(chan string, 2)
	g.OnTrip(func() { ran <- "before" })
	func() {
		defer g.Recover(0, "loop")
		panic("die")
	}()
	// Registered after the trip: must fire immediately.
	g.OnTrip(func() { ran <- "after" })
	for _, want := range []string{"before", "after"} {
		select {
		case got := <-ran:
			if got != want {
				t.Fatalf("hook order: got %q, want %q", got, want)
			}
		default:
			t.Fatalf("hook %q never ran", want)
		}
	}
}

func TestChaosProbePanicsAtNthEval(t *testing.T) {
	t.Parallel()
	p := &ChaosProbe{PanicAtEval: 3}
	p.Eval()
	p.Eval()
	defer func() {
		cp, ok := recover().(*ChaosPanic)
		if !ok || cp.Eval != 3 {
			t.Fatalf("recovered %v, want ChaosPanic at eval 3", cp)
		}
	}()
	p.Eval()
	t.Fatal("third Eval did not panic")
}

func TestChaosProbeDropsWakeups(t *testing.T) {
	t.Parallel()
	p := &ChaosProbe{DropWakeups: 2}
	if !p.DropWakeup() || !p.DropWakeup() {
		t.Fatal("first two wakeups must be dropped")
	}
	if p.DropWakeup() {
		t.Fatal("probe kept dropping past its budget")
	}
	if p.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", p.Dropped())
	}
}

func TestChaosScoping(t *testing.T) {
	t.Parallel()
	p := &ChaosProbe{Engine: "time-warp", PanicAtEval: 1}
	if g := New("sequential", Options{Chaos: p}); g.Chaos() != nil {
		t.Fatal("probe scoped to time-warp leaked into a sequential run")
	}
	if g := New("time-warp", Options{Chaos: p}); g.Chaos() != p {
		t.Fatal("probe did not arm for its own engine")
	}
	if g := New("compiled", Options{Chaos: &ChaosProbe{}}); g.Chaos() == nil {
		t.Fatal("unscoped probe must arm everywhere")
	}
}

func TestRecoverableClassification(t *testing.T) {
	t.Parallel()
	if !Recoverable(&StallError{Engine: "asynchronous"}) {
		t.Fatal("StallError must be recoverable")
	}
	if !Recoverable(&WorkerFault{Engine: "compiled"}) {
		t.Fatal("WorkerFault must be recoverable")
	}
	if Recoverable(context.Canceled) || Recoverable(errors.New("bad config")) || Recoverable(nil) {
		t.Fatal("cancellation / validation errors must not be recoverable")
	}
}
