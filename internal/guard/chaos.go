package guard

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ChaosPanic is the value thrown by an armed probe, so tests can tell an
// injected fault apart from a genuine engine bug.
type ChaosPanic struct {
	Engine string
	Eval   int64 // global evaluation count at which the probe fired
}

func (p *ChaosPanic) String() string {
	eng := p.Engine
	if eng == "" {
		eng = "any engine"
	}
	return fmt.Sprintf("chaos: injected panic in %s at evaluation %d", eng, p.Eval)
}

// ChaosProbe injects faults into engine hot loops: panics at the Nth
// evaluation, per-evaluation delays, and dropped wakeups. It exists so
// tests can prove the supervisor contains each failure class under the
// race detector; production runs never carry a probe.
//
// Engine scopes the probe to one registry name: guard.New discards a
// probe whose Engine does not match the running engine, which keeps a
// sequential fallback run fault-free. An empty Engine matches every
// engine.
type ChaosProbe struct {
	Engine      string        // registry name this probe arms for ("" = all)
	PanicAtEval int64         // panic at the Nth Eval call (0 = never)
	DelayEvery  int64         // sleep Delay every Nth Eval call (0 = never)
	Delay       time.Duration // sleep applied by DelayEvery
	DropWakeups int64         // number of wakeups to swallow (0 = none)

	evals atomic.Int64
	drops atomic.Int64
}

// Matches reports whether the probe arms for the named engine.
func (p *ChaosProbe) Matches(engineName string) bool {
	return p.Engine == "" || p.Engine == engineName
}

// Eval is called from engine evaluation loops. It counts evaluations
// across all workers, sleeps on the configured cadence, and panics once
// the count reaches PanicAtEval.
func (p *ChaosProbe) Eval() {
	n := p.evals.Add(1)
	if p.DelayEvery > 0 && n%p.DelayEvery == 0 {
		time.Sleep(p.Delay)
	}
	if p.PanicAtEval > 0 && n == p.PanicAtEval {
		panic(&ChaosPanic{Engine: p.Engine, Eval: n})
	}
}

// DropWakeup reports whether the engine should swallow this wakeup
// (activation / scheduling message) instead of delivering it. The first
// DropWakeups calls return true; after that the probe is spent.
func (p *ChaosProbe) DropWakeup() bool {
	if p.DropWakeups <= 0 {
		return false
	}
	return p.drops.Add(1) <= p.DropWakeups
}

// Evals returns how many evaluations the probe has observed.
func (p *ChaosProbe) Evals() int64 { return p.evals.Load() }

// Dropped returns how many wakeups the probe has swallowed.
func (p *ChaosProbe) Dropped() int64 {
	n := p.drops.Load()
	if n > p.DropWakeups {
		n = p.DropWakeups
	}
	return n
}
