// Package guard is the runtime supervision layer shared by every
// simulation engine. The static analyzer (internal/analyze) refuses
// hazardous circuits before a run starts; this package detects, contains
// and reports the same failure classes while the simulation is running:
//
//   - panic containment: every worker goroutine runs under a recover
//     wrapper that converts a panic into a structured WorkerFault and
//     trips the supervisor, which cooperatively cancels the remaining
//     workers instead of crashing the process;
//   - progress watchdog: engines publish a monotone progress metric
//     (current step, GVT, valid-time heartbeats); a watchdog goroutine
//     declares a stall when the metric stops advancing for a configured
//     window — the conservative-protocol stall analysed by Kolakowska &
//     Novotny — and aborts the run with a typed StallError;
//   - chaos fault injection: a ChaosProbe induces panics, delays and
//     dropped wakeups inside engine hot loops so tests can prove the
//     supervisor actually recovers under the race detector.
//
// The engine layer (internal/engine) installs one Supervisor per run and
// threads it to the engines through their Options; engines only ever call
// the nil-safe publication hooks (Heartbeat, Progress, Recover, Chaos),
// so direct engine-package callers that pass no Supervisor pay nothing
// and keep the historical crash-on-panic behaviour.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStalled is the sentinel matched by errors.Is for every stall report,
// whether raised by the watchdog mid-run or self-reported by an engine
// that went idle with nodes still short of the horizon.
var ErrStalled = errors.New("parsim: simulation stalled")

// WorkerFault is a contained worker panic: the supervisor converts the
// panic into this structured error and cancels the surviving workers, so
// the process keeps running and the caller gets the full context.
type WorkerFault struct {
	Engine string // engine registry name
	Worker int    // worker id; -1 for the engine's main goroutine
	Where  string // engine-provided context (phase / loop)
	Panic  any    // the recovered panic value
	Stack  []byte // stack of the panicking goroutine
}

// Error formats the fault without the stack; use Stack for the full dump.
func (f *WorkerFault) Error() string {
	who := fmt.Sprintf("worker %d", f.Worker)
	if f.Worker < 0 {
		who = "main goroutine"
	}
	return fmt.Sprintf("parsim: worker fault: engine %s %s (%s) panicked: %v",
		f.Engine, who, f.Where, f.Panic)
}

// StallError reports that a run stopped making progress. Window > 0 means
// the watchdog caught the stall mid-run; Window == 0 means the engine
// itself detected the conservative silent-stall on completion (workers
// all went idle with node valid-times short of the horizon) and named
// the stuck nodes.
type StallError struct {
	Engine       string
	Window       time.Duration // watchdog window; 0 = detected at completion
	LastProgress int64         // last published progress value (step / GVT / min valid-time)
	StuckNodes   []string      // nodes whose behaviour never reached the horizon
	Truncated    int           // stuck nodes beyond the ones named
	Dump         string        // per-worker counter dump, attached post-run
}

// Error summarises the stall; the Dump carries the per-worker detail.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: engine %s", ErrStalled, e.Engine)
	if e.Window > 0 {
		fmt.Fprintf(&b, ": no progress for %v (last progress %d)", e.Window, e.LastProgress)
	} else {
		fmt.Fprintf(&b, ": workers went idle with behaviour known only to t=%d", e.LastProgress)
	}
	if len(e.StuckNodes) > 0 {
		fmt.Fprintf(&b, "; stuck nodes: %s", strings.Join(e.StuckNodes, ", "))
		if e.Truncated > 0 {
			fmt.Fprintf(&b, " (and %d more)", e.Truncated)
		}
	}
	if e.Dump != "" {
		fmt.Fprintf(&b, "\n%s", e.Dump)
	}
	return b.String()
}

// Is matches the ErrStalled sentinel so callers can errors.Is without
// caring how the stall was detected.
func (e *StallError) Is(target error) bool { return target == ErrStalled }

// Recoverable reports whether err is a supervision outcome — a contained
// WorkerFault or a StallError — i.e. the class of failures the fallback
// policy may transparently retry on the reference engine. Cancellation
// and validation errors are not recoverable: the first is the caller's
// decision, the second would fail identically on any engine.
func Recoverable(err error) bool {
	var wf *WorkerFault
	return errors.Is(err, ErrStalled) || errors.As(err, &wf)
}

// Options configures a Supervisor.
type Options struct {
	Workers int           // heartbeat lanes, one per worker (min 1)
	Window  time.Duration // watchdog stall window; 0 disables the watchdog
	Chaos   *ChaosProbe   // optional fault injection (tests)
}

// lane is a per-worker heartbeat counter, padded so workers beating
// concurrently do not share a cache line.
type lane struct {
	n atomic.Int64
	_ [56]byte
}

// Supervisor watches one engine run. All publication methods are safe on
// a nil receiver (no-ops), so engines call them unconditionally.
type Supervisor struct {
	engine string
	window time.Duration
	chaos  *ChaosProbe

	gauge atomic.Int64 // last published monotone progress value
	gen   atomic.Int64 // progress generation (bumped by Progress advances)
	lanes []lane       // per-worker heartbeats (bumped by Heartbeat)

	fault   atomic.Pointer[WorkerFault]
	stall   atomic.Pointer[StallError]
	tripped atomic.Bool
	tripMu  sync.Mutex
	trips   []func()

	cancel   context.CancelFunc
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Supervisor for one run of the named engine. A chaos probe
// scoped to a different engine is discarded here, so fallback runs and
// unrelated engines never see injected faults.
func New(engineName string, opts Options) *Supervisor {
	w := opts.Workers
	if w < 1 {
		w = 1
	}
	chaos := opts.Chaos
	if chaos != nil && !chaos.Matches(engineName) {
		chaos = nil
	}
	return &Supervisor{
		engine: engineName,
		window: opts.Window,
		chaos:  chaos,
		lanes:  make([]lane, w),
		stopCh: make(chan struct{}),
	}
}

// Attach derives the run context the engine must execute under: tripping
// the supervisor (fault or stall) cancels it, which stops every worker
// through the engines' existing cancellation paths. When a watchdog
// window is configured the watchdog goroutine starts here. Callers must
// Stop the supervisor once the run returns.
func (g *Supervisor) Attach(ctx context.Context) context.Context {
	if g == nil {
		return ctx
	}
	cctx, cancel := context.WithCancel(ctx)
	g.cancel = cancel
	if g.window > 0 {
		g.wg.Add(1)
		go g.watchdog()
	}
	return cctx
}

// Stop shuts the watchdog down and releases the derived context. It is
// idempotent and must run after the engine has returned.
func (g *Supervisor) Stop() {
	if g == nil {
		return
	}
	g.stopOnce.Do(func() { close(g.stopCh) })
	g.wg.Wait()
	if g.cancel != nil {
		g.cancel()
	}
}

// Chaos returns the probe scoped to this run's engine, or nil. Engines
// capture it once and branch per evaluation, keeping the disarmed hot
// path to a single predictable comparison.
func (g *Supervisor) Chaos() *ChaosProbe {
	if g == nil {
		return nil
	}
	return g.chaos
}

// Heartbeat marks forward progress by worker w that has no natural
// monotone metric (the asynchronous family's valid-time advances). Each
// worker beats its own padded lane, so the hot path never contends.
func (g *Supervisor) Heartbeat(w int) {
	if g == nil {
		return
	}
	if w < 0 || w >= len(g.lanes) {
		w = 0
	}
	g.lanes[w].n.Add(1)
}

// Progress publishes a monotone progress value (current step, GVT). Only
// an actual advance counts as progress: a livelocked engine republishing
// a pinned value does not reset the watchdog.
func (g *Supervisor) Progress(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.gauge.Load()
		if v <= cur {
			return
		}
		if g.gauge.CompareAndSwap(cur, v) {
			g.gen.Add(1)
			return
		}
	}
}

// LastProgress returns the last value published through Progress.
func (g *Supervisor) LastProgress() int64 {
	if g == nil {
		return 0
	}
	return g.gauge.Load()
}

// OnTrip registers fn to run (once) when the supervisor trips — on a
// worker fault or a watchdog stall. Barrier-based engines register their
// barrier's Abort here so no surviving worker is left spinning for a
// peer that died. fn runs immediately if the supervisor already tripped.
func (g *Supervisor) OnTrip(fn func()) {
	if g == nil {
		return
	}
	g.tripMu.Lock()
	g.trips = append(g.trips, fn)
	fire := g.tripped.Load()
	g.tripMu.Unlock()
	if fire {
		fn()
	}
}

// trip cancels the run and fires the registered trip hooks, exactly once.
func (g *Supervisor) trip() {
	if !g.tripped.CompareAndSwap(false, true) {
		return
	}
	if g.cancel != nil {
		g.cancel()
	}
	g.tripMu.Lock()
	fns := append([]func(){}, g.trips...)
	g.tripMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Recover is the worker-goroutine containment wrapper:
//
//	defer wg.Done()
//	defer s.guard.Recover(w, "eval loop")
//
// On panic it records a WorkerFault (first fault wins) and trips the
// supervisor so the remaining workers stop cooperatively. With no
// supervisor installed the panic propagates unchanged, preserving the
// historical crash behaviour for direct engine-package callers.
func (g *Supervisor) Recover(worker int, where string) {
	r := recover()
	if r == nil {
		return
	}
	if g == nil {
		panic(r)
	}
	g.Capture(worker, where, r)
}

// Capture records an already-recovered panic value as a WorkerFault and
// trips the supervisor. The engine layer uses it to contain panics from
// an engine's main goroutine, where the recover() call sits in its own
// deferred closure.
func (g *Supervisor) Capture(worker int, where string, v any) {
	if g == nil {
		return
	}
	f := &WorkerFault{
		Engine: g.engine,
		Worker: worker,
		Where:  where,
		Panic:  v,
		Stack:  debug.Stack(),
	}
	g.fault.CompareAndSwap(nil, f)
	g.trip()
}

// Fault returns the recorded worker fault, if any.
func (g *Supervisor) Fault() *WorkerFault {
	if g == nil {
		return nil
	}
	return g.fault.Load()
}

// Stalled returns the watchdog's stall report, if any.
func (g *Supervisor) Stalled() *StallError {
	if g == nil {
		return nil
	}
	return g.stall.Load()
}

// Err folds the supervision outcome into one error: a fault outranks a
// stall (the stall is usually a consequence of the dead worker), nil
// means the supervisor never tripped.
func (g *Supervisor) Err() error {
	if g == nil {
		return nil
	}
	if f := g.fault.Load(); f != nil {
		return f
	}
	if s := g.stall.Load(); s != nil {
		return s
	}
	return nil
}

// beat samples the combined progress signal: Progress advances plus every
// worker's heartbeat lane.
func (g *Supervisor) beat() int64 {
	total := g.gen.Load()
	for i := range g.lanes {
		total += g.lanes[i].n.Load()
	}
	return total
}

// watchdog declares a stall when the combined progress signal stays flat
// for the whole window, then trips the supervisor. It never touches the
// engines' plain counter state — the diagnostic dump is attached by the
// engine layer after the workers have exited, where reading it is safe.
func (g *Supervisor) watchdog() {
	defer g.wg.Done()
	tick := g.window / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := g.beat()
	flatSince := time.Now()
	for {
		select {
		case <-g.stopCh:
			return
		case now := <-t.C:
			cur := g.beat()
			if cur != last {
				last = cur
				flatSince = now
				continue
			}
			if now.Sub(flatSince) < g.window {
				continue
			}
			g.stall.CompareAndSwap(nil, &StallError{
				Engine:       g.engine,
				Window:       g.window,
				LastProgress: g.gauge.Load(),
			})
			g.trip()
			return
		}
	}
}
