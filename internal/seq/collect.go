package seq

import "parsim/internal/circuit"

// StepRecord summarises one active time step for the virtual-machine model:
// how many node updates were applied and which elements were evaluated.
type StepRecord struct {
	T       circuit.Time
	Updates int32
	Evals   []circuit.ElemID
}

// TaskGraph is the causality DAG of element evaluations extracted from a
// sequential run: task i evaluated element Elems[i] at simulated time
// Times[i], and could not have started before every task in Deps[i]
// finished (its activating input events). Generator-driven activations have
// no dependencies — the asynchronous algorithm precomputes generators for
// all time, so those tasks are ready immediately.
//
// The graph drives the machine package's models: the synchronous simulators
// are constrained by the per-step structure (StepRecord), the asynchronous
// algorithm only by this DAG.
type TaskGraph struct {
	Elems []circuit.ElemID
	Times []circuit.Time
	Deps  [][]int32
}

// NumTasks returns the task count.
func (g *TaskGraph) NumTasks() int { return len(g.Elems) }

// collector accumulates StepRecords and the TaskGraph during a run.
type collector struct {
	steps []StepRecord
	cur   *StepRecord

	graph       TaskGraph
	prod        map[prodKey]int32 // pending update -> producing task
	pendingDeps [][]int32         // element -> producer tasks of activating updates
}

type prodKey struct {
	n circuit.NodeID
	t circuit.Time
}

func newCollector(c *circuit.Circuit) *collector {
	return &collector{
		prod:        make(map[prodKey]int32),
		pendingDeps: make([][]int32, len(c.Elems)),
	}
}

func (co *collector) beginStep(t circuit.Time) {
	co.steps = append(co.steps, StepRecord{T: t})
	co.cur = &co.steps[len(co.steps)-1]
}

// onUpdate records that a node update was applied at time t and returns the
// producing task (-1 for generator updates).
func (co *collector) onUpdate(n circuit.NodeID, t circuit.Time) int32 {
	co.cur.Updates++
	key := prodKey{n: n, t: t}
	if p, ok := co.prod[key]; ok {
		delete(co.prod, key)
		return p
	}
	return -1
}

// onActivate links an element's next evaluation to the producer task.
func (co *collector) onActivate(e circuit.ElemID, producer int32) {
	if producer >= 0 {
		co.pendingDeps[e] = append(co.pendingDeps[e], producer)
	}
}

// onEval opens a new task for the element and returns its id.
func (co *collector) onEval(e circuit.ElemID, t circuit.Time) int32 {
	id := int32(len(co.graph.Elems))
	co.graph.Elems = append(co.graph.Elems, e)
	co.graph.Times = append(co.graph.Times, t)
	co.graph.Deps = append(co.graph.Deps, co.pendingDeps[e])
	co.pendingDeps[e] = nil
	co.cur.Evals = append(co.cur.Evals, e)
	return id
}

// onSchedule records the producing task of a scheduled future update.
func (co *collector) onSchedule(n circuit.NodeID, t circuit.Time, task int32) {
	co.prod[prodKey{n: n, t: t}] = task
}
