package seq

import (
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// inverterChain builds clock -> inv0 -> inv1 -> ... -> inv{n-1}.
func inverterChain(n int, period circuit.Time) *circuit.Circuit {
	b := circuit.NewBuilder("chain")
	clk := b.Bit("clk")
	b.Clock("gen", clk, period, 0, 0)
	prev := clk
	for i := 0; i < n; i++ {
		next := b.Bit(name("n", i))
		b.Gate(circuit.KindNot, name("inv", i), 1, next, prev)
		prev = next
	}
	return b.MustBuild()
}

func name(p string, i int) string {
	return p + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestInverterChainTiming(t *testing.T) {
	c := inverterChain(3, 10)
	rec := trace.NewRecorder()
	res := Run(c, Options{Horizon: 40, Probe: rec})

	// clk: rises at 0, falls at 5, rises at 10...
	clkHist := rec.History(c.ByName["clk"])
	wantClk := []trace.Change{
		{Time: 0, Value: logic.V(1, 1)}, {Time: 5, Value: logic.V(1, 0)},
		{Time: 10, Value: logic.V(1, 1)}, {Time: 15, Value: logic.V(1, 0)},
		{Time: 20, Value: logic.V(1, 1)}, {Time: 25, Value: logic.V(1, 0)},
		{Time: 30, Value: logic.V(1, 1)}, {Time: 35, Value: logic.V(1, 0)},
	}
	if len(clkHist) != len(wantClk) {
		t.Fatalf("clk history has %d changes, want %d: %v", len(clkHist), len(wantClk), clkHist)
	}
	for i := range wantClk {
		if clkHist[i] != wantClk[i] {
			t.Errorf("clk change %d = %+v, want %+v", i, clkHist[i], wantClk[i])
		}
	}
	// inv0 output: inverted clock delayed by 1 tick, starting with the X->0
	// transition at t=1.
	h0 := rec.History(c.ByName["n00"])
	if h0[0] != (trace.Change{Time: 1, Value: logic.V(1, 0)}) {
		t.Errorf("n00 first change = %+v", h0[0])
	}
	if h0[1] != (trace.Change{Time: 6, Value: logic.V(1, 1)}) {
		t.Errorf("n00 second change = %+v", h0[1])
	}
	// Third inverter lags the clock by 3 ticks (inverted 3x = inverted).
	h2 := rec.History(c.ByName["n02"])
	if h2[0] != (trace.Change{Time: 3, Value: logic.V(1, 0)}) {
		t.Errorf("n02 first change = %+v", h2[0])
	}
	if res.Final[c.ByName["clk"]].MustUint() != 0 {
		t.Errorf("final clk = %v", res.Final[c.ByName["clk"]])
	}
}

// toggleCounter builds a 1-bit toggle flip-flop: dffr(q) with d = not(q),
// reset pulse at the start.
func toggleCounter() *circuit.Circuit {
	b := circuit.NewBuilder("toggle")
	clk := b.Bit("clk")
	rst := b.Bit("rst")
	q := b.Bit("q")
	d := b.Bit("d")
	b.Clock("clkgen", clk, 10, 5, 0)
	b.Wave("rstgen", rst, []circuit.Time{0, 3},
		[]logic.Value{logic.V(1, 1), logic.V(1, 0)})
	b.AddElement(circuit.KindDFFR, "ff", 1, []circuit.NodeID{q},
		[]circuit.NodeID{clk, rst, d}, circuit.Params{Init: logic.V(1, 0)})
	b.Gate(circuit.KindNot, "inv", 1, d, q)
	return b.MustBuild()
}

func TestToggleCounter(t *testing.T) {
	c := toggleCounter()
	rec := trace.NewRecorder()
	Run(c, Options{Horizon: 100, Probe: rec})
	// Clock rises at 5, 15, 25, ... q toggles 1 tick after each rising edge:
	// q: X -> 0 (reset at t=1) -> 1 (t=6) -> 0 (t=16) -> ...
	h := rec.History(c.ByName["q"])
	if len(h) < 5 {
		t.Fatalf("q history too short: %v", h)
	}
	if h[0] != (trace.Change{Time: 1, Value: logic.V(1, 0)}) {
		t.Fatalf("q first change = %+v, want reset to 0 at t=1", h[0])
	}
	for i := 1; i < len(h); i++ {
		wantT := circuit.Time(6 + 10*(i-1))
		wantV := logic.V(1, uint64(i%2))
		if h[i] != (trace.Change{Time: wantT, Value: wantV}) {
			t.Fatalf("q change %d = %+v, want (%d, %v)", i, h[i], wantT, wantV)
		}
	}
}

// muxRingOscillator builds a loadable feedback loop: y = mux(load, fb, 0);
// fb = not(y) after delay 3. While load=1 y follows the constant 0; after
// load drops the loop oscillates with period 2*(1+3).
func muxRingOscillator() *circuit.Circuit {
	b := circuit.NewBuilder("ring")
	load := b.Bit("load")
	zero := b.Bit("zero")
	y := b.Bit("y")
	fb := b.Bit("fb")
	b.Wave("loadgen", load, []circuit.Time{0, 10},
		[]logic.Value{logic.V(1, 1), logic.V(1, 0)})
	b.Const("zgen", zero, logic.V(1, 0))
	b.AddElement(circuit.KindMux2, "mux", 1, []circuit.NodeID{y},
		[]circuit.NodeID{load, fb, zero}, circuit.Params{})
	b.Gate(circuit.KindNot, "inv", 3, fb, y)
	return b.MustBuild()
}

func TestFeedbackOscillator(t *testing.T) {
	c := muxRingOscillator()
	rec := trace.NewRecorder()
	Run(c, Options{Horizon: 60, Probe: rec})
	h := rec.History(c.ByName["y"])
	// y settles to 0 while load=1 (mux sel=1 selects const zero input),
	// then oscillates after load drops at t=10.
	if len(h) < 6 {
		t.Fatalf("y history too short: %v", h)
	}
	// After the oscillation starts, consecutive changes are 4 ticks apart
	// (1 mux + 3 inverter).
	var osc []trace.Change
	for _, ch := range h {
		if ch.Time >= 12 {
			osc = append(osc, ch)
		}
	}
	if len(osc) < 4 {
		t.Fatalf("no sustained oscillation: %v", h)
	}
	for i := 1; i < len(osc); i++ {
		if dt := osc[i].Time - osc[i-1].Time; dt != 4 {
			t.Errorf("oscillation interval %d at change %d, want 4 (%v)", dt, i, osc)
			break
		}
		if osc[i].Value.Equal(osc[i-1].Value) {
			t.Errorf("oscillation repeated value at change %d", i)
		}
	}
}

func TestAdderDatapath(t *testing.T) {
	b := circuit.NewBuilder("addpath")
	a := b.Node("a", 8)
	bb := b.Node("b", 8)
	sum := b.Node("sum", 8)
	b.Rand("agen", a, 10, 1)
	b.Rand("bgen", b.Node("b", 8), 10, 2)
	b.AddElement(circuit.KindAdd, "adder", 2, []circuit.NodeID{sum},
		[]circuit.NodeID{a, bb}, circuit.Params{})
	c := b.MustBuild()
	rec := trace.NewRecorder()
	Run(c, Options{Horizon: 100, Probe: rec})

	agen := &c.Elems[c.ElByName["agen"]]
	bgen := &c.Elems[c.ElByName["bgen"]]
	// In the middle of each stimulus period the sum must equal a+b mod 256.
	for _, tm := range []circuit.Time{5, 15, 25, 55, 95} {
		av := agen.GenValueAt(tm).MustUint()
		bv := bgen.GenValueAt(tm).MustUint()
		got := rec.ValueAt(c, c.ByName["sum"], tm)
		if !got.IsKnown() {
			t.Fatalf("sum unknown at t=%d", tm)
		}
		if want := (av + bv) & 0xff; got.MustUint() != want {
			t.Errorf("sum(%d) = %d, want %d", tm, got.MustUint(), want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := inverterChain(8, 6)
	r1 := Run(c, Options{Horizon: 200})
	r2 := Run(c, Options{Horizon: 200})
	if r1.Run.NodeUpdates != r2.Run.NodeUpdates || r1.Run.Evals != r2.Run.Evals ||
		r1.Run.TimeSteps != r2.Run.TimeSteps {
		t.Errorf("non-deterministic stats: %+v vs %+v", r1.Run, r2.Run)
	}
	for i := range r1.Final {
		if !r1.Final[i].Equal(r2.Final[i]) {
			t.Errorf("final value of node %d differs", i)
		}
	}
}

func TestHorizonCutoff(t *testing.T) {
	c := inverterChain(2, 10)
	rec := trace.NewRecorder()
	Run(c, Options{Horizon: 7, Probe: rec})
	for _, n := range rec.Nodes() {
		for _, ch := range rec.History(n) {
			if ch.Time >= 7 {
				t.Errorf("change at t=%d beyond horizon", ch.Time)
			}
		}
	}
}

func TestAvailabilityHistogram(t *testing.T) {
	c := inverterChain(4, 8)
	res := Run(c, Options{Horizon: 100, CollectAvail: true})
	if res.Run.Avail.N() != res.Run.TimeSteps {
		t.Errorf("avail samples %d != steps %d", res.Run.Avail.N(), res.Run.TimeSteps)
	}
	// A single chain never has more than a few elements active at once.
	if max := res.Run.Avail.Max(); max > 4 {
		t.Errorf("max avail %d on a 4-element chain", max)
	}
}

func TestStatsPlausible(t *testing.T) {
	c := inverterChain(4, 8)
	res := Run(c, Options{Horizon: 100})
	r := &res.Run
	if r.NodeUpdates == 0 || r.Evals == 0 || r.TimeSteps == 0 {
		t.Fatalf("empty stats: %+v", r)
	}
	if r.Workers != 1 || r.Algorithm == "" {
		t.Errorf("metadata: %+v", r)
	}
	if r.Utilization() != 1.0 {
		t.Errorf("uniprocessor utilisation = %v, want 1", r.Utilization())
	}
	var _ stats.Run = *r
}

func TestNoActivityCircuit(t *testing.T) {
	// A constant driving an inverter settles after initialisation and then
	// the simulator must stop on its own, well before the horizon.
	b := circuit.NewBuilder("quiet")
	cn := b.Bit("c")
	y := b.Bit("y")
	b.Const("cgen", cn, logic.V(1, 1))
	b.Gate(circuit.KindNot, "inv", 1, y, cn)
	c := b.MustBuild()
	res := Run(c, Options{Horizon: 1 << 40})
	if res.Run.TimeSteps > 3 {
		t.Errorf("quiet circuit took %d steps", res.Run.TimeSteps)
	}
	if res.Final[y].MustUint() != 0 {
		t.Errorf("final y = %v", res.Final[y])
	}
}
