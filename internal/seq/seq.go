// Package seq implements the uniprocessor event-driven simulator: the
// paper's baseline algorithm and this repository's correctness oracle.
//
// For each active time step it performs the three classic phases:
//
//  1. update all scheduled nodes,
//  2. evaluate all elements connected to the changed nodes,
//  3. schedule all output nodes that change.
//
// All parallel simulators are cross-checked against the node histories this
// simulator produces.
package seq

import (
	"context"
	"fmt"
	"sort"
	"time"

	"parsim/internal/checkpoint"
	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/eventq"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Horizon circuit.Time // simulate t in [0, Horizon)
	Probe   trace.Probe  // optional observer of node changes
	// CostSpin > 0 makes each evaluation burn CostSpin times the element's
	// Cost in synthetic work, restoring the paper's 1-100x spread between
	// gate and functional model evaluation times.
	CostSpin int64
	// CollectAvail records the events-available-per-step histogram (used by
	// experiment T3); it costs a map update per step.
	CollectAvail bool
	// Collect records per-step activity and the evaluation-causality DAG
	// used by the machine package's virtual-multiprocessor models.
	Collect bool
	// Guard is the optional run supervisor (progress publication and
	// chaos injection); panic containment for this single-goroutine
	// simulator lives in the engine layer.
	Guard *guard.Supervisor
	// Checkpoint asks for periodic snapshots between time steps — every
	// point of this single-goroutine simulator's step loop is quiescent.
	Checkpoint checkpoint.Plan
	// Resume continues from a verified snapshot instead of starting at
	// t=0. The resumed run replays bit-identically to an uninterrupted
	// one.
	Resume *checkpoint.Snapshot
}

// Result is the outcome of a run.
type Result struct {
	Run   stats.Run
	Final []logic.Value // node values at the horizon, indexed by NodeID
	// Steps and Graph are populated when Options.Collect is set.
	Steps []StepRecord
	Graph *TaskGraph
}

// Run simulates the circuit and returns statistics and final node values.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled the simulator
// stops at the next time step and returns the partial result together with
// ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	s := newSim(c, opts)
	if opts.Resume != nil {
		if err := s.restore(opts.Resume); err != nil {
			return nil, err
		}
	}
	cancel := engine.WatchCancel(ctx)
	defer cancel.Release()
	start := time.Now()
	runErr := s.run(cancel)
	wall := time.Since(start)
	s.wc.ModelCalls = s.wc.Evals
	s.res.Aggregate(wall, []stats.WorkerCounters{s.wc})
	res := &Result{Run: s.res, Final: s.val}
	if s.co != nil {
		res.Steps = s.co.steps
		res.Graph = &s.co.graph
	}
	if runErr != nil {
		return res, runErr
	}
	return res, cancel.Err(ctx)
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	res  stats.Run
	wc   stats.WorkerCounters

	val       []logic.Value   // current node values
	projected []logic.Value   // last value scheduled for each node
	state     [][]logic.Value // per-element internal state
	q         *eventq.Queue

	genIDs  []circuit.ElemID
	genNext []circuit.Time // next change time per generator; -1 when exhausted

	activated []circuit.ElemID
	inList    []bool

	inBuf, outBuf []logic.Value

	chaos *guard.ChaosProbe // captured once; nil on production runs

	start int64        // resume point (0 for a fresh run)
	lastT circuit.Time // last completed step, -1 before the first

	ckptW *checkpoint.Writer // background snapshot writer; nil when disabled

	co *collector // non-nil when Options.Collect
}

func newSim(c *circuit.Circuit, opts Options) *sim {
	s := &sim{
		c:    c,
		opts: opts,
		q:    eventq.New(),
		res: stats.Run{
			Algorithm: "event-driven",
			Circuit:   c.Name,
			Horizon:   opts.Horizon,
			Workers:   1,
		},
	}
	s.val = make([]logic.Value, len(c.Nodes))
	s.projected = make([]logic.Value, len(c.Nodes))
	for i := range c.Nodes {
		s.val[i] = logic.AllX(c.Nodes[i].Width)
		s.projected[i] = s.val[i]
	}
	s.state = make([][]logic.Value, len(c.Elems))
	for i := range c.Elems {
		if n := c.Elems[i].NumStateVals(); n > 0 {
			s.state[i] = make([]logic.Value, n)
			c.Elems[i].InitState(s.state[i])
		}
	}
	s.genIDs = c.Generators()
	s.genNext = make([]circuit.Time, len(s.genIDs))
	s.inList = make([]bool, len(c.Elems))
	s.lastT = -1
	s.chaos = opts.Guard.Chaos()
	if opts.Collect {
		s.co = newCollector(c)
	}
	return s
}

// nextGenTime returns the earliest pending generator change time, or -1.
func (s *sim) nextGenTime() circuit.Time {
	next := circuit.Time(-1)
	for _, t := range s.genNext {
		if t >= 0 && (next < 0 || t < next) {
			next = t
		}
	}
	return next
}

func (s *sim) run(cancel *engine.CancelFlag) (err error) {
	plan := s.opts.Checkpoint
	if plan.Enabled() {
		s.ckptW = checkpoint.NewWriter(plan)
		// Close flushes the newest pending snapshot, so a drain's final
		// capture is durable before the engine returns. A run that reached
		// its horizon has nothing left to resume — drop the pending
		// capture instead of paying a useless final fsync.
		defer func() {
			if err == nil && !cancel.Cancelled() {
				s.ckptW.DiscardPending()
			}
			if cerr := s.ckptW.Close(); err == nil {
				err = cerr
			}
		}()
	}
	lastSaved := s.start
	for {
		if cancel.Cancelled() {
			// The step loop is quiescent here, so a drain can capture the
			// partial run for later resumption.
			if plan.Enabled() {
				return s.saveCheckpoint(int64(s.lastT) + 1)
			}
			return nil
		}
		// Earliest pending activity: scheduled events or generator changes.
		t := s.nextGenTime()
		if qt, ok := s.q.Peek(); ok && (t < 0 || qt < t) {
			t = qt
		}
		if t < 0 || t >= s.opts.Horizon {
			return nil
		}
		s.opts.Guard.Progress(int64(t))
		s.step(t)
		s.lastT = t
		// Event-driven time skips idle steps, so the checkpoint interval is
		// a sliding threshold over simulated time rather than a modulus.
		// Ready gates the capture: packing a snapshot the throttled writer
		// would only coalesce away is wasted work on the critical path.
		if plan.Enabled() && int64(t)+1-lastSaved >= plan.Every && s.ckptW.Ready() {
			if err := s.saveCheckpoint(int64(t) + 1); err != nil {
				return err
			}
			lastSaved = int64(t) + 1
		}
	}
}

func (s *sim) step(t circuit.Time) {
	s.res.TimeSteps++
	if s.co != nil {
		s.co.beginStep(t)
	}

	// Phase 1: update scheduled nodes.
	for i, gt := range s.genNext {
		if gt != t {
			continue
		}
		el := &s.c.Elems[s.genIDs[i]]
		s.applyUpdate(el.Out[0], t, el.GenValueAt(t))
		if next, ok := el.GenNextChange(t); ok && next < s.opts.Horizon {
			s.genNext[i] = next
		} else {
			s.genNext[i] = -1
		}
	}
	if qt, ok := s.q.Peek(); ok && qt == t {
		_, ups, _ := s.q.PopNext()
		for _, u := range ups {
			s.applyUpdate(u.Node, t, u.Value)
		}
	}

	if s.opts.CollectAvail {
		s.res.Avail.Observe(len(s.activated))
	}

	// Phase 2 and 3: evaluate activated elements, schedule changed outputs.
	sort.Slice(s.activated, func(i, j int) bool { return s.activated[i] < s.activated[j] })
	for _, id := range s.activated {
		s.inList[id] = false
		s.evaluate(t, id)
	}
	s.activated = s.activated[:0]
}

// saveCheckpoint captures all activity strictly before step and hands the
// snapshot to the background writer; the durable save (and the plan's
// OnSave notification) completes off the simulation's critical path.
func (s *sim) saveCheckpoint(step int64) error {
	return s.ckptW.Save(s.snapshot(step))
}

// snapshot captures the complete simulator state between steps: node and
// projected values, per-element state, the pending event queue in pop
// order, generator cursors, counters and (when the probe is a recorder)
// the change history needed for bit-identical VCD output after resume.
func (s *sim) snapshot(step int64) *checkpoint.Snapshot {
	plan := s.opts.Checkpoint
	snap := &checkpoint.Snapshot{
		Engine:    plan.Engine,
		Digest:    plan.Digest,
		Step:      step,
		TimeSteps: s.res.TimeSteps,
		Workers:   []stats.WorkerCounters{s.wc},
		Values:    checkpoint.PackValues(s.val),
		Projected: checkpoint.PackValues(s.projected),
		GenNext:   make([]int64, len(s.genNext)),
	}
	for i, t := range s.genNext {
		snap.GenNext[i] = int64(t)
	}
	snap.ElemState = make([][]checkpoint.RawValue, len(s.state))
	for i, st := range s.state {
		if len(st) > 0 {
			snap.ElemState[i] = checkpoint.PackValues(st)
		}
	}
	cur, entries := s.q.Dump()
	snap.QueueCur = int64(cur)
	snap.Events = make([]checkpoint.Event, len(entries))
	for i, e := range entries {
		snap.Events[i] = checkpoint.Event{
			T:     int64(e.T),
			Node:  int32(e.Node),
			Value: checkpoint.PackValue(e.Value),
		}
	}
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok {
		snap.HasTrace = true
		for _, ch := range rec.DumpChanges() {
			snap.Trace = append(snap.Trace, checkpoint.TraceChange{
				Node:  int32(ch.Node),
				T:     int64(ch.Time),
				Value: checkpoint.PackValue(ch.Value),
			})
		}
	}
	return snap
}

// restore rebuilds the simulator from a digest-verified snapshot. Every
// structural property is still validated — lengths, node widths, event
// times — so even a hand-crafted snapshot that passed the checksum cannot
// corrupt the run; failures are errors, never panics.
func (s *sim) restore(snap *checkpoint.Snapshot) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("parsim: resume (sequential): %s", fmt.Sprintf(format, args...))
	}
	if len(snap.Values) != len(s.c.Nodes) || len(snap.Projected) != len(s.c.Nodes) {
		return bad("snapshot has %d node values for a %d-node circuit", len(snap.Values), len(s.c.Nodes))
	}
	vals, err := checkpoint.UnpackValues(snap.Values)
	if err != nil {
		return bad("node values: %v", err)
	}
	proj, err := checkpoint.UnpackValues(snap.Projected)
	if err != nil {
		return bad("projected values: %v", err)
	}
	for i := range s.c.Nodes {
		if vals[i].Width() != s.c.Nodes[i].Width || proj[i].Width() != s.c.Nodes[i].Width {
			return bad("node %d width mismatch", i)
		}
	}
	if len(snap.ElemState) != len(s.c.Elems) {
		return bad("snapshot has %d element states for %d elements", len(snap.ElemState), len(s.c.Elems))
	}
	newState := make([][]logic.Value, len(s.state))
	for i := range s.state {
		if len(snap.ElemState[i]) != len(s.state[i]) {
			return bad("element %d has %d state values, want %d", i, len(snap.ElemState[i]), len(s.state[i]))
		}
		if len(s.state[i]) == 0 {
			continue
		}
		st, err := checkpoint.UnpackValues(snap.ElemState[i])
		if err != nil {
			return bad("element %d state: %v", i, err)
		}
		newState[i] = st
	}
	if len(snap.GenNext) != len(s.genNext) {
		return bad("snapshot has %d generator cursors, want %d", len(snap.GenNext), len(s.genNext))
	}
	entries := make([]eventq.Entry, len(snap.Events))
	prev := snap.QueueCur
	for i, e := range snap.Events {
		if e.Node < 0 || int(e.Node) >= len(s.c.Nodes) {
			return bad("event %d: node %d out of range", i, e.Node)
		}
		if e.T < prev {
			return bad("event %d: time %d out of order (cursor %d)", i, e.T, prev)
		}
		prev = e.T
		v, err := e.Value.Unpack()
		if err != nil {
			return bad("event %d: %v", i, err)
		}
		if v.Width() != s.c.Nodes[e.Node].Width {
			return bad("event %d: width mismatch on node %d", i, e.Node)
		}
		entries[i] = eventq.Entry{T: circuit.Time(e.T), Node: circuit.NodeID(e.Node), Value: v}
	}
	if len(snap.Workers) != 1 {
		return bad("snapshot has %d worker counter rows, want 1", len(snap.Workers))
	}
	// All validated; commit.
	copy(s.val, vals)
	copy(s.projected, proj)
	for i := range newState {
		if newState[i] != nil {
			s.state[i] = newState[i]
		}
	}
	for i, t := range snap.GenNext {
		s.genNext[i] = circuit.Time(t)
	}
	s.q.Restore(circuit.Time(snap.QueueCur), entries)
	s.wc = snap.Workers[0]
	s.res.TimeSteps = snap.TimeSteps
	s.start = snap.Step
	s.lastT = circuit.Time(snap.Step) - 1
	if rec, ok := s.opts.Probe.(*trace.Recorder); ok && snap.HasTrace {
		chs := make([]trace.ChangeRecord, len(snap.Trace))
		for i, tc := range snap.Trace {
			v, err := tc.Value.Unpack()
			if err != nil {
				return bad("trace change %d: %v", i, err)
			}
			chs[i] = trace.ChangeRecord{Node: circuit.NodeID(tc.Node), Time: circuit.Time(tc.T), Value: v}
		}
		rec.Preload(chs)
	}
	return nil
}

func (s *sim) applyUpdate(n circuit.NodeID, t circuit.Time, v logic.Value) {
	if v.Equal(s.val[n]) {
		return
	}
	s.val[n] = v
	s.wc.NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
	producer := int32(-1)
	if s.co != nil {
		producer = s.co.onUpdate(n, t)
	}
	for _, pr := range s.c.Nodes[n].Fanout {
		if s.co != nil {
			s.co.onActivate(pr.Elem, producer)
		}
		if !s.inList[pr.Elem] {
			s.inList[pr.Elem] = true
			s.activated = append(s.activated, pr.Elem)
		}
	}
}

func (s *sim) evaluate(t circuit.Time, id circuit.ElemID) {
	el := &s.c.Elems[id]
	s.wc.Evals++
	if s.chaos != nil {
		s.chaos.Eval()
	}
	task := int32(-1)
	if s.co != nil {
		task = s.co.onEval(id, t)
	}
	if cap(s.inBuf) < len(el.In) {
		s.inBuf = make([]logic.Value, len(el.In))
	}
	in := s.inBuf[:len(el.In)]
	for i, n := range el.In {
		in[i] = s.val[n]
	}
	if cap(s.outBuf) < len(el.Out) {
		s.outBuf = make([]logic.Value, len(el.Out))
	}
	out := s.outBuf[:len(el.Out)]
	el.Eval(in, s.state[id], out)
	if s.opts.CostSpin > 0 {
		circuit.Spin(el.Cost * s.opts.CostSpin)
	}
	for p, n := range el.Out {
		if out[p].Equal(s.projected[n]) {
			continue
		}
		s.projected[n] = out[p]
		s.q.Schedule(t+el.Delay, eventq.Update{Node: n, Value: out[p]})
		if s.co != nil {
			s.co.onSchedule(n, t+el.Delay, task)
		}
	}
}
