// Package seq implements the uniprocessor event-driven simulator: the
// paper's baseline algorithm and this repository's correctness oracle.
//
// For each active time step it performs the three classic phases:
//
//  1. update all scheduled nodes,
//  2. evaluate all elements connected to the changed nodes,
//  3. schedule all output nodes that change.
//
// All parallel simulators are cross-checked against the node histories this
// simulator produces.
package seq

import (
	"context"
	"sort"
	"time"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/eventq"
	"parsim/internal/guard"
	"parsim/internal/logic"
	"parsim/internal/stats"
	"parsim/internal/trace"
)

// Options configures a run.
type Options struct {
	Horizon circuit.Time // simulate t in [0, Horizon)
	Probe   trace.Probe  // optional observer of node changes
	// CostSpin > 0 makes each evaluation burn CostSpin times the element's
	// Cost in synthetic work, restoring the paper's 1-100x spread between
	// gate and functional model evaluation times.
	CostSpin int64
	// CollectAvail records the events-available-per-step histogram (used by
	// experiment T3); it costs a map update per step.
	CollectAvail bool
	// Collect records per-step activity and the evaluation-causality DAG
	// used by the machine package's virtual-multiprocessor models.
	Collect bool
	// Guard is the optional run supervisor (progress publication and
	// chaos injection); panic containment for this single-goroutine
	// simulator lives in the engine layer.
	Guard *guard.Supervisor
}

// Result is the outcome of a run.
type Result struct {
	Run   stats.Run
	Final []logic.Value // node values at the horizon, indexed by NodeID
	// Steps and Graph are populated when Options.Collect is set.
	Steps []StepRecord
	Graph *TaskGraph
}

// Run simulates the circuit and returns statistics and final node values.
func Run(c *circuit.Circuit, opts Options) *Result {
	res, _ := RunContext(context.Background(), c, opts)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled the simulator
// stops at the next time step and returns the partial result together with
// ctx.Err().
func RunContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	s := newSim(c, opts)
	cancel := engine.WatchCancel(ctx)
	defer cancel.Release()
	start := time.Now()
	s.run(cancel)
	wall := time.Since(start)
	s.wc.ModelCalls = s.wc.Evals
	s.res.Aggregate(wall, []stats.WorkerCounters{s.wc})
	res := &Result{Run: s.res, Final: s.val}
	if s.co != nil {
		res.Steps = s.co.steps
		res.Graph = &s.co.graph
	}
	return res, cancel.Err(ctx)
}

type sim struct {
	c    *circuit.Circuit
	opts Options
	res  stats.Run
	wc   stats.WorkerCounters

	val       []logic.Value   // current node values
	projected []logic.Value   // last value scheduled for each node
	state     [][]logic.Value // per-element internal state
	q         *eventq.Queue

	genIDs  []circuit.ElemID
	genNext []circuit.Time // next change time per generator; -1 when exhausted

	activated []circuit.ElemID
	inList    []bool

	inBuf, outBuf []logic.Value

	chaos *guard.ChaosProbe // captured once; nil on production runs

	co *collector // non-nil when Options.Collect
}

func newSim(c *circuit.Circuit, opts Options) *sim {
	s := &sim{
		c:    c,
		opts: opts,
		q:    eventq.New(),
		res: stats.Run{
			Algorithm: "event-driven",
			Circuit:   c.Name,
			Horizon:   opts.Horizon,
			Workers:   1,
		},
	}
	s.val = make([]logic.Value, len(c.Nodes))
	s.projected = make([]logic.Value, len(c.Nodes))
	for i := range c.Nodes {
		s.val[i] = logic.AllX(c.Nodes[i].Width)
		s.projected[i] = s.val[i]
	}
	s.state = make([][]logic.Value, len(c.Elems))
	for i := range c.Elems {
		if n := c.Elems[i].NumStateVals(); n > 0 {
			s.state[i] = make([]logic.Value, n)
			c.Elems[i].InitState(s.state[i])
		}
	}
	s.genIDs = c.Generators()
	s.genNext = make([]circuit.Time, len(s.genIDs))
	s.inList = make([]bool, len(c.Elems))
	s.chaos = opts.Guard.Chaos()
	if opts.Collect {
		s.co = newCollector(c)
	}
	return s
}

// nextGenTime returns the earliest pending generator change time, or -1.
func (s *sim) nextGenTime() circuit.Time {
	next := circuit.Time(-1)
	for _, t := range s.genNext {
		if t >= 0 && (next < 0 || t < next) {
			next = t
		}
	}
	return next
}

func (s *sim) run(cancel *engine.CancelFlag) {
	for {
		if cancel.Cancelled() {
			return
		}
		// Earliest pending activity: scheduled events or generator changes.
		t := s.nextGenTime()
		if qt, ok := s.q.Peek(); ok && (t < 0 || qt < t) {
			t = qt
		}
		if t < 0 || t >= s.opts.Horizon {
			return
		}
		s.opts.Guard.Progress(int64(t))
		s.step(t)
	}
}

func (s *sim) step(t circuit.Time) {
	s.res.TimeSteps++
	if s.co != nil {
		s.co.beginStep(t)
	}

	// Phase 1: update scheduled nodes.
	for i, gt := range s.genNext {
		if gt != t {
			continue
		}
		el := &s.c.Elems[s.genIDs[i]]
		s.applyUpdate(el.Out[0], t, el.GenValueAt(t))
		if next, ok := el.GenNextChange(t); ok && next < s.opts.Horizon {
			s.genNext[i] = next
		} else {
			s.genNext[i] = -1
		}
	}
	if qt, ok := s.q.Peek(); ok && qt == t {
		_, ups, _ := s.q.PopNext()
		for _, u := range ups {
			s.applyUpdate(u.Node, t, u.Value)
		}
	}

	if s.opts.CollectAvail {
		s.res.Avail.Observe(len(s.activated))
	}

	// Phase 2 and 3: evaluate activated elements, schedule changed outputs.
	sort.Slice(s.activated, func(i, j int) bool { return s.activated[i] < s.activated[j] })
	for _, id := range s.activated {
		s.inList[id] = false
		s.evaluate(t, id)
	}
	s.activated = s.activated[:0]
}

func (s *sim) applyUpdate(n circuit.NodeID, t circuit.Time, v logic.Value) {
	if v.Equal(s.val[n]) {
		return
	}
	s.val[n] = v
	s.wc.NodeUpdates++
	if s.opts.Probe != nil {
		s.opts.Probe.OnChange(n, t, v)
	}
	producer := int32(-1)
	if s.co != nil {
		producer = s.co.onUpdate(n, t)
	}
	for _, pr := range s.c.Nodes[n].Fanout {
		if s.co != nil {
			s.co.onActivate(pr.Elem, producer)
		}
		if !s.inList[pr.Elem] {
			s.inList[pr.Elem] = true
			s.activated = append(s.activated, pr.Elem)
		}
	}
}

func (s *sim) evaluate(t circuit.Time, id circuit.ElemID) {
	el := &s.c.Elems[id]
	s.wc.Evals++
	if s.chaos != nil {
		s.chaos.Eval()
	}
	task := int32(-1)
	if s.co != nil {
		task = s.co.onEval(id, t)
	}
	if cap(s.inBuf) < len(el.In) {
		s.inBuf = make([]logic.Value, len(el.In))
	}
	in := s.inBuf[:len(el.In)]
	for i, n := range el.In {
		in[i] = s.val[n]
	}
	if cap(s.outBuf) < len(el.Out) {
		s.outBuf = make([]logic.Value, len(el.Out))
	}
	out := s.outBuf[:len(el.Out)]
	el.Eval(in, s.state[id], out)
	if s.opts.CostSpin > 0 {
		circuit.Spin(el.Cost * s.opts.CostSpin)
	}
	for p, n := range el.Out {
		if out[p].Equal(s.projected[n]) {
			continue
		}
		s.projected[n] = out[p]
		s.q.Schedule(t+el.Delay, eventq.Update{Node: n, Value: out[p]})
		if s.co != nil {
			s.co.onSchedule(n, t+el.Delay, task)
		}
	}
}
