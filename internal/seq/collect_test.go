package seq

import (
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// chainCollect builds clock -> inv0 -> inv1 and runs with collection.
func chainCollect(t *testing.T) (*circuit.Circuit, *Result) {
	t.Helper()
	b := circuit.NewBuilder("collect")
	clk := b.Bit("clk")
	n0 := b.Bit("n0")
	n1 := b.Bit("n1")
	b.Clock("gen", clk, 10, 0, 0)
	b.Gate(circuit.KindNot, "inv0", 1, n0, clk)
	b.Gate(circuit.KindNot, "inv1", 1, n1, n0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, Run(c, Options{Horizon: 50, Collect: true})
}

func TestCollectSteps(t *testing.T) {
	c, res := chainCollect(t)
	if len(res.Steps) == 0 || res.Graph == nil {
		t.Fatal("nothing collected")
	}
	if int64(len(res.Steps)) != res.Run.TimeSteps {
		t.Errorf("%d step records vs %d time steps", len(res.Steps), res.Run.TimeSteps)
	}
	var updates int64
	var evals int
	for _, st := range res.Steps {
		updates += int64(st.Updates)
		evals += len(st.Evals)
	}
	if updates != res.Run.NodeUpdates {
		t.Errorf("step updates %d != run updates %d", updates, res.Run.NodeUpdates)
	}
	if int64(evals) != res.Run.Evals {
		t.Errorf("step evals %d != run evals %d", evals, res.Run.Evals)
	}
	_ = c
}

func TestCollectGraphShape(t *testing.T) {
	c, res := chainCollect(t)
	g := res.Graph
	if int64(g.NumTasks()) != res.Run.Evals {
		t.Fatalf("graph has %d tasks, run had %d evals", g.NumTasks(), res.Run.Evals)
	}
	inv0 := c.ElByName["inv0"]
	inv1 := c.ElByName["inv1"]
	// Every inv1 task depends on exactly one inv0 task, one step earlier;
	// inv0 tasks are roots (generator-fed).
	byElem := map[circuit.ElemID]int{}
	for i := 0; i < g.NumTasks(); i++ {
		byElem[g.Elems[i]]++
		switch g.Elems[i] {
		case inv0:
			if len(g.Deps[i]) != 0 {
				t.Errorf("inv0 task %d has deps %v", i, g.Deps[i])
			}
		case inv1:
			if len(g.Deps[i]) != 1 {
				t.Fatalf("inv1 task %d has deps %v", i, g.Deps[i])
			}
			dep := g.Deps[i][0]
			if g.Elems[dep] != inv0 {
				t.Errorf("inv1 task %d depends on element %d", i, g.Elems[dep])
			}
			if g.Times[dep]+1 != g.Times[i] {
				t.Errorf("dependency times: %d -> %d", g.Times[dep], g.Times[i])
			}
		}
	}
	if byElem[inv0] == 0 || byElem[inv1] == 0 {
		t.Errorf("task distribution: %v", byElem)
	}
	// Dependencies always point backwards.
	for i := 0; i < g.NumTasks(); i++ {
		for _, d := range g.Deps[i] {
			if int(d) >= i {
				t.Fatalf("forward dependency %d -> %d", i, d)
			}
		}
	}
}

func TestCollectDisabledByDefault(t *testing.T) {
	b := circuit.NewBuilder("plain")
	clk := b.Bit("clk")
	y := b.Bit("y")
	b.Clock("gen", clk, 4, 0, 0)
	b.Gate(circuit.KindNot, "inv", 1, y, clk)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Run(c, Options{Horizon: 20})
	if res.Steps != nil || res.Graph != nil {
		t.Error("collection data present without Collect")
	}
	if res.Final[y].Equal(logic.AllX(1)) {
		t.Error("no simulation happened")
	}
}
