package seq

import (
	"context"
	"fmt"

	"parsim/internal/circuit"
	"parsim/internal/engine"
)

// eng adapts the sequential simulator to the unified engine layer.
type eng struct{}

func (eng) Name() string { return "sequential" }

func (eng) Run(ctx context.Context, c *circuit.Circuit, cfg engine.Config) (*engine.Report, error) {
	if cfg.Workers > 1 {
		return nil, fmt.Errorf("parsim: the sequential algorithm is single-worker (got %d workers)", cfg.Workers)
	}
	res, err := RunContext(ctx, c, Options{
		Horizon:      cfg.Horizon,
		Probe:        cfg.Probe,
		CostSpin:     cfg.CostSpin,
		CollectAvail: cfg.CollectAvail,
		Guard:        cfg.Guard,
		Checkpoint:   cfg.CkptPlan,
		Resume:       cfg.CkptSnap,
	})
	if res == nil {
		return nil, err
	}
	return &engine.Report{Run: res.Run, Final: res.Final}, err
}

func init() { engine.Register(eng{}, "seq") }
