package gen

import (
	"fmt"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// MultiplierConfig parameterises both multiplier representations.
type MultiplierConfig struct {
	N          int          // operand width in bits (paper: 16)
	InPeriod   circuit.Time // new operands every InPeriod ticks
	Seed       int64        // stimulus seed
	GateDelay  circuit.Time // delay of each gate (default 1)
	BlockDelay circuit.Time // delay of each functional block (default 2)
	// Gray switches the stimulus from fresh random vectors to a Gray-code
	// walk: one operand bit changes per period, the low-activity profile
	// typical of the vector suites the paper's availability statistics
	// describe.
	Gray bool
}

// DefaultMultiplier is the paper's 16-bit multiplier with operands changing
// every 256 ticks, long enough for the deepest gate-level path to settle.
func DefaultMultiplier() MultiplierConfig {
	return MultiplierConfig{N: 16, InPeriod: 256, Seed: 7, GateDelay: 1, BlockDelay: 2}
}

func (cfg *MultiplierConfig) fill() {
	if cfg.GateDelay == 0 {
		cfg.GateDelay = 1
	}
	if cfg.BlockDelay == 0 {
		cfg.BlockDelay = 2
	}
	if cfg.InPeriod == 0 {
		cfg.InPeriod = 256
	}
	if cfg.N < 2 || cfg.N > 30 {
		panic("gen: multiplier width out of range [2,30]")
	}
}

// stimulus attaches the operand generators.
func (cfg *MultiplierConfig) stimulus(b *circuit.Builder, a, bb circuit.NodeID) {
	if cfg.Gray {
		b.AddElement(circuit.KindGray, "agen", 1, []circuit.NodeID{a}, nil,
			circuit.Params{Period: cfg.InPeriod, Seed: cfg.Seed})
		b.AddElement(circuit.KindGray, "bgen", 1, []circuit.NodeID{bb}, nil,
			circuit.Params{Period: cfg.InPeriod * 8, Seed: cfg.Seed + 9})
		return
	}
	b.Rand("agen", a, cfg.InPeriod, cfg.Seed)
	b.Rand("bgen", bb, cfg.InPeriod, cfg.Seed+1)
}

// cells is a tiny gate-level standard-cell library over a Builder: it
// gensyms node and element names and builds NAND-decomposed adder cells.
type cells struct {
	b     *circuit.Builder
	delay circuit.Time
	n     int
}

func (l *cells) fresh() circuit.NodeID {
	l.n++
	return l.b.Bit(fmt.Sprintf("w%d", l.n))
}

func (l *cells) gate(kind circuit.Kind, ins ...circuit.NodeID) circuit.NodeID {
	out := l.fresh()
	l.b.Gate(kind, fmt.Sprintf("g%d", l.n), l.delay, out, ins...)
	return out
}

// xorShare returns a XOR b built from four NANDs, along with the shared
// NAND(a, b) term that adder carry logic reuses.
func (l *cells) xorShare(a, b circuit.NodeID) (axb, nandAB circuit.NodeID) {
	nandAB = l.gate(circuit.KindNand, a, b)
	x2 := l.gate(circuit.KindNand, a, nandAB)
	x3 := l.gate(circuit.KindNand, b, nandAB)
	axb = l.gate(circuit.KindNand, x2, x3)
	return axb, nandAB
}

// fullAdder builds a 10-NAND full adder.
func (l *cells) fullAdder(a, b, cin circuit.NodeID) (sum, cout circuit.NodeID) {
	axb, nandAB := l.xorShare(a, b)
	sum, nandXC := l.xorShare(axb, cin)
	cout = l.gate(circuit.KindNand, nandAB, nandXC)
	return sum, cout
}

// halfAdder builds a 6-gate half adder.
func (l *cells) halfAdder(a, b circuit.NodeID) (sum, cout circuit.NodeID) {
	axb, nandAB := l.xorShare(a, b)
	cout = l.gate(circuit.KindNot, nandAB)
	return axb, cout
}

// GateMultiplier builds an NxN unsigned array multiplier out of two-input
// gates: N^2 partial-product ANDs feeding N-1 rows of NAND-decomposed
// ripple-carry adder cells. For N=16 this is ~2800 elements; the paper's
// count of "about 5000" for its 16-bit multiplier reflects a less shared
// cell decomposition, with the same array structure and activity pattern.
//
// Interface nodes: "a" and "b" (N-bit operands, random vectors every
// InPeriod ticks) and "p" (2N-bit product).
func GateMultiplier(cfg MultiplierConfig) *circuit.Circuit {
	cfg.fill()
	n := cfg.N
	b := circuit.NewBuilder(fmt.Sprintf("mult%d-gate", n))
	l := &cells{b: b, delay: cfg.GateDelay}

	a := b.Node("a", n)
	bb := b.Node("b", n)
	cfg.stimulus(b, a, bb)

	// Bit extraction.
	abit := make([]circuit.NodeID, n)
	bbit := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		abit[i] = b.Bit(fmt.Sprintf("a%d", i))
		b.AddElement(circuit.KindSlice, fmt.Sprintf("sa%d", i), cfg.GateDelay,
			[]circuit.NodeID{abit[i]}, []circuit.NodeID{a}, circuit.Params{Lo: i})
		bbit[i] = b.Bit(fmt.Sprintf("b%d", i))
		b.AddElement(circuit.KindSlice, fmt.Sprintf("sb%d", i), cfg.GateDelay,
			[]circuit.NodeID{bbit[i]}, []circuit.NodeID{bb}, circuit.Params{Lo: i})
	}

	// Partial products pp[i][j] = a[j] AND b[i], weight i+j.
	pp := make([][]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]circuit.NodeID, n)
		for j := 0; j < n; j++ {
			pp[i][j] = l.gate(circuit.KindAnd, abit[j], bbit[i])
		}
	}

	// Row accumulation: sum[j] holds weight i+j entering row i; rowCout is
	// the carry out of the previous row (weight i+n-1 entering row i).
	prod := make([]circuit.NodeID, 2*n)
	sum := append([]circuit.NodeID(nil), pp[0]...)
	var rowCout circuit.NodeID = -1
	for i := 1; i < n; i++ {
		prod[i-1] = sum[0]
		next := make([]circuit.NodeID, n)
		var carry circuit.NodeID
		for j := 0; j < n; j++ {
			var addend circuit.NodeID
			if j < n-1 {
				addend = sum[j+1]
			} else if rowCout >= 0 {
				addend = rowCout
			} else {
				zero := b.Bit(fmt.Sprintf("z%d", i))
				b.Const(fmt.Sprintf("zc%d", i), zero, logic.V(1, 0))
				addend = zero
			}
			if j == 0 {
				next[j], carry = l.halfAdder(pp[i][j], addend)
			} else {
				next[j], carry = l.fullAdder(pp[i][j], addend, carry)
			}
		}
		sum = next
		rowCout = carry
	}
	prod[n-1] = sum[0]
	for j := 1; j < n; j++ {
		prod[n-1+j] = sum[j]
	}
	prod[2*n-1] = rowCout

	// Reassemble the product bus for observation and cross-checking.
	p := b.Node("p", 2*n)
	acc := prod[0]
	width := 1
	for i := 1; i < 2*n; i++ {
		var out circuit.NodeID
		if i == 2*n-1 {
			out = p
		} else {
			out = b.Node(fmt.Sprintf("pacc%d", i), width+1)
		}
		b.AddElement(circuit.KindConcat, fmt.Sprintf("pc%d", i), cfg.GateDelay,
			[]circuit.NodeID{out}, []circuit.NodeID{acc, prod[i]}, circuit.Params{})
		acc = out
		width++
	}
	return b.MustBuild()
}

// FuncMultiplier builds the same multiplier at the functional level the
// paper describes: "there are inverters, 8-bit adders, and 3-bit
// multipliers" and about 100 elements. Operands are split into 3-bit
// chunks, multiplied pairwise by KindMul blocks, aligned with shift/extend
// glue and summed by an adder tree.
//
// Interface nodes match GateMultiplier: "a", "b" (N bits), "p" (2N bits).
func FuncMultiplier(cfg MultiplierConfig) *circuit.Circuit {
	cfg.fill()
	n := cfg.N
	const chunk = 3
	b := circuit.NewBuilder(fmt.Sprintf("mult%d-func", n))

	a := b.Node("a", n)
	bb := b.Node("b", n)
	cfg.stimulus(b, a, bb)

	wide := 2 * n
	// Split operands into 3-bit (or smaller tail) chunks.
	split := func(src circuit.NodeID, tag string) []circuit.NodeID {
		var parts []circuit.NodeID
		for lo := 0; lo < n; lo += chunk {
			w := chunk
			if lo+w > n {
				w = n - lo
			}
			out := b.Node(fmt.Sprintf("%s_c%d", tag, lo/chunk), w)
			b.AddElement(circuit.KindSlice, fmt.Sprintf("sp_%s%d", tag, lo/chunk),
				cfg.BlockDelay, []circuit.NodeID{out}, []circuit.NodeID{src},
				circuit.Params{Lo: lo})
			parts = append(parts, out)
		}
		return parts
	}
	as := split(a, "a")
	bs := split(bb, "b")

	// Partial products: chunk_i(a) * chunk_j(b), shifted into place.
	var terms []circuit.NodeID
	for i, ac := range as {
		for j, bc := range bs {
			wa := b.Width(ac)
			wb := b.Width(bc)
			ppw := wa + wb
			pp := b.Node(fmt.Sprintf("pp%d_%d", i, j), ppw)
			b.AddElement(circuit.KindMul, fmt.Sprintf("mul%d_%d", i, j),
				cfg.BlockDelay, []circuit.NodeID{pp}, []circuit.NodeID{ac, bc},
				circuit.Params{})
			ext := b.Node(fmt.Sprintf("ppx%d_%d", i, j), wide)
			b.AddElement(circuit.KindExt, fmt.Sprintf("ext%d_%d", i, j),
				cfg.BlockDelay, []circuit.NodeID{ext}, []circuit.NodeID{pp},
				circuit.Params{})
			shifted := b.Node(fmt.Sprintf("pps%d_%d", i, j), wide)
			b.AddElement(circuit.KindShlK, fmt.Sprintf("shl%d_%d", i, j),
				cfg.BlockDelay, []circuit.NodeID{shifted}, []circuit.NodeID{ext},
				circuit.Params{Shift: chunk * (i + j)})
			terms = append(terms, shifted)
		}
	}

	// Balanced adder tree.
	level := 0
	for len(terms) > 1 {
		var next []circuit.NodeID
		for i := 0; i+1 < len(terms); i += 2 {
			out := b.Node(fmt.Sprintf("s%d_%d", level, i/2), wide)
			b.AddElement(circuit.KindAdd, fmt.Sprintf("add%d_%d", level, i/2),
				cfg.BlockDelay, []circuit.NodeID{out},
				[]circuit.NodeID{terms[i], terms[i+1]}, circuit.Params{})
			next = append(next, out)
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
		level++
	}

	// The tree already produces the full 2N-bit product; a buffer presents
	// it on the interface node (the paper's functional netlists used
	// inverter glue the same way).
	p := b.Node("p", wide)
	b.Gate(circuit.KindBuf, "pbuf", cfg.BlockDelay, p, terms[0])
	return b.MustBuild()
}
