// Package gen builds the paper's four benchmark circuits programmatically:
// the 32x16 inverter array control circuit, the 16-bit multiplier at gate
// and functional level, and a pipelined microprocessor — plus the long
// feedback chain used to probe the asynchronous algorithm's worst case and
// random circuits for differential testing.
package gen

import (
	"fmt"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// InverterArrayConfig parameterises InverterArray.
type InverterArrayConfig struct {
	Rows int // number of independent inverter chains (paper: 32)
	Cols int // inverters per chain (paper: 16)
	// ActiveRows inputs toggle every TogglePeriod ticks; the rest are held
	// at 0. This is the knob the paper turns to control the number of
	// events per time step (Fig. 2: 512 down to 64 events/tick).
	ActiveRows   int
	TogglePeriod circuit.Time // 0 means 1 (toggle every tick)
}

// DefaultInverterArray is the paper's 32x16 array with every input toggling
// each tick, producing ~512 events per time step in steady state.
func DefaultInverterArray() InverterArrayConfig {
	return InverterArrayConfig{Rows: 32, Cols: 16, ActiveRows: 32, TogglePeriod: 1}
}

// InverterArray builds the control circuit: Rows independent chains of Cols
// unit-delay inverters. Each active row's input toggles every TogglePeriod
// ticks, so after the pipeline fills, roughly ActiveRows x Cols events are
// available per time step.
func InverterArray(cfg InverterArrayConfig) *circuit.Circuit {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		panic("gen: inverter array needs positive dimensions")
	}
	if cfg.ActiveRows < 0 || cfg.ActiveRows > cfg.Rows {
		panic("gen: ActiveRows out of range")
	}
	period := cfg.TogglePeriod
	if period == 0 {
		period = 1
	}
	b := circuit.NewBuilder(fmt.Sprintf("inverter-array-%dx%d-a%d", cfg.Rows, cfg.Cols, cfg.ActiveRows))
	for r := 0; r < cfg.Rows; r++ {
		in := b.Bit(fmt.Sprintf("in%d", r))
		if r < cfg.ActiveRows {
			// A toggle every `period` ticks is a clock of period 2*period.
			b.Clock(fmt.Sprintf("gen%d", r), in, 2*period, 0, period)
		} else {
			b.Const(fmt.Sprintf("gen%d", r), in, logic.V(1, 0))
		}
		prev := in
		for c := 0; c < cfg.Cols; c++ {
			out := b.Bit(fmt.Sprintf("n%d_%d", r, c))
			b.Gate(circuit.KindNot, fmt.Sprintf("inv%d_%d", r, c), 1, out, prev)
			prev = out
		}
	}
	return b.MustBuild()
}

// FeedbackChain builds the asynchronous algorithm's worst case (experiment
// T4): a single loop containing length inverters plus a loadable mux, so
// almost the whole circuit sits on one feedback path and events can only be
// produced one at a time around the ring.
//
// The mux output follows a constant 0 while load is high (t < 2*length),
// letting known values fill the ring; after load falls the ring oscillates
// with period 2*(length+1). length must be odd so the loop inverts.
func FeedbackChain(length int) *circuit.Circuit {
	if length < 1 || length%2 == 0 {
		panic("gen: feedback chain length must be positive and odd")
	}
	b := circuit.NewBuilder(fmt.Sprintf("feedback-chain-%d", length))
	load := b.Bit("load")
	zero := b.Bit("zero")
	y := b.Bit("y")
	b.Wave("loadgen", load, []circuit.Time{0, circuit.Time(2 * length)},
		[]logic.Value{logic.V(1, 1), logic.V(1, 0)})
	b.Const("zgen", zero, logic.V(1, 0))
	prev := y
	for i := 0; i < length; i++ {
		out := b.Bit(fmt.Sprintf("fb%d", i))
		b.Gate(circuit.KindNot, fmt.Sprintf("inv%d", i), 1, out, prev)
		prev = out
	}
	b.AddElement(circuit.KindMux2, "mux", 1, []circuit.NodeID{y},
		[]circuit.NodeID{load, prev, zero}, circuit.Params{})
	return b.MustBuild()
}
