package gen

import (
	"math/rand"
	"testing"

	"parsim/internal/core"
	"parsim/internal/seq"
)

// randomProgram builds a random but well-defined program: registers are
// seeded first, memory is written before it is read (through the stable
// address register r8), and control flow only branches forward into the
// program before falling into a terminal spin — so any execution reaches a
// steady state within 2*len cycles.
func randomProgram(r *rand.Rand, bodyLen int) []uint16 {
	var prog []uint16
	// Seed registers r1..r7 and the memory cell at MEM[r8].
	for reg := 1; reg <= 7; reg++ {
		prog = append(prog, LI(reg, uint8(r.Intn(256))))
	}
	prog = append(prog, LI(8, uint8(64+r.Intn(64))))
	prog = append(prog, SW(8, 1+r.Intn(7)))

	// rd avoids r8 so loads always hit initialised memory.
	randRD := func() int {
		rd := 1 + r.Intn(11)
		if rd >= 8 {
			rd++
		}
		return rd
	}
	randRS := func() int { return r.Intn(13) }

	for len(prog) < bodyLen {
		switch r.Intn(12) {
		case 0:
			prog = append(prog, LI(randRD(), uint8(r.Intn(256))))
		case 1:
			prog = append(prog, ADDI(randRD(), randRS(), uint8(r.Intn(16))))
		case 2:
			prog = append(prog, SW(8, randRS()))
		case 3:
			prog = append(prog, LW(randRD(), 8))
		case 4:
			// Forward conditional branch with its delay slot; the target
			// stays inside the body because the spin comes after.
			off := int8(r.Intn(6))
			prog = append(prog, BNEZ(randRS(), off), NOP())
		default:
			ops := []func(rd, rs, rt int) uint16{ADD, SUB, AND, OR, XOR}
			prog = append(prog, ops[r.Intn(len(ops))](randRD(), randRS(), randRS()))
		}
	}
	spin := uint8(len(prog))
	prog = append(prog, JMP(spin), NOP())
	return prog
}

func TestRandomProgramsAgainstISS(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog := randomProgram(r, 28)
		cycles := 2*len(prog) + 8

		iss := NewISS(prog)
		iss.Run(cycles)

		cfg := CPUConfig{Program: prog, ClockPeriod: 96}
		c := CPU(cfg)
		res := seq.Run(c, seq.Options{Horizon: CPUHorizon(cfg, cycles)})
		for reg := 0; reg < 16; reg++ {
			got, ok := CPURegValue(c, res.Final, reg)
			if !ok {
				t.Errorf("seed %d: r%d has unknown bits", seed, reg)
				continue
			}
			if got != iss.Reg[reg] {
				t.Errorf("seed %d: r%d = %d, ISS has %d", seed, reg, got, iss.Reg[reg])
			}
		}
	}
}

func TestRandomProgramOnAsync(t *testing.T) {
	// One random program through the lock-free simulator, for the full
	// program-level end-to-end path.
	r := rand.New(rand.NewSource(99))
	prog := randomProgram(r, 24)
	cycles := 2*len(prog) + 8

	iss := NewISS(prog)
	iss.Run(cycles)

	cfg := CPUConfig{Program: prog, ClockPeriod: 96}
	c := CPU(cfg)
	res := core.Run(c, core.Options{Workers: 2, Horizon: CPUHorizon(cfg, cycles)})
	for reg := 0; reg < 16; reg++ {
		got, ok := CPURegValue(c, res.Final, reg)
		if !ok || got != iss.Reg[reg] {
			t.Errorf("r%d = %d (ok=%v), ISS has %d", reg, got, ok, iss.Reg[reg])
		}
	}
}

// TestEveryInstructionAgainstISS exercises each opcode in a minimal
// program, comparing gate-level execution with the ISS.
func TestEveryInstructionAgainstISS(t *testing.T) {
	programs := map[string][]uint16{
		"li":             {LI(1, 200)},
		"add":            {LI(1, 200), LI(2, 100), ADD(3, 1, 2)},
		"sub":            {LI(1, 5), LI(2, 9), SUB(3, 1, 2)}, // wraps negative
		"and":            {LI(1, 0xcc), LI(2, 0xaa), AND(3, 1, 2)},
		"or":             {LI(1, 0xcc), LI(2, 0xaa), OR(3, 1, 2)},
		"xor":            {LI(1, 0xcc), LI(2, 0xaa), XOR(3, 1, 2)},
		"addi":           {LI(1, 250), ADDI(3, 1, 15)},
		"bnez-taken":     {LI(1, 1), BNEZ(1, 1), LI(2, 7), LI(3, 9), LI(4, 5)},
		"bnez-not-taken": {BNEZ(1, 1), LI(2, 7), LI(3, 9), LI(4, 5)},
		"jmp":            {JMP(3), LI(2, 7), LI(3, 9), LI(4, 5)},
		"swlw":           {LI(1, 40), LI(2, 123), SW(1, 2), LW(3, 1)},
		"nop":            {NOP(), LI(1, 1)},
	}
	for name, body := range programs {
		prog := append(append([]uint16{}, body...),
			JMP(uint8(len(body))), NOP())
		cycles := len(prog) + 10
		iss := NewISS(prog)
		iss.Run(cycles)
		cfg := CPUConfig{Program: prog, ClockPeriod: 96}
		c := CPU(cfg)
		res := seq.Run(c, seq.Options{Horizon: CPUHorizon(cfg, cycles)})
		for reg := 0; reg < 16; reg++ {
			got, ok := CPURegValue(c, res.Final, reg)
			if !ok || got != iss.Reg[reg] {
				t.Errorf("%s: r%d = %d (ok=%v), ISS %d", name, reg, got, ok, iss.Reg[reg])
			}
		}
	}
}
