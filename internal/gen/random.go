package gen

import (
	"fmt"
	"math/rand"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// RandomCircuit builds a pseudo-random sequential circuit of roughly size
// elements for differential testing of the simulators: every simulator must
// produce identical node histories on any circuit this returns, including
// ones with combinational feedback loops.
//
// Structure: a handful of clock/random generators feed a soup of 1-bit
// gates, muxes, latches and flip-flops. Each non-generator node i is driven
// by element i; inputs are drawn mostly from earlier nodes but with a small
// probability from later ones, creating feedback paths of arbitrary length
// (legal here because every element has delay >= 1).
func RandomCircuit(seed int64, size int) *circuit.Circuit {
	return randomCircuit(seed, size, 3)
}

// RandomUnitCircuit is RandomCircuit with every element at delay 1, the
// precondition for compiled-mode cross-checking.
func RandomUnitCircuit(seed int64, size int) *circuit.Circuit {
	return randomCircuit(seed, size, 1)
}

func randomCircuit(seed int64, size, maxDelay int) *circuit.Circuit {
	if size < 4 {
		panic("gen: random circuit needs size >= 4")
	}
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(fmt.Sprintf("random-%d-%d", seed, size))

	nGen := 3 + r.Intn(3)
	total := nGen + size
	nodes := make([]circuit.NodeID, total)
	for i := range nodes {
		nodes[i] = b.Bit(fmt.Sprintf("n%d", i))
	}

	// Generators drive the first nGen nodes.
	clk := nodes[0]
	b.Clock("gen0", clk, circuit.Time(4+2*r.Intn(6)), circuit.Time(r.Intn(5)), 0)
	for i := 1; i < nGen; i++ {
		switch r.Intn(3) {
		case 0:
			b.Clock(fmt.Sprintf("gen%d", i), nodes[i],
				circuit.Time(2+2*r.Intn(8)), circuit.Time(r.Intn(7)), 0)
		case 1:
			b.Rand(fmt.Sprintf("gen%d", i), nodes[i], circuit.Time(1+r.Intn(9)), seed+int64(i))
		default:
			b.Const(fmt.Sprintf("gen%d", i), nodes[i], logic.V(1, uint64(r.Intn(2))))
		}
	}

	pick := func(i int) circuit.NodeID {
		// 6% feedback to any node, otherwise an earlier node (biased to
		// recent ones so the circuit has depth).
		if r.Intn(100) < 6 {
			return nodes[r.Intn(total)]
		}
		lo := 0
		if i > 20 && r.Intn(2) == 0 {
			lo = i - 20
		}
		return nodes[lo+r.Intn(i-lo)]
	}

	gateKinds := []circuit.Kind{
		circuit.KindNot, circuit.KindBuf, circuit.KindAnd, circuit.KindOr,
		circuit.KindNand, circuit.KindNor, circuit.KindXor, circuit.KindXnor,
	}
	for i := nGen; i < total; i++ {
		out := nodes[i]
		name := fmt.Sprintf("e%d", i)
		delay := circuit.Time(1 + r.Intn(maxDelay))
		switch r.Intn(10) {
		case 0: // flip-flop clocked from the main clock
			b.AddElement(circuit.KindDFF, name, delay,
				[]circuit.NodeID{out}, []circuit.NodeID{clk, pick(i)}, circuit.Params{})
		case 1: // resettable flip-flop, reset wired to a random signal
			b.AddElement(circuit.KindDFFR, name, delay,
				[]circuit.NodeID{out}, []circuit.NodeID{clk, pick(i), pick(i)},
				circuit.Params{Init: logic.V(1, 0)})
		case 2: // transparent latch
			b.AddElement(circuit.KindLatch, name, delay,
				[]circuit.NodeID{out}, []circuit.NodeID{pick(i), pick(i)}, circuit.Params{})
		case 3: // mux
			b.AddElement(circuit.KindMux2, name, delay,
				[]circuit.NodeID{out}, []circuit.NodeID{pick(i), pick(i), pick(i)},
				circuit.Params{})
		default: // gate with 1-3 inputs
			kind := gateKinds[r.Intn(len(gateKinds))]
			nIn := 1
			if kind != circuit.KindNot && kind != circuit.KindBuf {
				nIn = 2 + r.Intn(2)
			}
			ins := make([]circuit.NodeID, nIn)
			for j := range ins {
				ins[j] = pick(i)
			}
			b.Gate(kind, name, delay, out, ins...)
		}
	}
	return b.MustBuild()
}
