package gen

import (
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/seq"
	"parsim/internal/trace"
)

func TestInverterArraySize(t *testing.T) {
	c := InverterArray(DefaultInverterArray())
	s := c.Stats()
	if s.Gates != 32*16 {
		t.Errorf("gates = %d, want 512", s.Gates)
	}
	if s.Generators != 32 {
		t.Errorf("generators = %d, want 32", s.Generators)
	}
}

func TestInverterArrayEventRate(t *testing.T) {
	// With all 32 rows toggling every tick, the steady state has ~512 node
	// updates per tick; with 4 active rows, ~64.
	for _, tc := range []struct {
		active int
		want   float64
	}{
		{32, 512}, {16, 256}, {4, 64},
	} {
		cfg := DefaultInverterArray()
		cfg.ActiveRows = tc.active
		c := InverterArray(cfg)
		const warm, horizon = 64, 256
		resAll := seq.Run(c, seq.Options{Horizon: horizon})
		resWarm := seq.Run(c, seq.Options{Horizon: warm})
		perTick := float64(resAll.Run.NodeUpdates-resWarm.Run.NodeUpdates) / float64(horizon-warm)
		// Each active row contributes cols updates per tick plus its input.
		want := tc.want + float64(tc.active)
		if perTick < want*0.9 || perTick > want*1.1 {
			t.Errorf("active=%d: %.1f updates/tick, want ~%.0f", tc.active, perTick, want)
		}
	}
}

func TestFeedbackChainOscillates(t *testing.T) {
	const n = 9
	c := FeedbackChain(n)
	rec := trace.NewRecorder()
	seq.Run(c, seq.Options{Horizon: 500, Probe: rec})
	h := rec.History(c.ByName["y"])
	if len(h) < 10 {
		t.Fatalf("ring did not oscillate: %d changes", len(h))
	}
	// Once running, the ring period is 2*(n+1).
	tail := h[len(h)-4:]
	for i := 1; i < len(tail); i++ {
		if dt := tail[i].Time - tail[i-1].Time; dt != n+1 {
			t.Errorf("ring interval %d, want %d", dt, n+1)
		}
	}
}

// settledProduct returns the circuit's product output midway through each
// stimulus period, when the combinational logic has settled.
func checkMultiplier(t *testing.T, c *circuit.Circuit, cfg MultiplierConfig, periods int) {
	t.Helper()
	rec := trace.NewRecorderFor(c.ByName["p"])
	horizon := cfg.InPeriod * circuit.Time(periods)
	seq.Run(c, seq.Options{Horizon: horizon, Probe: rec})
	agen := &c.Elems[c.ElByName["agen"]]
	bgen := &c.Elems[c.ElByName["bgen"]]
	for k := 0; k < periods; k++ {
		sample := circuit.Time(k)*cfg.InPeriod + cfg.InPeriod - 1
		a := agen.GenValueAt(sample).MustUint()
		b := bgen.GenValueAt(sample).MustUint()
		got := rec.ValueAt(c, c.ByName["p"], sample)
		if !got.IsKnown() {
			t.Fatalf("%s: product unknown at t=%d (a=%d b=%d): %v", c.Name, sample, a, b, got)
		}
		want := (a * b) & (1<<uint(2*cfg.N) - 1)
		if got.MustUint() != want {
			t.Errorf("%s: %d * %d = %d, want %d", c.Name, a, b, got.MustUint(), want)
		}
	}
}

func TestGateMultiplierComputes(t *testing.T) {
	cfg := DefaultMultiplier()
	cfg.N = 8
	cfg.InPeriod = 128
	checkMultiplier(t, GateMultiplier(cfg), cfg, 6)
}

func TestGateMultiplier16(t *testing.T) {
	if testing.Short() {
		t.Skip("16-bit array multiplier is slow in -short mode")
	}
	cfg := DefaultMultiplier()
	checkMultiplier(t, GateMultiplier(cfg), cfg, 4)
}

func TestFuncMultiplierComputes(t *testing.T) {
	cfg := DefaultMultiplier()
	checkMultiplier(t, FuncMultiplier(cfg), cfg, 8)
}

func TestMultiplierSizesMatchPaper(t *testing.T) {
	gate := GateMultiplier(DefaultMultiplier())
	fn := FuncMultiplier(DefaultMultiplier())
	gs, fs := gate.Stats(), fn.Stats()
	// Paper: "about 5000 elements at the gate level and about 100 elements
	// at the RTL level". Our shared-NAND decomposition lands lower at the
	// gate level; assert the order of magnitude and the ~100 functional one.
	if gs.Elements < 2000 || gs.Elements > 6000 {
		t.Errorf("gate multiplier has %d elements, want thousands", gs.Elements)
	}
	if fs.Elements < 80 || fs.Elements > 220 {
		t.Errorf("functional multiplier has %d elements, want ~100-200", fs.Elements)
	}
	t.Logf("gate-level: %v", gate)
	t.Logf("functional: %v", fn)
}

func TestCPUAgainstISS(t *testing.T) {
	cfg := DefaultCPU()
	c := CPU(cfg)
	t.Logf("cpu: %v", c)

	const cycles = 150
	res := seq.Run(c, seq.Options{Horizon: CPUHorizon(cfg, cycles)})

	iss := NewISS(cfg.Program)
	iss.Run(cycles)

	for r := 0; r < 16; r++ {
		got, ok := CPURegValue(c, res.Final, r)
		if !ok {
			t.Errorf("r%d has unknown bits", r)
			continue
		}
		if got != iss.Reg[r] {
			t.Errorf("r%d = %d, ISS has %d", r, got, iss.Reg[r])
		}
	}
	// Program-level expectations.
	if iss.Reg[1] != 55 {
		t.Errorf("ISS r1 = %d, want 55 (sum 1..10)", iss.Reg[1])
	}
	if iss.Reg[2] != 89 {
		t.Errorf("ISS r2 = %d, want 89 (fib 11)", iss.Reg[2])
	}
	if iss.Reg[5] != 55 {
		t.Errorf("ISS r5 = %d, want 55 (memory round trip)", iss.Reg[5])
	}
}

func TestCPUSize(t *testing.T) {
	c := CPU(DefaultCPU())
	s := c.Stats()
	// Paper: "about 3000 non-memory gates"; our shared decomposition lands
	// in the same ballpark.
	nonMem := s.Elements - s.Generators - 2 // irom + dram
	if nonMem < 1200 || nonMem > 4000 {
		t.Errorf("cpu has %d non-memory elements, want thousands", nonMem)
	}
}

func TestCPUBranchAndDelaySlot(t *testing.T) {
	// BNEZ taken skips the post-slot instruction; the slot itself executes.
	prog := []uint16{
		LI(1, 1),      // 0
		BNEZ(1, 1),    // 1: taken, target = 1+2+1 = 4
		LI(2, 7),      // 2: delay slot, executes
		LI(3, 9),      // 3: skipped
		LI(4, 5),      // 4: branch target
		JMP(5), NOP(), // spin
	}
	iss := NewISS(prog)
	iss.Run(20)
	if iss.Reg[2] != 7 {
		t.Errorf("delay slot did not execute: r2 = %d", iss.Reg[2])
	}
	if iss.Reg[3] != 0 {
		t.Errorf("branch shadow executed: r3 = %d", iss.Reg[3])
	}
	if iss.Reg[4] != 5 {
		t.Errorf("branch target missed: r4 = %d", iss.Reg[4])
	}

	cfg := CPUConfig{Program: prog, ClockPeriod: 96}
	c := CPU(cfg)
	res := seq.Run(c, seq.Options{Horizon: CPUHorizon(cfg, 20)})
	for r := 1; r <= 4; r++ {
		got, ok := CPURegValue(c, res.Final, r)
		if !ok || got != iss.Reg[r] {
			t.Errorf("gate-level r%d = %d (ok=%v), ISS %d", r, got, ok, iss.Reg[r])
		}
	}
}

func TestRandomCircuitsBuild(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		c := RandomCircuit(seed, 60)
		res := seq.Run(c, seq.Options{Horizon: 200})
		if res.Run.Evals == 0 {
			t.Errorf("seed %d: no activity", seed)
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { InverterArray(InverterArrayConfig{Rows: 0, Cols: 4}) },
		func() { InverterArray(InverterArrayConfig{Rows: 4, Cols: 4, ActiveRows: 9}) },
		func() { FeedbackChain(0) },
		func() { RandomCircuit(1, 2) },
		func() { CPU(CPUConfig{ClockPeriod: 10}) },
		func() { BNEZ(1, 9) },
		func() { ADDI(1, 1, 99) },
		func() { LW(99, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
