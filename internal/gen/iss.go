package gen

// ISS is a cycle-level instruction-set simulator for the microprocessor,
// modelling the same two-stage pipeline (including the branch delay slot)
// so that architectural state can be compared register for register against
// the gate-level simulation after any number of cycles.
type ISS struct {
	PC  uint8
	IR  uint16
	Reg [16]uint16
	Mem [256]uint16
	// MemKnown tracks which words have been written; the gate-level RAM
	// reads X from untouched words, which has no uint16 representation.
	MemKnown [256]bool
	rom      [256]uint16
	Cycles   int
}

// NewISS returns a reset processor with the given program loaded; PC and
// all registers are zero and the pipeline holds a NOP, exactly like the
// gate-level machine coming out of reset.
func NewISS(program []uint16) *ISS {
	if len(program) > 256 {
		panic("gen: program exceeds 256 instructions")
	}
	iss := &ISS{}
	copy(iss.rom[:], program)
	return iss
}

// Step executes one pipeline cycle: the instruction in IR executes and
// writes back while the instruction at PC is fetched.
func (iss *ISS) Step() {
	ir := iss.IR
	op := ir >> 12
	rd := int(ir >> 8 & 0xf)
	rs := int(ir >> 4 & 0xf)
	rt := int(ir & 0xf)
	imm4 := uint16(ir & 0xf)
	imm8 := ir & 0xff

	nextPC := iss.PC + 1
	switch op {
	case opLI:
		iss.Reg[rd] = imm8
	case opADD:
		iss.Reg[rd] = iss.Reg[rs] + iss.Reg[rt]
	case opSUB:
		iss.Reg[rd] = iss.Reg[rs] - iss.Reg[rt]
	case opAND:
		iss.Reg[rd] = iss.Reg[rs] & iss.Reg[rt]
	case opOR:
		iss.Reg[rd] = iss.Reg[rs] | iss.Reg[rt]
	case opXOR:
		iss.Reg[rd] = iss.Reg[rs] ^ iss.Reg[rt]
	case opADDI:
		iss.Reg[rd] = iss.Reg[rs] + imm4
	case opBNEZ:
		if iss.Reg[rs] != 0 {
			off := imm4
			if off&0x8 != 0 {
				off |= 0xfff0 // sign-extend
			}
			nextPC = iss.PC + 1 + uint8(off)
		}
	case opJMP:
		nextPC = uint8(imm8)
	case opLW:
		addr := iss.Reg[rs] & 0xff
		iss.Reg[rd] = iss.Mem[addr] // X reads are the caller's concern via MemKnown
	case opSW:
		addr := iss.Reg[rs] & 0xff
		iss.Mem[addr] = iss.Reg[rt]
		iss.MemKnown[addr] = true
	}
	iss.IR = iss.rom[iss.PC]
	iss.PC = nextPC
	iss.Cycles++
}

// Run executes n pipeline cycles.
func (iss *ISS) Run(n int) {
	for i := 0; i < n; i++ {
		iss.Step()
	}
}
