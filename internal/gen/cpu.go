package gen

import (
	"fmt"

	"parsim/internal/circuit"
	"parsim/internal/logic"
)

// The microprocessor benchmark: a 16-bit, 16-register accumulator machine
// with a two-stage pipeline (fetch overlapped with execute/write-back),
// built almost entirely from two-input gates — the paper's "pipelined
// micro-processor with about 3000 non-memory gates". Instruction ROM and
// data RAM are functional elements, matching the paper's exclusion of
// memory from the gate count.
//
// ISA (16-bit instructions, fields op[15:12] rd[11:8] rs[7:4] rt/imm4[3:0]):
//
//	NOP                       0x0---
//	LI   rd, imm8             rd = zext(imm8)
//	ADD  rd, rs, rt           rd = rs + rt
//	SUB  rd, rs, rt           rd = rs - rt
//	AND  rd, rs, rt           rd = rs & rt
//	OR   rd, rs, rt           rd = rs | rt
//	XOR  rd, rs, rt           rd = rs ^ rt
//	ADDI rd, rs, imm4         rd = rs + zext(imm4)
//	BNEZ rs, off4             if rs != 0: PC = addr(BNEZ)+2+sext(off4); one delay slot
//	JMP  addr8                PC = addr8 (one delay slot)
//	LW   rd, rs               rd = MEM[rs & 0xff]
//	SW   rs, rt               MEM[rs & 0xff] = rt
//
// Branches resolve while the following instruction is already being
// fetched, so exactly one delay-slot instruction always executes — the
// reference ISS models the same semantics.

// CPU opcodes.
const (
	opNOP = iota
	opLI
	opADD
	opSUB
	opAND
	opOR
	opXOR
	opADDI
	opBNEZ
	opJMP
	opLW
	opSW
)

// Instruction assemblers.

// NOP returns a no-operation instruction.
func NOP() uint16 { return 0 }

// LI assembles "load immediate": rd = zext(imm8).
func LI(rd int, imm8 uint8) uint16 { return uint16(opLI)<<12 | reg(rd)<<8 | uint16(imm8) }

// ADD assembles rd = rs + rt.
func ADD(rd, rs, rt int) uint16 { return r3(opADD, rd, rs, rt) }

// SUB assembles rd = rs - rt.
func SUB(rd, rs, rt int) uint16 { return r3(opSUB, rd, rs, rt) }

// AND assembles rd = rs & rt.
func AND(rd, rs, rt int) uint16 { return r3(opAND, rd, rs, rt) }

// OR assembles rd = rs | rt.
func OR(rd, rs, rt int) uint16 { return r3(opOR, rd, rs, rt) }

// XOR assembles rd = rs ^ rt.
func XOR(rd, rs, rt int) uint16 { return r3(opXOR, rd, rs, rt) }

// ADDI assembles rd = rs + zext(imm4).
func ADDI(rd, rs int, imm4 uint8) uint16 {
	if imm4 > 15 {
		panic("gen: ADDI immediate out of range")
	}
	return uint16(opADDI)<<12 | reg(rd)<<8 | reg(rs)<<4 | uint16(imm4)
}

// BNEZ assembles a conditional branch: if rs != 0, control transfers to
// addr(BNEZ)+2+sext(off4) (mod 256), with off4 in [-8, 7]. The instruction
// in the delay slot (addr+1) always executes.
func BNEZ(rs int, off4 int8) uint16 {
	if off4 < -8 || off4 > 7 {
		panic("gen: BNEZ offset out of range [-8,7]")
	}
	return uint16(opBNEZ)<<12 | reg(rs)<<4 | uint16(off4)&0xf
}

// JMP assembles an absolute jump with one delay slot.
func JMP(addr8 uint8) uint16 { return uint16(opJMP)<<12 | uint16(addr8) }

// LW assembles rd = MEM[rs].
func LW(rd, rs int) uint16 { return uint16(opLW)<<12 | reg(rd)<<8 | reg(rs)<<4 }

// SW assembles MEM[rs] = rt.
func SW(rs, rt int) uint16 { return uint16(opSW)<<12 | reg(rs)<<4 | reg(rt) }

func reg(r int) uint16 {
	if r < 0 || r > 15 {
		panic("gen: register out of range")
	}
	return uint16(r)
}

func r3(op, rd, rs, rt int) uint16 {
	return uint16(op)<<12 | reg(rd)<<8 | reg(rs)<<4 | reg(rt)
}

// CPUConfig parameterises the microprocessor build.
type CPUConfig struct {
	Program []uint16 // instruction ROM contents (padded with NOP to 256)
	// ClockPeriod must exceed the worst-case combinational path, about 60
	// gate delays through the ripple ALU; the default is 96.
	ClockPeriod circuit.Time
}

// DefaultCPU returns the demo program configuration.
func DefaultCPU() CPUConfig {
	return CPUConfig{Program: DefaultCPUProgram(), ClockPeriod: 96}
}

// DefaultCPUProgram computes sum(1..10) into r1, the 10th Fibonacci number
// (11 iterations) into r2, and exercises memory via SW/LW into r5, then spins.
func DefaultCPUProgram() []uint16 {
	return []uint16{
		// r1 = sum 1..10: r3 counts down from 10, r1 accumulates.
		LI(1, 0),
		LI(3, 10),
		// loop: r1 += r3; r3 -= 1; bnez r3, loop
		ADD(1, 1, 3),  // 2
		ADDI(4, 0, 1), // r4 = 1
		SUB(3, 3, 4),  // r3--
		BNEZ(3, -5),   // back to ADD at 2 (branch at 5, target 2 => off -5)
		NOP(),         // delay slot
		// Fibonacci: r2, r6 = fib pair; 10 iterations in r7.
		LI(2, 0), // 7
		LI(6, 1),
		LI(7, 11),
		ADD(8, 2, 6), // 10  fib step: r8 = r2+r6
		OR(2, 6, 0),  // r2 = r6 (r0 is always zero only by convention: r0 never written)
		OR(6, 8, 0),  // r6 = r8
		SUB(7, 7, 4), // r7--
		BNEZ(7, -6),  // back to 10 (branch at 14, target 10 => off -6)
		NOP(),        // delay slot
		// Memory round trip: MEM[32] = r1; r5 = MEM[32].
		LI(9, 32), // 16
		SW(9, 1),
		LW(5, 9),
		// XOR/AND sanity: r10 = r1 ^ r2, r11 = r1 & r2.
		XOR(10, 1, 2),
		AND(11, 1, 2),
		JMP(21), // 21: spin
		NOP(),   // delay slot
	}
}

// cpuNodes carries the shared wiring context while building the CPU.
type cpuNodes struct {
	b    *circuit.Builder
	l    *cells
	clk  circuit.NodeID
	rst  circuit.NodeID
	zero circuit.NodeID // constant 0 bit
	one  circuit.NodeID // constant 1 bit
}

// muxTree builds a 16:1 selection over inputs using sel[0..3]
// (least-significant select bit switches adjacent pairs).
func (cn *cpuNodes) muxTree(ins []circuit.NodeID, sel []circuit.NodeID) circuit.NodeID {
	level := ins
	for s := 0; len(level) > 1; s++ {
		next := make([]circuit.NodeID, len(level)/2)
		for i := range next {
			out := cn.l.fresh()
			cn.b.AddElement(circuit.KindMux2, fmt.Sprintf("g%d", cn.l.n), 1,
				[]circuit.NodeID{out},
				[]circuit.NodeID{sel[s], level[2*i], level[2*i+1]}, circuit.Params{})
			next[i] = out
		}
		level = next
	}
	return level[0]
}

func (cn *cpuNodes) mux(sel, a, b circuit.NodeID) circuit.NodeID {
	out := cn.l.fresh()
	cn.b.AddElement(circuit.KindMux2, fmt.Sprintf("g%d", cn.l.n), 1,
		[]circuit.NodeID{out}, []circuit.NodeID{sel, a, b}, circuit.Params{})
	return out
}

// concatBus assembles individual bits (LSB first) into one bus node with the
// given name.
func (cn *cpuNodes) concatBus(name string, bits []circuit.NodeID) circuit.NodeID {
	acc := bits[0]
	width := 1
	for i := 1; i < len(bits); i++ {
		var out circuit.NodeID
		if i == len(bits)-1 {
			out = cn.b.Node(name, len(bits))
		} else {
			out = cn.b.Node(fmt.Sprintf("%s_acc%d", name, i), width+1)
		}
		cn.b.AddElement(circuit.KindConcat, fmt.Sprintf("%s_cc%d", name, i), 1,
			[]circuit.NodeID{out}, []circuit.NodeID{acc, bits[i]}, circuit.Params{})
		acc = out
		width++
	}
	return acc
}

// sliceBus extracts every bit of a bus into fresh 1-bit nodes (LSB first).
func (cn *cpuNodes) sliceBus(tag string, bus circuit.NodeID, width int) []circuit.NodeID {
	bits := make([]circuit.NodeID, width)
	for i := range bits {
		bits[i] = cn.b.Bit(fmt.Sprintf("%s%d", tag, i))
		cn.b.AddElement(circuit.KindSlice, fmt.Sprintf("%s_sl%d", tag, i), 1,
			[]circuit.NodeID{bits[i]}, []circuit.NodeID{bus}, circuit.Params{Lo: i})
	}
	return bits
}

// CPURegNodeName returns the node name of bit b of register r, so tests and
// examples can observe architectural state.
func CPURegNodeName(r, b int) string { return fmt.Sprintf("r%d_b%d", r, b) }

// CPURegValue assembles register r from final node values; ok is false if
// any bit is X or Z.
func CPURegValue(c *circuit.Circuit, final []logic.Value, r int) (uint16, bool) {
	var v uint16
	for b := 0; b < 16; b++ {
		n := c.FindNode(CPURegNodeName(r, b))
		if n == nil {
			return 0, false
		}
		bit, ok := final[n.ID].Uint()
		if !ok {
			return 0, false
		}
		v |= uint16(bit) << b
	}
	return v, true
}

// CPUHorizon returns the simulation horizon that lets the CPU complete the
// given number of pipeline cycles and settle.
func CPUHorizon(cfg CPUConfig, cycles int) circuit.Time {
	return cfg.ClockPeriod * circuit.Time(cycles+1)
}

// CPU builds the gate-level microprocessor.
func CPU(cfg CPUConfig) *circuit.Circuit {
	if cfg.ClockPeriod < 80 {
		panic("gen: CPU clock period must be at least 80 gate delays")
	}
	if len(cfg.Program) > 256 {
		panic("gen: program exceeds 256 instructions")
	}
	b := circuit.NewBuilder("microprocessor")
	l := &cells{b: b, delay: 1}
	cn := &cpuNodes{b: b, l: l}

	cn.clk = b.Bit("clk")
	// First rising edge one full period in; reset is released half way to
	// the first edge so every flip-flop starts at 0.
	b.Clock("clkgen", cn.clk, cfg.ClockPeriod, cfg.ClockPeriod, 0)
	cn.rst = b.Bit("rst")
	b.Wave("rstgen", cn.rst, []circuit.Time{0, cfg.ClockPeriod / 2},
		[]logic.Value{logic.V(1, 1), logic.V(1, 0)})
	cn.zero = b.Bit("c0")
	b.Const("c0gen", cn.zero, logic.V(1, 0))
	cn.one = b.Bit("c1")
	b.Const("c1gen", cn.one, logic.V(1, 1))

	// ---- Fetch: PC, instruction ROM, IR ----
	// PC bits exist first as placeholder nodes; their driving flip-flops
	// are added once next-PC logic is wired.
	pcq := make([]circuit.NodeID, 8)
	for i := range pcq {
		pcq[i] = b.Bit(fmt.Sprintf("q_pc%d", i))
	}
	pcBus := cn.concatBus("pcbus", pcq)

	romMem := make([]uint64, 256)
	for i, ins := range cfg.Program {
		romMem[i] = uint64(ins)
	}
	romOut := b.Node("romout", 16)
	b.AddElement(circuit.KindRom, "irom", 2, []circuit.NodeID{romOut},
		[]circuit.NodeID{pcBus}, circuit.Params{Mem: romMem})
	romBits := cn.sliceBus("romb", romOut, 16)

	ir := make([]circuit.NodeID, 16)
	for i := range ir {
		ir[i] = cn.dffrNamed(fmt.Sprintf("ir%d", i), romBits[i])
	}

	// ---- Decode ----
	opBits := ir[12:16]
	opInv := make([]circuit.NodeID, 4)
	for i, ob := range opBits {
		opInv[i] = l.gate(circuit.KindNot, ob)
	}
	onehot := func(code int) circuit.NodeID {
		ins := make([]circuit.NodeID, 4)
		for i := 0; i < 4; i++ {
			if code>>i&1 == 1 {
				ins[i] = opBits[i]
			} else {
				ins[i] = opInv[i]
			}
		}
		return l.gate(circuit.KindAnd, ins...)
	}
	isLI := onehot(opLI)
	isADD := onehot(opADD)
	isSUB := onehot(opSUB)
	isAND := onehot(opAND)
	isOR := onehot(opOR)
	isXOR := onehot(opXOR)
	isADDI := onehot(opADDI)
	isBNEZ := onehot(opBNEZ)
	isJMP := onehot(opJMP)
	isLW := onehot(opLW)
	isSW := onehot(opSW)

	regwrite := l.gate(circuit.KindOr, isLI, isADD, isSUB, isAND, isOR, isXOR, isADDI, isLW)

	// ---- Register file: 16 x 16 flip-flops with write-port muxes ----
	rdBits := ir[8:12]
	rsBits := ir[4:8]
	rtBits := ir[0:4]
	rdInv := make([]circuit.NodeID, 4)
	for i, rb := range rdBits {
		rdInv[i] = l.gate(circuit.KindNot, rb)
	}
	we := make([]circuit.NodeID, 16)
	for r := 0; r < 16; r++ {
		ins := make([]circuit.NodeID, 0, 5)
		for i := 0; i < 4; i++ {
			if r>>i&1 == 1 {
				ins = append(ins, rdBits[i])
			} else {
				ins = append(ins, rdInv[i])
			}
		}
		ins = append(ins, regwrite)
		we[r] = l.gate(circuit.KindAnd, ins...)
	}

	// Write-back value bits are wired below; declare placeholders now.
	wb := make([]circuit.NodeID, 16)
	for bit := range wb {
		wb[bit] = b.Bit(fmt.Sprintf("wb%d", bit))
	}
	q := make([][]circuit.NodeID, 16) // q[r][bit]
	for r := 0; r < 16; r++ {
		q[r] = make([]circuit.NodeID, 16)
		for bit := 0; bit < 16; bit++ {
			qn := b.Node(CPURegNodeName(r, bit), 1)
			d := cn.mux(we[r], qn, wb[bit])
			cn.dffrInto(qn, fmt.Sprintf("r%d_b%d", r, bit), d)
			q[r][bit] = qn
		}
	}

	// Read ports.
	rsv := make([]circuit.NodeID, 16)
	rtv := make([]circuit.NodeID, 16)
	for bit := 0; bit < 16; bit++ {
		col := make([]circuit.NodeID, 16)
		for r := 0; r < 16; r++ {
			col[r] = q[r][bit]
		}
		rsv[bit] = cn.muxTree(col, rsBits)
		rtv[bit] = cn.muxTree(col, rtBits)
	}

	// ---- ALU ----
	subsig := isSUB
	aluBImm := isADDI
	bsel := make([]circuit.NodeID, 16)
	for bit := 0; bit < 16; bit++ {
		immBit := cn.zero
		if bit < 4 {
			immBit = rtBits[bit] // imm4 occupies the rt field
		}
		bsel[bit] = cn.mux(aluBImm, rtv[bit], immBit)
	}
	sum := make([]circuit.NodeID, 16)
	carry := subsig // +1 when subtracting (two's complement)
	for bit := 0; bit < 16; bit++ {
		bx := l.gate(circuit.KindXor, bsel[bit], subsig)
		sum[bit], carry = l.fullAdder(rsv[bit], bx, carry)
	}
	alur := make([]circuit.NodeID, 16)
	for bit := 0; bit < 16; bit++ {
		andr := l.gate(circuit.KindAnd, rsv[bit], bsel[bit])
		orr := l.gate(circuit.KindOr, rsv[bit], bsel[bit])
		xorr := l.gate(circuit.KindXor, rsv[bit], bsel[bit])
		r1 := cn.mux(isAND, sum[bit], andr)
		r2 := cn.mux(isOR, r1, orr)
		alur[bit] = cn.mux(isXOR, r2, xorr)
	}

	// ---- Data memory ----
	addrBus := cn.concatBus("maddr", rsv[:8])
	wdataBus := cn.concatBus("mwdata", rtv)
	ramOut := b.Node("mrdata", 16)
	b.AddElement(circuit.KindRam, "dram", 2, []circuit.NodeID{ramOut},
		[]circuit.NodeID{cn.clk, isSW, addrBus, wdataBus}, circuit.Params{})
	ramBits := cn.sliceBus("mrd", ramOut, 16)

	// ---- Write-back selection ----
	for bit := 0; bit < 16; bit++ {
		immBit := cn.zero
		if bit < 8 {
			immBit = ir[bit] // imm8 occupies the low byte
		}
		w1 := cn.mux(isLI, alur[bit], immBit)
		w2 := cn.mux(isLW, w1, ramBits[bit])
		b.Gate(circuit.KindBuf, fmt.Sprintf("wbb%d", bit), 1, wb[bit], w2)
	}

	// ---- Next PC ----
	rsnz := l.gate(circuit.KindOr, rsv...)
	taken := l.gate(circuit.KindAnd, isBNEZ, rsnz)
	// PC + 1.
	pcinc := make([]circuit.NodeID, 8)
	c := cn.one
	for bit := 0; bit < 8; bit++ {
		pcinc[bit], c = l.halfAdder(pcq[bit], c)
	}
	// Branch target = PC + 1 + sext(off4); the offset sits in ir[3:0] and
	// ir[3] supplies the sign bits.
	brt := make([]circuit.NodeID, 8)
	c = cn.zero
	for bit := 0; bit < 8; bit++ {
		off := ir[3]
		if bit < 4 {
			off = ir[bit]
		}
		brt[bit], c = l.fullAdder(pcinc[bit], off, c)
	}
	for bit := 0; bit < 8; bit++ {
		n1 := cn.mux(taken, pcinc[bit], brt[bit])
		npc := cn.mux(isJMP, n1, ir[bit])
		cn.dffrNamed(fmt.Sprintf("pc%d", bit), npc)
	}
	return b.MustBuild()
}

// dffrNamed adds a reset-to-zero flip-flop whose q node is named "q_"+name.
func (cn *cpuNodes) dffrNamed(name string, d circuit.NodeID) circuit.NodeID {
	q := cn.b.Bit("q_" + name)
	cn.dffrInto(q, name, d)
	return q
}

// dffrInto adds a reset-to-zero flip-flop driving an existing node.
func (cn *cpuNodes) dffrInto(q circuit.NodeID, name string, d circuit.NodeID) {
	cn.b.AddElement(circuit.KindDFFR, "ff_"+name, 1, []circuit.NodeID{q},
		[]circuit.NodeID{cn.clk, cn.rst, d}, circuit.Params{Init: logic.V(1, 0)})
}
