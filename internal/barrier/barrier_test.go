package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSingleWorker(t *testing.T) {
	b := New(1)
	var s Sense
	for i := 0; i < 100; i++ {
		b.Wait(&s) // must never block
	}
}

func TestPhasesStayAligned(t *testing.T) {
	const workers = 8
	const rounds = 500
	b := New(workers)
	var phase atomic.Int64
	counts := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s Sense
			for r := 0; r < rounds; r++ {
				// Every worker increments once per round; after the barrier
				// the total must be exactly workers * (r+1).
				phase.Add(1)
				b.Wait(&s)
				if got := phase.Load(); got != int64(workers*(r+1)) {
					t.Errorf("worker %d round %d: phase = %d, want %d",
						w, r, got, workers*(r+1))
					return
				}
				counts[w]++
				b.Wait(&s)
			}
		}(w)
	}
	wg.Wait()
	for w, c := range counts {
		if c != rounds {
			t.Errorf("worker %d completed %d rounds", w, c)
		}
	}
}

func TestOversubscribed(t *testing.T) {
	// More workers than cores: the Gosched path must avoid livelock.
	const workers = 32
	b := New(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s Sense
			for r := 0; r < 50; r++ {
				b.Wait(&s)
			}
		}()
	}
	wg.Wait()
}

func TestBadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}
