// Package barrier implements the sense-reversing spin barrier that
// synchronises the synchronous simulators at the end of every phase — the
// cost the paper's asynchronous algorithm exists to eliminate.
package barrier

import (
	"runtime"
	"sync/atomic"
)

// Barrier synchronises a fixed set of workers. Each worker must carry its
// own Sense and pass it to every Wait call.
type Barrier struct {
	n       int32
	count   atomic.Int32
	sense   atomic.Int32
	aborted atomic.Bool
}

// Sense is a worker-local barrier phase flag; its zero value is ready for
// the first Wait.
type Sense struct{ v int32 }

// New returns a barrier for n workers.
func New(n int) *Barrier {
	if n < 1 {
		panic("barrier: need at least one worker")
	}
	return &Barrier{n: int32(n)}
}

// Wait blocks until all n workers have called Wait with their own Sense,
// or until the barrier is aborted. It returns true on a normal release
// and false once aborted; after an abort the barrier is dead and every
// Wait returns false immediately. The last worker to arrive releases the
// rest; waiting workers spin, yielding to the scheduler so
// oversubscribed configurations make progress.
func (b *Barrier) Wait(s *Sense) bool {
	if b.aborted.Load() {
		return false
	}
	s.v ^= 1
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s.v)
		return !b.aborted.Load()
	}
	for i := 0; b.sense.Load() != s.v; i++ {
		if b.aborted.Load() {
			return false
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
	return !b.aborted.Load()
}

// Abort poisons the barrier: every current and future Wait returns false.
// The supervision layer calls it when a worker in the gang dies or the
// watchdog declares a stall, so no surviving worker is left spinning for
// a peer that will never arrive.
func (b *Barrier) Abort() { b.aborted.Store(true) }
