// Package cluster is the fleet layer over parsimd: a coordinator/worker
// topology where parsimd nodes register over HTTP/JSON, jobs are sharded
// by a consistent hash ring over a content-addressed job key, identical
// submissions are deduped against a bounded LRU result cache, and
// backpressure composes end to end (node-full spills to the next ring
// successor; the client sees 429 + Retry-After only when the whole fleet
// is full). Node death is detected by missed heartbeats; an evicted
// node's in-flight jobs are requeued onto the survivors, resuming from
// the dead node's last checkpoint snapshot when one is readable.
//
// The package deliberately does not import internal/server: the
// coordinator talks to workers only over their public HTTP API, so any
// parsimd — in-process in a test, a separate process on one host, or a
// remote box — is a valid fleet member. internal/server imports this
// package for the job key and the result cache, which the standalone
// daemon reuses to dedup identical submissions on a single node.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parsim/internal/circuit"
	"parsim/internal/engine"
	"parsim/internal/netlist"
)

// KeyOptions are the submission options folded into the content-addressed
// job key: everything that can change the bytes of the run report. Two
// submissions with equal keys simulate the same circuit the same way and
// produce identical results, so the second can be served from the first's
// cached report. Deadlines and watchdog windows are deliberately absent —
// they bound a run's wall clock without changing its result.
type KeyOptions struct {
	Engine         string // canonical engine name (aliases resolved)
	Workers        int
	Horizon        int64
	CostSpin       int64
	Lint           string
	Fallback       bool
	Lanes          int
	LaneStride     int64
	ProbeLane      int
	FaultSim       bool
	FaultMaxPasses int
	FaultStatuses  bool
}

// CircuitKey computes the content-addressed job key: the SHA-256 of a
// canonical serialization of the circuit plus the option digest. The
// serialization sorts nodes and elements by name and emits every
// parameter field in a fixed order, so two netlists that declare the same
// circuit in different textual orders — the parser assigns IDs by
// declaration order — hash to the same key.
func CircuitKey(c *circuit.Circuit, opts KeyOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "parsim-job-key/v1\ncircuit %s\n", c.Name)

	names := make([]string, len(c.Nodes))
	for i := range c.Nodes {
		names[i] = c.Nodes[i].Name
	}
	sort.Strings(names)
	for _, name := range names {
		n := &c.Nodes[c.ByName[name]]
		fmt.Fprintf(h, "node %s %d\n", n.Name, n.Width)
	}

	elems := make([]string, len(c.Elems))
	for i := range c.Elems {
		elems[i] = c.Elems[i].Name
	}
	sort.Strings(elems)
	for _, name := range elems {
		el := &c.Elems[c.ElByName[name]]
		fmt.Fprintf(h, "elem %s %s delay=%d out=%s in=%s ",
			circuit.KindName(el.Kind), el.Name, el.Delay,
			nodeNames(c, el.Out), nodeNames(c, el.In))
		writeParams(h, &el.Params)
		io.WriteString(h, "\n")
	}

	if opts.Workers <= 0 {
		opts.Workers = 1 // a zero request means "one worker" everywhere downstream
	}
	fmt.Fprintf(h, "opts engine=%s workers=%d horizon=%d spin=%d lint=%s fallback=%t lanes=%d stride=%d probe=%d faults=%t fpasses=%d fstat=%t\n",
		opts.Engine, opts.Workers, opts.Horizon, opts.CostSpin, opts.Lint,
		opts.Fallback, opts.Lanes, opts.LaneStride, opts.ProbeLane,
		opts.FaultSim, opts.FaultMaxPasses, opts.FaultStatuses)
	return hex.EncodeToString(h.Sum(nil))
}

// nodeNames joins the names behind a port list; port order is semantic
// and preserved.
func nodeNames(c *circuit.Circuit, ids []circuit.NodeID) string {
	if len(ids) == 0 {
		return "-"
	}
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = c.Nodes[id].Name
	}
	return strings.Join(names, ",")
}

// writeParams emits every Params field in a fixed order. Unused fields
// serialize as their zero forms, so the digest never depends on which
// fields a kind happens to read.
func writeParams(w io.Writer, p *circuit.Params) {
	fmt.Fprintf(w, "init=%s period=%d phase=%d duty=%d seed=%d lo=%d shift=%d",
		p.Init, p.Period, p.Phase, p.Duty, p.Seed, p.Lo, p.Shift)
	io.WriteString(w, " times=")
	for i, t := range p.Times {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, strconv.FormatInt(int64(t), 10))
	}
	io.WriteString(w, " values=")
	for i, v := range p.Values {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, v.String())
	}
	io.WriteString(w, " mem=")
	for i, m := range p.Mem {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, strconv.FormatUint(m, 10))
	}
}

// Submission mirrors the result-affecting fields of the parsimd
// submission body (internal/server's jobRequest wire format). The
// coordinator decodes just enough of a submission to compute its key and
// route it; the full body is forwarded to the worker verbatim, so fields
// this mirror omits (deadline_ms, watchdog_ms, watch) still reach the
// node that runs the job.
type Submission struct {
	Netlist        string `json:"netlist"`
	Engine         string `json:"engine"`
	Workers        int    `json:"workers,omitempty"`
	Horizon        int64  `json:"horizon"`
	Lint           string `json:"lint,omitempty"`
	Fallback       bool   `json:"fallback,omitempty"`
	CostSpin       int64  `json:"cost_spin,omitempty"`
	Watch          []string `json:"watch,omitempty"`
	Lanes          int    `json:"lanes,omitempty"`
	LaneStride     int64  `json:"lane_stride,omitempty"`
	ProbeLane      int    `json:"probe_lane,omitempty"`
	FaultSim       bool   `json:"fault_sim,omitempty"`
	FaultMaxPasses int    `json:"fault_max_passes,omitempty"`
	FaultStatuses  bool   `json:"fault_statuses,omitempty"`
}

// keyOptions maps the wire fields onto KeyOptions, resolving engine
// aliases through the registry when the engine is known locally (the
// worker canonicalizes the same way, so "seq" and "sequential" dedup
// together); an unknown name is hashed as written and rejected by the
// worker at admission.
func (s *Submission) keyOptions() KeyOptions {
	name := s.Engine
	if eng, err := engine.Get(name); err == nil {
		name = eng.Name()
	}
	workers := s.Workers
	if workers == 0 {
		workers = 1
	}
	lint := s.Lint
	if mode, err := engine.ParseLintMode(lint); err == nil {
		lint = mode.String()
	}
	return KeyOptions{
		Engine:         name,
		Workers:        workers,
		Horizon:        s.Horizon,
		CostSpin:       s.CostSpin,
		Lint:           lint,
		Fallback:       s.Fallback,
		Lanes:          s.Lanes,
		LaneStride:     s.LaneStride,
		ProbeLane:      s.ProbeLane,
		FaultSim:       s.FaultSim,
		FaultMaxPasses: s.FaultMaxPasses,
		FaultStatuses:  s.FaultStatuses,
	}
}

// KeyForSubmission computes the job key for an already-parsed circuit
// plus the wire-level submission options — the entry point the daemon
// uses, since admission control has parsed the netlist anyway.
func KeyForSubmission(c *circuit.Circuit, s *Submission) string {
	return CircuitKey(c, s.keyOptions())
}

// SubmissionKey decodes a raw submission body, parses its netlist under
// the given limits and returns the content-addressed job key plus the
// decoded mirror. The error is suitable for a 400 response: a body the
// coordinator cannot key is one no worker could admit either.
func SubmissionKey(body []byte, lim netlist.Limits) (string, *Submission, error) {
	var sub Submission
	if err := json.Unmarshal(body, &sub); err != nil {
		return "", nil, fmt.Errorf("malformed JSON body: %v", err)
	}
	circ, err := netlist.ReadLimited(strings.NewReader(sub.Netlist), lim)
	if err != nil {
		return "", nil, fmt.Errorf("netlist: %w", err)
	}
	return CircuitKey(circ, sub.keyOptions()), &sub, nil
}
