package cluster

import (
	"fmt"
	"math"
	"testing"
)

// ringKeys returns n deterministic synthetic job keys. Real job keys are
// hex SHA-256 digests, so hashing the index through hash64 first gives
// the same uniformity without pulling in the key builder.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x", hash64(fmt.Sprintf("job-key-%d", i)))
	}
	return keys
}

// TestRingBalance checks the headline property from the issue: with the
// default 64 vnodes per member, key ownership across every fleet size
// from 3 to 16 nodes stays within 15% relative spread of a perfectly
// even split.
func TestRingBalance(t *testing.T) {
	const nKeys = 20000
	keys := ringKeys(nKeys)
	for nodes := 3; nodes <= 16; nodes++ {
		r := NewRing(DefaultVNodes)
		for i := 0; i < nodes; i++ {
			r.Add(fmt.Sprintf("10.0.0.%d:8080", i+1))
		}
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		if len(counts) != nodes {
			t.Fatalf("%d nodes: only %d received keys", nodes, len(counts))
		}
		mean := float64(nKeys) / float64(nodes)
		var sumSq float64
		for _, c := range counts {
			d := float64(c) - mean
			sumSq += d * d
		}
		relStddev := math.Sqrt(sumSq/float64(nodes)) / mean
		if relStddev > 0.15 {
			t.Errorf("%d nodes: relative stddev %.3f > 0.15 (counts %v)", nodes, relStddev, counts)
		}
	}
}

// TestRingMinimalMovement verifies consistent hashing's reason to exist:
// adding or removing one member only moves the keys that land on that
// member, never reshuffles ownership between surviving members.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(5000)
	r := NewRing(DefaultVNodes)
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	for _, m := range members {
		r.Add(m)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	// Join: keys either stay put or move to the new member.
	r.Add("e:1")
	moved := 0
	for _, k := range keys {
		owner := r.Lookup(k)
		if owner != before[k] {
			if owner != "e:1" {
				t.Fatalf("join moved key %s between survivors: %s -> %s", k, before[k], owner)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("join moved no keys onto the new member")
	}
	// The new member should take roughly its fair share, 1/5th.
	if frac := float64(moved) / float64(len(keys)); frac > 0.35 {
		t.Errorf("join moved %.0f%% of keys; want roughly 20%%", frac*100)
	}

	// Leave: only the departed member's keys move; everything else is
	// exactly where it was before the join.
	r.Remove("e:1")
	for _, k := range keys {
		if owner := r.Lookup(k); owner != before[k] {
			t.Fatalf("leave did not restore key %s: %s -> %s", k, before[k], owner)
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := []string{"a:1", "b:1", "c:1"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range ringKeys(100) {
		succ := r.Successors(k, 5)
		if len(succ) != 3 {
			t.Fatalf("Successors(%s, 5) = %v; want all 3 distinct members", k, succ)
		}
		seen := make(map[string]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%s, 5) repeats %s: %v", k, s, succ)
			}
			seen[s] = true
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("Successors(%s)[0] = %s; Lookup = %s", k, succ[0], r.Lookup(k))
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0) // 0 falls back to DefaultVNodes
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("Lookup on empty ring = %q; want empty", got)
	}
	if succ := r.Successors("anything", 3); len(succ) != 0 {
		t.Fatalf("Successors on empty ring = %v; want none", succ)
	}
	if !r.Add("a:1") {
		t.Fatal("first Add returned false")
	}
	if r.Add("a:1") {
		t.Fatal("duplicate Add returned true")
	}
	if got := r.Lookup("anything"); got != "a:1" {
		t.Fatalf("single-member Lookup = %q; want a:1", got)
	}
	if !r.Remove("a:1") {
		t.Fatal("Remove of member returned false")
	}
	if r.Remove("a:1") {
		t.Fatal("Remove of absent member returned true")
	}
	if r.Size() != 0 {
		t.Fatalf("Size after removal = %d; want 0", r.Size())
	}
}
