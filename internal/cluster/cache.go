package cluster

import (
	"container/list"
	"sync"
)

// ResultCache is a bounded LRU keyed by content-addressed job key. The
// coordinator stores finished job records in it; the standalone daemon
// stores *parsim.Result. Values are opaque to the cache — holding them as
// any keeps internal/server → internal/cluster a one-way import.
//
// A zero-capacity cache is valid and never stores anything, which is how
// dedup stays opt-in: callers that never enable it share one code path
// with callers that do.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

// NewResultCache returns a cache holding at most capacity entries;
// capacity <= 0 disables storage entirely.
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and refreshes its recency.
func (c *ResultCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores (or refreshes) key → val, evicting the least recently used
// entry when the cache is at capacity.
func (c *ResultCache) Put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
