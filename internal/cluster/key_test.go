package cluster

import (
	"strings"
	"testing"

	"parsim/internal/circuit"
	"parsim/internal/netlist"

	_ "parsim" // registers the engines so key canonicalization resolves aliases
)

// Two textual spellings of the same circuit: node and element lines are
// shuffled, whitespace differs, and the circuit arrives with different
// internal node IDs. The content-addressed key must not care.
const keyNetlistA = `circuit ring
node clk 1
node a 1
node b 1
node q 1
elem clock osc delay=1 out=clk period=8
elem not n1 delay=1 out=a in=clk
elem not n2 delay=1 out=b in=a
elem not n3 delay=1 out=q in=b
`

const keyNetlistB = `circuit ring
node q 1
node b 1
node clk 1
node a 1
elem not n3 delay=1 out=q in=b
elem not n2 delay=1 out=b in=a
elem clock osc delay=1 out=clk period=8
elem not n1 delay=1 out=a in=clk
`

func parseNetlist(t *testing.T, text string) *circuit.Circuit {
	t.Helper()
	c, err := netlist.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCircuitKeyOrderIndependent(t *testing.T) {
	opts := KeyOptions{Engine: "event-driven", Workers: 4, Horizon: 100}
	ka := CircuitKey(parseNetlist(t, keyNetlistA), opts)
	kb := CircuitKey(parseNetlist(t, keyNetlistB), opts)
	if ka != kb {
		t.Fatalf("same circuit, different textual order: keys differ\n a=%s\n b=%s", ka, kb)
	}
	if len(ka) != 64 {
		t.Fatalf("key %q is not a hex SHA-256 digest", ka)
	}
}

func TestCircuitKeySensitivity(t *testing.T) {
	base := parseNetlist(t, keyNetlistA)
	opts := KeyOptions{Engine: "event-driven", Workers: 4, Horizon: 100}
	ref := CircuitKey(base, opts)

	// Any result-affecting change must change the key.
	cases := []struct {
		name string
		key  string
	}{
		{"different engine", CircuitKey(base, KeyOptions{Engine: "sequential", Workers: 4, Horizon: 100})},
		{"different horizon", CircuitKey(base, KeyOptions{Engine: "event-driven", Workers: 4, Horizon: 200})},
		{"fault sim on", CircuitKey(base, KeyOptions{Engine: "event-driven", Workers: 4, Horizon: 100, FaultSim: true})},
		{"different circuit", CircuitKey(parseNetlist(t, strings.Replace(keyNetlistA, "period=8", "period=6", 1)), opts)},
		{"renamed element", CircuitKey(parseNetlist(t, strings.Replace(keyNetlistA, "not n3", "not n9", 1)), opts)},
	}
	for _, tc := range cases {
		if tc.key == ref {
			t.Errorf("%s: key unchanged", tc.name)
		}
	}

	// Workers changes the parallel schedule, not the result inputs the
	// daemon exposes, but it is part of the submission contract — 0 and 1
	// canonicalize together, other counts differ.
	if CircuitKey(base, KeyOptions{Engine: "event-driven", Workers: 0, Horizon: 100}) !=
		CircuitKey(base, KeyOptions{Engine: "event-driven", Workers: 1, Horizon: 100}) {
		t.Error("workers 0 and 1 should canonicalize to the same key")
	}
}

func TestKeyForSubmissionCanonicalizesAliases(t *testing.T) {
	c := parseNetlist(t, keyNetlistA)
	aliased := KeyForSubmission(c, &Submission{Engine: "seq", Horizon: 50})
	canonical := KeyForSubmission(c, &Submission{Engine: "sequential", Horizon: 50})
	if aliased != canonical {
		t.Fatalf("alias seq and canonical sequential hash differently:\n %s\n %s", aliased, canonical)
	}
	off := KeyForSubmission(c, &Submission{Engine: "event", Horizon: 50, Lint: "off"})
	empty := KeyForSubmission(c, &Submission{Engine: "event-driven", Horizon: 50})
	if off != empty {
		t.Fatalf("lint \"off\" and unset hash differently:\n %s\n %s", off, empty)
	}
}

func TestSubmissionKeyLifecycle(t *testing.T) {
	lim := netlist.Limits{MaxBytes: 1 << 20, MaxNodes: 1000, MaxElems: 1000}
	keyA, subA, err := SubmissionKey([]byte(`{"netlist":`+quoteJSON(keyNetlistA)+`,"engine":"event","horizon":100}`), lim)
	if err != nil {
		t.Fatal(err)
	}
	keyB, _, err := SubmissionKey([]byte(`{"netlist":`+quoteJSON(keyNetlistB)+`,"engine":"event-driven","horizon":100}`), lim)
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("reordered netlist + aliased engine should dedup:\n %s\n %s", keyA, keyB)
	}
	if subA.Engine != "event" || subA.Horizon != 100 {
		t.Fatalf("parsed submission mangled: %+v", subA)
	}
	if _, _, err := SubmissionKey([]byte(`{"netlist": 42}`), lim); err == nil {
		t.Fatal("malformed body accepted")
	}
}

func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\n':
			b.WriteString(`\n`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
