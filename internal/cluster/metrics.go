package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// fleetMetrics is the coordinator's counter surface, aggregated across
// the fleet and rendered in Prometheus text exposition format alongside
// the per-node gauges from the latest heartbeats. One mutex guards all
// counters; every increment is a single short critical section.
type fleetMetrics struct {
	mu            sync.Mutex
	submitted     int64
	rejected      map[int]int64    // HTTP status -> refused submissions
	routed        map[string]int64 // node addr -> jobs dispatched to it
	dedupCache    int64            // submissions served from the result cache
	dedupInflight int64            // submissions coalesced onto a live job
	spills        int64            // dispatches that skipped >=1 full node
	spilledNodes  int64            // total full/unreachable nodes skipped
	fleetFull     int64            // 429s because every node refused
	evictions     int64            // nodes evicted on missed heartbeats
	requeues      int64            // jobs re-dispatched after an eviction
	resumed       int64            // requeues that carried a snapshot path
	rebalances    int64            // ring membership changes (join/leave/evict)
	terminal      map[string]int64 // terminal state -> count
}

func newFleetMetrics() *fleetMetrics {
	return &fleetMetrics{
		rejected: make(map[int]int64),
		routed:   make(map[string]int64),
		terminal: make(map[string]int64),
	}
}

func (m *fleetMetrics) onSubmit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *fleetMetrics) onReject(status int) {
	m.mu.Lock()
	m.rejected[status]++
	m.mu.Unlock()
}

func (m *fleetMetrics) onRoute(node string, skipped int) {
	m.mu.Lock()
	m.routed[node]++
	if skipped > 0 {
		m.spills++
		m.spilledNodes += int64(skipped)
	}
	m.mu.Unlock()
}

func (m *fleetMetrics) onDedup(fromCache bool) {
	m.mu.Lock()
	if fromCache {
		m.dedupCache++
	} else {
		m.dedupInflight++
	}
	m.mu.Unlock()
}

func (m *fleetMetrics) onFleetFull() {
	m.mu.Lock()
	m.fleetFull++
	m.mu.Unlock()
}

func (m *fleetMetrics) onEvict() {
	m.mu.Lock()
	m.evictions++
	m.rebalances++
	m.mu.Unlock()
}

func (m *fleetMetrics) onMembership() {
	m.mu.Lock()
	m.rebalances++
	m.mu.Unlock()
}

func (m *fleetMetrics) onRequeue(withSnapshot bool) {
	m.mu.Lock()
	m.requeues++
	if withSnapshot {
		m.resumed++
	}
	m.mu.Unlock()
}

func (m *fleetMetrics) onTerminal(state string) {
	m.mu.Lock()
	m.terminal[state]++
	m.mu.Unlock()
}

// nodeRow is one member's gauge snapshot for the metrics page, taken from
// its latest heartbeat.
type nodeRow struct {
	addr       string
	beatAgeSec float64
	gauges     NodeGauges
}

// render writes the fleet metrics page. The caller passes the current
// member gauge snapshot; the counters come from m itself.
func (m *fleetMetrics) render(w io.Writer, nodes []nodeRow) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP parsimd_fleet_nodes Current fleet membership.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_nodes gauge\n")
	fmt.Fprintf(w, "parsimd_fleet_nodes %d\n", len(nodes))

	queueDepth, running := 0, 0
	for _, n := range nodes {
		queueDepth += n.gauges.QueueDepth
		running += n.gauges.Running
	}
	fmt.Fprintf(w, "# HELP parsimd_fleet_queue_depth Queued jobs, per node and fleet-wide.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_queue_depth gauge\n")
	fmt.Fprintf(w, "parsimd_fleet_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP parsimd_fleet_jobs_running Running jobs, per node and fleet-wide.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_jobs_running gauge\n")
	fmt.Fprintf(w, "parsimd_fleet_jobs_running %d\n", running)
	for _, n := range nodes {
		fmt.Fprintf(w, "parsimd_fleet_node_queue_depth{node=%q} %d\n", n.addr, n.gauges.QueueDepth)
		fmt.Fprintf(w, "parsimd_fleet_node_jobs_running{node=%q} %d\n", n.addr, n.gauges.Running)
		fmt.Fprintf(w, "parsimd_fleet_node_cores_in_use{node=%q} %d\n", n.addr, n.gauges.CoresInUse)
		fmt.Fprintf(w, "parsimd_fleet_node_core_budget{node=%q} %d\n", n.addr, n.gauges.CoreBudget)
		fmt.Fprintf(w, "parsimd_fleet_node_heartbeat_age_seconds{node=%q} %.3f\n", n.addr, n.beatAgeSec)
	}

	fmt.Fprintf(w, "# HELP parsimd_fleet_jobs_submitted_total Submissions accepted by the coordinator.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_jobs_submitted_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_jobs_submitted_total %d\n", m.submitted)

	fmt.Fprintf(w, "# HELP parsimd_fleet_jobs_rejected_total Refused submissions by status.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_jobs_rejected_total counter\n")
	for _, status := range sortedIntKeys(m.rejected) {
		fmt.Fprintf(w, "parsimd_fleet_jobs_rejected_total{status=\"%d\"} %d\n", status, m.rejected[status])
	}

	fmt.Fprintf(w, "# HELP parsimd_fleet_jobs_routed_total Jobs dispatched, by node.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_jobs_routed_total counter\n")
	for _, addr := range sortedStrKeys(m.routed) {
		fmt.Fprintf(w, "parsimd_fleet_jobs_routed_total{node=%q} %d\n", addr, m.routed[addr])
	}

	fmt.Fprintf(w, "# HELP parsimd_fleet_dedup_hits_total Submissions served without a new simulation.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_dedup_hits_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_dedup_hits_total{source=\"cache\"} %d\n", m.dedupCache)
	fmt.Fprintf(w, "parsimd_fleet_dedup_hits_total{source=\"inflight\"} %d\n", m.dedupInflight)
	if m.submitted > 0 {
		ratio := float64(m.dedupCache+m.dedupInflight) / float64(m.submitted)
		fmt.Fprintf(w, "# HELP parsimd_fleet_dedup_hit_ratio Dedup hits / accepted submissions.\n")
		fmt.Fprintf(w, "# TYPE parsimd_fleet_dedup_hit_ratio gauge\n")
		fmt.Fprintf(w, "parsimd_fleet_dedup_hit_ratio %.4f\n", ratio)
	}

	fmt.Fprintf(w, "# HELP parsimd_fleet_spills_total Dispatches that spilled past a full or unreachable node.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_spills_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_spills_total %d\n", m.spills)
	fmt.Fprintf(w, "parsimd_fleet_spilled_nodes_total %d\n", m.spilledNodes)
	fmt.Fprintf(w, "# HELP parsimd_fleet_full_total Submissions answered 429 because every node refused.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_full_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_full_total %d\n", m.fleetFull)

	fmt.Fprintf(w, "# HELP parsimd_fleet_evictions_total Nodes evicted on missed heartbeats.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_evictions_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_evictions_total %d\n", m.evictions)
	fmt.Fprintf(w, "# HELP parsimd_fleet_requeues_total In-flight jobs re-dispatched after an eviction.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_requeues_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_requeues_total %d\n", m.requeues)
	fmt.Fprintf(w, "parsimd_fleet_requeues_resumed_total %d\n", m.resumed)
	fmt.Fprintf(w, "# HELP parsimd_fleet_rebalances_total Ring membership changes (joins, leaves, evictions).\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_rebalances_total counter\n")
	fmt.Fprintf(w, "parsimd_fleet_rebalances_total %d\n", m.rebalances)

	fmt.Fprintf(w, "# HELP parsimd_fleet_jobs_total Jobs by terminal state.\n")
	fmt.Fprintf(w, "# TYPE parsimd_fleet_jobs_total counter\n")
	for _, state := range sortedStrKeys(m.terminal) {
		fmt.Fprintf(w, "parsimd_fleet_jobs_total{state=%q} %d\n", state, m.terminal[state])
	}
}

func sortNodeRows(rows []nodeRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].addr < rows[j].addr })
}

func sortedIntKeys(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedStrKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
