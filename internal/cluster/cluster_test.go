// Package cluster_test is the multi-node end-to-end suite: real server
// instances behind httptest listeners join a real coordinator, jobs flow
// through the ring, and a mid-run node kill exercises eviction, requeue
// and snapshot resume. Everything runs in-process — the fleet protocol
// is plain HTTP, so "three nodes" is three handlers on loopback.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parsim/internal/cluster"
	"parsim/internal/netlist"
	"parsim/internal/server"

	_ "parsim" // registers the engines
)

const fleetNetlist = `circuit ring
node clk 1
node a 1
node b 1
node q 1
elem clock osc delay=1 out=clk period=8
elem not n1 delay=1 out=a in=clk
elem not n2 delay=1 out=b in=a
elem not n3 delay=1 out=q in=b
`

// crashableTransport lets a test "kill" a node's heartbeats abruptly —
// the way a crashed process stops beating — without the graceful leave a
// context cancellation would send.
type crashableTransport struct{ dead *atomic.Bool }

func (ct crashableTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if ct.dead.Load() {
		return nil, errors.New("node crashed")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// fleetNode is one in-process worker: a full server.Server plus its
// membership joiner.
type fleetNode struct {
	srv      *server.Server
	ts       *httptest.Server
	addr     string
	stateDir string
	dead     *atomic.Bool
	joinStop context.CancelFunc
	joinDone chan struct{}
	killed   bool
}

type fleet struct {
	t       *testing.T
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	nodes   []*fleetNode
}

// fleetOpts tune the test fleet away from its defaults.
type fleetOpts struct {
	coreBudget int           // per-node cores (default 2)
	maxQueue   int           // per-node admission queue (default 16)
	evictAfter time.Duration // coordinator failure-detector window (default 3x heartbeat)
}

// newFleet builds a coordinator and n durable worker nodes, waits until
// every node has joined, and registers teardown in the right order
// (joiners first, then the coordinator, then the workers) so no goroutine
// logs into a finished test.
func newFleet(t *testing.T, n int, opts fleetOpts) *fleet {
	t.Helper()
	if opts.coreBudget == 0 {
		opts.coreBudget = 2
	}
	if opts.maxQueue == 0 {
		opts.maxQueue = 16
	}
	root := t.TempDir()
	f := &fleet{t: t}
	f.coord = cluster.NewCoordinator(cluster.Config{
		HeartbeatEvery: 50 * time.Millisecond,
		EvictAfter:     opts.evictAfter,
		CacheEntries:   64,
		Logf:           t.Logf,
	})
	f.coordTS = httptest.NewServer(f.coord.Handler())

	for i := 0; i < n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{
			CoreBudget:      opts.coreBudget,
			MaxQueue:        opts.maxQueue,
			StateDir:        dir,
			CheckpointEvery: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		node := &fleetNode{
			srv:      srv,
			ts:       ts,
			addr:     ts.Listener.Addr().String(),
			stateDir: dir,
			dead:     &atomic.Bool{},
			joinDone: make(chan struct{}),
		}
		ctx, cancel := context.WithCancel(context.Background())
		node.joinStop = cancel
		jn := &cluster.Joiner{
			Coordinator: f.coordTS.URL,
			Advertise:   node.addr,
			Cores:       opts.coreBudget,
			MaxQueue:    opts.maxQueue,
			StateDir:    dir,
			Gauges: func() cluster.NodeGauges {
				return cluster.NodeGauges{
					QueueDepth: srv.QueueDepth(),
					Running:    srv.RunningJobs(),
					CoresInUse: srv.CoresInUse(),
					CoreBudget: srv.CoreBudget(),
				}
			},
			Client: &http.Client{Timeout: 2 * time.Second, Transport: crashableTransport{dead: node.dead}},
			Logf:   t.Logf,
		}
		go func() {
			defer close(node.joinDone)
			jn.Run(ctx)
		}()
		f.nodes = append(f.nodes, node)
	}

	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.joinStop()
			<-node.joinDone
		}
		f.coord.Close()
		f.coordTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, node := range f.nodes {
			if !node.killed {
				node.ts.Close()
				node.srv.Drain(ctx)
			}
		}
	})

	// Fleet ready: every node joined.
	deadline := time.Now().Add(10 * time.Second)
	for len(f.coord.Members()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d nodes joined: %v", len(f.coord.Members()), n, f.coord.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return f
}

// kill simulates an abrupt node death: heartbeats stop, the listener
// closes, and running jobs are cancelled — nothing leaves gracefully.
func (f *fleet) kill(node *fleetNode) {
	node.dead.Store(true)
	node.ts.Close()
	node.killed = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	node.srv.Drain(ctx)
}

// submit posts a job body to the coordinator and returns the status and
// decoded view (nil on non-JSON errors).
func (f *fleet) submit(t *testing.T, body map[string]any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.coordTS.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view map[string]any
	json.NewDecoder(resp.Body).Decode(&view)
	return resp.StatusCode, view
}

// await polls a cluster job to a terminal state.
func (f *fleet) await(t *testing.T, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(f.coordTS.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view["state"] {
		case "done", "failed", "cancelled":
			return view
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

func (f *fleet) metrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(f.coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// jobBody builds a distinct submission by horizon.
func jobBody(engine string, horizon int64) map[string]any {
	return map[string]any{
		"netlist": fleetNetlist,
		"engine":  engine,
		"workers": 1,
		"horizon": horizon,
	}
}

// finalValues extracts result.Final from a terminal view.
func finalValues(t *testing.T, view map[string]any) []any {
	t.Helper()
	res, ok := view["result"].(map[string]any)
	if !ok {
		t.Fatalf("terminal view has no result: %v", view)
	}
	final, ok := res["final"].([]any)
	if !ok {
		t.Fatalf("result has no final values: %v", res)
	}
	return final
}

// TestFleetEndToEnd submits a batch of distinct jobs through a 3-node
// fleet, checks every result against a direct single-server run of the
// same body, then verifies an identical resubmission is a cache hit.
func TestFleetEndToEnd(t *testing.T) {
	f := newFleet(t, 3, fleetOpts{})

	// Reference: the same jobs on a plain standalone server.
	ref, err := server.New(server.Config{CoreBudget: 2, MaxQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(func() {
		refTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ref.Drain(ctx)
	})

	const jobs = 9
	ids := make([]string, jobs)
	bodies := make([]map[string]any, jobs)
	for i := range ids {
		bodies[i] = jobBody("sequential", int64(64+8*i))
		status, view := f.submit(t, bodies[i])
		if status != http.StatusAccepted {
			t.Fatalf("job %d: submit status %d (%v)", i, status, view)
		}
		id, _ := view["id"].(string)
		if !strings.HasPrefix(id, "c-") {
			t.Fatalf("job %d: cluster id %q", i, id)
		}
		ids[i] = id
	}
	for i, id := range ids {
		view := f.await(t, id, 30*time.Second)
		if view["state"] != "done" {
			t.Fatalf("job %d: state %v (error %v)", i, view["state"], view["error"])
		}
		if _, ok := view["node"].(string); !ok {
			t.Errorf("job %d: done view has no owning node", i)
		}

		b, _ := json.Marshal(bodies[i])
		resp, err := http.Post(refTS.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		var refSub map[string]any
		json.NewDecoder(resp.Body).Decode(&refSub)
		resp.Body.Close()
		refID, _ := refSub["id"].(string)
		refView := awaitURL(t, refTS.URL, refID, 30*time.Second)
		if !reflect.DeepEqual(finalValues(t, view), finalValues(t, refView)) {
			t.Errorf("job %d: fleet final values diverge from direct run", i)
		}
	}

	// Identical resubmission: served from the coordinator's result cache
	// without touching a worker.
	status, view := f.submit(t, bodies[0])
	if status != http.StatusOK {
		t.Fatalf("dedup resubmission: status %d, want 200 (%v)", status, view)
	}
	if view["deduped"] != true {
		t.Fatalf("dedup resubmission not marked: %v", view)
	}
	if view["state"] != "done" {
		t.Fatalf("dedup resubmission state %v", view["state"])
	}
	if !reflect.DeepEqual(finalValues(t, view), finalValues(t, f.await(t, ids[0], time.Second))) {
		t.Error("deduped view diverges from the original result")
	}

	body := f.metrics(t)
	for _, want := range []string{
		"parsimd_fleet_nodes 3",
		`parsimd_fleet_dedup_hits_total{source="cache"} 1`,
		fmt.Sprintf("parsimd_fleet_jobs_submitted_total %d", jobs+1),
		`parsimd_fleet_jobs_total{state="done"} 10`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet metrics missing %q\n%s", want, body)
		}
	}
	// Every routed job landed on a live member.
	for _, n := range f.nodes {
		if !strings.Contains(body, fmt.Sprintf("parsimd_fleet_node_core_budget{node=%q}", n.addr)) {
			t.Errorf("fleet metrics missing gauges for node %s", n.addr)
		}
	}
}

// awaitURL polls a worker-style job endpoint directly.
func awaitURL(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view map[string]any
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view["state"] {
		case "done", "failed", "cancelled":
			return view
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

// TestFleetNodeKillRequeue is the headline failure drill: kill the node
// running a checkpointing job mid-run and verify the coordinator evicts
// it, requeues the job on a survivor with the dead node's last snapshot,
// and the job still completes — resumed, not restarted.
func TestFleetNodeKillRequeue(t *testing.T) {
	f := newFleet(t, 3, fleetOpts{})

	// Background traffic on a non-checkpointing engine, so the only .ckpt
	// files on disk belong to the victim job.
	quickIDs := make([]string, 4)
	for i := range quickIDs {
		status, view := f.submit(t, jobBody("event-driven", int64(64+8*i)))
		if status != http.StatusAccepted {
			t.Fatalf("quick job %d: status %d", i, status)
		}
		quickIDs[i], _ = view["id"].(string)
	}

	// The victim job: slow enough to die mid-run, checkpointing every 50
	// steps so a snapshot exists almost immediately.
	slow := jobBody("sequential", 200000)
	slow["cost_spin"] = 400
	status, view := f.submit(t, slow)
	if status != http.StatusAccepted {
		t.Fatalf("slow job: status %d (%v)", status, view)
	}
	slowID, _ := view["id"].(string)

	// Find its node, then wait for its first snapshot to land on disk.
	var victim *fleetNode
	deadline := time.Now().Add(10 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("slow job never reported an owning node")
		}
		resp, err := http.Get(f.coordTS.URL + "/v1/jobs/" + slowID)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if addr, ok := v["node"].(string); ok {
			for _, n := range f.nodes {
				if n.addr == addr {
					victim = n
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("victim node never wrote a checkpoint; is the slow job too fast?")
		}
		entries, err := os.ReadDir(victim.stateDir)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".ckpt") {
				found = true
			}
		}
		if found {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	f.kill(victim)
	t.Logf("killed node %s mid-run", victim.addr)

	// Zero job loss: the slow job and all quick jobs complete.
	final := f.await(t, slowID, 120*time.Second)
	if final["state"] != "done" {
		t.Fatalf("slow job after node kill: state %v (error %v)", final["state"], final["error"])
	}
	res, _ := final["result"].(map[string]any)
	if res == nil {
		t.Fatal("slow job finished without a result")
	}
	if res["resumed"] != true {
		t.Errorf("requeued job replayed from t=0; want a snapshot resume (resumed=true)")
	}
	if node, _ := final["node"].(string); node == victim.addr {
		t.Errorf("job finished on the killed node %s", node)
	}
	for i, id := range quickIDs {
		if v := f.await(t, id, 60*time.Second); v["state"] != "done" {
			t.Errorf("quick job %d lost to the node kill: state %v (error %v)", i, v["state"], v["error"])
		}
	}

	body := f.metrics(t)
	for _, want := range []string{
		"parsimd_fleet_nodes 2",
		"parsimd_fleet_evictions_total 1",
		"parsimd_fleet_requeues_resumed_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet metrics missing %q\n%s", want, body)
		}
	}
	if strings.Contains(body, `parsimd_fleet_jobs_total{state="failed"}`) {
		t.Errorf("fleet reported failed jobs\n%s", body)
	}
}

// TestFleetBackpressure saturates a 2-node fleet whose nodes have tiny
// queues with slow jobs: submissions must spill between nodes while any
// capacity remains and only answer 429 + Retry-After once the whole
// fleet is full. Draining the backlog restores admission. The long
// evictAfter keeps the failure detector out of a test that saturates
// the CPU on purpose.
func TestFleetBackpressure(t *testing.T) {
	f := newFleet(t, 2, fleetOpts{coreBudget: 1, maxQueue: 2, evictAfter: 5 * time.Second})

	// Each node admits ~3 jobs (1 running + 2 queued) of ~650ms each, so
	// 16 near-instant submissions overrun the whole fleet well before the
	// first job drains. Distinct horizons so nothing dedups or coalesces.
	var accepted []string
	reject429 := 0
	for i := 0; i < 16; i++ {
		b := jobBody("sequential", int64(200000+i))
		b["cost_spin"] = 2000
		status, view := f.submit(t, b)
		switch status {
		case http.StatusAccepted:
			id, _ := view["id"].(string)
			accepted = append(accepted, id)
		case http.StatusTooManyRequests:
			reject429++
		default:
			t.Fatalf("submission %d: unexpected status %d (%v)", i, status, view)
		}
	}
	if reject429 == 0 {
		t.Fatal("16 slow submissions against ~6 fleet slots never hit fleet-full")
	}
	if len(accepted) < 4 {
		t.Fatalf("only %d submissions admitted; spill-on-full is not spreading load", len(accepted))
	}
	t.Logf("accepted %d, fleet-full rejections %d", len(accepted), reject429)

	// The 429 carried Retry-After.
	b, _ := json.Marshal(jobBody("sequential", 99999))
	resp, err := http.Post(f.coordTS.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
		t.Error("fleet-full 429 without Retry-After")
	}

	// Everything admitted completes; nothing is lost to the saturation.
	for i, id := range accepted {
		if v := f.await(t, id, 180*time.Second); v["state"] != "done" {
			t.Fatalf("accepted job %d: state %v (error %v)", i, v["state"], v["error"])
		}
	}

	body := f.metrics(t)
	if !strings.Contains(body, "parsimd_fleet_full_total") || strings.Contains(body, "parsimd_fleet_full_total 0\n") {
		t.Errorf("fleet-full counter did not move\n%s", body)
	}
	// Whether any individual job spilled here depends on drain timing —
	// TestFleetSpill pins the spill path deterministically.
}

// TestFleetSpill proves node-full ⇒ spill: the probe job's ring owner is
// computed client-side (the ring construction is deterministic), that
// node is saturated by direct submissions until it 429s, and the probe —
// submitted through the coordinator — must then land on the other node.
func TestFleetSpill(t *testing.T) {
	f := newFleet(t, 2, fleetOpts{coreBudget: 1, maxQueue: 1, evictAfter: 5 * time.Second})

	probe := jobBody("sequential", 777777)
	pb, err := json.Marshal(probe)
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := cluster.SubmissionKey(pb, netlist.Limits{
		MaxBytes: 8 << 20, MaxNodes: 200000, MaxElems: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ring := cluster.NewRing(cluster.DefaultVNodes)
	ring.Add(f.nodes[0].addr)
	ring.Add(f.nodes[1].addr)
	ownerAddr := ring.Lookup(key)

	var owner, other *fleetNode
	for _, n := range f.nodes {
		if n.addr == ownerAddr {
			owner = n
		} else {
			other = n
		}
	}
	if owner == nil || other == nil {
		t.Fatalf("ring owner %q is not a fleet node", ownerAddr)
	}

	// Fill the owner directly (1 running + 1 queued at these settings)
	// until its own admission control refuses.
	full := false
	for i := 0; i < 8 && !full; i++ {
		b := jobBody("sequential", int64(300000+i))
		b["cost_spin"] = 2000
		bb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(owner.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(bb))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			full = true
		default:
			t.Fatalf("saturating submission %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if !full {
		t.Fatal("owner node never reported queue-full")
	}

	status, view := f.submit(t, probe)
	if status != http.StatusAccepted {
		t.Fatalf("probe not accepted while the other node is idle: status %d (%v)", status, view)
	}
	if got, _ := view["node"].(string); got != other.addr {
		t.Fatalf("probe routed to %q, want spill to %q (owner %q is full)", got, other.addr, ownerAddr)
	}
	id, _ := view["id"].(string)
	if v := f.await(t, id, 120*time.Second); v["state"] != "done" {
		t.Fatalf("spilled probe did not finish: %v", v)
	}

	body := f.metrics(t)
	if strings.Contains(body, "parsimd_fleet_spills_total 0\n") {
		t.Errorf("spill not counted\n%s", body)
	}
}
