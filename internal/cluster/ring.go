package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the number of virtual nodes each member contributes to
// the ring. 64 keeps per-node load within ~15% of even across fleet sizes
// up to 16 while keeping join/leave rebuilds trivially cheap.
const DefaultVNodes = 64

// Ring is a consistent hash ring with virtual nodes. Keys (content-
// addressed job keys) map to the member owning the first vnode at or
// after the key's position; when that member is full the caller walks
// Successors for spill targets. Because every member contributes the
// same deterministic vnode set, adding or removing a member moves only
// the keys that land on that member's vnodes — the minimal-movement
// property the unit tests pin down.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	owners map[string]bool
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing returns an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, owners: make(map[string]bool)}
}

// hash64 maps an arbitrary string onto the ring via SHA-256; the first
// eight digest bytes give a uniform 64-bit position.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent) and returns whether the ring changed.
func (r *Ring) Add(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.owners[member] {
		return false
	}
	r.owners[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:  hash64(fmt.Sprintf("%s#%d", member, i)),
			owner: member,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return true
}

// Remove deletes a member's vnodes and returns whether it was present.
func (r *Ring) Remove(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.owners[member] {
		return false
	}
	delete(r.owners, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Members returns the current member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.owners))
	for m := range r.owners {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.owners)
}

// Lookup returns the member owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner: the routing preference list. The first entry is the
// owner; the rest are spill targets in the order backpressure walks them.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.owners) {
		n = len(r.owners)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}
