package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parsim/internal/netlist"
)

// errorBody mirrors the worker's non-2xx response shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"response encoding failure"}`)
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// reject refuses a submission, counting it by status and attaching the
// Retry-After hint on fleet-full responses.
func (c *Coordinator) reject(w http.ResponseWriter, status int, format string, args ...any) {
	c.met.onReject(status)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After",
			strconv.Itoa(int((c.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// cachedResult is a dedup cache entry: the terminal job view of the run
// that produced it plus its measured run time, kept so the metrics page
// can report how much simulation time each hit saved.
type cachedResult struct {
	view  map[string]any
	runMS float64
}

// handleSubmit is POST /v1/jobs on the coordinator: key the submission,
// serve dedup hits from the cache or coalesce onto an identical in-flight
// job, otherwise route to the ring owner with spill-on-full.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			c.reject(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", c.cfg.MaxBodyBytes)
			return
		}
		c.reject(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	key, sub, err := SubmissionKey(body, c.limits())
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, netlist.ErrLimit) {
			status = http.StatusRequestEntityTooLarge
		}
		c.reject(w, status, "%v", err)
		return
	}

	// Watch jobs carry node-local VCD state, so they are never deduped and
	// never satisfy a later identical submission.
	dedupable := len(sub.Watch) == 0

	if dedupable {
		if v, ok := c.cache.Get(key); ok {
			cr := v.(*cachedResult)
			cj := c.newJob(key, body, !dedupable)
			cj.deduped = true
			cj.pending = false
			cj.state = viewState(cr.view)
			cj.lastView = c.rewriteView(cj, cr.view)
			c.registerJob(cj, false)
			c.met.onSubmit()
			c.met.onDedup(true)
			c.met.onTerminal(cj.state)
			writeJSON(w, http.StatusOK, cj.lastView)
			return
		}
	}

	cj := c.newJob(key, body, !dedupable)
	if prior := c.registerJob(cj, dedupable); prior != nil {
		// An identical job is already in flight: coalesce instead of
		// re-simulating; the caller polls the existing record.
		c.met.onSubmit()
		c.met.onDedup(false)
		prior.mu.Lock()
		view := prior.lastView
		if view == nil {
			view = map[string]any{"id": prior.id, "state": prior.state}
		}
		prior.mu.Unlock()
		writeJSON(w, http.StatusAccepted, view)
		return
	}

	rr := c.route(key, body)
	if !rr.ok {
		c.removeJob(cj)
		if rr.status == http.StatusTooManyRequests {
			c.met.onFleetFull()
		}
		c.reject(w, rr.status, "%s", rr.errBody)
		return
	}
	cj.mu.Lock()
	cj.pending = false
	cj.node, cj.nodeJobID = rr.node, rr.nodeJobID
	cj.state = viewState(rr.view)
	cj.lastView = c.rewriteView(cj, rr.view)
	view := cj.lastView
	cj.mu.Unlock()
	c.met.onSubmit()
	w.Header().Set("Location", "/v1/jobs/"+cj.id)
	writeJSON(w, http.StatusAccepted, view)
}

// newJob allocates a cluster job record (not yet registered).
func (c *Coordinator) newJob(key string, body []byte, hasWatch bool) *clusterJob {
	return &clusterJob{
		id:       fmt.Sprintf("c-%06d", c.nextID.Add(1)),
		key:      key,
		body:     body,
		hasWatch: hasWatch,
		state:    "queued",
		pending:  true,
	}
}

// registerJob publishes a record. When dedupable it first checks the
// in-flight index under the same lock — if an identical live job exists
// the new record is discarded and the prior one returned, so two racing
// identical submissions can never both dispatch.
func (c *Coordinator) registerJob(cj *clusterJob, dedupable bool) (prior *clusterJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dedupable {
		if prior := c.inflight[cj.key]; prior != nil {
			return prior
		}
		c.inflight[cj.key] = cj
	}
	c.jobs[cj.id] = cj
	c.order = append(c.order, cj)
	return nil
}

// removeJob retracts a record that was never dispatched (routing refused
// it), so a rejected submission leaves no trace in the job list.
func (c *Coordinator) removeJob(cj *clusterJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, cj.id)
	if c.inflight[cj.key] == cj {
		delete(c.inflight, cj.key)
	}
	for i, other := range c.order {
		if other == cj {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// handleJob is GET /v1/jobs/{id}: proxy the owning worker's view of the
// job under the cluster job id, recording terminal states as they are
// first observed (that is also the moment a result enters the dedup
// cache). A terminal or parked job is served from the coordinator's own
// record; an unreachable owner serves the last known view — the monitor
// loop will evict the node and requeue shortly.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	cj, ok := c.jobs[r.PathValue("id")]
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	cj.mu.Lock()
	node, nodeJobID := cj.node, cj.nodeJobID
	terminal := cj.terminal()
	last := cj.lastView
	cj.mu.Unlock()

	if terminal {
		writeJSON(w, http.StatusOK, last)
		return
	}
	if node == "" {
		// Parked: waiting for fleet capacity after its node died.
		view := map[string]any{"id": cj.id, "state": "queued"}
		writeJSON(w, http.StatusOK, view)
		return
	}
	view, err := c.pollWorker(cj, node, nodeJobID)
	if err != nil {
		c.cfg.Logf("cluster: poll of %s for job %s failed: %v", node, cj.id, err)
		if last == nil {
			last = map[string]any{"id": cj.id, "state": cj.state}
		}
		writeJSON(w, http.StatusOK, last)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// pollWorker fetches the owner's view of a job and folds it into the
// record; the first observation of a terminal state is counted and, for
// successful dedupable runs, cached.
func (c *Coordinator) pollWorker(cj *clusterJob, node, nodeJobID string) (map[string]any, error) {
	resp, err := c.cfg.Client.Get(baseURL(node) + "/v1/jobs/" + nodeJobID)
	if err != nil {
		return nil, err
	}
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker answered %d", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.Unmarshal(rb, &raw); err != nil {
		return nil, err
	}
	st := viewState(raw)
	cj.mu.Lock()
	cj.state = st
	cj.lastView = c.rewriteView(cj, raw)
	view := cj.lastView
	firstTerminal := cj.terminal() && !cj.recorded
	if firstTerminal {
		cj.recorded = true
	}
	runMS, _ := raw["run_ms"].(float64)
	hasWatch := cj.hasWatch
	cj.mu.Unlock()
	if firstTerminal {
		c.met.onTerminal(st)
		c.dropInflight(cj)
		if st == "done" && !hasWatch {
			c.cache.Put(cj.key, &cachedResult{view: view, runMS: runMS})
		}
	}
	return view, nil
}

// handleList is GET /v1/jobs: the coordinator's job records, oldest
// first, each under its cluster id with its last observed state.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	records := append([]*clusterJob(nil), c.order...)
	c.mu.Unlock()
	views := make([]map[string]any, 0, len(records))
	for _, cj := range records {
		cj.mu.Lock()
		view := cj.lastView
		if view == nil {
			view = map[string]any{"id": cj.id, "state": cj.state}
		}
		cj.mu.Unlock()
		views = append(views, view)
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []map[string]any `json:"jobs"`
	}{Jobs: views})
}

// joinRequest is the body of POST /v1/cluster/join: a worker advertising
// itself and its capacity.
type joinRequest struct {
	Addr     string     `json:"addr"`
	Cores    int        `json:"cores"`
	MaxQueue int        `json:"max_queue"`
	StateDir string     `json:"state_dir,omitempty"`
	Gauges   NodeGauges `json:"gauges"`
}

// joinResponse tells the worker the heartbeat contract.
type joinResponse struct {
	HeartbeatMS int64 `json:"heartbeat_ms"`
	Nodes       int   `json:"nodes"`
}

// handleJoin is POST /v1/cluster/join. Joining is idempotent: a worker
// that lost contact (or was evicted) rejoins with the same body and its
// vnodes return to the ring.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("malformed join body: %v", err)})
		return
	}
	if req.Addr == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "join requires a non-empty addr"})
		return
	}
	c.mu.Lock()
	c.nodes[req.Addr] = &member{
		addr:     req.Addr,
		cores:    req.Cores,
		maxQueue: req.MaxQueue,
		stateDir: req.StateDir,
		lastBeat: time.Now(),
		gauges:   req.Gauges,
	}
	if req.StateDir != "" {
		c.stateDirs[req.Addr] = req.StateDir
	}
	n := len(c.nodes)
	c.mu.Unlock()
	if c.ring.Add(req.Addr) {
		c.met.onMembership()
		c.cfg.Logf("cluster: node %s joined (%d cores, queue %d); fleet size %d",
			req.Addr, req.Cores, req.MaxQueue, n)
	}
	writeJSON(w, http.StatusOK, joinResponse{
		HeartbeatMS: c.cfg.HeartbeatEvery.Milliseconds(),
		Nodes:       n,
	})
}

// heartbeatRequest is the body of POST /v1/cluster/heartbeat.
type heartbeatRequest struct {
	Addr   string     `json:"addr"`
	Gauges NodeGauges `json:"gauges"`
}

// handleHeartbeat is POST /v1/cluster/heartbeat. An unknown (or evicted)
// node is answered 404, which tells the worker to rejoin.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("malformed heartbeat body: %v", err)})
		return
	}
	c.mu.Lock()
	m, ok := c.nodes[req.Addr]
	if ok {
		m.lastBeat = time.Now()
		m.gauges = req.Gauges
	}
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown node; rejoin"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// handleLeave is POST /v1/cluster/leave: a graceful departure. The
// node's vnodes leave the ring immediately; jobs still running there keep
// their owner (a draining worker finishes its running jobs), and if the
// worker dies instead the monitor requeues them.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("malformed leave body: %v", err)})
		return
	}
	c.mu.Lock()
	_, ok := c.nodes[req.Addr]
	delete(c.nodes, req.Addr)
	c.mu.Unlock()
	if ok && c.ring.Remove(req.Addr) {
		c.met.onMembership()
		c.cfg.Logf("cluster: node %s left", req.Addr)
	}
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// handleHealthz is GET /healthz on the coordinator.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	nodes := len(c.nodes)
	inflight := len(c.inflight)
	jobs := len(c.jobs)
	c.mu.Unlock()
	status := http.StatusOK
	body := struct {
		Status   string `json:"status"`
		Nodes    int    `json:"nodes"`
		Jobs     int    `json:"jobs"`
		Inflight int    `json:"jobs_inflight"`
	}{"ok", nodes, jobs, inflight}
	if nodes == 0 {
		body.Status = "no-workers"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// handleMetrics is GET /metrics: fleet counters plus per-node gauges from
// the latest heartbeats.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	c.mu.Lock()
	rows := make([]nodeRow, 0, len(c.nodes))
	for _, m := range c.nodes {
		rows = append(rows, nodeRow{
			addr:       m.addr,
			beatAgeSec: now.Sub(m.lastBeat).Seconds(),
			gauges:     m.gauges,
		})
	}
	c.mu.Unlock()
	sortNodeRows(rows)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	c.met.render(w, rows)
}
