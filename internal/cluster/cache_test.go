package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d; want 3", c.Len())
	}

	// Touch "a" so "b" becomes the eviction candidate.
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order ignores Get recency")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want it retained", k)
		}
	}

	// Overwriting an existing key must not grow the cache.
	c.Put("a", 10)
	if c.Len() != 3 {
		t.Fatalf("Len after overwrite = %d; want 3", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("overwrite lost: Get(a) = %v; want 10", v)
	}
}

func TestResultCacheBounded(t *testing.T) {
	const cap = 8
	c := NewResultCache(cap)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		if c.Len() > cap {
			t.Fatalf("Len = %d after %d inserts; cap is %d", c.Len(), i+1, cap)
		}
	}
	if c.Len() != cap {
		t.Fatalf("Len = %d; want %d", c.Len(), cap)
	}
	// The survivors are exactly the most recent cap inserts.
	for i := 100 - cap; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d evicted", i)
		}
	}
}

func TestResultCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := NewResultCache(capacity)
		c.Put("a", 1)
		if _, ok := c.Get("a"); ok {
			t.Fatalf("capacity %d: cache stored an entry; want disabled", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("capacity %d: Len = %d; want 0", capacity, c.Len())
		}
	}
}

// TestResultCacheConcurrent hammers the cache from many goroutines so
// the -race build proves the locking. Correctness here is just "bounded
// and no torn state".
func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				c.Put(k, i)
				if v, ok := c.Get(k); ok {
					if _, isInt := v.(int); !isInt {
						t.Errorf("torn value for %s: %v", k, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("Len = %d; cap is 32", c.Len())
	}
}
