package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Joiner is the worker side of fleet membership: it registers a parsimd
// node with a coordinator, heartbeats at the interval the coordinator
// dictates (carrying fresh scheduler gauges each beat), rejoins when the
// coordinator forgets it — restart or eviction after a stall — and leaves
// gracefully on shutdown.
type Joiner struct {
	// Coordinator is the coordinator's address (host:port or URL).
	Coordinator string
	// Advertise is the address other fleet components reach this node at.
	Advertise string
	// Cores and MaxQueue advertise static capacity at join time.
	Cores    int
	MaxQueue int
	// StateDir is the node's journal/checkpoint dir; the coordinator uses
	// it to resume requeued jobs from this node's snapshots after an
	// eviction. Empty when the node is not durable.
	StateDir string
	// Gauges samples the node's live scheduler gauges for each heartbeat.
	Gauges func() NodeGauges
	// Client performs coordinator HTTP calls. Default: 5s-timeout client.
	Client *http.Client
	// Logf receives membership log lines. Default discards them.
	Logf func(format string, args ...any)
}

func (jn *Joiner) client() *http.Client {
	if jn.Client != nil {
		return jn.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (jn *Joiner) logf(format string, args ...any) {
	if jn.Logf != nil {
		jn.Logf(format, args...)
	}
}

func (jn *Joiner) gauges() NodeGauges {
	if jn.Gauges != nil {
		return jn.Gauges()
	}
	return NodeGauges{}
}

// Run joins the fleet and heartbeats until ctx is cancelled, then sends a
// best-effort leave. Join failures retry with backoff — a worker may come
// up before its coordinator — and a 404 heartbeat (coordinator restarted
// or evicted us) triggers an immediate rejoin.
func (jn *Joiner) Run(ctx context.Context) error {
	backoff := 250 * time.Millisecond
	for {
		interval, err := jn.join(ctx)
		if err != nil {
			jn.logf("cluster: join %s failed: %v (retrying in %s)", jn.Coordinator, err, backoff)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 4*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 250 * time.Millisecond
		jn.logf("cluster: joined %s as %s (heartbeat %s)", jn.Coordinator, jn.Advertise, interval)
		if rejoin := jn.heartbeatLoop(ctx, interval); !rejoin {
			jn.leave()
			return ctx.Err()
		}
		jn.logf("cluster: coordinator forgot %s; rejoining", jn.Advertise)
	}
}

// join registers the node and returns the heartbeat interval.
func (jn *Joiner) join(ctx context.Context) (time.Duration, error) {
	body, err := json.Marshal(joinRequest{
		Addr:     jn.Advertise,
		Cores:    jn.Cores,
		MaxQueue: jn.MaxQueue,
		StateDir: jn.StateDir,
		Gauges:   jn.gauges(),
	})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL(jn.Coordinator)+"/v1/cluster/join", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := jn.client().Do(req)
	if err != nil {
		return 0, err
	}
	rb, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, bytes.TrimSpace(rb))
	}
	var jr joinResponse
	if err := json.Unmarshal(rb, &jr); err != nil {
		return 0, fmt.Errorf("malformed join response: %v", err)
	}
	interval := time.Duration(jr.HeartbeatMS) * time.Millisecond
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	return interval, nil
}

// heartbeatLoop beats until ctx cancels (returns false) or the
// coordinator answers 404 (returns true: rejoin).
func (jn *Joiner) heartbeatLoop(ctx context.Context, interval time.Duration) (rejoin bool) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-ticker.C:
			status, err := jn.beat(ctx)
			if err != nil {
				jn.logf("cluster: heartbeat to %s failed: %v", jn.Coordinator, err)
				continue // transient; the next beat retries
			}
			if status == http.StatusNotFound {
				return true
			}
		}
	}
}

func (jn *Joiner) beat(ctx context.Context) (int, error) {
	body, err := json.Marshal(heartbeatRequest{Addr: jn.Advertise, Gauges: jn.gauges()})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL(jn.Coordinator)+"/v1/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := jn.client().Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// leave tells the coordinator the node is going away; best-effort with
// its own short deadline because the caller's ctx is already cancelled.
func (jn *Joiner) leave() {
	body, err := json.Marshal(heartbeatRequest{Addr: jn.Advertise})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL(jn.Coordinator)+"/v1/cluster/leave", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := jn.client().Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	jn.logf("cluster: left %s", jn.Coordinator)
}
